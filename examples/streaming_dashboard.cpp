// Live analytics over an unbounded click stream — the paper's concluding
// vision running end to end: no data loading, answers while data arrives.
//
// A producer thread synthesizes clicks and Ingest()s them; the main thread
// polls the live states every 100 ms and redraws a "dashboard" of the
// current top pages, plus threshold alerts that fire the instant a page
// crosses 10 000 visits.  At the end, Finish() yields the exact totals.
//
// Build & run:   ./build/examples/streaming_dashboard
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "common/rng.h"
#include "engine/aggregators.h"
#include "stream/streaming_job.h"
#include "workloads/clickstream.h"

int main() {
  using namespace opmr;

  StreamingQuery query;
  query.name = "live_page_frequency";
  query.aggregator = std::make_shared<SumAggregator>();
  query.map = [](Slice record, OutputCollector& out) {
    static thread_local std::string one = EncodeValueU64(1);
    // record = "<url>" — the producer emits bare urls.
    out.Emit(record, one);
  };

  StreamingOptions options;
  options.early_emit = [](Slice, Slice state) {
    return DecodeU64(state.data()) == 10'000;
  };
  options.on_early_answer = [](Slice key, Slice value) {
    std::printf("  *** ALERT: %s crossed %llu visits — emitted the moment "
                "it happened\n",
                key.ToString().c_str(),
                static_cast<unsigned long long>(DecodeValueU64(value)));
  };

  StreamingJob job(std::move(query), options, /*workers=*/4);

  std::atomic<bool> stop{false};
  std::jthread producer([&] {
    ZipfSampler urls(50'000, 1.05, 9);
    while (!stop.load(std::memory_order_relaxed)) {
      job.Ingest(UrlKey(static_cast<std::uint32_t>(urls.Sample())));
    }
  });

  for (int tick = 1; tick <= 10; ++tick) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    const auto top = job.TopAnswers(5);
    std::printf("t=%3.1fs  ingested=%9llu   top pages:", tick * 0.1,
                static_cast<unsigned long long>(job.records_ingested()));
    for (const auto& [url, value] : top) {
      std::printf("  %s=%llu", url.c_str(),
                  static_cast<unsigned long long>(DecodeValueU64(value)));
    }
    std::printf("\n");
  }
  stop.store(true);
  producer.join();

  const auto final_results = job.Finish();
  std::printf("\nstream closed: %llu clicks over %zu distinct pages, "
              "%llu threshold alerts fired mid-stream\n",
              static_cast<unsigned long long>(job.records_ingested()),
              final_results.size(),
              static_cast<unsigned long long>(job.early_answers()));
  return 0;
}
