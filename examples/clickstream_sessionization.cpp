// Click-stream sessionization — the paper's flagship workload (§III-A).
//
// Reorders an interleaved click log into per-user sessions: map groups
// clicks by user id, reduce sorts each user's clicks by time and cuts
// sessions at 30-minute gaps.  Because sessionization has no combine
// function and its intermediate data is as large as the input, it runs on
// the sort-merge runtime here (compare against the hybrid-hash runtime by
// flipping USE_HASH below).
//
// Build & run:   ./build/examples/clickstream_sessionization
#include <cstdio>
#include <map>

#include "core/opmr.h"
#include "workloads/clickstream.h"
#include "workloads/tasks.h"

int main() {
  using namespace opmr;

  Platform platform({.num_nodes = 4, .block_bytes = 2u << 20});

  ClickStreamOptions clicks;
  clicks.num_records = 500'000;
  clicks.num_users = 20'000;
  clicks.num_urls = 5'000;
  GenerateClickStream(platform.dfs(), "clicks", clicks);
  std::printf("generated %llu clicks from %llu users\n",
              static_cast<unsigned long long>(clicks.num_records),
              static_cast<unsigned long long>(clicks.num_users));

  constexpr bool kUseHash = false;  // flip to run on hybrid-hash grouping
  JobOptions options;
  if (kUseHash) {
    options = HashOnePassOptions();
    options.hash_reduce = HashReduce::kHybridHash;  // holistic reduce fn
  } else {
    options = HadoopOptions();
  }

  const JobSpec job = SessionizationJob("clicks", "sessions", 4);
  const JobResult result = platform.Run(job, options);

  std::printf("sessionized in %.2f s (%.2f s CPU); map output %lld bytes, "
              "reduce spill %lld bytes\n",
              result.wall_seconds, result.total_cpu_seconds,
              static_cast<long long>(result.Bytes(device::kMapOutputWrite)),
              static_cast<long long>(result.Bytes(device::kSpillWrite)));

  // Show one user's reconstructed sessions.
  const auto rows = platform.ReadOutput("sessions", 4);
  std::map<std::string, std::vector<std::string>> by_user;
  for (const auto& [user, entry] : rows) by_user[user].push_back(entry);
  if (!by_user.empty()) {
    // Pick a user with several clicks for a meaningful display.
    const std::vector<std::string>* best = nullptr;
    const std::string* who = nullptr;
    for (const auto& [user, entries] : by_user) {
      if (best == nullptr ||
          (entries.size() > best->size() && entries.size() < 20)) {
        best = &entries;
        who = &user;
      }
    }
    std::printf("\nsessions of user %s:\n", who->c_str());
    for (const auto& entry : *best) {
      std::printf("  %s\n", entry.c_str());
    }
  }
  return 0;
}
