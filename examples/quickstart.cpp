// Quickstart: word counting with the OPMR one-pass analytics platform.
//
//   1. Stand up an in-process "cluster" (mini-DFS + executor).
//   2. Load a small document corpus into the DFS.
//   3. Run the canonical word-count job on the hash-based one-pass runtime.
//   4. Read the answers back and print the most frequent words.
//
// Build & run:   ./build/examples/quickstart
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/opmr.h"
#include "engine/aggregators.h"
#include "workloads/tasks.h"
#include "workloads/webdocs.h"

int main() {
  using namespace opmr;

  // A 4-node platform; blocks are 1 MiB so even this small corpus spreads
  // over several map tasks.
  Platform platform({.num_nodes = 4, .block_bytes = 1u << 20});

  // Synthesize a corpus (in a real deployment you would stream your own
  // records into platform.dfs().Create("docs")).
  WebDocsOptions corpus;
  corpus.num_docs = 2'000;
  corpus.mean_doc_words = 100;
  const auto bytes = GenerateWebDocs(platform.dfs(), "docs", corpus);
  std::printf("loaded %llu bytes of documents into the DFS\n",
              static_cast<unsigned long long>(bytes));

  // Word count = map emits (word, 1), SUM aggregator folds the counts.
  // The hash one-pass runtime groups by hash (no sorting), pushes map
  // output eagerly, and keeps one running state per word.
  const JobSpec job = WordCountJob("docs", "counts", /*num_reducers=*/4);
  const JobResult result = platform.Run(job, HashOnePassOptions());

  std::printf("job '%s': %llu records in, %llu words out, %.2f s wall, "
              "%.2f s CPU\n",
              result.job_name.c_str(),
              static_cast<unsigned long long>(result.input_records),
              static_cast<unsigned long long>(result.output_records),
              result.wall_seconds, result.total_cpu_seconds);

  auto rows = platform.ReadOutput("counts", 4);
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return DecodeValueU64(a.second) > DecodeValueU64(b.second);
  });
  std::printf("\ntop 10 words:\n");
  for (std::size_t i = 0; i < rows.size() && i < 10; ++i) {
    std::printf("  %-10s %llu\n", rows[i].first.c_str(),
                static_cast<unsigned long long>(
                    DecodeValueU64(rows[i].second)));
  }
  return 0;
}
