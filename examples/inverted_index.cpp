// Inverted-index construction over a web-document corpus (paper §III-A,
// the second benchmark application) — and a lookup against the result.
//
// The index job is holistic (reduce concatenates posting lists), so it
// runs on either the sort-merge runtime or hybrid-hash grouping; both are
// shown with their I/O profiles for comparison.
//
// Build & run:   ./build/examples/inverted_index
#include <cstdio>
#include <string>

#include "core/opmr.h"
#include "workloads/tasks.h"
#include "workloads/webdocs.h"

namespace {

void Report(const char* label, const opmr::JobResult& r) {
  std::printf("%-12s %.2f s wall, %.2f s CPU, map-out %lld B, spill %lld B\n",
              label, r.wall_seconds, r.total_cpu_seconds,
              static_cast<long long>(r.Bytes(opmr::device::kMapOutputWrite)),
              static_cast<long long>(r.Bytes(opmr::device::kSpillWrite)));
}

}  // namespace

int main() {
  using namespace opmr;

  Platform platform({.num_nodes = 4, .block_bytes = 1u << 20});

  WebDocsOptions corpus;
  corpus.num_docs = 5'000;
  corpus.vocabulary = 30'000;
  corpus.mean_doc_words = 150;
  GenerateWebDocs(platform.dfs(), "docs", corpus);

  // Build the index twice: Hadoop-style sort-merge and hybrid hash.
  const auto sm =
      platform.Run(InvertedIndexJob("docs", "index_sm", 4), HadoopOptions());
  JobOptions hybrid = HashOnePassOptions();
  hybrid.hash_reduce = HashReduce::kHybridHash;
  const auto hh =
      platform.Run(InvertedIndexJob("docs", "index_hh", 4), hybrid);

  Report("sort-merge", sm);
  Report("hybrid-hash", hh);

  // Query the index: postings of a frequent and a rare word.
  const auto rows = platform.ReadOutput("index_sm", 4);
  for (const std::string probe : {WordKey(2), WordKey(25'000)}) {
    for (const auto& [word, postings] : rows) {
      if (word == probe) {
        const auto docs =
            1 + std::count(postings.begin(), postings.end(), ' ');
        std::printf("\n'%s' occurs %lld times; first postings: %.60s...\n",
                    word.c_str(), static_cast<long long>(docs),
                    postings.c_str());
        break;
      }
    }
  }
  return 0;
}
