// Trending-hashtag detection over a tweet stream — the paper's "Twitter
// feed analysis" benchmark extension, wired as a two-job pipeline:
//
//   job 1: hashtag counting on the hot-key incremental runtime (hot tags'
//          states stay pinned in memory; counts are exact),
//   job 2: global top-k via TopKAggregator, whose map-side combiner prunes
//          candidates before the single selection reducer.
//
// Build & run:   ./build/examples/trending_hashtags
#include <cstdio>

#include "core/opmr.h"
#include "workloads/pipelines.h"
#include "workloads/tweets.h"

int main() {
  using namespace opmr;

  Platform platform({.num_nodes = 4, .block_bytes = 1u << 20});

  TweetStreamOptions tweets;
  tweets.num_tweets = 500'000;
  tweets.num_hashtags = 20'000;
  tweets.hashtag_theta = 1.15;
  const auto bytes = GenerateTweetStream(platform.dfs(), "tweets", tweets);
  std::printf("generated %llu tweets (%llu bytes)\n",
              static_cast<unsigned long long>(tweets.num_tweets),
              static_cast<unsigned long long>(bytes));

  JobOptions options = HotKeyOnePassOptions(/*hot_key_capacity=*/4096);
  const auto winners = RunTopKPipeline(
      platform, HashtagCountJob("tweets", "tag_counts", 4), options,
      /*k=*/15);

  std::printf("\ntrending hashtags:\n");
  int rank = 1;
  for (const auto& w : winners) {
    std::printf("  %2d. %-12s %llu mentions\n", rank++, w.payload.c_str(),
                static_cast<unsigned long long>(w.score));
  }
  return 0;
}
