// Online aggregation with early answers — the paper's incremental-
// processing story end to end (§IV req. 3, §V technique 3).
//
// Query: "which pages have more than THRESHOLD visits?"  On the
// incremental hash runtime, a page's row is emitted the moment its count
// crosses the threshold — long before the job finishes — and the hot-key
// variant keeps the popular pages' states pinned when memory is scarce.
// At the end the exact top-k is computed from the final output.
//
// Build & run:   ./build/examples/online_topk
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/opmr.h"
#include "engine/aggregators.h"
#include "workloads/clickstream.h"
#include "workloads/tasks.h"

int main() {
  using namespace opmr;
  constexpr std::uint64_t kThreshold = 2'000;
  constexpr int kTopK = 10;

  Platform platform({.num_nodes = 4, .block_bytes = 1u << 20});

  ClickStreamOptions clicks;
  clicks.num_records = 1'000'000;
  clicks.num_users = 50'000;
  clicks.num_urls = 20'000;
  clicks.url_theta = 1.1;  // skewed page popularity: a clear hot set exists
  GenerateClickStream(platform.dfs(), "clicks", clicks);

  // Hot-key one-pass runtime under a deliberately tight memory budget, fed
  // raw (uncombined) counts so every click advances some page's state.
  JobOptions options = HotKeyOnePassOptions(/*hot_key_capacity=*/4096);
  options.map_side_combine = false;
  options.reduce_buffer_bytes = 512u << 10;
  options.early_emit = [](Slice /*url*/, Slice state) {
    return DecodeU64(state.data()) == kThreshold;  // fires exactly once
  };

  const JobSpec job = PageFrequencyJob("clicks", "hot_pages", 4);
  const JobResult result = platform.Run(job, options);

  std::printf("job finished in %.2f s; FIRST answer surfaced at %.2f s "
              "(%.0f%% of the job)\n",
              result.wall_seconds, result.first_output_seconds,
              100.0 * result.first_output_seconds / result.wall_seconds);
  std::printf("reduce spill under the tight budget: %lld bytes "
              "(hot pages stayed in memory)\n",
              static_cast<long long>(result.Bytes(device::kSpillWrite)));

  std::printf("\nemission curve (cumulative answers over time):\n");
  for (const auto& s : result.emission_curve) {
    static double last = -1;
    if (s.time_s - last > result.wall_seconds / 8) {
      std::printf("  t=%6.2fs  %8.0f answers\n", s.time_s, s.value);
      last = s.time_s;
    }
  }

  // Exact top-k from the final (exact) output.
  auto rows = platform.ReadOutput("hot_pages", 4);
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return DecodeValueU64(a.second) > DecodeValueU64(b.second);
  });
  std::printf("\nexact top-%d pages:\n", kTopK);
  for (int i = 0; i < kTopK && i < static_cast<int>(rows.size()); ++i) {
    std::printf("  %-22s %llu visits\n", rows[i].first.c_str(),
                static_cast<unsigned long long>(
                    DecodeValueU64(rows[i].second)));
  }
  return 0;
}
