// opmr_cli — command-line driver for the OPMR platform.
//
//   opmr_cli run workload=<w> runtime=<r> [records=N] [reducers=R]
//                [nodes=N] [combine=0|1] [compress=0|1] [reduce_buffer=BYTES]
//                [dump-output=PATH]
//                [--max-attempts=N] [--speculate] [--fault-plan=<file|spec>]
//                [--checkpoint-interval=N] [--checkpoint-dir=PATH]
//                [--checkpoint-retain=K] [--checkpoint-compress]
//                [--transport=loopback|tcp|epoll|direct]
//                [--shuffle-timeout=SECONDS] [--sock-buf-bytes=N]
//                [--ship-segments] [--coded-r=N] [--replication=N]
//       Generates a synthetic dataset for <w>, runs it on runtime <r>, and
//       prints the job report (wall/CPU/I-O/emission metrics).
//       --transport picks how shuffle traffic moves (src/net): loopback
//       (default) frames it through the in-process transport, tcp forks a
//       separate map worker-group process that dials the reduce group over
//       a localhost socket, epoll does the same over the event-loop data
//       plane (src/dataplane: one epoll thread, block-batched frames,
//       writev/sendfile), direct is the raw in-process seed path with no
//       framing.  --shuffle-timeout bounds reduce-side silence in socket
//       modes (mapper-process death detection), --sock-buf-bytes sizes
//       SO_SNDBUF/SO_RCVBUF, and --ship-segments sends segment bytes
//       inline instead of path descriptors, as a remote host would
//       (over epoll the inline bytes go out via sendfile(2)).
//       --fault-plan takes a FaultPlan spec string or plan file (see
//       src/fault/fault.h), e.g. --fault-plan='seed=7;map_crash:task=0,record=500';
//       --max-attempts enables task re-execution (pull shuffle only) and
//       --speculate turns on straggler backup attempts.
//       --coded-r=N turns on the coded shuffle plane (push runtimes over a
//       framed transport only): every map block is replicated to r
//       co-located mappers and intermediates travel as XOR-coded multicast
//       frames, cutting shuffle bytes ~r-fold for r-fold map CPU.
//       Requires --replication>=N (defaults to N when unset) and
//       reducers>=N+1.
//       --checkpoint-interval=N checkpoints reducer state every N folded
//       records, making reduce failures recoverable even under the pipelined
//       push shuffle; --checkpoint-dir overrides the image directory,
//       --checkpoint-retain keeps the last K images (default 2) and
//       --checkpoint-compress OZ-compresses the payload.
//       workloads: sessionization | sessionization_ss | page_frequency |
//                  per_user_count | inverted_index | word_count |
//                  distinct_visitors | hashtag_count
//       runtimes : hadoop | mr_online | hash | hotkey | checkpoint
//
//   opmr_cli sim workload=<w> runtime=<r> [storage=hdd|hdd+ssd|separate]
//                [merge_factor=F] [nodes=N]
//       Replays the workload at paper scale on the cluster simulator and
//       prints the completion/phase/I-O summary plus ASCII traces.
//
//   opmr_cli topk workload=<w> k=N [records=N]
//       Runs the two-job top-k pipeline and prints the winners.
//
//   opmr_cli sort [records=N] [reducers=R]
//       TeraSort demo: random records, sampled range boundaries, globally
//       sorted output; verifies and reports the order.
//
//   opmr_cli coordinator listen=<host:port> [secret=S] [map-workers=N]
//                  [reduce-workers=N] [lease-ms=MS] [grace-ms=MS] [wait=SECONDS]
//                  [replica-id=I] [peers=<id@host:port,...>]
//                  [changelog-dir=PATH]
//       Cluster mode, membership endpoint: binds <host:port>, serves
//       Register/Heartbeat frames from joining workers (authenticated
//       against `secret` when set), broadcasts the Membership view, and
//       runs the two-stage lease failure detector (suspect after
//       lease-ms of silence, LOST after grace-ms more).  Waits for the
//       expected worker counts, prints the roster and every
//       suspect/returned/lost transition, and exits once all workers
//       have departed.
//       With replica-id= the process becomes one member of a REPLICATED
//       coordinator group (HA mode): peers= lists the other replicas,
//       changelog-dir= holds the durable changelog + snapshot images.
//       The lowest live replica id leads; standbys tail the leader's log
//       and take over with a single epoch bump when it dies (kill -9 it
//       and watch).  Workers should be given every replica endpoint via
//       a comma-separated join= list.
//
//   opmr_cli worker join=<host:port[,host:port...]> id=<worker>
//                  role=map|reduce [secret=S]
//                  [index=I] [count=N] [shared-fs=0|1] [bind=ADDR]
//                  [advertise=ADDR] [dump-output=PATH] <workload flags>
//       Cluster mode, one worker process: joins the coordinator's group,
//       then runs its half of the job.  A reduce worker binds a shuffle
//       server socket and advertises it through the registry; map workers
//       discover it from the Membership view and run input blocks
//       i % count == index (a disjoint partition per sibling).  Segment
//       bytes ship inline by default (shared-fs=1 restores path
//       descriptors for same-host workers).  Map-side delivery is
//       exactly-once via per-chunk sequence acks: a reducer-side crash
//       replays only the delivered-but-unacked window (see the ack
//       replay rows in the report).  dump-output writes the reduce
//       side's sorted output for byte-identity checks.
//
//   opmr_cli stream workload=<w> [records=N] [workers=R] [session-gap=S]
//                  [hot-keys=N] [--publish-snapshots=<host:port>]
//                  [snapshot-interval=N] [snapshot-retain=K]
//                  [snapshot-dir=PATH] [secret=S] [linger=SECONDS] [nodes=N]
//       Streaming mode: ingests a generated click stream through a live
//       StreamingJob (algebraic workloads only: sessionization |
//       per_user_count | page_frequency) and prints the final answers.
//       With --publish-snapshots the job binds a serving endpoint and
//       publishes an immutable, versioned snapshot image of its state
//       every snapshot-interval records (default records/10); frontends
//       subscribe there to answer queries mid-job.  linger keeps the
//       publisher up that many seconds after ingest finishes so replicas
//       can drain the final version.
//
//   opmr_cli frontend publisher=<host:port> [listen=<host:port>]
//                  [workload=<w>] [session-gap=S] [staleness-budget=N]
//                  [rate=QPS] [burst=N] [scan-limit=N] [id=<name>]
//                  [secret=S] [advertise=ADDR] [wait=SECONDS]
//                  [join=<host:port>] [coord-secret=S]
//       Serving replica: subscribes to a streaming job's snapshot
//       publisher, applies each announced version to an in-memory view,
//       and serves point / top-k / scan queries on <listen> (default
//       127.0.0.1: ephemeral).  --staleness-budget bounds the replica lag
//       (in ingest records) a query may observe — staler answers are
//       REJECTED, not served; rate/burst set the default per-tenant token
//       bucket.  join= additionally registers with a coordinator under
//       role `frontend` (read-only: frontends hold no job slots and never
//       satisfy the scheduler's placement gate).  Runs for wait seconds
//       (default 60), then prints serving counters.
//
//   opmr_cli query at=<host:port> op=point|topk|scan [key=K] [end=K]
//                  [n=N] [limit=N] [tenant=T] [staleness-budget=N]
//       One-shot client against a frontend: prints the reply status, the
//       snapshot version/watermark/lag it was answered from, and the rows.
//       staleness-budget tightens (never loosens) the tenant's budget for
//       this query alone.
//
//   opmr_cli serve spool=<dir|-> [map-slots=N] [reduce-slots=N]
//                  [policy=fifo|fair|srw] [memory-budget=BYTES]
//                  [max-concurrent=N] [nodes=N]
//                  [placement=engine|registration|locality]
//                  [placement-seed=N] [pool=name:weight[:max_jobs][,...]]
//       Multi-job mode: drains `*.job` spool files from <dir> (renaming
//       each to `*.job.done`), or blank-line-separated key=value blocks
//       from stdin with spool=-, and runs them all through the shared-slot
//       JobScheduler (src/sched).  Each job gets its own `<id>.in` dataset
//       and `<id>.out` output; the chosen policy arbitrates contended map/
//       reduce slots.  placement=locality routes every map operation
//       through the src/placement plane (locality -> load -> health
//       ranking, seed-deterministic); pool= declares hierarchical
//       fair-share pools ("parent/" prefix nests; declare parents first)
//       that spool jobs join with their pool= key.  Prints per-job
//       reports, scheduler stats (with deferral reasons, placement
//       counters, and per-pool grants), and a cross-job task timeline.
//       Spool keys: workload, runtime, transport (direct|loopback|tcp),
//       records, reducers, memory_bytes, speculative_reduce,
//       checkpoint_interval, checkpoint_retain, pool.
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "coded/coded.h"
#include "common/config.h"
#include "dataplane/event_loop.h"
#include "common/rng.h"
#include "common/format.h"
#include "coord/coordinator.h"
#include "coord/member.h"
#include "core/opmr.h"
#include "metrics/timeseries.h"
#include "net/loopback.h"
#include "net/tcp.h"
#include "replica/replica.h"
#include "metrics/timeline.h"
#include "sched/scheduler.h"
#include "sched/spool.h"
#include "serve/frontend.h"
#include "serve/publisher.h"
#include "serve/query_client.h"
#include "sim/simulator.h"
#include "stream/streaming_job.h"
#include "workloads/streaming_queries.h"
#include "workloads/global_sort.h"
#include "workloads/pipelines.h"
#include "workloads/tasks.h"
#include "workloads/tweets.h"
#include "workloads/webdocs.h"

namespace {

using namespace opmr;

JobOptions RuntimeByName(const std::string& name) {
  if (name == "hadoop") return HadoopOptions();
  if (name == "mr_online") return MapReduceOnlineOptions();
  if (name == "hash") return HashOnePassOptions();
  if (name == "hotkey") return HotKeyOnePassOptions();
  if (name == "checkpoint") return CheckpointedOnePassOptions();
  throw std::invalid_argument("unknown runtime: " + name);
}

// Integer flag with validation: rejects garbage and values below
// `min_value` with a one-line error instead of std::stoll's cryptic throw.
std::int64_t GetCheckedInt(const Config& cfg, const std::string& key,
                           std::int64_t def, std::int64_t min_value = 0) {
  const auto raw = cfg.Get(key);
  if (!raw) return def;
  std::int64_t value = 0;
  try {
    std::size_t consumed = 0;
    value = std::stoll(*raw, &consumed);
    if (consumed != raw->size()) throw std::invalid_argument("trailing text");
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + key + ": '" + *raw +
                                "' is not an integer");
  }
  if (value < min_value) {
    throw std::invalid_argument("--" + key + ": must be >= " +
                                std::to_string(min_value) + ", got " + *raw);
  }
  return value;
}

// Generates the right dataset and returns the job spec for `workload`.
// Serve mode names the datasets per job so concurrent jobs never collide.
JobSpec PrepareWorkload(Platform& platform, const std::string& workload,
                        std::uint64_t records, int reducers,
                        const std::string& input = "input",
                        const std::string& output = "output") {
  if (workload == "inverted_index" || workload == "word_count") {
    WebDocsOptions gen;
    gen.num_docs = std::max<std::uint64_t>(1, records / 120);
    GenerateWebDocs(platform.dfs(), input, gen);
    return workload == "inverted_index"
               ? InvertedIndexJob(input, output, reducers)
               : WordCountJob(input, output, reducers);
  }
  if (workload == "hashtag_count") {
    TweetStreamOptions gen;
    gen.num_tweets = records;
    GenerateTweetStream(platform.dfs(), input, gen);
    return HashtagCountJob(input, output, reducers);
  }
  ClickStreamOptions gen;
  gen.num_records = records;
  gen.num_users = std::max<std::uint64_t>(100, records / 20);
  gen.num_urls = std::max<std::uint64_t>(100, records / 50);
  GenerateClickStream(platform.dfs(), input, gen);
  if (workload == "sessionization") {
    return SessionizationJob(input, output, reducers);
  }
  if (workload == "sessionization_ss") {
    return SessionizationSecondarySortJob(input, output, reducers);
  }
  if (workload == "page_frequency") {
    return PageFrequencyJob(input, output, reducers);
  }
  if (workload == "per_user_count") {
    return PerUserCountJob(input, output, reducers);
  }
  if (workload == "distinct_visitors") {
    return DistinctVisitorsJob(input, output, reducers);
  }
  throw std::invalid_argument("unknown workload: " + workload);
}

void PrintJobReport(const JobResult& r) {
  TextTable table;
  table.AddRow({"metric", "value"});
  table.AddRow({"wall time", HumanSeconds(r.wall_seconds)});
  table.AddRow({"total CPU", HumanSeconds(r.total_cpu_seconds)});
  table.AddRow({"input records", std::to_string(r.input_records)});
  table.AddRow({"map output records", std::to_string(r.map_output_records)});
  table.AddRow({"output records", std::to_string(r.output_records)});
  table.AddRow({"map tasks (local)",
                std::to_string(r.num_map_tasks) + " (" +
                    std::to_string(r.local_map_tasks) + ")"});
  table.AddRow({"first output at",
                r.first_output_seconds < 0
                    ? "-"
                    : HumanSeconds(r.first_output_seconds)});
  table.AddRow({"dfs read", HumanBytes(double(r.Bytes(device::kDfsRead)))});
  table.AddRow({"map output bytes",
                HumanBytes(double(r.Bytes(device::kMapOutputWrite)))});
  table.AddRow({"shuffle bytes",
                HumanBytes(double(r.Bytes(device::kShuffleRead)))});
  table.AddRow({"reduce spill",
                HumanBytes(double(r.Bytes(device::kSpillWrite)))});
  table.AddRow({"dfs written", HumanBytes(double(r.Bytes(device::kDfsWrite)))});
  if (r.map_task_retries > 0 || r.reduce_task_retries > 0 ||
      r.speculative_launched > 0 || r.spec_reduce_launched > 0 ||
      r.faults_injected > 0) {
    table.AddRow({"map task retries", std::to_string(r.map_task_retries)});
    table.AddRow(
        {"reduce task retries", std::to_string(r.reduce_task_retries)});
    table.AddRow({"speculative (wins)",
                  std::to_string(r.speculative_launched) + " (" +
                      std::to_string(r.speculative_wins) + ")"});
    table.AddRow({"spec reduce (seeded/wins)",
                  std::to_string(r.spec_reduce_launched) + " (" +
                      std::to_string(r.spec_reduce_seeded_from_ckpt) + "/" +
                      std::to_string(r.spec_reduce_wins) + ")"});
    table.AddRow({"faults injected", std::to_string(r.faults_injected)});
  }
  if (r.checkpoints_written > 0 || r.checkpoints_loaded > 0 ||
      r.replay_records > 0) {
    table.AddRow(
        {"checkpoints written", std::to_string(r.checkpoints_written)});
    table.AddRow({"checkpoints loaded", std::to_string(r.checkpoints_loaded)});
    table.AddRow(
        {"checkpoint bytes", HumanBytes(double(r.checkpoint_bytes))});
    table.AddRow({"replayed records", std::to_string(r.replay_records)});
    table.AddRow({"recover time", HumanSeconds(r.recover_seconds)});
    if (r.block_cache_hits > 0 || r.block_cache_misses > 0) {
      table.AddRow({"block cache (hits/misses)",
                    std::to_string(r.block_cache_hits) + "/" +
                        std::to_string(r.block_cache_misses)});
      table.AddRow(
          {"block cache evictions", std::to_string(r.block_cache_evictions)});
    }
  }
  if (r.net_frames_sent > 0 || r.net_frames_received > 0) {
    table.AddRow({"net sent",
                  HumanBytes(double(r.net_bytes_sent)) + " (" +
                      std::to_string(r.net_frames_sent) + " frames)"});
    table.AddRow({"net received",
                  HumanBytes(double(r.net_bytes_received)) + " (" +
                      std::to_string(r.net_frames_received) + " frames)"});
    table.AddRow({"net retransmits", std::to_string(r.net_retransmits)});
    table.AddRow({"net reconnects", std::to_string(r.net_reconnects)});
    table.AddRow({"net stall time", HumanSeconds(r.net_stall_seconds)});
    if (r.Bytes(net::kNetSendSyscalls) > 0) {
      table.AddRow({"net syscalls (send/recv)",
                    std::to_string(r.Bytes(net::kNetSendSyscalls)) + "/" +
                        std::to_string(r.Bytes(net::kNetRecvSyscalls))});
    }
    if (r.Bytes(dataplane::kBlocksSent) > 0 ||
        r.Bytes(dataplane::kBlocksReceived) > 0) {
      table.AddRow({"blocks sent (compressed)",
                    std::to_string(r.Bytes(dataplane::kBlocksSent)) + " (" +
                        std::to_string(r.Bytes(dataplane::kBlocksCompressed)) +
                        ")"});
      table.AddRow({"blocks received",
                    std::to_string(r.Bytes(dataplane::kBlocksReceived))});
      if (r.Bytes(dataplane::kSendfileFrames) > 0) {
        table.AddRow({"sendfile frames",
                      std::to_string(r.Bytes(dataplane::kSendfileFrames)) +
                          " (" +
                          HumanBytes(double(r.Bytes(dataplane::kSendfileBytes))) +
                          ")"});
      }
    }
    if (r.shuffle_ack_replays > 0 || r.shuffle_dup_frames > 0) {
      table.AddRow({"ack replays (frames)",
                    std::to_string(r.shuffle_ack_replays) + " (" +
                        std::to_string(r.shuffle_ack_replayed_frames) + ")"});
      table.AddRow(
          {"dup frames absorbed", std::to_string(r.shuffle_dup_frames)});
    }
    // Over --transport=tcp the map group forks: the sender-side frame
    // counters live in the child, so the reduce-side report keys on the
    // decoder counters too.
    if (r.Bytes(coded::kCodedFrames) > 0 ||
        r.Bytes(coded::kCodedDecodedUnits) > 0) {
      table.AddRow({"coded frames",
                    std::to_string(r.Bytes(coded::kCodedFrames)) + " (" +
                        HumanBytes(double(r.Bytes(coded::kCodedPayloadBytes))) +
                        " payload)"});
      table.AddRow({"coded units (wire/local)",
                    std::to_string(r.Bytes(coded::kCodedDecodedUnits)) + "/" +
                        std::to_string(r.Bytes(coded::kCodedLocalUnits))});
      table.AddRow({"coded re-maps",
                    std::to_string(r.Bytes(coded::kCodedRemapTasks))});
      if (r.Bytes(coded::kCodedReconstructedSegments) > 0) {
        table.AddRow(
            {"coded reconstructions",
             std::to_string(r.Bytes(coded::kCodedReconstructedSegments))});
      }
    }
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\nper-phase CPU seconds:\n");
  for (const auto& [phase, secs] : r.cpu_seconds) {
    std::printf("  %-18s %8.3f\n", phase.c_str(), secs);
  }
}

// Runs the job as two OS processes: a forked child executes the map worker
// group and dials the parent's reduce group over a localhost socket —
// thread-per-connection blocking TCP (`epoll` false) or the epoll
// event-loop data plane with block batching (`epoll` true).  The fork
// happens after input generation, so the child inherits the DFS block
// metadata; it must _Exit so the parent-owned workspace cleanup never runs
// twice (and so registered segment files survive until the reducers have
// read them).
JobResult RunOverSockets(Platform& platform, const JobSpec& spec,
                         const JobOptions& options, double idle_timeout_s,
                         bool shared_fs, bool epoll, int sock_buf_bytes) {
  net::TcpTransport::Options topts;
  topts.sock_buf_bytes = sock_buf_bytes;
  dataplane::EventLoopTransport::Options eopts;
  eopts.sock_buf_bytes = sock_buf_bytes;
  std::unique_ptr<net::Transport> server;
  std::string endpoint;
  // Bind before fork: the listen backlog holds the child's dial.  Both
  // transports start their I/O threads lazily (Listen/Connect), so the
  // fork below is safe.
  if (epoll) {
    auto t = std::make_unique<dataplane::EventLoopTransport>(
        &platform.metrics(), eopts);
    t->Bind();
    endpoint = t->endpoint();
    server = std::move(t);
  } else {
    auto t = std::make_unique<net::TcpTransport>(&platform.metrics(), topts);
    t->Bind();
    endpoint = t->endpoint();
    server = std::move(t);
  }
  std::fflush(stdout);
  std::fflush(stderr);
  const pid_t child = fork();
  if (child < 0) {
    throw std::runtime_error(std::string("fork failed: ") +
                             std::strerror(errno));
  }
  if (child == 0) {
    int code = 0;
    try {
      // Release the inherited listen socket first.  Keeping it open lets a
      // post-shutdown reconnect dial land in the zombie backlog of a listener
      // the parent no longer owns — the connection is never accepted and the
      // client's close-side EOF wait would hang forever.  With the fd closed,
      // redials get ECONNREFUSED and fail fast.
      server->Shutdown();
      server.reset();
      std::unique_ptr<net::Transport> client;
      if (epoll) {
        client = std::make_unique<dataplane::EventLoopTransport>(
            &platform.metrics(), endpoint, eopts);
      } else {
        client = std::make_unique<net::TcpTransport>(&platform.metrics(),
                                                     endpoint, topts);
      }
      platform.RunMapGroup(spec, options, client.get(), shared_fs);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "map worker group: error: %s\n", e.what());
      std::fflush(stderr);
      code = 1;
    }
    std::_Exit(code);
  }
  std::printf("map worker group: pid %d -> reduce group at %s\n",
              static_cast<int>(child), endpoint.c_str());
  std::fflush(stdout);
  JobResult result;
  std::exception_ptr failure;
  try {
    result =
        platform.RunReduceGroup(spec, options, server.get(), idle_timeout_s);
  } catch (...) {
    failure = std::current_exception();
  }
  int status = 0;
  while (waitpid(child, &status, 0) < 0 && errno == EINTR) {
  }
  if (failure) std::rethrow_exception(failure);
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    throw std::runtime_error("map worker group process failed");
  }
  return result;
}

int CmdRun(const Config& cfg) {
  const auto workload = cfg.GetString("workload", "per_user_count");
  const auto runtime = cfg.GetString("runtime", "hash");
  const auto records = static_cast<std::uint64_t>(
      GetCheckedInt(cfg, "records", 1'000'000, /*min_value=*/1));
  const int reducers =
      static_cast<int>(GetCheckedInt(cfg, "reducers", 4, /*min_value=*/1));

  PlatformOptions popts;
  popts.num_nodes =
      static_cast<int>(GetCheckedInt(cfg, "nodes", 4, /*min_value=*/1));
  popts.block_bytes = static_cast<std::uint64_t>(
      GetCheckedInt(cfg, "block_bytes", 4 << 20, /*min_value=*/1));
  const int coded_r =
      static_cast<int>(GetCheckedInt(cfg, "coded-r", 0, /*min_value=*/0));
  // Coded mode needs r DFS replicas per block; default the replication
  // factor up to r so the common invocation is just --coded-r=N.
  popts.replication = static_cast<int>(GetCheckedInt(
      cfg, "replication", coded_r > 0 ? coded_r : 1, /*min_value=*/1));
  popts.max_task_attempts = static_cast<int>(
      GetCheckedInt(cfg, "max-attempts", 1, /*min_value=*/1));
  popts.speculative_execution = cfg.GetBool("speculate", false);
  popts.speculative_reduce = cfg.GetBool("speculate-reduce", false);
  popts.fault_plan = cfg.GetString("fault-plan", "");

  JobOptions options = RuntimeByName(runtime);
  options.map_side_combine = cfg.GetBool("combine", true);
  options.compress_spills = cfg.GetBool("compress", false);
  options.reduce_buffer_bytes = static_cast<std::size_t>(GetCheckedInt(
      cfg, "reduce_buffer",
      static_cast<std::int64_t>(options.reduce_buffer_bytes),
      /*min_value=*/1));
  const auto ckpt_interval =
      GetCheckedInt(cfg, "checkpoint-interval", 0, /*min_value=*/0);
  if (ckpt_interval > 0) {
    options.checkpoint.enabled = true;
    options.checkpoint.interval_records =
        static_cast<std::uint64_t>(ckpt_interval);
  }
  if (options.checkpoint.enabled) {
    options.checkpoint.retain = static_cast<int>(GetCheckedInt(
        cfg, "checkpoint-retain", options.checkpoint.retain, /*min_value=*/1));
    options.checkpoint.compress = cfg.GetBool("checkpoint-compress", false);
    options.checkpoint.dir = cfg.GetString("checkpoint-dir", "");
  } else if (cfg.Get("checkpoint-retain") || cfg.Get("checkpoint-dir") ||
             cfg.Get("checkpoint-compress")) {
    throw std::invalid_argument(
        "--checkpoint-retain/--checkpoint-dir/--checkpoint-compress require "
        "--checkpoint-interval=N (or runtime=checkpoint)");
  }

  const auto transport = cfg.GetString("transport", "loopback");
  const double shuffle_timeout = static_cast<double>(
      GetCheckedInt(cfg, "shuffle-timeout", 30, /*min_value=*/1));
  const bool ship_segments = cfg.GetBool("ship-segments", false);
  popts.sock_buf_bytes = static_cast<int>(
      GetCheckedInt(cfg, "sock-buf-bytes", 0, /*min_value=*/0));

  // Flag-combination validation: combinations that would silently do
  // nothing are rejected with a pointer at what the user probably wanted.
  if (popts.speculative_execution && options.shuffle == Shuffle::kPush) {
    throw std::invalid_argument(
        "--speculate is map-side speculation over a pull shuffle and is "
        "inert under the pipelined push shuffle of runtime '" + runtime +
        "': a duplicate map attempt's pushed output cannot be recalled. "
        "Use a pull runtime (runtime=hadoop), or speculate on the reduce "
        "side with --speculate-reduce + checkpointing.");
  }
  if (popts.max_task_attempts > 1 && options.shuffle == Shuffle::kPush &&
      !options.checkpoint.enabled) {
    throw std::invalid_argument(
        "--max-attempts is pull-only: under the push shuffle of runtime '" +
        runtime + "' a failed task's pipelined output cannot be recalled, "
        "so retries could never succeed. Use runtime=hadoop, or add "
        "--checkpoint-interval=N so reduce attempts resume from a "
        "checkpoint image.");
  }
  if (popts.speculative_reduce && !options.checkpoint.enabled) {
    throw std::invalid_argument(
        "--speculate-reduce requires checkpointing: the backup reduce "
        "attempt seeds from the primary's newest checkpoint image and "
        "replays only the un-acked shuffle suffix. Add "
        "--checkpoint-interval=N or use runtime=checkpoint.");
  }
  if (transport == "direct" &&
      (cfg.Get("shuffle-timeout") || cfg.Get("ship-segments"))) {
    throw std::invalid_argument(
        "--shuffle-timeout/--ship-segments apply to framed transports only "
        "(--transport=loopback, tcp, or epoll); with --transport=direct the "
        "shuffle never crosses a wire.");
  }
  if (popts.sock_buf_bytes > 0 && transport != "tcp" &&
      transport != "epoll") {
    throw std::invalid_argument(
        "--sock-buf-bytes sizes SO_SNDBUF/SO_RCVBUF on shuffle sockets and "
        "applies only to --transport=tcp or epoll.");
  }
  if (coded_r > 0 && transport == "direct") {
    throw std::invalid_argument(
        "--coded-r rides the framed shuffle as coded multicast frames and "
        "cannot work with --transport=direct (no wire, nothing to encode). "
        "Use --transport=loopback, tcp, or epoll.");
  }
  if (coded_r > 0 && popts.replication < coded_r) {
    throw std::invalid_argument(
        "--coded-r=" + std::to_string(coded_r) +
        " requires --replication>=" + std::to_string(coded_r) + " (have " +
        std::to_string(popts.replication) +
        "): every map block must be held by r co-located mappers to XOR "
        "against. Pass --replication=" + std::to_string(coded_r) +
        " or lower --coded-r.");
  }
  if (coded_r > 0 && options.shuffle != Shuffle::kPush) {
    throw std::invalid_argument(
        "--coded-r needs a push (pipelined) runtime to buffer chunks into "
        "multicast groups; runtime '" + runtime +
        "' pulls. Use runtime=hash, hotkey, mr_online, or checkpoint.");
  }
  if (cfg.Get("publish-snapshots") || cfg.Get("snapshot-interval") ||
      cfg.Get("snapshot-retain")) {
    throw std::invalid_argument(
        "--publish-snapshots/--snapshot-interval/--snapshot-retain belong to "
        "the serving plane, which snapshots a LIVE streaming job's state "
        "mid-run; a batch `run` job materializes its full output at the end "
        "and has nothing to serve early. Use `opmr_cli stream workload=" +
        workload + " --publish-snapshots=<host:port>` (algebraic workloads "
        "only) and point `opmr_cli frontend` at it.");
  }
  if (cfg.Get("staleness-budget")) {
    throw std::invalid_argument(
        "--staleness-budget is a serving-replica policy (the max ingest lag "
        "a query may observe) and means nothing to a batch `run` job. Set "
        "it on `opmr_cli frontend` as the tenant default, or per query on "
        "`opmr_cli query`.");
  }

  Platform platform(popts);
  if (coded_r > 0) platform.executor().set_coded(coded_r);
  if (platform.fault_injector() != nullptr) {
    std::printf("fault plan: %s\n",
                platform.fault_injector()->plan().ToString().c_str());
  }
  std::printf("generating %s input (%llu records)...\n", workload.c_str(),
              static_cast<unsigned long long>(records));
  const auto spec = PrepareWorkload(platform, workload, records, reducers);

  std::printf("running '%s' on runtime '%s' (transport %s)...\n",
              spec.name.c_str(), runtime.c_str(), transport.c_str());
  JobResult result;
  if (transport == "direct") {
    result = platform.Run(spec, options);
  } else if (transport == "loopback") {
    net::LoopbackTransport loopback(&platform.metrics());
    result = platform.RunWithTransport(spec, options, &loopback,
                                       /*shared_fs=*/!ship_segments);
  } else if (transport == "tcp" || transport == "epoll") {
    result = RunOverSockets(platform, spec, options, shuffle_timeout,
                            /*shared_fs=*/!ship_segments,
                            /*epoll=*/transport == "epoll",
                            popts.sock_buf_bytes);
  } else {
    throw std::invalid_argument(
        "unknown transport: " + transport +
        " (expected loopback, tcp, epoll, or direct)");
  }
  PrintJobReport(result);
  const auto dump = cfg.GetString("dump-output", "");
  if (!dump.empty()) {
    auto rows = platform.ReadOutput("output", reducers);
    std::sort(rows.begin(), rows.end());
    std::ofstream out(dump, std::ios::trunc);
    for (const auto& [key, value] : rows) {
      out << key << '\t' << value << '\n';
    }
    std::printf("wrote %zu sorted output rows to %s\n", rows.size(),
                dump.c_str());
  }
  return 0;
}

sched::JobTransport TransportByName(const std::string& name) {
  if (name == "direct") return sched::JobTransport::kDirect;
  if (name == "loopback") return sched::JobTransport::kLoopback;
  if (name == "tcp") return sched::JobTransport::kTcp;
  throw std::invalid_argument("unknown transport: " + name);
}

// ASCII density view of the cross-job timeline: one row per task kind,
// active-task counts sampled across the scheduler clock.
void PrintCrossJobTimeline(const std::vector<TaskInterval>& intervals) {
  double end = 0.0;
  for (const auto& iv : intervals) end = std::max(end, iv.end_s);
  if (end <= 0.0) return;
  constexpr int kCols = 64;
  static constexpr char kRamp[] = " .:-=+*#%@";
  std::printf("\ncross-job task activity (%s total):\n",
              HumanSeconds(end).c_str());
  for (int kind = 0; kind < 4; ++kind) {
    std::vector<int> counts(kCols, 0);
    int peak = 0;
    for (int c = 0; c < kCols; ++c) {
      const double t = end * (c + 0.5) / kCols;
      for (const auto& iv : intervals) {
        if (static_cast<int>(iv.kind) == kind && iv.begin_s <= t &&
            t < iv.end_s) {
          ++counts[c];
        }
      }
      peak = std::max(peak, counts[c]);
    }
    if (peak == 0) continue;
    std::string row(kCols, ' ');
    for (int c = 0; c < kCols; ++c) {
      row[c] = kRamp[std::min(9, counts[c] * 9 / peak)];
    }
    std::printf("  %-8s|%s| peak %d\n",
                TaskKindName(static_cast<TaskKind>(kind)), row.c_str(), peak);
  }
}

int CmdServe(const Config& cfg) {
  const auto spool = cfg.GetString("spool", "");
  if (spool.empty()) {
    throw std::invalid_argument(
        "serve: spool=<dir> (or spool=- for stdin) is required");
  }
  std::vector<sched::SpoolSpec> specs;
  if (spool == "-") {
    // Blank-line-separated key=value blocks on stdin.
    std::string line;
    std::string block;
    int seq = 0;
    const auto flush = [&] {
      if (block.empty()) return;
      std::istringstream in(block);
      char id[16];
      std::snprintf(id, sizeof(id), "job%03d", seq++);
      specs.push_back(sched::ParseSpoolSpec(id, in));
      block.clear();
    };
    while (std::getline(std::cin, line)) {
      if (line.find_first_not_of(" \t\r") == std::string::npos) {
        flush();
      } else {
        block += line + "\n";
      }
    }
    flush();
  } else {
    specs = sched::DrainSpoolDir(spool);
  }
  if (specs.empty()) {
    std::printf("serve: no job specs found in %s\n", spool.c_str());
    return 0;
  }

  PlatformOptions popts;
  popts.num_nodes =
      static_cast<int>(GetCheckedInt(cfg, "nodes", 4, /*min_value=*/1));
  Platform platform(popts);

  sched::SchedulerOptions sopts;
  sopts.map_slots =
      static_cast<int>(GetCheckedInt(cfg, "map-slots", 8, /*min_value=*/1));
  sopts.reduce_slots =
      static_cast<int>(GetCheckedInt(cfg, "reduce-slots", 8, /*min_value=*/1));
  sopts.memory_budget_bytes = static_cast<std::size_t>(GetCheckedInt(
      cfg, "memory-budget", 256ll << 20, /*min_value=*/1));
  sopts.max_concurrent = static_cast<int>(
      GetCheckedInt(cfg, "max-concurrent", 4, /*min_value=*/1));
  sopts.num_nodes = popts.num_nodes;
  const auto policy_name = cfg.GetString("policy", "fifo");
  const auto policy = sched::ParseSchedPolicy(policy_name);
  if (!policy) {
    throw std::invalid_argument("unknown policy: " + policy_name +
                                " (expected fifo, fair, or srw)");
  }
  sopts.policy = *policy;
  // Operation-level placement plane: placement=engine keeps the seed
  // behaviour; registration/locality route every map op through the plane.
  sopts.placement_mode =
      placement::ParsePlacementMode(cfg.GetString("placement", "engine"));
  sopts.placement_seed = static_cast<std::uint64_t>(
      GetCheckedInt(cfg, "placement-seed", 42, /*min_value=*/0));
  // Fair-share pools: pool=name:weight[:max_jobs][,more...] with an
  // optional "parent/" prefix on each name (parents listed first).
  if (const auto pool_list = cfg.GetString("pool", ""); !pool_list.empty()) {
    std::size_t begin = 0;
    while (begin <= pool_list.size()) {
      auto end = pool_list.find(',', begin);
      if (end == std::string::npos) end = pool_list.size();
      const std::string spec = pool_list.substr(begin, end - begin);
      if (!spec.empty()) sopts.pools.push_back(placement::ParsePoolConfig(spec));
      begin = end + 1;
    }
  }

  sched::JobScheduler scheduler(&platform.dfs(), &platform.files(), sopts);
  for (const auto& s : specs) {
    std::printf("job '%s': generating %s input (%llu records)...\n",
                s.id.c_str(), s.workload.c_str(),
                static_cast<unsigned long long>(s.records));
    sched::JobRequest request;
    request.id = s.id;
    request.spec = PrepareWorkload(platform, s.workload, s.records,
                                   s.reducers, s.id + ".in", s.id + ".out");
    request.options =
        s.runtime == "checkpoint"
            ? CheckpointedOnePassOptions(s.checkpoint_interval,
                                         s.checkpoint_retain)
            : RuntimeByName(s.runtime);
    request.transport = TransportByName(s.transport);
    request.memory_bytes = s.memory_bytes;
    request.speculative_reduce = s.speculative_reduce;
    request.pool = s.pool;
    if (request.speculative_reduce && !request.options.checkpoint.enabled) {
      throw std::invalid_argument(
          "spool job '" + s.id +
          "': speculative_reduce=1 requires runtime=checkpoint (the backup "
          "attempt seeds from a checkpoint image)");
    }
    scheduler.Submit(std::move(request));
  }
  std::printf("admitted %zu job(s): policy %s, %d map + %d reduce slots, "
              "%s memory budget\n",
              specs.size(), sched::SchedPolicyName(sopts.policy),
              sopts.map_slots, sopts.reduce_slots,
              HumanBytes(double(sopts.memory_budget_bytes)).c_str());

  const auto reports = scheduler.Drain();
  int failures = 0;
  for (const auto& report : reports) {
    std::printf("\n=== job '%s' (queued %s, ran %s) ===\n", report.id.c_str(),
                HumanSeconds(report.queue_wait_s()).c_str(),
                HumanSeconds(report.finished_s - report.started_s).c_str());
    if (report.failed) {
      ++failures;
      std::printf("FAILED: %s\n", report.error.c_str());
      continue;
    }
    PrintJobReport(report.result);
  }
  const auto stats = scheduler.stats();
  std::printf("\nmakespan %s | %d/%d jobs ok | peak %d concurrent | "
              "slot waits %lld (%s blocked)\n",
              HumanSeconds(stats.makespan_s).c_str(), stats.completed,
              stats.submitted, stats.peak_concurrent,
              static_cast<long long>(stats.slots.waits),
              HumanSeconds(stats.slots.wait_seconds).c_str());
  if (stats.placement_deferrals > 0) {
    std::printf("deferrals %lld (no-map %lld, no-reduce %lld, quota %lld)\n",
                static_cast<long long>(stats.placement_deferrals),
                static_cast<long long>(stats.no_map_worker_deferrals),
                static_cast<long long>(stats.no_reduce_worker_deferrals),
                static_cast<long long>(stats.quota_deferrals));
  }
  if (sopts.placement_mode != placement::PlacementMode::kEngine) {
    std::printf("placement %s: %lld ops planned (%lld data-local), "
                "%lld re-placed, %lld stolen\n",
                placement::PlacementModeName(sopts.placement_mode),
                static_cast<long long>(stats.placement.planned),
                static_cast<long long>(stats.placement.planned_local),
                static_cast<long long>(stats.placement.replacements),
                static_cast<long long>(stats.placement.steals));
  }
  for (const auto& pool : stats.pools) {
    std::printf("pool %-12s weight %.1f | %lld slot grants\n",
                pool.name.c_str(), pool.weight,
                static_cast<long long>(pool.total_grants));
  }
  PrintCrossJobTimeline(scheduler.Timeline());
  return failures == 0 ? 0 : 1;
}

int CmdSim(const Config& cfg) {
  const auto workload = cfg.GetString("workload", "sessionization");
  const auto runtime = cfg.GetString("runtime", "hadoop");
  const auto storage = cfg.GetString("storage", "hdd");

  sim::SimWorkload w;
  if (workload == "sessionization") w = sim::Sessionization256();
  else if (workload == "page_frequency") w = sim::PageFrequency508();
  else if (workload == "per_user_count") w = sim::PerUserCount256();
  else if (workload == "inverted_index") w = sim::InvertedIndex427();
  else throw std::invalid_argument("unknown sim workload: " + workload);

  sim::SimConfig config;
  config.num_nodes = static_cast<int>(cfg.GetInt("nodes", 10));
  config.merge_factor = static_cast<int>(cfg.GetInt("merge_factor", 10));
  if (runtime == "hadoop") config.runtime = sim::SimRuntime::kHadoop;
  else if (runtime == "mr_online") {
    config.runtime = sim::SimRuntime::kHop;
    config.snapshot_interval = 0.25;
    config.push_overhead = 1.15;
  } else if (runtime == "hash") {
    config.runtime = sim::SimRuntime::kHashOnePass;
  } else {
    throw std::invalid_argument("unknown sim runtime: " + runtime);
  }
  if (storage == "hdd+ssd") config.storage = sim::StorageArch::kHddPlusSsd;
  else if (storage == "separate") {
    config.storage = sim::StorageArch::kSeparate;
    w.input_bytes /= 2;
  }

  const auto r = sim::SimulateJob(w, config);
  std::printf("completion %s | map phase end %.0f s | merges %d | "
              "snapshots %d\n",
              HumanSeconds(r.completion_s).c_str(), r.map_phase_end_s,
              r.merge_operations, r.snapshots);
  std::printf("input %s | map out %s | spill w/r %s / %s | output %s\n",
              HumanBytes(r.input_read_bytes).c_str(),
              HumanBytes(r.map_output_write_bytes).c_str(),
              HumanBytes(r.spill_write_bytes).c_str(),
              HumanBytes(r.spill_read_bytes).c_str(),
              HumanBytes(r.output_write_bytes).c_str());
  TimeSeries util("CPU utilization");
  for (const auto& s : r.cpu_util) util.Append(s.time_s, s.value);
  std::printf("%s", AsciiPlot(util, 78, 10, 1.0).c_str());
  return 0;
}

int CmdTopK(const Config& cfg) {
  const auto workload = cfg.GetString("workload", "page_frequency");
  const auto k = static_cast<std::size_t>(cfg.GetInt("k", 10));
  const auto records =
      static_cast<std::uint64_t>(cfg.GetInt("records", 1'000'000));

  Platform platform({.num_nodes = 4});
  const auto spec = PrepareWorkload(platform, workload, records, 4);
  const auto winners =
      RunTopKPipeline(platform, spec, HashOnePassOptions(), k);
  std::printf("top %zu of '%s':\n", k, workload.c_str());
  int rank = 1;
  for (const auto& w : winners) {
    std::printf("  %2d. %-24s %llu\n", rank++, w.payload.c_str(),
                static_cast<unsigned long long>(w.score));
  }
  return 0;
}

int CmdSort(const Config& cfg) {
  const auto records =
      static_cast<std::uint64_t>(cfg.GetInt("records", 1'000'000));
  const int reducers = static_cast<int>(cfg.GetInt("reducers", 8));

  Platform platform({.num_nodes = 4});
  Rng rng(1);
  auto writer = platform.dfs().Create("input");
  for (std::uint64_t i = 0; i < records; ++i) {
    char buf[28];
    std::snprintf(buf, sizeof(buf), "%016llx-%08llx",
                  static_cast<unsigned long long>(rng.Next()),
                  static_cast<unsigned long long>(i));
    writer->Append(Slice(buf, 25));
  }
  writer->Close();

  const auto spec = GlobalSortJob(platform, "input", "sorted", reducers);
  const auto result = platform.Run(spec, HadoopOptions());

  std::string prev;
  std::uint64_t rows = 0;
  bool ordered = true;
  for (int r = 0; r < reducers; ++r) {
    for (const auto& [key, value] :
         platform.ReadOutputFile("sorted.part" + std::to_string(r))) {
      ordered = ordered && prev <= key;
      prev = key;
      ++rows;
    }
  }
  std::printf("sorted %llu records in %s across %d range partitions; "
              "globally ordered: %s; reducer imbalance %.2fx\n",
              static_cast<unsigned long long>(rows),
              HumanSeconds(result.wall_seconds).c_str(), reducers,
              ordered ? "yes" : "NO", result.ReducerImbalance());
  return ordered && rows == records ? 0 : 1;
}

// Splits "host:port" at the last colon; throws on malformed input.
std::pair<std::string, int> SplitHostPort(const std::string& endpoint,
                                          const std::string& flag) {
  const auto colon = endpoint.rfind(':');
  if (endpoint.empty() || colon == std::string::npos || colon == 0 ||
      colon + 1 == endpoint.size()) {
    throw std::invalid_argument(flag + ": expected <host:port>, got '" +
                                endpoint + "'");
  }
  int port = 0;
  try {
    std::size_t consumed = 0;
    port = std::stoi(endpoint.substr(colon + 1), &consumed);
    if (consumed != endpoint.size() - colon - 1 || port < 0 || port > 65535) {
      throw std::invalid_argument("bad port");
    }
  } catch (const std::exception&) {
    throw std::invalid_argument(flag + ": '" + endpoint.substr(colon + 1) +
                                "' is not a port number");
  }
  return {endpoint.substr(0, colon), port};
}

// Pretty-prints a servable value: aggregates are 8-byte u64s; anything
// else is shown raw.
std::string ShowValue(const std::string& value) {
  return value.size() == 8 ? std::to_string(DecodeU64(value.data())) : value;
}

int CmdStream(const Config& cfg) {
  const auto workload = cfg.GetString("workload", "sessionization");
  if (!IsStreamingWorkload(workload)) {
    throw std::invalid_argument(
        "stream: workload '" + workload + "' has no algebraic streaming "
        "form (expected sessionization, per_user_count or page_frequency); "
        "holistic workloads need end-of-stream and run with `opmr_cli run`.");
  }
  if (cfg.Get("staleness-budget")) {
    throw std::invalid_argument(
        "--staleness-budget is a replica-side policy: the publisher always "
        "publishes its freshest state. Set it on `opmr_cli frontend` (tenant "
        "default) or `opmr_cli query` (per query).");
  }
  const auto publish = cfg.GetString("publish-snapshots", "");
  if (publish.empty() &&
      (cfg.Get("snapshot-interval") || cfg.Get("snapshot-retain") ||
       cfg.Get("snapshot-dir") || cfg.Get("linger"))) {
    throw std::invalid_argument(
        "--snapshot-interval/--snapshot-retain/--snapshot-dir/--linger "
        "shape snapshot publication and require "
        "--publish-snapshots=<host:port> (the endpoint frontends subscribe "
        "to); without it the stream publishes nothing.");
  }
  const auto records = static_cast<std::uint64_t>(
      GetCheckedInt(cfg, "records", 200'000, /*min_value=*/1));
  const int workers =
      static_cast<int>(GetCheckedInt(cfg, "workers", 4, /*min_value=*/1));
  const auto gap = static_cast<std::uint64_t>(GetCheckedInt(
      cfg, "session-gap", static_cast<std::int64_t>(kDefaultSessionGap),
      /*min_value=*/1));

  PlatformOptions popts;
  popts.num_nodes =
      static_cast<int>(GetCheckedInt(cfg, "nodes", 4, /*min_value=*/1));
  Platform platform(popts);
  std::printf("generating %s click stream (%llu records)...\n",
              workload.c_str(), static_cast<unsigned long long>(records));
  ClickStreamOptions gen;
  gen.num_records = records;
  gen.num_users = std::max<std::uint64_t>(100, records / 20);
  gen.num_urls = std::max<std::uint64_t>(100, records / 50);
  GenerateClickStream(platform.dfs(), "stream_input", gen);

  MetricRegistry metrics;
  std::unique_ptr<net::TcpTransport> server;
  std::unique_ptr<serve::SnapshotPublisher> publisher;
  StreamingOptions sopts;
  sopts.hot_key_capacity = static_cast<std::size_t>(
      GetCheckedInt(cfg, "hot-keys", 0, /*min_value=*/0));
  if (!publish.empty()) {
    const auto [host, port] = SplitHostPort(publish, "publish-snapshots");
    net::TcpTransport::Options topts;
    topts.bind_address = host;
    topts.bind_port = port;
    server = std::make_unique<net::TcpTransport>(&metrics, topts);
    server->Bind();
    serve::PublisherOptions pub;
    pub.job = workload;
    pub.dir = cfg.GetString("snapshot-dir", "serve_images");
    pub.retain = static_cast<int>(
        GetCheckedInt(cfg, "snapshot-retain", 4, /*min_value=*/1));
    pub.secret = cfg.GetString("secret", "");
    publisher = std::make_unique<serve::SnapshotPublisher>(server.get(),
                                                           &metrics, pub);
    sopts.snapshot_interval_records = static_cast<std::uint64_t>(
        GetCheckedInt(cfg, "snapshot-interval",
                      static_cast<std::int64_t>(
                          std::max<std::uint64_t>(records / 10, 1)),
                      /*min_value=*/1));
    sopts.publish_snapshot = [&pub_ref = *publisher](CheckpointImage image) {
      pub_ref.Publish(std::move(image));
    };
    std::printf("stream: serving '%s' snapshots at %s every %llu records "
                "(retain %d, auth %s)\n",
                workload.c_str(), server->endpoint().c_str(),
                static_cast<unsigned long long>(
                    sopts.snapshot_interval_records),
                pub.retain, pub.secret.empty() ? "off" : "on");
    std::fflush(stdout);
  }

  StreamingJob job(StreamingQueryByName(workload, gap), sopts, workers);
  for (const auto& block : platform.dfs().ListBlocks("stream_input")) {
    auto reader = platform.dfs().OpenBlock(block);
    Slice record;
    while (reader->Next(&record)) job.Ingest(record);
  }
  if (publisher != nullptr) {
    // Final image: the tail since the last interval boundary.
    publisher->Publish(job.CollectSnapshot());
    std::printf("stream: ingest done; published %llu versions (latest v%llu) "
                "to %zu subscriber(s)\n",
                static_cast<unsigned long long>(publisher->published()),
                static_cast<unsigned long long>(publisher->latest_version()),
                publisher->subscribers());
    std::fflush(stdout);
    const auto linger =
        GetCheckedInt(cfg, "linger", 0, /*min_value=*/0);
    if (linger > 0) {
      std::printf("stream: lingering %llds for late fetches...\n",
                  static_cast<long long>(linger));
      std::fflush(stdout);
      std::this_thread::sleep_for(std::chrono::seconds(linger));
    }
  }

  std::printf("top answers:\n");
  for (const auto& [key, value] : job.TopAnswers(10)) {
    std::printf("  %-24s %s\n", key.c_str(), ShowValue(value).c_str());
  }
  const auto results = job.Finish();
  std::printf("stream: %llu records -> %llu routed pairs -> %zu final keys\n",
              static_cast<unsigned long long>(job.records_ingested()),
              static_cast<unsigned long long>(job.pairs_routed()),
              results.size());
  if (server != nullptr) server->Shutdown();
  return 0;
}

int CmdFrontend(const Config& cfg) {
  const auto publisher_ep = cfg.GetString("publisher", "");
  if (publisher_ep.empty()) {
    throw std::invalid_argument(
        "frontend: publisher=<host:port> is required (the streaming job's "
        "--publish-snapshots endpoint)");
  }
  (void)SplitHostPort(publisher_ep, "publisher");
  const auto [lhost, lport] =
      SplitHostPort(cfg.GetString("listen", "127.0.0.1:0"), "listen");
  const auto workload = cfg.GetString("workload", "sessionization");
  if (!IsStreamingWorkload(workload)) {
    throw std::invalid_argument(
        "frontend: workload '" + workload + "' has no streaming form, so no "
        "publisher can exist for it (expected sessionization, per_user_count "
        "or page_frequency)");
  }
  const auto gap = static_cast<std::uint64_t>(GetCheckedInt(
      cfg, "session-gap", static_cast<std::int64_t>(kDefaultSessionGap),
      /*min_value=*/1));
  const double wait_s =
      static_cast<double>(GetCheckedInt(cfg, "wait", 60, /*min_value=*/1));

  MetricRegistry metrics;
  net::TcpTransport::Options bopts;
  bopts.bind_address = lhost;
  bopts.bind_port = lport;
  bopts.advertise_address = cfg.GetString("advertise", "");
  net::TcpTransport server(&metrics, bopts);
  server.Bind();
  net::TcpTransport link(&metrics, publisher_ep);

  serve::FrontendOptions fopts;
  fopts.job = workload;
  fopts.aggregator = StreamingQueryByName(workload, gap).aggregator;
  fopts.worker = cfg.GetString("id", "frontend");
  fopts.secret = cfg.GetString("secret", "");
  fopts.scan_limit = static_cast<std::uint32_t>(
      GetCheckedInt(cfg, "scan-limit", 1000, /*min_value=*/1));
  if (cfg.Get("staleness-budget")) {
    fopts.default_policy.staleness_budget = static_cast<std::uint64_t>(
        GetCheckedInt(cfg, "staleness-budget", 0, /*min_value=*/0));
  }
  fopts.default_policy.rate_per_s = static_cast<double>(
      GetCheckedInt(cfg, "rate", 0, /*min_value=*/0));
  fopts.default_policy.burst = static_cast<double>(
      GetCheckedInt(cfg, "burst", 0, /*min_value=*/0));
  serve::SnapshotFrontend frontend(&server, &link, &metrics, fopts);
  std::printf("frontend '%s': serving '%s' at %s, snapshots from %s "
              "(staleness budget %s, rate %s)\n",
              fopts.worker.c_str(), workload.c_str(),
              server.endpoint().c_str(), publisher_ep.c_str(),
              cfg.Get("staleness-budget")
                  ? std::to_string(fopts.default_policy.staleness_budget)
                        .c_str()
                  : "unlimited",
              fopts.default_policy.rate_per_s > 0
                  ? (std::to_string(fopts.default_policy.rate_per_s) + "/s")
                        .c_str()
                  : "unlimited");
  std::fflush(stdout);

  // Optional membership: frontends register read-only — the scheduler's
  // placement gate never counts them as job slots.
  std::unique_ptr<coord::CoordClient> member;
  const auto join = cfg.GetString("join", "");
  if (!join.empty()) {
    (void)SplitHostPort(join, "join");
    coord::CoordClient::Options mopts;
    mopts.coordinator = join;
    mopts.worker_id = fopts.worker;
    mopts.endpoint = server.endpoint();
    mopts.role = net::WireRole::kFrontend;
    mopts.secret = cfg.GetString("coord-secret", fopts.secret);
    member = std::make_unique<coord::CoordClient>(&metrics, mopts);
    member->Join(static_cast<double>(
        GetCheckedInt(cfg, "join-timeout", 30, /*min_value=*/1)));
    std::printf("frontend '%s': joined %s as role frontend (gen %llu)\n",
                fopts.worker.c_str(), join.c_str(),
                static_cast<unsigned long long>(member->generation()));
    std::fflush(stdout);
  }

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(wait_s);
  while (std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  std::printf("frontend '%s': served %lld queries (%lld throttled, %lld "
              "stale-rejected), applied %lld snapshot(s), serving v%llu "
              "(watermark %llu, announced %llu)\n",
              fopts.worker.c_str(),
              static_cast<long long>(metrics.Value("serve.queries")),
              static_cast<long long>(metrics.Value("serve.throttled")),
              static_cast<long long>(metrics.Value("serve.stale_rejects")),
              static_cast<long long>(metrics.Value("serve.applied")),
              static_cast<unsigned long long>(frontend.serving_version()),
              static_cast<unsigned long long>(frontend.serving_watermark()),
              static_cast<unsigned long long>(frontend.announced_watermark()));
  if (member != nullptr) member->Stop();
  server.Shutdown();
  return 0;
}

int CmdQuery(const Config& cfg) {
  const auto at = cfg.GetString("at", "");
  if (at.empty()) {
    throw std::invalid_argument(
        "query: at=<host:port> is required (a frontend's listen endpoint)");
  }
  (void)SplitHostPort(at, "at");
  const auto op = cfg.GetString("op", "point");

  net::QueryMsg q;
  if (cfg.Get("staleness-budget")) {
    q.staleness_budget = static_cast<std::uint64_t>(
        GetCheckedInt(cfg, "staleness-budget", 0, /*min_value=*/0));
  }
  if (op == "point") {
    q.op = net::QueryOp::kPoint;
    q.key = cfg.GetString("key", "");
    if (q.key.empty()) {
      throw std::invalid_argument("query: op=point requires key=<K>");
    }
  } else if (op == "topk") {
    q.op = net::QueryOp::kTopK;
    q.limit = static_cast<std::uint32_t>(
        GetCheckedInt(cfg, "n", 10, /*min_value=*/1));
  } else if (op == "scan") {
    q.op = net::QueryOp::kScan;
    q.key = cfg.GetString("key", "");
    q.end_key = cfg.GetString("end", "");
    q.limit = static_cast<std::uint32_t>(
        GetCheckedInt(cfg, "limit", 100, /*min_value=*/1));
  } else {
    throw std::invalid_argument("query: unknown op '" + op +
                                "' (expected point, topk or scan)");
  }

  MetricRegistry metrics;
  net::TcpTransport transport(&metrics, at);
  serve::QueryClient client(&transport, cfg.GetString("tenant", "cli"));
  const auto result = client.Query(std::move(q));
  std::printf("status %s | answered from v%llu (watermark %llu, lag %llu)\n",
              net::QueryStatusName(result.status),
              static_cast<unsigned long long>(result.version),
              static_cast<unsigned long long>(result.watermark),
              static_cast<unsigned long long>(result.lag));
  if (!result.error.empty()) std::printf("  %s\n", result.error.c_str());
  for (const auto& [key, value] : result.rows) {
    std::printf("  %-24s %s\n", key.c_str(), ShowValue(value).c_str());
  }
  transport.Shutdown();
  return result.status == net::QueryStatus::kOk ? 0 : 1;
}

// Splits "a,b,c" into non-empty tokens.
std::vector<std::string> SplitCommaList(const std::string& arg) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= arg.size()) {
    const std::size_t comma = arg.find(',', start);
    const std::size_t end = comma == std::string::npos ? arg.size() : comma;
    if (end > start) out.push_back(arg.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

// Parses peers=<id@host:port,...> for replicated-coordinator mode.
std::vector<replica::CoordinatorReplica::Peer> ParsePeers(
    const std::string& arg) {
  std::vector<replica::CoordinatorReplica::Peer> peers;
  for (const std::string& token : SplitCommaList(arg)) {
    const std::size_t at = token.find('@');
    if (at == std::string::npos || at == 0) {
      throw std::invalid_argument("peers: expected id@host:port, got '" +
                                  token + "'");
    }
    replica::CoordinatorReplica::Peer peer;
    unsigned long id_value = 0;
    std::size_t consumed = 0;
    try {
      id_value = std::stoul(token.substr(0, at), &consumed);
    } catch (const std::exception&) {
      consumed = 0;
    }
    if (consumed != at || id_value == 0) {
      throw std::invalid_argument("peers: replica id in '" + token +
                                  "' must be a positive integer");
    }
    peer.id = static_cast<std::uint32_t>(id_value);
    peer.endpoint = token.substr(at + 1);
    (void)SplitHostPort(peer.endpoint, "peers");
    peers.push_back(std::move(peer));
  }
  return peers;
}

// Replicated-coordinator mode: this process is ONE member of an HA group.
// It serves workers only while leading; as a standby it tails the leader's
// changelog and answers worker Registers with a redirect.  Runs until the
// job's workers have all departed (observed while leading) or `wait`
// elapses.
int RunCoordinatorReplica(const Config& cfg, net::TcpTransport& transport,
                          MetricRegistry& metrics, int want_maps,
                          int want_reduces, double lease_s, double grace_s,
                          double wait_s) {
  replica::CoordinatorReplica::Options ropts;
  ropts.replica_id = static_cast<std::uint32_t>(
      GetCheckedInt(cfg, "replica-id", 1, /*min_value=*/1));
  ropts.peers = ParsePeers(cfg.GetString("peers", ""));
  ropts.endpoint = transport.endpoint();
  ropts.changelog_dir = cfg.GetString(
      "changelog-dir", "opmr_replica_" + std::to_string(ropts.replica_id));
  ropts.secret = cfg.GetString("secret", "");
  ropts.lease_s = lease_s;
  ropts.rejoin_grace_s = grace_s;
  const std::uint32_t self = ropts.replica_id;
  ropts.on_worker_lost = [](const std::string& id) {
    std::printf("coordinator: worker '%s' LOST (lease + rejoin grace "
                "expired)\n", id.c_str());
    std::fflush(stdout);
  };
  ropts.on_worker_returned = [](const std::string& id) {
    std::printf("coordinator: worker '%s' returned (re-registered while "
                "suspect)\n", id.c_str());
    std::fflush(stdout);
  };
  ropts.on_leadership = [self](bool leading, std::uint64_t epoch) {
    std::printf("coordinator: replica %u %s at epoch %llu\n", self,
                leading ? "LEADING" : "standing by",
                static_cast<unsigned long long>(epoch));
    std::fflush(stdout);
  };
  replica::CoordinatorReplica rep(&transport, &metrics, ropts);
  std::printf("coordinator: replica %u listening on %s (%zu peer(s), "
              "changelog %s, auth %s)\n", self, transport.endpoint().c_str(),
              ropts.peers.size(), ropts.changelog_dir.string().c_str(),
              ropts.secret.empty() ? "off" : "on");
  std::fflush(stdout);

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(wait_s);
  bool group_complete = false;
  bool ever_led = false;
  while (std::chrono::steady_clock::now() < deadline) {
    if (rep.is_leader()) {
      ever_led = true;
      const std::size_t maps = rep.registry().LiveCount(net::WireRole::kMap);
      const std::size_t reduces =
          rep.registry().LiveCount(net::WireRole::kReduce);
      if (!group_complete && maps >= static_cast<std::size_t>(want_maps) &&
          reduces >= static_cast<std::size_t>(want_reduces)) {
        group_complete = true;
        const auto roster = rep.registry().Snapshot();
        std::printf("coordinator: group complete (epoch %llu, leader epoch "
                    "%llu):\n",
                    static_cast<unsigned long long>(roster.epoch),
                    static_cast<unsigned long long>(rep.leader_epoch()));
        for (const auto& e : roster.entries) {
          std::printf("  %-12s %-6s gen %llu  %s\n", e.worker.c_str(),
                      e.role == net::WireRole::kMap ? "map" : "reduce",
                      static_cast<unsigned long long>(e.generation),
                      e.endpoint.c_str());
        }
        std::fflush(stdout);
      }
      if (group_complete && maps == 0 && reduces == 0) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  rep.Stop();
  transport.Shutdown();
  std::printf("coordinator: replica %u exiting | applied %llu record(s), "
              "%lld election(s), %lld snapshot(s) written, %lld installed, "
              "%lld stale frame(s) fenced, %lld redirect(s)\n", self,
              static_cast<unsigned long long>(rep.applied_index()),
              static_cast<long long>(metrics.Value("replica.elections")),
              static_cast<long long>(metrics.Value("replica.snapshots_written")),
              static_cast<long long>(
                  metrics.Value("replica.snapshots_installed")),
              static_cast<long long>(metrics.Value("replica.stale_frames")),
              static_cast<long long>(metrics.Value("replica.redirects")));
  // A standby that never led has done its duty by tailing; only a leader
  // that timed out waiting for its group reports failure.
  return ever_led && !group_complete ? 1 : 0;
}

int CmdCoordinator(const Config& cfg) {
  const auto [host, port] =
      SplitHostPort(cfg.GetString("listen", ""), "listen");
  const int want_maps =
      static_cast<int>(GetCheckedInt(cfg, "map-workers", 1, /*min_value=*/0));
  const int want_reduces = static_cast<int>(
      GetCheckedInt(cfg, "reduce-workers", 1, /*min_value=*/0));
  const double lease_s =
      static_cast<double>(GetCheckedInt(cfg, "lease-ms", 2000, 1)) / 1e3;
  const double grace_s =
      static_cast<double>(GetCheckedInt(cfg, "grace-ms", 2000, 1)) / 1e3;
  const double wait_s =
      static_cast<double>(GetCheckedInt(cfg, "wait", 120, /*min_value=*/1));

  MetricRegistry metrics;
  net::TcpTransport::Options topts;
  topts.bind_address = host;
  topts.bind_port = port;
  net::TcpTransport transport(&metrics, topts);
  transport.Bind();

  if (cfg.Get("replica-id") || cfg.Get("peers") || cfg.Get("changelog-dir")) {
    return RunCoordinatorReplica(cfg, transport, metrics, want_maps,
                                 want_reduces, lease_s, grace_s, wait_s);
  }

  coord::Coordinator::Options copts;
  copts.secret = cfg.GetString("secret", "");
  copts.lease_s = lease_s;
  copts.rejoin_grace_s = grace_s;
  copts.on_worker_lost = [](const std::string& id) {
    std::printf("coordinator: worker '%s' LOST (lease + rejoin grace "
                "expired)\n", id.c_str());
    std::fflush(stdout);
  };
  copts.on_worker_returned = [](const std::string& id) {
    std::printf("coordinator: worker '%s' returned (re-registered while "
                "suspect)\n", id.c_str());
    std::fflush(stdout);
  };
  coord::Coordinator coordinator(&transport, &metrics, copts);
  std::printf("coordinator: listening on %s (lease %.1fs, rejoin grace "
              "%.1fs, auth %s)\n",
              transport.endpoint().c_str(), lease_s, grace_s,
              copts.secret.empty() ? "off" : "on");
  std::fflush(stdout);

  if (!coordinator.WaitForWorkers(net::WireRole::kMap,
                                  static_cast<std::size_t>(want_maps),
                                  wait_s) ||
      !coordinator.WaitForWorkers(net::WireRole::kReduce,
                                  static_cast<std::size_t>(want_reduces),
                                  wait_s)) {
    std::fprintf(stderr,
                 "coordinator: timed out after %.0fs waiting for %d map + "
                 "%d reduce workers\n", wait_s, want_maps, want_reduces);
    return 1;
  }
  const auto roster = coordinator.registry().Snapshot();
  std::printf("coordinator: group complete (epoch %llu):\n",
              static_cast<unsigned long long>(roster.epoch));
  for (const auto& e : roster.entries) {
    std::printf("  %-12s %-6s gen %llu  %s\n", e.worker.c_str(),
                e.role == net::WireRole::kMap ? "map" : "reduce",
                static_cast<unsigned long long>(e.generation),
                e.endpoint.c_str());
  }
  std::fflush(stdout);

  // Serve membership until every worker has stopped heartbeating and aged
  // out of the registry (normal completion), bounded by the same wait.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(wait_s);
  while (coordinator.registry().LiveCount(net::WireRole::kMap) > 0 ||
         coordinator.registry().LiveCount(net::WireRole::kReduce) > 0) {
    if (std::chrono::steady_clock::now() >= deadline) {
      std::fprintf(stderr, "coordinator: %zu worker(s) still registered "
                   "after %.0fs; giving up\n",
                   coordinator.registry().LiveCount(net::WireRole::kMap) +
                       coordinator.registry().LiveCount(net::WireRole::kReduce),
                   wait_s);
      return 1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  coordinator.Stop();
  transport.Shutdown();
  std::printf("coordinator: all workers departed | %lld registers, %lld "
              "heartbeats, %lld lease expirations, %lld lost, %lld "
              "returned, %lld auth failures\n",
              static_cast<long long>(metrics.Value("coord.registers")),
              static_cast<long long>(metrics.Value("coord.heartbeats")),
              static_cast<long long>(metrics.Value("coord.expirations")),
              static_cast<long long>(metrics.Value("coord.workers_lost")),
              static_cast<long long>(metrics.Value("coord.workers_returned")),
              static_cast<long long>(metrics.Value("coord.auth_failures")));
  return 0;
}

int CmdWorker(const Config& cfg) {
  const auto join = cfg.GetString("join", "");
  const std::vector<std::string> join_list = SplitCommaList(join);
  if (join_list.empty()) {
    throw std::invalid_argument(
        "worker: join=<host:port[,host:port...]> is required");
  }
  for (const std::string& ep : join_list) {
    (void)SplitHostPort(ep, "join");  // validate shape early
  }
  const auto id = cfg.GetString("id", "");
  if (id.empty()) throw std::invalid_argument("worker: id=<name> is required");
  const auto role = cfg.GetString("role", "");
  const bool is_reduce = role == "reduce";
  if (!is_reduce && role != "map") {
    throw std::invalid_argument("worker: role=map|reduce is required");
  }
  const auto secret = cfg.GetString("secret", "");
  const int index =
      static_cast<int>(GetCheckedInt(cfg, "index", 0, /*min_value=*/0));
  const int count =
      static_cast<int>(GetCheckedInt(cfg, "count", 1, /*min_value=*/1));
  const double join_timeout = static_cast<double>(
      GetCheckedInt(cfg, "join-timeout", 30, /*min_value=*/1));
  const double shuffle_timeout = static_cast<double>(
      GetCheckedInt(cfg, "shuffle-timeout", 30, /*min_value=*/1));
  const bool shared_fs = cfg.GetBool("shared-fs", false);

  const auto workload = cfg.GetString("workload", "per_user_count");
  const auto runtime = cfg.GetString("runtime", "hash");
  const auto records = static_cast<std::uint64_t>(
      GetCheckedInt(cfg, "records", 1'000'000, /*min_value=*/1));
  const int reducers =
      static_cast<int>(GetCheckedInt(cfg, "reducers", 4, /*min_value=*/1));

  PlatformOptions popts;
  popts.num_nodes =
      static_cast<int>(GetCheckedInt(cfg, "nodes", 4, /*min_value=*/1));
  popts.fault_plan = cfg.GetString("fault-plan", "");
  Platform platform(popts);
  if (platform.fault_injector() != nullptr) {
    std::printf("worker '%s': fault plan: %s\n", id.c_str(),
                platform.fault_injector()->plan().ToString().c_str());
    // Run() scopes the net fault hook to the job; install it here too so
    // coordination traffic (Register/Heartbeat) outside Run() is gated.
    net::SetNetFaultHook(platform.fault_injector());
  }

  // Every worker generates the full dataset deterministically, so DFS
  // block metadata (ids, order) agrees across the group without a shared
  // filesystem; map workers then run only their partition of the blocks.
  const auto spec = PrepareWorkload(platform, workload, records, reducers);
  JobOptions options = RuntimeByName(runtime);
  options.map_side_combine = cfg.GetBool("combine", true);

  int rc = 0;
  if (is_reduce) {
    net::TcpTransport::Options sopts;
    sopts.bind_address = cfg.GetString("bind", "127.0.0.1");
    sopts.advertise_address = cfg.GetString("advertise", "");
    net::TcpTransport shuffle_server(&platform.metrics(), sopts);
    shuffle_server.Bind();

    coord::CoordClient::Options mopts;
    mopts.coordinator = join_list.front();
    mopts.endpoints = join_list;
    mopts.worker_id = id;
    mopts.endpoint = shuffle_server.endpoint();
    mopts.role = net::WireRole::kReduce;
    mopts.secret = secret;
    coord::CoordClient member(&platform.metrics(), mopts);
    member.Join(join_timeout);
    std::printf("worker '%s': joined %s as reduce group (gen %llu), "
                "shuffle at %s\n", id.c_str(), join.c_str(),
                static_cast<unsigned long long>(member.generation()),
                shuffle_server.endpoint().c_str());
    std::fflush(stdout);

    platform.executor().set_cluster_identity(id, secret);
    const auto result =
        platform.RunReduceGroup(spec, options, &shuffle_server,
                                shuffle_timeout);
    PrintJobReport(result);
    const auto dump = cfg.GetString("dump-output", "");
    if (!dump.empty()) {
      auto rows = platform.ReadOutput("output", reducers);
      std::sort(rows.begin(), rows.end());
      std::ofstream out(dump, std::ios::trunc);
      for (const auto& [key, value] : rows) {
        out << key << '\t' << value << '\n';
      }
      std::printf("worker '%s': wrote %zu sorted output rows to %s\n",
                  id.c_str(), rows.size(), dump.c_str());
    }
    member.Stop();
  } else {
    coord::CoordClient::Options mopts;
    mopts.coordinator = join_list.front();
    mopts.endpoints = join_list;
    mopts.worker_id = id;
    mopts.endpoint = "-";  // map workers serve nothing
    mopts.role = net::WireRole::kMap;
    mopts.secret = secret;
    coord::CoordClient member(&platform.metrics(), mopts);
    member.Join(join_timeout);
    std::vector<net::MembershipMsg::Entry> reduce_live;
    if (!member.WaitForRole(net::WireRole::kReduce, 1, join_timeout,
                            &reduce_live)) {
      throw std::runtime_error(
          "worker '" + id + "': no live reduce worker appeared in the "
          "membership view within " + std::to_string(join_timeout) + "s");
    }
    const std::string shuffle_endpoint = reduce_live.front().endpoint;
    std::printf("worker '%s': joined %s as map partition %d/%d (gen %llu) "
                "-> shuffle at %s\n", id.c_str(), join.c_str(), index, count,
                static_cast<unsigned long long>(member.generation()),
                shuffle_endpoint.c_str());
    std::fflush(stdout);

    net::TcpTransport transport(&platform.metrics(), shuffle_endpoint);
    platform.executor().set_cluster_identity(id, secret);
    platform.executor().set_map_partition(index, count);
    platform.executor().set_coord_client(&member);
    try {
      const auto result =
          platform.RunMapGroup(spec, options, &transport, shared_fs);
      PrintJobReport(result);
    } catch (...) {
      platform.executor().set_coord_client(nullptr);
      throw;
    }
    platform.executor().set_coord_client(nullptr);
    member.Stop();
  }
  net::SetNetFaultHook(nullptr);
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: opmr_cli <run|stream|frontend|query|coordinator|"
                 "worker|serve|sim|topk|sort> [key=value ...]\n"
                 "see the header of tools/opmr_cli.cc for the full flags\n");
    return 2;
  }
  const std::string command = argv[1];
  const auto cfg = opmr::Config::FromArgs(argc - 1, argv + 1);
  try {
    if (command == "run") return CmdRun(cfg);
    if (command == "stream") return CmdStream(cfg);
    if (command == "frontend") return CmdFrontend(cfg);
    if (command == "query") return CmdQuery(cfg);
    if (command == "coordinator") return CmdCoordinator(cfg);
    if (command == "worker") return CmdWorker(cfg);
    if (command == "serve") return CmdServe(cfg);
    if (command == "sim") return CmdSim(cfg);
    if (command == "topk") return CmdTopK(cfg);
    if (command == "sort") return CmdSort(cfg);
    std::fprintf(stderr, "unknown command: %s\n", command.c_str());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
