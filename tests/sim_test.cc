// Cluster-simulator tests: conservation laws, phase structure, and the
// qualitative paper findings every figure bench depends on.
#include "sim/simulator.h"

#include <gtest/gtest.h>

#include "sim/config.h"
#include "sim/workload.h"

namespace opmr::sim {
namespace {

// Small, fast workload for structural tests (2 GB instead of 256 GB).
SimWorkload SmallSessionization() {
  SimWorkload w = Sessionization256();
  w.input_bytes = 8e9;
  w.num_reduce_tasks = 8;
  return w;
}

SimConfig SmallConfig() {
  SimConfig c;
  c.num_nodes = 4;
  // Scale reducer memory with the scaled-down input so the run/merge
  // structure matches the paper-scale configuration (~35 runs/reducer).
  c.reduce_memory_bytes = 30e6;
  return c;
}

TEST(Simulator, CompletesAndConservesBytes) {
  const auto r = SimulateJob(SmallSessionization(), SmallConfig());
  EXPECT_GT(r.completion_s, 0.0);
  EXPECT_GT(r.map_phase_end_s, 0.0);
  EXPECT_LT(r.map_phase_end_s, r.completion_s);

  const auto w = SmallSessionization();
  // Input read equals the block-rounded input size.
  EXPECT_NEAR(r.input_read_bytes, w.input_bytes, 64e6 * 4);
  // Map output equals input times the ratio.
  EXPECT_NEAR(r.map_output_write_bytes, w.input_bytes * w.map_output_ratio,
              64e6 * 4);
  // Everything written as spill is read back at least once (merges + final).
  EXPECT_GE(r.spill_read_bytes, r.spill_write_bytes * 0.99);
  EXPECT_NEAR(r.output_write_bytes, w.input_bytes * w.output_ratio, 1e6);
}

TEST(Simulator, TaskCountsMatchLayout) {
  const auto w = SmallSessionization();
  const auto r = SimulateJob(w, SmallConfig());
  EXPECT_EQ(r.num_map_tasks,
            static_cast<int>(std::ceil(w.input_bytes / (64.0 * (1 << 20)))));
  EXPECT_EQ(r.num_reduce_tasks, 8);
}

TEST(Simulator, SeriesCoverTheWholeRun) {
  const auto r = SimulateJob(SmallSessionization(), SmallConfig());
  ASSERT_FALSE(r.cpu_util.empty());
  EXPECT_EQ(r.cpu_util.size(), r.cpu_iowait.size());
  EXPECT_EQ(r.cpu_util.size(), r.read_rate.size());
  EXPECT_NEAR(r.cpu_util.back().time_s, r.completion_s, 2.0);
  for (const auto& s : r.cpu_util) {
    EXPECT_GE(s.value, 0.0);
    EXPECT_LE(s.value, 1.0 + 1e-9);
  }
}

TEST(Simulator, TimelineIntervalsAreWellFormed) {
  const auto r = SimulateJob(SmallSessionization(), SmallConfig());
  bool saw_map = false, saw_reduce = false, saw_merge = false;
  for (const auto& iv : r.timeline) {
    EXPECT_GE(iv.begin_s, 0.0);
    EXPECT_LE(iv.end_s, r.completion_s + 1.0);
    EXPECT_LE(iv.begin_s, iv.end_s);
    if (iv.kind == opmr::TaskKind::kMap) saw_map = true;
    if (iv.kind == opmr::TaskKind::kReduce) saw_reduce = true;
    if (iv.kind == opmr::TaskKind::kMerge) saw_merge = true;
  }
  EXPECT_TRUE(saw_map);
  EXPECT_TRUE(saw_reduce);
  EXPECT_TRUE(saw_merge) << "sessionization must trigger background merges";
}

TEST(Simulator, BlockingMergeValleyExistsForSortMerge) {
  // The paper's central observation: after maps finish, CPUs idle while the
  // multi-pass merge grinds the disk (Fig. 2b/2c).
  const auto r = SimulateJob(SmallSessionization(), SmallConfig());
  const double map_util = r.MeanCpuUtil(0, r.map_phase_end_s);
  const double valley =
      r.MinWindowCpuUtil(r.map_phase_end_s, r.completion_s * 0.95, 60);
  EXPECT_LT(valley, map_util * 0.5) << "no merge valley found";
  const double valley_iowait =
      r.MeanIowait(r.map_phase_end_s,
                   r.map_phase_end_s +
                       0.3 * (r.completion_s - r.map_phase_end_s));
  EXPECT_GT(valley_iowait, 0.3) << "iowait spike missing";
}

TEST(Simulator, HashRuntimeAvoidsSortSpillAndFinishesFaster) {
  const auto w = SmallSessionization();
  auto cfg = SmallConfig();
  const auto hadoop = SimulateJob(w, cfg);
  cfg.runtime = SimRuntime::kHashOnePass;
  const auto hash = SimulateJob(w, cfg);
  EXPECT_EQ(hash.spill_write_bytes, 0.0);
  EXPECT_EQ(hash.merge_operations, 0);
  EXPECT_LT(hash.completion_s, hadoop.completion_s);
}

TEST(Simulator, HashRuntimeSpillFractionIsHonoured) {
  auto cfg = SmallConfig();
  cfg.runtime = SimRuntime::kHashOnePass;
  cfg.hash_spill_fraction = 0.1;
  const auto w = SmallSessionization();
  const auto r = SimulateJob(w, cfg);
  EXPECT_NEAR(r.spill_write_bytes,
              0.1 * w.input_bytes * w.map_output_ratio,
              0.02 * w.input_bytes);
}

TEST(Simulator, HopTakesSnapshotsAndAddsIo) {
  const auto w = SmallSessionization();
  auto cfg = SmallConfig();
  const auto hadoop = SimulateJob(w, cfg);

  cfg.runtime = SimRuntime::kHop;
  cfg.snapshot_interval = 0.25;
  cfg.push_overhead = 1.15;
  const auto hop = SimulateJob(w, cfg);

  EXPECT_GT(hop.snapshots, 0);
  EXPECT_GT(hop.spill_read_bytes, hadoop.spill_read_bytes)
      << "snapshot re-merges must add read I/O";
  EXPECT_GE(hop.completion_s, hadoop.completion_s * 0.95)
      << "pipelining must not magically beat the blocking sort-merge";
}

TEST(Simulator, LowerMergeFactorMeansMorePassesAndIo) {
  const auto w = SmallSessionization();
  auto cfg = SmallConfig();
  cfg.merge_factor = 4;
  const auto f4 = SimulateJob(w, cfg);
  cfg.merge_factor = 16;
  const auto f16 = SimulateJob(w, cfg);
  EXPECT_GT(f4.merge_operations, f16.merge_operations);
  EXPECT_GT(f4.spill_write_bytes, f16.spill_write_bytes);
  EXPECT_GE(f4.completion_s, f16.completion_s);
}

TEST(Simulator, SsdForIntermediateDataShortensTheJob) {
  const auto w = SmallSessionization();
  auto cfg = SmallConfig();
  const auto hdd = SimulateJob(w, cfg);
  cfg.storage = StorageArch::kHddPlusSsd;
  const auto ssd = SimulateJob(w, cfg);
  EXPECT_LT(ssd.completion_s, hdd.completion_s);
  // But blocking persists (paper §III-C conclusion).
  const double valley =
      ssd.MinWindowCpuUtil(ssd.map_phase_end_s, ssd.completion_s * 0.95, 60);
  EXPECT_LT(valley, 0.5);
}

TEST(Simulator, SeparateStorageStillBlocks) {
  auto w = SmallSessionization();
  w.input_bytes /= 2;
  auto cfg = SmallConfig();
  cfg.storage = StorageArch::kSeparate;
  const auto r = SimulateJob(w, cfg);
  EXPECT_GT(r.completion_s, 0.0);
  const double valley =
      r.MinWindowCpuUtil(r.map_phase_end_s, r.completion_s * 0.95, 60);
  EXPECT_LT(valley, 0.3);
}

TEST(Simulator, CountingWorkloadHasNoMergePhase) {
  SimWorkload w = PerUserCount256();
  w.input_bytes = 8e9;
  w.num_reduce_tasks = 8;
  const auto r = SimulateJob(w, SmallConfig());
  EXPECT_EQ(r.merge_operations, 0) << "1% intermediate data fits in memory";
  // Reduce phase is tiny: job ends shortly after the map phase.
  EXPECT_LT(r.completion_s - r.map_phase_end_s, 0.2 * r.completion_s);
}

TEST(Simulator, StragglersExtendTheJob) {
  SimWorkload w = PerUserCount256();
  w.input_bytes = 3e9;
  w.num_reduce_tasks = 8;
  auto cfg = SmallConfig();
  const auto clean = SimulateJob(w, cfg);
  cfg.straggler_fraction = 0.03;
  cfg.straggler_factor = 0.125;
  const auto straggled = SimulateJob(w, cfg);
  EXPECT_GT(straggled.stragglers, 0);
  EXPECT_GT(straggled.completion_s, clean.completion_s * 1.3);
}

TEST(Simulator, SpeculativeExecutionRecoversStragglerLoss) {
  SimWorkload w = PerUserCount256();
  w.input_bytes = 3e9;
  w.num_reduce_tasks = 8;
  auto cfg = SmallConfig();
  cfg.straggler_fraction = 0.03;
  cfg.straggler_factor = 0.125;
  cfg.speculation_threshold = 1.3;
  const auto straggled = SimulateJob(w, cfg);
  cfg.speculative_execution = true;
  const auto speculative = SimulateJob(w, cfg);
  EXPECT_GT(speculative.speculative_launched, 0);
  EXPECT_GT(speculative.speculative_wins, 0);
  EXPECT_LT(speculative.completion_s, straggled.completion_s * 0.8);
  // Duplicated work must not double-count data: byte conservation holds.
  EXPECT_NEAR(speculative.input_read_bytes / straggled.input_read_bytes, 1.0,
              0.2);
}

TEST(Simulator, SpeculationIdleWithoutStragglers) {
  const auto w = SmallSessionization();
  auto cfg = SmallConfig();
  cfg.speculative_execution = true;
  const auto r = SimulateJob(w, cfg);
  // Homogeneous tasks: few if any duplicates, and results unchanged.
  EXPECT_LE(r.speculative_wins, r.speculative_launched);
  EXPECT_GT(r.completion_s, 0.0);
}

TEST(Simulator, ThrowsOnRunawayConfiguration) {
  SimWorkload w = SmallSessionization();
  SimConfig cfg = SmallConfig();
  cfg.max_sim_seconds = 5;  // absurdly small
  EXPECT_THROW(SimulateJob(w, cfg), std::runtime_error);
}

TEST(Simulator, MeanHelpersHandleEmptyWindows) {
  const auto r = SimulateJob(SmallSessionization(), SmallConfig());
  EXPECT_DOUBLE_EQ(r.MeanCpuUtil(1e9, 2e9), 0.0);
  EXPECT_DOUBLE_EQ(r.MeanIowait(1e9, 2e9), 0.0);
}

}  // namespace
}  // namespace opmr::sim
