// Reduce-path stress tests: force every spill / merge / recursion branch
// with tiny buffers and verify exactness against reference answers.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "core/opmr.h"
#include "engine/aggregators.h"
#include "engine/reduce_hash.h"
#include "storage/file_manager.h"
#include "workloads/clickstream.h"
#include "workloads/tasks.h"

namespace opmr {
namespace {

// --- ExternalHashAggregate unit tests -----------------------------------------

class ExternalAggregateTest : public ::testing::Test {
 protected:
  ExternalAggregateTest() : files_(FileManager::CreateTemp("opmr-xagg")) {
    env_.files = &files_;
    env_.metrics = &metrics_;
  }

  std::filesystem::path WriteRun(
      const std::vector<std::pair<std::string, std::string>>& records) {
    RunWriter w(files_.NewFile("in"), IoChannel(&metrics_, "t.bytes"));
    for (const auto& [k, v] : records) w.Append(k, v);
    const auto path = w.path();
    w.Close();
    return path;
  }

  FileManager files_;
  MetricRegistry metrics_;
  RuntimeEnv env_;
};

TEST_F(ExternalAggregateTest, GroupsAllValuesPerKey) {
  const auto run = WriteRun({{"a", "1"}, {"b", "2"}, {"a", "3"}, {"c", "4"},
                             {"a", "5"}});
  std::map<std::string, std::size_t> group_sizes;
  ExternalHashAggregate({run}, 0, 1 << 20, env_,
                        [&](Slice key, const std::vector<Slice>& values) {
                          group_sizes[key.ToString()] = values.size();
                        });
  EXPECT_EQ(group_sizes.at("a"), 3u);
  EXPECT_EQ(group_sizes.at("b"), 1u);
  EXPECT_EQ(group_sizes.at("c"), 1u);
}

TEST_F(ExternalAggregateTest, MultipleRunsAreUnified) {
  const auto r1 = WriteRun({{"k", "1"}, {"x", "2"}});
  const auto r2 = WriteRun({{"k", "3"}});
  std::map<std::string, std::size_t> sizes;
  ExternalHashAggregate({r1, r2}, 0, 1 << 20, env_,
                        [&](Slice key, const std::vector<Slice>& values) {
                          sizes[key.ToString()] = values.size();
                        });
  EXPECT_EQ(sizes.at("k"), 2u);
  EXPECT_EQ(sizes.at("x"), 1u);
}

TEST_F(ExternalAggregateTest, TinyBudgetForcesRecursionYetStaysExact) {
  std::vector<std::pair<std::string, std::string>> records;
  std::map<std::string, std::uint64_t> expected;
  Rng rng(9);
  for (int i = 0; i < 20'000; ++i) {
    const std::string k = "key" + std::to_string(rng.Uniform(500));
    records.emplace_back(k, "0123456789");
    ++expected[k];
  }
  const auto run = WriteRun(records);

  std::map<std::string, std::uint64_t> actual;
  ExternalHashAggregate({run}, 0, /*budget=*/8 << 10, env_,
                        [&](Slice key, const std::vector<Slice>& values) {
                          actual[key.ToString()] +=
                              static_cast<std::uint64_t>(values.size());
                        });
  EXPECT_EQ(actual, expected);
  EXPECT_GT(metrics_.Value(device::kSpillWrite), 0)
      << "an 8 KiB budget over ~500 KiB of data must spill";
}

TEST_F(ExternalAggregateTest, GiantSingleKeyGroupDoesNotRecurseForever) {
  std::vector<std::pair<std::string, std::string>> records;
  for (int i = 0; i < 5'000; ++i) {
    records.emplace_back("hot", "padpadpadpadpad");
  }
  const auto run = WriteRun(records);
  std::size_t hot_count = 0;
  // Budget far below the single group's footprint: the single-key bucket
  // must be processed in memory instead of recursing.
  ExternalHashAggregate({run}, 0, /*budget=*/4 << 10, env_,
                        [&](Slice key, const std::vector<Slice>& values) {
                          ASSERT_EQ(key.ToString(), "hot");
                          hot_count = values.size();
                        });
  EXPECT_EQ(hot_count, 5'000u);
}

TEST_F(ExternalAggregateTest, EmptyInputProducesNothing) {
  const auto run = WriteRun({});
  ExternalHashAggregate({run}, 0, 1 << 20, env_,
                        [&](Slice, const std::vector<Slice>&) { FAIL(); });
}

// --- Forced-stress integration through the platform ---------------------------

std::map<std::string, std::uint64_t> CountsByUser(Platform& platform,
                                                  const std::string& prefix,
                                                  int reducers) {
  std::map<std::string, std::uint64_t> out;
  for (const auto& [k, v] : platform.ReadOutput(prefix, reducers)) {
    out[k] = DecodeValueU64(v);
  }
  return out;
}

class ReducePathStress : public ::testing::Test {
 protected:
  ReducePathStress() : platform_({.num_nodes = 2, .block_bytes = 128u << 10}) {
    ClickStreamOptions gen;
    gen.num_records = 60'000;
    gen.num_users = 3'000;
    GenerateClickStream(platform_.dfs(), "clicks", gen);
    reference_ = Run("ref", HadoopOptions());
  }

  std::map<std::string, std::uint64_t> Run(const std::string& tag,
                                           JobOptions options) {
    const auto spec = PerUserCountJob("clicks", "out_" + tag, 3);
    last_result_ = platform_.Run(spec, options);
    return CountsByUser(platform_, "out_" + tag, 3);
  }

  Platform platform_;
  std::map<std::string, std::uint64_t> reference_;
  JobResult last_result_;
};

TEST_F(ReducePathStress, SortMergeMultiPassMergeIsExact) {
  JobOptions options = HadoopOptions();
  options.map_side_combine = false;       // big shuffled volume
  options.reduce_buffer_bytes = 16u << 10;  // many memory spills
  options.merge_factor = 2;                 // maximal merge passes
  EXPECT_EQ(Run("sm_stress", options), reference_);
  EXPECT_GT(last_result_.Bytes(device::kSpillRead), 0);
}

TEST_F(ReducePathStress, SortMergeTinyMapBufferSpillsMapSide) {
  JobOptions options = HadoopOptions();
  options.map_buffer_bytes = 8u << 10;  // many sorted spills per map task
  EXPECT_EQ(Run("sm_mapspill", options), reference_);
}

TEST_F(ReducePathStress, HybridHashDemotionAndRecursionIsExact) {
  JobOptions options = HashOnePassOptions();
  options.hash_reduce = HashReduce::kHybridHash;
  options.map_side_combine = false;
  options.reduce_buffer_bytes = 16u << 10;
  EXPECT_EQ(Run("hh_stress", options), reference_);
  EXPECT_GT(last_result_.Bytes(device::kSpillWrite), 0);
}

TEST_F(ReducePathStress, IncrementalTableSpillsAreExact) {
  JobOptions options = HashOnePassOptions();
  options.map_side_combine = false;
  options.reduce_buffer_bytes = 16u << 10;
  EXPECT_EQ(Run("inc_stress", options), reference_);
  EXPECT_GT(last_result_.Bytes(device::kSpillWrite), 0);
}

TEST_F(ReducePathStress, HotKeyTinyCapacityIsExact) {
  JobOptions options = HotKeyOnePassOptions(/*capacity=*/16);
  options.map_side_combine = false;
  options.reduce_buffer_bytes = 16u << 10;
  EXPECT_EQ(Run("hot_stress", options), reference_);
}

TEST_F(ReducePathStress, HotKeyAmpleMemoryNeverSpills) {
  JobOptions options = HotKeyOnePassOptions(/*capacity=*/8192);
  options.reduce_buffer_bytes = 64u << 20;
  EXPECT_EQ(Run("hot_ample", options), reference_);
  EXPECT_EQ(last_result_.Bytes(device::kSpillWrite), 0);
}

TEST_F(ReducePathStress, PushAndPullAgreeUnderStress) {
  JobOptions push = HashOnePassOptions();
  push.map_side_combine = false;
  push.reduce_buffer_bytes = 32u << 10;
  push.push_chunk_bytes = 2u << 10;
  push.push_queue_chunks = 2;  // heavy back-pressure + diversions
  JobOptions pull = push;
  pull.shuffle = Shuffle::kPull;
  EXPECT_EQ(Run("push_stress", push), reference_);
  EXPECT_EQ(Run("pull_stress", pull), reference_);
}

TEST_F(ReducePathStress, SnapshotsAreSubsetOfFinalAnswer) {
  JobOptions options = MapReduceOnlineOptions();
  options.map_side_combine = false;
  Run("snap", options);
  // Snapshot counts must never exceed the final counts (they reflect a
  // prefix of the input).
  for (int s = 1; s <= 3; ++s) {
    for (int r = 0; r < 3; ++r) {
      const std::string name = "out_snap.snapshot" + std::to_string(s) +
                               ".part" + std::to_string(r);
      if (!platform_.dfs().Exists(name)) continue;
      for (const auto& [user, value] : platform_.ReadOutputFile(name)) {
        ASSERT_TRUE(reference_.count(user)) << user;
        EXPECT_LE(DecodeValueU64(value), reference_.at(user)) << user;
      }
    }
  }
}

}  // namespace
}  // namespace opmr
