#include "fault/fault.h"

#include <gtest/gtest.h>

#include <fstream>

#include "metrics/counters.h"
#include "storage/file_manager.h"

namespace opmr {
namespace {

TEST(FaultPlanTest, ParsesSeedAndPoints) {
  const auto plan = FaultPlan::Parse(
      "seed=7;map_crash:task=0,record=500;io_write:tag=map_out,"
      "after_bytes=64k;slow_node:node=2,delay_ms=0.5,rate=0.25");
  EXPECT_EQ(plan.seed, 7u);
  ASSERT_EQ(plan.faults.size(), 3u);

  EXPECT_EQ(plan.faults[0].point, FaultPoint::kMapCrash);
  EXPECT_EQ(plan.faults[0].task, 0);
  EXPECT_EQ(plan.faults[0].record, 500u);
  EXPECT_EQ(plan.faults[0].attempts, 1);

  EXPECT_EQ(plan.faults[1].point, FaultPoint::kIoWrite);
  EXPECT_EQ(plan.faults[1].tag, "map_out");
  EXPECT_EQ(plan.faults[1].after_bytes, 64u << 10);

  EXPECT_EQ(plan.faults[2].point, FaultPoint::kSlowNode);
  EXPECT_EQ(plan.faults[2].node, 2);
  EXPECT_DOUBLE_EQ(plan.faults[2].delay_ms, 0.5);
  EXPECT_DOUBLE_EQ(plan.faults[2].rate, 0.25);
}

TEST(FaultPlanTest, DefaultsAndEmpty) {
  const auto empty = FaultPlan::Parse("");
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.seed, 1u);

  const auto seed_only = FaultPlan::Parse("seed=42");
  EXPECT_TRUE(seed_only.empty());
  EXPECT_EQ(seed_only.seed, 42u);

  const auto bare = FaultPlan::Parse("reduce_crash");
  ASSERT_EQ(bare.faults.size(), 1u);
  EXPECT_EQ(bare.faults[0].point, FaultPoint::kReduceCrash);
  EXPECT_EQ(bare.faults[0].task, -1);
  EXPECT_EQ(bare.faults[0].record, 0u);
  EXPECT_DOUBLE_EQ(bare.faults[0].rate, 0.0);
}

TEST(FaultPlanTest, ByteSuffixes) {
  const auto plan = FaultPlan::Parse(
      "io_read:after_bytes=3;io_read:after_bytes=2k;"
      "io_read:after_bytes=5m;io_read:after_bytes=1g");
  ASSERT_EQ(plan.faults.size(), 4u);
  EXPECT_EQ(plan.faults[0].after_bytes, 3u);
  EXPECT_EQ(plan.faults[1].after_bytes, 2u << 10);
  EXPECT_EQ(plan.faults[2].after_bytes, 5u << 20);
  EXPECT_EQ(plan.faults[3].after_bytes, 1u << 30);
}

TEST(FaultPlanTest, RejectsMalformedSpecs) {
  EXPECT_THROW(FaultPlan::Parse("not_a_point:task=1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::Parse("map_crash:bogus_key=1"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::Parse("map_crash:task"), std::invalid_argument);
}

TEST(FaultPlanTest, ToStringRoundTrips) {
  const std::string spec =
      "seed=9;map_crash:task=3,record=100,attempts=2;"
      "io_write:tag=reduce_spill,rate=0.01";
  const auto plan = FaultPlan::Parse(spec);
  const auto reparsed = FaultPlan::Parse(plan.ToString());
  EXPECT_EQ(reparsed.seed, plan.seed);
  ASSERT_EQ(reparsed.faults.size(), plan.faults.size());
  for (std::size_t i = 0; i < plan.faults.size(); ++i) {
    EXPECT_EQ(reparsed.faults[i].ToString(), plan.faults[i].ToString());
  }
}

TEST(FaultPlanTest, LoadsPlanFile) {
  FileManager files(std::filesystem::temp_directory_path() /
                    "opmr-fault-test");
  const auto path = files.NewFile("plan");
  {
    std::ofstream out(path);
    out << "# a chaos plan\n";
    out << "seed=13\n";
    out << "map_crash:task=1,record=50\n";
    out << "\n";
    out << "io_read:tag=dfs_block,rate=0.5\n";
  }
  const auto plan = FaultPlan::Load(path.string());
  EXPECT_EQ(plan.seed, 13u);
  ASSERT_EQ(plan.faults.size(), 2u);
  EXPECT_EQ(plan.faults[0].point, FaultPoint::kMapCrash);
  EXPECT_EQ(plan.faults[1].point, FaultPoint::kIoRead);
}

TEST(FaultPlanTest, PointNames) {
  EXPECT_STREQ(FaultPointName(FaultPoint::kMapCrash), "map_crash");
  EXPECT_STREQ(FaultPointName(FaultPoint::kReduceCrash), "reduce_crash");
  EXPECT_STREQ(FaultPointName(FaultPoint::kIoWrite), "io_write");
  EXPECT_STREQ(FaultPointName(FaultPoint::kIoRead), "io_read");
  EXPECT_STREQ(FaultPointName(FaultPoint::kReplicaLoss), "replica_loss");
  EXPECT_STREQ(FaultPointName(FaultPoint::kSlowNode), "slow_node");
  EXPECT_STREQ(FaultPointName(FaultPoint::kFetchStall), "fetch_stall");
}

TEST(FaultScopeTest, NestsAndRestores) {
  EXPECT_EQ(FaultScope::Current().kind, FaultScope::Kind::kNone);
  {
    FaultScope outer(FaultScope::Kind::kMap, 3, 1, 0);
    EXPECT_EQ(FaultScope::Current().kind, FaultScope::Kind::kMap);
    EXPECT_EQ(FaultScope::Current().task, 3);
    EXPECT_EQ(FaultScope::Current().attempt, 1);
    EXPECT_EQ(FaultScope::Current().node, 0);
    {
      FaultScope inner(FaultScope::Kind::kReduce, 7, 2);
      EXPECT_EQ(FaultScope::Current().kind, FaultScope::Kind::kReduce);
      EXPECT_EQ(FaultScope::Current().task, 7);
    }
    EXPECT_EQ(FaultScope::Current().kind, FaultScope::Kind::kMap);
    EXPECT_EQ(FaultScope::Current().task, 3);
  }
  EXPECT_EQ(FaultScope::Current().kind, FaultScope::Kind::kNone);
}

TEST(FaultInjectorTest, CrashFiresAtRecordWithinAttemptBudget) {
  MetricRegistry metrics;
  FaultInjector injector(FaultPlan::Parse("map_crash:task=2,record=10"),
                         &metrics);
  // Attempt 1: records before 10 pass, record 10 fires.
  FaultScope scope(FaultScope::Kind::kMap, 2, 1);
  for (std::uint64_t r = 1; r < 10; ++r) injector.OnMapRecord(2, r);
  injector.OnMapRecord(3, 10);  // wrong task: no fire
  EXPECT_THROW(injector.OnMapRecord(2, 10), InjectedFault);
  EXPECT_EQ(injector.injected(), 1);
}

TEST(FaultInjectorTest, RetryAttemptEscapesBudget) {
  MetricRegistry metrics;
  FaultInjector injector(FaultPlan::Parse("map_crash:task=0,record=5"),
                         &metrics);
  {
    FaultScope attempt1(FaultScope::Kind::kMap, 0, 1);
    EXPECT_THROW(injector.OnMapRecord(0, 5), InjectedFault);
  }
  {
    FaultScope attempt2(FaultScope::Kind::kMap, 0, 2);
    injector.OnMapRecord(0, 5);  // budget exhausted: passes
  }
  EXPECT_EQ(injector.injected(), 1);
}

TEST(FaultInjectorTest, RateDrawsAreDeterministic) {
  MetricRegistry m1, m2;
  const auto plan = FaultPlan::Parse("seed=21;map_crash:rate=0.05");
  FaultInjector a(plan, &m1);
  FaultInjector b(plan, &m2);
  FaultScope scope(FaultScope::Kind::kMap, 0, 1);
  int fires_a = 0, fires_b = 0;
  for (std::uint64_t r = 1; r <= 2'000; ++r) {
    try {
      a.OnMapRecord(0, r);
    } catch (const InjectedFault&) {
      ++fires_a;
    }
    try {
      b.OnMapRecord(0, r);
    } catch (const InjectedFault&) {
      ++fires_b;
    }
  }
  EXPECT_EQ(fires_a, fires_b);
  EXPECT_GT(fires_a, 0);    // 0.05 x 2000 ≈ 100 expected
  EXPECT_LT(fires_a, 400);  // and far from "always fires"
}

TEST(FaultInjectorTest, ReplicaLossDropsRequestedReplica) {
  MetricRegistry metrics;
  FaultInjector injector(FaultPlan::Parse("replica_loss:node=1"), &metrics);
  std::vector<int> replicas{0, 1, 2};
  injector.FilterReplicas(&replicas, /*block_id=*/4);
  EXPECT_EQ(replicas, (std::vector<int>{0, 2}));
  EXPECT_EQ(injector.injected(), 1);
}

TEST(FaultInjectorTest, IoFaultMatchesTagAndByteThreshold) {
  MetricRegistry metrics;
  FaultInjector injector(
      FaultPlan::Parse("io_write:tag=map_out,after_bytes=100"), &metrics);
  FaultScope scope(FaultScope::Kind::kMap, 0, 1);
  const std::filesystem::path match = "/tmp/ws/map_out_000012.bin";
  const std::filesystem::path other = "/tmp/ws/reduce_spill_000001.bin";
  injector.BeforeWrite(other, 0, 4096);     // wrong tag
  injector.BeforeWrite(match, 0, 50);       // does not cross 100
  injector.BeforeWrite(match, 200, 50);     // already past 100
  EXPECT_THROW(injector.BeforeWrite(match, 60, 50), InjectedFault);
  EXPECT_EQ(injector.injected(), 1);
}

}  // namespace
}  // namespace opmr
