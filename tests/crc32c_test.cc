// CRC-32C (Castagnoli): the hardware fast path must be bit-identical to
// the table-driven software fallback over arbitrary buffers and arbitrary
// chunkings, and both must match the published check value.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>

#include "common/crc32c.h"
#include "common/rng.h"

namespace opmr {
namespace {

TEST(Crc32c, MatchesPublishedCheckValue) {
  // The canonical CRC-32C check vector (RFC 3720 / "CHECK" value of the
  // Castagnoli polynomial): crc32c("123456789") == 0xE3069283.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);
}

TEST(Crc32c, HardwareAndSoftwarePathsAgreeOnRandomBuffers) {
  if (!Crc32cHardwareAvailable()) {
    GTEST_SKIP() << "no crc32c instructions on this CPU; software path is "
                    "the only path and is covered by the check vector";
  }
  Rng rng(0xc5c32cull);
  for (int trial = 0; trial < 200; ++trial) {
    // Sizes straddle the 8-byte word loop and its 0..7-byte tail.
    const std::size_t size = static_cast<std::size_t>(rng.Next() % 4096);
    std::string buf(size, '\0');
    for (auto& c : buf) c = static_cast<char>(rng.Next() & 0xff);
    const std::uint32_t sw =
        Crc32cFinal(Crc32cUpdateSoftware(kCrc32cInit, buf.data(), buf.size()));
    const std::uint32_t hw =
        Crc32cFinal(Crc32cUpdateHardware(kCrc32cInit, buf.data(), buf.size()));
    EXPECT_EQ(hw, sw) << "divergence at trial " << trial << " size " << size;
  }
}

TEST(Crc32c, ChunkedUpdatesEqualMonolithic) {
  Rng rng(0xfeedull);
  std::string buf(1537, '\0');
  for (auto& c : buf) c = static_cast<char>(rng.Next() & 0xff);
  const std::uint32_t whole = Crc32c(buf.data(), buf.size());
  for (std::size_t chunk : {1u, 3u, 7u, 64u, 1000u}) {
    std::uint32_t crc = kCrc32cInit;
    for (std::size_t off = 0; off < buf.size(); off += chunk) {
      const std::size_t n = std::min(chunk, buf.size() - off);
      crc = Crc32cUpdate(crc, buf.data() + off, n);
    }
    EXPECT_EQ(Crc32cFinal(crc), whole) << "chunk " << chunk;
  }
}

}  // namespace
}  // namespace opmr
