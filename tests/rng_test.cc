#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

namespace opmr {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(99), b(99), c(100);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(2);
  double min = 1.0, max = 0.0;
  for (int i = 0; i < 100'000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    min = std::min(min, d);
    max = std::max(max, d);
  }
  EXPECT_LT(min, 0.01);  // covers the low end
  EXPECT_GT(max, 0.99);  // and the high end
}

TEST(Rng, UniformIsRoughlyUniform) {
  Rng rng(3);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100'000; ++i) ++counts[rng.Uniform(10)];
  for (int c : counts) {
    EXPECT_GT(c, 9'300);
    EXPECT_LT(c, 10'700);
  }
}

TEST(Zipf, RankZeroIsMostFrequent) {
  ZipfSampler zipf(1'000, 1.0, 5);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 50'000; ++i) ++counts[zipf.Sample()];
  int max_count = 0;
  std::uint64_t max_rank = 0;
  for (const auto& [rank, count] : counts) {
    if (count > max_count) {
      max_count = count;
      max_rank = rank;
    }
  }
  EXPECT_EQ(max_rank, 0u);
}

TEST(Zipf, EmpiricalFrequenciesTrackTheoretical) {
  ZipfSampler zipf(100, 1.0, 6);
  constexpr int kSamples = 200'000;
  std::vector<int> counts(100, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[zipf.Sample()];
  for (std::uint64_t r : {0ull, 1ull, 4ull, 20ull}) {
    const double expected = zipf.Probability(r) * kSamples;
    EXPECT_NEAR(counts[r], expected, 6 * std::sqrt(expected) + 6)
        << "rank " << r;
  }
}

TEST(Zipf, ThetaZeroIsUniform) {
  ZipfSampler zipf(50, 0.0, 7);
  std::vector<int> counts(50, 0);
  for (int i = 0; i < 100'000; ++i) ++counts[zipf.Sample()];
  for (int c : counts) {
    EXPECT_GT(c, 2000 - 400);
    EXPECT_LT(c, 2000 + 400);
  }
}

TEST(Zipf, HigherThetaConcentratesMass) {
  ZipfSampler mild(1'000, 0.5, 8);
  ZipfSampler heavy(1'000, 1.5, 8);
  int mild_top = 0, heavy_top = 0;
  for (int i = 0; i < 50'000; ++i) {
    if (mild.Sample() < 10) ++mild_top;
    if (heavy.Sample() < 10) ++heavy_top;
  }
  EXPECT_GT(heavy_top, 2 * mild_top);
}

TEST(Zipf, ProbabilitiesAreMonotoneNonIncreasing) {
  ZipfSampler zipf(200, 0.9, 9);
  for (std::uint64_t r = 1; r < 200; ++r) {
    EXPECT_LE(zipf.Probability(r), zipf.Probability(r - 1) + 1e-12);
  }
}

TEST(Zipf, SamplesStayInUniverse) {
  ZipfSampler zipf(37, 1.2, 10);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(zipf.Sample(), 37u);
  }
}

}  // namespace
}  // namespace opmr
