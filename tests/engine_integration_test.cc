// End-to-end integration tests: every runtime configuration must produce
// identical (correct) answers for the paper's workloads.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>

#include "core/opmr.h"
#include "engine/aggregators.h"
#include "workloads/clickstream.h"
#include "workloads/tasks.h"
#include "workloads/webdocs.h"

namespace opmr {
namespace {

ClickStreamOptions SmallClicks() {
  ClickStreamOptions o;
  o.num_records = 20'000;
  o.num_users = 500;
  o.num_urls = 300;
  return o;
}

// Ground truth: per-key counts straight from the generator's output.
std::map<std::string, std::uint64_t> TrueUrlCounts(Platform& platform,
                                                   const std::string& input) {
  std::map<std::string, std::uint64_t> counts;
  for (const auto& block : platform.dfs().ListBlocks(input)) {
    auto reader = platform.dfs().OpenBlock(block);
    Slice record;
    while (reader->Next(&record)) {
      const auto click = ParseClick(record, ClickFormat::kText);
      ++counts[UrlKey(click.url)];
    }
  }
  return counts;
}

std::map<std::string, std::uint64_t> OutputCounts(Platform& platform,
                                                  const std::string& prefix,
                                                  int reducers) {
  std::map<std::string, std::uint64_t> counts;
  for (const auto& [key, value] : platform.ReadOutput(prefix, reducers)) {
    counts[key] = DecodeValueU64(value);
  }
  return counts;
}

struct RuntimeCase {
  const char* name;
  JobOptions options;
};

std::vector<RuntimeCase> AllRuntimes() {
  std::vector<RuntimeCase> cases;
  cases.push_back({"hadoop", HadoopOptions()});
  cases.push_back({"mr_online", MapReduceOnlineOptions()});
  cases.push_back({"hash_incremental", HashOnePassOptions()});
  cases.push_back({"hash_hotkey", HotKeyOnePassOptions(64)});
  JobOptions hybrid = HashOnePassOptions();
  hybrid.hash_reduce = HashReduce::kHybridHash;
  cases.push_back({"hash_hybrid", hybrid});
  JobOptions hash_pull = HashOnePassOptions();
  hash_pull.shuffle = Shuffle::kPull;
  cases.push_back({"hash_incremental_pull", hash_pull});
  return cases;
}

TEST(EngineIntegration, PageFrequencyAgreesAcrossAllRuntimes) {
  Platform platform({.num_nodes = 3, .block_bytes = 256u << 10});
  GenerateClickStream(platform.dfs(), "clicks", SmallClicks());
  const auto truth = TrueUrlCounts(platform, "clicks");
  ASSERT_FALSE(truth.empty());

  int i = 0;
  for (const auto& rt : AllRuntimes()) {
    SCOPED_TRACE(rt.name);
    const std::string out = "freq_" + std::to_string(i++);
    const auto spec = PageFrequencyJob("clicks", out, 3);
    const auto result = platform.Run(spec, rt.options);
    EXPECT_EQ(result.num_map_tasks,
              static_cast<int>(platform.dfs().ListBlocks("clicks").size()));
    const auto counts = OutputCounts(platform, out, 3);
    EXPECT_EQ(counts, truth);
  }
}

TEST(EngineIntegration, PageFrequencyWithoutCombinerStillCorrect) {
  Platform platform({.num_nodes = 2, .block_bytes = 256u << 10});
  GenerateClickStream(platform.dfs(), "clicks", SmallClicks());
  const auto truth = TrueUrlCounts(platform, "clicks");

  int i = 0;
  for (const auto& rt : AllRuntimes()) {
    SCOPED_TRACE(rt.name);
    JobOptions options = rt.options;
    options.map_side_combine = false;
    const std::string out = "freq_nc_" + std::to_string(i++);
    platform.Run(PageFrequencyJob("clicks", out, 2), options);
    EXPECT_EQ(OutputCounts(platform, out, 2), truth);
  }
}

TEST(EngineIntegration, SessionizationOrdersClicksWithinSessions) {
  Platform platform({.num_nodes = 3, .block_bytes = 256u << 10});
  ClickStreamOptions gen = SmallClicks();
  gen.num_records = 10'000;
  GenerateClickStream(platform.dfs(), "clicks", gen);

  // Holistic reduce: valid under sort-merge and hybrid hash.
  std::vector<RuntimeCase> cases;
  cases.push_back({"hadoop", HadoopOptions()});
  cases.push_back({"mr_online", MapReduceOnlineOptions()});
  JobOptions hybrid = HashOnePassOptions();
  hybrid.hash_reduce = HashReduce::kHybridHash;
  cases.push_back({"hash_hybrid", hybrid});

  std::map<std::string, std::uint64_t> reference;
  int i = 0;
  for (const auto& rt : cases) {
    SCOPED_TRACE(rt.name);
    const std::string out = "sess_" + std::to_string(i++);
    const auto result = platform.Run(SessionizationJob("clicks", out, 3),
                                     rt.options);
    // Sessionization output has one record per click.
    EXPECT_EQ(result.output_records, gen.num_records);

    // Within each user, session ids and timestamps must be non-decreasing
    // in emission order.
    std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> last;
    std::map<std::string, std::uint64_t> per_user;
    for (const auto& [user, value] : platform.ReadOutput(out, 3)) {
      ++per_user[user];
      // value = "s<k>\t<ts>\t<url>"
      ASSERT_EQ(value[0], 's');
      const auto tab1 = value.find('\t');
      const auto tab2 = value.find('\t', tab1 + 1);
      const std::uint64_t session = std::stoull(value.substr(1, tab1 - 1));
      const std::uint64_t ts =
          std::stoull(value.substr(tab1 + 1, tab2 - tab1 - 1));
      auto it = last.find(user);
      if (it != last.end()) {
        EXPECT_LE(it->second.first, session) << user;
        EXPECT_LE(it->second.second, ts) << user;
      }
      last[user] = {session, ts};
    }
    if (reference.empty()) {
      reference = per_user;
    } else {
      EXPECT_EQ(per_user, reference) << "per-user click counts diverged";
    }
  }
}

TEST(EngineIntegration, InvertedIndexPostingsMatchCorpus) {
  Platform platform({.num_nodes = 2, .block_bytes = 256u << 10});
  WebDocsOptions gen;
  gen.num_docs = 300;
  gen.mean_doc_words = 60;
  GenerateWebDocs(platform.dfs(), "docs", gen);

  const auto spec = InvertedIndexJob("docs", "index", 2);
  platform.Run(spec, HadoopOptions());
  const auto rows = platform.ReadOutput("index", 2);
  ASSERT_FALSE(rows.empty());

  // Rebuild expected postings count per word from the corpus.
  std::map<std::string, std::uint64_t> expected;
  for (const auto& block : platform.dfs().ListBlocks("docs")) {
    auto reader = platform.dfs().OpenBlock(block);
    Slice record;
    while (reader->Next(&record)) {
      const std::string line = record.ToString();
      const auto tab = line.find('\t');
      std::size_t i = tab + 1;
      while (i < line.size()) {
        auto j = line.find(' ', i);
        if (j == std::string::npos) j = line.size();
        if (j > i) ++expected[line.substr(i, j - i)];
        i = j + 1;
      }
    }
  }

  std::map<std::string, std::uint64_t> actual;
  for (const auto& [word, postings] : rows) {
    // Postings are space-separated "doc:pos" entries.
    actual[word] = static_cast<std::uint64_t>(
        std::count(postings.begin(), postings.end(), ' ') + 1);
  }
  EXPECT_EQ(actual, expected);
}

TEST(EngineIntegration, IncrementalRuntimeEmitsEarlyUnderThresholdQuery) {
  Platform platform({.num_nodes = 2, .block_bytes = 128u << 10});
  ClickStreamOptions gen = SmallClicks();
  gen.url_theta = 1.2;  // strong skew: some urls cross the threshold early
  GenerateClickStream(platform.dfs(), "clicks", gen);

  // "Output a group as soon as the count of its items exceeds a threshold"
  // (paper §IV requirement 3).
  JobOptions options = HashOnePassOptions();
  options.map_side_combine = false;  // feed raw 1s so counts grow per click
  options.early_emit = [](Slice /*key*/, Slice state) {
    return DecodeU64(state.data()) >= 50;
  };
  const auto result =
      platform.Run(PageFrequencyJob("clicks", "thresh", 2), options);
  EXPECT_GE(result.first_output_seconds, 0.0);
  // Early answers must appear before the job ends (strictly, before the
  // reduce tail), demonstrating incremental processing.
  EXPECT_LT(result.first_output_seconds, result.wall_seconds);
}

TEST(EngineIntegration, MapReduceOnlineProducesSnapshots) {
  Platform platform({.num_nodes = 2, .block_bytes = 64u << 10});
  GenerateClickStream(platform.dfs(), "clicks", SmallClicks());

  const auto spec = PageFrequencyJob("clicks", "snap", 2);
  platform.Run(spec, MapReduceOnlineOptions());
  // At least one snapshot file should exist (25/50/75 % points).
  bool any = false;
  for (int s = 1; s <= 3; ++s) {
    for (int r = 0; r < 2; ++r) {
      if (platform.dfs().Exists("snap.snapshot" + std::to_string(s) +
                                ".part" + std::to_string(r))) {
        any = true;
      }
    }
  }
  EXPECT_TRUE(any);
}

TEST(EngineIntegration, HotKeySpillsLessThanPlainIncrementalUnderTightMemory) {
  Platform platform({.num_nodes = 2, .block_bytes = 256u << 10});
  ClickStreamOptions gen;
  gen.num_records = 60'000;
  gen.num_users = 20'000;  // many distinct keys
  gen.user_theta = 1.1;    // but heavy skew
  GenerateClickStream(platform.dfs(), "clicks", gen);

  JobOptions incremental = HashOnePassOptions();
  incremental.map_side_combine = false;  // stress the reducer table
  incremental.reduce_buffer_bytes = 64u << 10;

  JobOptions hotkey = HotKeyOnePassOptions(256);
  hotkey.map_side_combine = false;
  hotkey.reduce_buffer_bytes = 64u << 10;

  const auto r1 = platform.Run(PerUserCountJob("clicks", "inc", 2),
                               incremental);
  const auto r2 = platform.Run(PerUserCountJob("clicks", "hot", 2), hotkey);

  // Both exact.
  EXPECT_EQ(OutputCounts(platform, "inc", 2), OutputCounts(platform, "hot", 2));

  const auto spill1 = r1.Bytes(device::kSpillWrite);
  const auto spill2 = r2.Bytes(device::kSpillWrite);
  EXPECT_GT(spill1, 0);
  EXPECT_LT(spill2, spill1) << "hot-key pinning should reduce spill I/O";
}

}  // namespace
}  // namespace opmr
