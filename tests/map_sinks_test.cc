#include "engine/map_sinks.h"

#include <gtest/gtest.h>

#include <map>

#include "storage/record_stream.h"

namespace opmr {
namespace {

class MapSinksTest : public ::testing::Test {
 protected:
  MapSinksTest()
      : files_(FileManager::CreateTemp("opmr-sinks")),
        service_(std::make_unique<ShuffleService>(1, 3, &metrics_, 2)) {}

  // Drains all items for a reducer after marking the (single) map done.
  std::vector<ShuffleItem> Drain(int reducer) {
    std::vector<ShuffleItem> items;
    ShuffleItem item;
    while (service_->NextItem(reducer, &item)) items.push_back(item);
    return items;
  }

  static std::multimap<std::string, std::string> ReadItem(
      const ShuffleItem& item, MetricRegistry* metrics) {
    std::multimap<std::string, std::string> out;
    IoChannel channel(metrics, "t.read");
    std::unique_ptr<RecordStream> stream;
    if (item.from_file) {
      auto reader = std::make_unique<RunReader>(item.path, channel);
      reader->Restrict(item.segment.offset, item.segment.bytes);
      stream = std::move(reader);
    } else {
      stream = std::make_unique<MemoryRunStream>(Slice(item.bytes));
    }
    while (stream->Next()) {
      out.emplace(stream->key().ToString(), stream->value().ToString());
    }
    return out;
  }

  FileManager files_;
  MetricRegistry metrics_;
  std::unique_ptr<ShuffleService> service_;
};

TEST_F(MapSinksTest, FileSinkBatchSegmentsReadBackPerPartition) {
  FileSink sink(0, &files_, &metrics_, service_.get(), 3, 1 << 20, true);
  sink.BeginBatch(/*sorted=*/true);
  sink.BatchAppend(0, "a", "1");
  sink.BatchAppend(0, "b", "2");
  sink.BatchAppend(2, "c", "3");  // partition 1 left empty
  sink.EndBatch();
  sink.Close();
  sink.Publish();
  service_->MapTaskDone(0);

  const auto items0 = Drain(0);
  ASSERT_EQ(items0.size(), 1u);
  EXPECT_TRUE(items0[0].sorted);
  EXPECT_EQ(items0[0].records, 2u);
  const auto records0 = ReadItem(items0[0], &metrics_);
  EXPECT_EQ(records0.count("a"), 1u);
  EXPECT_EQ(records0.count("b"), 1u);

  EXPECT_TRUE(Drain(1).empty());

  const auto items2 = Drain(2);
  ASSERT_EQ(items2.size(), 1u);
  EXPECT_EQ(ReadItem(items2[0], &metrics_).count("c"), 1u);
}

TEST_F(MapSinksTest, FileSinkRejectsUngroupedBatch) {
  FileSink sink(0, &files_, &metrics_, service_.get(), 3, 1 << 20, false);
  sink.BeginBatch(true);
  sink.BatchAppend(2, "x", "1");
  EXPECT_THROW(sink.BatchAppend(0, "y", "2"), std::logic_error);
}

TEST_F(MapSinksTest, FileSinkBatchLifecycleErrors) {
  FileSink sink(0, &files_, &metrics_, service_.get(), 3, 1 << 20, false);
  EXPECT_THROW(sink.BatchAppend(0, "k", "v"), std::logic_error);
  EXPECT_THROW(sink.EndBatch(), std::logic_error);
  sink.BeginBatch(true);
  EXPECT_THROW(sink.BeginBatch(true), std::logic_error);
  EXPECT_THROW(sink.Close(), std::logic_error);
}

TEST_F(MapSinksTest, FileSinkStreamingFlushesOnLimitAndClose) {
  // Tiny stream buffer: forces an intermediate flush.
  FileSink sink(0, &files_, &metrics_, service_.get(), 3, /*stream=*/64,
                false);
  for (int i = 0; i < 10; ++i) {
    sink.AppendStreaming(static_cast<std::uint32_t>(i % 3),
                         "key" + std::to_string(i), "0123456789");
  }
  sink.Close();
  sink.Publish();
  service_->MapTaskDone(0);

  std::multimap<std::string, std::string> all;
  for (int r = 0; r < 3; ++r) {
    for (const auto& item : Drain(r)) {
      EXPECT_FALSE(item.sorted);
      const auto records = ReadItem(item, &metrics_);
      all.insert(records.begin(), records.end());
    }
  }
  EXPECT_EQ(all.size(), 10u);
  EXPECT_EQ(all.count("key7"), 1u);
}

TEST_F(MapSinksTest, FileSinkBytesOutCountsPayload) {
  FileSink sink(0, &files_, &metrics_, service_.get(), 3, 1 << 20, false);
  sink.BeginBatch(false);
  sink.BatchAppend(0, "abc", "de");
  sink.EndBatch();
  sink.Close();
  EXPECT_EQ(sink.bytes_out(), 5u);
  EXPECT_GT(metrics_.Value(device::kMapOutputWrite), 0);
}

TEST_F(MapSinksTest, PushSinkDeliversChunksInMemory) {
  // A roomy queue: nothing should divert.
  service_ = std::make_unique<ShuffleService>(1, 3, &metrics_, 64);
  PushSink sink(0, &files_, &metrics_, service_.get(), 3, /*chunk=*/32);
  for (int i = 0; i < 6; ++i) {
    sink.AppendStreaming(1, "key" + std::to_string(i), "valuevalue");
  }
  sink.Close();
  service_->MapTaskDone(0);

  const auto items = Drain(1);
  EXPECT_GT(items.size(), 1u) << "chunk limit of 32B must split the stream";
  std::multimap<std::string, std::string> all;
  for (const auto& item : items) {
    EXPECT_FALSE(item.from_file);
    const auto records = ReadItem(item, &metrics_);
    all.insert(records.begin(), records.end());
  }
  EXPECT_EQ(all.size(), 6u);
  EXPECT_EQ(sink.pushed_chunks(), items.size());
  EXPECT_EQ(sink.diverted_chunks(), 0u);
}

TEST_F(MapSinksTest, PushSinkDivertsUnderBackpressure) {
  // Queue bound is 2 chunks; the rest must divert to disk but still arrive.
  PushSink sink(0, &files_, &metrics_, service_.get(), 3, /*chunk=*/16);
  for (int i = 0; i < 20; ++i) {
    sink.AppendStreaming(0, "k" + std::to_string(i), "0123456789");
  }
  sink.Close();
  service_->MapTaskDone(0);

  EXPECT_GT(sink.diverted_chunks(), 0u);
  EXPECT_EQ(metrics_.Value(device::kDivertedChunks),
            static_cast<std::int64_t>(sink.diverted_chunks()));

  std::multimap<std::string, std::string> all;
  int memory_items = 0, file_items = 0;
  for (const auto& item : Drain(0)) {
    item.from_file ? ++file_items : ++memory_items;
    const auto records = ReadItem(item, &metrics_);
    all.insert(records.begin(), records.end());
  }
  EXPECT_EQ(all.size(), 20u) << "no record may be lost in the divert path";
  EXPECT_GT(file_items, 0);
  EXPECT_EQ(memory_items, 2);
}

TEST_F(MapSinksTest, PushSinkSortedBatchesCutChunksAtBatchBoundaries) {
  PushSink sink(0, &files_, &metrics_, service_.get(), 3, /*chunk=*/1 << 20);
  sink.BeginBatch(/*sorted=*/true);
  sink.BatchAppend(0, "a", "1");
  sink.BatchAppend(0, "b", "2");
  sink.EndBatch();
  sink.BeginBatch(/*sorted=*/true);
  sink.BatchAppend(0, "a2", "3");
  sink.EndBatch();
  sink.Close();
  service_->MapTaskDone(0);

  const auto items = Drain(0);
  ASSERT_EQ(items.size(), 2u) << "each batch is its own (sorted) chunk";
  EXPECT_TRUE(items[0].sorted);
  EXPECT_TRUE(items[1].sorted);
}

TEST_F(MapSinksTest, FileSinkOutputInvisibleUntilPublished) {
  FileSink sink(0, &files_, &metrics_, service_.get(), 3, 1 << 20, false);
  sink.BeginBatch(false);
  sink.BatchAppend(0, "k", "v");
  sink.EndBatch();
  sink.Close();
  // Not published: a failed attempt would be discarded here and reducers
  // must see nothing.
  service_->MapTaskDone(0);
  EXPECT_TRUE(Drain(0).empty());
}

TEST_F(MapSinksTest, PushSinkPersistsAllOutputForFaultTolerance) {
  PushSink sink(0, &files_, &metrics_, service_.get(), 3, /*chunk=*/64);
  for (int i = 0; i < 10; ++i) {
    sink.AppendStreaming(0, "key" + std::to_string(i), "0123456789");
  }
  sink.Close();
  // All payload bytes (plus framing) must have hit the local file even
  // though chunks were pushed in memory.
  EXPECT_GE(metrics_.Value(device::kMapOutputWrite),
            static_cast<std::int64_t>(sink.bytes_out()));
}

}  // namespace
}  // namespace opmr
