// Data-plane tests: block encoding (EncodingWriter + UnpackBlock), the
// reducer-side BlockCache, and the epoll EventLoopTransport.  The
// transport must deliver the exact frame stream the shuffle layer would
// have seen without batching — blocks are an encoding, not a semantic —
// and survive injected connection drops with exactly-once retransmits,
// like the TCP transport it replaces.
#include "dataplane/event_loop.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <random>
#include <string>
#include <vector>

#include "common/crc32c.h"
#include "common/slice.h"
#include "dataplane/block_cache.h"
#include "dataplane/block_format.h"
#include "dataplane/encoding_writer.h"
#include "metrics/counters.h"
#include "net/wire.h"

namespace opmr::dataplane {
namespace {

using net::Frame;
using net::FrameType;

Frame MakeChunkFrame(int seq, std::string payload = "") {
  net::ChunkMsg msg;
  msg.map_task = seq;
  msg.reducer = 0;
  msg.records = 1;
  msg.bytes = payload.empty() ? "chunk-" + std::to_string(seq)
                              : std::move(payload);
  return msg.ToFrame();
}

// --- EncodingWriter ----------------------------------------------------------

TEST(DataPlaneBlock, WriterRoundTripsRawBlocks) {
  EncodingWriter writer;
  std::vector<Frame> sent;
  for (int i = 0; i < 5; ++i) {
    sent.push_back(MakeChunkFrame(i));
    writer.Add(sent.back());
  }
  EXPECT_FALSE(writer.empty());
  net::BlockMsg block = writer.Flush();
  EXPECT_TRUE(writer.empty());
  EXPECT_EQ(block.block_seq, 1u);
  EXPECT_EQ(block.codec, net::kBlockCodecRaw);
  EXPECT_EQ(block.count, 5u);

  // The wire round trip: BlockMsg -> frame -> parse -> unpack.
  net::FrameDecoder decoder;
  const std::string wire = net::EncodeFrame(block.ToFrame());
  decoder.Feed(wire.data(), wire.size());
  Frame outer;
  ASSERT_EQ(decoder.Next(&outer), net::DecodeStatus::kOk);
  const auto inner = UnpackBlock(net::BlockMsg::Parse(outer));
  ASSERT_EQ(inner.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(inner[i].type, sent[i].type);
    EXPECT_EQ(inner[i].payload, sent[i].payload);
  }
  // Sequence numbers are per-writer and monotonic.
  writer.Add(MakeChunkFrame(9));
  EXPECT_EQ(writer.Flush().block_seq, 2u);
}

TEST(DataPlaneBlock, WriterFlushTriggersOnBytesAndCount) {
  EncodingWriter::Options options;
  options.target_block_bytes = 128;
  options.max_block_frames = 3;
  EncodingWriter by_count(options);
  by_count.Add(MakeChunkFrame(0));
  by_count.Add(MakeChunkFrame(1));
  EXPECT_FALSE(by_count.ShouldFlush());
  by_count.Add(MakeChunkFrame(2));
  EXPECT_TRUE(by_count.ShouldFlush());

  EncodingWriter by_bytes(options);
  by_bytes.Add(MakeChunkFrame(0, std::string(256, 'x')));
  EXPECT_TRUE(by_bytes.ShouldFlush());

  // Abandon drops the pending block without advancing the sequence: the
  // ack-window replay owns redelivery after a teardown.
  by_bytes.Abandon();
  EXPECT_TRUE(by_bytes.empty());
  by_bytes.Add(MakeChunkFrame(1));
  EXPECT_EQ(by_bytes.Flush().block_seq, 1u);
}

TEST(DataPlaneBlock, WriterCodecIsAdaptive) {
  EncodingWriter::Options options;
  options.compress = true;
  options.resample_interval = 4;
  EncodingWriter writer(options);

  // Highly compressible body: the first sample compresses and sticks.
  writer.Add(MakeChunkFrame(0, std::string(4096, 'a')));
  net::BlockMsg block = writer.Flush();
  EXPECT_EQ(block.codec, net::kBlockCodecOz);
  EXPECT_LT(block.body.size(), 4096u);
  EXPECT_EQ(writer.compressed_blocks(), 1u);
  const auto inner = UnpackBlock(block);
  ASSERT_EQ(inner.size(), 1u);
  EXPECT_EQ(net::ChunkMsg::Parse(inner[0]).bytes, std::string(4096, 'a'));

  // Incompressible bodies flip the EWMA above the threshold; subsequent
  // flushes ship raw without burning the codec CPU until the re-sample
  // countdown expires.
  std::mt19937_64 rng(42);
  const auto random_payload = [&rng] {
    std::string bytes(4096, '\0');
    for (char& c : bytes) c = static_cast<char>(rng());
    return bytes;
  };
  EncodingWriter incompressible(options);
  int raw_streak = 0;
  for (int i = 0; i < 4; ++i) {
    incompressible.Add(MakeChunkFrame(i, random_payload()));
    if (incompressible.Flush().codec == net::kBlockCodecRaw) ++raw_streak;
  }
  EXPECT_GE(raw_streak, 3) << "incompressible stream must settle on raw";
  EXPECT_EQ(incompressible.compressed_blocks(), 0u);
  EXPECT_EQ(incompressible.raw_body_bytes(), incompressible.wire_body_bytes());
}

TEST(DataPlaneBlock, UnpackRejectsEveryLie) {
  // Baseline well-formed raw block.
  const auto make_block = [] {
    EncodingWriter writer;
    writer.Add(MakeChunkFrame(0));
    writer.Add(MakeChunkFrame(1));
    return writer.Flush();
  };

  // Raw-body CRC mismatch (bit rot the outer frame CRC was stripped of).
  net::BlockMsg bad_crc = make_block();
  bad_crc.raw_crc ^= 1;
  EXPECT_THROW((void)UnpackBlock(bad_crc), net::WireError);

  // A non-blockable inner type: control frames never ride in blocks.
  net::BlockMsg bad_type = make_block();
  bad_type.body[0] = static_cast<char>(FrameType::kHello);
  bad_type.raw_crc = Crc32c(bad_type.body.data(), bad_type.body.size());
  EXPECT_THROW((void)UnpackBlock(bad_type), net::WireError);

  // Nesting: a kBlock inside a block is structurally forbidden.
  net::BlockMsg nested = make_block();
  nested.body[0] = static_cast<char>(FrameType::kBlock);
  nested.raw_crc = Crc32c(nested.body.data(), nested.body.size());
  EXPECT_THROW((void)UnpackBlock(nested), net::WireError);

  // A sub-frame length pointing past the body end.
  net::BlockMsg oversold = make_block();
  oversold.body[1] = '\xFF';
  oversold.body[2] = '\xFF';
  oversold.raw_crc = Crc32c(oversold.body.data(), oversold.body.size());
  EXPECT_THROW((void)UnpackBlock(oversold), net::WireError);

  // Count lies in both directions.
  net::BlockMsg undercount = make_block();
  undercount.count = 1;
  EXPECT_THROW((void)UnpackBlock(undercount), net::WireError);
  net::BlockMsg overcount = make_block();
  overcount.count = 3;
  EXPECT_THROW((void)UnpackBlock(overcount), net::WireError);

  // Corrupt compressed body: the codec failure surfaces as WireError, not
  // a crash or a silently empty block.
  EncodingWriter::Options compressing;
  compressing.compress = true;
  EncodingWriter writer(compressing);
  writer.Add(MakeChunkFrame(0, std::string(4096, 'z')));
  net::BlockMsg corrupt = writer.Flush();
  ASSERT_EQ(corrupt.codec, net::kBlockCodecOz);
  corrupt.body.resize(corrupt.body.size() / 2);
  EXPECT_THROW((void)UnpackBlock(corrupt), net::WireError);
}

// --- BlockCache --------------------------------------------------------------

BlockCacheKey MakeKey(std::uint64_t seq, const std::string& payload) {
  BlockCacheKey key;
  key.job = "unit job";
  key.sender = 3;
  key.block_seq = seq;
  key.crc = Crc32c(payload.data(), payload.size());
  return key;
}

TEST(DataPlaneCache, HitMissEraseAndCrcGuard) {
  BlockCache cache(1 << 20);
  const std::string payload = "retained shuffle bytes";
  const auto key = MakeKey(1, payload);
  cache.Insert(key, std::make_shared<const std::string>(payload));
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.size_bytes(), payload.size());

  auto hit = cache.Lookup(key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, payload);
  EXPECT_EQ(cache.hits(), 1);

  // Same (job, sender, seq) but different bytes: the CRC in the key means
  // the stale entry can never satisfy the lookup.
  BlockCacheKey stale = key;
  stale.crc ^= 0xFFFF;
  EXPECT_EQ(cache.Lookup(stale), nullptr);
  EXPECT_EQ(cache.misses(), 1);

  cache.Erase(key);
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.Lookup(key), nullptr);
}

TEST(DataPlaneCache, LruEvictionIsBoundedAndPinned) {
  const std::string payload(256, 'p');
  BlockCache cache(payload.size() * 4);
  for (std::uint64_t seq = 1; seq <= 4; ++seq) {
    cache.Insert(MakeKey(seq, payload),
                 std::make_shared<const std::string>(payload));
  }
  EXPECT_EQ(cache.entries(), 4u);

  // Touch seq 1 so seq 2 is the LRU victim, then overflow by one entry.
  auto pinned = cache.Lookup(MakeKey(1, payload));
  ASSERT_NE(pinned, nullptr);
  cache.Insert(MakeKey(5, payload),
               std::make_shared<const std::string>(payload));
  EXPECT_EQ(cache.entries(), 4u);
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_EQ(cache.Lookup(MakeKey(2, payload)), nullptr) << "LRU victim";
  EXPECT_NE(cache.Lookup(MakeKey(1, payload)), nullptr) << "recently used";

  // Evict seq 1 too: the pinned shared_ptr must stay valid — eviction
  // drops the cache's reference, never the reader's.
  for (std::uint64_t seq = 6; seq <= 9; ++seq) {
    cache.Insert(MakeKey(seq, payload),
                 std::make_shared<const std::string>(payload));
  }
  EXPECT_EQ(cache.Lookup(MakeKey(1, payload)), nullptr);
  EXPECT_EQ(*pinned, payload);

  // An entry larger than the whole capacity is refused outright.
  const std::string huge(payload.size() * 8, 'h');
  cache.Insert(MakeKey(99, huge), std::make_shared<const std::string>(huge));
  EXPECT_EQ(cache.Lookup(MakeKey(99, huge)), nullptr);
  EXPECT_LE(cache.size_bytes(), payload.size() * 4);
}

// --- EventLoopTransport ------------------------------------------------------

// Collects frames across threads and lets a test wait for a count.
class FrameLog {
 public:
  void Add(Frame frame) {
    {
      std::scoped_lock lock(mu_);
      frames_.push_back(std::move(frame));
    }
    cv_.notify_all();
  }

  bool WaitFor(std::size_t count, std::chrono::milliseconds timeout =
                                      std::chrono::seconds(10)) {
    std::unique_lock lock(mu_);
    return cv_.wait_for(lock, timeout,
                        [&] { return frames_.size() >= count; });
  }

  template <typename Pred>
  bool WaitUntil(Pred pred, std::chrono::milliseconds timeout =
                                std::chrono::seconds(10)) {
    std::unique_lock lock(mu_);
    return cv_.wait_for(lock, timeout, [&] { return pred(frames_); });
  }

  std::vector<Frame> Snapshot() {
    std::scoped_lock lock(mu_);
    return frames_;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Frame> frames_;
};

class HookGuard {
 public:
  explicit HookGuard(net::NetFaultHook* hook) { net::SetNetFaultHook(hook); }
  ~HookGuard() { net::SetNetFaultHook(nullptr); }
};

// Drops the first transmission attempt of one specific frame ordinal.
class DropOnceHook : public net::NetFaultHook {
 public:
  explicit DropOnceHook(std::uint64_t target_seq) : target_(target_seq) {}

  bool OnFrameSend(std::uint64_t frame_seq, int attempt) override {
    if (frame_seq == target_ && attempt == 1) {
      ++drops_;
      return true;
    }
    return false;
  }

  [[nodiscard]] int drops() const { return drops_.load(); }

 private:
  std::uint64_t target_;
  std::atomic<int> drops_{0};
};

TEST(DataPlaneTransport, RequestReplyRoundTripAndBatching) {
  MetricRegistry metrics;
  EventLoopTransport transport(&metrics);

  FrameLog server_log;
  transport.Listen([&](net::Connection* from, Frame frame) {
    server_log.Add(frame);
    if (frame.type == FrameType::kChunk) {
      net::CreditMsg credit;
      credit.reducer = net::ChunkMsg::Parse(frame).reducer;
      from->Send(credit.ToFrame());
    }
  });

  FrameLog replies;
  auto conn = transport.Connect(
      [&](net::Connection*, Frame frame) { replies.Add(std::move(frame)); });
  for (int i = 0; i < 8; ++i) conn->Send(MakeChunkFrame(i));

  ASSERT_TRUE(server_log.WaitFor(8));
  ASSERT_TRUE(replies.WaitFor(8));
  const auto received = server_log.Snapshot();
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(net::ChunkMsg::Parse(received[i]).map_task, i)
        << "order preserved through block batching";
  }
  transport.Shutdown();
  // The shuffle layer's view is frame-granular even though the wire
  // carried blocks: the batching must be visible only in the counters.
  EXPECT_GE(metrics.Value(kBlocksSent), 1);
  EXPECT_EQ(metrics.Value(kBlocksSent), metrics.Value(kBlocksReceived));
  EXPECT_LT(metrics.Value(net::kNetSendSyscalls),
            metrics.Value(net::kNetFramesSent))
      << "coalescing must amortize syscalls below one per frame";
}

TEST(DataPlaneTransport, ShutdownIsIdempotentAndFailsLateSends) {
  MetricRegistry metrics;
  EventLoopTransport transport(&metrics);
  transport.Listen([](net::Connection*, Frame) {});
  auto conn = transport.Connect([](net::Connection*, Frame) {});
  conn->Send(MakeChunkFrame(0));
  transport.Shutdown();
  transport.Shutdown();  // second call is a no-op
  EXPECT_THROW(conn->Send(MakeChunkFrame(1)), net::TransportError);
}

TEST(DataPlaneTransport, InjectedDropReconnectsAndReplayLosesNothing) {
  // Unlike blocking TCP, the event loop writes asynchronously: frames
  // batched or queued but not yet flushed when a connection dies are
  // abandoned, and the reconnect-replay seam (the ShuffleClient's
  // ack-window in real runs) owns redelivery.  The transport contract is
  // therefore at-least-once across a drop — nothing lost, duplicates
  // possible — with the shuffle layer's seq watermark providing the
  // exactly-once on top (covered end-to-end by transport_shuffle_test).
  MetricRegistry metrics;
  EventLoopTransport transport(&metrics);

  FrameLog server_log;
  transport.Listen(
      [&](net::Connection*, Frame frame) { server_log.Add(std::move(frame)); });

  auto conn = transport.Connect([](net::Connection*, Frame) {});

  net::HelloMsg hello;
  hello.job = "drop test";
  transport.SetConnectPreamble(hello.ToFrame());

  std::mutex window_mu;
  std::vector<Frame> window;  // every sent-but-unacked chunk (none ack here)
  transport.SetReconnectReplay([&] {
    std::scoped_lock lock(window_mu);
    return window;
  });

  conn->Send(hello.ToFrame());  // frame_seq 1

  // Drop frame_seq 3 (the second chunk) on its first attempt: the client
  // must abandon the half-built block, redial, lead with the Hello
  // preamble, replay the window, then retransmit the dropped frame.
  DropOnceHook hook(/*target_seq=*/3);
  HookGuard guard(&hook);
  for (int i = 0; i < 3; ++i) {
    Frame frame = MakeChunkFrame(i);
    {
      std::scoped_lock lock(window_mu);
      window.push_back(frame);
    }
    conn->Send(frame);
  }

  // Guaranteed deliveries all ride the fresh connection: the preamble
  // Hello, the replayed window (chunks 0 and 1), the retried chunk 1, and
  // chunk 2.  The explicit Hello and the half-built block may have died in
  // the abandoned queue — or flushed first and arrive as extras — so wait
  // on the invariant, not a frame count.
  const auto all_delivered = [](const std::vector<Frame>& frames) {
    bool hello = false;
    bool task[3] = {false, false, false};
    for (const Frame& frame : frames) {
      if (frame.type == FrameType::kHello) {
        hello = true;
      } else if (frame.type == FrameType::kChunk) {
        const int t = net::ChunkMsg::Parse(frame).map_task;
        if (t >= 0 && t < 3) task[t] = true;
      }
    }
    return hello && task[0] && task[1] && task[2];
  };
  ASSERT_TRUE(server_log.WaitUntil(all_delivered))
      << "no frame may be lost across the reconnect";
  EXPECT_EQ(hook.drops(), 1);

  int hellos = 0;
  std::vector<int> chunk_tasks;
  for (const Frame& frame : server_log.Snapshot()) {
    if (frame.type == FrameType::kHello) {
      ++hellos;
    } else {
      ASSERT_EQ(frame.type, FrameType::kChunk);
      chunk_tasks.push_back(net::ChunkMsg::Parse(frame).map_task);
    }
  }
  EXPECT_GE(hellos, 1) << "reconnect must lead with the Hello preamble";
  EXPECT_LE(hellos, 2);
  std::sort(chunk_tasks.begin(), chunk_tasks.end());
  chunk_tasks.erase(std::unique(chunk_tasks.begin(), chunk_tasks.end()),
                    chunk_tasks.end());
  EXPECT_EQ(chunk_tasks, (std::vector<int>{0, 1, 2}))
      << "no frame may be lost across the reconnect";
  EXPECT_GE(metrics.Value(net::kNetRetransmits), 1);
  EXPECT_EQ(metrics.Value(net::kNetReconnects), 1);
  transport.Shutdown();
}

TEST(DataPlaneTransport, SendFileFrameShipsFileRegionZeroCopy) {
  // A SegmentData frame whose payload tail lives in a file must arrive
  // byte-identical to the in-memory encoding, via sendfile(2).
  const auto path = std::filesystem::temp_directory_path() /
                    "opmr_dataplane_sendfile_test.bin";
  const std::string before(512, 'b');
  const std::string region = "the shipped segment payload bytes";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << before << region << std::string(64, 'a');
  }

  MetricRegistry metrics;
  EventLoopTransport transport(&metrics);
  FrameLog server_log;
  transport.Listen(
      [&](net::Connection*, Frame frame) { server_log.Add(std::move(frame)); });
  auto conn = transport.Connect([](net::Connection*, Frame) {});

  // Payload prefix: everything of SegmentDataMsg up to the bytes field's
  // length, which the file region then completes.
  std::string prefix;
  AppendU32(prefix, 7);               // map_task
  AppendU32(prefix, 2);               // reducer
  prefix.push_back(1);                // sorted
  AppendU64(prefix, 42);              // records
  AppendU64(prefix, 1);               // seq
  AppendU32(prefix, static_cast<std::uint32_t>(region.size()));
  ASSERT_TRUE(conn->SendFileFrame(FrameType::kSegmentData, prefix,
                                  path.string(), before.size(),
                                  region.size()));

  ASSERT_TRUE(server_log.WaitFor(1));
  const auto msg = net::SegmentDataMsg::Parse(server_log.Snapshot()[0]);
  EXPECT_EQ(msg.map_task, 7);
  EXPECT_EQ(msg.reducer, 2);
  EXPECT_TRUE(msg.sorted);
  EXPECT_EQ(msg.records, 42u);
  EXPECT_EQ(msg.seq, 1u);
  EXPECT_EQ(msg.bytes, region);
  transport.Shutdown();
  EXPECT_EQ(metrics.Value(kSendfileFrames), 1);
  EXPECT_EQ(metrics.Value(kSendfileBytes),
            static_cast<std::int64_t>(region.size()));
  std::filesystem::remove(path);
}

TEST(DataPlaneTransport, CompressedBlocksRoundTripOnTheWire) {
  MetricRegistry metrics;
  EventLoopTransport::Options options;
  options.compress_blocks = true;
  EventLoopTransport transport(&metrics, options);

  FrameLog server_log;
  transport.Listen(
      [&](net::Connection*, Frame frame) { server_log.Add(std::move(frame)); });
  auto conn = transport.Connect([](net::Connection*, Frame) {});

  const std::string compressible(16 << 10, 'c');
  for (int i = 0; i < 4; ++i) conn->Send(MakeChunkFrame(i, compressible));
  ASSERT_TRUE(server_log.WaitFor(4));
  for (const Frame& frame : server_log.Snapshot()) {
    EXPECT_EQ(net::ChunkMsg::Parse(frame).bytes, compressible);
  }
  transport.Shutdown();
  EXPECT_GE(metrics.Value(kBlocksCompressed), 1);
  // The wire moved far less than the 64 KB the frames held: compression
  // really ran, and the receiver still saw identical payloads.
  EXPECT_LT(metrics.Value(net::kNetBytesSent), 4 * (16 << 10));
}

}  // namespace
}  // namespace opmr::dataplane
