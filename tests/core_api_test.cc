// Public Platform API tests: runtime presets, output reading, workspace
// management, and multi-input jobs.
#include "core/opmr.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "engine/aggregators.h"
#include "workloads/clickstream.h"
#include "workloads/tasks.h"

namespace opmr {
namespace {

TEST(RuntimePresets, MatchTableThreeColumns) {
  const auto hadoop = HadoopOptions();
  EXPECT_EQ(hadoop.group_by, GroupBy::kSortMerge);
  EXPECT_EQ(hadoop.shuffle, Shuffle::kPull);
  EXPECT_DOUBLE_EQ(hadoop.snapshot_interval, 0.0);

  const auto hop = MapReduceOnlineOptions();
  EXPECT_EQ(hop.group_by, GroupBy::kSortMerge);
  EXPECT_EQ(hop.shuffle, Shuffle::kPush);
  EXPECT_GT(hop.snapshot_interval, 0.0);

  const auto hash = HashOnePassOptions();
  EXPECT_EQ(hash.group_by, GroupBy::kHash);
  EXPECT_EQ(hash.hash_reduce, HashReduce::kIncremental);

  const auto hot = HotKeyOnePassOptions(777);
  EXPECT_EQ(hot.hash_reduce, HashReduce::kHotKeyIncremental);
  EXPECT_EQ(hot.hot_key_capacity, 777u);
}

TEST(Platform, ExplicitWorkspaceIsUsed) {
  const auto dir = std::filesystem::temp_directory_path() / "opmr-ws-test";
  std::filesystem::remove_all(dir);
  {
    Platform platform({.workspace = dir.string()});
    EXPECT_EQ(platform.files().root(), dir);
    EXPECT_TRUE(std::filesystem::exists(dir));
  }
  // FileManager removes the workspace on destruction.
  EXPECT_FALSE(std::filesystem::exists(dir));
}

TEST(Platform, ReadOutputSkipsMissingParts) {
  Platform platform({.num_nodes = 2, .block_bytes = 256u << 10});
  ClickStreamOptions gen;
  gen.num_records = 2'000;
  GenerateClickStream(platform.dfs(), "clicks", gen);
  platform.Run(PerUserCountJob("clicks", "out", 2), HadoopOptions());
  // Asking for more parts than reducers must not throw.
  const auto rows = platform.ReadOutput("out", 8);
  EXPECT_FALSE(rows.empty());
}

TEST(Platform, ReadOutputFileOfUnknownFileThrows) {
  Platform platform{PlatformOptions{}};
  EXPECT_THROW(platform.ReadOutputFile("nope"), std::runtime_error);
}

TEST(Platform, MetricsAccumulateAcrossJobs) {
  Platform platform({.num_nodes = 2, .block_bytes = 256u << 10});
  ClickStreamOptions gen;
  gen.num_records = 2'000;
  GenerateClickStream(platform.dfs(), "clicks", gen);
  platform.Run(PerUserCountJob("clicks", "m1", 2), HadoopOptions());
  const auto after_one = platform.metrics().Value(device::kDfsRead);
  platform.Run(PerUserCountJob("clicks", "m2", 2), HadoopOptions());
  EXPECT_GT(platform.metrics().Value(device::kDfsRead), after_one);
}

TEST(Platform, MultiInputJobReadsAllInputs) {
  Platform platform({.num_nodes = 2, .block_bytes = 128u << 10});
  ClickStreamOptions gen;
  gen.num_records = 3'000;
  gen.seed = 1;
  GenerateClickStream(platform.dfs(), "part_a", gen);
  gen.seed = 2;
  GenerateClickStream(platform.dfs(), "part_b", gen);

  JobSpec spec = PerUserCountJob("part_a", "multi_out", 2);
  spec.extra_inputs = {"part_b"};
  const auto result = platform.Run(spec, HashOnePassOptions());
  EXPECT_EQ(result.input_records, 6'000u);
  EXPECT_EQ(result.num_map_tasks,
            static_cast<int>(platform.dfs().ListBlocks("part_a").size() +
                             platform.dfs().ListBlocks("part_b").size()));

  std::uint64_t total = 0;
  for (const auto& [user, v] : platform.ReadOutput("multi_out", 2)) {
    total += DecodeValueU64(v);
  }
  EXPECT_EQ(total, 6'000u);
}

TEST(Platform, IndependentPlatformsDoNotInterfere) {
  Platform a({.num_nodes = 1, .block_bytes = 128u << 10});
  Platform b({.num_nodes = 1, .block_bytes = 128u << 10});
  ClickStreamOptions gen;
  gen.num_records = 500;
  GenerateClickStream(a.dfs(), "clicks", gen);
  GenerateClickStream(b.dfs(), "clicks", gen);  // same name, different DFS
  a.Run(PerUserCountJob("clicks", "out", 1), HadoopOptions());
  EXPECT_FALSE(b.dfs().Exists("out.part0"));
}

TEST(Platform, EmissionCurveEndsAtOutputTotal) {
  Platform platform({.num_nodes = 2, .block_bytes = 256u << 10});
  ClickStreamOptions gen;
  gen.num_records = 5'000;
  gen.num_users = 50;
  GenerateClickStream(platform.dfs(), "clicks", gen);
  const auto result =
      platform.Run(PerUserCountJob("clicks", "ec", 2), HashOnePassOptions());
  ASSERT_FALSE(result.emission_curve.empty());
  EXPECT_DOUBLE_EQ(result.emission_curve.back().value,
                   static_cast<double>(result.output_records));
}

}  // namespace
}  // namespace opmr
