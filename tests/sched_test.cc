// Multi-job scheduler tests: slot-pool policy arbitration, admission
// control, spool parsing, concurrent-vs-sequential output identity across
// transports, and checkpoint-seeded reduce speculation.
#include "sched/scheduler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "core/opmr.h"
#include "sched/slot_pool.h"
#include "sched/spool.h"
#include "workloads/clickstream.h"
#include "workloads/tasks.h"

namespace opmr {
namespace {

using sched::SchedPolicy;
using sched::SlotPool;

// ---------------------------------------------------------------------------
// SlotPool policy arbitration
// ---------------------------------------------------------------------------

// Blocks two waiter jobs on a fully-held slot, releases it, and returns the
// order the waiters were granted in.  `prepare` runs after registration so
// tests can skew the policy inputs (held slots, remaining ops).
template <typename Prepare>
std::vector<int> GrantOrder(SchedPolicy policy, Prepare prepare) {
  SlotPool pool(1, 1, 1 << 20, policy);
  pool.RegisterJob(0, 100);
  pool.RegisterJob(1, 100);
  pool.RegisterJob(2, 100);
  pool.Acquire(0, SlotPool::SlotKind::kMap);  // the contested slot
  prepare(pool);

  std::mutex mu;
  std::vector<int> order;
  auto waiter = [&](int job) {
    pool.Acquire(job, SlotPool::SlotKind::kMap);
    {
      std::scoped_lock lock(mu);
      order.push_back(job);
    }
    pool.Release(job, SlotPool::SlotKind::kMap);
  };
  std::thread t1(waiter, 1);
  // Job 1 must be blocked before job 2 arrives, so admission order (the
  // FIFO rank and every tie-break) is deterministic.
  while (pool.stats().waits < 1) std::this_thread::yield();
  std::thread t2(waiter, 2);
  while (pool.stats().waits < 2) std::this_thread::yield();

  pool.Release(0, SlotPool::SlotKind::kMap);
  t1.join();
  t2.join();
  return order;
}

TEST(SlotPoolTest, FifoGrantsInAdmissionOrder) {
  const auto order = GrantOrder(SchedPolicy::kFifo, [](SlotPool&) {});
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SlotPoolTest, FairPrefersJobHoldingFewerSlots) {
  // Job 1 already holds a reduce slot; fair hands the contested map slot
  // to job 2 first even though job 1 was admitted earlier.
  const auto order = GrantOrder(SchedPolicy::kFair, [](SlotPool& pool) {
    pool.Acquire(1, SlotPool::SlotKind::kReduce);
  });
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(SlotPoolTest, SrwPrefersShortestRemainingWork) {
  const auto order = GrantOrder(SchedPolicy::kSrw, [](SlotPool& pool) {
    pool.ReportProgress(2, 3);  // job 2: almost done; job 1: 100 ops left
  });
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(SlotPoolTest, CountsGrantsWaitsAndPeaks) {
  SlotPool pool(2, 1, 1 << 20, SchedPolicy::kFifo);
  pool.Acquire(0, SlotPool::SlotKind::kMap);
  pool.Acquire(0, SlotPool::SlotKind::kMap);
  pool.Acquire(0, SlotPool::SlotKind::kReduce);
  pool.Release(0, SlotPool::SlotKind::kMap);
  const auto stats = pool.stats();
  EXPECT_EQ(stats.map_grants, 2);
  EXPECT_EQ(stats.reduce_grants, 1);
  EXPECT_EQ(stats.waits, 0);
  EXPECT_EQ(stats.peak_map_in_use, 2);
  EXPECT_EQ(stats.peak_reduce_in_use, 1);
}

TEST(SlotPoolTest, MemoryGateIsNonBlocking) {
  SlotPool pool(1, 1, 100, SchedPolicy::kFifo);
  EXPECT_TRUE(pool.TryReserveMemory(60));
  EXPECT_FALSE(pool.TryReserveMemory(60));
  pool.ReleaseMemory(60);
  EXPECT_TRUE(pool.TryReserveMemory(100));
}

TEST(SlotPoolTest, RejectsEmptyPool) {
  EXPECT_THROW(SlotPool(0, 1, 1, SchedPolicy::kFifo), std::invalid_argument);
  EXPECT_THROW(SlotPool(1, 0, 1, SchedPolicy::kFifo), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Spool parsing
// ---------------------------------------------------------------------------

TEST(SpoolTest, ParsesFullSpec) {
  std::istringstream in(
      "# a comment\n"
      "workload = word_count\n"
      "runtime=hadoop\n"
      "transport=tcp\n"
      "records=5000\n"
      "reducers=3\n"
      "memory_bytes=1048576\n"
      "speculative_reduce=yes\n"
      "checkpoint_interval=512\n"
      "checkpoint_retain=3\n");
  const auto spec = sched::ParseSpoolSpec("j1", in);
  EXPECT_EQ(spec.id, "j1");
  EXPECT_EQ(spec.workload, "word_count");
  EXPECT_EQ(spec.runtime, "hadoop");
  EXPECT_EQ(spec.transport, "tcp");
  EXPECT_EQ(spec.records, 5000u);
  EXPECT_EQ(spec.reducers, 3);
  EXPECT_EQ(spec.memory_bytes, 1048576u);
  EXPECT_TRUE(spec.speculative_reduce);
  EXPECT_EQ(spec.checkpoint_interval, 512u);
  EXPECT_EQ(spec.checkpoint_retain, 3);
}

TEST(SpoolTest, RejectsUnknownKeysAndBadValues) {
  {
    std::istringstream in("workload=x\nspeculte=1\n");  // typo must be loud
    EXPECT_THROW(sched::ParseSpoolSpec("j", in), std::invalid_argument);
  }
  {
    std::istringstream in("records=12abc\n");
    EXPECT_THROW(sched::ParseSpoolSpec("j", in), std::invalid_argument);
  }
  {
    std::istringstream in("transport=smoke_signal\n");
    EXPECT_THROW(sched::ParseSpoolSpec("j", in), std::invalid_argument);
  }
  {
    std::istringstream in("reducers=0\n");
    EXPECT_THROW(sched::ParseSpoolSpec("j", in), std::invalid_argument);
  }
}

TEST(SpoolTest, DrainsDirectoryInNameOrderAndMarksDone) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("opmr-spool-" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  std::ofstream(dir / "b.job") << "records=2\n";
  std::ofstream(dir / "a.job") << "records=1\n";
  std::ofstream(dir / "notes.txt") << "ignored\n";

  const auto specs = sched::DrainSpoolDir(dir);
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].id, "a");
  EXPECT_EQ(specs[0].records, 1u);
  EXPECT_EQ(specs[1].id, "b");
  EXPECT_TRUE(std::filesystem::exists(dir / "a.job.done"));
  EXPECT_FALSE(std::filesystem::exists(dir / "a.job"));
  // A second drain must find nothing: jobs are never re-admitted.
  EXPECT_TRUE(sched::DrainSpoolDir(dir).empty());
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// JobScheduler
// ---------------------------------------------------------------------------

class SchedulerTest : public ::testing::Test {
 protected:
  SchedulerTest() : platform_({.num_nodes = 4, .block_bytes = 256u << 10}) {
    ClickStreamOptions gen;
    gen.num_records = 20'000;
    gen.num_users = 800;
    GenerateClickStream(platform_.dfs(), "clicks", gen);
  }

  std::vector<std::pair<std::string, std::string>> SortedOutput(
      const std::string& name, int reducers) {
    auto rows = platform_.ReadOutput(name, reducers);
    std::sort(rows.begin(), rows.end());
    return rows;
  }

  Platform platform_;
};

TEST_F(SchedulerTest, RejectsJobLargerThanWholeBudget) {
  sched::SchedulerOptions sopts;
  sopts.memory_budget_bytes = 1 << 20;
  sched::JobScheduler scheduler(&platform_.dfs(), &platform_.files(), sopts);
  sched::JobRequest request;
  request.id = "too_big";
  request.spec = PerUserCountJob("clicks", "tb.out", 2);
  request.options = HashOnePassOptions();
  request.memory_bytes = 2 << 20;
  EXPECT_THROW(scheduler.Submit(std::move(request)), sched::AdmissionError);
}

TEST_F(SchedulerTest, MemoryBudgetSerializesOversizedJobs) {
  // Two jobs each charging >half the budget can never overlap, whatever
  // the slot pool would allow.
  sched::SchedulerOptions sopts;
  sopts.memory_budget_bytes = 100;
  sopts.max_concurrent = 4;
  sched::JobScheduler scheduler(&platform_.dfs(), &platform_.files(), sopts);
  for (int i = 0; i < 2; ++i) {
    sched::JobRequest request;
    request.id = "mem" + std::to_string(i);
    request.spec =
        PerUserCountJob("clicks", "mem" + std::to_string(i) + ".out", 2);
    request.options = HashOnePassOptions();
    request.memory_bytes = 60;
    scheduler.Submit(std::move(request));
  }
  const auto reports = scheduler.Drain();
  for (const auto& report : reports) {
    EXPECT_FALSE(report.failed) << report.error;
  }
  EXPECT_EQ(scheduler.stats().peak_concurrent, 1);
}

TEST_F(SchedulerTest, FailedJobIsReportedNotFatal) {
  sched::JobScheduler scheduler(&platform_.dfs(), &platform_.files(), {});
  sched::JobRequest bad;
  bad.id = "missing_input";
  bad.spec = PerUserCountJob("no_such_file", "x.out", 2);
  bad.options = HashOnePassOptions();
  const int bad_handle = scheduler.Submit(std::move(bad));
  sched::JobRequest good;
  good.id = "fine";
  good.spec = PerUserCountJob("clicks", "fine.out", 2);
  good.options = HashOnePassOptions();
  const int good_handle = scheduler.Submit(std::move(good));

  const auto bad_report = scheduler.Wait(bad_handle);
  EXPECT_TRUE(bad_report.failed);
  EXPECT_FALSE(bad_report.error.empty());
  const auto good_report = scheduler.Wait(good_handle);
  EXPECT_FALSE(good_report.failed) << good_report.error;
  EXPECT_GT(good_report.result.output_records, 0u);

  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.submitted, 2);
  EXPECT_EQ(stats.completed, 1);
  EXPECT_EQ(stats.failed, 1);
}

// Acceptance: N concurrent jobs through the scheduler produce outputs
// byte-identical to sequential ClusterExecutor runs, across all three
// transports.  Outputs are compared as sorted row multisets — the hash
// runtimes do not define an output order.
TEST_F(SchedulerTest, ConcurrentJobsMatchSequentialAcrossTransports) {
  struct JobDef {
    const char* id;
    sched::JobTransport transport;
    int reducers;
  };
  const std::vector<JobDef> defs = {
      {"direct", sched::JobTransport::kDirect, 3},
      {"loopback", sched::JobTransport::kLoopback, 2},
      {"tcp", sched::JobTransport::kTcp, 2},
  };

  // Sequential baseline, one plain Run per job.
  for (const auto& def : defs) {
    platform_.Run(
        PerUserCountJob("clicks", std::string(def.id) + ".seq", def.reducers),
        HashOnePassOptions());
  }

  sched::SchedulerOptions sopts;
  sopts.map_slots = 4;
  sopts.reduce_slots = 2;
  sopts.max_concurrent = 3;
  sopts.policy = SchedPolicy::kFair;
  sched::JobScheduler scheduler(&platform_.dfs(), &platform_.files(), sopts);
  for (const auto& def : defs) {
    sched::JobRequest request;
    request.id = def.id;
    request.spec = PerUserCountJob(
        "clicks", std::string(def.id) + ".sched", def.reducers);
    request.options = HashOnePassOptions();
    request.transport = def.transport;
    scheduler.Submit(std::move(request));
  }
  const auto reports = scheduler.Drain();
  ASSERT_EQ(reports.size(), defs.size());
  for (std::size_t i = 0; i < defs.size(); ++i) {
    ASSERT_FALSE(reports[i].failed) << reports[i].id << ": "
                                    << reports[i].error;
    const auto expected =
        SortedOutput(std::string(defs[i].id) + ".seq", defs[i].reducers);
    const auto actual =
        SortedOutput(std::string(defs[i].id) + ".sched", defs[i].reducers);
    EXPECT_EQ(actual, expected) << defs[i].id;
    EXPECT_GT(reports[i].result.output_records, 0u);
  }
  EXPECT_GE(scheduler.stats().peak_concurrent, 2);
}

TEST_F(SchedulerTest, TimelineShiftsJobsOntoSchedulerClock) {
  sched::JobScheduler scheduler(&platform_.dfs(), &platform_.files(), {});
  sched::JobRequest request;
  request.id = "tl";
  request.spec = PerUserCountJob("clicks", "tl.out", 2);
  request.options = HashOnePassOptions();
  const int handle = scheduler.Submit(std::move(request));
  const auto report = scheduler.Wait(handle);
  ASSERT_FALSE(report.failed) << report.error;
  const auto timeline = scheduler.Timeline();
  ASSERT_FALSE(timeline.empty());
  for (const auto& iv : timeline) {
    EXPECT_GE(iv.begin_s, report.started_s);
    EXPECT_LE(iv.end_s, report.finished_s + 0.5);
  }
}

TEST_F(SchedulerTest, RunAsyncDeliversResultOnFuture) {
  ClusterExecutor executor(&platform_.dfs(), &platform_.files(),
                           &platform_.metrics(), {.num_nodes = 4});
  const auto spec = PerUserCountJob("clicks", "async.out", 2);
  const auto options = HashOnePassOptions();
  auto future = executor.RunAsync(spec, options);
  const auto result = future.get();
  EXPECT_GT(result.output_records, 0u);

  // Failures surface on get(), not at launch.
  const auto bad = PerUserCountJob("no_such_file", "async2.out", 2);
  auto bad_future = executor.RunAsync(bad, options);
  EXPECT_THROW(bad_future.get(), std::exception);
}

// ---------------------------------------------------------------------------
// Checkpoint-seeded reduce speculation
// ---------------------------------------------------------------------------

// Acceptance: a fault-injected slow reducer under push shuffle gets a
// backup attempt seeded from the newest checkpoint image, replaying only
// the un-acked suffix, and the output stays byte-identical to a clean run.
TEST(ReduceSpeculationTest, SlowReducerTakenOverFromCheckpoint) {
  ClickStreamOptions gen;
  gen.num_records = 30'000;
  gen.num_users = 1'000;

  // Clean baseline (same seeded generator => identical input data).
  Platform clean({.num_nodes = 4, .block_bytes = 256u << 10});
  GenerateClickStream(clean.dfs(), "clicks", gen);
  clean.Run(PerUserCountJob("clicks", "out", 2),
            CheckpointedOnePassOptions(512));
  auto expected = clean.ReadOutput("out", 2);
  std::sort(expected.begin(), expected.end());

  // Slow node 0 => reducer 0 (r % num_nodes) crawls through its folds
  // until the watchdog preempts it in favor of a checkpoint-seeded backup.
  PlatformOptions popts;
  popts.num_nodes = 4;
  popts.block_bytes = 256u << 10;
  popts.speculative_reduce = true;
  popts.reduce_speculation_threshold = 2.0;
  popts.fault_plan = "seed=5;slow_node:node=0,delay_ms=0.2";
  Platform slow(popts);
  GenerateClickStream(slow.dfs(), "clicks", gen);
  const auto result = slow.Run(PerUserCountJob("clicks", "out", 2),
                               CheckpointedOnePassOptions(512));

  EXPECT_GE(result.spec_reduce_launched, 1);
  EXPECT_GE(result.spec_reduce_seeded_from_ckpt, 1);
  EXPECT_GE(result.spec_reduce_wins, 1);
  EXPECT_GE(result.checkpoints_loaded, 1);
  // The backup replays only the un-acked suffix, not the whole partition.
  EXPECT_GT(result.replay_records, 0u);
  EXPECT_LT(result.replay_records, result.map_output_records);

  auto actual = slow.ReadOutput("out", 2);
  std::sort(actual.begin(), actual.end());
  EXPECT_EQ(actual, expected);
}

TEST(ReduceSpeculationTest, RequiresCheckpointing) {
  Platform platform({.num_nodes = 2,
                     .block_bytes = 256u << 10,
                     .speculative_reduce = true});
  ClickStreamOptions gen;
  gen.num_records = 2'000;
  GenerateClickStream(platform.dfs(), "clicks", gen);
  EXPECT_THROW(
      platform.Run(PerUserCountJob("clicks", "out", 2), HashOnePassOptions()),
      std::invalid_argument);
}

}  // namespace
}  // namespace opmr
