// Transport tests: the loopback and TCP implementations must deliver the
// same frames the same way — request in, reply out, counters charged —
// and the TCP client must survive an injected connection drop with an
// exactly-once retransmit over a fresh connection.
#include "net/transport.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "metrics/counters.h"
#include "net/loopback.h"
#include "net/tcp.h"
#include "net/wire.h"

namespace opmr::net {
namespace {

// Collects frames across threads and lets a test wait for a count.
class FrameLog {
 public:
  void Add(Frame frame) {
    {
      std::scoped_lock lock(mu_);
      frames_.push_back(std::move(frame));
    }
    cv_.notify_all();
  }

  // Returns false on timeout.
  bool WaitFor(std::size_t count, std::chrono::milliseconds timeout =
                                      std::chrono::seconds(10)) {
    std::unique_lock lock(mu_);
    return cv_.wait_for(lock, timeout,
                        [&] { return frames_.size() >= count; });
  }

  std::vector<Frame> Snapshot() {
    std::scoped_lock lock(mu_);
    return frames_;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Frame> frames_;
};

// Uninstalls the process-global fault hook however the test exits.
class HookGuard {
 public:
  explicit HookGuard(NetFaultHook* hook) { SetNetFaultHook(hook); }
  ~HookGuard() { SetNetFaultHook(nullptr); }
};

// Drops the first transmission attempt of one specific frame ordinal.
class DropOnceHook : public NetFaultHook {
 public:
  explicit DropOnceHook(std::uint64_t target_seq) : target_(target_seq) {}

  bool OnFrameSend(std::uint64_t frame_seq, int attempt) override {
    if (frame_seq == target_ && attempt == 1) {
      ++drops_;
      return true;
    }
    return false;
  }

  [[nodiscard]] int drops() const { return drops_.load(); }

 private:
  std::uint64_t target_;
  std::atomic<int> drops_{0};
};

ChunkMsg MakeChunk(int seq) {
  ChunkMsg msg;
  msg.map_task = seq;
  msg.reducer = 0;
  msg.records = 1;
  msg.bytes = "chunk-" + std::to_string(seq);
  return msg;
}

TEST(NetTransport, LoopbackRequestReplyRoundTrip) {
  MetricRegistry metrics;
  LoopbackTransport transport(&metrics);
  EXPECT_EQ(transport.endpoint(), "loopback");

  FrameLog server_log;
  transport.Listen([&](Connection* from, Frame frame) {
    server_log.Add(frame);
    if (frame.type == FrameType::kChunk) {
      CreditMsg credit;
      credit.reducer = ChunkMsg::Parse(frame).reducer;
      from->Send(credit.ToFrame());
    }
  });

  FrameLog replies;
  auto conn = transport.Connect(
      [&](Connection*, Frame frame) { replies.Add(std::move(frame)); });
  conn->Send(MakeChunk(0).ToFrame());

  // Loopback delivery is synchronous: both the request and its reply have
  // already landed.
  ASSERT_TRUE(server_log.WaitFor(1));
  ASSERT_TRUE(replies.WaitFor(1));
  EXPECT_EQ(CreditMsg::Parse(replies.Snapshot()[0]).reducer, 0);
  EXPECT_EQ(metrics.Value(kNetFramesSent), 2);  // chunk + credit
  EXPECT_EQ(metrics.Value(kNetFramesReceived), 2);
  EXPECT_GT(metrics.Value(kNetBytesSent), 0);
  transport.Shutdown();
}

TEST(NetTransport, TcpRequestReplyRoundTrip) {
  MetricRegistry metrics;
  TcpTransport transport(&metrics);

  FrameLog server_log;
  transport.Listen([&](Connection* from, Frame frame) {
    server_log.Add(frame);
    if (frame.type == FrameType::kChunk) {
      CreditMsg credit;
      credit.reducer = ChunkMsg::Parse(frame).reducer;
      from->Send(credit.ToFrame());
    }
  });

  FrameLog replies;
  auto conn = transport.Connect(
      [&](Connection*, Frame frame) { replies.Add(std::move(frame)); });
  for (int i = 0; i < 3; ++i) conn->Send(MakeChunk(i).ToFrame());

  ASSERT_TRUE(server_log.WaitFor(3));
  ASSERT_TRUE(replies.WaitFor(3));
  const auto received = server_log.Snapshot();
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(ChunkMsg::Parse(received[i]).map_task, i) << "order preserved";
  }
  // Shutdown joins the server reader threads, so the credit sends' counter
  // updates are visible before the assertions below.
  transport.Shutdown();
  EXPECT_EQ(metrics.Value(kNetFramesSent), 6);  // 3 chunks + 3 credits
  EXPECT_EQ(metrics.Value(kNetFramesReceived), 6);
  EXPECT_EQ(metrics.Value(kNetRetransmits), 0);
}

TEST(NetTransport, TcpShutdownIsIdempotentAndJoinsThreads) {
  MetricRegistry metrics;
  TcpTransport transport(&metrics);
  transport.Listen([](Connection*, Frame) {});
  auto conn = transport.Connect([](Connection*, Frame) {});
  conn->Send(MakeChunk(0).ToFrame());
  transport.Shutdown();
  transport.Shutdown();  // second call is a no-op
  EXPECT_THROW(conn->Send(MakeChunk(1).ToFrame()), TransportError);
}

TEST(NetTransport, TcpInjectedDropRetransmitsExactlyOnce) {
  MetricRegistry metrics;
  TcpTransport transport(&metrics);

  FrameLog server_log;
  transport.Listen(
      [&](Connection*, Frame frame) { server_log.Add(std::move(frame)); });

  auto conn = transport.Connect([](Connection*, Frame) {});

  HelloMsg hello;
  hello.job = "drop test";
  transport.SetConnectPreamble(hello.ToFrame());
  conn->Send(hello.ToFrame());  // frame_seq 1

  // Drop frame_seq 3 (the second chunk) on its first attempt.  The client
  // must tear the connection down before any byte hits the wire, reconnect,
  // lead with the Hello preamble, and retransmit — so the server sees every
  // chunk exactly once plus one extra Hello.
  DropOnceHook hook(/*target_seq=*/3);
  HookGuard guard(&hook);
  for (int i = 0; i < 3; ++i) conn->Send(MakeChunk(i).ToFrame());

  ASSERT_TRUE(server_log.WaitFor(5));  // 2 hellos + 3 chunks
  EXPECT_EQ(hook.drops(), 1);

  int hellos = 0;
  std::vector<int> chunk_tasks;
  for (const Frame& frame : server_log.Snapshot()) {
    if (frame.type == FrameType::kHello) {
      ++hellos;
    } else {
      ASSERT_EQ(frame.type, FrameType::kChunk);
      chunk_tasks.push_back(ChunkMsg::Parse(frame).map_task);
    }
  }
  EXPECT_EQ(hellos, 2) << "reconnect must resend the Hello preamble";
  // Order across the two server reader threads is not synchronized; the
  // exactly-once property is what matters.
  std::sort(chunk_tasks.begin(), chunk_tasks.end());
  EXPECT_EQ(chunk_tasks, (std::vector<int>{0, 1, 2}))
      << "exactly-once delivery across the reconnect";
  EXPECT_EQ(metrics.Value(kNetRetransmits), 1);
  EXPECT_EQ(metrics.Value(kNetReconnects), 1);
  EXPECT_GT(metrics.Value(kNetStallNanos), 0);
  transport.Shutdown();
}

TEST(NetTransport, HandlerSelfCloseKillsTheSocketBeforeTheHandlerReturns) {
  // An injected peer crash closes a server connection from inside its own
  // frame handler.  The close must take effect right there — not when the
  // reader thread eventually unwinds — because a half-open socket keeps
  // ACKing the client's writes, and a busy sender can then finish its
  // whole stream "successfully" without ever seeing the failure that
  // triggers its ack-window replay.  The stalled handler below stands in
  // for a descheduled reader thread on a loaded host.
  MetricRegistry metrics;
  TcpTransport server(&metrics);
  std::atomic<bool> crashed{false};
  std::atomic<bool> release{false};
  server.Listen([&](Connection* from, Frame) {
    if (crashed.exchange(true)) return;  // fresh connections stay up
    from->Close();
    while (!release) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  MetricRegistry client_metrics;
  TcpTransport client(&client_metrics, server.endpoint());
  auto conn = client.Connect([](Connection*, Frame) {});
  conn->Send(MakeChunk(0).ToFrame());

  // Follow-up writes must fail while the handler is still stalled:
  // Send() has to detect the close and reconnect, not keep "delivering"
  // into the void until the handler returns.  (On an idle loopback a
  // half-open socket also RSTs quickly, so this guards the visibility
  // semantics; the silent-loss hang itself only reproduces under load —
  // see the chaos-test stress notes in CHANGES.md.)
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  int seq = 1;
  while (client_metrics.Value(kNetReconnects) == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    conn->Send(MakeChunk(seq++).ToFrame());
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(client_metrics.Value(kNetReconnects), 1)
      << "client never observed the mid-handler close";
  release = true;
  client.Shutdown();
  server.Shutdown();
}

TEST(NetTransport, LoopbackNeverConsultsFaultHook) {
  MetricRegistry metrics;
  LoopbackTransport transport(&metrics);
  transport.Listen([](Connection*, Frame) {});
  DropOnceHook hook(/*target_seq=*/1);
  HookGuard guard(&hook);
  auto conn = transport.Connect([](Connection*, Frame) {});
  conn->Send(MakeChunk(0).ToFrame());
  EXPECT_EQ(hook.drops(), 0) << "there is no wire to fail in-process";
  EXPECT_EQ(metrics.Value(kNetRetransmits), 0);
  transport.Shutdown();
}

}  // namespace
}  // namespace opmr::net
