// Cluster coordination plane: worker registry determinism, the
// coordinator's lease failure detector over real TCP, auth on Register,
// seeded heartbeat-loss chaos recovered through the ack-window replay,
// registry-driven scheduler placement, and a full partitioned 2-mapper /
// 1-reducer topology that must be answer-identical to the in-process
// engine.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "coord/coordinator.h"
#include "coord/member.h"
#include "coord/registry.h"
#include "core/opmr.h"
#include "fault/fault.h"
#include "net/tcp.h"
#include "sched/scheduler.h"
#include "workloads/clickstream.h"
#include "workloads/tasks.h"

namespace opmr {
namespace {

using Rows = std::vector<std::pair<std::string, std::string>>;

std::map<std::string, std::string> AsMap(const Rows& rows) {
  std::map<std::string, std::string> m;
  for (const auto& [k, v] : rows) {
    EXPECT_TRUE(m.emplace(k, v).second) << "duplicate key " << k;
  }
  return m;
}

// Installs/uninstalls the process-global net fault hook for code paths
// (Join, heartbeats) that run outside ClusterExecutor::Run's own guard.
class ScopedNetFaultHook {
 public:
  explicit ScopedNetFaultHook(net::NetFaultHook* hook) {
    net::SetNetFaultHook(hook);
  }
  ~ScopedNetFaultHook() { net::SetNetFaultHook(nullptr); }
};

void GenerateInput(Platform& platform) {
  ClickStreamOptions gen;
  gen.num_records = 40'000;
  gen.num_users = 5'000;
  GenerateClickStream(platform.dfs(), "clicks", gen);
}

std::map<std::string, std::string> DirectTruth() {
  Platform platform({.num_nodes = 3, .block_bytes = 256u << 10});
  GenerateInput(platform);
  (void)platform.Run(PerUserCountJob("clicks", "out", 2),
                     HashOnePassOptions());
  return AsMap(platform.ReadOutput("out", 2));
}

// --- Registry: deterministic membership bookkeeping --------------------------

TEST(WorkerRegistry, GenerationEpochAndLeaseLifecycle) {
  coord::WorkerRegistry registry;

  EXPECT_EQ(registry.Register("w1", "host-a:1", net::WireRole::kMap, 0.0), 1u);
  EXPECT_EQ(registry.Register("w2", "host-b:2", net::WireRole::kReduce, 0.0),
            1u);
  const auto epoch_after_joins = registry.epoch();
  EXPECT_EQ(registry.LiveCount(net::WireRole::kMap), 1u);
  EXPECT_EQ(registry.LiveCount(net::WireRole::kReduce), 1u);

  // Lease renewal only with the current generation.
  EXPECT_TRUE(registry.Heartbeat("w1", 1, 1.0));
  EXPECT_FALSE(registry.Heartbeat("w1", 0, 1.0));  // stale generation
  EXPECT_FALSE(registry.Heartbeat("ghost", 1, 1.0));

  // Expiry is a pure function of (now, lease) over the heartbeat history:
  // w1 renewed at t=1, w2 never after registering at t=0.
  EXPECT_TRUE(registry.ExpireLeases(1.5, 2.0).empty());
  const auto expired = registry.ExpireLeases(2.5, 2.0);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0], "w2");
  EXPECT_EQ(registry.LiveCount(net::WireRole::kReduce), 0u);
  EXPECT_GT(registry.epoch(), epoch_after_joins);

  // An evicted worker cannot renew; it must re-register (generation bump).
  EXPECT_FALSE(registry.Heartbeat("w2", 1, 2.6));
  EXPECT_EQ(registry.Register("w2", "host-b:2", net::WireRole::kReduce, 3.0),
            2u);
  EXPECT_TRUE(registry.Heartbeat("w2", 2, 3.1));
  EXPECT_EQ(registry.LiveCount(net::WireRole::kReduce), 1u);

  // Re-running the same (event, timestamp) sequence on a fresh registry
  // yields the same evictions — the determinism the chaos tests lean on.
  coord::WorkerRegistry replay;
  (void)replay.Register("w1", "host-a:1", net::WireRole::kMap, 0.0);
  (void)replay.Register("w2", "host-b:2", net::WireRole::kReduce, 0.0);
  (void)replay.Heartbeat("w1", 1, 1.0);
  EXPECT_EQ(replay.ExpireLeases(2.5, 2.0), expired);
}

TEST(WorkerRegistry, SnapshotAndPlacementOrder) {
  coord::WorkerRegistry registry;
  (void)registry.Register("map-b", "b:1", net::WireRole::kMap, 0.0);
  (void)registry.Register("map-a", "a:1", net::WireRole::kMap, 0.0);
  (void)registry.Register("reduce-0", "r:1", net::WireRole::kReduce, 0.0);

  // Snapshot keeps registration order (the broadcast view)...
  const auto view = registry.Snapshot();
  ASSERT_EQ(view.entries.size(), 3u);
  EXPECT_EQ(view.entries[0].worker, "map-b");

  // ...while LiveWorkers sorts by id: the canonical placement order every
  // participant derives independently from the same view.
  const auto maps = registry.LiveWorkers(net::WireRole::kMap);
  ASSERT_EQ(maps.size(), 2u);
  EXPECT_EQ(maps[0].id, "map-a");
  EXPECT_EQ(maps[1].id, "map-b");

  coord::WorkerInfo info;
  ASSERT_TRUE(registry.Lookup("reduce-0", &info));
  EXPECT_EQ(info.endpoint, "r:1");
  EXPECT_FALSE(registry.Lookup("nope", &info));
}

TEST(WorkerRegistry, LiveWorkersOrderingContractIsSortedById) {
  // The registry.h ORDERING CONTRACT, pinned: LiveWorkers returns live
  // workers of the role sorted ascending by id — never registration order,
  // never heartbeat recency — and stays sorted across evictions and
  // rejoins.  The placement plane derives its worker<->node bridge from
  // this order; reordering it silently re-places every operation.
  coord::WorkerRegistry registry;
  (void)registry.Register("map-c", "c:1", net::WireRole::kMap, 0.0);
  (void)registry.Register("map-a", "a:1", net::WireRole::kMap, 0.0);
  (void)registry.Register("map-d", "d:1", net::WireRole::kMap, 0.0);
  (void)registry.Register("map-b", "b:1", net::WireRole::kMap, 0.0);

  const auto ids = [&] {
    std::vector<std::string> out;
    for (const auto& w : registry.LiveWorkers(net::WireRole::kMap)) {
      out.push_back(w.id);
    }
    return out;
  };
  EXPECT_EQ(ids(), (std::vector<std::string>{"map-a", "map-b", "map-c",
                                             "map-d"}));

  // Heartbeat recency must not perturb the order...
  (void)registry.Heartbeat("map-d", 1, 1.0);
  (void)registry.Heartbeat("map-a", 1, 1.2);
  EXPECT_EQ(ids(), (std::vector<std::string>{"map-a", "map-b", "map-c",
                                             "map-d"}));

  // ...an eviction removes its entry without reordering the rest...
  (void)registry.Heartbeat("map-b", 1, 2.0);
  (void)registry.Heartbeat("map-c", 1, 2.0);
  (void)registry.Heartbeat("map-d", 1, 2.0);
  const auto expired = registry.ExpireLeases(3.5, 2.0);  // map-a last at 1.2
  ASSERT_EQ(expired, (std::vector<std::string>{"map-a"}));
  EXPECT_EQ(ids(), (std::vector<std::string>{"map-b", "map-c", "map-d"}));

  // ...and a rejoin re-inserts at its sorted position, not at the tail.
  (void)registry.Register("map-a", "a:1", net::WireRole::kMap, 4.0);
  EXPECT_EQ(ids(), (std::vector<std::string>{"map-a", "map-b", "map-c",
                                             "map-d"}));
}

TEST(WorkerRegistry, HeartbeatLoadVectorAndSuspectCount) {
  coord::WorkerRegistry registry;
  (void)registry.Register("w1", "h:1", net::WireRole::kMap, 0.0);

  // The v6 heartbeat overload stores the reported load; LoadAt reads
  // missing indices as zero.
  EXPECT_TRUE(registry.Heartbeat("w1", 1, 1.0, {2, 0, 5}));
  coord::WorkerInfo info;
  ASSERT_TRUE(registry.Lookup("w1", &info));
  EXPECT_EQ(info.LoadAt(net::kLoadMapSlotsHeld), 2u);
  EXPECT_EQ(info.LoadAt(net::kLoadReduceSlotsHeld), 0u);
  EXPECT_EQ(info.LoadAt(net::kLoadQueueDepth), 5u);
  EXPECT_EQ(info.LoadAt(99), 0u);  // out of range reads as unloaded
  EXPECT_EQ(info.suspect_count, 0u);

  // A stale-generation heartbeat must not smuggle load in.
  EXPECT_FALSE(registry.Heartbeat("w1", 0, 1.5, {9, 9, 9}));
  ASSERT_TRUE(registry.Lookup("w1", &info));
  EXPECT_EQ(info.LoadAt(net::kLoadMapSlotsHeld), 2u);

  // Lease expiry bumps suspect_count — the flappiness history the
  // placement ranking reads — and a re-register clears the stale load but
  // keeps the history.
  ASSERT_EQ(registry.ExpireLeases(4.0, 2.0),
            (std::vector<std::string>{"w1"}));
  ASSERT_TRUE(registry.Lookup("w1", &info));
  EXPECT_EQ(info.suspect_count, 1u);
  (void)registry.Register("w1", "h:1", net::WireRole::kMap, 5.0);
  ASSERT_TRUE(registry.Lookup("w1", &info));
  EXPECT_TRUE(info.alive);
  EXPECT_TRUE(info.load.empty());
  EXPECT_EQ(info.suspect_count, 1u);
}

// --- Coordinator + CoordClient over real TCP ---------------------------------

TEST(Coordinator, AuthenticatedJoinAndWrongSecretRejection) {
  MetricRegistry metrics;
  net::TcpTransport transport(&metrics);
  transport.Bind();
  coord::Coordinator::Options copts;
  copts.secret = "hush";
  coord::Coordinator coordinator(&transport, &metrics, copts);

  // Wrong secret: structured rejection, never registered.
  {
    coord::CoordClient::Options wrong;
    wrong.coordinator = transport.endpoint();
    wrong.worker_id = "intruder";
    wrong.endpoint = "-";
    wrong.secret = "guess";
    coord::CoordClient client(&metrics, wrong);
    EXPECT_THROW(client.Join(5.0), coord::CoordError);
  }
  EXPECT_EQ(metrics.Value("coord.auth_failures"), 1);
  EXPECT_EQ(coordinator.registry().LiveCount(net::WireRole::kMap), 0u);

  // Right secret: joins, appears in the view with its advertised endpoint.
  coord::CoordClient::Options good;
  good.coordinator = transport.endpoint();
  good.worker_id = "reduce-0";
  good.endpoint = "10.9.8.7:4242";
  good.role = net::WireRole::kReduce;
  good.secret = "hush";
  coord::CoordClient client(&metrics, good);
  client.Join(5.0);
  EXPECT_EQ(client.generation(), 1u);
  ASSERT_TRUE(
      coordinator.WaitForWorkers(net::WireRole::kReduce, 1, 5.0));
  coord::WorkerInfo info;
  ASSERT_TRUE(coordinator.registry().Lookup("reduce-0", &info));
  EXPECT_EQ(info.endpoint, "10.9.8.7:4242");

  // The client's own view converges to the same membership.
  std::vector<net::MembershipMsg::Entry> live;
  ASSERT_TRUE(client.WaitForRole(net::WireRole::kReduce, 1, 5.0, &live));
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(live[0].endpoint, "10.9.8.7:4242");

  client.Stop();
  coordinator.Stop();
  transport.Shutdown();
}

TEST(Coordinator, RegistryPartitionDelaysJoinUntilBudgetExhausted) {
  // A registry_partition fault swallows the first Register before it hits
  // the wire; the join loop's retry (attempt 2, past the fault's budget)
  // goes through.  Deterministic: no timing in the decision, only in how
  // long the retry backoff takes.
  MetricRegistry metrics;
  FaultInjector injector(FaultPlan::Parse("seed=5;registry_partition:tag=w1"),
                         &metrics);
  ScopedNetFaultHook hook(&injector);

  net::TcpTransport transport(&metrics);
  transport.Bind();
  coord::Coordinator coordinator(&transport, &metrics, {});

  coord::CoordClient::Options mopts;
  mopts.coordinator = transport.endpoint();
  mopts.worker_id = "w1";
  mopts.endpoint = "-";
  mopts.register_retry_ms = 20;
  coord::CoordClient client(&metrics, mopts);
  client.Join(10.0);
  EXPECT_EQ(client.generation(), 1u);
  EXPECT_EQ(metrics.Value("coord.client.registers_suppressed"), 1);
  EXPECT_GE(metrics.Value("coord.client.registers_sent"), 1);

  client.Stop();
  coordinator.Stop();
  transport.Shutdown();
}

TEST(Coordinator, HeartbeatLossRunsTheTwoStageDetector) {
  // Starve generation-1 heartbeats via the chaos plane: the lease lapses
  // (suspect + membership broadcast), the client re-registers under
  // generation 2, on_worker_returned fires at the coordinator and
  // on_evicted fires at the client.  The rejoin-grace budget is generous,
  // so the worker is never declared lost.
  MetricRegistry metrics;
  FaultInjector injector(FaultPlan::Parse("seed=1;heartbeat_loss:tag=w1"),
                         &metrics);
  ScopedNetFaultHook hook(&injector);

  net::TcpTransport transport(&metrics);
  transport.Bind();
  coord::Coordinator::Options copts;
  copts.lease_s = 0.15;
  copts.rejoin_grace_s = 30.0;
  copts.sweep_interval_ms = 20;
  std::atomic<int> lost{0};
  std::atomic<int> returned{0};
  copts.on_worker_lost = [&lost](const std::string&) { ++lost; };
  copts.on_worker_returned = [&returned](const std::string&) { ++returned; };
  coord::Coordinator coordinator(&transport, &metrics, copts);

  coord::CoordClient::Options mopts;
  mopts.coordinator = transport.endpoint();
  mopts.worker_id = "w1";
  mopts.endpoint = "-";
  mopts.heartbeat_interval_ms = 30;
  coord::CoordClient client(&metrics, mopts);
  std::atomic<int> evicted{0};
  client.SetOnEvicted([&evicted] { ++evicted; });
  client.Join(5.0);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while ((client.evictions() < 1 || evicted.load() < 1 ||
          returned.load() < 1) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(client.evictions(), 1u);
  EXPECT_GE(evicted.load(), 1);
  EXPECT_GE(returned.load(), 1);
  EXPECT_EQ(lost.load(), 0);
  EXPECT_GE(client.generation(), 2u);  // rejoined under a fresh generation
  EXPECT_GE(metrics.Value("coord.client.heartbeats_suppressed"), 1);

  // Generation-2 heartbeats flow (the fault budgets generation 1), so the
  // membership now holds steady.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_EQ(coordinator.registry().LiveCount(net::WireRole::kMap), 1u);

  client.Stop();
  coordinator.Stop();
  transport.Shutdown();
}

// --- Chaos: coordination signals recovering a real shuffle -------------------

TEST(CoordChaos, HeartbeatLossAndPeerCrashRecoverViaAckReplay) {
  // The PR's acceptance property in one process: a seeded plan both
  // starves the worker's generation-1 heartbeats (eviction -> rejoin ->
  // ReplayUnacked through the coordination wiring) and crashes the
  // reducer-side connection after discarding a delivered-but-unapplied
  // frame (peer_crash -> reconnect replay).  The job must not fail, must
  // replay the unacked window (shuffle_ack_replays > 0), and the answer
  // must match the clean in-process run exactly.
  const auto truth = DirectTruth();

  PlatformOptions popts;
  popts.num_nodes = 3;
  popts.block_bytes = 256u << 10;
  popts.fault_plan = "seed=7;heartbeat_loss:tag=chaos-w;peer_crash:record=20";
  Platform platform(popts);
  GenerateInput(platform);

  MetricRegistry& metrics = platform.metrics();
  net::TcpTransport coord_wire(&metrics);
  coord_wire.Bind();
  coord::Coordinator::Options copts;
  copts.secret = "hush";
  copts.lease_s = 0.15;
  copts.rejoin_grace_s = 30.0;
  copts.sweep_interval_ms = 20;
  coord::Coordinator coordinator(&coord_wire, &metrics, copts);

  coord::CoordClient::Options mopts;
  mopts.coordinator = coord_wire.endpoint();
  mopts.worker_id = "chaos-w";
  mopts.endpoint = "-";
  mopts.secret = "hush";
  mopts.heartbeat_interval_ms = 30;
  coord::CoordClient member(&metrics, mopts);
  member.Join(5.0);  // Register flows: only heartbeats are starved

  platform.executor().set_cluster_identity("chaos-w", "hush");
  platform.executor().set_coord_client(&member);
  platform.executor().set_coordinator(&coordinator);

  JobOptions options = HashOnePassOptions();
  options.push_chunk_bytes = 4096;  // many sequenced frames -> a real window
  net::TcpTransport shuffle_wire(&metrics);
  shuffle_wire.Bind();
  JobResult result;
  ASSERT_NO_THROW(result = platform.RunWithTransport(
                      PerUserCountJob("clicks", "out", 2), options,
                      &shuffle_wire, /*shared_fs=*/false));
  platform.executor().set_coord_client(nullptr);
  platform.executor().set_coordinator(nullptr);
  member.Stop();
  coordinator.Stop();
  coord_wire.Shutdown();

  EXPECT_GE(result.shuffle_ack_replays, 1);
  EXPECT_GE(result.shuffle_ack_replayed_frames, 1);
  EXPECT_GE(result.faults_injected, 1);
  EXPECT_EQ(AsMap(platform.ReadOutput("out", 2)), truth);
}

TEST(CoordChaos, ConnDropUnderCoordinationWiringStaysCorrect) {
  // conn_drop tears the shuffle connection before a frame's first
  // transmission; the reconnect path replays the unacked window behind a
  // fresh Hello while the coordination plane keeps its own connection.
  const auto truth = DirectTruth();

  PlatformOptions popts;
  popts.num_nodes = 3;
  popts.block_bytes = 256u << 10;
  popts.fault_plan = "seed=3;conn_drop:record=30";
  Platform platform(popts);
  GenerateInput(platform);

  MetricRegistry& metrics = platform.metrics();
  net::TcpTransport coord_wire(&metrics);
  coord_wire.Bind();
  coord::Coordinator coordinator(&coord_wire, &metrics, {});
  coord::CoordClient::Options mopts;
  mopts.coordinator = coord_wire.endpoint();
  mopts.worker_id = "dropper";
  mopts.endpoint = "-";
  coord::CoordClient member(&metrics, mopts);
  member.Join(5.0);

  platform.executor().set_cluster_identity("dropper", "");
  platform.executor().set_coord_client(&member);

  net::TcpTransport shuffle_wire(&metrics);
  shuffle_wire.Bind();
  JobOptions options = HashOnePassOptions();
  options.push_chunk_bytes = 4096;  // enough frames for the drop to land
  JobResult result;
  ASSERT_NO_THROW(result = platform.RunWithTransport(
                      PerUserCountJob("clicks", "out", 2), options,
                      &shuffle_wire));
  platform.executor().set_coord_client(nullptr);
  member.Stop();
  coordinator.Stop();
  coord_wire.Shutdown();

  EXPECT_GE(result.faults_injected, 1);
  EXPECT_GE(result.net_reconnects, 1);
  EXPECT_EQ(AsMap(platform.ReadOutput("out", 2)), truth);
}

// --- Registry-driven scheduler placement -------------------------------------

TEST(SchedPlacement, DispatchWaitsForLiveWorkersInRegistry) {
  Platform platform({.num_nodes = 2, .block_bytes = 256u << 10});
  GenerateInput(platform);

  coord::WorkerRegistry registry;
  sched::SchedulerOptions sopts;
  sopts.registry = &registry;
  sched::JobScheduler scheduler(&platform.dfs(), &platform.files(), sopts);

  sched::JobRequest request;
  request.id = "gated";
  request.spec = PerUserCountJob("clicks", "gated.out", 2);
  request.options = HashOnePassOptions();
  (void)scheduler.Submit(std::move(request));

  // No live workers: the job must sit in the queue, counted as deferred.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_EQ(scheduler.stats().completed, 0);
  EXPECT_GE(scheduler.stats().placement_deferrals, 1);

  // A map group alone is not enough — the gate needs both roles.
  (void)registry.Register("map-0", "-", net::WireRole::kMap, 0.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_EQ(scheduler.stats().completed, 0);

  (void)registry.Register("reduce-0", "r:1", net::WireRole::kReduce, 0.0);
  const auto reports = scheduler.Drain();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_FALSE(reports[0].failed) << reports[0].error;
  EXPECT_GT(reports[0].result.output_records, 0);
  EXPECT_GE(scheduler.stats().placement_deferrals, 1);
}

// --- Full topology: partitioned map groups behind the coordinator ------------

TEST(CoordTopology, TwoPartitionedMapWorkersMatchDirectAnswer) {
  // The multi-worker shape the CLI's coordinator/worker modes run across
  // processes, compressed into one: a coordinator, one reduce worker
  // serving the shuffle, and two map workers that each generate the same
  // deterministic input, discover the reducer through the membership view,
  // and run disjoint halves of the block list (i % 2 == index).  Segment
  // bytes ship inline — nothing assumes a shared filesystem.
  const auto truth = DirectTruth();

  MetricRegistry coord_metrics;
  net::TcpTransport coord_wire(&coord_metrics);
  coord_wire.Bind();
  coord::Coordinator::Options copts;
  copts.secret = "hush";
  coord::Coordinator coordinator(&coord_wire, &coord_metrics, copts);
  const std::string coord_at = coord_wire.endpoint();

  const PlatformOptions popts{.num_nodes = 3, .block_bytes = 256u << 10};
  const JobSpec spec = PerUserCountJob("clicks", "out", 2);
  const JobOptions options = HashOnePassOptions();

  // Reduce worker: binds the shuffle server and advertises it.
  Platform reduce_platform(popts);
  GenerateInput(reduce_platform);
  net::TcpTransport shuffle_server(&reduce_platform.metrics());
  shuffle_server.Bind();
  coord::CoordClient::Options ropts;
  ropts.coordinator = coord_at;
  ropts.worker_id = "reduce-0";
  ropts.endpoint = shuffle_server.endpoint();
  ropts.role = net::WireRole::kReduce;
  ropts.secret = "hush";
  coord::CoordClient reduce_member(&reduce_platform.metrics(), ropts);
  reduce_member.Join(10.0);
  reduce_platform.executor().set_cluster_identity("reduce-0", "hush");

  JobResult reduce_result;
  std::exception_ptr reduce_error;
  std::thread reducer([&] {
    try {
      reduce_result = reduce_platform.RunReduceGroup(spec, options,
                                                     &shuffle_server, 30.0);
    } catch (...) {
      reduce_error = std::current_exception();
    }
  });

  // Two map workers, one partition each.
  std::vector<std::unique_ptr<Platform>> map_platforms;
  std::vector<std::exception_ptr> map_errors(2);
  std::vector<std::thread> mappers;
  for (int i = 0; i < 2; ++i) {
    map_platforms.push_back(std::make_unique<Platform>(popts));
    GenerateInput(*map_platforms[i]);
  }
  for (int i = 0; i < 2; ++i) {
    mappers.emplace_back([&, i] {
      try {
        Platform& p = *map_platforms[i];
        coord::CoordClient::Options mopts;
        mopts.coordinator = coord_at;
        mopts.worker_id = "map-" + std::to_string(i);
        mopts.endpoint = "-";
        mopts.secret = "hush";
        coord::CoordClient member(&p.metrics(), mopts);
        member.Join(10.0);
        std::vector<net::MembershipMsg::Entry> live;
        if (!member.WaitForRole(net::WireRole::kReduce, 1, 10.0, &live)) {
          throw std::runtime_error("no reduce worker in the view");
        }
        net::TcpTransport wire(&p.metrics(), live.front().endpoint);
        p.executor().set_cluster_identity("map-" + std::to_string(i), "hush");
        p.executor().set_map_partition(i, 2);
        p.executor().set_coord_client(&member);
        (void)p.RunMapGroup(spec, options, &wire, /*shared_fs=*/false);
        p.executor().set_coord_client(nullptr);
        member.Stop();
      } catch (...) {
        map_errors[i] = std::current_exception();
      }
    });
  }
  for (auto& t : mappers) t.join();
  reducer.join();
  reduce_member.Stop();
  coordinator.Stop();
  coord_wire.Shutdown();

  for (int i = 0; i < 2; ++i) {
    if (map_errors[i]) {
      std::rethrow_exception(map_errors[i]);
    }
  }
  if (reduce_error) std::rethrow_exception(reduce_error);

  EXPECT_GT(reduce_result.num_map_tasks, 1);  // saw the full global task set
  EXPECT_GT(reduce_result.output_records, 0);
  EXPECT_EQ(AsMap(reduce_platform.ReadOutput("out", 2)), truth);
}

}  // namespace
}  // namespace opmr
