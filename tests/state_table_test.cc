#include "engine/state_table.h"

#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "engine/aggregators.h"

namespace opmr {
namespace {

class StateTableTest : public ::testing::Test {
 protected:
  SumAggregator sum_;
};

TEST_F(StateTableTest, FoldInitializesThenUpdates) {
  StateTable table(&sum_);
  table.Fold("k", EncodeValueU64(2), false);
  auto& entry = table.Fold("k", EncodeValueU64(3), false);
  EXPECT_EQ(DecodeU64(entry.state.data()), 5u);
  EXPECT_EQ(table.size(), 1u);
}

TEST_F(StateTableTest, FoldMergesStatesWhenFlagged) {
  StateTable table(&sum_);
  table.Fold("k", EncodeValueU64(10), true);
  auto& entry = table.Fold("k", EncodeValueU64(20), true);
  EXPECT_EQ(DecodeU64(entry.state.data()), 30u);
}

TEST_F(StateTableTest, ExtractRemovesAndReturnsState) {
  StateTable table(&sum_);
  table.Fold("gone", EncodeValueU64(7), false);
  std::string state;
  EXPECT_TRUE(table.Extract("gone", &state));
  EXPECT_EQ(DecodeU64(state.data()), 7u);
  EXPECT_FALSE(table.Contains("gone"));
  EXPECT_EQ(table.size(), 0u);
  EXPECT_FALSE(table.Extract("gone", &state));
}

TEST_F(StateTableTest, MemoryAccountingRisesAndFallsConsistently) {
  StateTable table(&sum_);
  EXPECT_EQ(table.MemoryBytes(), 0u);
  for (int i = 0; i < 100; ++i) {
    table.Fold("key-" + std::to_string(i), EncodeValueU64(1), false);
  }
  const auto full = table.MemoryBytes();
  EXPECT_GT(full, 100u * 8);
  std::string state;
  for (int i = 0; i < 100; ++i) {
    table.Extract("key-" + std::to_string(i), &state);
  }
  EXPECT_EQ(table.MemoryBytes(), 0u);
}

TEST_F(StateTableTest, EarlyEmittedFlagPersistsAcrossFolds) {
  StateTable table(&sum_);
  auto& e1 = table.Fold("k", EncodeValueU64(1), false);
  e1.early_emitted = true;
  auto& e2 = table.Fold("k", EncodeValueU64(1), false);
  EXPECT_TRUE(e2.early_emitted);
}

TEST_F(StateTableTest, ForEachVisitsEverything) {
  StateTable table(&sum_);
  Rng rng(1);
  std::map<std::string, std::uint64_t> expected;
  for (int i = 0; i < 5000; ++i) {
    const std::string k = "u" + std::to_string(rng.Uniform(200));
    expected[k] += 1;
    table.Fold(k, EncodeValueU64(1), false);
  }
  std::map<std::string, std::uint64_t> actual;
  table.ForEach([&](Slice key, const StateTable::Entry& entry) {
    actual[key.ToString()] = DecodeU64(entry.state.data());
  });
  EXPECT_EQ(actual, expected);
}

TEST_F(StateTableTest, ClearEmptiesTable) {
  StateTable table(&sum_);
  table.Fold("a", EncodeValueU64(1), false);
  table.Clear();
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.MemoryBytes(), 0u);
  EXPECT_FALSE(table.Contains("a"));
}

TEST_F(StateTableTest, RequiresAggregator) {
  EXPECT_THROW(StateTable(nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace opmr
