#include <gtest/gtest.h>

#include "common/config.h"
#include "common/format.h"
#include "common/progress.h"

namespace opmr {
namespace {

Config ParseArgs(std::vector<std::string> args) {
  std::vector<char*> argv;
  args.insert(args.begin(), "prog");
  argv.reserve(args.size());
  for (auto& a : args) argv.push_back(a.data());
  return Config::FromArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(Config, ParsesKeyValuePairs) {
  const auto cfg = ParseArgs({"records=100", "--name=alpha", "-x=2.5"});
  EXPECT_EQ(cfg.GetInt("records", 0), 100);
  EXPECT_EQ(cfg.GetString("name", ""), "alpha");
  EXPECT_DOUBLE_EQ(cfg.GetDouble("x", 0), 2.5);
}

TEST(Config, BareFlagIsTrue) {
  const auto cfg = ParseArgs({"--verbose"});
  EXPECT_TRUE(cfg.GetBool("verbose", false));
}

TEST(Config, DefaultsWhenAbsent) {
  const auto cfg = ParseArgs({});
  EXPECT_EQ(cfg.GetInt("missing", 7), 7);
  EXPECT_EQ(cfg.GetString("missing", "d"), "d");
  EXPECT_FALSE(cfg.GetBool("missing", false));
  EXPECT_FALSE(cfg.Get("missing").has_value());
}

TEST(Config, BoolVariants) {
  const auto cfg = ParseArgs({"a=true", "b=1", "c=yes", "d=no", "e=false"});
  EXPECT_TRUE(cfg.GetBool("a", false));
  EXPECT_TRUE(cfg.GetBool("b", false));
  EXPECT_TRUE(cfg.GetBool("c", false));
  EXPECT_FALSE(cfg.GetBool("d", true));
  EXPECT_FALSE(cfg.GetBool("e", true));
}

TEST(Config, LaterValueWins) {
  const auto cfg = ParseArgs({"k=1", "k=2"});
  EXPECT_EQ(cfg.GetInt("k", 0), 2);
}

TEST(Format, HumanBytesUnits) {
  EXPECT_EQ(HumanBytes(0), "0 B");
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(64.0 * (1 << 20)), "64.00 MB");
  EXPECT_EQ(HumanBytes(269e9), "251 GB");  // paper's GB ~ decimal
}

TEST(Format, HumanSecondsBands) {
  EXPECT_EQ(HumanSeconds(0.002), "2.0 ms");
  EXPECT_EQ(HumanSeconds(2.5), "2.5 s");
  EXPECT_EQ(HumanSeconds(4560), "76 min.");
}

TEST(Format, Percent) {
  EXPECT_EQ(Percent(0.105), "10.5%");
  EXPECT_EQ(Percent(2.5), "250.0%");
}

TEST(Format, TextTableAlignsColumns) {
  TextTable t;
  t.AddRow({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"longer-name", "22"});
  const std::string out = t.ToString();
  // Header underlined, all rows present.
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  // Column 2 starts at the same offset in the header and in every row:
  // width of "longer-name" (11) plus 2 spaces of padding = column 13.
  EXPECT_NE(out.find("name         value"), std::string::npos);
  EXPECT_NE(out.find("a            1"), std::string::npos);
  EXPECT_NE(out.find("longer-name  22"), std::string::npos);
}

TEST(Progress, ReportsAndAggregates) {
  ProgressReporter progress(4);
  EXPECT_DOUBLE_EQ(progress.OverallProgress(), 0.0);
  progress.Report(0, 1.0);
  progress.Report(1, 0.5);
  EXPECT_NEAR(progress.TaskProgress(0), 1.0, 1e-6);
  EXPECT_NEAR(progress.TaskProgress(1), 0.5, 1e-6);
  EXPECT_NEAR(progress.OverallProgress(), 0.375, 1e-6);
}

TEST(Progress, ClampsOverflow) {
  ProgressReporter progress(1);
  progress.Report(0, 7.3);
  EXPECT_NEAR(progress.TaskProgress(0), 1.0, 1e-6);
}

TEST(Progress, EmptyIsComplete) {
  ProgressReporter progress(0);
  EXPECT_DOUBLE_EQ(progress.OverallProgress(), 1.0);
}

}  // namespace
}  // namespace opmr
