#include "common/arena.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace opmr {
namespace {

TEST(Arena, AllocationsAreWritable) {
  Arena arena;
  char* p = arena.Allocate(16);
  std::memset(p, 'x', 16);
  EXPECT_EQ(p[0], 'x');
  EXPECT_EQ(p[15], 'x');
}

TEST(Arena, PointersStayStableAcrossChunkGrowth) {
  Arena arena(/*chunk_bytes=*/64);
  std::vector<char*> ptrs;
  for (int i = 0; i < 100; ++i) {
    char* p = arena.Allocate(16);
    std::memset(p, static_cast<char>('a' + i % 26), 16);
    ptrs.push_back(p);
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(ptrs[i][0], static_cast<char>('a' + i % 26)) << i;
  }
}

TEST(Arena, OversizedAllocationGetsDedicatedChunk) {
  Arena arena(/*chunk_bytes=*/32);
  char* small = arena.Allocate(8);
  std::memset(small, 's', 8);
  char* big = arena.Allocate(1000);  // > chunk size
  std::memset(big, 'b', 1000);
  char* small2 = arena.Allocate(8);  // bump chunk must still work
  std::memset(small2, 't', 8);
  EXPECT_EQ(small[0], 's');
  EXPECT_EQ(big[999], 'b');
  EXPECT_EQ(small2[0], 't');
}

TEST(Arena, CopyProducesStableEqualSlice) {
  Arena arena(/*chunk_bytes=*/16);
  std::string source = "the quick brown fox";
  Slice copy = arena.Copy(source);
  source.assign(source.size(), '!');  // clobber the original
  EXPECT_EQ(copy.ToString(), "the quick brown fox");
}

TEST(Arena, CopyEmptyIsEmpty) {
  Arena arena;
  EXPECT_TRUE(arena.Copy({}).empty());
}

TEST(Arena, AccountingGrowsWithAllocations) {
  Arena arena(1024);
  EXPECT_EQ(arena.allocated_bytes(), 0u);
  arena.Allocate(100);
  const auto after_one = arena.allocated_bytes();
  EXPECT_GE(after_one, 100u);
  arena.Allocate(2048);  // oversized
  EXPECT_GE(arena.allocated_bytes(), after_one + 2048);
}

TEST(Arena, ResetReleasesEverything) {
  Arena arena(64);
  for (int i = 0; i < 50; ++i) arena.Allocate(32);
  EXPECT_GT(arena.allocated_bytes(), 0u);
  arena.Reset();
  EXPECT_EQ(arena.allocated_bytes(), 0u);
  // And the arena is reusable afterwards.
  char* p = arena.Allocate(8);
  std::memset(p, 'z', 8);
  EXPECT_EQ(p[7], 'z');
}

TEST(Arena, UsedBytesNeverExceedsAllocated) {
  Arena arena(128);
  for (int i = 1; i <= 40; ++i) {
    arena.Allocate(static_cast<std::size_t>(i));
    EXPECT_LE(arena.used_bytes(), arena.allocated_bytes());
  }
}

}  // namespace
}  // namespace opmr
