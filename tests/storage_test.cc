#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "metrics/counters.h"
#include "storage/file_manager.h"
#include "storage/io.h"
#include "storage/run_format.h"

namespace opmr {
namespace {

namespace fs = std::filesystem;

class StorageTest : public ::testing::Test {
 protected:
  StorageTest() : files_(FileManager::CreateTemp("opmr-test")) {}

  IoChannel Channel(const char* name = "test.bytes") {
    return {&metrics_, name};
  }

  FileManager files_;
  MetricRegistry metrics_;
};

TEST_F(StorageTest, NewFilePathsAreUnique) {
  std::set<fs::path> paths;
  for (int i = 0; i < 100; ++i) paths.insert(files_.NewFile("spill"));
  EXPECT_EQ(paths.size(), 100u);
  for (const auto& p : paths) {
    EXPECT_EQ(p.parent_path(), files_.root());
  }
}

TEST_F(StorageTest, NewDirIsCreated) {
  const auto dir = files_.NewDir("sub");
  EXPECT_TRUE(fs::is_directory(dir));
}

TEST_F(StorageTest, DestructorRemovesWorkspace) {
  fs::path root;
  {
    FileManager temp = FileManager::CreateTemp("opmr-cleanup");
    root = temp.root();
    SequentialWriter w(temp.NewFile("f"), Channel());
    w.Append("data");
    w.Close();
    EXPECT_TRUE(fs::exists(root));
  }
  EXPECT_FALSE(fs::exists(root));
}

TEST_F(StorageTest, DiskUsageTracksWrites) {
  EXPECT_EQ(files_.DiskUsageBytes(), 0u);
  SequentialWriter w(files_.NewFile("f"), Channel());
  w.Append(std::string(10'000, 'x'));
  w.Close();
  EXPECT_GE(files_.DiskUsageBytes(), 10'000u);
}

TEST_F(StorageTest, WriterReaderRoundTrip) {
  const auto path = files_.NewFile("rt");
  {
    SequentialWriter w(path, Channel());
    w.Append("hello ");
    w.AppendU32(1234);
    w.AppendU64(5678);
    w.Append("world");
    w.Close();
  }
  SequentialReader r(path, Channel());
  char buf[6];
  ASSERT_TRUE(r.ReadExact(buf, 6));
  EXPECT_EQ(std::string(buf, 6), "hello ");
  std::uint32_t v32 = 0;
  ASSERT_TRUE(r.ReadU32(&v32));
  EXPECT_EQ(v32, 1234u);
  std::uint64_t v64 = 0;
  ASSERT_TRUE(r.ReadU64(&v64));
  EXPECT_EQ(v64, 5678u);
  char buf2[5];
  ASSERT_TRUE(r.ReadExact(buf2, 5));
  EXPECT_EQ(std::string(buf2, 5), "world");
  EXPECT_FALSE(r.ReadExact(buf, 1));  // clean EOF
}

TEST_F(StorageTest, ReaderSeekRepositions) {
  const auto path = files_.NewFile("seek");
  {
    SequentialWriter w(path, Channel());
    w.Append("0123456789");
    w.Close();
  }
  SequentialReader r(path, Channel());
  r.Seek(7);
  char c;
  ASSERT_TRUE(r.ReadExact(&c, 1));
  EXPECT_EQ(c, '7');
  EXPECT_EQ(r.FileSize(), 10u);
}

TEST_F(StorageTest, TruncatedReadThrows) {
  const auto path = files_.NewFile("trunc");
  {
    SequentialWriter w(path, Channel());
    w.Append("abc");
    w.Close();
  }
  SequentialReader r(path, Channel());
  char buf[10];
  EXPECT_THROW(r.ReadExact(buf, 10), std::runtime_error);
}

TEST_F(StorageTest, ChannelAccountsBytes) {
  const auto path = files_.NewFile("acct");
  {
    SequentialWriter w(path, Channel("w.bytes"));
    w.Append(std::string(1000, 'a'));
    w.Close();
  }
  EXPECT_EQ(metrics_.Value("w.bytes"), 1000);
  EXPECT_GE(metrics_.Value("w.bytes.ops"), 1);

  SequentialReader r(path, Channel("r.bytes"));
  char buf[250];
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(r.ReadExact(buf, sizeof(buf)));
  }
  EXPECT_FALSE(r.ReadExact(buf, 1));  // clean EOF
  EXPECT_EQ(metrics_.Value("r.bytes"), 1000);
}

TEST_F(StorageTest, SyncFlushPersists) {
  const auto path = files_.NewFile("sync");
  SequentialWriter w(path, Channel());
  w.Append("durable");
  w.Flush(/*sync=*/true);
  EXPECT_EQ(fs::file_size(path), 7u);
  w.Close();
}

TEST_F(StorageTest, WriteAfterCloseThrows) {
  const auto path = files_.NewFile("closed");
  SequentialWriter w(path, Channel());
  w.Close();
  EXPECT_THROW(w.Flush(), std::logic_error);
}

TEST_F(StorageTest, BytesWrittenCountsPayload) {
  SequentialWriter w(files_.NewFile("count"), Channel());
  w.Append("12345");
  w.AppendU32(0);
  EXPECT_EQ(w.bytes_written(), 9u);
  w.Close();
}

TEST_F(StorageTest, RunFormatRoundTrip) {
  const auto path = files_.NewFile("run");
  {
    RunWriter w(path, Channel());
    w.Append("alpha", "1");
    w.Append("beta", "");
    w.Append("", "valueonly");
    EXPECT_EQ(w.num_records(), 3u);
    w.Close();
  }
  RunReader r(path, Channel());
  ASSERT_TRUE(r.Next());
  EXPECT_EQ(r.key().ToString(), "alpha");
  EXPECT_EQ(r.value().ToString(), "1");
  ASSERT_TRUE(r.Next());
  EXPECT_EQ(r.key().ToString(), "beta");
  EXPECT_TRUE(r.value().empty());
  ASSERT_TRUE(r.Next());
  EXPECT_TRUE(r.key().empty());
  EXPECT_EQ(r.value().ToString(), "valueonly");
  EXPECT_FALSE(r.Next());
}

TEST_F(StorageTest, RunReaderRestrictReadsOneSegment) {
  const auto path = files_.NewFile("seg");
  std::uint64_t seg1_end = 0;
  {
    RunWriter w(path, Channel());
    w.Append("seg0-key", "seg0-val");
    w.Flush();
    seg1_end = w.bytes_written();
    w.Append("seg1-keyA", "x");
    w.Append("seg1-keyB", "y");
    w.Close();
  }
  // Segment 2 only.
  RunReader r(path, Channel());
  r.Restrict(seg1_end, 0);
  ASSERT_TRUE(r.Next());
  EXPECT_EQ(r.key().ToString(), "seg1-keyA");
  ASSERT_TRUE(r.Next());
  EXPECT_EQ(r.key().ToString(), "seg1-keyB");
  EXPECT_FALSE(r.Next());

  // Segment 1 only: restriction must stop exactly at the boundary.
  RunReader r1(path, Channel());
  r1.Restrict(0, seg1_end);
  ASSERT_TRUE(r1.Next());
  EXPECT_EQ(r1.key().ToString(), "seg0-key");
  EXPECT_FALSE(r1.Next());
}

TEST_F(StorageTest, RunReaderRestrictDetectsCrossingRecord) {
  const auto path = files_.NewFile("cross");
  {
    RunWriter w(path, Channel());
    w.Append("0123456789", "0123456789");
    w.Close();
  }
  RunReader r(path, Channel());
  r.Restrict(0, 10);  // cuts through the record
  EXPECT_THROW(r.Next(), std::runtime_error);
}

TEST_F(StorageTest, LargeRecordsSurviveRoundTrip) {
  const auto path = files_.NewFile("large");
  const std::string big_value(5u << 20, 'V');
  {
    RunWriter w(path, Channel());
    w.Append("big", big_value);
    w.Close();
  }
  RunReader r(path, Channel());
  ASSERT_TRUE(r.Next());
  EXPECT_EQ(r.value().size(), big_value.size());
  EXPECT_EQ(r.value().ToString(), big_value);
}

}  // namespace
}  // namespace opmr
