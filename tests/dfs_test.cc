#include "dfs/dfs.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "storage/file_manager.h"

namespace opmr {
namespace {

class DfsTest : public ::testing::Test {
 protected:
  DfsTest() : files_(FileManager::CreateTemp("opmr-dfs")) {}

  Dfs MakeDfs(DfsOptions options = {}) {
    return Dfs(&files_, &metrics_, options);
  }

  static std::vector<std::string> ReadAll(Dfs& dfs, const std::string& name) {
    std::vector<std::string> out;
    for (const auto& block : dfs.ListBlocks(name)) {
      auto reader = dfs.OpenBlock(block);
      Slice record;
      while (reader->Next(&record)) out.push_back(record.ToString());
    }
    return out;
  }

  FileManager files_;
  MetricRegistry metrics_;
};

TEST_F(DfsTest, RoundTripPreservesRecordsAndOrder) {
  auto dfs = MakeDfs({.block_bytes = 256, .num_nodes = 3});
  auto writer = dfs.Create("f");
  std::vector<std::string> expected;
  for (int i = 0; i < 100; ++i) {
    expected.push_back("record-" + std::to_string(i));
    writer->Append(expected.back());
  }
  writer->Close();
  EXPECT_EQ(ReadAll(dfs, "f"), expected);
}

TEST_F(DfsTest, BlocksRespectSizeLimitAndRecordBoundaries) {
  auto dfs = MakeDfs({.block_bytes = 100, .num_nodes = 2});
  auto writer = dfs.Create("f");
  for (int i = 0; i < 50; ++i) writer->Append(std::string(30, 'x'));
  writer->Close();

  const auto blocks = dfs.ListBlocks("f");
  EXPECT_GT(blocks.size(), 1u);
  for (const auto& b : blocks) {
    EXPECT_LE(b.length, 100u);
    // Each block must contain a whole number of records (34 bytes framed).
    EXPECT_EQ(b.length % 34, 0u) << "record split across blocks";
  }
}

TEST_F(DfsTest, BlockOffsetsAreContiguous) {
  auto dfs = MakeDfs({.block_bytes = 128, .num_nodes = 2});
  auto writer = dfs.Create("f");
  for (int i = 0; i < 40; ++i) writer->Append("0123456789");
  const auto total = writer->Close();

  std::uint64_t expected_offset = 0;
  for (const auto& b : dfs.ListBlocks("f")) {
    EXPECT_EQ(b.offset, expected_offset);
    expected_offset += b.length;
  }
  EXPECT_EQ(expected_offset, total);
  EXPECT_EQ(dfs.FileBytes("f"), total);
}

TEST_F(DfsTest, ReplicationPlacesDistinctNodesInRange) {
  auto dfs = MakeDfs({.block_bytes = 64, .replication = 3, .num_nodes = 5});
  auto writer = dfs.Create("f");
  for (int i = 0; i < 200; ++i) writer->Append("abcdefgh");
  writer->Close();

  for (const auto& b : dfs.ListBlocks("f")) {
    EXPECT_EQ(b.replica_nodes.size(), 3u);
    std::set<int> distinct(b.replica_nodes.begin(), b.replica_nodes.end());
    EXPECT_EQ(distinct.size(), 3u);
    for (int n : b.replica_nodes) {
      EXPECT_GE(n, 0);
      EXPECT_LT(n, 5);
    }
  }
}

TEST_F(DfsTest, PlacementSpreadsAcrossNodes) {
  auto dfs = MakeDfs({.block_bytes = 64, .num_nodes = 4});
  auto writer = dfs.Create("f");
  for (int i = 0; i < 400; ++i) writer->Append("0123456789abcdef");
  writer->Close();

  std::vector<int> per_node(4, 0);
  for (const auto& b : dfs.ListBlocks("f")) ++per_node[b.replica_nodes[0]];
  for (int c : per_node) EXPECT_GT(c, 0);
}

TEST_F(DfsTest, DuplicateCreateThrows) {
  auto dfs = MakeDfs();
  dfs.Create("dup")->Close();
  EXPECT_THROW(dfs.Create("dup"), std::runtime_error);
}

TEST_F(DfsTest, UnknownFileThrows) {
  auto dfs = MakeDfs();
  EXPECT_THROW(dfs.ListBlocks("nope"), std::runtime_error);
  EXPECT_THROW(dfs.FileBytes("nope"), std::runtime_error);
  EXPECT_FALSE(dfs.Exists("nope"));
}

TEST_F(DfsTest, FileVisibleOnlyAfterClose) {
  auto dfs = MakeDfs();
  auto writer = dfs.Create("pending");
  writer->Append("x");
  EXPECT_FALSE(dfs.Exists("pending"));
  writer->Close();
  EXPECT_TRUE(dfs.Exists("pending"));
}

TEST_F(DfsTest, EmptyFileHasNoBlocks) {
  auto dfs = MakeDfs();
  dfs.Create("empty")->Close();
  EXPECT_TRUE(dfs.Exists("empty"));
  EXPECT_TRUE(dfs.ListBlocks("empty").empty());
  EXPECT_EQ(dfs.FileBytes("empty"), 0u);
}

TEST_F(DfsTest, RecordLargerThanBlockGetsOwnBlock) {
  auto dfs = MakeDfs({.block_bytes = 64, .num_nodes = 2});
  auto writer = dfs.Create("big");
  writer->Append("small");
  const std::string huge(1000, 'H');
  writer->Append(huge);
  writer->Append("tail");
  writer->Close();

  const auto records = ReadAll(dfs, "big");
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[1], huge);
}

TEST_F(DfsTest, ReadsAndWritesAreAccounted) {
  auto dfs = MakeDfs();
  auto writer = dfs.Create("acct");
  writer->Append(std::string(1000, 'z'));
  writer->Close();
  EXPECT_GE(metrics_.Value(device::kDfsWrite), 1000);
  ReadAll(dfs, "acct");
  EXPECT_GE(metrics_.Value(device::kDfsRead), 1000);
}

TEST_F(DfsTest, InvalidOptionsRejected) {
  EXPECT_THROW(MakeDfs({.replication = 0}), std::invalid_argument);
  EXPECT_THROW(MakeDfs({.replication = 5, .num_nodes = 3}),
               std::invalid_argument);
  EXPECT_THROW(MakeDfs({.num_nodes = 0}), std::invalid_argument);
}

TEST_F(DfsTest, AbandonedWriterPublishesNothing) {
  auto dfs = MakeDfs();
  {
    auto writer = dfs.Create("abandoned");
    writer->Append("data");
    // destructor without Close(): file still becomes visible via the
    // destructor's best-effort Close — verify it is at least consistent.
  }
  // Either published completely or not at all; if published, readable.
  if (dfs.Exists("abandoned")) {
    EXPECT_EQ(ReadAll(dfs, "abandoned").size(), 1u);
  }
}

TEST_F(DfsTest, ManyFilesCoexist) {
  auto dfs = MakeDfs();
  for (int i = 0; i < 20; ++i) {
    auto writer = dfs.Create("file" + std::to_string(i));
    writer->Append("payload" + std::to_string(i));
    writer->Close();
  }
  for (int i = 0; i < 20; ++i) {
    const auto records = ReadAll(dfs, "file" + std::to_string(i));
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0], "payload" + std::to_string(i));
  }
}

}  // namespace
}  // namespace opmr
