// Hash-function library tests, including the empirical pairwise-independence
// properties the paper's hash techniques rely on.
#include "common/hash.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"

namespace opmr {
namespace {

std::vector<std::string> TestKeys(std::size_t n) {
  std::vector<std::string> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys.push_back("key-" + std::to_string(i * 2654435761u));
  }
  return keys;
}

TEST(BytesHash, DeterministicAcrossCalls) {
  const Slice s("determinism");
  EXPECT_EQ(BytesHash(s), BytesHash(s));
  EXPECT_EQ(BytesHash(s, 42), BytesHash(s, 42));
}

TEST(BytesHash, SeedChangesHash) {
  const Slice s("some key");
  EXPECT_NE(BytesHash(s, 1), BytesHash(s, 2));
}

TEST(BytesHash, EmptyAndShortInputsDiffer) {
  std::set<std::uint64_t> seen;
  seen.insert(BytesHash(Slice()));
  seen.insert(BytesHash(Slice("a")));
  seen.insert(BytesHash(Slice("b")));
  seen.insert(BytesHash(Slice("ab")));
  seen.insert(BytesHash(Slice("ba")));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(BytesHash, NoCollisionsOnDistinctKeys) {
  const auto keys = TestKeys(100'000);
  std::set<std::uint64_t> hashes;
  for (const auto& k : keys) hashes.insert(BytesHash(k));
  // 64-bit hash over 1e5 keys: any collision indicates brokenness.
  EXPECT_EQ(hashes.size(), keys.size());
}

TEST(BytesHash, BucketsAreBalanced) {
  const auto keys = TestKeys(64'000);
  constexpr int kBuckets = 64;
  std::vector<int> counts(kBuckets, 0);
  for (const auto& k : keys) ++counts[BytesHash(k) % kBuckets];
  // Expected 1000 per bucket; Poisson σ≈32, allow 6σ.
  for (int c : counts) {
    EXPECT_GT(c, 1000 - 200);
    EXPECT_LT(c, 1000 + 200);
  }
}

TEST(BytesHash, LongKeysHashBlockwise) {
  std::string big(10'000, 'q');
  std::string big2 = big;
  big2[7777] = 'r';
  EXPECT_NE(BytesHash(big), BytesHash(big2));
}

TEST(MultiplyShift, MapsIntoRange) {
  MultiplyShift h(0x9e3779b97f4a7c15ULL, 12345, /*out_bits=*/10);
  for (std::uint64_t x = 0; x < 4096; ++x) {
    EXPECT_LT(h(x), 1024u);
  }
}

TEST(MultiplyShift, EmpiricalPairwiseCollisionBound) {
  // 2-universal: Pr[h(x)=h(y)] <= 1/m over random (a,b).  Estimate over
  // many function draws for a fixed pair.
  Rng rng(7);
  constexpr unsigned kBits = 8;  // m=256
  constexpr int kDraws = 20'000;
  int collisions = 0;
  for (int i = 0; i < kDraws; ++i) {
    MultiplyShift h(rng.Next(), rng.Next(), kBits);
    if (h(123456789) == h(987654321)) ++collisions;
  }
  const double rate = static_cast<double>(collisions) / kDraws;
  EXPECT_LT(rate, 2.5 / 256);  // within ~2.5x of the 1/m bound
}

TEST(TabulationHash, DeterministicPerSeed) {
  TabulationHash h1(1), h1b(1), h2(2);
  const Slice key("tabulate");
  EXPECT_EQ(h1(key), h1b(key));
  EXPECT_NE(h1(key), h2(key));
}

TEST(TabulationHash, ShortKeysOfDifferentLengthsDiffer) {
  TabulationHash h(9);
  // "a" vs "a\0" style length extensions must not collide systematically.
  const char a1[] = {'a'};
  const char a2[] = {'a', '\0'};
  EXPECT_NE(h(Slice(a1, 1)), h(Slice(a2, 2)));
}

TEST(TabulationHash, BalancedBuckets) {
  TabulationHash h(3);
  const auto keys = TestKeys(32'000);
  constexpr int kBuckets = 32;
  std::vector<int> counts(kBuckets, 0);
  for (const auto& k : keys) ++counts[h(k) % kBuckets];
  for (int c : counts) {
    EXPECT_GT(c, 1000 - 200);
    EXPECT_LT(c, 1000 + 200);
  }
}

TEST(HashFamily, MembersAreIndependentPartitioners) {
  // The hybrid-hash reducer re-partitions a colliding bucket with the next
  // family member; keys that collide under member 0 must spread under
  // member 1.
  const HashFamily family(0xfeedULL);
  const auto keys = TestKeys(50'000);
  constexpr int kBuckets = 16;

  std::vector<std::string> bucket0;
  for (const auto& k : keys) {
    if (family.Hash(0, k) % kBuckets == 3) bucket0.push_back(k);
  }
  ASSERT_GT(bucket0.size(), 1000u);

  std::vector<int> counts(kBuckets, 0);
  for (const auto& k : bucket0) ++counts[family.Hash(1, k) % kBuckets];
  const double expected = static_cast<double>(bucket0.size()) / kBuckets;
  for (int c : counts) {
    EXPECT_GT(c, expected * 0.6);
    EXPECT_LT(c, expected * 1.4);
  }
}

TEST(HashFamily, DifferentMembersDisagree) {
  const HashFamily family(1);
  int disagreements = 0;
  const auto keys = TestKeys(1000);
  for (const auto& k : keys) {
    if (family.Hash(0, k) != family.Hash(1, k)) ++disagreements;
  }
  EXPECT_EQ(disagreements, 1000);
}

TEST(TransparentStringHash, ViewAndStringAgree) {
  TransparentStringHash h;
  const std::string s = "lookup-key";
  EXPECT_EQ(h(s), h(std::string_view(s)));
}

}  // namespace
}  // namespace opmr
