#include "storage/codec.h"

#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "metrics/counters.h"
#include "storage/compressed_run.h"
#include "storage/file_manager.h"

namespace opmr {
namespace {

std::string RoundTrip(const std::string& input) {
  return OzDecompress(OzCompress(input));
}

TEST(OzCodec, EmptyAndTinyInputs) {
  EXPECT_EQ(RoundTrip(""), "");
  EXPECT_EQ(RoundTrip("a"), "a");
  EXPECT_EQ(RoundTrip("abc"), "abc");
  EXPECT_EQ(RoundTrip("abcd"), "abcd");
}

TEST(OzCodec, HighlyCompressibleInputShrinks) {
  const std::string input(100'000, 'z');
  const std::string compressed = OzCompress(input);
  EXPECT_LT(compressed.size(), input.size() / 20);
  EXPECT_EQ(OzDecompress(compressed), input);
}

TEST(OzCodec, RepeatedRecordsCompress) {
  std::string input;
  for (int i = 0; i < 2'000; ++i) {
    input += "u000123\t/page/00042.html\t894001122\n";
  }
  const std::string compressed = OzCompress(input);
  EXPECT_LT(compressed.size(), input.size() / 4);
  EXPECT_EQ(OzDecompress(compressed), input);
}

TEST(OzCodec, IncompressibleInputRoundTripsWithBoundedExpansion) {
  Rng rng(1);
  std::string input;
  input.reserve(200'000);
  for (int i = 0; i < 200'000; ++i) {
    input.push_back(static_cast<char>(rng.Next() & 0xff));
  }
  const std::string compressed = OzCompress(input);
  EXPECT_EQ(OzDecompress(compressed), input);
  // Worst case: 1 control byte per 128 literals + 4-byte header.
  EXPECT_LT(compressed.size(), input.size() + input.size() / 100 + 64);
}

TEST(OzCodec, MixedStructuredDataFuzz) {
  Rng rng(2);
  for (int round = 0; round < 50; ++round) {
    std::string input;
    const int pieces = 1 + static_cast<int>(rng.Uniform(60));
    for (int p = 0; p < pieces; ++p) {
      switch (rng.Uniform(4)) {
        case 0:
          input.append(rng.Uniform(300), static_cast<char>(rng.Next()));
          break;
        case 1:
          input += "key-" + std::to_string(rng.Uniform(50));
          break;
        case 2:
          for (std::uint64_t i = 0; i < rng.Uniform(200); ++i) {
            input.push_back(static_cast<char>(rng.Next() & 0xff));
          }
          break;
        default: {
          // self-similar chunk: repeat a recent window
          const std::size_t n = std::min<std::size_t>(input.size(), 97);
          input.append(input.substr(input.size() - n));
          break;
        }
      }
    }
    EXPECT_EQ(RoundTrip(input), input) << "round " << round;
  }
}

TEST(OzCodec, OverlappingMatchRle) {
  // "ababab..." exercises distance < length copies.
  std::string input;
  for (int i = 0; i < 5'000; ++i) input += (i % 2 ? "b" : "a");
  EXPECT_EQ(RoundTrip(input), input);
}

TEST(OzCodec, DecompressRejectsCorruption) {
  EXPECT_THROW(OzDecompress(Slice("")), std::runtime_error);
  EXPECT_THROW(OzDecompress(Slice("ab")), std::runtime_error);

  // Valid stream, then flip the raw-size header.
  std::string good = OzCompress(std::string(1000, 'x'));
  std::string bad_size = good;
  bad_size[0] = static_cast<char>(bad_size[0] + 1);
  EXPECT_THROW(OzDecompress(bad_size), std::runtime_error);

  // Truncate mid-stream.
  EXPECT_THROW(OzDecompress(Slice(good.data(), good.size() - 1)),
               std::runtime_error);
}

TEST(OzCodec, MatchDistanceValidation) {
  // Hand-build a stream whose match points before the start of output.
  std::string evil;
  AppendU32(evil, 4);
  evil.push_back(static_cast<char>(0x80));  // match len 4
  evil.push_back(5);                        // distance 5 into nothing
  evil.push_back(0);
  EXPECT_THROW(OzDecompress(evil), std::runtime_error);
}

// --- Compressed run files -------------------------------------------------------

class CompressedRunTest : public ::testing::Test {
 protected:
  CompressedRunTest() : files_(FileManager::CreateTemp("opmr-comp")) {}
  FileManager files_;
  MetricRegistry metrics_;
};

TEST_F(CompressedRunTest, RoundTripsRecordsAcrossBlocks) {
  const auto path = files_.NewFile("crun");
  IoChannel channel(&metrics_, "c.bytes");
  {
    CompressedRunWriter writer(path, channel);
    for (int i = 0; i < 20'000; ++i) {  // well beyond one 64 KiB block
      writer.Append("user-" + std::to_string(i % 500),
                    "payload-" + std::to_string(i));
    }
    EXPECT_EQ(writer.num_records(), 20'000u);
    writer.Close();
  }
  CompressedRunReader reader(path, channel);
  int n = 0;
  while (reader.Next()) {
    ASSERT_EQ(reader.key().ToString(), "user-" + std::to_string(n % 500));
    ASSERT_EQ(reader.value().ToString(), "payload-" + std::to_string(n));
    ++n;
  }
  EXPECT_EQ(n, 20'000);
}

TEST_F(CompressedRunTest, CompressedFileIsSmallerForRedundantData) {
  IoChannel plain_ch(&metrics_, "plain.bytes");
  IoChannel comp_ch(&metrics_, "comp.bytes");
  {
    RunWriter plain(files_.NewFile("plain"), plain_ch);
    CompressedRunWriter comp(files_.NewFile("comp"), comp_ch);
    for (int i = 0; i < 50'000; ++i) {
      const std::string key = "u" + std::to_string(i % 100);
      plain.Append(key, "1");
      comp.Append(key, "1");
    }
    plain.Close();
    comp.Close();
  }
  EXPECT_LT(metrics_.Value("comp.bytes"), metrics_.Value("plain.bytes") / 3)
      << "counting spills must compress well";
}

TEST_F(CompressedRunTest, EmptyRunIsValid) {
  const auto path = files_.NewFile("empty");
  IoChannel channel(&metrics_, "c.bytes");
  {
    CompressedRunWriter writer(path, channel);
    writer.Close();
  }
  CompressedRunReader reader(path, channel);
  EXPECT_FALSE(reader.Next());
}

TEST_F(CompressedRunTest, LargeValuesSpanBlocksCorrectly) {
  const auto path = files_.NewFile("big");
  IoChannel channel(&metrics_, "c.bytes");
  const std::string big(300u << 10, 'Q');  // single record > block size
  {
    CompressedRunWriter writer(path, channel);
    writer.Append("small", "v");
    writer.Append("big", big);
    writer.Append("tail", "w");
    writer.Close();
  }
  CompressedRunReader reader(path, channel);
  ASSERT_TRUE(reader.Next());
  EXPECT_EQ(reader.key().ToString(), "small");
  ASSERT_TRUE(reader.Next());
  EXPECT_EQ(reader.value().size(), big.size());
  ASSERT_TRUE(reader.Next());
  EXPECT_EQ(reader.key().ToString(), "tail");
  EXPECT_FALSE(reader.Next());
}

}  // namespace
}  // namespace opmr
