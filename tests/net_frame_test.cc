// Frame codec tests, fuzz-style: every message type round-trips through
// the encoder and an incremental decoder; truncated, bit-flipped, and
// oversized inputs must surface as structured DecodeStatus / WireError
// values — never a crash, never a silently accepted corrupt frame.
#include "net/frame.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "net/wire.h"

namespace opmr::net {
namespace {

Frame DecodeOne(const std::string& bytes) {
  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size());
  Frame frame;
  EXPECT_EQ(decoder.Next(&frame), DecodeStatus::kOk);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
  return frame;
}

TEST(NetFrame, EveryMessageTypeRoundTrips) {
  HelloMsg hello;
  hello.job = "unit job";
  hello.num_map_tasks = 7;
  hello.num_reducers = 3;
  const auto hello2 = HelloMsg::Parse(DecodeOne(EncodeFrame(hello.ToFrame())));
  EXPECT_EQ(hello2.version, kProtocolVersion);
  EXPECT_EQ(hello2.job, "unit job");
  EXPECT_EQ(hello2.num_map_tasks, 7);
  EXPECT_EQ(hello2.num_reducers, 3);

  ChunkMsg chunk;
  chunk.map_task = 4;
  chunk.reducer = 1;
  chunk.sorted = true;
  chunk.records = 99;
  chunk.bytes = std::string("\x00\x01payload\xFF", 10);
  const auto chunk2 = ChunkMsg::Parse(DecodeOne(EncodeFrame(chunk.ToFrame())));
  EXPECT_EQ(chunk2.map_task, 4);
  EXPECT_EQ(chunk2.reducer, 1);
  EXPECT_TRUE(chunk2.sorted);
  EXPECT_EQ(chunk2.records, 99u);
  EXPECT_EQ(chunk2.bytes, chunk.bytes);

  SegmentRefMsg ref;
  ref.map_task = 2;
  ref.reducer = 0;
  ref.records = 12;
  ref.offset = 1024;
  ref.length = 512;
  ref.path = "/tmp/opmr/map_out_2";
  const auto ref2 =
      SegmentRefMsg::Parse(DecodeOne(EncodeFrame(ref.ToFrame())));
  EXPECT_EQ(ref2.offset, 1024u);
  EXPECT_EQ(ref2.length, 512u);
  EXPECT_EQ(ref2.path, ref.path);

  SegmentDataMsg data;
  data.map_task = 1;
  data.reducer = 2;
  data.sorted = true;
  data.records = 5;
  data.bytes = std::string(4096, '\x7f');
  const auto data2 =
      SegmentDataMsg::Parse(DecodeOne(EncodeFrame(data.ToFrame())));
  EXPECT_EQ(data2.bytes, data.bytes);
  EXPECT_EQ(data2.records, 5u);

  MapDoneMsg done;
  done.map_task = 6;
  done.input_records = 1000;
  done.output_records = 900;
  const auto done2 =
      MapDoneMsg::Parse(DecodeOne(EncodeFrame(done.ToFrame())));
  EXPECT_EQ(done2.map_task, 6);
  EXPECT_EQ(done2.input_records, 1000u);
  EXPECT_EQ(done2.output_records, 900u);

  CreditMsg credit;
  credit.reducer = 2;
  credit.credits = 3;
  const auto credit2 =
      CreditMsg::Parse(DecodeOne(EncodeFrame(credit.ToFrame())));
  EXPECT_EQ(credit2.reducer, 2);
  EXPECT_EQ(credit2.credits, 3u);

  GoneMsg gone;
  gone.reducer = 1;
  EXPECT_EQ(GoneMsg::Parse(DecodeOne(EncodeFrame(gone.ToFrame()))).reducer, 1);

  AbortMsg abort_msg;
  abort_msg.reason = "reduce task 1 failed";
  EXPECT_EQ(AbortMsg::Parse(DecodeOne(EncodeFrame(abort_msg.ToFrame()))).reason,
            abort_msg.reason);

  ByeMsg bye;
  bye.frames_sent = 10;
  bye.bytes_sent = 123456;
  bye.retransmits = 2;
  bye.reconnects = 1;
  bye.stall_nanos = 5'000'000;
  bye.ack_replays = 1;
  bye.ack_replayed_frames = 4;
  bye.blocks_sent = 9;
  bye.blocks_compressed = 3;
  bye.sendfile_frames = 8;
  bye.sendfile_bytes = 1u << 20;
  const auto bye2 = ByeMsg::Parse(DecodeOne(EncodeFrame(bye.ToFrame())));
  EXPECT_EQ(bye2.frames_sent, 10u);
  EXPECT_EQ(bye2.bytes_sent, 123456u);
  EXPECT_EQ(bye2.retransmits, 2u);
  EXPECT_EQ(bye2.reconnects, 1u);
  EXPECT_EQ(bye2.stall_nanos, 5'000'000u);
  EXPECT_EQ(bye2.ack_replays, 1u);
  EXPECT_EQ(bye2.ack_replayed_frames, 4u);
  EXPECT_EQ(bye2.blocks_sent, 9u);
  EXPECT_EQ(bye2.blocks_compressed, 3u);
  EXPECT_EQ(bye2.sendfile_frames, 8u);
  EXPECT_EQ(bye2.sendfile_bytes, 1u << 20);
}

TEST(NetFrame, CoordinationMessagesRoundTrip) {
  HelloMsg hello;
  hello.job = "cluster job";
  hello.worker = "reduce-0";
  hello.auth = "s3cret";
  const auto hello2 = HelloMsg::Parse(DecodeOne(EncodeFrame(hello.ToFrame())));
  EXPECT_EQ(hello2.worker, "reduce-0");
  EXPECT_EQ(hello2.auth, "s3cret");

  AckMsg ack;
  ack.upto = 0xDEADBEEFCAFEull;
  EXPECT_EQ(AckMsg::Parse(DecodeOne(EncodeFrame(ack.ToFrame()))).upto,
            0xDEADBEEFCAFEull);

  RegisterMsg reg;
  reg.worker = "map-1";
  reg.endpoint = "10.0.0.7:9131";
  reg.role = WireRole::kReduce;
  reg.auth = std::string("shared secret\0with nul", 22);
  const auto reg2 = RegisterMsg::Parse(DecodeOne(EncodeFrame(reg.ToFrame())));
  EXPECT_EQ(reg2.worker, reg.worker);
  EXPECT_EQ(reg2.endpoint, reg.endpoint);
  EXPECT_EQ(reg2.role, WireRole::kReduce);
  EXPECT_EQ(reg2.auth, reg.auth);

  HeartbeatMsg hb;
  hb.worker = "map-1";
  hb.generation = 3;
  hb.seq = 99;
  hb.load = {2, 1, 7};  // v6 trailing load vector (kLoad* layout)
  const auto hb2 = HeartbeatMsg::Parse(DecodeOne(EncodeFrame(hb.ToFrame())));
  EXPECT_EQ(hb2.worker, "map-1");
  EXPECT_EQ(hb2.generation, 3u);
  EXPECT_EQ(hb2.seq, 99u);
  EXPECT_EQ(hb2.load, (std::vector<std::uint32_t>{2, 1, 7}));

  // A loadless heartbeat round-trips as an empty vector (LoadAt reads 0s).
  HeartbeatMsg bare_hb;
  bare_hb.worker = "map-2";
  EXPECT_TRUE(
      HeartbeatMsg::Parse(DecodeOne(EncodeFrame(bare_hb.ToFrame()))).load
          .empty());

  // The encode side enforces the same cap the parser does: a load vector
  // past kMaxLoadEntries never reaches the wire.
  HeartbeatMsg oversized;
  oversized.worker = "map-3";
  oversized.load.assign(kMaxLoadEntries + 1, 1);
  EXPECT_THROW((void)oversized.ToFrame(), WireError);

  MembershipMsg view;
  view.epoch = 12;
  view.leader_epoch = 5;
  view.leader = 2;
  view.entries.push_back({"map-0", "-", WireRole::kMap, 1, true});
  view.entries.push_back({"map-1", "-", WireRole::kMap, 4, false});
  view.entries.push_back({"reduce-0", "127.0.0.1:40001", WireRole::kReduce,
                          2, true});
  const auto view2 =
      MembershipMsg::Parse(DecodeOne(EncodeFrame(view.ToFrame())));
  EXPECT_EQ(view2.epoch, 12u);
  EXPECT_EQ(view2.leader_epoch, 5u);
  EXPECT_EQ(view2.leader, 2u);
  ASSERT_EQ(view2.entries.size(), 3u);
  EXPECT_EQ(view2.entries[1].worker, "map-1");
  EXPECT_EQ(view2.entries[1].generation, 4u);
  EXPECT_FALSE(view2.entries[1].alive);
  EXPECT_EQ(view2.entries[2].endpoint, "127.0.0.1:40001");
  EXPECT_EQ(view2.entries[2].role, WireRole::kReduce);

  // Unreplicated default: the trailing leadership fields decode as zero.
  const auto bare = MembershipMsg::Parse(
      DecodeOne(EncodeFrame(MembershipMsg{}.ToFrame())));
  EXPECT_EQ(bare.leader_epoch, 0u);
  EXPECT_EQ(bare.leader, 0u);
}

TEST(NetFrame, CoordinationFrameEveryTruncationIsNeedMore) {
  std::vector<std::string> wires;
  MembershipMsg view;
  view.epoch = 7;
  view.entries.push_back({"map-0", "host-a:1", WireRole::kMap, 1, true});
  view.entries.push_back({"reduce-0", "host-b:2", WireRole::kReduce, 2, true});
  wires.push_back(EncodeFrame(view.ToFrame()));
  HeartbeatMsg hb;
  hb.worker = "map-0";
  hb.generation = 2;
  hb.seq = 17;
  hb.load = {1, 0, 3};  // the v6 extension gets the same truncation sweep
  wires.push_back(EncodeFrame(hb.ToFrame()));
  for (const std::string& wire : wires) {
    for (std::size_t cut = 0; cut < wire.size(); ++cut) {
      FrameDecoder decoder;
      decoder.Feed(wire.data(), cut);
      Frame frame;
      EXPECT_EQ(decoder.Next(&frame), DecodeStatus::kNeedMore)
          << "truncated to " << cut << " bytes";
      EXPECT_FALSE(decoder.poisoned());
    }
  }
}

TEST(NetFrame, CoordinationFrameEverySingleBitFlipIsDetected) {
  // Same integrity property as the data-plane frames, over each of the new
  // coordination frame types: no single-bit flip may decode as kOk.
  std::vector<std::string> wires;
  RegisterMsg reg;
  reg.worker = "map-0";
  reg.endpoint = "10.1.2.3:4567";
  reg.auth = "secret";
  wires.push_back(EncodeFrame(reg.ToFrame()));
  HeartbeatMsg hb;
  hb.worker = "map-0";
  hb.generation = 2;
  hb.seq = 17;
  hb.load = {3, 0, 5};
  wires.push_back(EncodeFrame(hb.ToFrame()));
  MembershipMsg view;
  view.epoch = 3;
  view.entries.push_back({"map-0", "10.1.2.3:4567", WireRole::kMap, 2, true});
  wires.push_back(EncodeFrame(view.ToFrame()));
  AckMsg ack;
  ack.upto = 41;
  wires.push_back(EncodeFrame(ack.ToFrame()));

  for (const std::string& wire : wires) {
    for (std::size_t byte = 0; byte < wire.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        std::string corrupt = wire;
        corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
        FrameDecoder decoder;
        decoder.Feed(corrupt.data(), corrupt.size());
        Frame frame;
        EXPECT_NE(decoder.Next(&frame), DecodeStatus::kOk)
            << "flip of bit " << bit << " in byte " << byte
            << " decoded as a valid frame";
      }
    }
  }
}

TEST(NetFrame, CoordinationPayloadSemanticCorruptionIsWireError) {
  // CRC-clean but semantically damaged payloads: truncated body, trailing
  // junk, and a Membership entry count pointing past the payload (the
  // classic length-field lie — must error, not preallocate or overread).
  RegisterMsg reg;
  reg.worker = "map-0";
  reg.endpoint = "h:1";
  Frame frame = reg.ToFrame();
  frame.payload.resize(frame.payload.size() / 2);
  EXPECT_THROW((void)RegisterMsg::Parse(DecodeOne(EncodeFrame(frame))),
               WireError);

  MembershipMsg view;
  view.entries.push_back({"w", "e:1", WireRole::kMap, 1, true});
  Frame padded = view.ToFrame();
  padded.payload += "junk";
  EXPECT_THROW((void)MembershipMsg::Parse(DecodeOne(EncodeFrame(padded))),
               WireError);

  Frame lying = MembershipMsg{}.ToFrame();
  // epoch(u64) then count(u32): claim 2^31 entries with an empty body.
  ASSERT_GE(lying.payload.size(), 12u);
  lying.payload[8] = '\x00';
  lying.payload[9] = '\x00';
  lying.payload[10] = '\x00';
  lying.payload[11] = '\x40';
  EXPECT_THROW((void)MembershipMsg::Parse(DecodeOne(EncodeFrame(lying))),
               WireError);

  // v6 heartbeat load-vector lies.  Payload layout: worker len(u32) +
  // "map-0"(5) + generation(u64) + seq(u64) puts the load count at byte 25.
  HeartbeatMsg hb;
  hb.worker = "map-0";
  Frame hb_lying = hb.ToFrame();
  ASSERT_GE(hb_lying.payload.size(), 29u);
  // Claim kMaxLoadEntries + 1 entries with an empty body: over-cap is
  // rejected before any allocation or read.
  hb_lying.payload[25] = static_cast<char>(kMaxLoadEntries + 1);
  EXPECT_THROW((void)HeartbeatMsg::Parse(DecodeOne(EncodeFrame(hb_lying))),
               WireError);
  // Claim 2^30 entries: same rejection, no preallocation from the lie.
  hb_lying.payload[25] = '\x00';
  hb_lying.payload[28] = '\x40';
  EXPECT_THROW((void)HeartbeatMsg::Parse(DecodeOne(EncodeFrame(hb_lying))),
               WireError);
  // An in-cap count pointing past the payload must be a clean WireError.
  hb_lying.payload[25] = '\x02';
  hb_lying.payload[28] = '\x00';
  EXPECT_THROW((void)HeartbeatMsg::Parse(DecodeOne(EncodeFrame(hb_lying))),
               WireError);
  // Trailing junk after a well-formed load vector is rejected too.
  HeartbeatMsg hb_loaded;
  hb_loaded.worker = "map-0";
  hb_loaded.load = {1, 2};
  Frame hb_padded = hb_loaded.ToFrame();
  hb_padded.payload += "junk";
  EXPECT_THROW((void)HeartbeatMsg::Parse(DecodeOne(EncodeFrame(hb_padded))),
               WireError);
}

// --- Replication frames (v4: kLogAppend/kLogAck/kSnapshotOffer/kVote/
// kLeaderClaim) get the same four-way fuzz treatment as every other
// protocol family: round-trip, every truncation, every bit flip, and
// CRC-clean semantic lies.

std::vector<std::string> ReplicationWires() {
  std::vector<std::string> wires;
  LogAppendMsg append;
  append.epoch = 3;
  append.index = 41;
  append.record_type = 2;
  append.record = std::string("\x01payload\x00z", 11);
  append.auth = "s3cret";
  wires.push_back(EncodeFrame(append.ToFrame()));
  LogAckMsg ack;
  ack.replica = 2;
  ack.epoch = 3;
  ack.index = 41;
  ack.auth = "s3cret";
  wires.push_back(EncodeFrame(ack.ToFrame()));
  SnapshotOfferMsg offer;
  offer.epoch = 3;
  offer.index = 40;
  offer.crc = 0xDEADBEEF;
  offer.bytes = std::string(512, '\x5a');
  offer.auth = "s3cret";
  wires.push_back(EncodeFrame(offer.ToFrame()));
  VoteMsg vote;
  vote.replica = 1;
  vote.epoch = 3;
  vote.index = 41;
  vote.auth = "s3cret";
  wires.push_back(EncodeFrame(vote.ToFrame()));
  LeaderClaimMsg claim;
  claim.replica = 2;
  claim.epoch = 4;
  claim.endpoint = "127.0.0.1:7102";
  claim.auth = "s3cret";
  wires.push_back(EncodeFrame(claim.ToFrame()));
  return wires;
}

TEST(NetFrame, ReplicationMessagesRoundTrip) {
  LogAppendMsg append;
  append.epoch = 7;
  append.index = 123;
  append.record_type = 1;
  append.record = std::string("record\x00 bytes", 13);
  append.auth = std::string("peer secret\0nul", 15);  // binary-safe
  const auto append2 =
      LogAppendMsg::Parse(DecodeOne(EncodeFrame(append.ToFrame())));
  EXPECT_EQ(append2.epoch, 7u);
  EXPECT_EQ(append2.index, 123u);
  EXPECT_EQ(append2.record_type, 1);
  EXPECT_EQ(append2.record, append.record);
  EXPECT_EQ(append2.auth, append.auth);

  LogAckMsg ack;
  ack.replica = 3;
  ack.epoch = 7;
  ack.index = 123;
  ack.auth = "peer secret";
  const auto ack2 = LogAckMsg::Parse(DecodeOne(EncodeFrame(ack.ToFrame())));
  EXPECT_EQ(ack2.replica, 3u);
  EXPECT_EQ(ack2.epoch, 7u);
  EXPECT_EQ(ack2.index, 123u);
  EXPECT_EQ(ack2.auth, "peer secret");

  SnapshotOfferMsg offer;
  offer.epoch = 7;
  offer.index = 120;
  offer.crc = 0xCAFEF00D;
  offer.bytes = std::string(2048, '\x33');
  offer.auth = "peer secret";
  const auto offer2 =
      SnapshotOfferMsg::Parse(DecodeOne(EncodeFrame(offer.ToFrame())));
  EXPECT_EQ(offer2.epoch, 7u);
  EXPECT_EQ(offer2.index, 120u);
  EXPECT_EQ(offer2.crc, 0xCAFEF00Du);
  EXPECT_EQ(offer2.bytes, offer.bytes);
  EXPECT_EQ(offer2.auth, "peer secret");

  VoteMsg vote;
  vote.replica = 2;
  vote.epoch = 7;
  vote.index = 99;
  vote.auth = "peer secret";
  const auto vote2 = VoteMsg::Parse(DecodeOne(EncodeFrame(vote.ToFrame())));
  EXPECT_EQ(vote2.replica, 2u);
  EXPECT_EQ(vote2.epoch, 7u);
  EXPECT_EQ(vote2.index, 99u);
  EXPECT_EQ(vote2.auth, "peer secret");

  LeaderClaimMsg claim;
  claim.replica = 2;
  claim.epoch = 8;
  claim.endpoint = "10.0.0.2:7102";
  claim.auth = "peer secret";
  const auto claim2 =
      LeaderClaimMsg::Parse(DecodeOne(EncodeFrame(claim.ToFrame())));
  EXPECT_EQ(claim2.replica, 2u);
  EXPECT_EQ(claim2.epoch, 8u);
  EXPECT_EQ(claim2.endpoint, "10.0.0.2:7102");
  EXPECT_EQ(claim2.auth, "peer secret");

  // Auth-less (auth off) frames round-trip with an empty field — the
  // encoding always carries it.
  const auto bare = VoteMsg::Parse(DecodeOne(EncodeFrame(VoteMsg{}.ToFrame())));
  EXPECT_TRUE(bare.auth.empty());
}

TEST(NetFrame, ReplicationFrameEveryTruncationIsNeedMore) {
  for (const std::string& wire : ReplicationWires()) {
    for (std::size_t cut = 0; cut < wire.size(); ++cut) {
      FrameDecoder decoder;
      decoder.Feed(wire.data(), cut);
      Frame frame;
      EXPECT_EQ(decoder.Next(&frame), DecodeStatus::kNeedMore)
          << "truncated to " << cut << " bytes";
      EXPECT_FALSE(decoder.poisoned());
    }
  }
}

TEST(NetFrame, ReplicationFrameEverySingleBitFlipIsDetected) {
  for (const std::string& wire : ReplicationWires()) {
    for (std::size_t byte = 0; byte < wire.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        std::string corrupt = wire;
        corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
        FrameDecoder decoder;
        decoder.Feed(corrupt.data(), corrupt.size());
        Frame frame;
        EXPECT_NE(decoder.Next(&frame), DecodeStatus::kOk)
            << "flip of bit " << bit << " in byte " << byte
            << " decoded as a valid frame";
      }
    }
  }
}

TEST(NetFrame, ReplicationPayloadSemanticCorruptionIsWireError) {
  // Truncated body after a CRC-clean re-encode.
  LogAppendMsg append;
  append.epoch = 1;
  append.index = 2;
  append.record = "0123456789";
  Frame frame = append.ToFrame();
  frame.payload.resize(frame.payload.size() / 2);
  EXPECT_THROW((void)LogAppendMsg::Parse(DecodeOne(EncodeFrame(frame))),
               WireError);

  // Trailing junk past a well-formed message.
  VoteMsg vote;
  vote.replica = 1;
  Frame padded = vote.ToFrame();
  padded.payload += "junk";
  EXPECT_THROW((void)VoteMsg::Parse(DecodeOne(EncodeFrame(padded))),
               WireError);

  // The length-field lie: a record length pointing far past the payload.
  // LogAppend layout: epoch(u64) index(u64) type(u8) then len(u32) at 17.
  Frame lying = append.ToFrame();
  ASSERT_GE(lying.payload.size(), 21u);
  lying.payload[17] = '\x00';
  lying.payload[18] = '\x00';
  lying.payload[19] = '\x00';
  lying.payload[20] = '\x40';
  EXPECT_THROW((void)LogAppendMsg::Parse(DecodeOne(EncodeFrame(lying))),
               WireError);

  // Same lie on a snapshot offer's image bytes:
  // epoch(u64) index(u64) crc(u32) then len(u32) at 20.
  SnapshotOfferMsg offer;
  offer.bytes = "image";
  Frame lying_offer = offer.ToFrame();
  ASSERT_GE(lying_offer.payload.size(), 24u);
  lying_offer.payload[20] = '\x00';
  lying_offer.payload[21] = '\x00';
  lying_offer.payload[22] = '\x00';
  lying_offer.payload[23] = '\x40';
  EXPECT_THROW(
      (void)SnapshotOfferMsg::Parse(DecodeOne(EncodeFrame(lying_offer))),
      WireError);
}

TEST(NetFrame, ServingMessagesRoundTrip) {
  SnapshotAnnounceMsg announce;
  announce.job = "live job";
  announce.version = 12;
  announce.watermark = 345'678;
  announce.bytes = 9'000;
  announce.crc = 0xCAFEF00D;
  const auto announce2 =
      SnapshotAnnounceMsg::Parse(DecodeOne(EncodeFrame(announce.ToFrame())));
  EXPECT_EQ(announce2.job, "live job");
  EXPECT_EQ(announce2.version, 12u);
  EXPECT_EQ(announce2.watermark, 345'678u);
  EXPECT_EQ(announce2.bytes, 9'000u);
  EXPECT_EQ(announce2.crc, 0xCAFEF00Du);

  SnapshotFetchMsg fetch;
  fetch.job = "live job";
  fetch.version = 12;
  fetch.reply = true;
  fetch.crc = 7;
  fetch.bytes = std::string("image\0bytes", 11);  // binary-safe
  const auto fetch2 =
      SnapshotFetchMsg::Parse(DecodeOne(EncodeFrame(fetch.ToFrame())));
  EXPECT_EQ(fetch2.job, "live job");
  EXPECT_EQ(fetch2.version, 12u);
  EXPECT_TRUE(fetch2.reply);
  EXPECT_EQ(fetch2.bytes, fetch.bytes);

  QueryMsg query;
  query.id = 31337;
  query.tenant = "tenant-a";
  query.op = QueryOp::kScan;
  query.key = "begin";
  query.end_key = "end";
  query.limit = 42;
  query.staleness_budget = 500;
  const auto query2 = QueryMsg::Parse(DecodeOne(EncodeFrame(query.ToFrame())));
  EXPECT_EQ(query2.id, 31337u);
  EXPECT_EQ(query2.tenant, "tenant-a");
  EXPECT_EQ(query2.op, QueryOp::kScan);
  EXPECT_EQ(query2.key, "begin");
  EXPECT_EQ(query2.end_key, "end");
  EXPECT_EQ(query2.limit, 42u);
  EXPECT_EQ(query2.staleness_budget, 500u);

  QueryResultMsg result;
  result.id = 31337;
  result.status = QueryStatus::kStale;
  result.version = 12;
  result.watermark = 340'000;
  result.lag = 5'678;
  result.rows.emplace_back("k1", std::string("\x01\0\0\0\0\0\0\0", 8));
  result.rows.emplace_back("k2", "text value");
  result.error = "replica lag 5678 exceeds staleness budget 500";
  const auto result2 =
      QueryResultMsg::Parse(DecodeOne(EncodeFrame(result.ToFrame())));
  EXPECT_EQ(result2.id, 31337u);
  EXPECT_EQ(result2.status, QueryStatus::kStale);
  EXPECT_EQ(result2.version, 12u);
  EXPECT_EQ(result2.watermark, 340'000u);
  EXPECT_EQ(result2.lag, 5'678u);
  EXPECT_EQ(result2.rows, result.rows);
  EXPECT_EQ(result2.error, result.error);
}

TEST(NetFrame, ServingFrameEveryTruncationIsNeedMore) {
  QueryResultMsg result;
  result.id = 1;
  result.rows.emplace_back("key", "value");
  result.error = "e";
  const std::string wire = EncodeFrame(result.ToFrame());
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    FrameDecoder decoder;
    decoder.Feed(wire.data(), cut);
    Frame frame;
    EXPECT_EQ(decoder.Next(&frame), DecodeStatus::kNeedMore)
        << "truncated to " << cut << " bytes";
    EXPECT_FALSE(decoder.poisoned());
  }
}

TEST(NetFrame, ServingFrameEverySingleBitFlipIsDetected) {
  std::vector<std::string> wires;
  SnapshotAnnounceMsg announce;
  announce.job = "j";
  announce.version = 3;
  announce.crc = 0xAB;
  wires.push_back(EncodeFrame(announce.ToFrame()));
  SnapshotFetchMsg fetch;
  fetch.job = "j";
  fetch.version = 3;
  fetch.reply = true;
  fetch.bytes = "img";
  wires.push_back(EncodeFrame(fetch.ToFrame()));
  QueryMsg query;
  query.id = 9;
  query.op = QueryOp::kPoint;
  query.key = "k";
  wires.push_back(EncodeFrame(query.ToFrame()));
  QueryResultMsg result;
  result.id = 9;
  result.rows.emplace_back("k", "v");
  wires.push_back(EncodeFrame(result.ToFrame()));

  for (const std::string& wire : wires) {
    for (std::size_t byte = 0; byte < wire.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        std::string corrupt = wire;
        corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
        FrameDecoder decoder;
        decoder.Feed(corrupt.data(), corrupt.size());
        Frame frame;
        EXPECT_NE(decoder.Next(&frame), DecodeStatus::kOk)
            << "flip of bit " << bit << " in byte " << byte
            << " decoded as a valid frame";
      }
    }
  }
}

TEST(NetFrame, ServingPayloadSemanticCorruptionIsWireError) {
  // CRC-clean but semantically damaged serving payloads: truncated body,
  // trailing junk, out-of-range enum bytes, and a row count pointing past
  // the payload.
  QueryMsg query;
  query.op = QueryOp::kTopK;
  query.limit = 5;
  Frame truncated = query.ToFrame();
  truncated.payload.resize(truncated.payload.size() / 2);
  EXPECT_THROW((void)QueryMsg::Parse(DecodeOne(EncodeFrame(truncated))),
               WireError);

  SnapshotAnnounceMsg announce;
  announce.job = "j";
  Frame padded = announce.ToFrame();
  padded.payload += "junk";
  EXPECT_THROW(
      (void)SnapshotAnnounceMsg::Parse(DecodeOne(EncodeFrame(padded))),
      WireError);

  // op byte past the enum range must be rejected, not cast through.
  Frame bad_op = QueryMsg{}.ToFrame();
  bool mutated = false;
  for (std::size_t i = 0; i < bad_op.payload.size(); ++i) {
    // id(u64) + tenant len(u32) + op(u8): the op byte sits at offset 12
    // when the tenant is empty.
    if (i == 12) {
      bad_op.payload[i] = '\x7F';
      mutated = true;
    }
  }
  ASSERT_TRUE(mutated);
  EXPECT_THROW((void)QueryMsg::Parse(DecodeOne(EncodeFrame(bad_op))),
               WireError);

  QueryResultMsg result;
  result.id = 1;
  Frame lying = result.ToFrame();
  // id(u64) + status(u8) + version(u64) + watermark(u64) + lag(u64) then
  // row count(u32): claim 2^30 rows with an empty body.
  ASSERT_GE(lying.payload.size(), 37u);
  lying.payload[33] = '\x00';
  lying.payload[34] = '\x00';
  lying.payload[35] = '\x00';
  lying.payload[36] = '\x40';
  EXPECT_THROW((void)QueryResultMsg::Parse(DecodeOne(EncodeFrame(lying))),
               WireError);
}

// --- Coded-shuffle frames (v5: kCodedChunk/kCodedAck) get the same
// four-way fuzz treatment: round-trip, every truncation, every bit flip,
// and CRC-clean semantic lies (lying part counts, part lengths past the
// payload, receiver lists out of order).

std::vector<std::string> CodedWires() {
  std::vector<std::string> wires;
  CodedChunkMsg chunk;
  chunk.group = 3;
  chunk.sender = 1;
  chunk.seq = 42;
  chunk.parts.push_back({0, 5});
  chunk.parts.push_back({2, 3});
  chunk.bytes = std::string("\x01\x00\x03\xFF\x05", 5);
  wires.push_back(EncodeFrame(chunk.ToFrame()));
  CodedAckMsg ack;
  ack.upto = 41;
  ack.decoded = 17;
  wires.push_back(EncodeFrame(ack.ToFrame()));
  return wires;
}

TEST(NetFrame, CodedMessagesRoundTrip) {
  CodedChunkMsg chunk;
  chunk.group = 9;
  chunk.sender = 4;
  chunk.seq = 0xFEEDFACEull;
  chunk.parts.push_back({1, 7});
  chunk.parts.push_back({3, 6});
  chunk.parts.push_back({8, 7});
  chunk.bytes = std::string("xor-pad\0"
                            "extra",
                            7);  // length == longest part
  const auto chunk2 =
      CodedChunkMsg::Parse(DecodeOne(EncodeFrame(chunk.ToFrame())));
  EXPECT_EQ(chunk2.group, 9u);
  EXPECT_EQ(chunk2.sender, 4u);
  EXPECT_EQ(chunk2.seq, 0xFEEDFACEull);
  ASSERT_EQ(chunk2.parts.size(), 3u);
  EXPECT_EQ(chunk2.parts[1].node, 3u);
  EXPECT_EQ(chunk2.parts[1].part_len, 6u);
  EXPECT_EQ(chunk2.bytes, chunk.bytes);

  // A group whose receivers are all owed nothing still ships its frames —
  // the decoder needs every member frame to know the group completed.
  CodedChunkMsg empty;
  empty.group = 0;
  empty.sender = 2;
  empty.seq = 1;
  empty.parts.push_back({0, 0});
  empty.parts.push_back({1, 0});
  const auto empty2 =
      CodedChunkMsg::Parse(DecodeOne(EncodeFrame(empty.ToFrame())));
  EXPECT_EQ(empty2.parts.size(), 2u);
  EXPECT_TRUE(empty2.bytes.empty());

  CodedAckMsg ack;
  ack.upto = 123;
  ack.decoded = 456;
  const auto ack2 = CodedAckMsg::Parse(DecodeOne(EncodeFrame(ack.ToFrame())));
  EXPECT_EQ(ack2.upto, 123u);
  EXPECT_EQ(ack2.decoded, 456u);
}

TEST(NetFrame, CodedFrameEveryTruncationIsNeedMore) {
  for (const std::string& wire : CodedWires()) {
    for (std::size_t cut = 0; cut < wire.size(); ++cut) {
      FrameDecoder decoder;
      decoder.Feed(wire.data(), cut);
      Frame frame;
      EXPECT_EQ(decoder.Next(&frame), DecodeStatus::kNeedMore)
          << "truncated to " << cut << " bytes";
      EXPECT_FALSE(decoder.poisoned());
    }
  }
}

TEST(NetFrame, CodedFrameEverySingleBitFlipIsDetected) {
  for (const std::string& wire : CodedWires()) {
    for (std::size_t byte = 0; byte < wire.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        std::string corrupt = wire;
        corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
        FrameDecoder decoder;
        decoder.Feed(corrupt.data(), corrupt.size());
        Frame frame;
        EXPECT_NE(decoder.Next(&frame), DecodeStatus::kOk)
            << "flip of bit " << bit << " in byte " << byte
            << " decoded as a valid frame";
      }
    }
  }
}

TEST(NetFrame, CodedPayloadSemanticCorruptionIsWireError) {
  // An empty part list is structurally meaningless.
  CodedChunkMsg no_parts;
  no_parts.group = 1;
  EXPECT_THROW(
      (void)CodedChunkMsg::Parse(DecodeOne(EncodeFrame(no_parts.ToFrame()))),
      WireError);

  // A part length pointing past the payload.
  CodedChunkMsg oversold;
  oversold.parts.push_back({0, 9});
  oversold.bytes = "short";
  EXPECT_THROW(
      (void)CodedChunkMsg::Parse(DecodeOne(EncodeFrame(oversold.ToFrame()))),
      WireError);

  // Payload longer than the longest advertised part: padding nobody owns.
  CodedChunkMsg padded_parts;
  padded_parts.parts.push_back({0, 2});
  padded_parts.parts.push_back({1, 3});
  padded_parts.bytes = "12345";
  EXPECT_THROW((void)CodedChunkMsg::Parse(
                   DecodeOne(EncodeFrame(padded_parts.ToFrame()))),
               WireError);

  // Receiver list must be strictly increasing (it mirrors the group's
  // sorted node order with the sender skipped).
  CodedChunkMsg unsorted;
  unsorted.parts.push_back({2, 1});
  unsorted.parts.push_back({2, 1});
  unsorted.bytes = "x";
  EXPECT_THROW(
      (void)CodedChunkMsg::Parse(DecodeOne(EncodeFrame(unsorted.ToFrame()))),
      WireError);

  // The length-field lie: group(u32) sender(u32) seq(u64) then
  // part count(u32) at offset 16 — claim 2^30 parts with a tiny body.
  CodedChunkMsg chunk;
  chunk.parts.push_back({0, 1});
  chunk.bytes = "z";
  Frame lying = chunk.ToFrame();
  ASSERT_GE(lying.payload.size(), 20u);
  lying.payload[16] = '\x00';
  lying.payload[17] = '\x00';
  lying.payload[18] = '\x00';
  lying.payload[19] = '\x40';
  EXPECT_THROW((void)CodedChunkMsg::Parse(DecodeOne(EncodeFrame(lying))),
               WireError);

  // Truncated body and trailing junk after a CRC-clean re-encode.
  Frame truncated = chunk.ToFrame();
  truncated.payload.resize(truncated.payload.size() / 2);
  EXPECT_THROW((void)CodedChunkMsg::Parse(DecodeOne(EncodeFrame(truncated))),
               WireError);
  CodedAckMsg ack;
  ack.upto = 1;
  Frame junk = ack.ToFrame();
  junk.payload += "junk";
  EXPECT_THROW((void)CodedAckMsg::Parse(DecodeOne(EncodeFrame(junk))),
               WireError);
}

// --- Data-plane block frames (v7: kBlock/kBlockAck) get the same
// four-way fuzz treatment: round-trip, every truncation, every bit flip,
// and CRC-clean semantic lies.  Parse-level checks only — the sub-frame
// walk and codec live in dataplane::UnpackBlock (dataplane_test.cc).

std::string BlockBody(std::uint32_t count, std::size_t payload_each) {
  // Well-formed sub-frame entries: [u8 type][u32 len][payload].
  std::string body;
  for (std::uint32_t i = 0; i < count; ++i) {
    body.push_back(static_cast<char>(FrameType::kChunk));
    const auto len = static_cast<std::uint32_t>(payload_each);
    for (int b = 0; b < 4; ++b) {
      body.push_back(static_cast<char>((len >> (8 * b)) & 0xFF));
    }
    body.append(payload_each, static_cast<char>('a' + (i % 26)));
  }
  return body;
}

std::vector<std::string> BlockWires() {
  std::vector<std::string> wires;
  BlockMsg block;
  block.block_seq = 7;
  block.codec = kBlockCodecRaw;
  block.raw_crc = 0xDEADBEEF;
  block.count = 3;
  block.body = BlockBody(3, 11);
  wires.push_back(EncodeFrame(block.ToFrame()));
  BlockAckMsg ack;
  ack.upto_block = 7;
  ack.frames = 21;
  wires.push_back(EncodeFrame(ack.ToFrame()));
  return wires;
}

TEST(NetFrame, BlockMessagesRoundTrip) {
  BlockMsg block;
  block.block_seq = 0xFEEDFACE12ull;
  block.codec = kBlockCodecOz;
  block.raw_crc = 0xCAFEF00D;
  block.count = 2;
  block.body = std::string("\x01\x00compressed opaque bytes\xFF", 26);
  const auto block2 = BlockMsg::Parse(DecodeOne(EncodeFrame(block.ToFrame())));
  EXPECT_EQ(block2.block_seq, 0xFEEDFACE12ull);
  EXPECT_EQ(block2.codec, kBlockCodecOz);
  EXPECT_EQ(block2.raw_crc, 0xCAFEF00Du);
  EXPECT_EQ(block2.count, 2u);
  EXPECT_EQ(block2.body, block.body);

  BlockAckMsg ack;
  ack.upto_block = 123;
  ack.frames = 456;
  const auto ack2 = BlockAckMsg::Parse(DecodeOne(EncodeFrame(ack.ToFrame())));
  EXPECT_EQ(ack2.upto_block, 123u);
  EXPECT_EQ(ack2.frames, 456u);
}

TEST(NetFrame, BlockFrameEveryTruncationIsNeedMore) {
  for (const std::string& wire : BlockWires()) {
    for (std::size_t cut = 0; cut < wire.size(); ++cut) {
      FrameDecoder decoder;
      decoder.Feed(wire.data(), cut);
      Frame frame;
      EXPECT_EQ(decoder.Next(&frame), DecodeStatus::kNeedMore)
          << "truncated to " << cut << " bytes";
      EXPECT_FALSE(decoder.poisoned());
    }
  }
}

TEST(NetFrame, BlockFrameEverySingleBitFlipIsDetected) {
  for (const std::string& wire : BlockWires()) {
    for (std::size_t byte = 0; byte < wire.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        std::string corrupt = wire;
        corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
        FrameDecoder decoder;
        decoder.Feed(corrupt.data(), corrupt.size());
        Frame frame;
        EXPECT_NE(decoder.Next(&frame), DecodeStatus::kOk)
            << "flip of bit " << bit << " in byte " << byte
            << " decoded as a valid frame";
      }
    }
  }
}

TEST(NetFrame, BlockPayloadSemanticCorruptionIsWireError) {
  // An unknown codec byte must be rejected, not carried through to the
  // decompressor.  Payload layout: block_seq(u64) codec(u8)@8 crc(u32)
  // count(u32)@13 body len(u32)@17.
  BlockMsg block;
  block.codec = kBlockCodecRaw;
  block.count = 2;
  block.body = BlockBody(2, 4);
  Frame bad_codec = block.ToFrame();
  ASSERT_GE(bad_codec.payload.size(), 21u);
  bad_codec.payload[8] = '\x02';
  EXPECT_THROW((void)BlockMsg::Parse(DecodeOne(EncodeFrame(bad_codec))),
               WireError);

  // A zero sub-frame count is structurally meaningless.
  Frame zero_count = block.ToFrame();
  zero_count.payload[13] = '\x00';
  zero_count.payload[14] = '\x00';
  zero_count.payload[15] = '\x00';
  zero_count.payload[16] = '\x00';
  EXPECT_THROW((void)BlockMsg::Parse(DecodeOne(EncodeFrame(zero_count))),
               WireError);

  // The count lie: claim 2^30 sub-frames over a tiny body — rejected from
  // the cap before any allocation.
  Frame lying = block.ToFrame();
  lying.payload[13] = '\x00';
  lying.payload[14] = '\x00';
  lying.payload[15] = '\x00';
  lying.payload[16] = '\x40';
  EXPECT_THROW((void)BlockMsg::Parse(DecodeOne(EncodeFrame(lying))),
               WireError);

  // An in-cap raw count whose body cannot even hold the sub-frame headers.
  BlockMsg short_body;
  short_body.codec = kBlockCodecRaw;
  short_body.count = 64;
  short_body.body = BlockBody(1, 2);
  EXPECT_THROW(
      (void)BlockMsg::Parse(DecodeOne(EncodeFrame(short_body.ToFrame()))),
      WireError);

  // Truncated body and trailing junk after a CRC-clean re-encode.
  Frame truncated = block.ToFrame();
  truncated.payload.resize(truncated.payload.size() / 2);
  EXPECT_THROW((void)BlockMsg::Parse(DecodeOne(EncodeFrame(truncated))),
               WireError);
  BlockAckMsg ack;
  ack.upto_block = 1;
  Frame junk = ack.ToFrame();
  junk.payload += "junk";
  EXPECT_THROW((void)BlockAckMsg::Parse(DecodeOne(EncodeFrame(junk))),
               WireError);
}

TEST(NetFrame, ByteAtATimeFeedReassembles) {
  ChunkMsg msg;
  msg.map_task = 0;
  msg.reducer = 0;
  msg.bytes = "drip-fed payload";
  const std::string wire = EncodeFrame(msg.ToFrame());

  FrameDecoder decoder;
  Frame frame;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    decoder.Feed(&wire[i], 1);
    ASSERT_EQ(decoder.Next(&frame), DecodeStatus::kNeedMore)
        << "complete frame after only " << (i + 1) << " of " << wire.size()
        << " bytes";
  }
  decoder.Feed(&wire[wire.size() - 1], 1);
  ASSERT_EQ(decoder.Next(&frame), DecodeStatus::kOk);
  EXPECT_EQ(ChunkMsg::Parse(frame).bytes, "drip-fed payload");
  EXPECT_FALSE(decoder.poisoned());
}

TEST(NetFrame, MultipleFramesDrainInOrder) {
  std::string wire;
  for (int i = 0; i < 5; ++i) {
    MapDoneMsg msg;
    msg.map_task = i;
    AppendFrame(&wire, msg.ToFrame());
  }
  FrameDecoder decoder;
  decoder.Feed(wire.data(), wire.size());
  for (int i = 0; i < 5; ++i) {
    Frame frame;
    ASSERT_EQ(decoder.Next(&frame), DecodeStatus::kOk);
    EXPECT_EQ(MapDoneMsg::Parse(frame).map_task, i);
  }
  Frame frame;
  EXPECT_EQ(decoder.Next(&frame), DecodeStatus::kNeedMore);
}

TEST(NetFrame, EveryTruncationIsNeedMoreNeverOk) {
  SegmentDataMsg msg;
  msg.bytes = std::string(257, 'q');
  const std::string wire = EncodeFrame(msg.ToFrame());
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    FrameDecoder decoder;
    decoder.Feed(wire.data(), cut);
    Frame frame;
    EXPECT_EQ(decoder.Next(&frame), DecodeStatus::kNeedMore)
        << "truncated to " << cut << " bytes";
    EXPECT_FALSE(decoder.poisoned());
  }
}

TEST(NetFrame, EverySingleBitFlipIsDetected) {
  // The core integrity property: no single-bit corruption anywhere in the
  // frame may decode as kOk.  Depending on which field the flip lands in it
  // surfaces as kBadMagic / kBadType / kOversized / kBadCrc — or as
  // kNeedMore when the length field grew (the stream stalls, which a real
  // connection converts into a timeout) — but never as an accepted frame.
  ChunkMsg msg;
  msg.map_task = 3;
  msg.reducer = 1;
  msg.records = 7;
  msg.bytes = "bit-flip target payload";
  const std::string wire = EncodeFrame(msg.ToFrame());

  for (std::size_t byte = 0; byte < wire.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = wire;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      FrameDecoder decoder;
      decoder.Feed(corrupt.data(), corrupt.size());
      Frame frame;
      const DecodeStatus status = decoder.Next(&frame);
      EXPECT_NE(status, DecodeStatus::kOk)
          << "flip of bit " << bit << " in byte " << byte
          << " decoded as a valid frame";
      if (status != DecodeStatus::kNeedMore) {
        EXPECT_TRUE(decoder.poisoned());
        EXPECT_EQ(decoder.Next(&frame), status)
            << "poisoned decoder must repeat its error";
      }
    }
  }
}

TEST(NetFrame, OversizedLengthIsRejectedStructurally) {
  // Hand-craft a header whose declared payload length exceeds the cap; the
  // decoder must reject it from the header alone instead of waiting for a
  // gigabyte that will never arrive.
  std::string header;
  const auto put_u32 = [&header](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      header.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    }
  };
  put_u32(kFrameMagic);
  header.push_back(static_cast<char>(FrameType::kChunk));
  header.push_back('\0');  // flags
  header.push_back('\0');  // reserved
  header.push_back('\0');
  put_u32(kMaxFramePayload + 1);
  put_u32(0);  // crc (never reached)
  ASSERT_EQ(header.size(), kFrameHeaderBytes);

  FrameDecoder decoder;
  decoder.Feed(header.data(), header.size());
  Frame frame;
  EXPECT_EQ(decoder.Next(&frame), DecodeStatus::kOversized);
  EXPECT_TRUE(decoder.poisoned());
}

TEST(NetFrame, EncoderRefusesOversizedPayload) {
  Frame frame;
  frame.type = FrameType::kChunk;
  frame.payload.resize(16);
  std::string out;
  AppendFrame(&out, frame);  // small is fine
  Frame big;
  big.type = FrameType::kChunk;
  big.payload.resize(static_cast<std::size_t>(kMaxFramePayload) + 1);
  EXPECT_THROW(EncodeFrame(big), std::length_error);
}

TEST(NetFrame, PoisoningIsPermanent) {
  // A good frame queued behind garbage must never be surfaced: framing is
  // stateful and the stream is untrustworthy after the first error.
  std::string wire = "garbage!";
  MapDoneMsg msg;
  msg.map_task = 0;
  AppendFrame(&wire, msg.ToFrame());

  FrameDecoder decoder;
  decoder.Feed(wire.data(), wire.size());
  Frame frame;
  EXPECT_EQ(decoder.Next(&frame), DecodeStatus::kBadMagic);
  EXPECT_TRUE(decoder.poisoned());
  EXPECT_EQ(decoder.Next(&frame), DecodeStatus::kBadMagic);
  EXPECT_EQ(decoder.Next(&frame), DecodeStatus::kBadMagic);
}

TEST(NetFrame, SemanticallyTruncatedPayloadIsWireError) {
  // A frame can pass CRC yet carry a payload too short for its message type
  // (a bug in the peer, or a CRC collision).  Parse must throw WireError,
  // not read out of bounds.
  ChunkMsg msg;
  msg.bytes = "full payload";
  Frame frame = msg.ToFrame();
  frame.payload.resize(frame.payload.size() / 2);  // re-framed as valid
  const Frame reframed = DecodeOne(EncodeFrame(frame));
  EXPECT_THROW((void)ChunkMsg::Parse(reframed), WireError);

  // Trailing junk after a well-formed message is equally structural.
  Frame padded = msg.ToFrame();
  padded.payload += "trailing junk";
  const Frame reframed2 = DecodeOne(EncodeFrame(padded));
  EXPECT_THROW((void)ChunkMsg::Parse(reframed2), WireError);
}

TEST(NetFrame, ConstantTimeEqualsMatchesOnlyExactSecrets) {
  EXPECT_TRUE(ConstantTimeEquals("", ""));
  EXPECT_TRUE(ConstantTimeEquals("s3cret", "s3cret"));
  EXPECT_FALSE(ConstantTimeEquals("s3cret", "S3cret"));   // case differs
  EXPECT_FALSE(ConstantTimeEquals("s3cret", "s3cre"));    // proper prefix
  EXPECT_FALSE(ConstantTimeEquals("s3cret", "s3cretX"));  // proper suffix
  EXPECT_FALSE(ConstantTimeEquals("s3cret", ""));
  EXPECT_FALSE(ConstantTimeEquals("", "guess"));
  // Embedded NULs are ordinary bytes, not terminators.
  const std::string with_nul("a\0b", 3);
  const std::string with_nul_c("a\0c", 3);
  EXPECT_TRUE(ConstantTimeEquals(with_nul, with_nul));
  EXPECT_FALSE(ConstantTimeEquals(with_nul, with_nul_c));
  EXPECT_FALSE(ConstantTimeEquals(with_nul, std::string("a", 1)));
}

TEST(NetFrame, UnknownTypeByteIsBadType) {
  MapDoneMsg msg;
  std::string wire = EncodeFrame(msg.ToFrame());
  wire[4] = '\x63';  // type byte: far outside the known range
  FrameDecoder decoder;
  decoder.Feed(wire.data(), wire.size());
  Frame frame;
  EXPECT_EQ(decoder.Next(&frame), DecodeStatus::kBadType);
  EXPECT_FALSE(IsKnownFrameType(0x63));
  EXPECT_TRUE(IsKnownFrameType(static_cast<std::uint8_t>(FrameType::kBye)));
}

}  // namespace
}  // namespace opmr::net
