#include "engine/shuffle.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "storage/file_manager.h"
#include "storage/io.h"

namespace opmr {
namespace {

class ShuffleTest : public ::testing::Test {
 protected:
  ShuffleTest() : files_(FileManager::CreateTemp("opmr-shuffle")) {}

  // Writes a map-output file with the given per-partition payloads.
  MapOutputFile WriteFile(int map_task,
                          const std::vector<std::string>& partitions) {
    MapOutputFile file;
    file.map_task = map_task;
    file.sorted = true;
    file.path = files_.NewFile("map_out");
    SequentialWriter w(file.path, IoChannel(&metrics_, "t.bytes"));
    for (const auto& payload : partitions) {
      Segment seg;
      seg.offset = w.bytes_written();
      seg.bytes = payload.size();
      seg.records = 1;
      w.Append(payload);
      file.partitions.push_back(seg);
    }
    w.Close();
    return file;
  }

  FileManager files_;
  MetricRegistry metrics_;
};

TEST_F(ShuffleTest, PullDeliversSegmentsToRightReducers) {
  ShuffleService service(1, 2, &metrics_, 4);
  service.RegisterFile(WriteFile(0, {"part0-data", "part1-data"}));
  service.MapTaskDone(0);

  ShuffleItem item;
  ASSERT_TRUE(service.NextItem(0, &item));
  EXPECT_TRUE(item.from_file);
  EXPECT_EQ(item.segment.bytes, 10u);
  EXPECT_EQ(item.map_task, 0);
  EXPECT_FALSE(service.NextItem(0, &item));  // complete

  ASSERT_TRUE(service.NextItem(1, &item));
  EXPECT_EQ(item.segment.offset, 10u);
  EXPECT_FALSE(service.NextItem(1, &item));
}

TEST_F(ShuffleTest, EmptySegmentsAreSkipped) {
  ShuffleService service(1, 2, &metrics_, 4);
  service.RegisterFile(WriteFile(0, {"", "only-partition-1"}));
  service.MapTaskDone(0);
  ShuffleItem item;
  EXPECT_FALSE(service.NextItem(0, &item));
  EXPECT_TRUE(service.NextItem(1, &item));
}

TEST_F(ShuffleTest, PushRespectsBackpressureBound) {
  ShuffleService service(1, 1, &metrics_, /*push_queue_chunks=*/2);
  ShuffleItem chunk;
  chunk.map_task = 0;
  chunk.bytes = "xyz";
  EXPECT_EQ(service.TryPush(0, chunk), PushResult::kAccepted);
  EXPECT_EQ(service.TryPush(0, chunk), PushResult::kAccepted);
  EXPECT_EQ(service.TryPush(0, chunk), PushResult::kBusy)
      << "third push must be rejected";

  // Consuming one frees a slot.
  ShuffleItem item;
  ASSERT_TRUE(service.NextItem(0, &item));
  EXPECT_EQ(service.TryPush(0, chunk), PushResult::kAccepted);
}

TEST_F(ShuffleTest, FileItemsDoNotCountTowardBackpressure) {
  ShuffleService service(1, 1, &metrics_, /*push_queue_chunks=*/1);
  service.RegisterFile(WriteFile(0, {"abc"}));
  service.RegisterFile(WriteFile(0, {"def"}));
  ShuffleItem chunk;
  chunk.bytes = "mem";
  EXPECT_EQ(service.TryPush(0, chunk), PushResult::kAccepted);
}

TEST_F(ShuffleTest, ConsumingPushedChunkChargesShuffleRead) {
  ShuffleService service(1, 1, &metrics_, 4);
  ShuffleItem chunk;
  chunk.bytes = std::string(500, 'p');
  service.TryPush(0, std::move(chunk));
  ShuffleItem item;
  service.NextItem(0, &item);
  EXPECT_EQ(metrics_.Value(device::kShuffleRead), 500);
}

TEST_F(ShuffleTest, NextItemBlocksUntilDataThenCompletes) {
  ShuffleService service(1, 1, &metrics_, 4);
  std::atomic<int> got{0};
  std::jthread reducer([&] {
    ShuffleItem item;
    while (service.NextItem(0, &item)) got.fetch_add(1);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(got.load(), 0);  // still blocked
  service.RegisterFile(WriteFile(0, {"hello"}));
  service.MapTaskDone(0);
  reducer.join();
  EXPECT_EQ(got.load(), 1);
}

TEST_F(ShuffleTest, MapsDoneFractionAdvances) {
  ShuffleService service(4, 1, &metrics_, 4);
  EXPECT_DOUBLE_EQ(service.MapsDoneFraction(), 0.0);
  service.MapTaskDone(0);
  service.MapTaskDone(1);
  EXPECT_DOUBLE_EQ(service.MapsDoneFraction(), 0.5);
}

TEST_F(ShuffleTest, TooManyCompletionsThrow) {
  ShuffleService service(1, 1, &metrics_, 4);
  service.MapTaskDone(0);
  EXPECT_THROW(service.MapTaskDone(1), std::logic_error);
}

TEST_F(ShuffleTest, AbortUnblocksAndThrows) {
  ShuffleService service(2, 1, &metrics_, 4);
  std::atomic<bool> threw{false};
  std::jthread reducer([&] {
    try {
      ShuffleItem item;
      service.NextItem(0, &item);
    } catch (const std::runtime_error&) {
      threw.store(true);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  service.Abort("test failure");
  reducer.join();
  EXPECT_TRUE(threw.load());
}

TEST_F(ShuffleTest, RegisterSegmentDeliversDivertedChunk) {
  ShuffleService service(1, 2, &metrics_, 4);
  const auto file = WriteFile(0, {"0123456789"});
  Segment seg;
  seg.offset = 2;
  seg.bytes = 5;
  seg.records = 1;
  service.RegisterSegment(0, file.path, 1, seg, /*sorted=*/false);
  service.MapTaskDone(0);

  ShuffleItem item;
  ASSERT_TRUE(service.NextItem(1, &item));
  EXPECT_TRUE(item.from_file);
  EXPECT_FALSE(item.sorted);
  EXPECT_EQ(item.segment.offset, 2u);
  EXPECT_EQ(item.size_bytes(), 5u);
}

TEST_F(ShuffleTest, ReducersAreIsolated) {
  ShuffleService service(1, 3, &metrics_, 4);
  ShuffleItem chunk;
  chunk.bytes = "only-for-2";
  service.TryPush(2, std::move(chunk));
  service.MapTaskDone(0);
  ShuffleItem item;
  EXPECT_FALSE(service.NextItem(0, &item));
  EXPECT_FALSE(service.NextItem(1, &item));
  EXPECT_TRUE(service.NextItem(2, &item));
}

TEST_F(ShuffleTest, RequiresAtLeastOneReducer) {
  EXPECT_THROW(ShuffleService(1, 0, &metrics_, 4), std::invalid_argument);
}

TEST_F(ShuffleTest, GoneReducerFailsPushesFast) {
  ShuffleService service(1, 2, &metrics_, 4);
  int gone_reducer = -1;
  service.SetGoneProbe([&](int r) { gone_reducer = r; });
  service.MarkReducerGone(1);
  EXPECT_EQ(gone_reducer, 1);

  ShuffleItem chunk;
  chunk.bytes = "late";
  EXPECT_EQ(service.TryPush(1, chunk), PushResult::kReducerGone);
  EXPECT_EQ(service.TryPush(0, chunk), PushResult::kAccepted)
      << "other reducers keep accepting";
}

TEST_F(ShuffleTest, ForcePushIgnoresBackpressureBound) {
  ShuffleService service(1, 1, &metrics_, /*push_queue_chunks=*/1);
  ShuffleItem chunk;
  chunk.bytes = "c";
  EXPECT_EQ(service.TryPush(0, chunk), PushResult::kAccepted);
  EXPECT_EQ(service.TryPush(0, chunk), PushResult::kBusy);
  service.ForcePush(0, chunk);  // remote server path: client is authoritative
  ShuffleItem item;
  EXPECT_TRUE(service.NextItem(0, &item));
  EXPECT_TRUE(service.NextItem(0, &item));
}

TEST_F(ShuffleTest, ChunkConsumedProbeFiresOncePerChunk) {
  ShuffleService service(1, 1, &metrics_, 4);
  service.EnableCheckpointReplay(files_.NewDir("retain"), 1 << 20);
  int credits = 0;
  service.SetChunkConsumedProbe([&](int, int) { ++credits; });

  ShuffleItem chunk;
  chunk.bytes = "pushed";
  service.TryPush(0, chunk);
  ShuffleItem item;
  ASSERT_TRUE(service.NextItem(0, &item));
  EXPECT_EQ(credits, 1);

  // A replayed item keeps its ordinal: consuming it again must NOT re-grant
  // a flow-control credit (the mapper's budget was already returned once).
  std::string why;
  ASSERT_TRUE(service.Rewind(0, 0, &why)) << why;
  ASSERT_TRUE(service.NextItem(0, &item));
  EXPECT_EQ(credits, 1);
}

TEST_F(ShuffleTest, IdleTimeoutThrowsOnlyWhenTrulyIdle) {
  ShuffleService service(1, 1, &metrics_, 4);
  service.SetIdleTimeout(0.2);
  ShuffleItem item;
  EXPECT_THROW(service.NextItem(0, &item), std::runtime_error);
}

TEST_F(ShuffleTest, IdleTimeoutSurvivesActivityFreeWakeups) {
  // Regression: NextItem notifies the condition variable when an item is
  // consumed WITHOUT bumping the activity counter.  A sibling reducer's
  // consumption must not trick the idle guard into thinking its full quiet
  // window elapsed.
  ShuffleService service(1, 2, &metrics_, 4);
  service.SetIdleTimeout(0.5);
  ShuffleItem chunk;
  chunk.bytes = "r0-data";
  service.TryPush(0, chunk);

  std::atomic<bool> threw{false};
  std::jthread waiter([&] {
    try {
      ShuffleItem item;
      while (service.NextItem(1, &item)) {
      }
    } catch (const std::runtime_error&) {
      threw.store(true);
    }
  });
  // Generate consume-side notifies well inside the idle window.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ShuffleItem item;
  ASSERT_TRUE(service.NextItem(0, &item));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(threw.load()) << "consumption wakeup misread as idle timeout";
  service.MapTaskDone(0);
  waiter.join();
  EXPECT_FALSE(threw.load());
}

}  // namespace
}  // namespace opmr
