// End-to-end transport equivalence: the same job over the in-process
// engine, the loopback transport, real TCP sockets, and the epoll data
// plane must produce the same answer — including with segment bytes
// shipped inline (no shared filesystem) and under an injected
// connection-drop fault plan.  This is the PR's acceptance property: the
// transport seam changes how bytes move, never what the job computes.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/opmr.h"
#include "dataplane/block_cache.h"
#include "dataplane/event_loop.h"
#include "net/loopback.h"
#include "net/tcp.h"
#include "workloads/clickstream.h"
#include "workloads/tasks.h"

namespace opmr {
namespace {

using Rows = std::vector<std::pair<std::string, std::string>>;

enum class Mode {
  kDirect,          // no transport: the seed engine's in-process path
  kLoopback,        // frames through LoopbackTransport
  kTcp,             // frames through real localhost sockets (self-dial)
  kTcpShipBytes,    // TCP with shared_fs=false: segment bytes go inline
  kEpoll,           // frames through the epoll event-loop data plane
  kEpollShipBytes,  // epoll with shared_fs=false: segments via sendfile(2)
};

struct Outcome {
  JobResult result;
  Rows rows;
};

Outcome RunMode(Mode mode, const JobOptions& options,
                const std::string& fault_plan = "") {
  PlatformOptions popts;
  popts.num_nodes = 3;
  popts.block_bytes = 256u << 10;
  popts.fault_plan = fault_plan;
  Platform platform(popts);
  ClickStreamOptions gen;
  gen.num_records = 40'000;
  gen.num_users = 5'000;
  GenerateClickStream(platform.dfs(), "clicks", gen);
  const JobSpec spec = PerUserCountJob("clicks", "out", 2);

  Outcome out;
  switch (mode) {
    case Mode::kDirect:
      out.result = platform.Run(spec, options);
      break;
    case Mode::kLoopback: {
      net::LoopbackTransport transport(&platform.metrics());
      out.result = platform.RunWithTransport(spec, options, &transport);
      break;
    }
    case Mode::kTcp: {
      net::TcpTransport transport(&platform.metrics());
      transport.Bind();
      out.result = platform.RunWithTransport(spec, options, &transport);
      break;
    }
    case Mode::kTcpShipBytes: {
      net::TcpTransport transport(&platform.metrics());
      transport.Bind();
      out.result = platform.RunWithTransport(spec, options, &transport,
                                             /*shared_fs=*/false);
      break;
    }
    case Mode::kEpoll: {
      dataplane::EventLoopTransport transport(&platform.metrics());
      transport.Bind();
      out.result = platform.RunWithTransport(spec, options, &transport);
      break;
    }
    case Mode::kEpollShipBytes: {
      dataplane::EventLoopTransport transport(&platform.metrics());
      transport.Bind();
      out.result = platform.RunWithTransport(spec, options, &transport,
                                             /*shared_fs=*/false);
      break;
    }
  }
  out.rows = platform.ReadOutput("out", 2);
  return out;
}

std::map<std::string, std::string> AsMap(const Rows& rows) {
  std::map<std::string, std::string> m;
  for (const auto& [k, v] : rows) {
    EXPECT_TRUE(m.emplace(k, v).second) << "duplicate key " << k;
  }
  return m;
}

TEST(TransportShuffle, PullJobIsByteIdenticalAcrossTransports) {
  // Pull shuffle + sort-merge reduce is fully deterministic, so the
  // comparison is exact rows, order included.
  const auto direct = RunMode(Mode::kDirect, HadoopOptions());
  const auto loopback = RunMode(Mode::kLoopback, HadoopOptions());
  const auto tcp = RunMode(Mode::kTcp, HadoopOptions());
  const auto epoll = RunMode(Mode::kEpoll, HadoopOptions());

  ASSERT_GT(direct.rows.size(), 0u);
  EXPECT_EQ(loopback.rows, direct.rows);
  EXPECT_EQ(tcp.rows, direct.rows);
  EXPECT_EQ(epoll.rows, direct.rows);

  // Only the transported runs moved frames.
  EXPECT_EQ(direct.result.net_frames_sent, 0);
  EXPECT_GT(loopback.result.net_frames_sent, 0);
  EXPECT_GT(loopback.result.net_bytes_sent, 0);
  EXPECT_GT(tcp.result.net_frames_sent, 0);
  EXPECT_GT(tcp.result.net_bytes_received, 0);
  EXPECT_EQ(tcp.result.net_retransmits, 0);
  // The epoll run batched data frames into blocks; same answer regardless.
  EXPECT_GT(epoll.result.net_frames_sent, 0);
  EXPECT_GT(epoll.result.Bytes(dataplane::kBlocksSent), 0);
  EXPECT_EQ(epoll.result.Bytes(dataplane::kBlocksSent),
            epoll.result.Bytes(dataplane::kBlocksReceived));
}

TEST(TransportShuffle, PushJobComputesSameAnswerAcrossTransports) {
  // The push pipeline interleaves concurrent mapper threads, so row order
  // is scheduling-dependent even in-process; the answer (key -> value) is
  // what must be invariant.
  const auto direct = RunMode(Mode::kDirect, HashOnePassOptions());
  const auto loopback = RunMode(Mode::kLoopback, HashOnePassOptions());
  const auto tcp = RunMode(Mode::kTcp, HashOnePassOptions());
  const auto epoll = RunMode(Mode::kEpoll, HashOnePassOptions());

  const auto truth = AsMap(direct.rows);
  ASSERT_GT(truth.size(), 0u);
  EXPECT_EQ(AsMap(loopback.rows), truth);
  EXPECT_EQ(AsMap(tcp.rows), truth);
  EXPECT_EQ(AsMap(epoll.rows), truth);
  EXPECT_EQ(direct.result.output_records, loopback.result.output_records);
  EXPECT_EQ(direct.result.output_records, tcp.result.output_records);
  EXPECT_EQ(direct.result.output_records, epoll.result.output_records);
}

TEST(TransportShuffle, InlineSegmentShippingMatchesSharedFilesystem) {
  // shared_fs=false forces every map-output segment across the wire as
  // SegmentData bytes instead of a path reference; the reducers then read
  // their own landed copies.  Same rows either way, more bytes on the wire.
  const auto by_ref = RunMode(Mode::kTcp, HadoopOptions());
  const auto by_bytes = RunMode(Mode::kTcpShipBytes, HadoopOptions());

  ASSERT_GT(by_ref.rows.size(), 0u);
  EXPECT_EQ(by_bytes.rows, by_ref.rows);
  EXPECT_GT(by_bytes.result.net_bytes_sent, by_ref.result.net_bytes_sent)
      << "inline segment payloads must outweigh path references";

  // Over the epoll data plane the inline segment bodies leave through
  // sendfile(2) — kernel-side copies, byte-identical on arrival.
  const auto by_sendfile = RunMode(Mode::kEpollShipBytes, HadoopOptions());
  EXPECT_EQ(by_sendfile.rows, by_ref.rows);
  EXPECT_GT(by_sendfile.result.Bytes(dataplane::kSendfileFrames), 0);
  EXPECT_GT(by_sendfile.result.Bytes(dataplane::kSendfileBytes), 0);
}

TEST(TransportShuffle, InjectedConnDropIsInvisibleInTheAnswer) {
  // Frame 2 of the mapper connection is torn down before any byte reaches
  // the wire; the client reconnects, re-introduces itself, and retransmits.
  // The answer must not change and the wire metrics must show the event.
  const auto clean = RunMode(Mode::kDirect, HashOnePassOptions());
  const auto dropped = RunMode(Mode::kTcp, HashOnePassOptions(),
                               "seed=7;conn_drop:record=2");

  EXPECT_EQ(AsMap(dropped.rows), AsMap(clean.rows));
  EXPECT_GE(dropped.result.faults_injected, 1);
  EXPECT_GE(dropped.result.net_retransmits, 1);
  EXPECT_GE(dropped.result.net_reconnects, 1);
}

TEST(TransportShuffle, InjectedConnDropOverEpollIsInvisibleInTheAnswer) {
  // Same fault plan over the event-loop data plane.  The epoll client
  // abandons batched-but-unflushed frames on a drop and relies on the
  // shuffle layer's ack-window replay for redelivery, so this covers the
  // at-least-once + seq-watermark dedup composition end to end.
  const auto clean = RunMode(Mode::kDirect, HashOnePassOptions());
  const auto dropped = RunMode(Mode::kEpoll, HashOnePassOptions(),
                               "seed=7;conn_drop:record=2");

  EXPECT_EQ(AsMap(dropped.rows), AsMap(clean.rows));
  EXPECT_GE(dropped.result.faults_injected, 1);
  EXPECT_GE(dropped.result.net_retransmits, 1);
  EXPECT_GE(dropped.result.net_reconnects, 1);
}

TEST(TransportShuffle, CheckpointRestartServesReplayFromBlockCache) {
  // A reduce crash inside a checkpointed push job forces a restart that
  // replays the retained shuffle suffix.  With the retention budget
  // squeezed, retained payloads spill to disk AND are offered to the
  // reducer-side block cache — so the replay must find at least some of
  // them resident and skip the spill re-read.
  PlatformOptions popts;
  popts.num_nodes = 3;
  popts.block_bytes = 256u << 10;
  popts.max_task_attempts = 2;
  popts.retry_backoff_base_ms = 0.1;
  popts.retry_backoff_max_ms = 1.0;
  popts.fault_plan = "seed=11;reduce_crash:task=1,record=50";
  Platform platform(popts);
  ClickStreamOptions gen;
  gen.num_records = 60'000;
  gen.num_users = 8'000;
  GenerateClickStream(platform.dfs(), "clicks", gen);

  JobOptions options = CheckpointedOnePassOptions(/*interval_records=*/4'000);
  options.checkpoint.retain_budget_bytes = 4u << 10;  // force retain spills
  const JobResult result =
      platform.Run(PerUserCountJob("clicks", "out", 2), options);

  EXPECT_EQ(result.reduce_task_retries, 1);
  EXPECT_GT(result.replay_records, 0);
  EXPECT_GT(result.block_cache_hits, 0)
      << "checkpoint-seeded replay must hit the block cache";
  EXPECT_EQ(result.block_cache_misses, 0)
      << "nothing evicted at this scale: every spilled payload stays cached";

  // The cached replay is invisible in the answer: same rows as a clean
  // run with a roomy retention budget and no fault.
  PlatformOptions clean_popts;
  clean_popts.num_nodes = 3;
  clean_popts.block_bytes = 256u << 10;
  Platform clean(clean_popts);
  GenerateClickStream(clean.dfs(), "clicks", gen);
  clean.Run(PerUserCountJob("clicks", "out", 2),
            CheckpointedOnePassOptions(/*interval_records=*/4'000));
  EXPECT_EQ(platform.ReadOutput("out", 2), clean.ReadOutput("out", 2));
}

TEST(TransportShuffle, InjectedStallIsAccountedAsStallTime) {
  const auto stalled = RunMode(Mode::kTcp, HashOnePassOptions(),
                               "seed=7;net_stall:record=3,delay_ms=40");
  ASSERT_GT(stalled.rows.size(), 0u);
  EXPECT_GE(stalled.result.faults_injected, 1);
  EXPECT_GE(stalled.result.net_stall_seconds, 0.04);
  EXPECT_EQ(stalled.result.net_retransmits, 0) << "a stall is not a drop";
}

}  // namespace
}  // namespace opmr
