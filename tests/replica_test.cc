// Replicated coordinator (src/replica): changelog durability and torn-tail
// truncation, deterministic replay, registry <-> checkpoint-image codec,
// lowest-id election with exactly one claim, epoch-fenced stale frames,
// leader-kill failover preserving registered workers, CoordClient endpoint
// failover with generation continuity, restart recovery from snapshot +
// log, and the headline chaos case: kill -9 the leader mid-job and the
// output stays byte-identical to the in-process engine.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "coord/member.h"
#include "coord/registry.h"
#include "core/opmr.h"
#include "net/tcp.h"
#include "net/wire.h"
#include "replica/changelog.h"
#include "replica/replica.h"
#include "workloads/clickstream.h"
#include "workloads/tasks.h"

namespace opmr {
namespace {

using replica::Changelog;
using replica::CoordinatorReplica;
using replica::LogRecord;
using replica::LogRecordType;

using Rows = std::vector<std::pair<std::string, std::string>>;

std::map<std::string, std::string> AsMap(const Rows& rows) {
  std::map<std::string, std::string> m;
  for (const auto& [k, v] : rows) {
    EXPECT_TRUE(m.emplace(k, v).second) << "duplicate key " << k;
  }
  return m;
}

std::filesystem::path TestDir(const std::string& name) {
  const auto dir =
      std::filesystem::temp_directory_path() / ("opmr_replica_" + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

LogRecord RegisterRecord(const std::string& worker, const std::string& ep,
                         double now_s) {
  LogRecord rec;
  rec.type = LogRecordType::kRegister;
  rec.worker = worker;
  rec.endpoint = ep;
  rec.role = static_cast<std::uint8_t>(net::WireRole::kMap);
  rec.now_s = now_s;
  return rec;
}

LogRecord HeartbeatRecord(const std::string& worker, std::uint64_t gen,
                          double now_s) {
  LogRecord rec;
  rec.type = LogRecordType::kHeartbeat;
  rec.worker = worker;
  rec.generation = gen;
  rec.now_s = now_s;
  return rec;
}

// --- Changelog ---------------------------------------------------------------

TEST(Changelog, AppendReplayAndTornTailTruncation) {
  const auto dir = TestDir("changelog");
  std::vector<std::pair<std::uint64_t, LogRecord>> written;
  {
    Changelog log(dir, 1);
    EXPECT_EQ(log.last_index(), 0u);
    log.Append(1, RegisterRecord("w1", "h:1", 10.0));
    log.Append(2, HeartbeatRecord("w1", 1, 10.5));
    LogRecord expire;
    expire.type = LogRecordType::kExpire;
    expire.now_s = 20.0;
    expire.lease_s = 2.0;
    log.Append(3, expire);
    LogRecord lost;
    lost.type = LogRecordType::kLost;
    lost.worker = "w1";
    log.Append(4, lost);
    EXPECT_EQ(log.last_index(), 4u);
  }

  // Reopen: every record survives, field-exact (timestamps bit-exact).
  {
    Changelog log(dir, 1);
    EXPECT_EQ(log.last_index(), 4u);
    std::vector<std::pair<std::uint64_t, LogRecord>> seen;
    EXPECT_EQ(log.Replay([&seen](std::uint64_t index, const LogRecord& rec) {
      seen.emplace_back(index, rec);
    }), 4u);
    ASSERT_EQ(seen.size(), 4u);
    EXPECT_EQ(seen[0].first, 1u);
    EXPECT_EQ(seen[0].second.worker, "w1");
    EXPECT_EQ(seen[0].second.endpoint, "h:1");
    EXPECT_EQ(seen[0].second.now_s, 10.0);
    EXPECT_EQ(seen[1].second.type, LogRecordType::kHeartbeat);
    EXPECT_EQ(seen[1].second.generation, 1u);
    EXPECT_EQ(seen[2].second.lease_s, 2.0);
    EXPECT_EQ(seen[3].second.worker, "w1");
  }

  // A crash mid-append leaves a torn tail; reopen must truncate back to
  // the last whole record and keep appending cleanly from there.
  const auto path = dir / "replica_1.oplog";
  const auto full_size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full_size - 3);
  {
    Changelog log(dir, 1);
    EXPECT_EQ(log.last_index(), 3u);  // record 4 was torn off
    log.Append(4, HeartbeatRecord("w1", 1, 30.0));
    EXPECT_EQ(log.last_index(), 4u);
  }
  {
    Changelog log(dir, 1);
    std::size_t count = 0;
    log.Replay([&count](std::uint64_t, const LogRecord&) { ++count; });
    EXPECT_EQ(count, 4u);
  }

  // Corrupt a byte INSIDE the tail record's payload: CRC catches it and
  // the clean prefix survives.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-1, std::ios::end);
    f.put('\xFF');
  }
  {
    Changelog log(dir, 1);
    EXPECT_EQ(log.last_index(), 3u);
  }
}

TEST(Changelog, ResetRotatesTheFile) {
  const auto dir = TestDir("changelog_reset");
  Changelog log(dir, 7);
  log.Append(1, RegisterRecord("w", "e:1", 1.0));
  log.Append(2, HeartbeatRecord("w", 1, 2.0));
  log.Reset();
  EXPECT_EQ(std::filesystem::file_size(dir / "replica_7.oplog"), 0u);
  // Post-rotation appends continue at the caller's index.
  log.Append(3, HeartbeatRecord("w", 1, 3.0));
  std::size_t count = 0;
  log.Replay([&count](std::uint64_t index, const LogRecord&) {
    ++count;
    EXPECT_EQ(index, 3u);
  });
  EXPECT_EQ(count, 1u);
}

// --- Deterministic replay and the image codec --------------------------------

TEST(ReplicaState, ReplayedLogYieldsIdenticalRegistry) {
  // The replicated-state-machine property: applying the same records in
  // the same order into two fresh registries gives identical views —
  // including evictions, whose outcome rides on the logged timestamps.
  const std::vector<LogRecord> records = {
      RegisterRecord("map-0", "-", 100.0),
      RegisterRecord("reduce-0", "r:1", 100.5),
      HeartbeatRecord("map-0", 1, 101.0),
      [] {
        LogRecord rec;
        rec.type = LogRecordType::kExpire;
        rec.now_s = 103.0;
        rec.lease_s = 2.0;  // reduce-0 (last heard 100.5) expires
        return rec;
      }(),
      RegisterRecord("reduce-0", "r:2", 104.0),
  };

  coord::WorkerRegistry a;
  coord::WorkerRegistry b;
  for (const LogRecord& rec : records) replica::ApplyRecord(&a, rec);
  // Round-trip every record through its wire payload before applying to b,
  // as a standby would.
  for (const LogRecord& rec : records) {
    const LogRecord decoded =
        LogRecord::DecodePayload(rec.type, rec.EncodePayload());
    replica::ApplyRecord(&b, decoded);
  }

  const auto va = a.Snapshot();
  const auto vb = b.Snapshot();
  EXPECT_EQ(va.epoch, vb.epoch);
  ASSERT_EQ(va.entries.size(), vb.entries.size());
  for (std::size_t i = 0; i < va.entries.size(); ++i) {
    EXPECT_EQ(va.entries[i].worker, vb.entries[i].worker);
    EXPECT_EQ(va.entries[i].generation, vb.entries[i].generation);
    EXPECT_EQ(va.entries[i].alive, vb.entries[i].alive);
    EXPECT_EQ(va.entries[i].endpoint, vb.entries[i].endpoint);
  }
  // The expiry actually happened, and the re-register bumped the
  // generation — continuity, not a reset.
  coord::WorkerInfo info;
  ASSERT_TRUE(a.Lookup("reduce-0", &info));
  EXPECT_TRUE(info.alive);
  EXPECT_EQ(info.generation, 2u);
  EXPECT_EQ(info.endpoint, "r:2");
}

TEST(ReplicaState, ImageRoundTripsThroughCheckpointCodec) {
  coord::WorkerRegistry registry;
  (void)registry.Register("map-0", "-", net::WireRole::kMap, 50.25);
  (void)registry.Register("reduce-0", "r:1", net::WireRole::kReduce, 51.75);
  (void)registry.Heartbeat("map-0", 1, 52.5);
  (void)registry.ExpireLeases(60.0, 2.0);  // both expire

  const CheckpointImage image =
      replica::ImageFromRegistry(registry, /*applied_index=*/42,
                                 /*leader_epoch=*/7);
  const std::string bytes = SerializeCheckpointImage(image);

  coord::WorkerRegistry restored;
  std::uint64_t leader_epoch = 3;  // must max-merge up to 7
  replica::RestoreRegistryFromImage(ParseCheckpointImage(bytes), &restored,
                                    &leader_epoch);
  EXPECT_EQ(leader_epoch, 7u);
  EXPECT_EQ(restored.epoch(), registry.epoch());
  const auto before = registry.Snapshot();
  const auto after = restored.Snapshot();
  ASSERT_EQ(after.entries.size(), before.entries.size());
  for (std::size_t i = 0; i < before.entries.size(); ++i) {
    EXPECT_EQ(after.entries[i].worker, before.entries[i].worker);
    EXPECT_EQ(after.entries[i].generation, before.entries[i].generation);
    EXPECT_EQ(after.entries[i].alive, before.entries[i].alive);
  }
  // Post-restore mutations continue the sequence: dead workers re-register
  // under the NEXT generation, exactly as on the original.
  EXPECT_EQ(restored.Register("map-0", "-", net::WireRole::kMap, 61.0), 2u);
}

// --- Replica groups over real TCP --------------------------------------------

struct ReplicaNode {
  MetricRegistry metrics;
  std::unique_ptr<net::TcpTransport> wire;
  std::unique_ptr<CoordinatorReplica> rep;

  // kill -9 equivalent: stop serving and sever every connection at once.
  void Kill() {
    rep->Stop();
    wire->Shutdown();
  }
};

std::vector<std::unique_ptr<ReplicaNode>> MakeGroup(
    const std::string& tag, int n,
    const std::function<void(CoordinatorReplica::Options&)>& tweak = {}) {
  std::vector<std::unique_ptr<ReplicaNode>> nodes;
  for (int i = 0; i < n; ++i) {
    auto node = std::make_unique<ReplicaNode>();
    node->wire = std::make_unique<net::TcpTransport>(&node->metrics);
    node->wire->Bind();
    nodes.push_back(std::move(node));
  }
  for (int i = 0; i < n; ++i) {
    CoordinatorReplica::Options opts;
    opts.replica_id = static_cast<std::uint32_t>(i + 1);
    opts.endpoint = nodes[i]->wire->endpoint();
    opts.changelog_dir = TestDir(tag + "_r" + std::to_string(i + 1));
    opts.vote_interval_ms = 25;
    opts.election_timeout_ms = 250;
    opts.sweep_interval_ms = 25;
    opts.lease_s = 30.0;  // failure detection is not under test by default
    opts.rejoin_grace_s = 30.0;
    for (int j = 0; j < n; ++j) {
      if (j == i) continue;
      opts.peers.push_back({static_cast<std::uint32_t>(j + 1),
                            nodes[j]->wire->endpoint()});
    }
    if (tweak) tweak(opts);
    nodes[i]->rep = std::make_unique<CoordinatorReplica>(
        nodes[i]->wire.get(), &nodes[i]->metrics, opts);
  }
  return nodes;
}

void StopGroup(std::vector<std::unique_ptr<ReplicaNode>>& nodes) {
  for (auto& node : nodes) {
    if (node->rep) node->rep->Stop();
  }
  for (auto& node : nodes) node->wire->Shutdown();
}

template <typename Pred>
bool PollUntil(double timeout_s, Pred pred) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return true;
}

TEST(ReplicaElection, LowestLiveIdClaimsExactlyOnce) {
  auto nodes = MakeGroup("elect", 3);
  // Replica 1 is the lowest id: it and only it claims, at epoch 1.
  ASSERT_TRUE(nodes[0]->rep->WaitForLeadership(10.0));
  EXPECT_EQ(nodes[0]->rep->leader_epoch(), 1u);
  ASSERT_TRUE(nodes[1]->rep->WaitForLeader(10.0));
  ASSERT_TRUE(nodes[2]->rep->WaitForLeader(10.0));
  EXPECT_EQ(nodes[1]->rep->known_leader(), 1u);
  EXPECT_EQ(nodes[2]->rep->known_leader(), 1u);
  EXPECT_FALSE(nodes[1]->rep->is_leader());
  EXPECT_FALSE(nodes[2]->rep->is_leader());
  const auto total_elections = nodes[0]->metrics.Value("replica.elections") +
                               nodes[1]->metrics.Value("replica.elections") +
                               nodes[2]->metrics.Value("replica.elections");
  EXPECT_EQ(total_elections, 1);
  StopGroup(nodes);
}

TEST(ReplicaElection, LeaderKillFailsOverWithSingleEpochBumpAndStateIntact) {
  auto nodes = MakeGroup("failover", 3);
  ASSERT_TRUE(nodes[0]->rep->WaitForLeadership(10.0));

  // Register a worker with the leader, then wait until the mutation has
  // replicated to both standbys.
  coord::CoordClient::Options mopts;
  mopts.coordinator = nodes[0]->wire->endpoint();
  mopts.worker_id = "w1";
  mopts.endpoint = "w:1";
  MetricRegistry client_metrics;
  coord::CoordClient member(&client_metrics, mopts);
  member.Join(10.0);
  EXPECT_EQ(member.generation(), 1u);
  ASSERT_TRUE(PollUntil(10.0, [&] {
    return nodes[1]->rep->applied_index() >= 1 &&
           nodes[2]->rep->applied_index() >= 1;
  }));
  member.Stop();  // single-endpoint client; failover is the next test's job

  nodes[0]->Kill();
  // Replica 2 is now the lowest live id: exactly one epoch bump, and the
  // replicated registry still holds w1 at generation 1.
  ASSERT_TRUE(nodes[1]->rep->WaitForLeadership(10.0));
  EXPECT_EQ(nodes[1]->rep->leader_epoch(), 2u);
  coord::WorkerInfo info;
  ASSERT_TRUE(nodes[1]->rep->registry().Lookup("w1", &info));
  EXPECT_TRUE(info.alive);
  EXPECT_EQ(info.generation, 1u);
  EXPECT_EQ(info.endpoint, "w:1");
  // The new leader re-stamped the inherited lease with its own WALL clock
  // on claiming.  A steady-clock stamp (time since THIS host's boot) would
  // sit hours or days away from wall time and the first sweep would evict
  // every worker the failover was supposed to preserve.
  const double wall_now_s =
      std::chrono::duration<double>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  EXPECT_NEAR(info.last_heartbeat_s, wall_now_s, 120.0);
  // The remaining standby observes the same term and leader.
  ASSERT_TRUE(nodes[2]->rep->WaitForLeader(10.0, /*min_epoch=*/2));
  EXPECT_EQ(nodes[2]->rep->known_leader(), 2u);
  EXPECT_FALSE(nodes[2]->rep->is_leader());
  EXPECT_EQ(nodes[1]->metrics.Value("replica.elections"), 1);
  EXPECT_EQ(nodes[2]->metrics.Value("replica.elections"), 0);

  nodes[0]->rep.reset();  // already dead
  StopGroup(nodes);
}

TEST(ReplicaClient, EndpointFailoverKeepsGenerationContinuity) {
  auto nodes = MakeGroup("clientfo", 3);
  ASSERT_TRUE(nodes[0]->rep->WaitForLeadership(10.0));

  coord::CoordClient::Options mopts;
  mopts.endpoints = {nodes[0]->wire->endpoint(), nodes[1]->wire->endpoint(),
                     nodes[2]->wire->endpoint()};
  mopts.worker_id = "w1";
  mopts.endpoint = "w:1";
  mopts.heartbeat_interval_ms = 25;
  mopts.failover_threshold = 2;
  MetricRegistry client_metrics;
  coord::CoordClient member(&client_metrics, mopts);
  member.Join(10.0);
  EXPECT_EQ(member.generation(), 1u);
  EXPECT_EQ(member.leader_epoch(), 1u);
  ASSERT_TRUE(PollUntil(10.0, [&] {
    return nodes[1]->rep->applied_index() >= 1 &&
           nodes[2]->rep->applied_index() >= 1;
  }));

  nodes[0]->Kill();
  // The client notices dead heartbeats, rotates through the endpoint list
  // (standby redirects included), and re-registers with the new leader
  // under the SAME worker id: generation bumps to 2, no eviction fires.
  ASSERT_TRUE(PollUntil(20.0, [&] { return member.failovers() >= 1; }));
  EXPECT_EQ(member.generation(), 2u);
  EXPECT_EQ(member.evictions(), 0u);
  EXPECT_EQ(member.leader_epoch(), 2u);
  coord::WorkerInfo info;
  ASSERT_TRUE(nodes[1]->rep->registry().Lookup("w1", &info));
  EXPECT_TRUE(info.alive);
  EXPECT_EQ(info.generation, 2u);

  // Heartbeats renew against the new leader: the lease holds.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_EQ(member.failovers(), 1u);
  EXPECT_TRUE(nodes[1]->rep->is_leader());

  member.Stop();
  nodes[0]->rep.reset();
  StopGroup(nodes);
}

TEST(ReplicaFencing, StaleEpochAppendsAreDroppedByStandbys) {
  auto nodes = MakeGroup("fence", 2);
  ASSERT_TRUE(nodes[0]->rep->WaitForLeadership(10.0));
  ASSERT_TRUE(nodes[1]->rep->WaitForLeader(10.0));
  const std::uint64_t applied = nodes[1]->rep->applied_index();

  // A deposed "leader" (epoch 0 < current 1) streams an append to the
  // standby: fenced — not applied, not even at the right index.
  MetricRegistry fake_metrics;
  net::TcpTransport fake(&fake_metrics, nodes[1]->wire->endpoint());
  auto conn = fake.Connect([](net::Connection*, net::Frame) {});
  const LogRecord ghost = RegisterRecord("ghost", "g:1", 1.0);
  net::LogAppendMsg stale;
  stale.epoch = 0;
  stale.index = applied + 1;
  stale.record_type = static_cast<std::uint8_t>(ghost.type);
  stale.record = ghost.EncodePayload();
  conn->Send(stale.ToFrame());
  ASSERT_TRUE(PollUntil(10.0, [&] {
    return nodes[1]->metrics.Value("replica.stale_frames") >= 1;
  }));
  EXPECT_EQ(nodes[1]->rep->applied_index(), applied);
  coord::WorkerInfo info;
  EXPECT_FALSE(nodes[1]->rep->registry().Lookup("ghost", &info));

  // The same append at the CURRENT epoch lands: the fence is epoch-based,
  // not sender-based.
  net::LogAppendMsg current = stale;
  current.epoch = nodes[1]->rep->leader_epoch();
  conn->Send(current.ToFrame());
  ASSERT_TRUE(PollUntil(10.0, [&] {
    return nodes[1]->rep->applied_index() == applied + 1;
  }));
  EXPECT_TRUE(nodes[1]->rep->registry().Lookup("ghost", &info));

  conn->Close();
  fake.Shutdown();
  StopGroup(nodes);
}

TEST(ReplicaAuth, UnauthenticatedPeerFramesAreDropped) {
  // Epoch fencing orders honest replicas; only the shared secret stops a
  // hostile process from injecting registry state or deposing the leader
  // with an arbitrarily high epoch.
  auto nodes = MakeGroup("auth", 2, [](CoordinatorReplica::Options& opts) {
    opts.secret = "s3cret";
  });
  // Votes and the claim carry the secret, so the group still forms.
  ASSERT_TRUE(nodes[0]->rep->WaitForLeadership(10.0));
  ASSERT_TRUE(nodes[1]->rep->WaitForLeader(10.0));
  const std::uint64_t applied = nodes[1]->rep->applied_index();
  const std::uint64_t epoch = nodes[1]->rep->leader_epoch();

  MetricRegistry fake_metrics;
  net::TcpTransport to_standby(&fake_metrics, nodes[1]->wire->endpoint());
  auto standby_conn = to_standby.Connect([](net::Connection*, net::Frame) {});
  net::TcpTransport to_leader(&fake_metrics, nodes[0]->wire->endpoint());
  auto leader_conn = to_leader.Connect([](net::Connection*, net::Frame) {});

  // Registry injection without the secret: a perfectly-formed append at
  // the current epoch and the very next index, dropped anyway.
  const LogRecord ghost = RegisterRecord("ghost", "g:1", 1.0);
  net::LogAppendMsg append;
  append.epoch = epoch;
  append.index = applied + 1;
  append.record_type = static_cast<std::uint8_t>(ghost.type);
  append.record = ghost.EncodePayload();
  standby_conn->Send(append.ToFrame());

  // Depose attempt against the leader: a high-epoch claim with no secret.
  net::LeaderClaimMsg depose;
  depose.replica = 99;
  depose.epoch = epoch + 1000;
  depose.endpoint = "evil:1";
  leader_conn->Send(depose.ToFrame());

  ASSERT_TRUE(PollUntil(10.0, [&] {
    return nodes[1]->metrics.Value("coord.auth_failures") >= 1 &&
           nodes[0]->metrics.Value("coord.auth_failures") >= 1;
  }));
  EXPECT_EQ(nodes[1]->rep->applied_index(), applied);
  coord::WorkerInfo info;
  EXPECT_FALSE(nodes[1]->rep->registry().Lookup("ghost", &info));
  EXPECT_TRUE(nodes[0]->rep->is_leader());
  EXPECT_EQ(nodes[0]->rep->leader_epoch(), epoch);

  // The same append WITH the secret lands: the gate is the auth field.
  append.auth = "s3cret";
  standby_conn->Send(append.ToFrame());
  ASSERT_TRUE(PollUntil(10.0, [&] {
    return nodes[1]->rep->applied_index() == applied + 1;
  }));
  EXPECT_TRUE(nodes[1]->rep->registry().Lookup("ghost", &info));

  standby_conn->Close();
  leader_conn->Close();
  to_standby.Shutdown();
  to_leader.Shutdown();
  StopGroup(nodes);
}

TEST(ReplicaResilience, MalformedAppendRecordsAreDroppedNotFatal) {
  // The outer frame parses clean but the record inside lies: truncated
  // payload bytes, then an unknown record type.  Both must be dropped on
  // the reader thread — DecodePayload throws, and an escaped exception
  // there is std::terminate — with the cumulative ack still reporting the
  // unchanged applied index so the leader knows to re-seed.
  auto nodes = MakeGroup("malformed", 2);
  ASSERT_TRUE(nodes[0]->rep->WaitForLeadership(10.0));
  ASSERT_TRUE(nodes[1]->rep->WaitForLeader(10.0));
  const std::uint64_t applied = nodes[1]->rep->applied_index();
  const std::uint64_t epoch = nodes[1]->rep->leader_epoch();

  MetricRegistry fake_metrics;
  net::TcpTransport fake(&fake_metrics, nodes[1]->wire->endpoint());
  std::atomic<std::uint64_t> acks{0};
  std::atomic<std::uint64_t> last_acked{~0ull};
  auto conn = fake.Connect([&](net::Connection*, net::Frame frame) {
    if (frame.type != net::FrameType::kLogAck) return;
    last_acked = net::LogAckMsg::Parse(frame).index;
    acks.fetch_add(1);
  });

  net::LogAppendMsg truncated;
  truncated.epoch = epoch;
  truncated.index = applied + 1;
  truncated.record_type = static_cast<std::uint8_t>(LogRecordType::kRegister);
  truncated.record = "\x02";  // worker-length field cut short
  conn->Send(truncated.ToFrame());
  ASSERT_TRUE(PollUntil(10.0, [&] { return acks.load() >= 1; }));
  EXPECT_EQ(last_acked.load(), applied);

  net::LogAppendMsg unknown = truncated;
  unknown.record_type = 0x7F;  // not a LogRecordType
  unknown.record.clear();
  conn->Send(unknown.ToFrame());
  ASSERT_TRUE(PollUntil(10.0, [&] { return acks.load() >= 2; }));
  EXPECT_EQ(last_acked.load(), applied);
  EXPECT_EQ(nodes[1]->rep->applied_index(), applied);
  ASSERT_GE(nodes[1]->metrics.Value("replica.stale_frames"), 2);

  // The replica survived both: a well-formed append still applies.
  const LogRecord good = RegisterRecord("w-good", "g:1", 1.0);
  net::LogAppendMsg ok;
  ok.epoch = epoch;
  ok.index = applied + 1;
  ok.record_type = static_cast<std::uint8_t>(good.type);
  ok.record = good.EncodePayload();
  conn->Send(ok.ToFrame());
  ASSERT_TRUE(PollUntil(10.0, [&] {
    return nodes[1]->rep->applied_index() == applied + 1;
  }));
  coord::WorkerInfo info;
  EXPECT_TRUE(nodes[1]->rep->registry().Lookup("w-good", &info));

  conn->Close();
  fake.Shutdown();
  StopGroup(nodes);
}

TEST(ReplicaRecovery, RestartRecoversFromSnapshotPlusLogSuffix) {
  const auto dir = TestDir("recover");
  MetricRegistry metrics;
  auto wire = std::make_unique<net::TcpTransport>(&metrics);
  wire->Bind();
  CoordinatorReplica::Options opts;
  opts.replica_id = 1;
  opts.endpoint = wire->endpoint();
  opts.changelog_dir = dir;
  opts.vote_interval_ms = 10;
  opts.election_timeout_ms = 50;
  opts.lease_s = 30.0;
  opts.snapshot_interval_records = 4;  // force a rotation mid-test
  auto rep = std::make_unique<CoordinatorReplica>(wire.get(), &metrics, opts);
  ASSERT_TRUE(rep->WaitForLeadership(10.0));

  coord::CoordClient::Options mopts;
  mopts.coordinator = wire->endpoint();
  mopts.worker_id = "w1";
  mopts.endpoint = "w:1";
  mopts.heartbeat_interval_ms = 10;
  MetricRegistry client_metrics;
  coord::CoordClient member(&client_metrics, mopts);
  member.Join(10.0);
  // Heartbeats push applied_index across several snapshot intervals.
  ASSERT_TRUE(PollUntil(10.0, [&] { return rep->applied_index() >= 10; }));
  member.Stop();
  ASSERT_GE(metrics.Value("replica.snapshots_written"), 1);

  std::this_thread::sleep_for(std::chrono::milliseconds(50));  // drain
  rep->Stop();
  wire->Shutdown();  // joins reader threads BEFORE the replica dies
  const std::uint64_t applied = rep->applied_index();
  const std::uint64_t epoch = rep->leader_epoch();
  rep.reset();

  // A fresh process on the same changelog dir recovers the exact applied
  // index (snapshot watermark + replayed log suffix), the worker record,
  // and the leadership epoch it had persisted.
  MetricRegistry metrics2;
  net::TcpTransport wire2(&metrics2);
  wire2.Bind();
  opts.endpoint = wire2.endpoint();
  CoordinatorReplica recovered(&wire2, &metrics2, opts);
  EXPECT_EQ(recovered.applied_index(), applied);
  coord::WorkerInfo info;
  ASSERT_TRUE(recovered.registry().Lookup("w1", &info));
  EXPECT_EQ(info.generation, 1u);
  ASSERT_TRUE(recovered.WaitForLeadership(10.0));
  EXPECT_GE(recovered.leader_epoch(), epoch);

  recovered.Stop();
  wire2.Shutdown();
}

// --- Chaos: kill -9 the leader mid-job ---------------------------------------

TEST(ReplicaChaos, LeaderKillMidJobKeepsOutputByteIdentical) {
  // The PR's acceptance property: a 3-replica coordinator loses its leader
  // while a real TCP-shuffled job is running.  The standby takes over with
  // exactly one epoch bump, the worker's CoordClient fails over without an
  // eviction, and the job's output matches the clean in-process run
  // byte-for-byte.
  const auto truth = [] {
    Platform platform({.num_nodes = 3, .block_bytes = 256u << 10});
    ClickStreamOptions gen;
    gen.num_records = 40'000;
    gen.num_users = 5'000;
    GenerateClickStream(platform.dfs(), "clicks", gen);
    (void)platform.Run(PerUserCountJob("clicks", "out", 2),
                       HashOnePassOptions());
    return AsMap(platform.ReadOutput("out", 2));
  }();

  auto nodes = MakeGroup("chaos", 3);
  ASSERT_TRUE(nodes[0]->rep->WaitForLeadership(10.0));

  Platform platform({.num_nodes = 3, .block_bytes = 256u << 10});
  ClickStreamOptions gen;
  gen.num_records = 40'000;
  gen.num_users = 5'000;
  GenerateClickStream(platform.dfs(), "clicks", gen);

  coord::CoordClient::Options mopts;
  mopts.endpoints = {nodes[0]->wire->endpoint(), nodes[1]->wire->endpoint(),
                     nodes[2]->wire->endpoint()};
  mopts.worker_id = "chaos-w";
  mopts.endpoint = "-";
  mopts.heartbeat_interval_ms = 25;
  mopts.failover_threshold = 2;
  coord::CoordClient member(&platform.metrics(), mopts);
  member.Join(10.0);
  ASSERT_EQ(member.generation(), 1u);
  ASSERT_TRUE(PollUntil(10.0, [&] {
    return nodes[1]->rep->applied_index() >= 1 &&
           nodes[2]->rep->applied_index() >= 1;
  }));

  platform.executor().set_cluster_identity("chaos-w", "");
  platform.executor().set_coord_client(&member);

  // Assassin: kill the leader shortly after the job starts moving bytes.
  std::thread assassin([&nodes] {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    nodes[0]->Kill();
  });

  JobOptions options = HashOnePassOptions();
  options.push_chunk_bytes = 4096;  // many frames: the kill lands mid-stream
  net::TcpTransport shuffle_wire(&platform.metrics());
  shuffle_wire.Bind();
  ASSERT_NO_THROW((void)platform.RunWithTransport(
      PerUserCountJob("clicks", "out", 2), options, &shuffle_wire,
      /*shared_fs=*/false));
  assassin.join();
  platform.executor().set_coord_client(nullptr);

  // The failover completes even if the job outran it: the client keeps
  // heartbeating after Run() until it lands on the new leader.
  ASSERT_TRUE(PollUntil(20.0, [&] { return member.failovers() >= 1; }));
  EXPECT_EQ(member.evictions(), 0u);
  EXPECT_EQ(member.generation(), 2u);
  EXPECT_EQ(member.leader_epoch(), 2u);

  // Exactly one epoch bump: replica 2 leads term 2, replica 3 agrees.
  ASSERT_TRUE(nodes[1]->rep->WaitForLeadership(10.0));
  EXPECT_EQ(nodes[1]->rep->leader_epoch(), 2u);
  EXPECT_EQ(nodes[1]->metrics.Value("replica.elections"), 1);
  EXPECT_EQ(nodes[2]->metrics.Value("replica.elections"), 0);
  coord::WorkerInfo info;
  ASSERT_TRUE(nodes[1]->rep->registry().Lookup("chaos-w", &info));
  EXPECT_TRUE(info.alive);

  member.Stop();
  nodes[0]->rep.reset();
  StopGroup(nodes);

  EXPECT_EQ(AsMap(platform.ReadOutput("out", 2)), truth);
}

}  // namespace
}  // namespace opmr
