// MapTask unit tests: the three map-side paths driven directly against a
// single DFS block and a real shuffle service.
#include "engine/map_task.h"

#include <gtest/gtest.h>

#include <map>

#include "engine/aggregators.h"
#include "engine/map_sinks.h"
#include "storage/record_stream.h"

namespace opmr {
namespace {

class MapTaskTest : public ::testing::Test {
 protected:
  MapTaskTest()
      : files_(FileManager::CreateTemp("opmr-maptask")),
        dfs_(&files_, &metrics_, {.block_bytes = 1u << 20, .num_nodes = 1}) {
    env_.dfs = &dfs_;
    env_.files = &files_;
    env_.metrics = &metrics_;
    env_.profiler = &profiler_;
    env_.job_start = &start_;
  }

  BlockInfo LoadBlock(const std::vector<std::string>& records) {
    auto writer = dfs_.Create("in" + std::to_string(file_id_++));
    for (const auto& r : records) writer->Append(r);
    writer->Close();
    const auto blocks =
        dfs_.ListBlocks("in" + std::to_string(file_id_ - 1));
    EXPECT_EQ(blocks.size(), 1u);
    return blocks.front();
  }

  // Runs one map task and returns everything each reducer received.
  std::vector<std::multimap<std::string, std::string>> RunTask(
      const JobSpec& spec, const JobOptions& options,
      const std::vector<std::string>& records) {
    const auto block = LoadBlock(records);
    ShuffleService shuffle(1, spec.num_reducers, &metrics_, 64);
    FileSink sink(0, &files_, &metrics_, &shuffle, spec.num_reducers,
                  options.map_buffer_bytes, false);
    RuntimeEnv env = env_;
    env.shuffle = &shuffle;
    MapTask task(0, spec, options, env, block, &sink);
    last_stats_ = task.Run();
    sink.Publish();
    shuffle.MapTaskDone(0);

    std::vector<std::multimap<std::string, std::string>> per_reducer(
        spec.num_reducers);
    for (int r = 0; r < spec.num_reducers; ++r) {
      ShuffleItem item;
      while (shuffle.NextItem(r, &item)) {
        last_sorted_ = item.sorted;
        RunReader reader(item.path, IoChannel(&metrics_, "t.read"));
        reader.Restrict(item.segment.offset, item.segment.bytes);
        while (reader.Next()) {
          per_reducer[r].emplace(reader.key().ToString(),
                                 reader.value().ToString());
        }
      }
    }
    return per_reducer;
  }

  FileManager files_;
  MetricRegistry metrics_;
  Dfs dfs_;
  PhaseProfiler profiler_;
  WallTimer start_;
  RuntimeEnv env_;
  MapTask::Stats last_stats_;
  bool last_sorted_ = false;
  int file_id_ = 0;
};

JobSpec EchoSpec(int reducers) {
  JobSpec spec;
  spec.name = "echo";
  spec.num_reducers = reducers;
  spec.map = [](Slice record, OutputCollector& out) {
    const auto tab = record.view().find('\t');
    out.Emit(Slice(record.data(), tab),
             Slice(record.data() + tab + 1, record.size() - tab - 1));
  };
  spec.reduce = [](Slice, ValueIterator&, OutputCollector&) {};
  return spec;
}

TEST_F(MapTaskTest, SortPathProducesSortedPartitions) {
  JobOptions options = JobOptions{};  // sort-merge defaults
  const auto spec = EchoSpec(3);
  const auto out = RunTask(spec, options,
                           {"zeta\t1", "alpha\t2", "mid\t3", "alpha\t4"});
  EXPECT_TRUE(last_sorted_);
  EXPECT_EQ(last_stats_.input_records, 4u);
  EXPECT_EQ(last_stats_.output_records, 4u);

  std::size_t total = 0;
  for (int r = 0; r < 3; ++r) {
    std::string prev;
    for (const auto& [k, v] : out[r]) {
      EXPECT_LE(prev, k) << "partition " << r << " unsorted";
      prev = k;
      // Every key must be in the partition the partitioner assigns.
      EXPECT_EQ(PartitionOf(k, 3), static_cast<std::uint32_t>(r));
      ++total;
    }
  }
  EXPECT_EQ(total, 4u);
}

TEST_F(MapTaskTest, SortPathChargesSortCpu) {
  JobOptions options;
  std::vector<std::string> records;
  for (int i = 0; i < 20'000; ++i) {
    records.push_back("key" + std::to_string(i % 500) + "\tv");
  }
  RunTask(EchoSpec(2), options, records);
  EXPECT_GT(profiler_.CpuSeconds("map_sort"), 0.0);
  EXPECT_GT(profiler_.CpuSeconds("map_function"), 0.0);
}

TEST_F(MapTaskTest, HashCombinePathCollapsesDuplicates) {
  JobOptions options;
  options.group_by = GroupBy::kHash;
  JobSpec spec = EchoSpec(2);
  spec.reduce = nullptr;
  spec.aggregator = std::make_shared<SumAggregator>();
  spec.map = [](Slice record, OutputCollector& out) {
    const auto tab = record.view().find('\t');
    out.Emit(Slice(record.data(), tab), EncodeValueU64(1));
  };

  std::vector<std::string> records;
  for (int i = 0; i < 900; ++i) records.push_back("hot\tx");
  records.push_back("cold\tx");
  const auto out = RunTask(spec, options, records);

  // Combined output: exactly one state per distinct key.
  std::map<std::string, std::uint64_t> got;
  for (int r = 0; r < 2; ++r) {
    for (const auto& [k, v] : out[r]) {
      EXPECT_EQ(got.count(k), 0u) << "duplicate combined key";
      got[k] = DecodeU64(v.data());
    }
  }
  EXPECT_EQ(got.at("hot"), 900u);
  EXPECT_EQ(got.at("cold"), 1u);
  EXPECT_FALSE(last_sorted_);
  EXPECT_GT(profiler_.CpuSeconds("map_hash"), 0.0);
  EXPECT_DOUBLE_EQ(profiler_.CpuSeconds("map_sort"), 0.0);
}

TEST_F(MapTaskTest, PartitionOnlyPathStreamsRaw) {
  JobOptions options;
  options.group_by = GroupBy::kHash;
  options.map_side_combine = false;  // partition-only scan
  JobSpec spec = EchoSpec(2);
  spec.reduce = nullptr;
  spec.aggregator = std::make_shared<SumAggregator>();
  spec.map = [](Slice record, OutputCollector& out) {
    const auto tab = record.view().find('\t');
    out.Emit(Slice(record.data(), tab), EncodeValueU64(1));
  };

  std::vector<std::string> records(500, "same\tx");
  const auto out = RunTask(spec, options, records);
  std::size_t total = 0;
  for (const auto& per : out) total += per.size();
  EXPECT_EQ(total, 500u) << "partition-only must not collapse duplicates";
  EXPECT_DOUBLE_EQ(profiler_.CpuSeconds("map_sort"), 0.0);
}

TEST_F(MapTaskTest, TinyBufferSpillsMultipleSortedBatches) {
  JobOptions options;
  options.map_buffer_bytes = 512;  // force many spills
  std::vector<std::string> records;
  for (int i = 0; i < 2'000; ++i) {
    records.push_back("k" + std::to_string(i % 97) + "\tpayload");
  }
  const auto out = RunTask(EchoSpec(2), options, records);
  std::size_t total = 0;
  for (const auto& per : out) total += per.size();
  EXPECT_EQ(total, 2'000u) << "spilled batches must not lose records";
}

TEST_F(MapTaskTest, EmptyMapOutputIsFine) {
  JobSpec spec = EchoSpec(2);
  spec.map = [](Slice, OutputCollector&) {};  // emits nothing
  const auto out = RunTask(spec, JobOptions{}, {"a\t1", "b\t2"});
  EXPECT_EQ(last_stats_.input_records, 2u);
  EXPECT_EQ(last_stats_.output_records, 0u);
  for (const auto& per : out) EXPECT_TRUE(per.empty());
}

TEST_F(MapTaskTest, OneRecordManyEmits) {
  JobSpec spec = EchoSpec(2);
  spec.map = [](Slice record, OutputCollector& out) {
    for (int i = 0; i < 50; ++i) {
      out.Emit("k" + std::to_string(i), record);
    }
  };
  const auto out = RunTask(spec, JobOptions{}, {"only"});
  std::size_t total = 0;
  for (const auto& per : out) total += per.size();
  EXPECT_EQ(total, 50u);
  EXPECT_EQ(last_stats_.output_records, 50u);
}

}  // namespace
}  // namespace opmr
