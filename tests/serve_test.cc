// Serving plane (src/serve): versioned snapshot publication, replica
// views, bounded staleness, per-tenant rate limits, and the query RPC —
// the "early answers you can actually query" surface of the one-pass
// platform.
//
// The pinned properties:
//   * versions are monotonic and the view only moves forward;
//   * two frontends that applied the same version serve byte-identical
//     answers (views are pure functions of the image bytes);
//   * a query never silently reads past its staleness budget — the lag ==
//     budget boundary is allowed, budget+1 is rejected;
//   * one hot tenant cannot starve another (token buckets are per-tenant);
//   * a dropped publisher link during fetch heals without ever applying a
//     torn view;
//   * serve images are garbage-collected with their job, and frontend
//     registrations never satisfy the scheduler's placement gate.
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "checkpoint/checkpoint.h"
#include "common/slice.h"
#include "coord/registry.h"
#include "core/opmr.h"
#include "engine/aggregators.h"
#include "fault/fault.h"
#include "metrics/counters.h"
#include "net/loopback.h"
#include "net/tcp.h"
#include "net/wire.h"
#include "sched/scheduler.h"
#include "serve/frontend.h"
#include "serve/publisher.h"
#include "serve/query_client.h"
#include "stream/streaming_job.h"
#include "workloads/clickstream.h"
#include "workloads/streaming_queries.h"
#include "workloads/tasks.h"

namespace opmr {
namespace {

namespace fs = std::filesystem;

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("opmr_serve_test_" +
            std::to_string(::testing::UnitTest::GetInstance()
                               ->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  // An image whose states are u64 sums (8-byte aggregator states).
  static CheckpointImage SumImage(
      std::uint64_t watermark,
      const std::vector<std::pair<std::string, std::uint64_t>>& counts) {
    CheckpointImage image;
    image.watermark = watermark;
    for (const auto& [key, count] : counts) {
      CheckpointImage::TableEntry entry;
      entry.key = key;
      AppendU64(entry.state, count);
      image.entries.push_back(std::move(entry));
    }
    return image;
  }

  static std::shared_ptr<Aggregator> Sum() {
    return std::make_shared<SumAggregator>();
  }

  serve::FrontendOptions SumFrontendOptions(const std::string& job) {
    serve::FrontendOptions options;
    options.job = job;
    options.aggregator = Sum();
    return options;
  }

  fs::path dir_;
  MetricRegistry metrics_;
};

// Polls `pred` until it holds or ~20s elapse (fetches are asynchronous: the
// frontend's fetcher thread issues them outside the frame handlers; the
// bound leaves headroom for TSan's slowdown on a loaded host).
template <typename Pred>
bool WaitUntil(Pred pred) {
  for (int i = 0; i < 2000; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

ClickStreamOptions SmallClicks(std::uint64_t records) {
  ClickStreamOptions gen;
  gen.num_records = records;
  gen.num_users = 400;
  gen.num_urls = 200;
  return gen;
}

// --- publisher ---------------------------------------------------------------

TEST_F(ServeTest, PublisherAssignsMonotonicVersionsAndPrunesPastRetention) {
  net::LoopbackTransport wire(&metrics_);
  serve::PublisherOptions popts;
  popts.job = "clicks";
  popts.dir = dir_;
  popts.retain = 3;
  serve::SnapshotPublisher publisher(&wire, &metrics_, popts);

  std::uint64_t prev = 0;
  for (int i = 1; i <= 6; ++i) {
    const auto version = publisher.Publish(
        SumImage(/*watermark=*/i * 100ull, {{"u1", std::uint64_t(i)}}));
    EXPECT_GT(version, prev) << "versions must be strictly monotonic";
    prev = version;
  }
  EXPECT_EQ(publisher.published(), 6u);
  EXPECT_EQ(publisher.latest_version(), prev);

  // Subscribe: the greeting announces the latest version.  Fetching a
  // pruned version yields an empty reply (gone, not an error); the latest
  // version round-trips with a matching CRC.
  std::vector<net::Frame> got;
  auto conn = wire.Connect([&](net::Connection*, net::Frame frame) {
    got.push_back(std::move(frame));
  });
  net::HelloMsg hello;
  hello.job = "clicks";
  hello.worker = "probe";
  conn->Send(hello.ToFrame());
  ASSERT_EQ(got.size(), 1u);
  const auto greeting = net::SnapshotAnnounceMsg::Parse(got[0]);
  EXPECT_EQ(greeting.version, prev);
  EXPECT_EQ(greeting.watermark, 600u);

  net::SnapshotFetchMsg fetch;
  fetch.job = "clicks";
  fetch.version = 1;  // published 6, retain 3: version 1 is pruned
  conn->Send(fetch.ToFrame());
  fetch.version = prev;
  conn->Send(fetch.ToFrame());
  ASSERT_EQ(got.size(), 3u);
  const auto pruned = net::SnapshotFetchMsg::Parse(got[1]);
  EXPECT_TRUE(pruned.reply);
  EXPECT_TRUE(pruned.bytes.empty());
  const auto latest = net::SnapshotFetchMsg::Parse(got[2]);
  ASSERT_FALSE(latest.bytes.empty());
  EXPECT_EQ(Crc32(latest.bytes.data(), latest.bytes.size()), latest.crc);
  EXPECT_EQ(ParseCheckpointImage(latest.bytes).watermark, 600u);
}

TEST_F(ServeTest, PublisherRejectsBadSecretAndAcceptsGoodOne) {
  net::LoopbackTransport wire(&metrics_);
  serve::PublisherOptions popts;
  popts.job = "clicks";
  popts.dir = dir_;
  popts.secret = "hunter2";
  serve::SnapshotPublisher publisher(&wire, &metrics_, popts);
  publisher.Publish(SumImage(10, {{"k", 1}}));

  std::vector<net::Frame> got;
  auto conn = wire.Connect([&](net::Connection*, net::Frame frame) {
    got.push_back(std::move(frame));
  });
  net::HelloMsg hello;
  hello.job = "clicks";
  hello.worker = "probe";
  hello.auth = "wrong";
  conn->Send(hello.ToFrame());
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].type, net::FrameType::kAbort);
  EXPECT_EQ(metrics_.Value("serve.auth_rejects"), 1);
  EXPECT_EQ(publisher.subscribers(), 0u);

  hello.auth = "hunter2";
  conn->Send(hello.ToFrame());
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[1].type, net::FrameType::kSnapshotAnnounce);
  EXPECT_EQ(publisher.subscribers(), 1u);
}

// --- replica views -----------------------------------------------------------

TEST_F(ServeTest, TwoFrontendsServeByteIdenticalViews) {
  net::LoopbackTransport pub_wire(&metrics_);
  serve::PublisherOptions popts;
  popts.job = "clicks";
  popts.dir = dir_;
  serve::SnapshotPublisher publisher(&pub_wire, &metrics_, popts);

  net::LoopbackTransport server_a(&metrics_);
  net::LoopbackTransport server_b(&metrics_);
  serve::SnapshotFrontend a(&server_a, &pub_wire, &metrics_,
                            SumFrontendOptions("clicks"));
  serve::SnapshotFrontend b(&server_b, &pub_wire, &metrics_,
                            SumFrontendOptions("clicks"));

  // Duplicate key across "workers" in one image: replicas must agree on
  // the merged value, not on whichever copy happened to arrive first.
  auto image = SumImage(500, {{"u1", 7}, {"u2", 3}});
  image.entries.push_back({"u1", std::string(), false});
  AppendU64(image.entries.back().state, 5);
  const auto version = publisher.Publish(std::move(image));

  ASSERT_TRUE(a.WaitForVersion(version, std::chrono::seconds(5)));
  ASSERT_TRUE(b.WaitForVersion(version, std::chrono::seconds(5)));
  EXPECT_EQ(a.serving_version(), b.serving_version());
  EXPECT_EQ(a.serving_watermark(), 500u);
  const auto rows_a = a.ScanAll();
  EXPECT_EQ(rows_a, b.ScanAll()) << "replicas must be byte-identical";
  ASSERT_EQ(rows_a.size(), 2u);
  EXPECT_EQ(rows_a[0].first, "u1");
  EXPECT_EQ(DecodeU64(rows_a[0].second.data()), 12u);  // 7 + 5 merged

  // And the query surface agrees too.
  net::QueryMsg top;
  top.op = net::QueryOp::kTopK;
  top.limit = 2;
  const auto top_a = a.Execute(top);
  const auto top_b = b.Execute(top);
  EXPECT_EQ(top_a.rows, top_b.rows);
  ASSERT_EQ(top_a.rows.size(), 2u);
  EXPECT_EQ(top_a.rows[0].first, "u1");  // 12 > 3
}

TEST_F(ServeTest, ViewOnlyMovesForwardAcrossVersions) {
  net::LoopbackTransport pub_wire(&metrics_);
  serve::PublisherOptions popts;
  popts.job = "clicks";
  popts.dir = dir_;
  serve::SnapshotPublisher publisher(&pub_wire, &metrics_, popts);

  net::LoopbackTransport server(&metrics_);
  serve::SnapshotFrontend frontend(&server, &pub_wire, &metrics_,
                                   SumFrontendOptions("clicks"));
  const auto v1 = publisher.Publish(SumImage(100, {{"u1", 1}}));
  const auto v2 = publisher.Publish(SumImage(200, {{"u1", 2}}));
  EXPECT_GT(v2, v1);
  ASSERT_TRUE(frontend.WaitForVersion(v2, std::chrono::seconds(5)));
  EXPECT_EQ(frontend.serving_version(), v2);
  EXPECT_EQ(frontend.serving_watermark(), 200u);

  // A stale fetch reply for v1 arriving now must not roll the view back.
  // (Simulated by re-announcing nothing: serving_version stays v2 and the
  // row reflects the v2 state.)
  net::QueryMsg point;
  point.op = net::QueryOp::kPoint;
  point.key = "u1";
  const auto result = frontend.Execute(point);
  ASSERT_EQ(result.status, net::QueryStatus::kOk);
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(DecodeU64(result.rows[0].second.data()), 2u);
}

// --- bounded staleness -------------------------------------------------------

TEST_F(ServeTest, StalenessRejectionAtTheExactBudgetBoundary) {
  net::LoopbackTransport pub_wire(&metrics_);
  serve::PublisherOptions popts;
  popts.job = "clicks";
  popts.dir = dir_;
  serve::SnapshotPublisher publisher(&pub_wire, &metrics_, popts);

  net::LoopbackTransport server(&metrics_);
  serve::SnapshotFrontend frontend(&server, &pub_wire, &metrics_,
                                   SumFrontendOptions("clicks"));
  const auto v1 = publisher.Publish(SumImage(100, {{"u1", 1}}));
  ASSERT_TRUE(frontend.WaitForVersion(v1, std::chrono::seconds(5)));

  // Freeze the replica at watermark 100, then let the job advance to 150:
  // announced lag is exactly 50.
  frontend.PauseFetch(true);
  publisher.Publish(SumImage(150, {{"u1", 2}}));
  EXPECT_EQ(frontend.announced_watermark(), 150u);
  EXPECT_EQ(frontend.serving_watermark(), 100u);

  net::QueryMsg point;
  point.op = net::QueryOp::kPoint;
  point.key = "u1";
  point.staleness_budget = 50;  // lag == budget: still within bounds
  auto result = frontend.Execute(point);
  EXPECT_EQ(result.status, net::QueryStatus::kOk);
  EXPECT_EQ(result.lag, 50u);

  point.staleness_budget = 49;  // lag == budget + 1: must be rejected
  result = frontend.Execute(point);
  EXPECT_EQ(result.status, net::QueryStatus::kStale);
  EXPECT_NE(result.error.find("staleness budget"), std::string::npos);
  EXPECT_EQ(metrics_.Value("serve.stale_rejects"), 1);

  // Unpausing fetches the missed version and the same query succeeds.
  frontend.PauseFetch(false);
  ASSERT_TRUE(frontend.WaitForVersion(2, std::chrono::seconds(5)));
  result = frontend.Execute(point);
  EXPECT_EQ(result.status, net::QueryStatus::kOk);
  EXPECT_EQ(result.lag, 0u);
}

TEST_F(ServeTest, TenantPolicyBoundsTheQueryBudgetFromAbove) {
  net::LoopbackTransport pub_wire(&metrics_);
  serve::PublisherOptions popts;
  popts.job = "clicks";
  popts.dir = dir_;
  serve::SnapshotPublisher publisher(&pub_wire, &metrics_, popts);

  net::LoopbackTransport server(&metrics_);
  auto options = SumFrontendOptions("clicks");
  options.tenants["strict"].staleness_budget = 10;
  serve::SnapshotFrontend frontend(&server, &pub_wire, &metrics_,
                                   std::move(options));
  const auto v1 = publisher.Publish(SumImage(100, {{"u1", 1}}));
  ASSERT_TRUE(frontend.WaitForVersion(v1, std::chrono::seconds(5)));
  frontend.PauseFetch(true);
  publisher.Publish(SumImage(130, {{"u1", 2}}));

  // lag 30.  The strict tenant's policy (10) caps even a generous query
  // budget; an unconfigured tenant falls back to the unlimited default.
  net::QueryMsg point;
  point.op = net::QueryOp::kPoint;
  point.key = "u1";
  point.tenant = "strict";
  point.staleness_budget = 1000;
  EXPECT_EQ(frontend.Execute(point).status, net::QueryStatus::kStale);
  point.tenant = "lenient";
  EXPECT_EQ(frontend.Execute(point).status, net::QueryStatus::kOk);
}

// --- rate limiting -----------------------------------------------------------

TEST_F(ServeTest, TokenBucketsKeepTenantsFairUnderAHotNeighbor) {
  net::LoopbackTransport pub_wire(&metrics_);
  serve::PublisherOptions popts;
  popts.job = "clicks";
  popts.dir = dir_;
  serve::SnapshotPublisher publisher(&pub_wire, &metrics_, popts);

  double now = 1000.0;  // injected clock: the test owns time
  net::LoopbackTransport server(&metrics_);
  auto options = SumFrontendOptions("clicks");
  options.default_policy.rate_per_s = 5.0;
  options.default_policy.burst = 5.0;
  options.clock = [&now] { return now; };
  serve::SnapshotFrontend frontend(&server, &pub_wire, &metrics_,
                                   std::move(options));
  const auto v1 = publisher.Publish(SumImage(100, {{"u1", 1}}));
  ASSERT_TRUE(frontend.WaitForVersion(v1, std::chrono::seconds(5)));

  const auto burst_of = [&](const std::string& tenant, int queries) {
    int ok = 0;
    for (int i = 0; i < queries; ++i) {
      net::QueryMsg point;
      point.op = net::QueryOp::kPoint;
      point.key = "u1";
      point.tenant = tenant;
      if (frontend.Execute(point).status == net::QueryStatus::kOk) ++ok;
    }
    return ok;
  };

  // The hot tenant burns its whole burst and then some; the quiet tenant's
  // bucket is untouched by the neighbor's pressure.
  EXPECT_EQ(burst_of("hot", 20), 5);
  EXPECT_EQ(burst_of("quiet", 5), 5);
  EXPECT_EQ(metrics_.Value("serve.throttled"), 15);

  // Refill is proportional to elapsed time and capped at the burst.
  now += 0.5;  // 0.5s * 5/s = 2.5 tokens -> 2 whole queries
  EXPECT_EQ(burst_of("hot", 20), 2);
  now += 100.0;
  EXPECT_EQ(burst_of("hot", 20), 5) << "burst caps the refill";
}

// --- query RPC ---------------------------------------------------------------

TEST_F(ServeTest, QueryClientRoundTripsPointTopKAndScanOverTheWire) {
  net::LoopbackTransport pub_wire(&metrics_);
  serve::PublisherOptions popts;
  popts.job = "clicks";
  popts.dir = dir_;
  serve::SnapshotPublisher publisher(&pub_wire, &metrics_, popts);

  net::LoopbackTransport server(&metrics_);
  serve::SnapshotFrontend frontend(&server, &pub_wire, &metrics_,
                                   SumFrontendOptions("clicks"));
  const auto v1 = publisher.Publish(
      SumImage(400, {{"alpha", 3}, {"beta", 9}, {"gamma", 5}, {"delta", 1}}));
  ASSERT_TRUE(frontend.WaitForVersion(v1, std::chrono::seconds(5)));

  serve::QueryClient client(&server, "tenant-1");
  const auto point = client.Point("beta");
  ASSERT_EQ(point.status, net::QueryStatus::kOk);
  ASSERT_EQ(point.rows.size(), 1u);
  EXPECT_EQ(DecodeU64(point.rows[0].second.data()), 9u);
  EXPECT_EQ(point.version, v1);
  EXPECT_EQ(point.watermark, 400u);

  EXPECT_EQ(client.Point("nope").status, net::QueryStatus::kNotFound);

  const auto top = client.TopK(2);
  ASSERT_EQ(top.rows.size(), 2u);
  EXPECT_EQ(top.rows[0].first, "beta");   // 9
  EXPECT_EQ(top.rows[1].first, "gamma");  // 5

  const auto scan = client.Scan("alpha", "delta\xff", 10);
  ASSERT_EQ(scan.status, net::QueryStatus::kOk);
  ASSERT_EQ(scan.rows.size(), 3u);  // alpha, beta, delta; gamma sorts past
  EXPECT_EQ(scan.rows[0].first, "alpha");
  EXPECT_EQ(scan.rows[1].first, "beta");
  EXPECT_EQ(scan.rows[2].first, "delta");

  // Malformed asks surface as kBadRequest, not silence.
  net::QueryMsg empty_point;
  empty_point.op = net::QueryOp::kPoint;
  const auto bad = client.Query(std::move(empty_point));
  EXPECT_EQ(bad.status, net::QueryStatus::kBadRequest);
  EXPECT_NE(bad.error.find("requires a key"), std::string::npos);
}

// --- fault tolerance ---------------------------------------------------------

TEST_F(ServeTest, ConnDropDuringFetchHealsWithoutServingATornView) {
  // Over real sockets, tear the publisher link down mid-conversation (the
  // 2nd frame dies before any byte reaches the wire).  The reconnect
  // preamble re-subscribes, the greeting re-announces, and the replica
  // converges on exactly the published state — never a torn one.
  MetricRegistry fault_metrics;
  FaultInjector injector(FaultPlan::Parse("seed=7;conn_drop:record=2"),
                         &fault_metrics);
  net::SetNetFaultHook(&injector);

  net::TcpTransport pub_wire(&metrics_);
  pub_wire.Bind();
  serve::PublisherOptions popts;
  popts.job = "clicks";
  popts.dir = dir_;
  serve::SnapshotPublisher publisher(&pub_wire, &metrics_, popts);
  const auto v1 =
      publisher.Publish(SumImage(250, {{"u1", 4}, {"u2", 8}}));

  net::TcpTransport server(&metrics_);
  server.Bind();
  net::TcpTransport link(&metrics_, pub_wire.endpoint());
  serve::SnapshotFrontend frontend(&server, &link, &metrics_,
                                   SumFrontendOptions("clicks"));
  const bool applied = frontend.WaitForVersion(v1, std::chrono::seconds(10));
  net::SetNetFaultHook(nullptr);
  ASSERT_TRUE(applied);

  EXPECT_GE(fault_metrics.Value("faults.injected"), 1)
      << "the drop must actually have fired";
  EXPECT_EQ(metrics_.Value("serve.fetch_corrupt"), 0)
      << "a healed link must never surface a torn image";
  const auto rows = frontend.ScanAll();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(DecodeU64(rows[0].second.data()), 4u);
  EXPECT_EQ(DecodeU64(rows[1].second.data()), 8u);
  link.Shutdown();
  server.Shutdown();
  pub_wire.Shutdown();
}

TEST_F(ServeTest, CorruptFetchBytesAreCountedAndNeverApplied) {
  // A byzantine publisher: announces a version, then serves fetches whose
  // bytes fail the CRC (first) or fail to parse (second).  The replica
  // must count both and keep serving nothing rather than a torn view.
  net::LoopbackTransport pub_wire(&metrics_);
  const std::string good = SerializeCheckpointImage(SumImage(999, {{"x", 1}}));
  std::atomic<int> fetches{0};
  pub_wire.Listen([&](net::Connection* from, net::Frame frame) {
    if (frame.type == net::FrameType::kHello) {
      net::SnapshotAnnounceMsg announce;
      announce.job = "clicks";
      announce.version = 1;
      announce.watermark = 999;
      announce.bytes = good.size();
      announce.crc = Crc32(good.data(), good.size());
      from->Send(announce.ToFrame());
      return;
    }
    if (frame.type != net::FrameType::kSnapshotFetch) return;
    net::SnapshotFetchMsg reply;
    reply.job = "clicks";
    reply.version = 1;
    reply.reply = true;
    if (++fetches == 1) {
      reply.bytes = good;
      reply.crc = Crc32(good.data(), good.size()) ^ 0xdeadbeef;  // flipped
    } else {
      reply.bytes = "definitely not an image";
      reply.crc = Crc32(reply.bytes.data(), reply.bytes.size());
    }
    from->Send(reply.ToFrame());
  });

  net::LoopbackTransport server(&metrics_);
  serve::SnapshotFrontend frontend(&server, &pub_wire, &metrics_,
                                   SumFrontendOptions("clicks"));
  // The subscribe greeting triggers fetch #1 (bad CRC).  Nothing applied.
  ASSERT_TRUE(WaitUntil(
      [&] { return metrics_.Value("serve.fetch_corrupt") >= 1; }));
  EXPECT_EQ(fetches.load(), 1);
  EXPECT_EQ(frontend.serving_version(), 0u);

  // A pause/unpause cycle re-arms the fetcher for the announced-but-
  // unapplied version: fetch #2 (unparseable payload with a valid CRC).
  // Still nothing applied.
  frontend.PauseFetch(true);
  frontend.PauseFetch(false);
  ASSERT_TRUE(WaitUntil(
      [&] { return metrics_.Value("serve.fetch_corrupt") >= 2; }));
  EXPECT_EQ(fetches.load(), 2);
  EXPECT_EQ(frontend.serving_version(), 0u);
  EXPECT_TRUE(frontend.ScanAll().empty());
}

// --- GC + scheduler integration ---------------------------------------------

TEST_F(ServeTest, ServeImagesAreSweptWithTheirJob) {
  net::LoopbackTransport wire(&metrics_);
  serve::PublisherOptions popts;
  popts.job = "gc job";
  popts.dir = dir_;
  popts.retain = 2;
  serve::SnapshotPublisher publisher(&wire, &metrics_, popts);
  publisher.Publish(SumImage(10, {{"k", 1}}));
  publisher.Publish(SumImage(20, {{"k", 2}}));

  int images = 0;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (entry.path().extension() == ".ckpt") ++images;
  }
  EXPECT_EQ(images, 2) << "retained serve images must be on disk";

  // Job-completion GC by the BASE job name reclaims the serve images too.
  EXPECT_EQ(CheckpointManager::SweepFinishedJobs(dir_, "gc job"), 2);
  for (const auto& entry : fs::directory_iterator(dir_)) {
    EXPECT_NE(entry.path().extension(), ".ckpt")
        << "stale serve image " << entry.path();
  }
}

TEST_F(ServeTest, FrontendRegistrationsNeverSatisfyThePlacementGate) {
  Platform platform({.num_nodes = 2, .block_bytes = 256u << 10});
  GenerateClickStream(platform.dfs(), "clicks", SmallClicks(20'000));

  coord::WorkerRegistry registry;
  (void)registry.Register("replica-1", "f:1", net::WireRole::kFrontend, 0.0);
  (void)registry.Register("replica-2", "f:2", net::WireRole::kFrontend, 0.0);
  sched::SchedulerOptions sopts;
  sopts.registry = &registry;
  sched::JobScheduler scheduler(&platform.dfs(), &platform.files(), sopts);

  sched::JobRequest request;
  request.id = "gated";
  request.spec = PerUserCountJob("clicks", "gated.out", 2);
  request.options = HashOnePassOptions();
  (void)scheduler.Submit(std::move(request));

  // Two live frontends are zero job slots: the job must defer, and the
  // deferral is attributed to the frontend-only membership.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_EQ(scheduler.stats().completed, 0);
  EXPECT_GE(scheduler.stats().placement_deferrals, 1);
  EXPECT_GE(scheduler.stats().frontend_only_deferrals, 1);

  (void)registry.Register("map-0", "-", net::WireRole::kMap, 0.0);
  (void)registry.Register("reduce-0", "r:1", net::WireRole::kReduce, 0.0);
  const auto reports = scheduler.Drain();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_FALSE(reports[0].failed) << reports[0].error;
}

// --- end to end: a live streaming job, queried mid-run -----------------------

TEST_F(ServeTest, LiveSessionizationIsQueryableMidJobFromTwoReplicas) {
  Platform platform({.num_nodes = 2, .block_bytes = 256u << 10});
  GenerateClickStream(platform.dfs(), "clicks", SmallClicks(30'000));

  net::LoopbackTransport pub_wire(&metrics_);
  serve::PublisherOptions popts;
  popts.job = "sessionization";
  popts.dir = dir_;
  serve::SnapshotPublisher publisher(&pub_wire, &metrics_, popts);

  StreamingOptions sopts;
  sopts.snapshot_interval_records = 10'000;
  sopts.publish_snapshot = [&publisher](CheckpointImage image) {
    publisher.Publish(std::move(image));
  };
  StreamingJob job(StreamingQueryByName("sessionization"), sopts, 3);

  net::LoopbackTransport server_a(&metrics_);
  net::LoopbackTransport server_b(&metrics_);
  serve::FrontendOptions fopts;
  fopts.job = "sessionization";
  fopts.aggregator = StreamingQueryByName("sessionization").aggregator;
  serve::SnapshotFrontend a(&server_a, &pub_wire, &metrics_, fopts);
  serve::SnapshotFrontend b(&server_b, &pub_wire, &metrics_, fopts);

  std::vector<std::string> records;
  for (const auto& block : platform.dfs().ListBlocks("clicks")) {
    auto reader = platform.dfs().OpenBlock(block);
    Slice record;
    while (reader->Next(&record)) {
      records.emplace_back(record.data(), record.size());
    }
  }
  ASSERT_GE(records.size(), 30'000u);

  // Phase 1: ingest past the first snapshot interval, then ask both
  // replicas mid-job.  Fetches are asynchronous (a dedicated fetcher
  // thread issues them), so wait for version 1 to land before asking.
  for (std::size_t i = 0; i < 10'000; ++i) job.Ingest(records[i]);
  ASSERT_GE(publisher.published(), 1u);
  ASSERT_TRUE(a.WaitForVersion(1, std::chrono::seconds(5)));
  ASSERT_TRUE(b.WaitForVersion(1, std::chrono::seconds(5)));
  EXPECT_EQ(a.serving_watermark(), 10'000u)
      << "the mid-job answer is current to the snapshot watermark";
  const auto mid_a = a.ScanAll();
  EXPECT_EQ(mid_a, b.ScanAll()) << "replicas must agree mid-job";
  EXPECT_GT(mid_a.size(), 0u);

  serve::QueryClient client_a(&server_a, "t");
  serve::QueryClient client_b(&server_b, "t");
  const auto& probe_user = mid_a[mid_a.size() / 2].first;
  const auto ans_a = client_a.Point(probe_user);
  const auto ans_b = client_b.Point(probe_user);
  ASSERT_EQ(ans_a.status, net::QueryStatus::kOk);
  EXPECT_EQ(ans_a.rows, ans_b.rows);
  EXPECT_EQ(ans_a.watermark, 10'000u);

  // Phase 2: finish the stream, publish the final image, and check the
  // replicas converge on exactly the job's own final answers.
  for (std::size_t i = 10'000; i < records.size(); ++i) {
    job.Ingest(records[i]);
  }
  const auto final_version = publisher.Publish(job.CollectSnapshot());
  ASSERT_TRUE(a.WaitForVersion(final_version, std::chrono::seconds(5)));
  ASSERT_TRUE(b.WaitForVersion(final_version, std::chrono::seconds(5)));
  EXPECT_EQ(a.serving_watermark(), records.size());

  const auto truth = job.Finish();
  EXPECT_EQ(a.ScanAll(), truth)
      << "the served view must equal the job's exact final answers";
  EXPECT_EQ(b.ScanAll(), truth);
}

}  // namespace
}  // namespace opmr
