#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "metrics/counters.h"
#include "metrics/phase_profiler.h"
#include "metrics/stopwatch.h"
#include "metrics/timeline.h"
#include "metrics/timeseries.h"

namespace opmr {
namespace {

TEST(Counters, GetReturnsStablePointer) {
  MetricRegistry registry;
  Counter* a = registry.Get("x");
  Counter* b = registry.Get("x");
  EXPECT_EQ(a, b);
  a->Add(5);
  EXPECT_EQ(registry.Value("x"), 5);
}

TEST(Counters, SnapshotContainsAllCounters) {
  MetricRegistry registry;
  registry.Get("a")->Add(1);
  registry.Get("b")->Add(2);
  const auto snap = registry.Snapshot();
  EXPECT_EQ(snap.at("a"), 1);
  EXPECT_EQ(snap.at("b"), 2);
  EXPECT_EQ(registry.Value("absent"), 0);
}

TEST(Counters, ConcurrentIncrementsAreLossless) {
  MetricRegistry registry;
  Counter* c = registry.Get("hot");
  constexpr int kThreads = 8;
  constexpr int kIncrements = 50'000;
  {
    std::vector<std::jthread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([c] {
        for (int i = 0; i < kIncrements; ++i) c->Increment();
      });
    }
  }
  EXPECT_EQ(c->value(), kThreads * kIncrements);
}

TEST(Counters, ResetAllZeroes) {
  MetricRegistry registry;
  registry.Get("a")->Add(9);
  registry.ResetAll();
  EXPECT_EQ(registry.Value("a"), 0);
}

TEST(Stopwatch, WallTimerAdvances) {
  WallTimer t;
  volatile double sink = 0;
  for (int i = 0; i < 100'000; ++i) sink += i;
  EXPECT_GT(t.Nanos(), 0);
}

TEST(Stopwatch, ThreadCpuTimerCountsOwnWorkOnly) {
  // Busy thread accumulates CPU; a sleeping thread barely does.
  ThreadCpuTimer busy;
  volatile std::uint64_t x = 1;
  for (int i = 0; i < 2'000'000; ++i) x = x * 1664525 + 1013904223;
  const auto busy_ns = busy.Nanos();
  EXPECT_GT(busy_ns, 100'000);  // definitely did work

  ThreadCpuTimer idle;
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_LT(idle.Nanos(), busy_ns);
}

TEST(PhaseProfiler, AccumulatesPerPhase) {
  PhaseProfiler profiler;
  profiler.AddCpuNanos("map", 1'000'000);
  profiler.AddCpuNanos("map", 2'000'000);
  profiler.AddCpuNanos("sort", 500'000);
  EXPECT_DOUBLE_EQ(profiler.CpuSeconds("map"), 0.003);
  EXPECT_DOUBLE_EQ(profiler.CpuSeconds("sort"), 0.0005);
  EXPECT_DOUBLE_EQ(profiler.CpuSeconds("absent"), 0.0);
  EXPECT_DOUBLE_EQ(profiler.TotalCpuSeconds(), 0.0035);
}

TEST(PhaseProfiler, PhaseScopeChargesOnExit) {
  PhaseProfiler profiler;
  {
    PhaseScope scope(&profiler, "work");
    volatile std::uint64_t x = 1;
    for (int i = 0; i < 1'000'000; ++i) x += i;
  }
  EXPECT_GT(profiler.CpuSeconds("work"), 0.0);
}

TEST(PhaseProfiler, StopIsIdempotent) {
  PhaseProfiler profiler;
  PhaseScope scope(&profiler, "once");
  scope.Stop();
  const double after_first = profiler.CpuSeconds("once");
  scope.Stop();
  EXPECT_DOUBLE_EQ(profiler.CpuSeconds("once"), after_first);
}

TEST(Timeline, ActiveAtCountsOverlaps) {
  TimelineRecorder rec;
  rec.Record(TaskKind::kMap, 0.0, 10.0);
  rec.Record(TaskKind::kMap, 5.0, 15.0);
  rec.Record(TaskKind::kReduce, 8.0, 20.0);
  EXPECT_EQ(rec.ActiveAt(TaskKind::kMap, 7.0), 2);
  EXPECT_EQ(rec.ActiveAt(TaskKind::kMap, 12.0), 1);
  EXPECT_EQ(rec.ActiveAt(TaskKind::kMap, 19.0), 0);
  EXPECT_EQ(rec.ActiveAt(TaskKind::kReduce, 12.0), 1);
  EXPECT_DOUBLE_EQ(rec.EndTime(), 20.0);
}

TEST(Timeline, SampleActiveHasFourKinds) {
  TimelineRecorder rec;
  rec.Record(TaskKind::kMerge, 0.0, 10.0);
  const auto series = rec.SampleActive(20);
  ASSERT_EQ(series.size(), 4u);
  EXPECT_EQ(series[static_cast<int>(TaskKind::kMerge)][0], 1);
  EXPECT_EQ(series[static_cast<int>(TaskKind::kMap)][0], 0);
}

TEST(Timeline, KindNames) {
  EXPECT_STREQ(TaskKindName(TaskKind::kMap), "map");
  EXPECT_STREQ(TaskKindName(TaskKind::kShuffle), "shuffle");
  EXPECT_STREQ(TaskKindName(TaskKind::kMerge), "merge");
  EXPECT_STREQ(TaskKindName(TaskKind::kReduce), "reduce");
}

TEST(TimeSeries, MeanInWindow) {
  TimeSeries series("s");
  series.Append(0, 1.0);
  series.Append(1, 3.0);
  series.Append(2, 100.0);
  EXPECT_DOUBLE_EQ(series.MeanIn(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(series.MeanIn(0, 3), 104.0 / 3);
  EXPECT_DOUBLE_EQ(series.MeanIn(5, 9), 0.0);
  EXPECT_DOUBLE_EQ(series.MaxValue(), 100.0);
}

TEST(TimeSeries, AsciiPlotRendersSamples) {
  TimeSeries series("ramp");
  for (int i = 0; i <= 100; ++i) series.Append(i, i / 100.0);
  const std::string plot = AsciiPlot(series, 40, 8, 1.0);
  EXPECT_NE(plot.find("ramp"), std::string::npos);
  EXPECT_NE(plot.find('#'), std::string::npos);
}

TEST(TimeSeries, AsciiPlotEmpty) {
  TimeSeries series("empty");
  EXPECT_NE(AsciiPlot(series).find("(no samples)"), std::string::npos);
}

}  // namespace
}  // namespace opmr
