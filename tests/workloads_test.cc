#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/opmr.h"
#include "engine/aggregators.h"
#include "workloads/clickstream.h"
#include "workloads/tasks.h"
#include "workloads/webdocs.h"

namespace opmr {
namespace {

class CollectingOutput final : public OutputCollector {
 public:
  void Emit(Slice key, Slice value) override {
    rows.emplace_back(key.ToString(), value.ToString());
  }
  std::vector<std::pair<std::string, std::string>> rows;
};

class WorkloadsTest : public ::testing::Test {
 protected:
  WorkloadsTest() : platform_({.num_nodes = 2, .block_bytes = 256u << 10}) {}

  std::vector<std::string> ReadAll(const std::string& name) {
    std::vector<std::string> out;
    for (const auto& block : platform_.dfs().ListBlocks(name)) {
      auto reader = platform_.dfs().OpenBlock(block);
      Slice record;
      while (reader->Next(&record)) out.push_back(record.ToString());
    }
    return out;
  }

  Platform platform_;
};

TEST_F(WorkloadsTest, ClickTextRecordsParse) {
  ClickStreamOptions gen;
  gen.num_records = 1'000;
  GenerateClickStream(platform_.dfs(), "clicks", gen);
  const auto records = ReadAll("clicks");
  ASSERT_EQ(records.size(), 1'000u);
  std::uint64_t last_ts = 0;
  for (const auto& line : records) {
    const auto click = ParseClick(line, ClickFormat::kText);
    EXPECT_GE(click.timestamp, last_ts) << "timestamps must be non-decreasing";
    last_ts = click.timestamp;
    EXPECT_LT(click.user, gen.num_users);
    EXPECT_LT(click.url, gen.num_urls);
  }
}

TEST_F(WorkloadsTest, ClickBinaryFormatRoundTrips) {
  ClickStreamOptions gen;
  gen.num_records = 500;
  gen.format = ClickFormat::kBinary;
  gen.seed = 777;
  GenerateClickStream(platform_.dfs(), "bin", gen);

  gen.format = ClickFormat::kText;
  GenerateClickStream(platform_.dfs(), "txt", gen);

  const auto bin = ReadAll("bin");
  const auto txt = ReadAll("txt");
  ASSERT_EQ(bin.size(), txt.size());
  for (std::size_t i = 0; i < bin.size(); ++i) {
    ASSERT_EQ(bin[i].size(), kBinaryClickBytes);
    const auto b = ParseClick(bin[i], ClickFormat::kBinary);
    const auto t = ParseClick(txt[i], ClickFormat::kText);
    EXPECT_EQ(b.timestamp, t.timestamp);
    EXPECT_EQ(b.user, t.user);
    EXPECT_EQ(b.url, t.url);
  }
}

TEST_F(WorkloadsTest, GeneratorIsDeterministicPerSeed) {
  ClickStreamOptions gen;
  gen.num_records = 300;
  gen.seed = 31;
  GenerateClickStream(platform_.dfs(), "a", gen);
  GenerateClickStream(platform_.dfs(), "b", gen);
  gen.seed = 32;
  GenerateClickStream(platform_.dfs(), "c", gen);
  EXPECT_EQ(ReadAll("a"), ReadAll("b"));
  EXPECT_NE(ReadAll("a"), ReadAll("c"));
}

TEST_F(WorkloadsTest, UserSkewShowsInClickCounts) {
  ClickStreamOptions gen;
  gen.num_records = 20'000;
  gen.num_users = 1'000;
  gen.user_theta = 1.2;
  GenerateClickStream(platform_.dfs(), "skewed", gen);
  std::map<std::uint32_t, int> counts;
  for (const auto& line : ReadAll("skewed")) {
    ++counts[ParseClick(line, ClickFormat::kText).user];
  }
  // Rank 0 should dwarf a mid-tail user.
  EXPECT_GT(counts[0], 20 * std::max(1, counts[500]));
}

TEST_F(WorkloadsTest, TailMixtureAddsSingletonUsers) {
  ClickStreamOptions gen;
  gen.num_records = 50'000;
  gen.num_users = 100;
  gen.tail_fraction = 0.1;
  gen.tail_universe = 1'000'000;
  GenerateClickStream(platform_.dfs(), "tail", gen);
  std::set<std::uint32_t> head_users, tail_users;
  for (const auto& line : ReadAll("tail")) {
    const auto user = ParseClick(line, ClickFormat::kText).user;
    (user < gen.num_users ? head_users : tail_users).insert(user);
  }
  EXPECT_FALSE(tail_users.empty());
  // ~5000 tail clicks over 1M ids: almost all distinct.
  EXPECT_GT(tail_users.size(), 4'000u);
  EXPECT_LE(head_users.size(), 100u);
}

TEST_F(WorkloadsTest, WebDocsHaveDocIdAndWords) {
  WebDocsOptions gen;
  gen.num_docs = 200;
  gen.mean_doc_words = 40;
  GenerateWebDocs(platform_.dfs(), "docs", gen);
  const auto docs = ReadAll("docs");
  ASSERT_EQ(docs.size(), 200u);
  for (const auto& line : docs) {
    const auto tab = line.find('\t');
    ASSERT_NE(tab, std::string::npos);
    EXPECT_EQ(line[0], 'd');
    EXPECT_GT(line.size(), tab + 1) << "document has no words";
  }
}

TEST_F(WorkloadsTest, KeyFormattersAreFixedWidth) {
  EXPECT_EQ(UserKey(7), "u000007");
  EXPECT_EQ(UserKey(123456), "u123456");
  EXPECT_EQ(UrlKey(42), "/page/00042.html");
  EXPECT_EQ(WordKey(3), "w000003");
}

TEST_F(WorkloadsTest, ParseClickRejectsGarbage) {
  EXPECT_THROW(ParseClick(Slice("not a click"), ClickFormat::kText),
               std::runtime_error);
  EXPECT_THROW(ParseClick(Slice("123"), ClickFormat::kText),
               std::runtime_error);
  EXPECT_THROW(ParseClick(Slice("short"), ClickFormat::kBinary),
               std::runtime_error);
}

TEST_F(WorkloadsTest, SessionizationMapEmitsUserKeyedClicks) {
  const auto spec = SessionizationJob("in", "out", 4);
  CollectingOutput out;
  spec.map("894000123\tu000042\t/page/00007.html", out);
  ASSERT_EQ(out.rows.size(), 1u);
  EXPECT_EQ(out.rows[0].first, "u000042");
  EXPECT_EQ(DecodeU64(out.rows[0].second.data()), 894000123u);
  EXPECT_EQ(out.rows[0].second.substr(8), "/page/00007.html");
}

TEST_F(WorkloadsTest, SessionizationReduceCutsSessionsAtGap) {
  const auto spec = SessionizationJob("in", "out", 4, ClickFormat::kText,
                                      /*session_gap=*/100);
  // Build three clicks: two within the gap, one far beyond it.
  class Values final : public ValueIterator {
   public:
    bool Next(Slice* v) override {
      if (i_ >= 3) return false;
      payloads_[i_].clear();
      AppendU64(payloads_[i_], ts_[i_]);
      payloads_[i_] += "/u";
      *v = payloads_[i_];
      ++i_;
      return true;
    }

   private:
    std::uint64_t ts_[3] = {1'000, 1'050, 5'000};
    std::string payloads_[3];
    int i_ = 0;
  } values;

  CollectingOutput out;
  spec.reduce("u1", values, out);
  ASSERT_EQ(out.rows.size(), 3u);
  EXPECT_EQ(out.rows[0].second.substr(0, 2), "s0");
  EXPECT_EQ(out.rows[1].second.substr(0, 2), "s0");
  EXPECT_EQ(out.rows[2].second.substr(0, 2), "s1") << "gap must cut session";
}

TEST_F(WorkloadsTest, InvertedIndexMapTracksPositions) {
  const auto spec = InvertedIndexJob("in", "out", 2);
  CollectingOutput out;
  spec.map("d001\tfoo bar foo", out);
  ASSERT_EQ(out.rows.size(), 3u);
  EXPECT_EQ(out.rows[0], std::make_pair(std::string("foo"),
                                        std::string("d001:0")));
  EXPECT_EQ(out.rows[1], std::make_pair(std::string("bar"),
                                        std::string("d001:1")));
  EXPECT_EQ(out.rows[2], std::make_pair(std::string("foo"),
                                        std::string("d001:2")));
}

TEST_F(WorkloadsTest, WordCountMapSkipsEmptyTokens) {
  const auto spec = WordCountJob("in", "out", 2);
  CollectingOutput out;
  spec.map("d1\ta  b", out);  // double space: no empty token
  ASSERT_EQ(out.rows.size(), 2u);
  EXPECT_EQ(out.rows[0].first, "a");
  EXPECT_EQ(out.rows[1].first, "b");
}

TEST_F(WorkloadsTest, CountJobsEmitOne) {
  CollectingOutput out;
  PageFrequencyJob("i", "o", 2).map("1\tu000001\t/page/00002.html", out);
  PerUserCountJob("i", "o", 2).map("1\tu000001\t/page/00002.html", out);
  ASSERT_EQ(out.rows.size(), 2u);
  EXPECT_EQ(out.rows[0].first, "/page/00002.html");
  EXPECT_EQ(out.rows[1].first, "u000001");
  EXPECT_EQ(DecodeValueU64(out.rows[0].second), 1u);
}

}  // namespace
}  // namespace opmr
