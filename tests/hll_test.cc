#include "engine/hll.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "common/rng.h"
#include "core/opmr.h"
#include "engine/aggregators.h"
#include "workloads/clickstream.h"
#include "workloads/tasks.h"

namespace opmr {
namespace {

std::string Element(std::uint64_t i) { return "element-" + std::to_string(i); }

TEST(Hll, SmallCardinalitiesAreNearExact) {
  HllAggregator hll(12);
  std::string state;
  hll.Init(Element(0), &state);
  for (std::uint64_t i = 1; i < 100; ++i) hll.Update(&state, Element(i));
  EXPECT_NEAR(hll.Estimate(state), 100.0, 5.0);
}

TEST(Hll, DuplicatesDoNotInflate) {
  HllAggregator hll(12);
  std::string state;
  hll.Init("only", &state);
  for (int i = 0; i < 100'000; ++i) hll.Update(&state, "only");
  EXPECT_NEAR(hll.Estimate(state), 1.0, 0.5);
}

TEST(Hll, LargeCardinalityWithinErrorBound) {
  // p=11 → 2048 registers → σ ≈ 1.04/√2048 ≈ 2.3 %; allow 4σ.
  HllAggregator hll(11);
  std::string state;
  constexpr std::uint64_t kN = 200'000;
  hll.Init(Element(0), &state);
  for (std::uint64_t i = 1; i < kN; ++i) hll.Update(&state, Element(i));
  EXPECT_NEAR(hll.Estimate(state), static_cast<double>(kN), 0.1 * kN);
}

TEST(Hll, MergeEqualsUnion) {
  HllAggregator hll(11);
  std::string a, b, u;
  hll.Init(Element(0), &a);
  hll.Init(Element(50'000), &b);
  hll.Init(Element(0), &u);
  for (std::uint64_t i = 1; i < 60'000; ++i) {
    hll.Update(&a, Element(i));               // [0, 60k)
    hll.Update(&b, Element(50'000 + i));      // [50k, 110k)
    hll.Update(&u, Element(i));
    hll.Update(&u, Element(50'000 + i));
  }
  hll.Merge(&a, b);
  EXPECT_EQ(a, u) << "merge must be the register-wise max == union sketch";
}

TEST(Hll, MergeIsCommutativeAndIdempotent) {
  HllAggregator hll(8);
  std::string a, b;
  hll.Init("x", &a);
  hll.Update(&a, "y");
  hll.Init("z", &b);

  std::string ab = a, ba = b;
  hll.Merge(&ab, b);
  hll.Merge(&ba, a);
  EXPECT_EQ(ab, ba);
  std::string twice = ab;
  hll.Merge(&twice, ab);
  EXPECT_EQ(twice, ab);
}

TEST(Hll, FinalizeEncodesU64Estimate) {
  HllAggregator hll(10);
  std::string state;
  hll.Init(Element(0), &state);
  for (std::uint64_t i = 1; i < 1'000; ++i) hll.Update(&state, Element(i));
  std::string out;
  hll.Finalize(state, &out);
  const auto v = DecodeValueU64(out);
  EXPECT_NEAR(static_cast<double>(v), 1'000.0, 120.0);
}

TEST(Hll, ValidatesPrecisionAndStateWidth) {
  EXPECT_THROW(HllAggregator bad(3), std::invalid_argument);
  EXPECT_THROW(HllAggregator bad(17), std::invalid_argument);
  HllAggregator hll(8);
  std::string tiny = "short";
  EXPECT_THROW(hll.Update(&tiny, "v"), std::runtime_error);
  EXPECT_THROW(hll.Estimate(Slice(tiny)), std::runtime_error);
}

TEST(Hll, DistinctVisitorsJobTracksTruth) {
  Platform platform({.num_nodes = 2, .block_bytes = 512u << 10});
  ClickStreamOptions gen;
  gen.num_records = 100'000;
  gen.num_users = 5'000;
  gen.num_urls = 50;  // few pages, many visitors each
  gen.url_theta = 0.5;
  GenerateClickStream(platform.dfs(), "clicks", gen);

  // Exact distinct visitors per url.
  std::map<std::string, std::set<std::uint32_t>> truth;
  for (const auto& block : platform.dfs().ListBlocks("clicks")) {
    auto reader = platform.dfs().OpenBlock(block);
    Slice record;
    while (reader->Next(&record)) {
      const auto click = ParseClick(record, ClickFormat::kText);
      truth[UrlKey(click.url)].insert(click.user);
    }
  }

  // The sketch job must agree across sort-merge and incremental runtimes.
  for (const auto& options : {HadoopOptions(), HashOnePassOptions()}) {
    const auto spec = DistinctVisitorsJob("clicks", "dv", 2, /*precision=*/12);
    platform.Run(spec, options);
    int checked = 0;
    for (const auto& [url, v] : platform.ReadOutput("dv", 2)) {
      const double estimate = static_cast<double>(DecodeValueU64(v));
      const double exact = static_cast<double>(truth.at(url).size());
      EXPECT_NEAR(estimate, exact, std::max(6.0, 0.10 * exact)) << url;
      ++checked;
    }
    EXPECT_EQ(checked, static_cast<int>(truth.size()));
    // Re-run with a fresh output name next iteration.
    break;
  }
  const auto spec2 = DistinctVisitorsJob("clicks", "dv2", 2, 12);
  platform.Run(spec2, HashOnePassOptions());
  for (const auto& [url, v] : platform.ReadOutput("dv2", 2)) {
    const double estimate = static_cast<double>(DecodeValueU64(v));
    const double exact = static_cast<double>(truth.at(url).size());
    EXPECT_NEAR(estimate, exact, std::max(6.0, 0.10 * exact)) << url;
  }
}

}  // namespace
}  // namespace opmr
