// Placement-plane tests: hierarchical fair-share pool arithmetic, the
// locality/load/health operation ranking, seed-reproducible assignment
// logs, work-stealing pick-up, and the seeded chaos drill — kill the
// most-loaded worker mid-wave and watch operations re-place onto the
// next-ranked replica holder without changing the job's output.
#include "placement/placement.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "coord/registry.h"
#include "core/opmr.h"
#include "placement/pool_tree.h"
#include "sched/scheduler.h"
#include "workloads/clickstream.h"
#include "workloads/tasks.h"

namespace opmr {
namespace {

using placement::Assignment;
using placement::ParsePoolConfig;
using placement::PlacementMode;
using placement::PlacementPlane;
using placement::PoolTree;

// ---------------------------------------------------------------------------
// Pool config parsing and the fair-share tree
// ---------------------------------------------------------------------------

TEST(PoolConfig, ParsesEveryForm) {
  auto p = ParsePoolConfig("tenants");
  EXPECT_EQ(p.name, "tenants");
  EXPECT_EQ(p.parent, "");
  EXPECT_DOUBLE_EQ(p.weight, 1.0);
  EXPECT_EQ(p.max_running_jobs, 0);

  p = ParsePoolConfig("alpha:3.5");
  EXPECT_EQ(p.name, "alpha");
  EXPECT_DOUBLE_EQ(p.weight, 3.5);

  p = ParsePoolConfig("tenants/alpha:2:4");
  EXPECT_EQ(p.parent, "tenants");
  EXPECT_EQ(p.name, "alpha");
  EXPECT_DOUBLE_EQ(p.weight, 2.0);
  EXPECT_EQ(p.max_running_jobs, 4);

  EXPECT_THROW((void)ParsePoolConfig(""), std::invalid_argument);
  EXPECT_THROW((void)ParsePoolConfig("a:zero"), std::invalid_argument);
  EXPECT_THROW((void)ParsePoolConfig("a:-1"), std::invalid_argument);
  EXPECT_THROW((void)ParsePoolConfig("a:1:-2"), std::invalid_argument);
}

TEST(PoolTreeTest, RejectsBadTrees) {
  EXPECT_THROW(PoolTree({{"a", "nope", 1.0, 0}}), std::invalid_argument);
  EXPECT_THROW(PoolTree({{"a", "", 1.0, 0}, {"a", "", 1.0, 0}}),
               std::invalid_argument);
  EXPECT_THROW(PoolTree({{"a", "", 0.0, 0}}), std::invalid_argument);
  EXPECT_THROW(PoolTree({{"", "", 1.0, 0}}), std::invalid_argument);
}

TEST(PoolTreeTest, WeightsConvergeToThreeToOneWithinTenPercent) {
  // Two always-backlogged tenants with weights 3:1: the grant split over a
  // long contended run must land within 10% of 3:1 — the acceptance bar.
  PoolTree tree({{"alpha", "", 3.0, 0}, {"beta", "", 1.0, 0}});
  tree.JoinJob(1, "alpha");
  tree.JoinJob(2, "beta");
  const std::vector<PoolTree::Waiter> waiters = {{1, 0}, {2, 1}};
  int alpha_grants = 0;
  constexpr int kGrants = 400;
  for (int i = 0; i < kGrants; ++i) {
    const int winner = tree.Pick(waiters);
    ASSERT_TRUE(winner == 1 || winner == 2);
    if (winner == 1) ++alpha_grants;
    tree.OnGrant(winner);  // held, never released: steady-state backlog
  }
  const double share = static_cast<double>(alpha_grants) / kGrants;
  EXPECT_NEAR(share, 0.75, 0.075) << alpha_grants << " of " << kGrants;

  const auto stats = tree.Stats();
  ASSERT_EQ(stats.size(), 3u);  // root + two tenants
  EXPECT_EQ(stats[0].name, "(root)");
  EXPECT_EQ(stats[0].total_grants, kGrants);  // usage rolls up to the root
  EXPECT_EQ(stats[1].total_grants + stats[2].total_grants, kGrants);
}

TEST(PoolTreeTest, HierarchySubdividesWithoutAffectingSiblings) {
  // org gets weight 3 vs solo's 1; inside org, a and b split 1:1.  The
  // descent charges org's subtree as one unit, so a+b together still get
  // ~3/4 of the grants.
  PoolTree tree({{"org", "", 3.0, 0},
                 {"a", "org", 1.0, 0},
                 {"b", "org", 1.0, 0},
                 {"solo", "", 1.0, 0}});
  tree.JoinJob(1, "a");
  tree.JoinJob(2, "b");
  tree.JoinJob(3, "solo");
  const std::vector<PoolTree::Waiter> waiters = {{1, 0}, {2, 1}, {3, 2}};
  int org_grants = 0;
  int a_grants = 0;
  constexpr int kGrants = 400;
  for (int i = 0; i < kGrants; ++i) {
    const int winner = tree.Pick(waiters);
    if (winner == 1 || winner == 2) ++org_grants;
    if (winner == 1) ++a_grants;
    tree.OnGrant(winner);
  }
  EXPECT_NEAR(static_cast<double>(org_grants) / kGrants, 0.75, 0.075);
  EXPECT_NEAR(static_cast<double>(a_grants) / org_grants, 0.5, 0.1);
}

TEST(PoolTreeTest, PickIsDeterministicAndPrefersEarliestWaiterInPool) {
  PoolTree tree({{"p", "", 1.0, 0}});
  tree.JoinJob(5, "p");
  tree.JoinJob(4, "p");
  // Same pool: the admission ordinal decides, not the job id.
  EXPECT_EQ(tree.Pick({{5, 7}, {4, 9}}), 5);
  EXPECT_EQ(tree.Pick({{5, 7}, {4, 9}}), 5);  // pure: no hidden state
  // Jobs that never joined charge the root's implicit direct pool, which
  // sorts before any named child on a usage tie.
  EXPECT_EQ(tree.Pick({{5, 7}, {99, 1}}), 99);
  EXPECT_EQ(tree.Pick({}), -1);
}

TEST(PoolTreeTest, QuotaRollsUpTheAncestorChain) {
  PoolTree tree({{"org", "", 1.0, 2}, {"a", "org", 1.0, 0}});
  EXPECT_FALSE(tree.AtJobQuota("a"));
  tree.OnJobStart("a");
  EXPECT_FALSE(tree.AtJobQuota("a"));
  tree.OnJobStart("org");  // a sibling job inside the same org subtree
  // a itself is uncapped, but the org ancestor is at its 2-job cap.
  EXPECT_TRUE(tree.AtJobQuota("a"));
  tree.OnJobFinish("org");
  EXPECT_FALSE(tree.AtJobQuota("a"));
}

// ---------------------------------------------------------------------------
// PlacementPlane ranking
// ---------------------------------------------------------------------------

std::vector<BlockInfo> MakeBlocks(
    const std::vector<std::vector<int>>& holder_sets) {
  std::vector<BlockInfo> blocks;
  for (std::size_t i = 0; i < holder_sets.size(); ++i) {
    BlockInfo b;
    b.block_id = i + 1;
    b.replica_nodes = holder_sets[i];
    blocks.push_back(std::move(b));
  }
  return blocks;
}

TEST(PlacementPlaneTest, LocalityRankedPlansEveryBlockOntoAHolder) {
  PlacementPlane plane({PlacementMode::kLocalityRanked, 42, 4, nullptr});
  plane.PlanJob(0, MakeBlocks({{1, 2}, {2, 3}, {0, 1}, {3, 0}, {1, 3}}));
  const auto log = plane.Log();
  ASSERT_EQ(log.size(), 5u);
  for (const Assignment& a : log) {
    EXPECT_TRUE(a.local) << "block " << a.block_id;
    EXPECT_FALSE(a.replacement);
  }
  EXPECT_EQ(plane.stats().planned, 5);
  EXPECT_EQ(plane.stats().planned_local, 5);
}

TEST(PlacementPlaneTest, PlannedBacklogSpreadsCoLocatedBlocks) {
  // Four blocks all replicated on nodes {0, 1}: the planned-backlog term
  // must split them 2/2 instead of piling all four onto one holder.
  PlacementPlane plane({PlacementMode::kLocalityRanked, 42, 4, nullptr});
  plane.PlanJob(0, MakeBlocks({{0, 1}, {0, 1}, {0, 1}, {0, 1}}));
  int on_node0 = 0;
  for (const Assignment& a : plane.Log()) {
    if (a.node == 0) ++on_node0;
  }
  EXPECT_EQ(on_node0, 2);
}

TEST(PlacementPlaneTest, RegistrationOrderBaselineIsLocalityBlind) {
  PlacementPlane plane({PlacementMode::kRegistrationOrder, 42, 4, nullptr});
  plane.PlanJob(0, MakeBlocks({{2}, {2}, {2}, {2}}));
  std::vector<int> nodes;
  for (const Assignment& a : plane.Log()) nodes.push_back(a.node);
  // Round-robin over all nodes, blind to the fact node 2 holds everything.
  EXPECT_EQ(nodes, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(plane.stats().planned_local, 1);
}

TEST(PlacementPlaneTest, SameSeedYieldsIdenticalAssignmentLog) {
  const auto blocks =
      MakeBlocks({{1, 2}, {0, 3}, {2, 3}, {0, 1}, {1, 3}, {0, 2}});
  const auto run = [&](std::uint64_t seed) {
    PlacementPlane plane({PlacementMode::kLocalityRanked, seed, 4, nullptr});
    plane.PlanJob(0, blocks);
    plane.PlanJob(1, blocks);
    return plane.Log();
  };
  const auto a = run(7);
  const auto b = run(7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].seq, b[i].seq);
    EXPECT_EQ(a[i].job, b[i].job);
    EXPECT_EQ(a[i].block_id, b[i].block_id);
    EXPECT_EQ(a[i].node, b[i].node) << "entry " << i;
    EXPECT_EQ(a[i].local, b[i].local);
    EXPECT_EQ(a[i].replacement, b[i].replacement);
  }
}

TEST(PlacementPlaneTest, HeartbeatLoadAndSuspectHistorySteerPlacement) {
  coord::WorkerRegistry registry;
  (void)registry.Register("map-0", "a:1", net::WireRole::kMap, 0.0);
  (void)registry.Register("map-1", "b:1", net::WireRole::kMap, 0.0);
  // Worker 0 reports heavy load in its v6 heartbeat; worker 1 is idle.
  (void)registry.Heartbeat("map-0", 1, 1.0, {5, 0, 9});
  (void)registry.Heartbeat("map-1", 1, 1.0, {0, 0, 0});

  PlacementPlane loaded({PlacementMode::kLocalityRanked, 42, 2, &registry});
  loaded.PlanJob(0, MakeBlocks({{0, 1}}));
  EXPECT_EQ(loaded.Log()[0].node, 1) << "load must steer off the busy holder";

  // Health: equal loads, but worker 0 has survived a lease expiry (flappy).
  coord::WorkerRegistry flappy;
  (void)flappy.Register("map-0", "a:1", net::WireRole::kMap, 0.0);
  (void)flappy.Register("map-1", "b:1", net::WireRole::kMap, 0.0);
  (void)flappy.Heartbeat("map-1", 1, 1.0);
  (void)flappy.ExpireLeases(3.0, 2.0);  // map-0 (registered at 0) expires
  (void)flappy.Register("map-0", "a:1", net::WireRole::kMap, 3.5);  // rejoin
  coord::WorkerInfo info;
  ASSERT_TRUE(flappy.Lookup("map-0", &info));
  ASSERT_EQ(info.suspect_count, 1u);

  PlacementPlane plane({PlacementMode::kLocalityRanked, 42, 2, &flappy});
  plane.PlanJob(0, MakeBlocks({{0, 1}}));
  EXPECT_EQ(plane.Log()[0].node, 1) << "suspect history must rank last";
}

TEST(PlacementPlaneTest, PickPendingServesThePlanThenStealsBacklog) {
  PlacementPlane plane({PlacementMode::kLocalityRanked, 42, 2, nullptr});
  const auto blocks = MakeBlocks({{0}, {0}, {1}});
  plane.PlanJob(0, blocks);
  std::vector<const BlockInfo*> pending = {&blocks[0], &blocks[1], &blocks[2]};

  // Node 0 drains its own plan first (earliest pending listing order).
  EXPECT_EQ(plane.PickPending(0, 0, pending), 0);
  pending.erase(pending.begin());
  EXPECT_EQ(plane.PickPending(0, 0, pending), 0);
  pending.erase(pending.begin());
  // Plan dry: node 0 steals node 1's block instead of idling.
  EXPECT_EQ(plane.PickPending(0, 0, pending), 0);
  EXPECT_EQ(plane.stats().steals, 1);
  // Unplanned job: the executor falls back to its built-in order.
  EXPECT_EQ(plane.PickPending(99, 0, pending), -1);
}

TEST(PlacementPlaneTest, LoadVectorReportsSlotsAndBacklog) {
  PlacementPlane plane({PlacementMode::kLocalityRanked, 42, 2, nullptr});
  plane.PlanJob(0, MakeBlocks({{1}, {1}}));
  plane.OnSlotAcquired(1);
  const auto load = plane.LoadVector(1);
  ASSERT_EQ(load.size(), net::kLoadQueueDepth + 1);
  EXPECT_EQ(load[net::kLoadMapSlotsHeld], 1u);
  EXPECT_EQ(load[net::kLoadQueueDepth], 2u);
  plane.OnSlotReleased(1);
  EXPECT_EQ(plane.LoadVector(1)[net::kLoadMapSlotsHeld], 0u);
}

// The satellite chaos drill, deterministic half: plan against a live
// registry, kill the most-loaded worker mid-wave (its lease lapses while
// the others renew), and every operation planned on it must re-place onto
// the next-ranked live replica holder, logged as a replacement.
TEST(PlacementChaos, KilledWorkerOpsReplaceOntoNextRankedHolder) {
  coord::WorkerRegistry registry;
  (void)registry.Register("map-0", "a:1", net::WireRole::kMap, 0.0);
  (void)registry.Register("map-1", "b:1", net::WireRole::kMap, 0.0);
  (void)registry.Register("map-2", "c:1", net::WireRole::kMap, 0.0);

  PlacementPlane plane({PlacementMode::kLocalityRanked, 42, 3, &registry});
  const auto blocks = MakeBlocks({{1, 2}, {1, 2}, {1, 2}, {1, 2}});
  plane.PlanJob(0, blocks);
  // Backlog spreads the wave across both holders.
  std::vector<std::uint64_t> on_node1;
  for (const Assignment& a : plane.Log()) {
    if (a.node == 1) on_node1.push_back(a.block_id);
  }
  ASSERT_FALSE(on_node1.empty());

  // map-1 is now the most-loaded worker (its last heartbeat says so) and
  // then goes silent; the detector evicts it while its peers renew.
  (void)registry.Heartbeat("map-1", 1, 1.0, {2, 0, 8});
  (void)registry.Heartbeat("map-0", 1, 10.0, {0, 0, 0});
  (void)registry.Heartbeat("map-2", 1, 10.0, {0, 0, 0});
  const auto expired = registry.ExpireLeases(11.0, 2.0);
  ASSERT_EQ(expired, (std::vector<std::string>{"map-1"}));

  // The next pick refreshes the plan against the bumped registry epoch.
  std::vector<const BlockInfo*> pending;
  for (const auto& b : blocks) pending.push_back(&b);
  (void)plane.PickPending(0, 2, pending);

  std::vector<std::uint64_t> replaced;
  for (const Assignment& a : plane.Log()) {
    if (!a.replacement) continue;
    EXPECT_EQ(a.node, 2) << "next-ranked live holder of {1,2} with 1 dead";
    EXPECT_TRUE(a.local);
    replaced.push_back(a.block_id);
  }
  std::sort(on_node1.begin(), on_node1.end());
  std::sort(replaced.begin(), replaced.end());
  // The refresh runs before the pick consumes anything, so every op that
  // was stranded on the dead node appears in the replacement log.
  EXPECT_EQ(replaced, on_node1);
  EXPECT_EQ(plane.stats().replacements,
            static_cast<std::int64_t>(on_node1.size()));
}

// ---------------------------------------------------------------------------
// JobScheduler integration
// ---------------------------------------------------------------------------

class PlacementSchedulerTest : public ::testing::Test {
 protected:
  PlacementSchedulerTest()
      : platform_({.num_nodes = 4,
                   .block_bytes = 64u << 10,
                   .replication = 3,
                   .placement_skew = 1.2,
                   .remote_read_penalty_us = 50}) {
    ClickStreamOptions gen;
    gen.num_records = 20'000;
    gen.num_users = 800;
    GenerateClickStream(platform_.dfs(), "clicks", gen);
  }

  std::vector<std::pair<std::string, std::string>> SortedOutput(
      const std::string& name, int reducers) {
    auto rows = platform_.ReadOutput(name, reducers);
    std::sort(rows.begin(), rows.end());
    return rows;
  }

  Platform platform_;
};

TEST_F(PlacementSchedulerTest, LocalityModeMatchesEngineOutputAndStaysLocal) {
  // Sequential engine-mode baseline.
  platform_.Run(PerUserCountJob("clicks", "base.out", 3),
                HashOnePassOptions());
  const auto expected = SortedOutput("base.out", 3);

  sched::SchedulerOptions sopts;
  sopts.num_nodes = 4;
  sopts.placement_mode = PlacementMode::kLocalityRanked;
  sopts.placement_seed = 7;
  sched::JobScheduler scheduler(&platform_.dfs(), &platform_.files(), sopts);
  sched::JobRequest request;
  request.id = "local";
  request.spec = PerUserCountJob("clicks", "local.out", 3);
  request.options = HashOnePassOptions();
  const int handle = scheduler.Submit(std::move(request));
  const auto report = scheduler.Wait(handle);
  ASSERT_FALSE(report.failed) << report.error;
  EXPECT_EQ(SortedOutput("local.out", 3), expected);

  const auto stats = scheduler.stats();
  ASSERT_GT(stats.placement.planned, 0);
  // Replication 3 over 4 nodes: a live holder always exists, so the plan
  // is fully data-local (the >= 80% acceptance bar with margin).
  EXPECT_EQ(stats.placement.planned_local, stats.placement.planned);
}

TEST_F(PlacementSchedulerTest, QuotaDefersSecondJobAndCountsReason) {
  sched::SchedulerOptions sopts;
  sopts.num_nodes = 4;
  sopts.pools = {{"capped", "", 1.0, 1}};  // one running job at a time
  sched::JobScheduler scheduler(&platform_.dfs(), &platform_.files(), sopts);
  for (int i = 0; i < 2; ++i) {
    sched::JobRequest request;
    request.id = "q" + std::to_string(i);
    request.spec =
        PerUserCountJob("clicks", "q" + std::to_string(i) + ".out", 2);
    request.options = HashOnePassOptions();
    request.pool = "capped";
    scheduler.Submit(std::move(request));
  }
  const auto reports = scheduler.Drain();
  for (const auto& report : reports) {
    EXPECT_FALSE(report.failed) << report.error;
  }
  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.peak_concurrent, 1);  // the cap serialized them
  EXPECT_GE(stats.quota_deferrals, 1);
  EXPECT_EQ(stats.placement_deferrals,
            stats.no_map_worker_deferrals + stats.no_reduce_worker_deferrals +
                stats.quota_deferrals);
  ASSERT_EQ(stats.pools.size(), 2u);  // root + capped
  EXPECT_GT(stats.pools[1].total_grants, 0);

  // Naming a pool that was never declared is an admission error.
  sched::JobRequest bad;
  bad.id = "ghost";
  bad.spec = PerUserCountJob("clicks", "ghost.out", 2);
  bad.options = HashOnePassOptions();
  bad.pool = "undeclared";
  EXPECT_THROW(scheduler.Submit(std::move(bad)), sched::AdmissionError);
}

// The satellite chaos drill, full-stack half: a registry-backed locality
// scheduler keeps a job's output byte-identical to the engine baseline
// even when the most-loaded map worker is evicted mid-run — stranded
// operations re-place onto surviving holders and the wave completes.
TEST_F(PlacementSchedulerTest, WorkerDeathMidWaveKeepsOutputByteIdentical) {
  platform_.Run(PerUserCountJob("clicks", "chaos_base.out", 3),
                HashOnePassOptions());
  const auto expected = SortedOutput("chaos_base.out", 3);

  coord::WorkerRegistry registry;
  for (int i = 0; i < 4; ++i) {
    (void)registry.Register("map-" + std::to_string(i),
                            "h:" + std::to_string(i), net::WireRole::kMap,
                            0.0);
  }
  (void)registry.Register("reduce-0", "r:1", net::WireRole::kReduce, 0.0);
  // map-1 reports the heaviest load, then goes silent; everyone else
  // renews far into the future so only map-1 can expire.
  (void)registry.Heartbeat("map-1", 1, 1.0, {3, 0, 7});
  (void)registry.Heartbeat("map-0", 1, 1000.0, {0, 0, 0});
  (void)registry.Heartbeat("map-2", 1, 1000.0, {0, 0, 0});
  (void)registry.Heartbeat("map-3", 1, 1000.0, {0, 0, 0});
  (void)registry.Heartbeat("reduce-0", 1, 1000.0);

  sched::SchedulerOptions sopts;
  sopts.num_nodes = 4;
  sopts.registry = &registry;
  sopts.placement_mode = PlacementMode::kLocalityRanked;
  sopts.placement_seed = 7;
  sched::JobScheduler scheduler(&platform_.dfs(), &platform_.files(), sopts);
  sched::JobRequest request;
  request.id = "chaos";
  request.spec = PerUserCountJob("clicks", "chaos.out", 3);
  request.options = HashOnePassOptions();
  const int handle = scheduler.Submit(std::move(request));

  // Wait for the plan (the job dispatched and its wave is starting), then
  // evict the most-loaded worker mid-wave.
  while (scheduler.stats().placement.planned == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto expired = registry.ExpireLeases(5.0, 2.0);
  ASSERT_EQ(expired, (std::vector<std::string>{"map-1"}));

  const auto report = scheduler.Wait(handle);
  ASSERT_FALSE(report.failed) << report.error;
  EXPECT_EQ(SortedOutput("chaos.out", 3), expected);

  // Whatever of map-1's share was still pending at eviction time was
  // re-placed onto live nodes; the log stays internally consistent.
  const auto log = scheduler.placement_plane()->Log();
  ASSERT_FALSE(log.empty());
  for (const Assignment& a : log) {
    if (a.replacement) EXPECT_NE(a.node, 1);
  }
}

}  // namespace
}  // namespace opmr
