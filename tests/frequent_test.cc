// Frequent-items sketches: per-algorithm guarantees plus a parameterized
// property suite run across all three summaries and several skew levels.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "common/rng.h"
#include "frequent/lossy_counting.h"
#include "frequent/misra_gries.h"
#include "frequent/space_saving.h"

namespace opmr {
namespace {

std::string Key(std::uint64_t rank) { return "k" + std::to_string(rank); }

// --- SpaceSaving-specific behaviour ------------------------------------------

TEST(SpaceSaving, ExactWhenUnderCapacity) {
  SpaceSaving ss(16);
  for (int i = 0; i < 5; ++i) {
    ss.Offer("a");
  }
  ss.Offer("b");
  EXPECT_EQ(ss.Estimate("a"), 5u);
  EXPECT_EQ(ss.Estimate("b"), 1u);
  EXPECT_EQ(ss.Error("a"), 0u);
  EXPECT_EQ(ss.Size(), 2u);
  EXPECT_EQ(ss.StreamLength(), 6u);
}

TEST(SpaceSaving, EvictsMinimumAndInheritsCount) {
  SpaceSaving ss(2);
  ss.Offer("a", 10);
  ss.Offer("b", 3);
  const auto victim = ss.OfferAndEvict("c");
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, "b");  // minimum count entry
  EXPECT_TRUE(ss.IsMonitored("c"));
  EXPECT_FALSE(ss.IsMonitored("b"));
  EXPECT_EQ(ss.Estimate("c"), 4u);  // inherited 3 + weight 1
  EXPECT_EQ(ss.Error("c"), 3u);
}

TEST(SpaceSaving, NoEvictionWhenMonitoredOrNotFull) {
  SpaceSaving ss(2);
  EXPECT_FALSE(ss.OfferAndEvict("a").has_value());
  EXPECT_FALSE(ss.OfferAndEvict("b").has_value());
  EXPECT_FALSE(ss.OfferAndEvict("a").has_value());  // already monitored
}

TEST(SpaceSaving, OverestimateNeverUnderestimates) {
  SpaceSaving ss(8);
  Rng rng(4);
  std::map<std::string, std::uint64_t> truth;
  for (int i = 0; i < 20'000; ++i) {
    const std::string k = Key(rng.Uniform(64));
    ++truth[k];
    ss.Offer(k);
  }
  for (const auto& [k, f] : truth) {
    if (ss.IsMonitored(k)) {
      EXPECT_GE(ss.Estimate(k), f) << k;
      EXPECT_LE(ss.Estimate(k) - ss.Error(k), f) << k;
    }
  }
}

TEST(SpaceSaving, CapacityOneTracksLastRun) {
  SpaceSaving ss(1);
  for (int i = 0; i < 100; ++i) ss.Offer("x");
  ss.Offer("y");
  EXPECT_TRUE(ss.IsMonitored("y"));
  EXPECT_EQ(ss.Estimate("y"), 101u);  // inherited everything
  EXPECT_EQ(ss.Error("y"), 100u);
}

TEST(SpaceSaving, RejectsZeroCapacity) {
  EXPECT_THROW(SpaceSaving ss(0), std::invalid_argument);
}

// --- MisraGries-specific behaviour --------------------------------------------

TEST(MisraGries, UnderestimatesByAtMostNOverK) {
  MisraGries mg(9);
  Rng rng(5);
  std::map<std::string, std::uint64_t> truth;
  constexpr int kN = 30'000;
  for (int i = 0; i < kN; ++i) {
    const std::string k = Key(rng.Uniform(50));
    ++truth[k];
    mg.Offer(k);
  }
  for (const auto& [k, f] : truth) {
    const auto est = mg.Estimate(k);
    EXPECT_LE(est, f) << k;                  // never overestimates
    EXPECT_GE(est + kN / 10 + 1, f) << k;    // error <= N/(k+1)
  }
}

TEST(MisraGries, WeightedDecrementSemantics) {
  MisraGries mg(2);
  mg.Offer("a", 10);
  mg.Offer("b", 6);
  mg.Offer("c", 4);  // decrements everyone by min(4, 10, 6) = 4
  EXPECT_EQ(mg.Estimate("a"), 6u);
  EXPECT_EQ(mg.Estimate("b"), 2u);
  EXPECT_EQ(mg.Estimate("c"), 0u);
  EXPECT_FALSE(mg.IsMonitored("c"));
}

TEST(MisraGries, GuaranteedHitterSurvives) {
  MisraGries mg(4);
  // "hot" has strict majority of a 2001-element stream.
  for (int i = 0; i < 1'001; ++i) mg.Offer("hot");
  Rng rng(6);
  for (int i = 0; i < 1'000; ++i) mg.Offer(Key(rng.Uniform(500)));
  EXPECT_TRUE(mg.IsMonitored("hot"));
  EXPECT_GT(mg.Estimate("hot"), 0u);
}

// --- LossyCounting-specific behaviour -----------------------------------------

TEST(LossyCounting, ErrorBoundedByEpsilonN) {
  LossyCounting lc(0.01);
  Rng rng(7);
  std::map<std::string, std::uint64_t> truth;
  constexpr int kN = 50'000;
  for (int i = 0; i < kN; ++i) {
    const std::string k = Key(rng.Uniform(40));
    ++truth[k];
    lc.Offer(k);
  }
  for (const auto& [k, f] : truth) {
    const auto est = lc.Estimate(k);
    EXPECT_LE(est, f) << k;
    EXPECT_GE(est + static_cast<std::uint64_t>(0.01 * kN) + 1, f) << k;
  }
}

TEST(LossyCounting, PrunesRareKeysAtBucketBoundaries) {
  LossyCounting lc(0.1);  // width 10
  lc.Offer("once");
  for (int i = 0; i < 9; ++i) lc.Offer("frequent");
  // Bucket boundary passed; "once" (count 1 + delta 0 <= bucket 1) pruned.
  EXPECT_FALSE(lc.IsMonitored("once"));
  EXPECT_TRUE(lc.IsMonitored("frequent"));
}

TEST(LossyCounting, WeightedOffersMatchRepeatedOffers) {
  LossyCounting a(0.05), b(0.05);
  Rng rng(8);
  for (int i = 0; i < 500; ++i) {
    const std::string k = Key(rng.Uniform(30));
    const std::uint64_t w = 1 + rng.Uniform(7);
    a.Offer(k, w);
    for (std::uint64_t j = 0; j < w; ++j) b.Offer(k);
  }
  EXPECT_EQ(a.StreamLength(), b.StreamLength());
  for (std::uint64_t r = 0; r < 30; ++r) {
    EXPECT_EQ(a.Estimate(Key(r)), b.Estimate(Key(r))) << r;
  }
}

TEST(LossyCounting, RejectsBadEpsilon) {
  EXPECT_THROW(LossyCounting lc(0.0), std::invalid_argument);
  EXPECT_THROW(LossyCounting lc(1.0), std::invalid_argument);
}

// --- Cross-sketch property suite ----------------------------------------------

enum class SketchKind { kSpaceSaving, kMisraGries, kLossyCounting };

struct SketchCase {
  SketchKind kind;
  double theta;
};

class SketchProperties : public ::testing::TestWithParam<SketchCase> {
 protected:
  static std::unique_ptr<FrequentSketch> Make(SketchKind kind) {
    switch (kind) {
      case SketchKind::kSpaceSaving:
        return std::make_unique<SpaceSaving>(64);
      case SketchKind::kMisraGries:
        return std::make_unique<MisraGries>(64);
      case SketchKind::kLossyCounting:
        return std::make_unique<LossyCounting>(1.0 / 64);
    }
    return nullptr;
  }
};

TEST_P(SketchProperties, HeavyHittersAreMonitored) {
  auto sketch = Make(GetParam().kind);
  ZipfSampler zipf(5'000, GetParam().theta, 11);
  std::map<std::uint64_t, std::uint64_t> truth;
  constexpr int kN = 60'000;
  for (int i = 0; i < kN; ++i) {
    const auto r = zipf.Sample();
    ++truth[r];
    sketch->Offer(Key(r));
  }
  // Every key with frequency > N/32 (double the summary threshold) must be
  // monitored by a 64-entry summary — all three algorithms guarantee it.
  for (const auto& [rank, f] : truth) {
    if (f > kN / 32) {
      EXPECT_TRUE(sketch->IsMonitored(Key(rank))) << "rank " << rank;
    }
  }
}

TEST_P(SketchProperties, StreamLengthIsExact) {
  auto sketch = Make(GetParam().kind);
  ZipfSampler zipf(100, GetParam().theta, 12);
  for (int i = 0; i < 10'000; ++i) sketch->Offer(Key(zipf.Sample()));
  EXPECT_EQ(sketch->StreamLength(), 10'000u);
}

TEST_P(SketchProperties, CandidatesSortedByEstimate) {
  auto sketch = Make(GetParam().kind);
  ZipfSampler zipf(1'000, GetParam().theta, 13);
  for (int i = 0; i < 30'000; ++i) sketch->Offer(Key(zipf.Sample()));
  const auto candidates = sketch->Candidates();
  ASSERT_FALSE(candidates.empty());
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    EXPECT_GE(candidates[i - 1].count_estimate, candidates[i].count_estimate);
  }
}

TEST_P(SketchProperties, TopRankDominatesCandidates) {
  auto sketch = Make(GetParam().kind);
  ZipfSampler zipf(1'000, std::max(0.8, GetParam().theta), 14);
  for (int i = 0; i < 50'000; ++i) sketch->Offer(Key(zipf.Sample()));
  const auto candidates = sketch->Candidates();
  ASSERT_FALSE(candidates.empty());
  EXPECT_EQ(candidates.front().key, Key(0));
}

TEST_P(SketchProperties, SizeBoundedByCapacity) {
  auto sketch = Make(GetParam().kind);
  Rng rng(15);
  for (int i = 0; i < 20'000; ++i) sketch->Offer(Key(rng.Uniform(10'000)));
  if (GetParam().kind != SketchKind::kLossyCounting) {
    EXPECT_LE(sketch->Size(), sketch->Capacity());
  } else {
    // Lossy counting's bound is (1/eps)·log(eps·N) ≈ 64·log2-ish; generous.
    EXPECT_LE(sketch->Size(), 64u * 12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSketchesAndSkews, SketchProperties,
    ::testing::Values(SketchCase{SketchKind::kSpaceSaving, 0.5},
                      SketchCase{SketchKind::kSpaceSaving, 1.0},
                      SketchCase{SketchKind::kSpaceSaving, 1.3},
                      SketchCase{SketchKind::kMisraGries, 0.5},
                      SketchCase{SketchKind::kMisraGries, 1.0},
                      SketchCase{SketchKind::kMisraGries, 1.3},
                      SketchCase{SketchKind::kLossyCounting, 0.5},
                      SketchCase{SketchKind::kLossyCounting, 1.0},
                      SketchCase{SketchKind::kLossyCounting, 1.3}),
    [](const auto& info) {
      std::string name;
      switch (info.param.kind) {
        case SketchKind::kSpaceSaving: name = "SpaceSaving"; break;
        case SketchKind::kMisraGries: name = "MisraGries"; break;
        case SketchKind::kLossyCounting: name = "LossyCounting"; break;
      }
      return name + "_theta" +
             std::to_string(static_cast<int>(info.param.theta * 10));
    });

}  // namespace
}  // namespace opmr
