// Chaos suite: every test runs a job under a seeded FaultPlan and asserts
// the recovery machinery reproduces the fault-free answer byte for byte —
// the exactness guarantee task re-execution must preserve (paper Table III:
// pull shuffle permits re-execution; eager pipelining forfeits it).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/opmr.h"
#include "fault/fault.h"
#include "workloads/clickstream.h"
#include "workloads/tasks.h"

namespace opmr {
namespace {

using Rows = std::vector<std::pair<std::string, std::string>>;

constexpr int kReducers = 2;

// One platform per run: the chaos run and the clean reference run must not
// share counters or a workspace.
struct RunOutcome {
  JobResult result;
  Rows rows;
};

RunOutcome RunPerUserCount(const PlatformOptions& popts,
                           const std::string& fault_plan,
                           const JobOptions& options,
                           std::uint64_t records = 20'000) {
  PlatformOptions with_plan = popts;
  with_plan.fault_plan = fault_plan;
  Platform platform(with_plan);
  ClickStreamOptions gen;
  gen.num_records = records;
  gen.num_users = 1'000;
  GenerateClickStream(platform.dfs(), "clicks", gen);
  RunOutcome out;
  out.result =
      platform.Run(PerUserCountJob("clicks", "out", kReducers), options);
  for (int r = 0; r < kReducers; ++r) {
    const auto part = platform.ReadOutputFile("out.part" + std::to_string(r));
    out.rows.insert(out.rows.end(), part.begin(), part.end());
  }
  return out;
}

PlatformOptions ChaosPlatform() {
  PlatformOptions popts;
  popts.num_nodes = 3;
  popts.block_bytes = 128u << 10;
  popts.max_task_attempts = 3;
  popts.retry_backoff_base_ms = 0.1;  // keep chaos tests fast
  popts.retry_backoff_max_ms = 1.0;
  return popts;
}

TEST(ChaosTest, SpillWriteFaultRecovers) {
  const auto popts = ChaosPlatform();
  const auto clean = RunPerUserCount(popts, "", HadoopOptions());
  const auto chaos = RunPerUserCount(
      popts, "seed=3;io_write:tag=map_out,task=0,after_bytes=1",
      HadoopOptions());
  EXPECT_EQ(chaos.result.map_task_retries, 1);
  EXPECT_EQ(chaos.result.faults_injected, 1);
  EXPECT_EQ(chaos.rows, clean.rows);
}

TEST(ChaosTest, DfsReadFaultRecovers) {
  const auto popts = ChaosPlatform();
  const auto clean = RunPerUserCount(popts, "", HadoopOptions());
  const auto chaos = RunPerUserCount(
      popts, "seed=3;io_read:tag=dfs_block,task=1", HadoopOptions());
  EXPECT_EQ(chaos.result.map_task_retries, 1);
  EXPECT_EQ(chaos.result.faults_injected, 1);
  EXPECT_EQ(chaos.rows, clean.rows);
}

TEST(ChaosTest, MidTaskMapCrashRecovers) {
  const auto popts = ChaosPlatform();
  const auto clean = RunPerUserCount(popts, "", HadoopOptions());
  const auto chaos = RunPerUserCount(
      popts, "seed=3;map_crash:task=2,record=100", HadoopOptions());
  EXPECT_EQ(chaos.result.map_task_retries, 1);
  EXPECT_EQ(chaos.result.faults_injected, 1);
  EXPECT_EQ(chaos.rows, clean.rows);
}

// The acceptance plan: all three fault classes in one run.
TEST(ChaosTest, CombinedPlanIsByteIdenticalToCleanRun) {
  const auto popts = ChaosPlatform();
  const auto clean = RunPerUserCount(popts, "", HadoopOptions());
  const auto chaos = RunPerUserCount(
      popts,
      "seed=5;io_write:tag=map_out,task=0,after_bytes=1;"
      "io_read:tag=dfs_block,task=1;map_crash:task=2,record=100",
      HadoopOptions());
  EXPECT_EQ(chaos.result.map_task_retries, 3);
  EXPECT_EQ(chaos.result.faults_injected, 3);
  EXPECT_GT(chaos.rows.size(), 0u);
  EXPECT_EQ(chaos.rows, clean.rows);
}

TEST(ChaosTest, PushPipelinedJobFailsFastWithDiagnostic) {
  PlatformOptions popts;
  popts.num_nodes = 3;
  popts.block_bytes = 128u << 10;
  popts.fault_plan = "seed=5;map_crash:task=0,record=100";
  Platform platform(popts);
  ClickStreamOptions gen;
  gen.num_records = 20'000;
  gen.num_users = 1'000;
  GenerateClickStream(platform.dfs(), "clicks", gen);
  try {
    platform.Run(PerUserCountJob("clicks", "out", kReducers),
                 HashOnePassOptions());
    FAIL() << "push job under a map crash must not succeed";
  } catch (const std::runtime_error& e) {
    // The diagnostic must name the pipelining / fault-tolerance trade-off.
    EXPECT_NE(std::string(e.what()).find("pipelin"), std::string::npos)
        << e.what();
  }
}

TEST(ChaosTest, ReduceCrashReExecutesFromReplayedShuffle) {
  const auto popts = ChaosPlatform();
  const auto clean = RunPerUserCount(popts, "", HadoopOptions());
  const auto chaos = RunPerUserCount(
      popts, "seed=7;reduce_crash:task=0,record=50", HadoopOptions());
  EXPECT_EQ(chaos.result.reduce_task_retries, 1);
  EXPECT_EQ(chaos.result.map_task_retries, 0);
  EXPECT_EQ(chaos.result.faults_injected, 1);
  EXPECT_EQ(chaos.rows, clean.rows);
}

TEST(ChaosTest, FetchStallsOnlyDelayTheJob) {
  const auto popts = ChaosPlatform();
  const auto clean = RunPerUserCount(popts, "", HadoopOptions());
  const auto chaos = RunPerUserCount(
      popts, "seed=9;fetch_stall:rate=1,delay_ms=0.5", HadoopOptions());
  EXPECT_GT(chaos.result.faults_injected, 0);
  EXPECT_EQ(chaos.result.map_task_retries, 0);
  EXPECT_EQ(chaos.rows, clean.rows);
}

TEST(ChaosTest, ReplicaLossDegradesLocalityNotCorrectness) {
  PlatformOptions popts = ChaosPlatform();
  popts.replication = 2;
  const auto clean = RunPerUserCount(popts, "", HadoopOptions());
  // Drop every replica of every block: no map task can be local, but the
  // block data itself is intact and the job must still be exact.
  const auto chaos = RunPerUserCount(popts, "seed=11;replica_loss",
                                     HadoopOptions());
  EXPECT_EQ(chaos.result.local_map_tasks, 0);
  EXPECT_GT(chaos.result.faults_injected, 0);
  EXPECT_EQ(chaos.rows, clean.rows);
}

TEST(ChaosTest, SpeculationBeatsInjectedSlowNode) {
  PlatformOptions popts;
  popts.num_nodes = 2;
  popts.block_bytes = 64u << 10;
  popts.speculative_execution = true;
  popts.speculation_threshold = 1.5;
  const auto clean = RunPerUserCount(popts, "", HadoopOptions(), 10'000);
  // Node 0 processes every record ~0.3 ms slower; once node 1 drains the
  // block pool its idle slots launch full-speed backups that win.
  const auto chaos = RunPerUserCount(
      popts, "seed=13;slow_node:node=0,delay_ms=0.3", HadoopOptions(),
      10'000);
  EXPECT_GE(chaos.result.speculative_launched, 1);
  EXPECT_GE(chaos.result.speculative_wins, 1);
  EXPECT_EQ(chaos.rows, clean.rows);
}

TEST(ChaosTest, SamePlanInjectsIdenticallyAcrossRuns) {
  const auto popts = ChaosPlatform();
  // Rate draws keyed by (task, record) coordinates are scheduler-independent
  // (io rate faults are keyed by file names, which are not).
  const std::string plan = "seed=17;map_crash:rate=0.0005";
  const auto a = RunPerUserCount(popts, plan, HadoopOptions());
  const auto b = RunPerUserCount(popts, plan, HadoopOptions());
  EXPECT_EQ(a.result.faults_injected, b.result.faults_injected);
  EXPECT_EQ(a.result.map_task_retries, b.result.map_task_retries);
  EXPECT_EQ(a.rows, b.rows);
}

}  // namespace
}  // namespace opmr
