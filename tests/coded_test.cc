// Coded shuffle plane acceptance: the XOR-multicast delivery path must be
// invisible in the answer.  The same job over the direct in-process engine
// and over coded loopback/TCP at r ∈ {2, 3} must produce byte-identical
// key→value output — including under an injected connection drop and under
// a seeded mid-job worker kill, which must be recovered by reconstructing
// the lost node's intermediates from the surviving r−1 replicas without
// re-executing a single map task.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "coded/coded.h"
#include "coded/plan.h"
#include "core/opmr.h"
#include "net/loopback.h"
#include "net/tcp.h"
#include "workloads/clickstream.h"
#include "workloads/tasks.h"

namespace opmr {
namespace {

using Rows = std::vector<std::pair<std::string, std::string>>;

std::map<std::string, std::string> AsMap(const Rows& rows) {
  std::map<std::string, std::string> m;
  for (const auto& [k, v] : rows) {
    EXPECT_TRUE(m.emplace(k, v).second) << "duplicate key " << k;
  }
  return m;
}

// --- CodedPlan ---------------------------------------------------------------

std::vector<BlockInfo> SyntheticBlocks(int n, int replication, int num_nodes) {
  std::vector<BlockInfo> blocks(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    blocks[i].block_id = static_cast<std::uint64_t>(1000 + i);
    for (int p = 0; p < replication; ++p) {
      blocks[i].replica_nodes.push_back((i + p) % num_nodes);
    }
  }
  return blocks;
}

TEST(CodedPlan, HoldersAreSortedRSubsetsDerivedDeterministically) {
  const auto blocks = SyntheticBlocks(10, 2, 3);
  const auto plan = coded::CodedPlan::Build(blocks, /*num_reducers=*/5,
                                            /*r=*/2, /*seed=*/42);
  const auto again = coded::CodedPlan::Build(blocks, 5, 2, 42);
  ASSERT_EQ(plan.num_tasks(), 10);
  for (int t = 0; t < plan.num_tasks(); ++t) {
    const auto& h = plan.holders(t);
    ASSERT_EQ(h.size(), 2u);
    EXPECT_TRUE(std::is_sorted(h.begin(), h.end()));
    EXPECT_EQ(std::set<int>(h.begin(), h.end()).size(), h.size());
    for (int node : h) {
      EXPECT_GE(node, 0);
      EXPECT_LT(node, 5);
    }
    EXPECT_EQ(again.holders(t), h) << "plan must be a pure function";
  }
  ASSERT_EQ(again.groups().size(), plan.groups().size());
  for (std::size_t g = 0; g < plan.groups().size(); ++g) {
    EXPECT_EQ(again.groups()[g].nodes, plan.groups()[g].nodes);
    EXPECT_EQ(again.groups()[g].tasks_for, plan.groups()[g].tasks_for);
  }
}

TEST(CodedPlan, EveryNonHolderIsServedByExactlyOneGroup) {
  const auto blocks = SyntheticBlocks(12, 2, 4);
  const auto plan = coded::CodedPlan::Build(blocks, /*num_reducers=*/5,
                                            /*r=*/2, /*seed=*/1);
  for (int t = 0; t < plan.num_tasks(); ++t) {
    const auto& holders = plan.holders(t);
    std::set<int> served;
    for (int g : plan.groups_of_task(t)) {
      const auto& group = plan.groups()[static_cast<std::size_t>(g)];
      ASSERT_EQ(group.nodes.size(), 3u);  // r + 1
      // Exactly one member receives t from this group: the non-holder.
      int receivers = 0;
      for (std::size_t j = 0; j < group.nodes.size(); ++j) {
        const auto& owed = group.tasks_for[j];
        if (std::find(owed.begin(), owed.end(), t) == owed.end()) continue;
        ++receivers;
        EXPECT_FALSE(std::binary_search(holders.begin(), holders.end(),
                                        group.nodes[j]));
        EXPECT_TRUE(served.insert(group.nodes[j]).second)
            << "node served twice for task " << t;
      }
      EXPECT_EQ(receivers, 1);
    }
    // The receivers across t's groups are precisely the non-holders.
    EXPECT_EQ(served.size(),
              static_cast<std::size_t>(plan.num_reducers()) - holders.size());
    for (int h : holders) EXPECT_EQ(served.count(h), 0u);
  }
}

TEST(CodedPlan, PartLengthsPartitionTheStream) {
  const auto blocks = SyntheticBlocks(4, 3, 4);
  const auto plan = coded::CodedPlan::Build(blocks, 6, 3, 9);
  for (std::uint64_t total : {0ull, 1ull, 2ull, 3ull, 1000ull, 65537ull}) {
    const auto parts = plan.PartLengths(total);
    ASSERT_EQ(parts.size(), 3u);
    std::uint64_t sum = 0;
    for (auto p : parts) sum += p;
    EXPECT_EQ(sum, total);
    EXPECT_LE(parts.back(), parts.front());
    EXPECT_LE(parts.front() - parts.back(), 1u);
  }
}

TEST(CodedPlan, RejectsDegenerateShapes) {
  const auto blocks = SyntheticBlocks(3, 1, 2);
  EXPECT_THROW(coded::CodedPlan::Build(blocks, 3, 0, 1),
               std::invalid_argument);
  EXPECT_THROW(coded::CodedPlan::Build(blocks, 2, 2, 1),
               std::invalid_argument);
}

// --- Unit framing ------------------------------------------------------------

TEST(CodedUnits, FramingRoundTripsAndRejectsMalformedStreams) {
  std::string stream;
  coded::CodedUnit a;
  a.sorted = true;
  a.records = 7;
  a.bytes = "hello";
  coded::CodedUnit b;  // empty payload unit
  coded::AppendUnit(&stream, 3, a);
  coded::AppendUnit(&stream, 11, b);

  std::vector<std::pair<int, coded::CodedUnit>> parsed;
  ASSERT_TRUE(coded::ParseUnits(stream, &parsed));
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].first, 3);
  EXPECT_TRUE(parsed[0].second.sorted);
  EXPECT_EQ(parsed[0].second.records, 7u);
  EXPECT_EQ(parsed[0].second.bytes, "hello");
  EXPECT_EQ(parsed[1].first, 11);
  EXPECT_EQ(parsed[1].second.bytes, "");

  // Truncations must fail — except a cut landing exactly on the unit
  // boundary, which is simply a valid shorter stream.
  const std::size_t first_unit = 4 + 1 + 8 + 4 + a.bytes.size();
  for (std::size_t cut = 1; cut < stream.size(); ++cut) {
    std::vector<std::pair<int, coded::CodedUnit>> out;
    if (cut == first_unit) {
      EXPECT_TRUE(coded::ParseUnits(stream.substr(0, cut), &out));
      EXPECT_EQ(out.size(), 1u);
      continue;
    }
    EXPECT_FALSE(coded::ParseUnits(stream.substr(0, cut), &out))
        << "cut at " << cut;
  }
  // A flag byte outside {0, 1} is malformed.
  std::string bad = stream;
  bad[4] = '\x02';
  std::vector<std::pair<int, coded::CodedUnit>> out;
  EXPECT_FALSE(coded::ParseUnits(bad, &out));
}

// --- End-to-end byte identity ------------------------------------------------

enum class Wire { kDirect, kLoopback, kTcp };

struct Outcome {
  JobResult result;
  Rows rows;
};

Outcome RunCoded(Wire wire, int coded_r, const std::string& fault_plan = "",
                 int kill_node = -1, std::uint64_t kill_after = 0) {
  PlatformOptions popts;
  popts.num_nodes = 3;
  popts.block_bytes = 256u << 10;
  popts.replication = 3;
  popts.fault_plan = fault_plan;
  Platform platform(popts);
  ClickStreamOptions gen;
  gen.num_records = 40'000;
  gen.num_users = 5'000;
  GenerateClickStream(platform.dfs(), "clicks", gen);
  const JobSpec spec = PerUserCountJob("clicks", "out", 4);

  if (coded_r > 0) platform.executor().set_coded(coded_r);
  if (kill_node >= 0) platform.executor().set_coded_kill(kill_node, kill_after);

  Outcome out;
  switch (wire) {
    case Wire::kDirect:
      out.result = platform.Run(spec, HashOnePassOptions());
      break;
    case Wire::kLoopback: {
      net::LoopbackTransport transport(&platform.metrics());
      out.result =
          platform.RunWithTransport(spec, HashOnePassOptions(), &transport);
      break;
    }
    case Wire::kTcp: {
      net::TcpTransport transport(&platform.metrics());
      transport.Bind();
      out.result =
          platform.RunWithTransport(spec, HashOnePassOptions(), &transport);
      break;
    }
  }
  out.rows = platform.ReadOutput("out", 4);
  return out;
}

TEST(CodedShuffle, ByteIdenticalToDirectAtR2OverLoopbackAndTcp) {
  const auto direct = RunCoded(Wire::kDirect, /*coded_r=*/0);
  const auto truth = AsMap(direct.rows);
  ASSERT_GT(truth.size(), 0u);

  for (Wire wire : {Wire::kLoopback, Wire::kTcp}) {
    const auto coded = RunCoded(wire, /*coded_r=*/2);
    EXPECT_EQ(AsMap(coded.rows), truth);
    EXPECT_EQ(coded.result.output_records, direct.result.output_records);
    EXPECT_GT(coded.result.Bytes(coded::kCodedFrames), 0);
    EXPECT_GT(coded.result.Bytes(coded::kCodedDecodedUnits), 0);
    EXPECT_GT(coded.result.Bytes(coded::kCodedLocalUnits), 0);
    // Prepare re-ran every task once per holder: T × r re-maps, and the
    // job itself never retried a map task.
    EXPECT_EQ(coded.result.Bytes(coded::kCodedRemapTasks),
              2 * coded.result.num_map_tasks);
    EXPECT_EQ(coded.result.map_task_retries, 0);
  }
}

TEST(CodedShuffle, ByteIdenticalToDirectAtR3) {
  const auto direct = RunCoded(Wire::kDirect, 0);
  const auto coded = RunCoded(Wire::kLoopback, /*coded_r=*/3);
  EXPECT_EQ(AsMap(coded.rows), AsMap(direct.rows));
  EXPECT_EQ(coded.result.Bytes(coded::kCodedRemapTasks),
            3 * coded.result.num_map_tasks);
}

TEST(CodedShuffle, CodedPayloadShrinksVersusUncodedUnicast) {
  // r=1 is degenerate coding: singleton holder sets, XOR of one part —
  // plain unicast through the coded path.  r=2 must ship materially fewer
  // coded payload bytes for the same job (each frame serves two peers).
  const auto r1 = RunCoded(Wire::kLoopback, 1);
  const auto r2 = RunCoded(Wire::kLoopback, 2);
  EXPECT_EQ(AsMap(r2.rows), AsMap(r1.rows));
  const auto payload1 = r1.result.Bytes(coded::kCodedPayloadBytes);
  const auto payload2 = r2.result.Bytes(coded::kCodedPayloadBytes);
  ASSERT_GT(payload1, 0);
  ASSERT_GT(payload2, 0);
  EXPECT_GT(static_cast<double>(payload1), 1.5 * payload2);
}

TEST(CodedShuffle, InjectedConnDropIsInvisibleInTheAnswer) {
  const auto clean = RunCoded(Wire::kDirect, 0);
  const auto dropped =
      RunCoded(Wire::kTcp, /*coded_r=*/2, "seed=7;conn_drop:record=2");
  EXPECT_EQ(AsMap(dropped.rows), AsMap(clean.rows));
  EXPECT_GE(dropped.result.faults_injected, 1);
  EXPECT_GE(dropped.result.net_reconnects, 1);
}

TEST(CodedShuffle, MidJobKillIsRecoveredFromReplicasWithoutMapRerun) {
  const auto clean = RunCoded(Wire::kDirect, 0);
  // Node 1 of the coded plane loses its entire re-mapped store after two
  // coded frames have been applied — mid-shuffle, with most groups still
  // undecoded.  Peeling falls back to the surviving replica's identical
  // store; no map task runs again.
  const auto killed = RunCoded(Wire::kLoopback, /*coded_r=*/2,
                               /*fault_plan=*/"", /*kill_node=*/1,
                               /*kill_after=*/2);
  EXPECT_EQ(AsMap(killed.rows), AsMap(clean.rows));
  EXPECT_GT(killed.result.Bytes(coded::kCodedReconstructedSegments), 0);
  EXPECT_EQ(killed.result.map_task_retries, 0)
      << "reconstruction must not re-execute maps";
  EXPECT_EQ(killed.result.Bytes(coded::kCodedRemapTasks),
            2 * killed.result.num_map_tasks)
      << "only the up-front Prepare() re-maps, never recovery";
}

// --- Validation --------------------------------------------------------------

TEST(CodedShuffle, RejectsDirectTransportWithActionableError) {
  PlatformOptions popts;
  popts.num_nodes = 3;
  popts.replication = 2;
  Platform platform(popts);
  ClickStreamOptions gen;
  gen.num_records = 100;
  GenerateClickStream(platform.dfs(), "clicks", gen);
  const JobSpec spec = PerUserCountJob("clicks", "out", 4);
  platform.executor().set_coded(2);
  try {
    platform.Run(spec, HashOnePassOptions());
    FAIL() << "coded_r without a transport must be rejected";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("transport"), std::string::npos)
        << e.what();
  }
}

TEST(CodedShuffle, RejectsPullShuffleAndThinReplication) {
  PlatformOptions popts;
  popts.num_nodes = 3;
  popts.replication = 1;  // < r
  Platform platform(popts);
  ClickStreamOptions gen;
  gen.num_records = 100;
  GenerateClickStream(platform.dfs(), "clicks", gen);
  platform.executor().set_coded(2);

  net::LoopbackTransport transport(&platform.metrics());
  try {
    platform.RunWithTransport(PerUserCountJob("clicks", "out", 4),
                              HadoopOptions(), &transport);
    FAIL() << "coded_r under pull shuffle must be rejected";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("push"), std::string::npos)
        << e.what();
  }
  net::LoopbackTransport transport2(&platform.metrics());
  try {
    platform.RunWithTransport(PerUserCountJob("clicks", "out", 4),
                              HashOnePassOptions(), &transport2);
    FAIL() << "replication < r must be rejected";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("replication"), std::string::npos)
        << e.what();
  }
}

TEST(CodedShuffle, RejectsTooFewReducers) {
  PlatformOptions popts;
  popts.num_nodes = 3;
  popts.replication = 2;
  Platform platform(popts);
  ClickStreamOptions gen;
  gen.num_records = 100;
  GenerateClickStream(platform.dfs(), "clicks", gen);
  platform.executor().set_coded(2);
  net::LoopbackTransport transport(&platform.metrics());
  try {
    platform.RunWithTransport(PerUserCountJob("clicks", "out", 2),
                              HashOnePassOptions(), &transport);
    FAIL() << "num_reducers < r + 1 must be rejected";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("num_reducers"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace opmr
