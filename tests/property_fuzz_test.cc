// Randomized end-to-end property tests.
//
// Invariant: for any input distribution and any runtime configuration, a
// counting job must produce exactly the reference per-key totals, and a
// holistic job must see exactly the reference value multiset per key.
// The parameter grid deliberately includes pathological buffer sizes that
// force every spill / merge / divert / recursion path.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/opmr.h"
#include "engine/aggregators.h"

namespace opmr {
namespace {

struct FuzzConfig {
  std::string name;
  GroupBy group_by;
  Shuffle shuffle;
  HashReduce hash_reduce;
  bool combine;
  std::size_t map_buffer;
  std::size_t reduce_buffer;
  int merge_factor;
  int reducers;
  bool compress = false;
};

class CountingFuzz : public ::testing::TestWithParam<FuzzConfig> {};

// Seeds chosen per-test for variety but deterministic reproduction.
constexpr std::uint64_t kDataSeed = 0xfeedbeef;

void LoadRandomKv(Platform& platform, const std::string& name,
                  std::map<std::string, std::uint64_t>* truth,
                  int num_records, int key_space) {
  Rng rng(kDataSeed);
  auto writer = platform.dfs().Create(name);
  std::string record;
  for (int i = 0; i < num_records; ++i) {
    // Mixed-length keys, including empty-ish and long keys.
    std::string key;
    const auto kind = rng.Uniform(20);
    if (kind == 0) {
      key = "k";
    } else if (kind == 1) {
      key = "very-long-key-" + std::string(100, 'x') +
            std::to_string(rng.Uniform(5));
    } else {
      key = "key-" + std::to_string(rng.Uniform(key_space));
    }
    const std::uint64_t weight = 1 + rng.Uniform(9);
    (*truth)[key] += weight;
    record = key + "\t" + std::to_string(weight);
    writer->Append(record);
  }
  writer->Close();
}

JobSpec SumJob(const std::string& input, const std::string& output,
               int reducers) {
  JobSpec spec;
  spec.name = "fuzz_sum";
  spec.input_file = input;
  spec.output_file = output;
  spec.num_reducers = reducers;
  spec.aggregator = std::make_shared<SumAggregator>();
  spec.map = [](Slice record, OutputCollector& out) {
    const auto tab = record.view().find('\t');
    const std::uint64_t weight =
        std::stoull(std::string(record.view().substr(tab + 1)));
    out.Emit(Slice(record.data(), tab), EncodeValueU64(weight));
  };
  return spec;
}

TEST_P(CountingFuzz, ExactTotalsUnderAllConfigurations) {
  const FuzzConfig& cfg = GetParam();

  Platform platform({.num_nodes = 2, .block_bytes = 64u << 10});
  std::map<std::string, std::uint64_t> truth;
  LoadRandomKv(platform, "kv", &truth, 20'000, 700);

  JobOptions options;
  options.group_by = cfg.group_by;
  options.shuffle = cfg.shuffle;
  options.hash_reduce = cfg.hash_reduce;
  options.map_side_combine = cfg.combine;
  options.map_buffer_bytes = cfg.map_buffer;
  options.reduce_buffer_bytes = cfg.reduce_buffer;
  options.merge_factor = cfg.merge_factor;
  options.hot_key_capacity = 32;  // tiny: maximal churn
  options.push_chunk_bytes = 1u << 10;
  options.push_queue_chunks = 2;
  options.compress_spills = cfg.compress;

  platform.Run(SumJob("kv", "out", cfg.reducers), options);

  std::map<std::string, std::uint64_t> actual;
  for (const auto& [k, v] : platform.ReadOutput("out", cfg.reducers)) {
    EXPECT_EQ(actual.count(k), 0u) << "duplicate key in output: " << k;
    actual[k] = DecodeValueU64(v);
  }
  EXPECT_EQ(actual, truth);
}

std::vector<FuzzConfig> CountingGrid() {
  std::vector<FuzzConfig> grid;
  const std::size_t kTinyBuf = 4u << 10;
  const std::size_t kBigBuf = 8u << 20;
  // Sort-merge: both shuffles, combine on/off, tiny and big buffers, F=2.
  for (bool combine : {true, false}) {
    for (auto shuffle : {Shuffle::kPull, Shuffle::kPush}) {
      for (std::size_t buf : {kTinyBuf, kBigBuf}) {
        grid.push_back({"", GroupBy::kSortMerge, shuffle,
                        HashReduce::kHybridHash, combine, buf, buf, 2, 3});
      }
    }
  }
  // Hash paths.
  for (auto path : {HashReduce::kHybridHash, HashReduce::kIncremental,
                    HashReduce::kHotKeyIncremental}) {
    for (bool combine : {true, false}) {
      for (std::size_t buf : {kTinyBuf, kBigBuf}) {
        grid.push_back({"", GroupBy::kHash, Shuffle::kPush, path, combine,
                        buf, buf, 10, 3});
      }
    }
  }
  // Single reducer edge case.
  grid.push_back({"", GroupBy::kSortMerge, Shuffle::kPull,
                  HashReduce::kHybridHash, true, kBigBuf, kBigBuf, 10, 1});
  grid.push_back({"", GroupBy::kHash, Shuffle::kPush,
                  HashReduce::kIncremental, true, kBigBuf, kBigBuf, 10, 1});
  // Compressed-spill variants, pinned to the tiny buffers that force every
  // spill path through the codec.
  grid.push_back({"", GroupBy::kSortMerge, Shuffle::kPull,
                  HashReduce::kHybridHash, false, kTinyBuf, kTinyBuf, 2, 3,
                  true});
  grid.push_back({"", GroupBy::kHash, Shuffle::kPush,
                  HashReduce::kIncremental, false, kTinyBuf, kTinyBuf, 10, 3,
                  true});
  grid.push_back({"", GroupBy::kHash, Shuffle::kPush,
                  HashReduce::kHybridHash, false, kTinyBuf, kTinyBuf, 10, 3,
                  true});
  grid.push_back({"", GroupBy::kHash, Shuffle::kPush,
                  HashReduce::kHotKeyIncremental, false, kTinyBuf, kTinyBuf,
                  10, 3, true});

  for (std::size_t i = 0; i < grid.size(); ++i) {
    auto& g = grid[i];
    g.name = std::string(g.group_by == GroupBy::kSortMerge ? "sm" : "hash") +
             (g.group_by == GroupBy::kHash
                  ? (g.hash_reduce == HashReduce::kHybridHash    ? "_hybrid"
                     : g.hash_reduce == HashReduce::kIncremental ? "_incr"
                                                                 : "_hotkey")
                  : "") +
             (g.shuffle == Shuffle::kPush ? "_push" : "_pull") +
             (g.combine ? "_combine" : "_nocombine") +
             (g.map_buffer < (1u << 20) ? "_tinybuf" : "_bigbuf") + "_r" +
             std::to_string(g.reducers) + (g.compress ? "_oz" : "");
  }
  return grid;
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, CountingFuzz,
                         ::testing::ValuesIn(CountingGrid()),
                         [](const auto& info) { return info.param.name; });

// --- Holistic job fuzz ---------------------------------------------------------

struct HolisticConfig {
  std::string name;
  GroupBy group_by;
  Shuffle shuffle;
  std::size_t buffers;
};

class HolisticFuzz : public ::testing::TestWithParam<HolisticConfig> {};

TEST_P(HolisticFuzz, ValueMultisetsSurviveGrouping) {
  const auto& cfg = GetParam();
  Platform platform({.num_nodes = 2, .block_bytes = 64u << 10});

  Rng rng(kDataSeed ^ 0x77);
  std::map<std::string, std::multiset<std::string>> truth;
  auto writer = platform.dfs().Create("kv");
  for (int i = 0; i < 10'000; ++i) {
    const std::string key = "g" + std::to_string(rng.Uniform(200));
    const std::string value = "v" + std::to_string(rng.Next() % 1000);
    truth[key].insert(value);
    writer->Append(key + "\t" + value);
  }
  writer->Close();

  JobSpec spec;
  spec.name = "fuzz_collect";
  spec.input_file = "kv";
  spec.output_file = "out";
  spec.num_reducers = 3;
  spec.map = [](Slice record, OutputCollector& out) {
    const auto tab = record.view().find('\t');
    out.Emit(Slice(record.data(), tab),
             Slice(record.data() + tab + 1, record.size() - tab - 1));
  };
  // Emit the group's sorted value list so output is order-independent.
  spec.reduce = [](Slice key, ValueIterator& values, OutputCollector& out) {
    std::vector<std::string> all;
    Slice v;
    while (values.Next(&v)) all.push_back(v.ToString());
    std::sort(all.begin(), all.end());
    std::string joined;
    for (const auto& s : all) {
      joined += s;
      joined += ',';
    }
    out.Emit(key, joined);
  };

  JobOptions options;
  options.group_by = cfg.group_by;
  options.shuffle = cfg.shuffle;
  options.hash_reduce = HashReduce::kHybridHash;
  options.map_buffer_bytes = cfg.buffers;
  options.reduce_buffer_bytes = cfg.buffers;
  options.merge_factor = 3;
  platform.Run(spec, options);

  std::map<std::string, std::string> actual;
  for (const auto& [k, v] : platform.ReadOutput("out", 3)) actual[k] = v;

  ASSERT_EQ(actual.size(), truth.size());
  for (const auto& [key, values] : truth) {
    std::string joined;
    for (const auto& s : values) {
      joined += s;
      joined += ',';
    }
    EXPECT_EQ(actual.at(key), joined) << key;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, HolisticFuzz,
    ::testing::Values(
        HolisticConfig{"sm_pull_tiny", GroupBy::kSortMerge, Shuffle::kPull,
                       4u << 10},
        HolisticConfig{"sm_push_tiny", GroupBy::kSortMerge, Shuffle::kPush,
                       4u << 10},
        HolisticConfig{"sm_pull_big", GroupBy::kSortMerge, Shuffle::kPull,
                       8u << 20},
        HolisticConfig{"hash_hybrid_tiny", GroupBy::kHash, Shuffle::kPush,
                       4u << 10},
        HolisticConfig{"hash_hybrid_big", GroupBy::kHash, Shuffle::kPush,
                       8u << 20}),
    [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace opmr
