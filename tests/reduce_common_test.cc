#include "engine/reduce_common.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "engine/aggregators.h"
#include "storage/record_stream.h"

namespace opmr {
namespace {

std::string FrameRecords(
    const std::vector<std::pair<std::string, std::string>>& records) {
  std::string blob;
  for (const auto& [k, v] : records) {
    AppendU32(blob, static_cast<std::uint32_t>(k.size()));
    AppendU32(blob, static_cast<std::uint32_t>(v.size()));
    blob += k;
    blob += v;
  }
  return blob;
}

class CollectingOutput final : public OutputCollector {
 public:
  void Emit(Slice key, Slice value) override {
    rows.emplace_back(key.ToString(), value.ToString());
  }
  std::vector<std::pair<std::string, std::string>> rows;
};

TEST(GroupedApply, GroupsConsecutiveEqualKeys) {
  const std::string blob = FrameRecords(
      {{"a", "1"}, {"a", "2"}, {"b", "3"}, {"c", "4"}, {"c", "5"}});
  MemoryRunStream stream{Slice(blob)};
  std::map<std::string, std::vector<std::string>> groups;
  GroupedApply(stream, [&](Slice key, ValueIterator& values) {
    Slice v;
    while (values.Next(&v)) groups[key.ToString()].push_back(v.ToString());
  });
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups["a"], (std::vector<std::string>{"1", "2"}));
  EXPECT_EQ(groups["b"], (std::vector<std::string>{"3"}));
  EXPECT_EQ(groups["c"], (std::vector<std::string>{"4", "5"}));
}

TEST(GroupedApply, HandlesPartialConsumption) {
  const std::string blob = FrameRecords(
      {{"a", "1"}, {"a", "2"}, {"a", "3"}, {"b", "4"}});
  MemoryRunStream stream{Slice(blob)};
  std::vector<std::string> keys;
  GroupedApply(stream, [&](Slice key, ValueIterator& values) {
    keys.push_back(key.ToString());
    Slice v;
    values.Next(&v);  // consume only the first value of each group
  });
  EXPECT_EQ(keys, (std::vector<std::string>{"a", "b"}));
}

TEST(GroupedApply, SingleGroupAndEmptyStream) {
  const std::string blob = FrameRecords({{"only", "v"}});
  MemoryRunStream stream{Slice(blob)};
  int calls = 0;
  GroupedApply(stream, [&](Slice, ValueIterator& values) {
    ++calls;
    Slice v;
    int n = 0;
    while (values.Next(&v)) ++n;
    EXPECT_EQ(n, 1);
  });
  EXPECT_EQ(calls, 1);

  MemoryRunStream empty{Slice()};
  GroupedApply(empty, [&](Slice, ValueIterator&) { FAIL(); });
}

TEST(GroupedApply, EmptyKeysFormAGroup) {
  const std::string blob = FrameRecords({{"", "1"}, {"", "2"}, {"k", "3"}});
  MemoryRunStream stream{Slice(blob)};
  std::map<std::string, int> counts;
  GroupedApply(stream, [&](Slice key, ValueIterator& values) {
    Slice v;
    while (values.Next(&v)) ++counts[key.ToString()];
  });
  EXPECT_EQ(counts[""], 2);
  EXPECT_EQ(counts["k"], 1);
}

TEST(GroupedApply, GroupPrefixMergesCompositeKeys) {
  // Secondary-sort grouping: keys <group(2)><suffix> with a 2-byte prefix.
  const std::string blob = FrameRecords(
      {{"aa1", "v1"}, {"aa2", "v2"}, {"ab9", "v3"}, {"ab9", "v4"}});
  MemoryRunStream stream{Slice(blob)};
  std::vector<std::pair<std::string, std::vector<std::string>>> groups;
  GroupedApply(
      stream,
      [&](Slice key, ValueIterator& values) {
        std::vector<std::string> vs;
        Slice v;
        while (values.Next(&v)) vs.push_back(v.ToString());
        groups.emplace_back(key.ToString(), std::move(vs));
      },
      /*group_prefix=*/2);
  ASSERT_EQ(groups.size(), 2u);
  // fn receives the group's FIRST full key and all values in order.
  EXPECT_EQ(groups[0].first, "aa1");
  EXPECT_EQ(groups[0].second, (std::vector<std::string>{"v1", "v2"}));
  EXPECT_EQ(groups[1].first, "ab9");
  EXPECT_EQ(groups[1].second, (std::vector<std::string>{"v3", "v4"}));
}

TEST(GroupedApply, GroupPrefixLongerThanKeyUsesWholeKey) {
  const std::string blob = FrameRecords({{"ab", "1"}, {"ab", "2"},
                                         {"cd", "3"}});
  MemoryRunStream stream{Slice(blob)};
  int groups = 0;
  GroupedApply(
      stream,
      [&](Slice, ValueIterator& values) {
        ++groups;
        Slice v;
        while (values.Next(&v)) {
        }
      },
      /*group_prefix=*/10);
  EXPECT_EQ(groups, 2);
}

TEST(MakeReduceFn, UsesHolisticReduceWhenProvided) {
  JobSpec spec;
  spec.reduce = [](Slice key, ValueIterator& values, OutputCollector& out) {
    Slice v;
    int n = 0;
    while (values.Next(&v)) ++n;
    out.Emit(key, std::to_string(n));
  };
  const auto fn = MakeReduceFn(spec, false);

  const std::string blob = FrameRecords({{"k", "x"}, {"k", "y"}});
  MemoryRunStream stream{Slice(blob)};
  CollectingOutput out;
  GroupedApply(stream, [&](Slice key, ValueIterator& values) {
    fn(key, values, out);
  });
  ASSERT_EQ(out.rows.size(), 1u);
  EXPECT_EQ(out.rows[0].second, "2");
}

TEST(MakeReduceFn, AggregatorFoldsRawValues) {
  JobSpec spec;
  spec.aggregator = std::make_shared<SumAggregator>();
  const auto fn = MakeReduceFn(spec, /*values_are_states=*/false);

  const std::string blob = FrameRecords(
      {{"k", EncodeValueU64(3)}, {"k", EncodeValueU64(4)}});
  MemoryRunStream stream{Slice(blob)};
  CollectingOutput out;
  GroupedApply(stream, [&](Slice key, ValueIterator& values) {
    fn(key, values, out);
  });
  ASSERT_EQ(out.rows.size(), 1u);
  EXPECT_EQ(DecodeValueU64(out.rows[0].second), 7u);
}

TEST(MakeReduceFn, AggregatorMergesStates) {
  JobSpec spec;
  spec.aggregator = std::make_shared<SumAggregator>();
  const auto fn = MakeReduceFn(spec, /*values_are_states=*/true);

  const std::string blob = FrameRecords(
      {{"k", EncodeValueU64(10)}, {"k", EncodeValueU64(20)}});
  MemoryRunStream stream{Slice(blob)};
  CollectingOutput out;
  GroupedApply(stream, [&](Slice key, ValueIterator& values) {
    fn(key, values, out);
  });
  EXPECT_EQ(DecodeValueU64(out.rows[0].second), 30u);
}

TEST(MakeReduceFn, ThrowsWithoutReduceOrAggregator) {
  JobSpec spec;
  EXPECT_THROW(MakeReduceFn(spec, false), std::invalid_argument);
}

TEST(EmissionLog, TracksFirstAndTotal) {
  WallTimer start;
  EmissionLog log(&start);
  EXPECT_LT(log.first_emit_seconds(), 0.0);
  log.Record();
  log.Record(5);
  EXPECT_GE(log.first_emit_seconds(), 0.0);
  EXPECT_EQ(log.total(), 6u);
  log.Finish();
  EXPECT_FALSE(log.series().Snapshot().empty());
}

TEST(EmissionLog, SeriesIsCumulativeNonDecreasing) {
  WallTimer start;
  EmissionLog log(&start);
  for (int i = 0; i < 5000; ++i) log.Record();
  log.Finish();
  const auto samples = log.series().Snapshot();
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i].value, samples[i - 1].value);
  }
  EXPECT_DOUBLE_EQ(samples.back().value, 5000.0);
}

}  // namespace
}  // namespace opmr
