// Streaming-mode tests: pipelined answers as data arrives, live queries,
// back-pressure, spill resolution, and agreement with the batch runtime.
#include "stream/streaming_job.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <thread>

#include "common/rng.h"
#include "core/opmr.h"
#include "engine/aggregators.h"
#include "engine/hll.h"
#include "workloads/clickstream.h"
#include "workloads/tasks.h"

namespace opmr {
namespace {

StreamingQuery CountByFirstField() {
  StreamingQuery query;
  query.name = "count_by_key";
  query.aggregator = std::make_shared<SumAggregator>();
  query.map = [](Slice record, OutputCollector& out) {
    static thread_local std::string one = EncodeValueU64(1);
    std::size_t tab = 0;
    while (tab < record.size() && record[tab] != '\t') ++tab;
    out.Emit(Slice(record.data(), tab), one);
  };
  return query;
}

TEST(Streaming, ExactCountsAtFinish) {
  StreamingJob job(CountByFirstField(), {}, /*workers=*/3);
  Rng rng(1);
  std::map<std::string, std::uint64_t> truth;
  for (int i = 0; i < 50'000; ++i) {
    const std::string key = "k" + std::to_string(rng.Uniform(400));
    ++truth[key];
    job.Ingest(key + "\tpayload");
  }
  EXPECT_EQ(job.records_ingested(), 50'000u);

  std::map<std::string, std::uint64_t> actual;
  for (const auto& [k, v] : job.Finish()) actual[k] = DecodeValueU64(v);
  EXPECT_EQ(actual, truth);
  EXPECT_EQ(job.pairs_routed(), 50'000u);
}

TEST(Streaming, LiveQueriesSeeCurrentState) {
  StreamingJob job(CountByFirstField(), {}, 2);
  for (int i = 0; i < 100; ++i) job.Ingest("hot\tx");
  // The worker consumes asynchronously; poll briefly for the fold.
  std::uint64_t seen = 0;
  for (int tries = 0; tries < 200; ++tries) {
    if (auto v = job.Query("hot"); v.has_value()) {
      seen = DecodeValueU64(*v);
      if (seen == 100) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(seen, 100u);
  EXPECT_FALSE(job.Query("never-seen").has_value());
  job.Finish();
}

TEST(Streaming, TopAnswersRankByAggregate) {
  StreamingJob job(CountByFirstField(), {}, 2);
  for (int i = 0; i < 300; ++i) job.Ingest("first\tx");
  for (int i = 0; i < 200; ++i) job.Ingest("second\tx");
  for (int i = 0; i < 100; ++i) job.Ingest("third\tx");
  // Wait for the workers to drain.
  for (int tries = 0; tries < 500; ++tries) {
    if (job.pairs_routed() == 600) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto top = job.TopAnswers(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, "first");
  EXPECT_EQ(top[1].first, "second");
  job.Finish();
}

TEST(Streaming, EarlyAnswersFireMidStream) {
  StreamingOptions options;
  std::atomic<int> fired{0};
  std::atomic<std::uint64_t> first_at{0};
  options.early_emit = [](Slice, Slice state) {
    return DecodeU64(state.data()) == 50;
  };
  options.on_early_answer = [&](Slice key, Slice value) {
    fired.fetch_add(1);
    EXPECT_EQ(key.ToString(), "popular");
    EXPECT_EQ(DecodeValueU64(value), 50u);
  };
  StreamingJob job(CountByFirstField(), options, 2);
  for (int i = 0; i < 49; ++i) job.Ingest("popular\tx");
  first_at = job.records_ingested();
  for (int i = 0; i < 51; ++i) job.Ingest("popular\tx");
  job.Finish();
  EXPECT_EQ(fired.load(), 1);
  EXPECT_EQ(job.early_answers(), 1u);
}

TEST(Streaming, TinyBudgetSpillsAndStaysExact) {
  StreamingOptions options;
  options.worker_budget_bytes = 8u << 10;  // force spills
  StreamingJob job(CountByFirstField(), options, 2);
  Rng rng(2);
  std::map<std::string, std::uint64_t> truth;
  for (int i = 0; i < 40'000; ++i) {
    const std::string key = "user-" + std::to_string(rng.Uniform(5'000));
    ++truth[key];
    job.Ingest(key + "\t.");
  }
  std::map<std::string, std::uint64_t> actual;
  for (const auto& [k, v] : job.Finish()) actual[k] = DecodeValueU64(v);
  EXPECT_EQ(actual, truth);
}

TEST(Streaming, HotKeyModeSpillsAndStaysExact) {
  StreamingOptions options;
  options.worker_budget_bytes = 8u << 10;
  options.hot_key_capacity = 64;
  StreamingJob job(CountByFirstField(), options, 2);
  ZipfSampler zipf(3'000, 1.1, 3);
  std::map<std::string, std::uint64_t> truth;
  for (int i = 0; i < 40'000; ++i) {
    const std::string key = "z" + std::to_string(zipf.Sample());
    ++truth[key];
    job.Ingest(key + "\t.");
  }
  std::map<std::string, std::uint64_t> actual;
  for (const auto& [k, v] : job.Finish()) actual[k] = DecodeValueU64(v);
  EXPECT_EQ(actual, truth);
}

TEST(Streaming, ConcurrentIngestThreadsAreExact) {
  StreamingJob job(CountByFirstField(), {}, 4);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10'000;
  {
    std::vector<std::jthread> producers;
    producers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      producers.emplace_back([&job, t] {
        Rng rng(100 + t);
        for (int i = 0; i < kPerThread; ++i) {
          job.Ingest("shared-" + std::to_string(rng.Uniform(64)) + "\tx");
        }
      });
    }
  }
  std::uint64_t total = 0;
  for (const auto& [k, v] : job.Finish()) total += DecodeValueU64(v);
  EXPECT_EQ(total, static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Streaming, IngestAfterFinishThrows) {
  StreamingJob job(CountByFirstField(), {}, 1);
  job.Ingest("k\tv");
  job.Finish();
  EXPECT_THROW(job.Ingest("k\tv"), std::logic_error);
  // Finish is idempotent.
  EXPECT_EQ(job.Finish().size(), 1u);
}

TEST(Streaming, ValidatesQueryAndWorkerCount) {
  StreamingQuery no_map;
  no_map.aggregator = std::make_shared<SumAggregator>();
  EXPECT_THROW(StreamingJob(no_map, {}, 1), std::invalid_argument);

  StreamingQuery no_agg;
  no_agg.map = [](Slice, OutputCollector&) {};
  EXPECT_THROW(StreamingJob(no_agg, {}, 1), std::invalid_argument);

  EXPECT_THROW(StreamingJob(CountByFirstField(), {}, 0),
               std::invalid_argument);
}

TEST(Streaming, FinishTwiceReturnsTheSameSortedResults) {
  StreamingJob job(CountByFirstField(), {}, 2);
  for (int i = 0; i < 5'000; ++i) {
    job.Ingest("k" + std::to_string(i % 97) + "\tx");
  }
  const auto first = job.Finish();
  ASSERT_EQ(first.size(), 97u);
  EXPECT_TRUE(std::is_sorted(
      first.begin(), first.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; }));
  const auto second = job.Finish();
  EXPECT_EQ(first, second);
}

TEST(Streaming, QueryAfterFinishServesFinalResults) {
  StreamingOptions options;
  options.worker_budget_bytes = 8u << 10;  // spill, so live queries miss keys
  StreamingJob job(CountByFirstField(), options, 2);
  Rng rng(5);
  std::map<std::string, std::uint64_t> truth;
  for (int i = 0; i < 30'000; ++i) {
    const std::string key = "u" + std::to_string(rng.Uniform(4'000));
    ++truth[key];
    job.Ingest(key + "\tx");
  }
  job.Finish();
  // Post-finish queries are exact for every key, including spilled ones.
  for (const auto& [key, count] : truth) {
    const auto answer = job.Query(key);
    ASSERT_TRUE(answer.has_value()) << key;
    EXPECT_EQ(DecodeValueU64(*answer), count) << key;
  }
  EXPECT_FALSE(job.Query("never-seen").has_value());
}

TEST(Streaming, HotKeyDemotionsAreDeterministicUnderSeededIngest) {
  // Single ingest thread + per-worker FIFO queues: the demotion sequence is
  // a pure function of the record order, so two identical seeded runs must
  // demote identically and agree on every answer.
  auto run = [](std::vector<std::pair<std::string, std::string>>* results) {
    StreamingOptions options;
    options.worker_budget_bytes = 8u << 10;
    options.hot_key_capacity = 64;
    StreamingJob job(CountByFirstField(), options, 2);
    ZipfSampler zipf(3'000, 1.1, 7);
    for (int i = 0; i < 30'000; ++i) {
      job.Ingest("z" + std::to_string(zipf.Sample()) + "\t.");
    }
    *results = job.Finish();
    return job.CounterValue("stream.demotions");
  };
  std::vector<std::pair<std::string, std::string>> a, b;
  const auto demotions_a = run(&a);
  const auto demotions_b = run(&b);
  EXPECT_GT(demotions_a, 0);
  EXPECT_EQ(demotions_a, demotions_b);
  EXPECT_EQ(a, b);
}

TEST(Streaming, AgreesWithBatchRuntimeOnClickStream) {
  // Same data, same query: batch one-pass runtime vs streaming ingestion.
  Platform platform({.num_nodes = 2, .block_bytes = 256u << 10});
  ClickStreamOptions gen;
  gen.num_records = 30'000;
  gen.num_users = 2'000;
  GenerateClickStream(platform.dfs(), "clicks", gen);
  platform.Run(PerUserCountJob("clicks", "batch_out", 2),
               HashOnePassOptions());
  std::map<std::string, std::uint64_t> batch;
  for (const auto& [k, v] : platform.ReadOutput("batch_out", 2)) {
    batch[k] = DecodeValueU64(v);
  }

  const auto batch_spec = PerUserCountJob("ignored", "ignored", 1);
  StreamingQuery query;
  query.name = "per_user_stream";
  query.map = batch_spec.map;
  query.aggregator = batch_spec.aggregator;
  StreamingJob job(std::move(query), {}, 3);
  for (const auto& block : platform.dfs().ListBlocks("clicks")) {
    auto reader = platform.dfs().OpenBlock(block);
    Slice record;
    while (reader->Next(&record)) job.Ingest(record);
  }
  std::map<std::string, std::uint64_t> streamed;
  for (const auto& [k, v] : job.Finish()) streamed[k] = DecodeValueU64(v);
  EXPECT_EQ(streamed, batch);
}

TEST(Streaming, HllAggregatorStreamsDistinctCounts) {
  StreamingQuery query;
  query.name = "distinct_stream";
  query.aggregator = std::make_shared<HllAggregator>(12);
  query.map = [](Slice record, OutputCollector& out) {
    const auto tab = record.view().find('\t');
    out.Emit(Slice(record.data(), tab),
             Slice(record.data() + tab + 1, record.size() - tab - 1));
  };
  StreamingJob job(std::move(query), {}, 2);
  for (int i = 0; i < 10'000; ++i) {
    job.Ingest("page\tvisitor-" + std::to_string(i % 2'500));
  }
  const auto results = job.Finish();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_NEAR(static_cast<double>(DecodeValueU64(results[0].second)), 2'500.0,
              180.0);
}

}  // namespace
}  // namespace opmr
