// Checkpoint subsystem tests: the CheckpointManager commit protocol
// (serialize → CRC → tmp+rename, retention, corruption fallback) and the
// recovery paths built on it — a crashed reduce task under the pipelined
// push shuffle restoring from its image and replaying only the
// un-acknowledged suffix (the Table III cell the paper's compared systems
// leave blank), and a streaming worker recovering mid-stream.
#include "checkpoint/checkpoint.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/opmr.h"
#include "engine/aggregators.h"
#include "metrics/counters.h"
#include "storage/file_manager.h"
#include "stream/streaming_job.h"
#include "workloads/clickstream.h"
#include "workloads/tasks.h"

namespace opmr {
namespace {

using Rows = std::vector<std::pair<std::string, std::string>>;

// --- CheckpointManager ------------------------------------------------------

class CheckpointManagerTest : public ::testing::Test {
 protected:
  CheckpointManagerTest() : files_(FileManager::CreateTemp("ckpt-test")) {}

  CheckpointManager Manager(CheckpointOptions options, int worker = 0) {
    options.enabled = true;
    return CheckpointManager(dir_, "unit job", worker, options, &metrics_);
  }

  static CheckpointImage SampleImage(std::uint64_t watermark) {
    CheckpointImage image;
    image.watermark = watermark;
    image.feeds = {{0, 100}, {3, 42}};
    image.spill_files.push_back({"/tmp/run0", 4096});
    image.sketch.push_back({"hot", 17, 2});
    image.sketch_stream_length = 123;
    image.entries.push_back({"alpha", std::string("\x01\x00s", 3), false});
    image.entries.push_back({"beta", "state-two", true});
    return image;
  }

  FileManager files_;
  std::filesystem::path dir_ = files_.NewDir("images");
  MetricRegistry metrics_;
};

TEST_F(CheckpointManagerTest, Crc32MatchesKnownVector) {
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
}

TEST_F(CheckpointManagerTest, RoundTripPreservesEveryField) {
  auto manager = Manager({.interval_records = 10});
  CheckpointImage image = SampleImage(777);
  EXPECT_GT(manager.Write(&image), 0u);
  EXPECT_EQ(image.seq, 1u);

  const auto loaded = manager.LoadLatest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->seq, 1u);
  EXPECT_EQ(loaded->watermark, 777u);
  EXPECT_EQ(loaded->feeds, SampleImage(0).feeds);
  ASSERT_EQ(loaded->spill_files.size(), 1u);
  EXPECT_EQ(loaded->spill_files[0].path, "/tmp/run0");
  EXPECT_EQ(loaded->spill_files[0].committed_bytes, 4096u);
  ASSERT_EQ(loaded->sketch.size(), 1u);
  EXPECT_EQ(loaded->sketch[0].key, "hot");
  EXPECT_EQ(loaded->sketch[0].count, 17u);
  EXPECT_EQ(loaded->sketch[0].error, 2u);
  EXPECT_EQ(loaded->sketch_stream_length, 123u);
  ASSERT_EQ(loaded->entries.size(), 2u);
  EXPECT_EQ(loaded->entries[0].key, "alpha");
  EXPECT_EQ(loaded->entries[0].state, std::string("\x01\x00s", 3));
  EXPECT_FALSE(loaded->entries[0].early_emitted);
  EXPECT_TRUE(loaded->entries[1].early_emitted);
  EXPECT_EQ(metrics_.Value("checkpoint.written"), 1);
  EXPECT_EQ(metrics_.Value("checkpoint.loaded"), 1);
}

TEST_F(CheckpointManagerTest, CompressedImagesRoundTrip) {
  auto manager = Manager({.interval_records = 10, .compress = true});
  CheckpointImage image = SampleImage(5);
  // Pad with repetitive states so compression has something to chew on.
  for (int i = 0; i < 500; ++i) {
    image.entries.push_back({"key-" + std::to_string(i),
                             std::string(64, 'a'), false});
  }
  manager.Write(&image);
  const auto loaded = manager.LoadLatest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->entries.size(), image.entries.size());
  EXPECT_EQ(loaded->entries.back().state, std::string(64, 'a'));
}

TEST_F(CheckpointManagerTest, RetentionKeepsOnlyLastK) {
  auto manager = Manager({.interval_records = 10, .retain = 2});
  for (std::uint64_t wm : {10u, 20u, 30u}) {
    CheckpointImage image = SampleImage(wm);
    manager.Write(&image);
  }
  std::size_t on_disk = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    on_disk += entry.path().extension() == ".ckpt" ? 1 : 0;
  }
  EXPECT_EQ(on_disk, 2u);
  // The ack point trails the retention window: any retained image restores.
  ASSERT_TRUE(manager.OldestRetainedWatermark().has_value());
  EXPECT_EQ(*manager.OldestRetainedWatermark(), 20u);
  const auto loaded = manager.LoadLatest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->watermark, 30u);
}

TEST_F(CheckpointManagerTest, CorruptLatestFallsBackToOlderImage) {
  auto manager = Manager({.interval_records = 10, .retain = 2});
  CheckpointImage first = SampleImage(100);
  manager.Write(&first);
  CheckpointImage second = SampleImage(200);
  manager.Write(&second);

  // Flip a payload byte in the newest image: CRC must reject it.
  std::filesystem::path newest;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    if (newest.empty() || entry.path().filename() > newest.filename()) {
      newest = entry.path();
    }
  }
  ASSERT_FALSE(newest.empty());
  {
    std::fstream f(newest, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-1, std::ios::end);
    f.put('\xFF');
  }
  const auto loaded = manager.LoadLatest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->watermark, 100u);
  EXPECT_EQ(metrics_.Value("checkpoint.corrupt"), 1);
}

TEST_F(CheckpointManagerTest, ResetDeletesStaleImages) {
  auto manager = Manager({.interval_records = 10});
  CheckpointImage image = SampleImage(7);
  manager.Write(&image);
  manager.Reset();
  EXPECT_FALSE(manager.LoadLatest().has_value());
  EXPECT_FALSE(manager.OldestRetainedWatermark().has_value());
}

TEST_F(CheckpointManagerTest, WorkersDoNotSeeEachOthersImages) {
  auto w0 = Manager({.interval_records = 10}, /*worker=*/0);
  auto w1 = Manager({.interval_records = 10}, /*worker=*/1);
  CheckpointImage image = SampleImage(50);
  w0.Write(&image);
  EXPECT_FALSE(w1.LoadLatest().has_value());
  ASSERT_TRUE(w0.LoadLatest().has_value());
}

TEST_F(CheckpointManagerTest, DueTracksConfiguredIntervals) {
  auto manager = Manager({.interval_records = 100, .interval_bytes = 1 << 20});
  EXPECT_FALSE(manager.Due());
  manager.OnProgress(99, 0);
  EXPECT_FALSE(manager.Due());
  manager.OnProgress(1, 0);
  EXPECT_TRUE(manager.Due());
  CheckpointImage image = SampleImage(1);
  manager.Write(&image);  // resets the trigger accounting
  EXPECT_FALSE(manager.Due());
  manager.OnProgress(0, 2u << 20);  // byte interval fires independently
  EXPECT_TRUE(manager.Due());
}

// --- multi-job GC of a shared checkpoint directory --------------------------

class CheckpointSweepTest : public CheckpointManagerTest {
 protected:
  CheckpointManager ManagerFor(const std::string& job, int worker) {
    CheckpointOptions options;
    options.enabled = true;
    options.interval_records = 10;
    return CheckpointManager(dir_, job, worker, options, &metrics_);
  }

  void WriteImage(CheckpointManager* manager, std::uint64_t watermark) {
    CheckpointImage image = SampleImage(watermark);
    manager->Write(&image);
  }
};

TEST_F(CheckpointSweepTest, SweepRemovesOnlyTheFinishedJobsImages) {
  auto done_w0 = ManagerFor("finished job", 0);
  auto done_w1 = ManagerFor("finished job", 1);
  auto live = ManagerFor("still running", 0);
  WriteImage(&done_w0, 10);
  WriteImage(&done_w1, 20);
  WriteImage(&live, 30);

  EXPECT_EQ(CheckpointManager::SweepFinishedJobs(dir_, "finished job"), 2);

  // The live job's image is untouched and still restorable.
  const auto survivor = live.LoadLatest();
  ASSERT_TRUE(survivor.has_value());
  EXPECT_EQ(survivor->watermark, 30u);
  // Every worker's image of the finished job is gone.
  EXPECT_FALSE(ManagerFor("finished job", 0).LoadLatest().has_value());
  EXPECT_FALSE(ManagerFor("finished job", 1).LoadLatest().has_value());
  // Sweeping again finds nothing.
  EXPECT_EQ(CheckpointManager::SweepFinishedJobs(dir_, "finished job"), 0);
}

TEST_F(CheckpointSweepTest, SweepCollectsDanglingTmpFiles) {
  // A crash between write and rename leaves a `.ckpt.tmp` sibling; the
  // sweep must collect it along with the committed images.
  auto manager = ManagerFor("crashy job", 0);
  WriteImage(&manager, 5);
  const auto tmp =
      dir_ / (CheckpointJobPrefix("crashy job") + "0_9.ckpt.tmp");
  { std::ofstream(tmp) << "torn write"; }
  ASSERT_TRUE(std::filesystem::exists(tmp));

  EXPECT_EQ(CheckpointManager::SweepFinishedJobs(dir_, "crashy job"), 2);
  EXPECT_FALSE(std::filesystem::exists(tmp));
}

TEST_F(CheckpointSweepTest, SweepNeverMatchesOnAMereNamePrefix) {
  // Job "alpha" and job "alpha_w2" both produce filenames starting with
  // "alpha_w"; the sweep must parse the worker/seq structure, not just the
  // string prefix.  Unrelated files in the directory are also off-limits.
  auto alpha = ManagerFor("alpha", 0);
  auto lookalike = ManagerFor("alpha_w2", 0);
  WriteImage(&alpha, 1);
  WriteImage(&lookalike, 2);
  const auto note = dir_ / "alpha_w0_notes.txt";
  { std::ofstream(note) << "not a checkpoint"; }

  EXPECT_EQ(CheckpointManager::SweepFinishedJobs(dir_, "alpha"), 1);
  const auto kept = ManagerFor("alpha_w2", 0).LoadLatest();
  ASSERT_TRUE(kept.has_value());
  EXPECT_EQ(kept->watermark, 2u);
  EXPECT_TRUE(std::filesystem::exists(note));
}

TEST_F(CheckpointSweepTest, SweepOfMissingDirectoryIsZeroNotAnError) {
  EXPECT_EQ(CheckpointManager::SweepFinishedJobs(dir_ / "never-created",
                                                 "any job"),
            0);
}

// --- batch engine: checkpointed recovery under push shuffle -----------------

struct RunOutcome {
  JobResult result;
  Rows rows;
};

RunOutcome RunCheckpointedPerUserCount(const std::string& fault_plan,
                                       std::uint64_t interval_records) {
  PlatformOptions popts;
  popts.num_nodes = 3;
  popts.block_bytes = 256u << 10;
  popts.max_task_attempts = 2;
  popts.retry_backoff_base_ms = 0.1;
  popts.retry_backoff_max_ms = 1.0;
  popts.fault_plan = fault_plan;
  Platform platform(popts);
  ClickStreamOptions gen;
  gen.num_records = 60'000;
  gen.num_users = 8'000;
  GenerateClickStream(platform.dfs(), "clicks", gen);
  RunOutcome out;
  out.result = platform.Run(PerUserCountJob("clicks", "out", 2),
                            CheckpointedOnePassOptions(interval_records));
  for (int r = 0; r < 2; ++r) {
    const auto part = platform.ReadOutputFile("out.part" + std::to_string(r));
    out.rows.insert(out.rows.end(), part.begin(), part.end());
  }
  return out;
}

// The PR's acceptance scenario: a reduce crash inside a push-pipelined job
// with checkpointing completes byte-identically to the clean run and
// replays only the records after the last checkpoint.
TEST(CheckpointRecovery, PushReduceCrashRestoresAndReplaysOnlySuffix) {
  // Interval chosen to land the last checkpoint mid-feed (~half the
  // reducer's records), leaving a real suffix for the replay to cover.
  const auto clean = RunCheckpointedPerUserCount("", 4'000);
  const auto chaos = RunCheckpointedPerUserCount(
      "seed=11;reduce_crash:task=1,record=50", 4'000);

  EXPECT_EQ(chaos.result.reduce_task_retries, 1);
  EXPECT_EQ(chaos.result.faults_injected, 1);
  EXPECT_GT(chaos.result.checkpoints_written, 0);
  EXPECT_GE(chaos.result.checkpoints_loaded, 1);
  EXPECT_GT(chaos.result.checkpoint_bytes, 0);
  // On completion the executor GCs the job's images from the checkpoint
  // directory (multi-job sweep).
  EXPECT_GT(chaos.result.checkpoints_swept, 0);
  // Suffix-only replay: more than nothing (the crash happened after the
  // last image), far less than the reducer's whole feed.
  EXPECT_GT(chaos.result.replay_records, 0);
  EXPECT_LT(chaos.result.replay_records,
            static_cast<std::int64_t>(chaos.result.map_output_records));
  ASSERT_GT(clean.rows.size(), 0u);
  EXPECT_EQ(chaos.rows, clean.rows);  // byte-identical, order included
}

TEST(CheckpointRecovery, CheckpointedOutputMatchesPlainHashRuntime) {
  // Checkpointing must be invisible in the answer: same rows as the plain
  // one-pass runtime (checkpointed parts are key-sorted, so compare as maps).
  const auto checkpointed = RunCheckpointedPerUserCount("", 2'000);
  PlatformOptions popts;
  popts.num_nodes = 3;
  popts.block_bytes = 256u << 10;
  Platform platform(popts);
  ClickStreamOptions gen;
  gen.num_records = 60'000;
  gen.num_users = 8'000;
  GenerateClickStream(platform.dfs(), "clicks", gen);
  platform.Run(PerUserCountJob("clicks", "out", 2), HashOnePassOptions());
  std::map<std::string, std::string> plain;
  for (int r = 0; r < 2; ++r) {
    for (const auto& [k, v] :
         platform.ReadOutputFile("out.part" + std::to_string(r))) {
      plain[k] = v;
    }
  }
  std::map<std::string, std::string> ckpt(checkpointed.rows.begin(),
                                          checkpointed.rows.end());
  EXPECT_EQ(ckpt, plain);
}

TEST(CheckpointRecovery, ReduceCrashWithoutCheckpointingReportsTableIII) {
  PlatformOptions popts;
  popts.num_nodes = 3;
  popts.block_bytes = 256u << 10;
  popts.max_task_attempts = 2;
  popts.retry_backoff_base_ms = 0.1;
  popts.fault_plan = "seed=11;reduce_crash:task=1,record=50";
  Platform platform(popts);
  ClickStreamOptions gen;
  gen.num_records = 60'000;
  gen.num_users = 8'000;
  GenerateClickStream(platform.dfs(), "clicks", gen);
  try {
    platform.Run(PerUserCountJob("clicks", "out", 2), HashOnePassOptions());
    FAIL() << "push reduce crash without checkpoints must not succeed";
  } catch (const std::runtime_error& e) {
    // A structured error naming the paper's trade-off, not a crash.
    EXPECT_NE(std::string(e.what()).find("pipelin"), std::string::npos)
        << e.what();
  }
}

TEST(CheckpointRecovery, ValidatesCheckpointOptionCombinations) {
  Platform platform({.num_nodes = 2, .block_bytes = 256u << 10});
  ClickStreamOptions gen;
  gen.num_records = 1'000;
  GenerateClickStream(platform.dfs(), "clicks", gen);
  const auto spec = PerUserCountJob("clicks", "out", 2);

  JobOptions sort_merge = HadoopOptions();
  sort_merge.checkpoint = CheckpointedOnePassOptions().checkpoint;
  EXPECT_THROW(platform.Run(spec, sort_merge), std::invalid_argument);

  JobOptions no_interval = CheckpointedOnePassOptions();
  no_interval.checkpoint.interval_records = 0;
  EXPECT_THROW(platform.Run(spec, no_interval), std::invalid_argument);

  JobOptions bad_retain = CheckpointedOnePassOptions();
  bad_retain.checkpoint.retain = 0;
  EXPECT_THROW(platform.Run(spec, bad_retain), std::invalid_argument);
}

// --- streaming: worker crash + recovery -------------------------------------

StreamingQuery CountQuery() {
  StreamingQuery query;
  query.name = "count by key";
  query.aggregator = std::make_shared<SumAggregator>();
  query.map = [](Slice record, OutputCollector& out) {
    static thread_local std::string one = EncodeValueU64(1);
    std::size_t tab = 0;
    while (tab < record.size() && record[tab] != '\t') ++tab;
    out.Emit(Slice(record.data(), tab), one);
  };
  return query;
}

TEST(StreamingRecovery, CrashedWorkerRestoresAndStreamStaysExact) {
  StreamingOptions options;
  options.checkpoint.enabled = true;
  options.checkpoint.interval_records = 500;
  StreamingJob job(CountQuery(), options, /*workers=*/2);

  Rng rng(21);
  std::vector<std::string> source;
  std::map<std::string, std::uint64_t> truth;
  source.reserve(20'000);
  for (int i = 0; i < 20'000; ++i) {
    const std::string key = "k" + std::to_string(rng.Uniform(600));
    ++truth[key];
    source.push_back(key + "\tx");
  }
  for (const auto& record : source) job.Ingest(record);

  job.CrashWorker(1);
  const std::uint64_t resume = job.Recover();
  // A checkpoint existed, so recovery starts past the beginning but before
  // the crash point — the replay is a strict suffix.
  EXPECT_GT(resume, 0u);
  EXPECT_LT(resume, source.size());
  EXPECT_EQ(job.records_ingested(), resume);
  EXPECT_GE(job.CounterValue("checkpoint.loaded"), 1);

  for (std::size_t i = resume; i < source.size(); ++i) job.Ingest(source[i]);
  EXPECT_EQ(job.CounterValue("recovery.replay_records"),
            static_cast<std::int64_t>(source.size() - resume));

  std::map<std::string, std::uint64_t> actual;
  for (const auto& [k, v] : job.Finish()) actual[k] = DecodeValueU64(v);
  EXPECT_EQ(actual, truth);
}

TEST(StreamingRecovery, HotKeyWorkerRecoversSketchAndSpills) {
  StreamingOptions options;
  options.checkpoint.enabled = true;
  options.checkpoint.interval_records = 400;
  options.worker_budget_bytes = 8u << 10;  // force demotions + spills
  options.hot_key_capacity = 64;
  StreamingJob job(CountQuery(), options, 2);

  ZipfSampler zipf(2'000, 1.1, 5);
  std::vector<std::string> source;
  std::map<std::string, std::uint64_t> truth;
  for (int i = 0; i < 30'000; ++i) {
    const std::string key = "z" + std::to_string(zipf.Sample());
    ++truth[key];
    source.push_back(key + "\t.");
  }
  for (const auto& record : source) job.Ingest(record);

  job.CrashWorker(0);
  const std::uint64_t resume = job.Recover();
  EXPECT_LT(resume, source.size());
  for (std::size_t i = resume; i < source.size(); ++i) job.Ingest(source[i]);

  std::map<std::string, std::uint64_t> actual;
  for (const auto& [k, v] : job.Finish()) actual[k] = DecodeValueU64(v);
  EXPECT_EQ(actual, truth);
}

TEST(StreamingRecovery, RecoveryRequiresCheckpointing) {
  StreamingJob job(CountQuery(), {}, 2);
  EXPECT_THROW(job.CrashWorker(0), std::logic_error);
  EXPECT_THROW(job.Recover(), std::logic_error);
  job.Finish();
}

TEST(StreamingRecovery, CheckpointingRejectsEarlyEmit) {
  StreamingOptions options;
  options.checkpoint.enabled = true;
  options.checkpoint.interval_records = 100;
  options.early_emit = [](Slice, Slice) { return false; };
  EXPECT_THROW(StreamingJob(CountQuery(), options, 1), std::invalid_argument);

  StreamingOptions no_interval;
  no_interval.checkpoint.enabled = true;
  EXPECT_THROW(StreamingJob(CountQuery(), no_interval, 1),
               std::invalid_argument);
}

TEST(StreamingRecovery, RecoverWithoutCrashIsANoOp) {
  StreamingOptions options;
  options.checkpoint.enabled = true;
  options.checkpoint.interval_records = 100;
  StreamingJob job(CountQuery(), options, 2);
  for (int i = 0; i < 1'000; ++i) job.Ingest("k" + std::to_string(i) + "\tx");
  EXPECT_EQ(job.Recover(), 1'000u);
  EXPECT_EQ(job.records_ingested(), 1'000u);
  EXPECT_EQ(job.Finish().size(), 1'000u);
}

}  // namespace
}  // namespace opmr
