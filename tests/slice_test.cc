#include "common/slice.h"

#include <gtest/gtest.h>

#include <string>

namespace opmr {
namespace {

TEST(Slice, DefaultIsEmpty) {
  Slice s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
}

TEST(Slice, FromStringAndCString) {
  std::string owned = "hello";
  Slice a(owned);
  Slice b("hello");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 5u);
  EXPECT_EQ(a.ToString(), "hello");
}

TEST(Slice, FromStringView) {
  std::string_view sv = "payload";
  Slice s(sv);
  EXPECT_EQ(s.view(), sv);
}

TEST(Slice, IndexingAndRemovePrefix) {
  Slice s("abcdef");
  EXPECT_EQ(s[0], 'a');
  EXPECT_EQ(s[5], 'f');
  s.RemovePrefix(2);
  EXPECT_EQ(s.ToString(), "cdef");
  s.RemovePrefix(4);
  EXPECT_TRUE(s.empty());
}

TEST(Slice, LexicographicCompare) {
  EXPECT_LT(Slice("abc"), Slice("abd"));
  EXPECT_LT(Slice("ab"), Slice("abc"));   // prefix is smaller
  EXPECT_LT(Slice(""), Slice("a"));
  EXPECT_EQ(Slice("abc").compare(Slice("abc")), 0);
  EXPECT_GT(Slice("b").compare(Slice("a")), 0);
}

TEST(Slice, EqualityHandlesEmbeddedNulBytes) {
  const char raw1[] = {'a', '\0', 'b'};
  const char raw2[] = {'a', '\0', 'c'};
  EXPECT_NE(Slice(raw1, 3), Slice(raw2, 3));
  EXPECT_EQ(Slice(raw1, 3), Slice(raw1, 3));
}

TEST(Slice, EmptySlicesCompareEqual) {
  EXPECT_EQ(Slice(), Slice("x", 0));
}

TEST(SliceCodec, U32RoundTrip) {
  char buf[4];
  for (std::uint32_t v : {0u, 1u, 0xdeadbeefu, 0xffffffffu}) {
    EncodeU32(buf, v);
    EXPECT_EQ(DecodeU32(buf), v);
  }
}

TEST(SliceCodec, U64RoundTrip) {
  char buf[8];
  for (std::uint64_t v :
       {0ull, 1ull, 0x0123456789abcdefull, ~0ull}) {
    EncodeU64(buf, v);
    EXPECT_EQ(DecodeU64(buf), v);
  }
}

TEST(SliceCodec, AppendHelpersFrameInOrder) {
  std::string out;
  AppendU32(out, 7);
  AppendU64(out, 9);
  ASSERT_EQ(out.size(), 12u);
  EXPECT_EQ(DecodeU32(out.data()), 7u);
  EXPECT_EQ(DecodeU64(out.data() + 4), 9u);
}

}  // namespace
}  // namespace opmr
