#include "engine/cluster.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>

#include "core/opmr.h"
#include "engine/aggregators.h"
#include "workloads/clickstream.h"
#include "workloads/tasks.h"

namespace opmr {
namespace {

class ClusterTest : public ::testing::Test {
 protected:
  ClusterTest() : platform_({.num_nodes = 3, .block_bytes = 256u << 10}) {
    ClickStreamOptions gen;
    gen.num_records = 30'000;
    gen.num_users = 1'000;
    GenerateClickStream(platform_.dfs(), "clicks", gen);
  }

  Platform platform_;
};

TEST_F(ClusterTest, ValidatesJobSpec) {
  JobSpec no_map;
  no_map.input_file = "clicks";
  no_map.output_file = "o";
  no_map.reduce = [](Slice, ValueIterator&, OutputCollector&) {};
  EXPECT_THROW(platform_.Run(no_map, HadoopOptions()), std::invalid_argument);

  JobSpec no_reduce;
  no_reduce.input_file = "clicks";
  no_reduce.output_file = "o";
  no_reduce.map = [](Slice, OutputCollector&) {};
  EXPECT_THROW(platform_.Run(no_reduce, HadoopOptions()),
               std::invalid_argument);

  JobSpec bad_reducers = PerUserCountJob("clicks", "o", 0);
  EXPECT_THROW(platform_.Run(bad_reducers, HadoopOptions()),
               std::invalid_argument);
}

TEST_F(ClusterTest, ValidatesOptionCombinations) {
  // Incremental hash requires an aggregator.
  JobOptions hash = HashOnePassOptions();
  auto holistic = SessionizationJob("clicks", "o1", 2);
  EXPECT_THROW(platform_.Run(holistic, hash), std::invalid_argument);

  // Snapshots only exist for sort-merge.
  JobOptions snap = HashOnePassOptions();
  snap.snapshot_interval = 0.25;
  EXPECT_THROW(platform_.Run(PerUserCountJob("clicks", "o2", 2), snap),
               std::invalid_argument);

  // Merge factor sanity.
  JobOptions bad_f = HadoopOptions();
  bad_f.merge_factor = 1;
  EXPECT_THROW(platform_.Run(PerUserCountJob("clicks", "o3", 2), bad_f),
               std::invalid_argument);
}

TEST_F(ClusterTest, MapTaskFailurePropagatesWithoutDeadlock) {
  JobSpec poison = PerUserCountJob("clicks", "o4", 2);
  poison.map = [](Slice, OutputCollector&) {
    throw std::runtime_error("injected map failure");
  };
  EXPECT_THROW(platform_.Run(poison, HadoopOptions()), std::runtime_error);
}

TEST_F(ClusterTest, ReduceFailurePropagates) {
  JobSpec poison = SessionizationJob("clicks", "o5", 2);
  poison.reduce = [](Slice, ValueIterator&, OutputCollector&) {
    throw std::runtime_error("injected reduce failure");
  };
  EXPECT_THROW(platform_.Run(poison, HadoopOptions()), std::runtime_error);
}

TEST_F(ClusterTest, PlatformSurvivesFailedJobAndRunsNextOne) {
  JobSpec poison = PerUserCountJob("clicks", "o6", 2);
  poison.map = [](Slice, OutputCollector&) {
    throw std::runtime_error("boom");
  };
  EXPECT_THROW(platform_.Run(poison, HadoopOptions()), std::runtime_error);
  const auto result =
      platform_.Run(PerUserCountJob("clicks", "o7", 2), HadoopOptions());
  EXPECT_GT(result.output_records, 0u);
}

TEST_F(ClusterTest, ResultMetadataIsConsistent) {
  const auto result =
      platform_.Run(PerUserCountJob("clicks", "o8", 3), HadoopOptions());
  EXPECT_EQ(result.job_name, "per_user_count");
  EXPECT_EQ(result.num_map_tasks,
            static_cast<int>(platform_.dfs().ListBlocks("clicks").size()));
  EXPECT_EQ(result.num_reduce_tasks, 3);
  EXPECT_EQ(result.input_records, 30'000u);
  EXPECT_EQ(result.map_output_records, 30'000u);
  EXPECT_GT(result.wall_seconds, 0.0);
  EXPECT_GT(result.total_cpu_seconds, 0.0);
  EXPECT_LE(result.local_map_tasks, result.num_map_tasks);

  // Timeline: every interval within [0, wall] and at least one of each of
  // map/shuffle/reduce.
  bool saw[4] = {false, false, false, false};
  for (const auto& iv : result.timeline) {
    EXPECT_GE(iv.begin_s, 0.0);
    EXPECT_LE(iv.end_s, result.wall_seconds + 0.5);
    EXPECT_LE(iv.begin_s, iv.end_s);
    saw[static_cast<int>(iv.kind)] = true;
  }
  EXPECT_TRUE(saw[static_cast<int>(TaskKind::kMap)]);
  EXPECT_TRUE(saw[static_cast<int>(TaskKind::kShuffle)]);
  EXPECT_TRUE(saw[static_cast<int>(TaskKind::kReduce)]);
}

TEST_F(ClusterTest, CountersAreJobScopedDeltas) {
  const auto r1 =
      platform_.Run(PerUserCountJob("clicks", "o9", 2), HadoopOptions());
  const auto r2 =
      platform_.Run(PerUserCountJob("clicks", "o10", 2), HadoopOptions());
  // Two identical jobs must report (approximately) identical I/O, not
  // cumulative totals.
  EXPECT_EQ(r1.Bytes(device::kDfsRead), r2.Bytes(device::kDfsRead));
  EXPECT_EQ(r1.Bytes(device::kMapOutputWrite),
            r2.Bytes(device::kMapOutputWrite));
}

TEST_F(ClusterTest, SchedulerPrefersLocalBlocks) {
  // With replication = num_nodes every block is local everywhere.
  Platform local_platform(
      {.num_nodes = 2, .block_bytes = 64u << 10, .replication = 2});
  ClickStreamOptions gen;
  gen.num_records = 5'000;
  GenerateClickStream(local_platform.dfs(), "clicks", gen);
  const auto result = local_platform.Run(
      PerUserCountJob("clicks", "local_out", 2), HadoopOptions());
  EXPECT_EQ(result.local_map_tasks, result.num_map_tasks);
}

TEST_F(ClusterTest, BlockSchedulerHandsOutEachBlockOnce) {
  std::vector<BlockInfo> blocks(10);
  for (int i = 0; i < 10; ++i) {
    blocks[i].block_id = static_cast<std::uint64_t>(i);
    blocks[i].replica_nodes = {i % 2};
  }
  BlockScheduler scheduler(blocks, 2);
  std::set<std::uint64_t> seen;
  bool local = false;
  for (int i = 0; i < 10; ++i) {
    auto block = scheduler.Next(i % 2, &local);
    ASSERT_TRUE(block.has_value());
    EXPECT_TRUE(seen.insert(block->block_id).second) << "duplicate block";
  }
  EXPECT_FALSE(scheduler.Next(0, &local).has_value());
  EXPECT_EQ(scheduler.local_count(), 10);
}

TEST_F(ClusterTest, SchedulerFallsBackToRemoteBlocks) {
  std::vector<BlockInfo> blocks(4);
  for (int i = 0; i < 4; ++i) {
    blocks[i].block_id = static_cast<std::uint64_t>(i);
    blocks[i].replica_nodes = {0};  // all blocks on node 0
  }
  BlockScheduler scheduler(blocks, 2);
  bool local = true;
  auto block = scheduler.Next(1, &local);  // node 1 holds nothing
  ASSERT_TRUE(block.has_value());
  EXPECT_FALSE(local);
}

TEST_F(ClusterTest, BlockSchedulerAllBlocksRemoteToEveryNode) {
  // Replicas live on a node outside the cluster (a decommissioned host):
  // every Next() must still hand out every block exactly once, all remote.
  std::vector<BlockInfo> blocks(6);
  for (int i = 0; i < 6; ++i) {
    blocks[i].block_id = static_cast<std::uint64_t>(i);
    blocks[i].replica_nodes = {7};
  }
  BlockScheduler scheduler(blocks, 2);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 6; ++i) {
    bool local = true;
    auto block = scheduler.Next(i % 2, &local);
    ASSERT_TRUE(block.has_value());
    EXPECT_FALSE(local);
    EXPECT_TRUE(seen.insert(block->block_id).second) << "duplicate block";
  }
  bool local = false;
  EXPECT_FALSE(scheduler.Next(0, &local).has_value());
  EXPECT_EQ(scheduler.local_count(), 0);
}

TEST_F(ClusterTest, BlockSchedulerLocalityTieBreakIsDeterministic) {
  // Every block is replicated on both nodes, so every pick is a locality
  // tie.  Two schedulers fed the same request sequence must hand out the
  // same blocks in the same order.
  std::vector<BlockInfo> blocks(8);
  for (int i = 0; i < 8; ++i) {
    blocks[i].block_id = static_cast<std::uint64_t>(100 + i);
    blocks[i].replica_nodes = {0, 1};
  }
  BlockScheduler a(blocks, 2);
  BlockScheduler b(blocks, 2);
  for (int i = 0; i < 8; ++i) {
    const int node = (i * 3) % 2;
    bool local_a = false;
    bool local_b = false;
    const auto block_a = a.Next(node, &local_a);
    const auto block_b = b.Next(node, &local_b);
    ASSERT_TRUE(block_a.has_value());
    ASSERT_TRUE(block_b.has_value());
    EXPECT_EQ(block_a->block_id, block_b->block_id) << "pick " << i;
    EXPECT_EQ(local_a, local_b);
    EXPECT_TRUE(local_a);
  }
}

TEST_F(ClusterTest, StragglerThresholdBoundaryIsInclusive) {
  // elapsed == threshold * mean is a straggler (>=, not >); just below is
  // not; a zero mean (no completed tasks yet) never speculates.
  EXPECT_TRUE(IsStraggler(/*elapsed_s=*/2.0, /*mean_completed_s=*/1.0,
                          /*threshold=*/2.0));
  EXPECT_FALSE(IsStraggler(1.999999, 1.0, 2.0));
  EXPECT_TRUE(IsStraggler(2.000001, 1.0, 2.0));
  EXPECT_FALSE(IsStraggler(100.0, 0.0, 2.0));
  // Scales with the mean, not absolute time.
  EXPECT_FALSE(IsStraggler(5.0, 4.0, 2.0));
  EXPECT_TRUE(IsStraggler(8.0, 4.0, 2.0));
}

TEST_F(ClusterTest, FlakyMapTasksSucceedWithRetries) {
  Platform platform({.num_nodes = 2, .block_bytes = 256u << 10,
                     .max_task_attempts = 3});
  ClickStreamOptions gen;
  gen.num_records = 10'000;
  gen.num_users = 300;
  GenerateClickStream(platform.dfs(), "clicks", gen);

  // Inject transient faults mid-block (after some emits, so a retry
  // without the publish barrier would duplicate records).  The global
  // counter never repeats a value, so each fault fires exactly once and
  // the retry succeeds.
  auto counter = std::make_shared<std::atomic<int>>(0);
  JobSpec flaky = PerUserCountJob("clicks", "flaky_out", 2);
  const MapFn inner = flaky.map;
  flaky.map = [counter, inner](Slice record, OutputCollector& out) {
    const int n = counter->fetch_add(1);
    inner(record, out);
    if (n == 700 || n == 5'000) throw std::runtime_error("transient fault");
  };
  const auto result = platform.Run(flaky, HadoopOptions());
  EXPECT_GT(result.map_task_retries, 0);

  // Exactness despite retries: totals must match a clean run.
  const auto clean =
      platform.Run(PerUserCountJob("clicks", "clean_out", 2), HadoopOptions());
  std::map<std::string, std::string> a, b;
  for (const auto& kv : platform.ReadOutput("flaky_out", 2)) a.insert(kv);
  for (const auto& kv : platform.ReadOutput("clean_out", 2)) b.insert(kv);
  EXPECT_EQ(a, b);
  EXPECT_EQ(clean.map_task_retries, 0);
}

TEST_F(ClusterTest, SingleTransientFailureRetriesExactlyOnce) {
  Platform platform({.num_nodes = 2, .block_bytes = 256u << 10,
                     .max_task_attempts = 3});
  ClickStreamOptions gen;
  gen.num_records = 8'000;
  gen.num_users = 200;
  GenerateClickStream(platform.dfs(), "clicks", gen);

  // Exactly one attempt ever fails: the flag flips on the first record seen
  // and stays flipped, so the re-execution (and every other task) succeeds.
  auto tripped = std::make_shared<std::atomic<bool>>(false);
  JobSpec flaky = PerUserCountJob("clicks", "flaky1_out", 2);
  const MapFn inner = flaky.map;
  flaky.map = [tripped, inner](Slice record, OutputCollector& out) {
    if (!tripped->exchange(true)) {
      throw std::runtime_error("one-shot transient fault");
    }
    inner(record, out);
  };
  const auto result = platform.Run(flaky, HadoopOptions());
  EXPECT_EQ(result.map_task_retries, 1);
  EXPECT_EQ(result.reduce_task_retries, 0);

  // Byte-identical to a clean run, part by part (sort-merge output is
  // deterministically ordered within each reducer).
  platform.Run(PerUserCountJob("clicks", "clean1_out", 2), HadoopOptions());
  for (int r = 0; r < 2; ++r) {
    const auto part = ".part" + std::to_string(r);
    EXPECT_EQ(platform.ReadOutputFile("flaky1_out" + part),
              platform.ReadOutputFile("clean1_out" + part));
  }
}

TEST_F(ClusterTest, PermanentFailureExhaustsRetries) {
  Platform platform({.num_nodes = 2, .block_bytes = 256u << 10,
                     .max_task_attempts = 2});
  ClickStreamOptions gen;
  gen.num_records = 1'000;
  GenerateClickStream(platform.dfs(), "clicks", gen);
  JobSpec doomed = PerUserCountJob("clicks", "doomed", 2);
  doomed.map = [](Slice, OutputCollector&) {
    throw std::runtime_error("permanent fault");
  };
  EXPECT_THROW(platform.Run(doomed, HadoopOptions()), std::runtime_error);
}

TEST_F(ClusterTest, RetriesWithPushShuffleRunCleanly) {
  // Retry budgets are legal under push shuffle (checkpointing needs them);
  // a fault-free run simply never uses them.  Only an actual reduce failure
  // without checkpoints surfaces the Table III replay error (chaos suite).
  Platform platform({.num_nodes = 2, .block_bytes = 256u << 10,
                     .max_task_attempts = 3});
  ClickStreamOptions gen;
  gen.num_records = 1'000;
  GenerateClickStream(platform.dfs(), "clicks", gen);
  const auto result =
      platform.Run(PerUserCountJob("clicks", "o12", 2), HashOnePassOptions());
  EXPECT_GT(result.output_records, 0u);
  EXPECT_EQ(result.reduce_task_retries, 0);
}

TEST_F(ClusterTest, EmptyInputProducesEmptyOutput) {
  platform_.dfs().Create("empty")->Close();
  const auto result =
      platform_.Run(PerUserCountJob("empty", "o11", 2), HadoopOptions());
  EXPECT_EQ(result.input_records, 0u);
  EXPECT_EQ(result.output_records, 0u);
}

TEST_F(ClusterTest, SingleReducerSingleNodeWorks) {
  Platform tiny({.num_nodes = 1, .map_slots_per_node = 1,
                 .block_bytes = 64u << 10});
  ClickStreamOptions gen;
  gen.num_records = 2'000;
  GenerateClickStream(tiny.dfs(), "clicks", gen);
  const auto result =
      tiny.Run(PerUserCountJob("clicks", "tiny_out", 1), HadoopOptions());
  EXPECT_GT(result.output_records, 0u);
}

}  // namespace
}  // namespace opmr
