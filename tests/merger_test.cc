#include "storage/merger.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.h"
#include "metrics/counters.h"
#include "storage/file_manager.h"
#include "storage/record_stream.h"

namespace opmr {
namespace {

class MergerTest : public ::testing::Test {
 protected:
  MergerTest() : files_(FileManager::CreateTemp("opmr-merge")) {}

  IoChannel Channel() { return {&metrics_, "m.bytes"}; }

  // Writes a sorted run of the given (key, value) pairs.
  std::filesystem::path WriteRun(
      std::vector<std::pair<std::string, std::string>> records) {
    std::sort(records.begin(), records.end());
    RunWriter w(files_.NewFile("run"), Channel());
    for (const auto& [k, v] : records) w.Append(k, v);
    const auto path = w.path();
    w.Close();
    return path;
  }

  FileManager files_;
  MetricRegistry metrics_;
};

TEST_F(MergerTest, MergesTwoRunsInOrder) {
  auto r1 = WriteRun({{"a", "1"}, {"c", "3"}, {"e", "5"}});
  auto r2 = WriteRun({{"b", "2"}, {"d", "4"}});
  std::vector<std::unique_ptr<RecordStream>> inputs;
  inputs.push_back(std::make_unique<RunReader>(r1, Channel()));
  inputs.push_back(std::make_unique<RunReader>(r2, Channel()));
  KWayMerger merger(std::move(inputs));

  std::string out;
  while (merger.Next()) out += merger.key().ToString();
  EXPECT_EQ(out, "abcde");
}

TEST_F(MergerTest, MatchesReferenceSortOnRandomRuns) {
  Rng rng(42);
  std::vector<std::pair<std::string, std::string>> all;
  std::vector<std::unique_ptr<RecordStream>> inputs;
  for (int run = 0; run < 12; ++run) {
    std::vector<std::pair<std::string, std::string>> records;
    const int n = 1 + static_cast<int>(rng.Uniform(300));
    for (int i = 0; i < n; ++i) {
      std::string key = "k" + std::to_string(rng.Uniform(1000));
      std::string value = "v" + std::to_string(rng.Next() % 100);
      records.emplace_back(key, value);
      all.emplace_back(key, value);
    }
    inputs.push_back(std::make_unique<RunReader>(WriteRun(records),
                                                 Channel()));
  }
  KWayMerger merger(std::move(inputs));

  std::vector<std::string> merged_keys;
  std::size_t count = 0;
  while (merger.Next()) {
    merged_keys.push_back(merger.key().ToString());
    ++count;
  }
  EXPECT_EQ(count, all.size());
  EXPECT_TRUE(std::is_sorted(merged_keys.begin(), merged_keys.end()));
}

TEST_F(MergerTest, DuplicateKeysAllSurvive) {
  auto r1 = WriteRun({{"k", "a"}, {"k", "b"}});
  auto r2 = WriteRun({{"k", "c"}});
  std::vector<std::unique_ptr<RecordStream>> inputs;
  inputs.push_back(std::make_unique<RunReader>(r1, Channel()));
  inputs.push_back(std::make_unique<RunReader>(r2, Channel()));
  KWayMerger merger(std::move(inputs));
  int n = 0;
  while (merger.Next()) {
    EXPECT_EQ(merger.key().ToString(), "k");
    ++n;
  }
  EXPECT_EQ(n, 3);
}

TEST_F(MergerTest, EmptyAndMissingInputsHandled) {
  auto empty = WriteRun({});
  auto r = WriteRun({{"x", "1"}});
  std::vector<std::unique_ptr<RecordStream>> inputs;
  inputs.push_back(std::make_unique<RunReader>(empty, Channel()));
  inputs.push_back(std::make_unique<RunReader>(r, Channel()));
  KWayMerger merger(std::move(inputs));
  ASSERT_TRUE(merger.Next());
  EXPECT_EQ(merger.key().ToString(), "x");
  EXPECT_FALSE(merger.Next());
}

TEST_F(MergerTest, NoInputsMeansEmptyStream) {
  KWayMerger merger({});
  EXPECT_FALSE(merger.Next());
}

TEST_F(MergerTest, StableTieBreakByInputIndex) {
  // Equal keys must be yielded in input order (Hadoop merge is stable with
  // respect to run order).
  auto r1 = WriteRun({{"k", "first"}});
  auto r2 = WriteRun({{"k", "second"}});
  std::vector<std::unique_ptr<RecordStream>> inputs;
  inputs.push_back(std::make_unique<RunReader>(r1, Channel()));
  inputs.push_back(std::make_unique<RunReader>(r2, Channel()));
  KWayMerger merger(std::move(inputs));
  ASSERT_TRUE(merger.Next());
  EXPECT_EQ(merger.value().ToString(), "first");
  ASSERT_TRUE(merger.Next());
  EXPECT_EQ(merger.value().ToString(), "second");
}

TEST_F(MergerTest, ComparisonCounterAdvances) {
  auto r1 = WriteRun({{"a", ""}, {"c", ""}});
  auto r2 = WriteRun({{"b", ""}, {"d", ""}});
  std::vector<std::unique_ptr<RecordStream>> inputs;
  inputs.push_back(std::make_unique<RunReader>(r1, Channel()));
  inputs.push_back(std::make_unique<RunReader>(r2, Channel()));
  KWayMerger merger(std::move(inputs));
  while (merger.Next()) {
  }
  EXPECT_GT(merger.comparisons(), 0u);
}

TEST_F(MergerTest, MergeRunsToFileProducesSortedRun) {
  std::vector<std::filesystem::path> paths;
  paths.push_back(WriteRun({{"b", "2"}, {"d", "4"}}));
  paths.push_back(WriteRun({{"a", "1"}, {"c", "3"}}));
  const auto out = files_.NewFile("merged");
  const auto n = MergeRunsToFile(paths, out, Channel(), Channel());
  EXPECT_EQ(n, 4u);

  RunReader r(out, Channel());
  std::string keys;
  while (r.Next()) keys += r.key().ToString();
  EXPECT_EQ(keys, "abcd");
}

TEST_F(MergerTest, MemoryRunStreamParsesFrames) {
  std::string blob;
  AppendU32(blob, 1);
  AppendU32(blob, 2);
  blob += "k";
  blob += "vv";
  AppendU32(blob, 2);
  AppendU32(blob, 0);
  blob += "ab";
  MemoryRunStream stream{Slice(blob)};
  ASSERT_TRUE(stream.Next());
  EXPECT_EQ(stream.key().ToString(), "k");
  EXPECT_EQ(stream.value().ToString(), "vv");
  ASSERT_TRUE(stream.Next());
  EXPECT_EQ(stream.key().ToString(), "ab");
  EXPECT_TRUE(stream.value().empty());
  EXPECT_FALSE(stream.Next());
}

TEST_F(MergerTest, MemoryRunStreamRejectsTruncation) {
  std::string blob;
  AppendU32(blob, 10);
  AppendU32(blob, 10);
  blob += "short";
  MemoryRunStream stream{Slice(blob)};
  EXPECT_THROW(stream.Next(), std::runtime_error);

  std::string header_only = "\x01";
  MemoryRunStream stream2{Slice(header_only)};
  EXPECT_THROW(stream2.Next(), std::runtime_error);
}

TEST_F(MergerTest, MergeOfMemoryAndFileStreams) {
  std::string blob;
  AppendU32(blob, 1);
  AppendU32(blob, 1);
  blob += "b";
  blob += "2";
  auto file_run = WriteRun({{"a", "1"}, {"c", "3"}});

  std::vector<std::unique_ptr<RecordStream>> inputs;
  inputs.push_back(std::make_unique<RunReader>(file_run, Channel()));
  inputs.push_back(std::make_unique<MemoryRunStream>(Slice(blob)));
  KWayMerger merger(std::move(inputs));
  std::string keys;
  while (merger.Next()) keys += merger.key().ToString();
  EXPECT_EQ(keys, "abc");
}

}  // namespace
}  // namespace opmr
