#include "engine/aggregators.h"

#include <gtest/gtest.h>

#include <vector>

namespace opmr {
namespace {

class VectorValues final : public ValueIterator {
 public:
  explicit VectorValues(std::vector<std::string> values)
      : values_(std::move(values)) {}
  bool Next(Slice* v) override {
    if (pos_ >= values_.size()) return false;
    *v = values_[pos_++];
    return true;
  }

 private:
  std::vector<std::string> values_;
  std::size_t pos_ = 0;
};

class CollectingOutput final : public OutputCollector {
 public:
  void Emit(Slice key, Slice value) override {
    rows.emplace_back(key.ToString(), value.ToString());
  }
  std::vector<std::pair<std::string, std::string>> rows;
};

template <typename Agg>
std::uint64_t FoldU64(const std::vector<std::uint64_t>& values) {
  Agg agg;
  std::string state;
  bool first = true;
  for (auto v : values) {
    if (first) {
      agg.Init(EncodeValueU64(v), &state);
      first = false;
    } else {
      agg.Update(&state, EncodeValueU64(v));
    }
  }
  std::string out;
  agg.Finalize(state, &out);
  return DecodeValueU64(out);
}

TEST(Aggregators, SumFolds) {
  EXPECT_EQ(FoldU64<SumAggregator>({1, 2, 3, 4}), 10u);
  EXPECT_EQ(FoldU64<SumAggregator>({0}), 0u);
}

TEST(Aggregators, MaxAndMin) {
  EXPECT_EQ(FoldU64<MaxAggregator>({5, 9, 2}), 9u);
  EXPECT_EQ(FoldU64<MinAggregator>({5, 9, 2}), 2u);
  EXPECT_EQ(FoldU64<MaxAggregator>({7}), 7u);
}

TEST(Aggregators, AvgUsesCompoundState) {
  EXPECT_EQ(FoldU64<AvgAggregator>({2, 4, 6}), 4u);
  EXPECT_EQ(FoldU64<AvgAggregator>({10}), 10u);
  EXPECT_EQ(FoldU64<AvgAggregator>({1, 2}), 1u);  // integer division
}

TEST(Aggregators, MergePartialStates) {
  SumAggregator sum;
  std::string s1, s2;
  sum.Init(EncodeValueU64(10), &s1);
  sum.Update(&s1, EncodeValueU64(5));
  sum.Init(EncodeValueU64(3), &s2);
  sum.Merge(&s1, s2);
  std::string out;
  sum.Finalize(s1, &out);
  EXPECT_EQ(DecodeValueU64(out), 18u);
}

TEST(Aggregators, AvgMergeCombinesSumsAndCounts) {
  AvgAggregator avg;
  std::string s1, s2;
  avg.Init(EncodeValueU64(10), &s1);   // sum 10, count 1
  avg.Update(&s1, EncodeValueU64(20)); // sum 30, count 2
  avg.Init(EncodeValueU64(60), &s2);   // sum 60, count 1
  avg.Merge(&s1, s2);                  // sum 90, count 3
  std::string out;
  avg.Finalize(s1, &out);
  EXPECT_EQ(DecodeValueU64(out), 30u);
}

TEST(Aggregators, AvgRejectsMalformedState) {
  AvgAggregator avg;
  std::string s;
  avg.Init(EncodeValueU64(1), &s);
  EXPECT_THROW(avg.Merge(&s, Slice("short")), std::runtime_error);
}

TEST(Aggregators, DecodeRejectsBadWidth) {
  EXPECT_THROW(DecodeValueU64(Slice("123")), std::runtime_error);
}

TEST(DerivedCombiner, CombinesRawValueGroup) {
  SumAggregator sum;
  DerivedCombiner combiner(&sum);
  VectorValues values({EncodeValueU64(1), EncodeValueU64(2),
                       EncodeValueU64(3)});
  CollectingOutput out;
  combiner.CombineGroup("key", values, /*values_are_states=*/false, out);
  ASSERT_EQ(out.rows.size(), 1u);
  EXPECT_EQ(out.rows[0].first, "key");
  EXPECT_EQ(DecodeValueU64(out.rows[0].second), 6u);
}

TEST(DerivedCombiner, CombinesStateGroup) {
  SumAggregator sum;
  DerivedCombiner combiner(&sum);
  VectorValues values({EncodeValueU64(40), EncodeValueU64(2)});
  CollectingOutput out;
  combiner.CombineGroup("key", values, /*values_are_states=*/true, out);
  EXPECT_EQ(DecodeValueU64(out.rows[0].second), 42u);
}

TEST(DerivedCombiner, EmptyGroupEmitsNothing) {
  SumAggregator sum;
  DerivedCombiner combiner(&sum);
  VectorValues values({});
  CollectingOutput out;
  combiner.CombineGroup("key", values, false, out);
  EXPECT_TRUE(out.rows.empty());
}

}  // namespace
}  // namespace opmr
