#include "engine/map_output.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>

#include "common/rng.h"
#include "engine/aggregators.h"

namespace opmr {
namespace {

TEST(MapOutputBuffer, SortGroupsByPartitionThenKey) {
  MapOutputBuffer buffer;
  buffer.Add(1, "zebra", "1");
  buffer.Add(0, "alpha", "2");
  buffer.Add(1, "apple", "3");
  buffer.Add(0, "zulu", "4");
  buffer.Sort();

  const auto& records = buffer.records();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[0].partition, 0u);
  EXPECT_EQ(Slice(records[0].key, records[0].key_len).ToString(), "alpha");
  EXPECT_EQ(records[1].partition, 0u);
  EXPECT_EQ(Slice(records[1].key, records[1].key_len).ToString(), "zulu");
  EXPECT_EQ(records[2].partition, 1u);
  EXPECT_EQ(Slice(records[2].key, records[2].key_len).ToString(), "apple");
  EXPECT_EQ(records[3].partition, 1u);
  EXPECT_EQ(Slice(records[3].key, records[3].key_len).ToString(), "zebra");
}

TEST(MapOutputBuffer, KeyPrefixOrdering) {
  MapOutputBuffer buffer;
  buffer.Add(0, "ab", "");
  buffer.Add(0, "a", "");
  buffer.Add(0, "abc", "");
  buffer.Sort();
  const auto& r = buffer.records();
  EXPECT_EQ(Slice(r[0].key, r[0].key_len).ToString(), "a");
  EXPECT_EQ(Slice(r[1].key, r[1].key_len).ToString(), "ab");
  EXPECT_EQ(Slice(r[2].key, r[2].key_len).ToString(), "abc");
}

TEST(MapOutputBuffer, ValuesTravelWithKeys) {
  // The sort orders by key only; values of equal keys may appear in any
  // order, so compare as multisets of (key, value) pairs.
  MapOutputBuffer buffer;
  Rng rng(1);
  std::vector<std::pair<std::string, std::string>> expected;
  for (int i = 0; i < 1000; ++i) {
    const std::string k = "k" + std::to_string(rng.Uniform(50));
    const std::string v = "v" + std::to_string(i);
    expected.emplace_back(k, v);
    buffer.Add(0, k, v);
  }
  buffer.Sort();
  std::vector<std::pair<std::string, std::string>> actual;
  for (const auto& r : buffer.records()) {
    actual.emplace_back(Slice(r.key, r.key_len).ToString(),
                        Slice(r.value, r.value_len).ToString());
  }
  std::sort(expected.begin(), expected.end());
  std::sort(actual.begin(), actual.end());
  EXPECT_EQ(actual, expected);
}

TEST(MapOutputBuffer, MemoryAccountingAndClear) {
  MapOutputBuffer buffer;
  EXPECT_TRUE(buffer.Empty());
  buffer.Add(0, "1234", "567890");
  EXPECT_EQ(buffer.NumRecords(), 1u);
  EXPECT_GE(buffer.MemoryBytes(), 10u);
  buffer.Clear();
  EXPECT_TRUE(buffer.Empty());
  EXPECT_LT(buffer.MemoryBytes(), 10u);
}

class MapCombineTableTest : public ::testing::Test {
 protected:
  SumAggregator sum_;
};

TEST_F(MapCombineTableTest, FoldsValuesIntoStates) {
  MapCombineTable table(&sum_);
  table.Fold(0, "a", EncodeValueU64(2), false);
  table.Fold(0, "a", EncodeValueU64(3), false);
  table.Fold(0, "b", EncodeValueU64(10), false);
  EXPECT_EQ(table.NumKeys(), 2u);

  std::map<std::string, std::uint64_t> got;
  for (const auto* e : table.EntriesByPartition()) {
    got[e->key.ToString()] = DecodeU64(e->state.data());
  }
  EXPECT_EQ(got.at("a"), 5u);
  EXPECT_EQ(got.at("b"), 10u);
}

TEST_F(MapCombineTableTest, MergesStatesWhenFlagged) {
  MapCombineTable table(&sum_);
  table.Fold(0, "k", EncodeValueU64(7), /*value_is_state=*/true);
  table.Fold(0, "k", EncodeValueU64(8), /*value_is_state=*/true);
  EXPECT_EQ(DecodeU64(table.EntriesByPartition()[0]->state.data()), 15u);
}

TEST_F(MapCombineTableTest, SameKeyDifferentPartitionsAreDistinct) {
  // With a key-derived partitioner this never happens, but the table must
  // stay correct for any partitioner.
  MapCombineTable table(&sum_);
  table.Fold(0, "k", EncodeValueU64(1), false);
  table.Fold(1, "k", EncodeValueU64(2), false);
  EXPECT_EQ(table.NumKeys(), 2u);
}

TEST_F(MapCombineTableTest, EntriesByPartitionIsGrouped) {
  MapCombineTable table(&sum_);
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    table.Fold(static_cast<std::uint32_t>(rng.Uniform(7)),
               "k" + std::to_string(rng.Uniform(100)), EncodeValueU64(1),
               false);
  }
  const auto entries = table.EntriesByPartition();
  for (std::size_t i = 1; i < entries.size(); ++i) {
    EXPECT_LE(entries[i - 1]->partition, entries[i]->partition);
  }
}

TEST_F(MapCombineTableTest, GrowsPastInitialCapacity) {
  MapCombineTable table(&sum_, /*initial_slots=*/8);
  for (int i = 0; i < 10'000; ++i) {
    table.Fold(0, "key-" + std::to_string(i), EncodeValueU64(1), false);
  }
  EXPECT_EQ(table.NumKeys(), 10'000u);
  // And every key is still reachable with the right value.
  std::size_t checked = 0;
  for (const auto* e : table.EntriesByPartition()) {
    EXPECT_EQ(DecodeU64(e->state.data()), 1u);
    ++checked;
  }
  EXPECT_EQ(checked, 10'000u);
}

TEST_F(MapCombineTableTest, MatchesReferenceUnderRandomFolds) {
  MapCombineTable table(&sum_);
  Rng rng(3);
  std::map<std::pair<std::uint32_t, std::string>, std::uint64_t> expected;
  for (int i = 0; i < 20'000; ++i) {
    const auto p = static_cast<std::uint32_t>(rng.Uniform(4));
    const std::string k = "u" + std::to_string(rng.Uniform(300));
    const std::uint64_t w = 1 + rng.Uniform(9);
    expected[{p, k}] += w;
    table.Fold(p, k, EncodeValueU64(w), false);
  }
  std::map<std::pair<std::uint32_t, std::string>, std::uint64_t> actual;
  for (const auto* e : table.EntriesByPartition()) {
    actual[{e->partition, e->key.ToString()}] = DecodeU64(e->state.data());
  }
  EXPECT_EQ(actual, expected);
}

TEST_F(MapCombineTableTest, HashOverloadAgreesWithConvenience) {
  MapCombineTable t1(&sum_), t2(&sum_);
  const Slice key("shared-key");
  t1.Fold(2, key, EncodeValueU64(5), false);
  t2.Fold(2, BytesHash(key), key, EncodeValueU64(5), false);
  EXPECT_EQ(t1.EntriesByPartition()[0]->state,
            t2.EntriesByPartition()[0]->state);
}

TEST_F(MapCombineTableTest, ClearResets) {
  MapCombineTable table(&sum_);
  table.Fold(0, "x", EncodeValueU64(1), false);
  table.Clear();
  EXPECT_TRUE(table.Empty());
  table.Fold(0, "x", EncodeValueU64(3), false);
  EXPECT_EQ(DecodeU64(table.EntriesByPartition()[0]->state.data()), 3u);
}

TEST_F(MapCombineTableTest, MemoryGrowsWithKeys) {
  MapCombineTable table(&sum_);
  const auto before = table.MemoryBytes();
  for (int i = 0; i < 1000; ++i) {
    table.Fold(0, "key-" + std::to_string(i), EncodeValueU64(1), false);
  }
  EXPECT_GT(table.MemoryBytes(), before + 1000);
}

TEST_F(MapCombineTableTest, RequiresAggregatorAndPow2Slots) {
  EXPECT_THROW(MapCombineTable(nullptr), std::invalid_argument);
  EXPECT_THROW(MapCombineTable(&sum_, 100), std::invalid_argument);
}

}  // namespace
}  // namespace opmr
