#include "workloads/global_sort.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"

namespace opmr {
namespace {

TEST(RangePartitioner, RoutesKeysToRanges) {
  const auto part = RangePartitioner({"g", "n", "t"});
  EXPECT_EQ(part("a", 4), 0u);
  EXPECT_EQ(part("g", 4), 1u);  // boundary key goes right
  EXPECT_EQ(part("m", 4), 1u);
  EXPECT_EQ(part("n", 4), 2u);
  EXPECT_EQ(part("s", 4), 2u);
  EXPECT_EQ(part("z", 4), 3u);
}

TEST(RangePartitioner, EmptyBoundariesMeansOneRange) {
  const auto part = RangePartitioner({});
  EXPECT_EQ(part("anything", 3), 0u);
}

TEST(GlobalSort, OutputIsGloballySortedAndComplete) {
  Platform platform({.num_nodes = 2, .block_bytes = 128u << 10});
  Rng rng(77);
  std::vector<std::string> records;
  auto writer = platform.dfs().Create("in");
  for (int i = 0; i < 30'000; ++i) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "rec-%010llu",
                  static_cast<unsigned long long>(rng.Next() % 1'000'000));
    records.emplace_back(buf);
    writer->Append(records.back());
  }
  writer->Close();

  constexpr int kReducers = 5;
  const auto spec = GlobalSortJob(platform, "in", "sorted", kReducers);
  const auto result = platform.Run(spec, HadoopOptions());
  EXPECT_EQ(result.output_records, records.size());

  // Parts concatenated in order must be one globally sorted sequence.
  std::vector<std::string> sorted_out;
  for (int r = 0; r < kReducers; ++r) {
    const auto part =
        platform.ReadOutputFile("sorted.part" + std::to_string(r));
    for (const auto& [key, value] : part) sorted_out.push_back(key);
  }
  ASSERT_EQ(sorted_out.size(), records.size());
  EXPECT_TRUE(std::is_sorted(sorted_out.begin(), sorted_out.end()));

  // And it is a permutation of the input (duplicates preserved).
  std::sort(records.begin(), records.end());
  EXPECT_EQ(sorted_out, records);
}

TEST(GlobalSort, RangePartitioningBalancesSkewlessKeys) {
  Platform platform({.num_nodes = 2, .block_bytes = 128u << 10});
  Rng rng(78);
  auto writer = platform.dfs().Create("in");
  for (int i = 0; i < 20'000; ++i) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%08llu",
                  static_cast<unsigned long long>(rng.Next() % 100'000'000));
    writer->Append(Slice(buf, 8));
  }
  writer->Close();

  const auto spec = GlobalSortJob(platform, "in", "bal", 4);
  const auto result = platform.Run(spec, HadoopOptions());
  EXPECT_LT(result.ReducerImbalance(), 1.35)
      << "sampled range boundaries should balance uniform keys";
}

TEST(GlobalSort, HandlesTinyInputs) {
  Platform platform({.num_nodes = 1, .block_bytes = 64u << 10});
  auto writer = platform.dfs().Create("in");
  writer->Append("b");
  writer->Append("a");
  writer->Close();
  const auto spec = GlobalSortJob(platform, "in", "tiny", 3);
  platform.Run(spec, HadoopOptions());
  std::vector<std::string> keys;
  for (int r = 0; r < 3; ++r) {
    for (const auto& [k, v] :
         platform.ReadOutputFile("tiny.part" + std::to_string(r))) {
      keys.push_back(k);
    }
  }
  EXPECT_EQ(keys, (std::vector<std::string>{"a", "b"}));
}

}  // namespace
}  // namespace opmr
