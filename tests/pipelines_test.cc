// Multi-job pipeline tests: global top-k (TopKAggregator) and the
// repartition join + rollup — chained jobs over JobSpec::extra_inputs.
#include "workloads/pipelines.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "workloads/tasks.h"
#include "workloads/tweets.h"

namespace opmr {
namespace {

// --- TopKAggregator unit behaviour --------------------------------------------

TEST(TopKAggregator, KeepsLargestKInOrder) {
  TopKAggregator agg(3);
  std::string state;
  agg.Init(EncodeScored(5, "e"), &state);
  agg.Update(&state, EncodeScored(9, "a"));
  agg.Update(&state, EncodeScored(2, "x"));
  agg.Update(&state, EncodeScored(7, "b"));
  agg.Update(&state, EncodeScored(1, "y"));

  const auto entries = DecodeTopKState(state);
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].score, 9u);
  EXPECT_EQ(entries[0].payload, "a");
  EXPECT_EQ(entries[1].score, 7u);
  EXPECT_EQ(entries[2].score, 5u);
}

TEST(TopKAggregator, MergeIsOrderInsensitive) {
  TopKAggregator agg(4);
  std::string a, b;
  agg.Init(EncodeScored(10, "p"), &a);
  agg.Update(&a, EncodeScored(3, "q"));
  agg.Init(EncodeScored(7, "r"), &b);
  agg.Update(&b, EncodeScored(8, "s"));

  std::string ab = a, ba = b;
  agg.Merge(&ab, b);
  agg.Merge(&ba, a);
  EXPECT_EQ(ab, ba);
  const auto entries = DecodeTopKState(ab);
  ASSERT_EQ(entries.size(), 4u);
  EXPECT_EQ(entries[0].payload, "p");
  EXPECT_EQ(entries[1].payload, "s");
}

TEST(TopKAggregator, TieBreaksByPayloadAscending) {
  TopKAggregator agg(2);
  std::string state;
  agg.Init(EncodeScored(5, "zzz"), &state);
  agg.Update(&state, EncodeScored(5, "aaa"));
  agg.Update(&state, EncodeScored(5, "mmm"));
  const auto entries = DecodeTopKState(state);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].payload, "aaa");
  EXPECT_EQ(entries[1].payload, "mmm");
}

TEST(TopKAggregator, DuplicateCandidatesCollapse) {
  TopKAggregator agg(8);
  std::string state;
  agg.Init(EncodeScored(4, "dup"), &state);
  agg.Update(&state, EncodeScored(4, "dup"));
  EXPECT_EQ(DecodeTopKState(state).size(), 1u);
}

TEST(TopKAggregator, RejectsBadInput) {
  EXPECT_THROW(TopKAggregator agg(0), std::invalid_argument);
  TopKAggregator agg(2);
  std::string state;
  EXPECT_THROW(agg.Init(Slice("tiny"), &state), std::runtime_error);
  EXPECT_THROW(DecodeTopKState(Slice("junk-state")), std::runtime_error);
}

// --- Frame helpers --------------------------------------------------------------

TEST(Pipelines, DecodeOutputFrameRoundTrip) {
  std::string frame;
  AppendU32(frame, 3);
  AppendU32(frame, 5);
  frame += "key";
  frame += "value";
  Slice key, value;
  DecodeOutputFrame(frame, &key, &value);
  EXPECT_EQ(key.ToString(), "key");
  EXPECT_EQ(value.ToString(), "value");
  EXPECT_THROW(DecodeOutputFrame(Slice("xx"), &key, &value),
               std::runtime_error);
}

TEST(Pipelines, OutputPartsNaming) {
  const auto parts = OutputParts("job", 3);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "job.part0");
  EXPECT_EQ(parts[2], "job.part2");
}

// --- End-to-end pipelines --------------------------------------------------------

class PipelineTest : public ::testing::Test {
 protected:
  PipelineTest() : platform_({.num_nodes = 2, .block_bytes = 256u << 10}) {}
  Platform platform_;
};

TEST_F(PipelineTest, TopKPipelineMatchesReferenceOnAllRuntimes) {
  ClickStreamOptions gen;
  gen.num_records = 40'000;
  gen.num_urls = 2'000;
  gen.url_theta = 1.0;
  GenerateClickStream(platform_.dfs(), "clicks", gen);

  // Reference: count in memory, take top 10 with the same tie rule.
  std::map<std::string, std::uint64_t> counts;
  for (const auto& block : platform_.dfs().ListBlocks("clicks")) {
    auto reader = platform_.dfs().OpenBlock(block);
    Slice record;
    while (reader->Next(&record)) {
      ++counts[UrlKey(ParseClick(record, ClickFormat::kText).url)];
    }
  }
  std::vector<ScoredEntry> expected;
  for (const auto& [url, c] : counts) expected.push_back({c, url});
  std::sort(expected.begin(), expected.end(),
            [](const ScoredEntry& a, const ScoredEntry& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.payload < b.payload;
            });
  expected.resize(10);

  int i = 0;
  for (const auto& options : {HadoopOptions(), HashOnePassOptions()}) {
    SCOPED_TRACE(i);
    const auto spec =
        PageFrequencyJob("clicks", "counts_" + std::to_string(i++), 4);
    const auto winners = RunTopKPipeline(platform_, spec, options, 10);
    ASSERT_EQ(winners.size(), 10u);
    EXPECT_EQ(winners, expected);
  }
}

TEST_F(PipelineTest, TopKSmallerThanKeySpaceReturnsEverything) {
  ClickStreamOptions gen;
  gen.num_records = 1'000;
  gen.num_urls = 5;
  GenerateClickStream(platform_.dfs(), "tiny", gen);
  const auto winners = RunTopKPipeline(
      platform_, PageFrequencyJob("tiny", "tiny_counts", 2),
      HashOnePassOptions(), 50);
  EXPECT_EQ(winners.size(), 5u);  // only 5 distinct urls exist
  for (std::size_t j = 1; j < winners.size(); ++j) {
    EXPECT_GE(winners[j - 1].score, winners[j].score);
  }
}

TEST_F(PipelineTest, JoinAndCountryRollupMatchReference) {
  ClickStreamOptions clicks;
  clicks.num_records = 30'000;
  clicks.num_users = 2'000;
  GenerateClickStream(platform_.dfs(), "clicks", clicks);

  UserProfileOptions profiles;
  profiles.num_users = 1'500;  // 500 users click without a profile
  profiles.num_countries = 12;
  GenerateUserProfiles(platform_.dfs(), "profiles", profiles);

  // Reference join + rollup in memory.
  std::map<std::string, std::string> user_country;
  for (const auto& block : platform_.dfs().ListBlocks("profiles")) {
    auto reader = platform_.dfs().OpenBlock(block);
    Slice record;
    while (reader->Next(&record)) {
      const std::string line = record.ToString();
      const auto t1 = line.find('\t', 2);
      user_country[line.substr(2, t1 - 2)] = line.substr(t1 + 1);
    }
  }
  std::map<std::string, std::uint64_t> expected;
  std::uint64_t expected_joined_users = 0;
  {
    std::map<std::string, std::uint64_t> per_user;
    for (const auto& block : platform_.dfs().ListBlocks("clicks")) {
      auto reader = platform_.dfs().OpenBlock(block);
      Slice record;
      while (reader->Next(&record)) {
        ++per_user[UserKey(ParseClick(record, ClickFormat::kText).user)];
      }
    }
    expected_joined_users = per_user.size();
    for (const auto& [user, n] : per_user) {
      auto it = user_country.find(user);
      expected[it == user_country.end() ? "unknown" : it->second] += n;
    }
  }

  // Pipeline: join, then rollup.
  const auto join_spec =
      JoinClicksWithProfilesJob("clicks", "profiles", "joined", 3);
  const auto join_result = platform_.Run(join_spec, HadoopOptions());
  EXPECT_EQ(join_result.output_records, expected_joined_users);

  const auto rollup_spec = CountryClickCountJob("joined", 3, "by_country", 2);
  platform_.Run(rollup_spec, HashOnePassOptions());

  std::map<std::string, std::uint64_t> actual;
  for (const auto& [country, v] : platform_.ReadOutput("by_country", 2)) {
    actual[country] = DecodeValueU64(v);
  }
  EXPECT_EQ(actual, expected);
  EXPECT_GT(actual["unknown"], 0u) << "profile-less users must surface";
}

TEST_F(PipelineTest, HashtagCountOverTweets) {
  TweetStreamOptions gen;
  gen.num_tweets = 20'000;
  gen.num_hashtags = 500;
  GenerateTweetStream(platform_.dfs(), "tweets", gen);

  // Reference hashtag counts.
  std::map<std::string, std::uint64_t> expected;
  std::uint64_t total_tags = 0;
  for (const auto& block : platform_.dfs().ListBlocks("tweets")) {
    auto reader = platform_.dfs().OpenBlock(block);
    Slice record;
    while (reader->Next(&record)) {
      const std::string line = record.ToString();
      std::size_t pos = 0;
      while ((pos = line.find('#', pos)) != std::string::npos) {
        auto end = line.find(' ', pos);
        if (end == std::string::npos) end = line.size();
        ++expected[line.substr(pos, end - pos)];
        ++total_tags;
        pos = end;
      }
    }
  }
  ASSERT_GT(total_tags, 10'000u);

  platform_.Run(HashtagCountJob("tweets", "tags", 3), HashOnePassOptions());
  std::map<std::string, std::uint64_t> actual;
  for (const auto& [tag, v] : platform_.ReadOutput("tags", 3)) {
    actual[tag] = DecodeValueU64(v);
  }
  EXPECT_EQ(actual, expected);
}

TEST_F(PipelineTest, TrendingTagsViaTopKPipeline) {
  TweetStreamOptions gen;
  gen.num_tweets = 30'000;
  gen.hashtag_theta = 1.2;
  GenerateTweetStream(platform_.dfs(), "tweets", gen);

  const auto winners = RunTopKPipeline(
      platform_, HashtagCountJob("tweets", "trend_counts", 3),
      HotKeyOnePassOptions(1024), 5);
  ASSERT_EQ(winners.size(), 5u);
  for (const auto& w : winners) {
    EXPECT_EQ(w.payload[0], '#');
    EXPECT_GT(w.score, 100u) << "trending tags must be genuinely frequent";
  }
}

}  // namespace
}  // namespace opmr
