// Secondary sort (grouping_prefix) tests: partition/group integrity,
// in-group value ordering, and the sessionization variant's agreement with
// the classic job.
#include <gtest/gtest.h>

#include <map>

#include "core/opmr.h"
#include "workloads/clickstream.h"
#include "workloads/tasks.h"

namespace opmr {
namespace {

TEST(SecondarySort, ValuesArriveInFullKeyOrder) {
  Platform platform({.num_nodes = 2, .block_bytes = 128u << 10});
  // Records "group:order" — map builds composite keys <group><order>.
  auto writer = platform.dfs().Create("in");
  Rng rng(5);
  for (int i = 0; i < 5'000; ++i) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "g%03llu:%05llu",
                  static_cast<unsigned long long>(rng.Uniform(40)),
                  static_cast<unsigned long long>(rng.Uniform(100'000)));
    writer->Append(Slice(buf, 10));
  }
  writer->Close();

  JobSpec spec;
  spec.name = "ss_order";
  spec.input_file = "in";
  spec.output_file = "out";
  spec.num_reducers = 3;
  spec.grouping_prefix = 4;  // "gNNN"
  spec.map = [](Slice record, OutputCollector& out) {
    // key = gNNN + order digits; value = order digits.
    std::string key(record.data(), 4);
    key.append(record.data() + 5, 5);
    out.Emit(key, Slice(record.data() + 5, 5));
  };
  spec.reduce = [](Slice first_key, ValueIterator& values,
                   OutputCollector& out) {
    // Assert non-decreasing order inside the group; emit the count.
    std::string last;
    std::uint64_t n = 0;
    Slice v;
    while (values.Next(&v)) {
      EXPECT_LE(last, v.ToString()) << "values not ordered within group";
      last = v.ToString();
      ++n;
    }
    out.Emit(Slice(first_key.data(), 4), std::to_string(n));
  };

  platform.Run(spec, HadoopOptions());
  std::uint64_t total = 0;
  std::map<std::string, int> group_rows;
  for (const auto& [group, count] : platform.ReadOutput("out", 3)) {
    ++group_rows[group];
    total += std::stoull(count);
  }
  EXPECT_EQ(total, 5'000u);
  for (const auto& [group, rows] : group_rows) {
    EXPECT_EQ(rows, 1) << "group " << group << " split across reducers";
  }
}

TEST(SecondarySort, ValidatedAgainstHashRuntimesAndAggregators) {
  Platform platform({.num_nodes = 1, .block_bytes = 128u << 10});
  platform.dfs().Create("in")->Close();

  JobSpec spec = PerUserCountJob("in", "out", 1);  // aggregator job
  spec.grouping_prefix = 3;
  EXPECT_THROW(platform.Run(spec, HadoopOptions()), std::invalid_argument);

  JobSpec holistic = SessionizationSecondarySortJob("in", "out2", 1);
  EXPECT_THROW(platform.Run(holistic, HashOnePassOptions()),
               std::invalid_argument);
}

TEST(SecondarySort, SessionizationVariantsAgree) {
  Platform platform({.num_nodes = 2, .block_bytes = 256u << 10});
  ClickStreamOptions gen;
  gen.num_records = 20'000;
  gen.num_users = 800;
  GenerateClickStream(platform.dfs(), "clicks", gen);

  platform.Run(SessionizationJob("clicks", "classic", 3), HadoopOptions());
  platform.Run(SessionizationSecondarySortJob("clicks", "ss", 3),
               HadoopOptions());

  // Identical (user -> multiset of session entries); emission order within
  // a user may differ only in ties, so compare sorted lists.
  auto collect = [&](const std::string& prefix) {
    std::map<std::string, std::multiset<std::string>> out;
    for (const auto& [user, entry] : platform.ReadOutput(prefix, 3)) {
      out[user].insert(entry);
    }
    return out;
  };
  EXPECT_EQ(collect("classic"), collect("ss"));
}

TEST(SecondarySort, SurvivesTinyBuffersAndMerges) {
  Platform platform({.num_nodes = 2, .block_bytes = 128u << 10});
  ClickStreamOptions gen;
  gen.num_records = 15'000;
  gen.num_users = 400;
  GenerateClickStream(platform.dfs(), "clicks", gen);

  JobOptions tight = HadoopOptions();
  tight.map_buffer_bytes = 8u << 10;     // many map-side spills
  tight.reduce_buffer_bytes = 8u << 10;  // many reduce-side runs
  tight.merge_factor = 2;                // maximal multi-pass merging
  platform.Run(SessionizationSecondarySortJob("clicks", "ss_tight", 3),
               tight);
  platform.Run(SessionizationJob("clicks", "classic2", 3), HadoopOptions());

  auto collect = [&](const std::string& prefix) {
    std::map<std::string, std::multiset<std::string>> out;
    for (const auto& [user, entry] : platform.ReadOutput(prefix, 3)) {
      out[user].insert(entry);
    }
    return out;
  };
  EXPECT_EQ(collect("ss_tight"), collect("classic2"));
}

}  // namespace
}  // namespace opmr
