#include "dataplane/event_loop.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/sendfile.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cassert>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/crc32c.h"
#include "dataplane/block_format.h"
#include "net/wire.h"

namespace opmr::dataplane {

namespace {

using net::Frame;
using net::FrameType;
using net::TransportError;

std::int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SleepMs(double ms) {
  if (ms <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void SetSockBuf(int fd, int bytes) {
  if (bytes <= 0) return;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &bytes, sizeof(bytes));
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &bytes, sizeof(bytes));
}

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

// Blocking write used only off-loop: the reconnect handshake runs on the
// sender's thread against a still-blocking socket, exactly like tcp.
bool WriteAllBlocking(int fd, const std::string& data, Counter* syscalls) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (syscalls != nullptr) syscalls->Increment();
    off += static_cast<std::size_t>(n);
  }
  return true;
}

struct Endpoint {
  std::string host;
  int port = 0;
};

Endpoint ParseEndpoint(const std::string& text) {
  const auto colon = text.rfind(':');
  if (colon == std::string::npos || colon + 1 == text.size()) {
    throw TransportError("dataplane: malformed endpoint '" + text + "'");
  }
  Endpoint ep;
  ep.host = text.substr(0, colon);
  ep.port = std::stoi(text.substr(colon + 1));
  return ep;
}

int DialOnce(const Endpoint& ep, int sock_buf_bytes) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(ep.port));
  if (::inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw TransportError("dataplane: bad address '" + ep.host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  SetNoDelay(fd);
  SetSockBuf(fd, sock_buf_bytes);
  return fd;
}

// epoll user-data tags for the two non-connection descriptors.
int kWakeTag;
int kListenTag;

constexpr int kMaxIov = 8;          // gather width per writev
constexpr std::size_t kMaxSendfileChunk = 1u << 20;

}  // namespace

// --- Connection --------------------------------------------------------------

class ElConn final : public net::Connection {
 public:
  enum class Role { kClient, kServer };

  // One queued wire unit: `bytes` (frame header + any in-memory payload)
  // written first, then — for sendfile frames — `file_len` bytes of
  // `file_fd` starting at `file_off`.
  struct Outbound {
    std::string bytes;
    std::size_t off = 0;  // written prefix of `bytes` (only the front entry)
    int file_fd = -1;
    off_t file_off = 0;
    std::uint64_t file_len = 0;
  };

  ElConn(EventLoopTransport* owner, Role role, net::FrameHandler handler,
         Endpoint endpoint)
      : owner_(owner),
        role_(role),
        handler_(std::move(handler)),
        endpoint_(std::move(endpoint)),
        writer_(WriterOptions(owner->options_)) {}

  ~ElConn() override {
    std::scoped_lock ql(q_mu_);
    ClearOutboundLocked();
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  void Send(const Frame& frame) override {
    if (role_ == Role::kServer) {
      SendServer(frame);
      return;
    }
    std::scoped_lock order(send_mu_);
    if (user_closed_) throw TransportError("dataplane: connection closed");
    const std::uint64_t seq = ++send_seq_;
    for (int attempt = 1;; ++attempt) {
      if (ConsultHookOrDrop(seq, attempt)) {
        owner_->retransmits_->Increment();
        ReconnectLocked();
        continue;
      }
      {
        std::unique_lock ql(q_mu_);
        if (!broken_ && fd_ >= 0) {
          EnqueueFrameLocked(frame);
          owner_->frames_sent_->Increment();
          owner_->WakeLoop();
          WaitBelowCapLocked(ql);
          if (!broken_) return;
        }
      }
      if (attempt >= owner_->options_.send_attempts) {
        throw TransportError("dataplane: send failed after " +
                             std::to_string(attempt) + " attempts");
      }
      owner_->retransmits_->Increment();
      ReconnectLocked();
    }
  }

  bool SendFileFrame(FrameType type, const std::string& payload_prefix,
                     const std::string& path, std::uint64_t offset,
                     std::uint64_t length) override {
    if (role_ != Role::kClient) return false;
    if (payload_prefix.size() + length > net::kMaxFramePayload) return false;

    // Stream the file once to CRC it (the frame checksum covers the whole
    // payload); the win over an in-memory frame is that the socket copy is
    // kernel-side via sendfile(2), and nothing is buffered per frame.
    const int base_fd = ::open(path.c_str(), O_RDONLY);
    if (base_fd < 0) return false;
    std::uint32_t crc = 0;
    {
      const char covered[4] = {static_cast<char>(type), 0, 0, 0};
      std::uint32_t acc = Crc32cUpdate(kCrc32cInit, covered, sizeof(covered));
      acc = Crc32cUpdate(acc, payload_prefix.data(), payload_prefix.size());
      char buf[1 << 16];
      std::uint64_t left = length;
      off_t pos = static_cast<off_t>(offset);
      while (left > 0) {
        const std::size_t want =
            left < sizeof(buf) ? static_cast<std::size_t>(left) : sizeof(buf);
        const ssize_t n = ::pread(base_fd, buf, want, pos);
        if (n <= 0) {
          if (n < 0 && errno == EINTR) continue;
          ::close(base_fd);
          return false;  // vanished or truncated: caller falls back
        }
        acc = Crc32cUpdate(acc, buf, static_cast<std::size_t>(n));
        left -= static_cast<std::uint64_t>(n);
        pos += n;
      }
      crc = Crc32cFinal(acc);
    }
    std::string head;
    head.reserve(net::kFrameHeaderBytes + payload_prefix.size());
    AppendU32(head, net::kFrameMagic);
    head.push_back(static_cast<char>(type));
    head.push_back(0);
    head.push_back(0);
    head.push_back(0);
    AppendU32(head,
              static_cast<std::uint32_t>(payload_prefix.size() + length));
    AppendU32(head, crc);
    head.append(payload_prefix);

    std::scoped_lock order(send_mu_);
    if (user_closed_) {
      ::close(base_fd);
      throw TransportError("dataplane: connection closed");
    }
    const std::uint64_t seq = ++send_seq_;
    for (int attempt = 1;; ++attempt) {
      if (ConsultHookOrDrop(seq, attempt)) {
        owner_->retransmits_->Increment();
        ReconnectLocked();
        continue;
      }
      {
        std::unique_lock ql(q_mu_);
        if (!broken_ && fd_ >= 0) {
          const int dup_fd = ::fcntl(base_fd, F_DUPFD_CLOEXEC, 0);
          if (dup_fd < 0) {
            ::close(base_fd);
            return false;
          }
          FlushPendingLocked();  // keep frame order across the block seam
          Outbound entry;
          entry.bytes = head;
          entry.file_fd = dup_fd;
          entry.file_off = static_cast<off_t>(offset);
          entry.file_len = length;
          outbound_bytes_ += entry.bytes.size() + entry.file_len;
          outbound_.push_back(std::move(entry));
          owner_->frames_sent_->Increment();
          owner_->sendfile_frames_->Increment();
          owner_->sendfile_bytes_->Add(static_cast<std::int64_t>(length));
          owner_->WakeLoop();
          WaitBelowCapLocked(ql);
          if (!broken_) {
            ::close(base_fd);
            return true;
          }
        }
      }
      if (attempt >= owner_->options_.send_attempts) {
        ::close(base_fd);
        throw TransportError("dataplane: send failed after " +
                             std::to_string(attempt) + " attempts");
      }
      owner_->retransmits_->Increment();
      ReconnectLocked();
    }
  }

  void Close() override {
    if (role_ == Role::kServer) {
      CloseServer();
      return;
    }
    std::scoped_lock order(send_mu_);
    std::unique_lock ql(q_mu_);
    if (user_closed_) return;
    user_closed_ = true;
    if (fd_ < 0) return;  // already dead (broken); nothing to flush
    FlushPendingLocked();
    closing_ = true;
    owner_->WakeLoop();
    // The loop drains the queue, half-closes (FIN), keeps reading until the
    // peer closes its end, then releases the fd — the same teardown order
    // as the TCP client, which joins its reader here.
    cv_.wait(ql, [this] { return fd_ < 0; });
  }

 private:
  friend class EventLoopTransport;

  static EncodingWriter::Options WriterOptions(
      const EventLoopTransport::Options& o) {
    EncodingWriter::Options w;
    w.compress = o.compress_blocks;
    w.target_block_bytes = o.target_block_bytes;
    w.max_block_frames = o.max_block_frames;
    return w;
  }

  // Consults the fault hook (client role); true means drop-and-retransmit.
  bool ConsultHookOrDrop(std::uint64_t seq, int attempt) {
    net::NetFaultHook* hook = net::GetNetFaultHook();
    if (hook == nullptr) return false;
    const std::int64_t t0 = NowNanos();
    const bool drop = hook->OnFrameSend(seq, attempt);
    owner_->stall_nanos_->Add(NowNanos() - t0);
    return drop;
  }

  void SendServer(const Frame& frame) {
    std::string bytes = net::EncodeFrame(frame);
    {
      std::scoped_lock ql(q_mu_);
      if (fd_ < 0 || closing_ || broken_ || draining_) {
        throw TransportError("dataplane: peer connection lost");
      }
      outbound_bytes_ += bytes.size();
      Outbound entry;
      entry.bytes = std::move(bytes);
      outbound_.push_back(std::move(entry));
      owner_->frames_sent_->Increment();
    }
    owner_->WakeLoop();
  }

  void CloseServer() {
    bool on_loop = owner_->OnLoopThread();
    std::scoped_lock ql(q_mu_);
    closing_ = true;
    if (on_loop) {
      // A frame handler is killing its own connection (injected peer
      // crash).  Close the fd NOW so the peer's next write turns into an
      // RST instead of being silently ACKed into a half-open socket; the
      // loop notices fd_ < 0 and stops dispatching this read batch.
      CloseFdLocked();
      ClearOutboundLocked();
    } else {
      owner_->WakeLoop();  // loop performs the close
    }
  }

  // Requires q_mu_ (client role).  Appends a frame to the pending block or
  // the outbound queue, preserving order across the block seam.
  void EnqueueFrameLocked(const Frame& frame) {
    if (owner_->options_.block_encoding && IsBlockableType(frame.type)) {
      writer_.Add(frame);
      if (writer_.ShouldFlush()) FlushPendingLocked();
      return;  // else: the loop's flush timer seals it
    }
    FlushPendingLocked();
    Outbound entry;
    entry.bytes = net::EncodeFrame(frame);
    outbound_bytes_ += entry.bytes.size();
    outbound_.push_back(std::move(entry));
  }

  // Requires q_mu_.  Seals the pending block (if any) into the queue.
  void FlushPendingLocked() {
    if (writer_.empty()) return;
    net::BlockMsg block = writer_.Flush();
    owner_->blocks_sent_->Increment();
    if (block.codec == net::kBlockCodecOz) {
      owner_->blocks_compressed_->Increment();
    }
    Outbound entry;
    entry.bytes = net::EncodeFrame(block.ToFrame());
    outbound_bytes_ += entry.bytes.size();
    outbound_.push_back(std::move(entry));
  }

  // Requires q_mu_ (as `ql`).  Back-pressure: blocks the sender while the
  // queue is over the cap.  The loop never takes send_mu_, so it can always
  // drain us out of this wait.
  void WaitBelowCapLocked(std::unique_lock<std::mutex>& ql) {
    cv_.wait(ql, [this] {
      return broken_ || outbound_bytes_ <= owner_->options_.max_outbound_bytes;
    });
  }

  // Requires q_mu_.  Loop-side (or same-thread) fd release.
  void CloseFdLocked() {
    if (fd_ >= 0) {
      owner_->DeregisterFd(fd_, registered_);
      ::close(fd_);
      fd_ = -1;
    }
    registered_ = false;
    register_requested_ = false;
    cv_.notify_all();
  }

  void ClearOutboundLocked() {
    for (Outbound& entry : outbound_) {
      if (entry.file_fd >= 0) ::close(entry.file_fd);
    }
    outbound_.clear();
    outbound_bytes_ = 0;
    writer_.Abandon();
  }

  // Requires send_mu_ (never q_mu_).  Tears the current socket down via the
  // loop, redials BLOCKING, replays the preamble + unacked window on the
  // fresh socket, and hands it back to the loop.
  void ReconnectLocked() {
    const std::int64_t t0 = NowNanos();
    {
      std::unique_lock ql(q_mu_);
      if (fd_ >= 0) {
        teardown_requested_ = true;
        owner_->WakeLoop();
        cv_.wait(ql, [this] { return fd_ < 0; });
      }
      teardown_requested_ = false;
      broken_ = false;
      ClearOutboundLocked();  // the replay window re-covers everything queued
    }
    int fd = -1;
    for (int attempt = 1;; ++attempt) {
      fd = DialOnce(endpoint_, owner_->options_.sock_buf_bytes);
      if (fd >= 0) break;
      if (attempt >= owner_->options_.connect_attempts) {
        throw TransportError("dataplane: cannot connect to " + endpoint_.host +
                             ":" + std::to_string(endpoint_.port));
      }
      SleepMs(owner_->options_.connect_backoff_ms * attempt);
    }
    owner_->reconnects_->Increment();
    // Handshake on the still-blocking socket: Hello preamble, then the
    // ack-window replay.  The server's applied-seq watermark absorbs any
    // frame that also survived the dead connection.
    Frame preamble;
    bool has_preamble = false;
    std::function<std::vector<Frame>()> replay;
    {
      std::scoped_lock lock(owner_->mu_);
      has_preamble = owner_->has_preamble_;
      preamble = owner_->preamble_;
      replay = owner_->reconnect_replay_;
    }
    if (has_preamble) {
      const std::string bytes = net::EncodeFrame(preamble);
      if (!WriteAllBlocking(fd, bytes, owner_->send_syscalls_)) {
        ::close(fd);
        throw TransportError("dataplane: reconnect handshake failed");
      }
      owner_->frames_sent_->Increment();
      owner_->bytes_sent_->Add(static_cast<std::int64_t>(bytes.size()));
    }
    if (replay) {
      for (const Frame& frame : replay()) {
        const std::string bytes = net::EncodeFrame(frame);
        if (!WriteAllBlocking(fd, bytes, owner_->send_syscalls_)) {
          ::close(fd);
          throw TransportError("dataplane: reconnect replay failed");
        }
        owner_->frames_sent_->Increment();
        owner_->bytes_sent_->Add(static_cast<std::int64_t>(bytes.size()));
      }
    }
    SetNonBlocking(fd);
    {
      std::scoped_lock ql(q_mu_);
      fd_ = fd;
      register_requested_ = true;
    }
    owner_->WakeLoop();
    owner_->stall_nanos_->Add(NowNanos() - t0);
  }

  EventLoopTransport* owner_;
  const Role role_;
  net::FrameHandler handler_;  // on_reply (client) or server dispatch
  Endpoint endpoint_;          // client redial target

  // Caller-side ordering lock (client): Send/SendFileFrame/Close/reconnect.
  // The loop NEVER takes it.
  std::mutex send_mu_;
  std::uint64_t send_seq_ = 0;   // guarded by send_mu_
  bool user_closed_ = false;     // guarded by send_mu_ (+ q_mu_ for readers)

  // Queue lock: everything below.  Short holds only; cv_ is its condition.
  std::mutex q_mu_;
  std::condition_variable cv_;
  int fd_ = -1;
  bool registered_ = false;          // loop has the fd in epoll
  bool register_requested_ = false;  // fresh fd waiting for the loop
  bool teardown_requested_ = false;  // sender waits for fd_ < 0
  bool closing_ = false;             // drain, FIN, read to EOF, release
  bool half_closed_ = false;         // FIN sent
  bool broken_ = false;              // fatal error; next Send reconnects
  bool draining_ = false;            // server role: peer EOF, flush then close
  std::deque<Outbound> outbound_;
  std::size_t outbound_bytes_ = 0;
  EncodingWriter writer_;  // client role pending block

  // Loop-only state (no lock: only the loop thread touches it).
  net::FrameDecoder decoder_;
  bool armed_out_ = false;
};

// --- EventLoopTransport ------------------------------------------------------

EventLoopTransport::EventLoopTransport(MetricRegistry* metrics)
    : EventLoopTransport(metrics, Options{}) {}

EventLoopTransport::EventLoopTransport(MetricRegistry* metrics,
                                       std::string endpoint)
    : EventLoopTransport(metrics, std::move(endpoint), Options{}) {}

EventLoopTransport::EventLoopTransport(MetricRegistry* metrics,
                                       Options options)
    : metrics_(metrics),
      options_(options),
      frames_sent_(metrics->Get(net::kNetFramesSent)),
      frames_received_(metrics->Get(net::kNetFramesReceived)),
      bytes_sent_(metrics->Get(net::kNetBytesSent)),
      bytes_received_(metrics->Get(net::kNetBytesReceived)),
      retransmits_(metrics->Get(net::kNetRetransmits)),
      reconnects_(metrics->Get(net::kNetReconnects)),
      stall_nanos_(metrics->Get(net::kNetStallNanos)),
      send_syscalls_(metrics->Get(net::kNetSendSyscalls)),
      recv_syscalls_(metrics->Get(net::kNetRecvSyscalls)),
      blocks_sent_(metrics->Get(kBlocksSent)),
      blocks_received_(metrics->Get(kBlocksReceived)),
      blocks_compressed_(metrics->Get(kBlocksCompressed)),
      block_acks_(metrics->Get(kBlockAcks)),
      sendfile_frames_(metrics->Get(kSendfileFrames)),
      sendfile_bytes_(metrics->Get(kSendfileBytes)) {}

EventLoopTransport::EventLoopTransport(MetricRegistry* metrics,
                                       std::string endpoint, Options options)
    : EventLoopTransport(metrics, options) {
  remote_endpoint_ = std::move(endpoint);
}

EventLoopTransport::~EventLoopTransport() { Shutdown(); }

void EventLoopTransport::Bind() {
  std::scoped_lock lock(mu_);
  if (!remote_endpoint_.empty()) {
    throw TransportError("dataplane: Bind on a client-mode transport");
  }
  if (listen_fd_ >= 0) return;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw TransportError("dataplane: socket() failed");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  if (options_.bind_address == "0.0.0.0") {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
  } else if (::inet_pton(AF_INET, options_.bind_address.c_str(),
                         &addr.sin_addr) != 1) {
    ::close(fd);
    throw TransportError("dataplane: bad bind address '" +
                         options_.bind_address + "'");
  }
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.bind_port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    throw TransportError("dataplane: bind/listen failed on " +
                         options_.bind_address + ":" +
                         std::to_string(options_.bind_port));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    throw TransportError("dataplane: getsockname failed");
  }
  SetNonBlocking(fd);
  listen_fd_ = fd;
  port_ = ntohs(addr.sin_port);
}

void EventLoopTransport::Listen(net::FrameHandler handler) {
  {
    std::scoped_lock lock(mu_);
    if (!remote_endpoint_.empty()) {
      throw TransportError("dataplane: Listen on a client-mode transport");
    }
    if (handler_) throw TransportError("dataplane: Listen called twice");
    handler_ = std::move(handler);
  }
  Bind();
  {
    std::scoped_lock lock(mu_);
    EnsureLoopStartedLocked();
  }
  WakeLoop();  // the loop registers the listen fd on this wakeup
}

std::shared_ptr<net::Connection> EventLoopTransport::Connect(
    net::FrameHandler on_reply) {
  Endpoint ep;
  {
    std::scoped_lock lock(mu_);
    if (!remote_endpoint_.empty()) {
      ep = ParseEndpoint(remote_endpoint_);
    } else if (listen_fd_ >= 0) {
      ep = Endpoint{AdvertisedHostLocked(), port_};  // self-dial
    } else {
      throw TransportError("dataplane: Connect before Bind and without endpoint");
    }
  }
  int fd = -1;
  for (int attempt = 1;; ++attempt) {
    fd = DialOnce(ep, options_.sock_buf_bytes);
    if (fd >= 0) break;
    if (attempt >= options_.connect_attempts) {
      throw TransportError("dataplane: cannot connect to " + ep.host + ":" +
                           std::to_string(ep.port));
    }
    SleepMs(options_.connect_backoff_ms * attempt);
  }
  SetNonBlocking(fd);
  auto conn = std::make_shared<ElConn>(this, ElConn::Role::kClient,
                                       std::move(on_reply), ep);
  {
    std::scoped_lock ql(conn->q_mu_);
    conn->fd_ = fd;
    conn->register_requested_ = true;
  }
  {
    std::scoped_lock lock(mu_);
    if (shutdown_) {
      ::close(fd);
      throw TransportError("dataplane: transport is shut down");
    }
    conns_.push_back(conn);
    EnsureLoopStartedLocked();
  }
  WakeLoop();
  return conn;
}

std::string EventLoopTransport::endpoint() const {
  std::scoped_lock lock(mu_);
  if (!remote_endpoint_.empty()) return remote_endpoint_;
  return AdvertisedHostLocked() + ":" + std::to_string(port_);
}

std::string EventLoopTransport::AdvertisedHostLocked() const {
  if (!options_.advertise_address.empty()) return options_.advertise_address;
  if (options_.bind_address == "0.0.0.0") return "127.0.0.1";
  return options_.bind_address;
}

void EventLoopTransport::SetConnectPreamble(Frame preamble) {
  std::scoped_lock lock(mu_);
  preamble_ = std::move(preamble);
  has_preamble_ = true;
}

void EventLoopTransport::SetReconnectReplay(
    std::function<std::vector<Frame>()> replay) {
  std::scoped_lock lock(mu_);
  reconnect_replay_ = std::move(replay);
}

void EventLoopTransport::Shutdown() {
  std::vector<std::shared_ptr<ElConn>> conns;
  {
    std::scoped_lock lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
    conns = conns_;
  }
  // Graceful client teardown first — it needs the loop alive to flush.
  for (auto& conn : conns) {
    if (conn->role_ == ElConn::Role::kClient) conn->Close();
  }
  stop_.store(true, std::memory_order_release);
  WakeLoop();
  if (loop_.joinable()) loop_.join();
  // The loop is gone: release whatever it still owned.  Detach the conn
  // list under mu_, then tear each conn down with only its q_mu_ held —
  // q_mu_ is never taken while holding mu_ (the sanctioned order is
  // q_mu_ -> mu_, via WakeLoop under a held queue lock).
  std::vector<std::shared_ptr<ElConn>> owned;
  {
    std::scoped_lock lock(mu_);
    owned.swap(conns_);
  }
  for (auto& conn : owned) {
    std::scoped_lock ql(conn->q_mu_);
    conn->ClearOutboundLocked();
    if (conn->fd_ >= 0) {
      ::close(conn->fd_);
      conn->fd_ = -1;
    }
    conn->registered_ = false;
    conn->broken_ = true;
    conn->cv_.notify_all();
  }
  {
    std::scoped_lock lock(mu_);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    if (epoll_fd_ >= 0) {
      ::close(epoll_fd_);
      epoll_fd_ = -1;
    }
    if (wake_fd_ >= 0) {
      ::close(wake_fd_);
      wake_fd_ = -1;
    }
  }
}

bool EventLoopTransport::OnLoopThread() const {
  return std::this_thread::get_id() == loop_tid_.load(std::memory_order_acquire);
}

void EventLoopTransport::DeregisterFd(int fd, bool registered) {
  if (registered && epoll_fd_ >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }
}

void EventLoopTransport::EnsureLoopStartedLocked() {
  if (loop_.joinable()) return;
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    throw TransportError("dataplane: epoll/eventfd setup failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.ptr = &kWakeTag;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  loop_ = std::thread([this] { LoopMain(); });
}

void EventLoopTransport::WakeLoop() {
  int fd = -1;
  {
    std::scoped_lock lock(mu_);
    fd = wake_fd_;
  }
  if (fd < 0) return;
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(fd, &one, sizeof(one));
}

void EventLoopTransport::AcceptReady() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (or the listener died)
    }
    SetNoDelay(fd);
    SetSockBuf(fd, options_.sock_buf_bytes);
    net::FrameHandler handler;
    bool dead = false;
    {
      std::scoped_lock lock(mu_);
      handler = handler_;
      dead = shutdown_;
    }
    if (dead || !handler) {
      ::close(fd);
      continue;
    }
    auto conn = std::make_shared<ElConn>(this, ElConn::Role::kServer,
                                         std::move(handler), Endpoint{});
    conn->fd_ = fd;
    conn->registered_ = true;
    {
      std::scoped_lock lock(mu_);
      conns_.push_back(conn);
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = conn.get();
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  }
}

bool EventLoopTransport::DispatchDecoded(ElConn* conn) {
  Frame frame;
  net::DecodeStatus status;
  while ((status = conn->decoder_.Next(&frame)) == net::DecodeStatus::kOk) {
    {
      std::scoped_lock ql(conn->q_mu_);
      if (conn->fd_ < 0) return true;  // a handler closed us mid-batch
    }
    if (frame.type == FrameType::kBlock) {
      std::vector<Frame> inner;
      std::uint64_t block_seq = 0;
      try {
        const net::BlockMsg block = net::BlockMsg::Parse(frame);
        block_seq = block.block_seq;
        inner = UnpackBlock(block);
      } catch (const net::WireError&) {
        return false;  // corrupt block: kill the connection, peer replays
      }
      blocks_received_->Increment();
      for (Frame& f : inner) {
        {
          std::scoped_lock ql(conn->q_mu_);
          if (conn->fd_ < 0) return true;
        }
        frames_received_->Increment();
        conn->handler_(conn, std::move(f));
      }
      if (conn->role_ == ElConn::Role::kServer) {
        // Server-role Send only enqueues (never takes send_mu_), so it is
        // safe from the loop thread.  Client connections never ack blocks.
        net::BlockAckMsg ack;
        ack.upto_block = block_seq;
        ack.frames = static_cast<std::uint64_t>(inner.size());
        try {
          conn->Send(ack.ToFrame());
        } catch (const net::TransportError&) {
          // Connection died under the handler; the ack is observability-only.
        }
      }
    } else if (frame.type == FrameType::kBlockAck) {
      try {
        (void)net::BlockAckMsg::Parse(frame);
      } catch (const net::WireError&) {
        return false;
      }
      block_acks_->Increment();  // consumed by the transport, not forwarded
    } else {
      frames_received_->Increment();
      conn->handler_(conn, std::move(frame));
    }
  }
  return status == net::DecodeStatus::kNeedMore;
}

void EventLoopTransport::ReadReady(ElConn* conn) {
  char buf[1 << 16];
  for (;;) {
    int fd = -1;
    {
      std::scoped_lock ql(conn->q_mu_);
      if (conn->fd_ < 0 || !conn->registered_ || conn->draining_) return;
      fd = conn->fd_;
    }
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      FailConn(conn);
      return;
    }
    if (n == 0) {
      HandleEof(conn);
      return;
    }
    recv_syscalls_->Increment();
    bytes_received_->Add(n);
    conn->decoder_.Feed(buf, static_cast<std::size_t>(n));
    if (!DispatchDecoded(conn)) {
      // Framing invariant broken: drop the connection (a client will
      // reconnect and replay; a server-side peer redials us).
      FailConn(conn);
      return;
    }
  }
}

void EventLoopTransport::HandleEof(ElConn* conn) {
  std::scoped_lock ql(conn->q_mu_);
  if (conn->role_ == ElConn::Role::kClient) {
    if (conn->half_closed_) {
      conn->CloseFdLocked();  // clean: our FIN was answered
    } else {
      conn->broken_ = true;  // server vanished; next Send reconnects
      conn->CloseFdLocked();
      conn->ClearOutboundLocked();
    }
    return;
  }
  // Server role: the peer half-closed.  Flush queued replies (final acks
  // must still reach the half-closed client), then release.
  conn->draining_ = true;
  if (conn->outbound_.empty()) {
    conn->CloseFdLocked();
  } else if (conn->fd_ >= 0) {
    epoll_event ev{};
    ev.events = EPOLLOUT;  // EOF would re-fire EPOLLIN forever
    ev.data.ptr = conn;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd_, &ev);
    conn->armed_out_ = true;
  }
}

void EventLoopTransport::FailConn(ElConn* conn) {
  std::scoped_lock ql(conn->q_mu_);
  conn->broken_ = true;
  conn->CloseFdLocked();
  conn->ClearOutboundLocked();
}

// Requires conn->q_mu_ (held by ServiceConn).  Returns false on fatal error.
bool EventLoopTransport::TryWriteLocked(ElConn* conn) {
  while (!conn->outbound_.empty()) {
    auto& q = conn->outbound_;
    ElConn::Outbound& front = q.front();
    const bool front_bytes_done = front.off >= front.bytes.size();
    if (front_bytes_done && front.file_fd >= 0) {
      // sendfile the file region of the front entry.
      const std::size_t want = front.file_len < kMaxSendfileChunk
                                   ? static_cast<std::size_t>(front.file_len)
                                   : kMaxSendfileChunk;
      const ssize_t w = ::sendfile(conn->fd_, front.file_fd, &front.file_off,
                                   want);
      if (w < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
        return false;
      }
      if (w == 0) return false;  // file truncated under us
      send_syscalls_->Increment();
      bytes_sent_->Add(w);
      front.file_len -= static_cast<std::uint64_t>(w);
      conn->outbound_bytes_ -= static_cast<std::size_t>(w);
      if (front.file_len == 0) {
        ::close(front.file_fd);
        q.pop_front();
      }
      continue;
    }
    // Gather byte spans from the queue head; stop after the first entry
    // that carries a file region (its file bytes must go out next).
    iovec iov[kMaxIov];
    int iovn = 0;
    for (auto it = q.begin(); it != q.end() && iovn < kMaxIov; ++it) {
      const std::size_t off = (it == q.begin()) ? it->off : 0;
      if (it->bytes.size() > off) {
        iov[iovn].iov_base = const_cast<char*>(it->bytes.data() + off);
        iov[iovn].iov_len = it->bytes.size() - off;
        ++iovn;
      }
      if (it->file_fd >= 0) break;
    }
    const ssize_t w = ::writev(conn->fd_, iov, iovn);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      return false;
    }
    send_syscalls_->Increment();
    bytes_sent_->Add(w);
    std::size_t left = static_cast<std::size_t>(w);
    conn->outbound_bytes_ -= left;
    while (left > 0) {
      ElConn::Outbound& f = q.front();
      const std::size_t avail = f.bytes.size() - f.off;
      const std::size_t take = avail < left ? avail : left;
      f.off += take;
      left -= take;
      if (f.off >= f.bytes.size()) {
        if (f.file_fd >= 0) break;  // its file region is next
        q.pop_front();
      } else {
        break;  // partial write
      }
    }
  }
  return true;
}

void EventLoopTransport::ServiceConn(ElConn* conn, bool timer_tick) {
  std::scoped_lock ql(conn->q_mu_);
  if (conn->teardown_requested_) {
    conn->CloseFdLocked();
    conn->ClearOutboundLocked();
    return;
  }
  if (conn->register_requested_ && conn->fd_ >= 0) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = conn;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, conn->fd_, &ev);
    conn->registered_ = true;
    conn->register_requested_ = false;
    conn->armed_out_ = false;
    conn->decoder_ = net::FrameDecoder();  // fresh stream, fresh framing
    conn->cv_.notify_all();
  }
  if (conn->fd_ < 0 || !conn->registered_) return;
  if (conn->role_ == ElConn::Role::kServer && conn->closing_ &&
      !conn->draining_) {
    // External Close on a server connection: hard stop.
    conn->CloseFdLocked();
    conn->ClearOutboundLocked();
    return;
  }
  if (timer_tick && !conn->writer_.empty()) {
    conn->FlushPendingLocked();  // latency bound on a stale partial block
  }
  if (!conn->outbound_.empty()) {
    if (!TryWriteLocked(conn)) {
      conn->broken_ = true;
      conn->CloseFdLocked();
      conn->ClearOutboundLocked();
      return;
    }
    conn->cv_.notify_all();  // back-pressure waiters
  }
  const bool want_out = !conn->outbound_.empty();
  if (want_out != conn->armed_out_) {
    epoll_event ev{};
    ev.events = (conn->draining_ ? 0u : EPOLLIN) | (want_out ? EPOLLOUT : 0u);
    ev.data.ptr = conn;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd_, &ev);
    conn->armed_out_ = want_out;
  }
  if (conn->draining_ && conn->outbound_.empty()) {
    conn->CloseFdLocked();  // final acks flushed; we answer the FIN
    return;
  }
  if (conn->closing_ && conn->outbound_.empty() && conn->writer_.empty() &&
      !conn->half_closed_) {
    ::shutdown(conn->fd_, SHUT_WR);  // FIN; keep reading until peer closes
    conn->half_closed_ = true;
  }
}

void EventLoopTransport::LoopMain() {
  loop_tid_.store(std::this_thread::get_id(), std::memory_order_release);
  bool listen_registered = false;
  std::vector<std::shared_ptr<ElConn>> snapshot;
  epoll_event events[64];
  while (!stop_.load(std::memory_order_acquire)) {
    snapshot.clear();
    int epfd = -1;
    {
      std::scoped_lock lock(mu_);
      snapshot = conns_;
      epfd = epoll_fd_;
      if (!listen_registered && listen_fd_ >= 0 && handler_) {
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.ptr = &kListenTag;
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
        listen_registered = true;
      }
    }
    // A pending partial block bounds how long we may sleep.
    int timeout_ms = -1;
    for (const auto& conn : snapshot) {
      std::scoped_lock ql(conn->q_mu_);
      if (!conn->writer_.empty()) {
        timeout_ms = options_.flush_interval_ms < 1.0
                         ? 1
                         : static_cast<int>(options_.flush_interval_ms);
        break;
      }
    }
    const int n = ::epoll_wait(epfd, events, 64, timeout_ms);
    if (n < 0 && errno != EINTR) break;
    const bool timer_tick = (n == 0);
    for (int i = 0; i < (n > 0 ? n : 0); ++i) {
      void* ptr = events[i].data.ptr;
      if (ptr == &kWakeTag) {
        std::uint64_t drain = 0;
        while (::read(wake_fd_, &drain, sizeof(drain)) > 0) {
        }
      } else if (ptr == &kListenTag) {
        AcceptReady();
      } else if (events[i].events & (EPOLLIN | EPOLLERR | EPOLLHUP)) {
        ReadReady(static_cast<ElConn*>(ptr));
      }
    }
    for (const auto& conn : snapshot) {
      ServiceConn(conn.get(), timer_tick);
    }
  }
}

}  // namespace opmr::dataplane
