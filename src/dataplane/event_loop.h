// EventLoopTransport: epoll-based data-plane transport.
//
// One event-loop thread per transport multiplexes every shuffle connection
// over a single epoll(7) instance (level-triggered, non-blocking sockets,
// eventfd wakeup) instead of TcpTransport's thread-per-connection blocking
// I/O.  Senders enqueue; the loop coalesces queued frames into
// scatter-gather writev(2) batches (and sendfile(2) for file-backed
// payloads), so the syscalls-per-frame cost the ablation bench measures
// amortizes across the queue depth.
//
// Client connections additionally batch data frames into protocol-v7
// kBlock frames through an EncodingWriter (block-granular adaptive
// compression, see dataplane/encoding_writer.h): blockable frames
// accumulate until the block fills, a non-blockable control frame forces a
// flush, or the loop's flush timer (flush_interval_ms) seals a stale
// block.  The server side unpacks blocks back into the exact frame stream
// the shuffle layer expects and answers each with a kBlockAck
// (observability only).
//
// Semantics mirror TcpTransport so the ShuffleClient/ShuffleServer pair —
// exactly-once sequencing, ack-window replay, NetFaultHook injection —
// works unchanged:
//
//   * Construction modes: server/full (Bind() before fork() is safe: the
//     loop thread starts lazily on Listen/Connect, never in Bind) and
//     client (endpoint string).
//   * The client consults the process-global NetFaultHook before each
//     send; a dropped or failed send tears the connection down, redials,
//     replays the Hello preamble plus the reconnect-replay window, and
//     retransmits.  Frames batched but not yet flushed when a connection
//     dies are simply abandoned — they are all inside the unacked window,
//     so the replay re-delivers them.
//   * Close() flushes queued output, half-closes (FIN), and drains inbound
//     until the peer closes, exactly like the TCP client teardown.
//
// Locking (the deadlock-relevant invariant): each connection has a
// caller-side ordering lock (send_mu_, held across Send/reconnect/Close,
// possibly across waits) and a queue lock (q_mu_, short holds only).  The
// loop thread takes q_mu_ but NEVER send_mu_, so a sender waiting for the
// loop (backpressure, teardown handshake) can always be satisfied.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dataplane/encoding_writer.h"
#include "metrics/counters.h"
#include "net/frame.h"
#include "net/transport.h"

namespace opmr::dataplane {

// Data-plane metric names (beyond the net.* wire metrics shared with tcp).
inline constexpr const char* kBlocksSent = "dataplane.blocks_sent";
inline constexpr const char* kBlocksReceived = "dataplane.blocks_received";
inline constexpr const char* kBlocksCompressed = "dataplane.blocks_compressed";
inline constexpr const char* kBlockAcks = "dataplane.block_acks";
inline constexpr const char* kSendfileFrames = "dataplane.sendfile_frames";
inline constexpr const char* kSendfileBytes = "dataplane.sendfile_bytes";

class ElConn;

class EventLoopTransport final : public net::Transport {
 public:
  struct Options {
    // Dial/retry knobs, same meaning as TcpTransport::Options.
    int connect_attempts = 20;
    double connect_backoff_ms = 25;
    int send_attempts = 4;
    std::string bind_address = "127.0.0.1";
    int bind_port = 0;  // 0 = ephemeral
    std::string advertise_address;
    // SO_SNDBUF / SO_RCVBUF for every data socket; 0 = kernel default.
    // TCP_NODELAY is always set (the block layer does the batching).
    int sock_buf_bytes = 0;

    // --- Block encoding (client connections) ---------------------------------
    bool block_encoding = true;     // batch data frames into kBlock frames
    bool compress_blocks = false;   // adaptive OZ codec per block
    std::size_t target_block_bytes = 256u << 10;
    std::uint32_t max_block_frames = 64;
    // A partially-filled block is sealed after this long without reaching
    // the size/count trigger (latency bound on coalescing).
    double flush_interval_ms = 2.0;
    // Client Send() blocks while this many bytes are queued to one
    // connection (the event-loop analog of blocking-socket back-pressure).
    std::size_t max_outbound_bytes = 64u << 20;
  };

  explicit EventLoopTransport(MetricRegistry* metrics);
  EventLoopTransport(MetricRegistry* metrics, Options options);
  EventLoopTransport(MetricRegistry* metrics, std::string endpoint);
  EventLoopTransport(MetricRegistry* metrics, std::string endpoint,
                     Options options);
  ~EventLoopTransport() override;

  // Server mode: bind + listen without starting any thread (fork-safe).
  void Bind();

  void Listen(net::FrameHandler handler) override;
  std::shared_ptr<net::Connection> Connect(net::FrameHandler on_reply) override;
  [[nodiscard]] std::string endpoint() const override;
  void Shutdown() override;
  void SetConnectPreamble(net::Frame preamble) override;
  void SetReconnectReplay(std::function<std::vector<net::Frame>()> replay)
      override;

 private:
  friend class ElConn;

  void EnsureLoopStartedLocked();  // requires mu_
  void LoopMain();
  void WakeLoop();
  void AcceptReady();
  void ReadReady(ElConn* conn);
  // Dispatches decoded inbound frames (unpacking kBlock) to the handler.
  // Returns false when the stream is corrupt and the connection must die.
  bool DispatchDecoded(ElConn* conn);
  void ServiceConn(ElConn* conn, bool timer_tick);
  void HandleEof(ElConn* conn);
  void FailConn(ElConn* conn);
  // Requires conn->q_mu_.  Drains the outbound queue with writev/sendfile
  // until empty or EAGAIN; false means a fatal socket error.
  bool TryWriteLocked(ElConn* conn);
  [[nodiscard]] bool OnLoopThread() const;
  void DeregisterFd(int fd, bool registered);
  [[nodiscard]] std::string AdvertisedHostLocked() const;

  MetricRegistry* metrics_;
  Options options_;

  Counter* frames_sent_ = nullptr;
  Counter* frames_received_ = nullptr;
  Counter* bytes_sent_ = nullptr;
  Counter* bytes_received_ = nullptr;
  Counter* retransmits_ = nullptr;
  Counter* reconnects_ = nullptr;
  Counter* stall_nanos_ = nullptr;
  Counter* send_syscalls_ = nullptr;
  Counter* recv_syscalls_ = nullptr;
  Counter* blocks_sent_ = nullptr;
  Counter* blocks_received_ = nullptr;
  Counter* blocks_compressed_ = nullptr;
  Counter* block_acks_ = nullptr;
  Counter* sendfile_frames_ = nullptr;
  Counter* sendfile_bytes_ = nullptr;

  mutable std::mutex mu_;
  std::string remote_endpoint_;  // client mode; empty in server mode
  int listen_fd_ = -1;
  int port_ = 0;
  bool shutdown_ = false;
  net::FrameHandler handler_;        // server dispatch target
  net::Frame preamble_;
  bool has_preamble_ = false;
  std::function<std::vector<net::Frame>()> reconnect_replay_;

  // Loop machinery.  epoll_fd_/wake_fd_ are created when the loop starts
  // and owned by it; conns_ pins every connection for the loop's lifetime.
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::thread loop_;
  std::atomic<std::thread::id> loop_tid_{};
  std::atomic<bool> stop_{false};
  std::vector<std::shared_ptr<ElConn>> conns_;  // guarded by mu_
};

}  // namespace opmr::dataplane
