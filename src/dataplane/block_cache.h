// BlockCache — bounded LRU reducer-side cache of retained shuffle blocks.
//
// Checkpointed push-shuffle runs retain every consumed item until a
// checkpoint covers it; when the retention budget overflows, items spill
// to per-item retain files (see ShuffleService::SpillRetainedLocked).  A
// reduce-attempt restart rewinds the shuffle to the last acked watermark
// and re-reads those spill files — cold, random I/O on the recovery
// critical path.  This cache keeps the spilled payloads (bounded by
// capacity_bytes, LRU-evicted) keyed by
//
//   (job, sender map task, block sequence, CRC-32C of the payload)
//
// so a rewound fetch is served from memory; the CRC in the key means a
// stale or corrupt entry can never silently satisfy a lookup for
// different bytes.  Entries are pinned via shared_ptr: eviction never
// invalidates a payload a reader is still consuming.
//
// Thread-safe.  Hit/miss/evict counters feed JobResult.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "metrics/counters.h"

namespace opmr::dataplane {

// Metric names charged by the cache (surfaced in JobResult / reports).
inline constexpr const char* kBlockCacheHits = "blockcache.hits";
inline constexpr const char* kBlockCacheMisses = "blockcache.misses";
inline constexpr const char* kBlockCacheEvictions = "blockcache.evictions";
inline constexpr const char* kBlockCacheInserts = "blockcache.inserts";

struct BlockCacheKey {
  std::string job;
  std::int32_t sender = -1;    // originating map task
  std::uint64_t block_seq = 0; // retain-file sequence within the run
  std::uint32_t crc = 0;       // CRC-32C of the payload bytes
};

class BlockCache {
 public:
  // `metrics` may be null (counters are then kept internally only).
  explicit BlockCache(std::size_t capacity_bytes,
                      MetricRegistry* metrics = nullptr);

  // Inserts (or refreshes) an entry; evicts LRU entries until the cache
  // fits the capacity.  An entry larger than the whole capacity is not
  // admitted.
  void Insert(const BlockCacheKey& key,
              std::shared_ptr<const std::string> bytes);

  // Returns the payload or nullptr; counts a hit or a miss and marks the
  // entry most-recently-used.
  [[nodiscard]] std::shared_ptr<const std::string> Lookup(
      const BlockCacheKey& key);

  // Drops an entry if present (the retained item was acknowledged and its
  // spill file deleted — nothing can ever ask for it again).
  void Erase(const BlockCacheKey& key);

  [[nodiscard]] std::size_t size_bytes() const;
  [[nodiscard]] std::size_t entries() const;
  [[nodiscard]] std::int64_t hits() const { return hits_->value(); }
  [[nodiscard]] std::int64_t misses() const { return misses_->value(); }
  [[nodiscard]] std::int64_t evictions() const { return evictions_->value(); }

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const std::string> bytes;
  };
  using LruList = std::list<Entry>;

  static std::string Encode(const BlockCacheKey& key);
  void EvictToFitLocked();

  const std::size_t capacity_bytes_;
  MetricRegistry* metrics_;  // may be null
  Counter owned_counters_[4];
  Counter* hits_;
  Counter* misses_;
  Counter* evictions_;
  Counter* inserts_;

  mutable std::mutex mu_;
  LruList lru_;  // front = most recent
  std::unordered_map<std::string, LruList::iterator> index_;
  std::size_t bytes_ = 0;
};

}  // namespace opmr::dataplane
