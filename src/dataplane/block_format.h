// Block body format for the protocol-v7 kBlock frame (see net/wire.h).
//
// A block body is a concatenation of sub-frame entries:
//
//   [u8 type] [u32 len] [len payload bytes] ...
//
// optionally compressed AS ONE UNIT with the OZ codec (per-block codec
// byte in BlockMsg).  Only data frames ride in blocks — the types a
// shuffle sender emits in bulk between control frames — so the receiving
// transport can unpack a block back into exactly the frame stream the
// shuffle layer would have seen without batching.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/frame.h"
#include "net/wire.h"

namespace opmr::dataplane {

// Frame types eligible for coalescing.  Control frames (Hello, Bye, Abort,
// acks, coordination traffic) are never batched: they mark stream
// positions (Hello must lead a connection) or carry latency-sensitive
// semantics (Abort), so they flush the pending block and go out bare.
[[nodiscard]] bool IsBlockableType(net::FrameType type) noexcept;

// Appends one sub-frame entry to a block body under construction.
void AppendSubFrame(std::string* body, const net::Frame& frame);

// Validates and unpacks a parsed BlockMsg back into its inner frames, in
// order.  Decompresses when the codec byte says so, verifies `raw_crc`
// over the uncompressed body, and walks the sub-frame entries rejecting
// every lie a peer could tell: a length past the body, an unknown or
// non-blockable inner type (blocks never nest), or a count field that
// disagrees with the body.  Throws net::WireError on any violation.
[[nodiscard]] std::vector<net::Frame> UnpackBlock(const net::BlockMsg& block);

}  // namespace opmr::dataplane
