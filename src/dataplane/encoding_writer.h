// EncodingWriter — block-granular wire encoding with adaptive compression.
//
// Mirrors the YTsaurus chunk-client encoding_writer design: data frames
// accumulate into a pending block body; when the block fills (bytes or
// frame count) the writer seals it, choosing the codec per block.  Codec
// choice is adaptive: the writer compresses and keeps an EWMA of the
// achieved ratio; while the ratio says the data is incompressible (above
// `ratio_threshold`) it ships raw blocks and only re-samples compression
// every `resample_interval` blocks, so CPU is never burned on payloads
// that do not shrink (the mapred.compress.map.output trade-off, decided
// per block instead of per job).
//
// Not thread-safe: the owning connection serializes access under its send
// lock (compression therefore runs on the sending thread, in parallel
// across connections, never on the event loop).
#pragma once

#include <cstdint>
#include <string>

#include "net/frame.h"
#include "net/wire.h"

namespace opmr::dataplane {

class EncodingWriter {
 public:
  struct Options {
    // Master switch for the OZ codec; false ships every block raw.
    bool compress = false;
    std::size_t target_block_bytes = 256u << 10;
    std::uint32_t max_block_frames = 64;
    // Compressed/raw ratio above which a block is considered
    // incompressible and the codec is bypassed.
    double ratio_threshold = 0.92;
    // Raw blocks shipped before compression is re-sampled.
    int resample_interval = 16;
  };

  EncodingWriter() : EncodingWriter(Options{}) {}
  explicit EncodingWriter(Options options) : options_(options) {}

  // Appends one data frame to the pending block.
  void Add(const net::Frame& frame);

  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] std::size_t pending_bytes() const noexcept {
    return body_.size();
  }

  // True once the pending block is worth a syscall.
  [[nodiscard]] bool ShouldFlush() const noexcept {
    return body_.size() >= options_.target_block_bytes ||
           count_ >= options_.max_block_frames;
  }

  // Seals the pending block: picks the codec, stamps the sequence number
  // and raw-body CRC, and resets the writer.  Requires !empty().
  [[nodiscard]] net::BlockMsg Flush();

  // Discards the pending block (connection teardown: the ack-window replay
  // re-sends the frames, so half-built blocks must not survive a reconnect).
  void Abandon() noexcept {
    body_.clear();
    count_ = 0;
  }

  // --- Stats (since construction) -------------------------------------------
  [[nodiscard]] std::uint64_t blocks() const noexcept { return blocks_; }
  [[nodiscard]] std::uint64_t frames() const noexcept { return frames_; }
  [[nodiscard]] std::uint64_t compressed_blocks() const noexcept {
    return compressed_blocks_;
  }
  [[nodiscard]] std::uint64_t raw_body_bytes() const noexcept {
    return raw_body_bytes_;
  }
  [[nodiscard]] std::uint64_t wire_body_bytes() const noexcept {
    return wire_body_bytes_;
  }

 private:
  Options options_;
  std::string body_;
  std::uint32_t count_ = 0;
  std::uint64_t next_block_seq_ = 0;

  // Adaptive-codec state: EWMA of achieved compressed/raw ratio and the
  // countdown of raw blocks left before the next sample.
  double ewma_ratio_ = 0.0;
  bool have_sample_ = false;
  int raw_blocks_until_sample_ = 0;

  std::uint64_t blocks_ = 0;
  std::uint64_t frames_ = 0;
  std::uint64_t compressed_blocks_ = 0;
  std::uint64_t raw_body_bytes_ = 0;
  std::uint64_t wire_body_bytes_ = 0;
};

}  // namespace opmr::dataplane
