#include "dataplane/block_cache.h"

#include <utility>

namespace opmr::dataplane {

BlockCache::BlockCache(std::size_t capacity_bytes, MetricRegistry* metrics)
    : capacity_bytes_(capacity_bytes), metrics_(metrics) {
  if (metrics_ != nullptr) {
    hits_ = metrics_->Get(kBlockCacheHits);
    misses_ = metrics_->Get(kBlockCacheMisses);
    evictions_ = metrics_->Get(kBlockCacheEvictions);
    inserts_ = metrics_->Get(kBlockCacheInserts);
  } else {
    hits_ = &owned_counters_[0];
    misses_ = &owned_counters_[1];
    evictions_ = &owned_counters_[2];
    inserts_ = &owned_counters_[3];
  }
}

std::string BlockCache::Encode(const BlockCacheKey& key) {
  std::string out = key.job;
  out.push_back('\0');
  out += std::to_string(key.sender);
  out.push_back('/');
  out += std::to_string(key.block_seq);
  out.push_back('/');
  out += std::to_string(key.crc);
  return out;
}

void BlockCache::Insert(const BlockCacheKey& key,
                        std::shared_ptr<const std::string> bytes) {
  if (bytes == nullptr || bytes->size() > capacity_bytes_) return;
  std::string encoded = Encode(key);
  std::scoped_lock lock(mu_);
  auto it = index_.find(encoded);
  if (it != index_.end()) {
    bytes_ -= it->second->bytes->size();
    lru_.erase(it->second);
    index_.erase(it);
  }
  bytes_ += bytes->size();
  lru_.push_front(Entry{encoded, std::move(bytes)});
  index_.emplace(std::move(encoded), lru_.begin());
  inserts_->Increment();
  EvictToFitLocked();
}

std::shared_ptr<const std::string> BlockCache::Lookup(
    const BlockCacheKey& key) {
  const std::string encoded = Encode(key);
  std::scoped_lock lock(mu_);
  auto it = index_.find(encoded);
  if (it == index_.end()) {
    misses_->Increment();
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  hits_->Increment();
  return it->second->bytes;
}

void BlockCache::Erase(const BlockCacheKey& key) {
  const std::string encoded = Encode(key);
  std::scoped_lock lock(mu_);
  auto it = index_.find(encoded);
  if (it == index_.end()) return;
  bytes_ -= it->second->bytes->size();
  lru_.erase(it->second);
  index_.erase(it);
}

std::size_t BlockCache::size_bytes() const {
  std::scoped_lock lock(mu_);
  return bytes_;
}

std::size_t BlockCache::entries() const {
  std::scoped_lock lock(mu_);
  return lru_.size();
}

void BlockCache::EvictToFitLocked() {
  while (bytes_ > capacity_bytes_ && !lru_.empty()) {
    Entry& victim = lru_.back();
    bytes_ -= victim.bytes->size();
    index_.erase(victim.key);
    lru_.pop_back();
    evictions_->Increment();
  }
}

}  // namespace opmr::dataplane
