#include "dataplane/block_format.h"

#include "common/crc32c.h"
#include "common/slice.h"
#include "storage/codec.h"

namespace opmr::dataplane {

bool IsBlockableType(net::FrameType type) noexcept {
  switch (type) {
    case net::FrameType::kChunk:
    case net::FrameType::kSegmentRef:
    case net::FrameType::kSegmentData:
    case net::FrameType::kMapDone:
    case net::FrameType::kCodedChunk:
      return true;
    default:
      return false;
  }
}

void AppendSubFrame(std::string* body, const net::Frame& frame) {
  body->push_back(static_cast<char>(frame.type));
  AppendU32(*body, static_cast<std::uint32_t>(frame.payload.size()));
  body->append(frame.payload);
}

std::vector<net::Frame> UnpackBlock(const net::BlockMsg& block) {
  std::string decompressed;
  const std::string* body = &block.body;
  if (block.codec == net::kBlockCodecOz) {
    try {
      decompressed = OzDecompress(Slice(block.body));
    } catch (const std::exception& e) {
      throw net::WireError(std::string("block: codec failure: ") + e.what());
    }
    body = &decompressed;
  }
  const std::uint32_t crc = Crc32cFinal(
      Crc32cUpdate(kCrc32cInit, body->data(), body->size()));
  if (crc != block.raw_crc) {
    throw net::WireError("block: raw body CRC mismatch");
  }
  std::vector<net::Frame> frames;
  frames.reserve(block.count);
  std::size_t pos = 0;
  while (pos < body->size()) {
    if (frames.size() == block.count) {
      throw net::WireError("block: body holds more sub-frames than count " +
                           std::to_string(block.count));
    }
    if (body->size() - pos < 5) {
      throw net::WireError("block: truncated sub-frame header");
    }
    const std::uint8_t type = static_cast<std::uint8_t>((*body)[pos]);
    const std::uint32_t len = DecodeU32(body->data() + pos + 1);
    pos += 5;
    if (!net::IsKnownFrameType(type) ||
        !IsBlockableType(static_cast<net::FrameType>(type))) {
      // Covers nesting too: kBlock is not a blockable type.
      throw net::WireError("block: non-blockable inner frame type " +
                           std::to_string(type));
    }
    if (len > body->size() - pos) {
      throw net::WireError("block: sub-frame length " + std::to_string(len) +
                           " past body end");
    }
    net::Frame frame;
    frame.type = static_cast<net::FrameType>(type);
    frame.payload.assign(*body, pos, len);
    frames.push_back(std::move(frame));
    pos += len;
  }
  if (frames.size() != block.count) {
    throw net::WireError("block: count " + std::to_string(block.count) +
                         " disagrees with body (" +
                         std::to_string(frames.size()) + " sub-frames)");
  }
  return frames;
}

}  // namespace opmr::dataplane
