#include "dataplane/encoding_writer.h"

#include <cassert>
#include <utility>

#include "common/crc32c.h"
#include "dataplane/block_format.h"
#include "storage/codec.h"

namespace opmr::dataplane {

void EncodingWriter::Add(const net::Frame& frame) {
  assert(IsBlockableType(frame.type));
  AppendSubFrame(&body_, frame);
  ++count_;
}

net::BlockMsg EncodingWriter::Flush() {
  assert(count_ > 0);
  net::BlockMsg block;
  block.block_seq = ++next_block_seq_;
  block.count = count_;
  block.raw_crc =
      Crc32cFinal(Crc32cUpdate(kCrc32cInit, body_.data(), body_.size()));

  raw_body_bytes_ += body_.size();
  frames_ += count_;
  ++blocks_;

  bool try_codec = options_.compress;
  if (try_codec && have_sample_ && ewma_ratio_ > options_.ratio_threshold) {
    // The stream looks incompressible; skip the CPU, but re-sample
    // periodically in case the content shifted (e.g. a new input split).
    if (raw_blocks_until_sample_ > 0) {
      --raw_blocks_until_sample_;
      try_codec = false;
    } else {
      raw_blocks_until_sample_ = options_.resample_interval;
    }
  }

  if (try_codec) {
    std::string compressed = OzCompress(Slice(body_));
    const double ratio =
        body_.empty() ? 1.0
                      : static_cast<double>(compressed.size()) /
                            static_cast<double>(body_.size());
    ewma_ratio_ = have_sample_ ? 0.7 * ewma_ratio_ + 0.3 * ratio : ratio;
    have_sample_ = true;
    if (ratio <= options_.ratio_threshold) {
      block.codec = net::kBlockCodecOz;
      block.body = std::move(compressed);
      ++compressed_blocks_;
    }
  }
  if (block.codec == net::kBlockCodecRaw) {
    block.body = std::move(body_);
  }
  wire_body_bytes_ += block.body.size();
  body_.clear();  // valid-but-unspecified after move; make it empty again
  count_ = 0;
  return block;
}

}  // namespace opmr::dataplane
