#include "workloads/tasks.h"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "engine/aggregators.h"
#include "engine/hll.h"

namespace opmr {

namespace {

// Sessionization value payload: [u64 timestamp][url bytes].
void EncodeClickValue(std::string& out, std::uint64_t ts, Slice url) {
  out.clear();
  AppendU64(out, ts);
  out.append(url.data(), url.size());
}

// Extracts the raw url field of a text click record (third tab field).
Slice TextUrlField(Slice record) {
  std::size_t tabs = 0;
  std::size_t i = 0;
  for (; i < record.size(); ++i) {
    if (record[i] == '\t' && ++tabs == 2) break;
  }
  return {record.data() + i + 1, record.size() - i - 1};
}

// Extracts the raw user field of a text click record (second tab field).
Slice TextUserField(Slice record) {
  std::size_t first = 0;
  while (first < record.size() && record[first] != '\t') ++first;
  std::size_t second = first + 1;
  while (second < record.size() && record[second] != '\t') ++second;
  return {record.data() + first + 1, second - first - 1};
}

}  // namespace

JobSpec SessionizationJob(const std::string& input, const std::string& output,
                          int num_reducers, ClickFormat format,
                          std::uint64_t session_gap) {
  JobSpec spec;
  spec.name = "sessionization";
  spec.input_file = input;
  spec.output_file = output;
  spec.num_reducers = num_reducers;

  spec.map = [format](Slice record, OutputCollector& out) {
    // Group click logs by user id; the value carries everything the
    // sessionization algorithm needs (paper §III-A).
    if (format == ClickFormat::kText) {
      const ClickRecord click = ParseClick(record, format);
      std::string value;
      EncodeClickValue(value, click.timestamp, TextUrlField(record));
      out.Emit(TextUserField(record), value);
    } else {
      // Pre-parsed input: fields are re-emitted at fixed offsets with no
      // parsing or formatting at all (the SequenceFile advantage §III-B.1
      // investigates).
      char value[12];
      std::memcpy(value, record.data(), 8);       // timestamp
      std::memcpy(value + 8, record.data() + 12, 4);  // url id
      out.Emit(Slice(record.data() + 8, 4), Slice(value, sizeof(value)));
    }
  };

  spec.reduce = [session_gap](Slice user, ValueIterator& values,
                              OutputCollector& out) {
    // Values are either [u64 ts][url text] (text input) or
    // [u64 ts][u32 url] (binary input); the algorithm treats the url
    // payload as opaque bytes either way.
    // The sessionization algorithm: order this user's clicks by time and
    // cut a new session whenever the inter-click gap exceeds the limit.
    struct Click {
      std::uint64_t ts;
      std::string url;
    };
    std::vector<Click> clicks;
    Slice v;
    while (values.Next(&v)) {
      if (v.size() < 8) throw std::runtime_error("sessionization: bad value");
      clicks.push_back(
          {DecodeU64(v.data()), std::string(v.data() + 8, v.size() - 8)});
    }
    std::sort(clicks.begin(), clicks.end(),
              [](const Click& a, const Click& b) { return a.ts < b.ts; });

    std::uint32_t session = 0;
    std::string value;
    for (std::size_t i = 0; i < clicks.size(); ++i) {
      if (i > 0 && clicks[i].ts - clicks[i - 1].ts > session_gap) ++session;
      value.clear();
      char buf[32];
      const int n =
          std::snprintf(buf, sizeof(buf), "s%u\t%llu\t", session,
                        static_cast<unsigned long long>(clicks[i].ts));
      value.append(buf, static_cast<std::size_t>(n));
      value += clicks[i].url;
      out.Emit(user, value);
    }
  };
  return spec;
}

JobSpec SessionizationSecondarySortJob(const std::string& input,
                                       const std::string& output,
                                       int num_reducers,
                                       std::uint64_t session_gap) {
  JobSpec spec;
  spec.name = "sessionization_ss";
  spec.input_file = input;
  spec.output_file = output;
  spec.num_reducers = num_reducers;
  spec.grouping_prefix = 7;  // "uNNNNNN": the user id field

  spec.map = [](Slice record, OutputCollector& out) {
    const ClickRecord click = ParseClick(record, ClickFormat::kText);
    // Composite key: user then big-endian timestamp, so byte order == time
    // order within the user's group.
    std::string key;
    key.reserve(15);
    key += TextUserField(record).view();
    for (int shift = 56; shift >= 0; shift -= 8) {
      key.push_back(static_cast<char>((click.timestamp >> shift) & 0xff));
    }
    std::string value;
    EncodeClickValue(value, click.timestamp, TextUrlField(record));
    out.Emit(key, value);
  };

  spec.reduce = [session_gap](Slice first_key, ValueIterator& values,
                              OutputCollector& out) {
    // Values arrive time-ordered: stream them with O(1) state — no
    // buffering, no per-user sort.
    const Slice user(first_key.data(), 7);
    std::uint32_t session = 0;
    std::uint64_t last_ts = 0;
    bool first = true;
    std::string entry;
    Slice v;
    while (values.Next(&v)) {
      if (v.size() < 8) throw std::runtime_error("sessionization_ss: value");
      const std::uint64_t ts = DecodeU64(v.data());
      if (!first && ts - last_ts > session_gap) ++session;
      first = false;
      last_ts = ts;
      entry.clear();
      char buf[32];
      const int n = std::snprintf(buf, sizeof(buf), "s%u\t%llu\t", session,
                                  static_cast<unsigned long long>(ts));
      entry.append(buf, static_cast<std::size_t>(n));
      entry.append(v.data() + 8, v.size() - 8);
      out.Emit(user, entry);
    }
  };
  return spec;
}

JobSpec PageFrequencyJob(const std::string& input, const std::string& output,
                         int num_reducers, ClickFormat format) {
  JobSpec spec;
  spec.name = "page_frequency";
  spec.input_file = input;
  spec.output_file = output;
  spec.num_reducers = num_reducers;
  spec.aggregator = std::make_shared<SumAggregator>();

  spec.map = [format](Slice record, OutputCollector& out) {
    // SELECT COUNT(*) FROM visits GROUP BY url  (paper §II).
    static thread_local std::string one = EncodeValueU64(1);
    if (format == ClickFormat::kText) {
      out.Emit(TextUrlField(record), one);
    } else {
      out.Emit(Slice(record.data() + 12, 4), one);  // raw url id field
    }
  };
  return spec;
}

JobSpec PerUserCountJob(const std::string& input, const std::string& output,
                        int num_reducers, ClickFormat format) {
  JobSpec spec;
  spec.name = "per_user_count";
  spec.input_file = input;
  spec.output_file = output;
  spec.num_reducers = num_reducers;
  spec.aggregator = std::make_shared<SumAggregator>();

  spec.map = [format](Slice record, OutputCollector& out) {
    // Emits ("user id", 1) pairs — the workload whose map phase spends up
    // to 48 % of CPU cycles sorting in stock Hadoop (Table II).
    static thread_local std::string one = EncodeValueU64(1);
    if (format == ClickFormat::kText) {
      out.Emit(TextUserField(record), one);
    } else {
      out.Emit(Slice(record.data() + 8, 4), one);  // raw user id field
    }
  };
  return spec;
}

JobSpec InvertedIndexJob(const std::string& input, const std::string& output,
                         int num_reducers) {
  JobSpec spec;
  spec.name = "inverted_index";
  spec.input_file = input;
  spec.output_file = output;
  spec.num_reducers = num_reducers;

  spec.map = [](Slice record, OutputCollector& out) {
    // "<doc_id>\t<w1> <w2> ..." → (word, "doc:position") per token.
    std::size_t tab = 0;
    while (tab < record.size() && record[tab] != '\t') ++tab;
    const Slice doc(record.data(), tab);

    std::string value;
    std::uint32_t position = 0;
    std::size_t i = tab + 1;
    while (i < record.size()) {
      std::size_t j = i;
      while (j < record.size() && record[j] != ' ') ++j;
      if (j > i) {
        value.assign(doc.data(), doc.size());
        value += ':';
        char buf[16];
        const int n = std::snprintf(buf, sizeof(buf), "%u", position);
        value.append(buf, static_cast<std::size_t>(n));
        out.Emit(Slice(record.data() + i, j - i), value);
        ++position;
      }
      i = j + 1;
    }
  };

  spec.reduce = [](Slice word, ValueIterator& values, OutputCollector& out) {
    // Concatenate the posting list for this word.
    std::string postings;
    Slice v;
    while (values.Next(&v)) {
      if (!postings.empty()) postings += ' ';
      postings.append(v.data(), v.size());
    }
    out.Emit(word, postings);
  };
  return spec;
}

JobSpec DistinctVisitorsJob(const std::string& input,
                            const std::string& output, int num_reducers,
                            unsigned hll_precision) {
  JobSpec spec;
  spec.name = "distinct_visitors";
  spec.input_file = input;
  spec.output_file = output;
  spec.num_reducers = num_reducers;
  spec.aggregator = std::make_shared<HllAggregator>(hll_precision);

  spec.map = [](Slice record, OutputCollector& out) {
    // (url, user): the aggregator sketches the distinct users per url.
    out.Emit(TextUrlField(record), TextUserField(record));
  };
  return spec;
}

JobSpec WordCountJob(const std::string& input, const std::string& output,
                     int num_reducers) {
  JobSpec spec;
  spec.name = "word_count";
  spec.input_file = input;
  spec.output_file = output;
  spec.num_reducers = num_reducers;
  spec.aggregator = std::make_shared<SumAggregator>();

  spec.map = [](Slice record, OutputCollector& out) {
    static thread_local std::string one = EncodeValueU64(1);
    std::size_t tab = 0;
    while (tab < record.size() && record[tab] != '\t') ++tab;
    std::size_t i = tab + 1;
    while (i < record.size()) {
      std::size_t j = i;
      while (j < record.size() && record[j] != ' ') ++j;
      if (j > i) out.Emit(Slice(record.data() + i, j - i), one);
      i = j + 1;
    }
  };
  return spec;
}

}  // namespace opmr
