// Global sort (the TeraSort pattern): sample the input to pick range
// boundaries, range-partition keys so reducer r holds keys in
// [boundary[r-1], boundary[r]), and let the sort-merge runtime order each
// partition — concatenating part 0..R-1 yields one globally sorted file.
//
// The sort-merge machinery this rides on is exactly the Hadoop group-by
// implementation the paper benchmarks; global sort is its canonical
// non-aggregation application.
#pragma once

#include <string>
#include <vector>

#include "core/opmr.h"
#include "engine/job.h"

namespace opmr {

// Samples up to `max_samples` record keys from `input` and returns
// num_reducers-1 ascending boundary keys (evenly spaced quantiles).
// `key_of` extracts the sort key from a record (whole record by default).
std::vector<std::string> SampleRangeBoundaries(
    Platform& platform, const std::string& input, int num_reducers,
    std::size_t max_samples = 4096);

// A partitioner mapping each key to the range it falls in.
std::function<std::uint32_t(Slice, int)> RangePartitioner(
    std::vector<std::string> boundaries);

// The global-sort job: identity map keyed by the whole record, range
// partitioner, identity reduce.  Run on the sort-merge runtime; then
// ReadOutput parts in order are globally sorted.
JobSpec GlobalSortJob(Platform& platform, const std::string& input,
                      const std::string& output, int num_reducers);

}  // namespace opmr
