// Streaming (algebraic) forms of the paper's click-stream workloads, for
// jobs that publish live snapshots to the serve plane.  Each query maps a
// click record to (key, value) pairs and folds them with an aggregator:
//
//   * sessionization  — (user, timestamp) folded by SessionCountAggregator:
//                       the live session COUNT per user (the holistic
//                       per-click output needs end-of-stream; the count is
//                       the early-answer surface).
//   * per_user_count  — (user, 1) summed.
//   * page_frequency  — (url, 1) summed.
#pragma once

#include <cstdint>
#include <string>

#include "stream/streaming_job.h"
#include "workloads/tasks.h"

namespace opmr {

// Builds the streaming query for `workload` (one of the names above) over
// text click records.  Throws std::invalid_argument for unknown names.
StreamingQuery StreamingQueryByName(
    const std::string& workload,
    std::uint64_t session_gap = kDefaultSessionGap);

// True when `workload` names one of the streaming queries above.
[[nodiscard]] bool IsStreamingWorkload(const std::string& workload);

}  // namespace opmr
