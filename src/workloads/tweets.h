// Synthetic tweet-stream generator and hashtag analytics — the "Twitter
// feed analysis" extension the paper lists as ongoing benchmark work
// (§III-A footnote).
//
// Tweet record: "<timestamp>\t<user>\t<text with #hashtags>".
// Hashtag popularity is Zipfian with a drifting head: the hottest tags
// change over the stream, which is what makes *online* trending detection
// (incremental counting + hot-key pinning + top-k) interesting.
#pragma once

#include <cstdint>
#include <string>

#include "dfs/dfs.h"
#include "engine/job.h"

namespace opmr {

struct TweetStreamOptions {
  std::uint64_t num_tweets = 100'000;
  std::uint64_t num_users = 20'000;
  std::uint64_t num_hashtags = 5'000;
  double hashtag_theta = 1.1;
  // Mean hashtags per tweet (0..4 actual, most tweets carry 1-2).
  double mean_hashtags = 1.5;
  // Every `drift_period` tweets the popularity ranking rotates, so the
  // trending set changes over time.
  std::uint64_t drift_period = 25'000;
  std::uint64_t seed = 404;
};

std::string HashtagKey(std::uint32_t tag);

std::uint64_t GenerateTweetStream(Dfs& dfs, const std::string& name,
                                  const TweetStreamOptions& options);

// (hashtag, 1) counting job over a tweet stream; SUM aggregator, so it runs
// fully incrementally on the one-pass runtime.
JobSpec HashtagCountJob(const std::string& input, const std::string& output,
                        int num_reducers);

}  // namespace opmr
