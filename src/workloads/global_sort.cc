#include "workloads/global_sort.h"

#include <algorithm>

#include "common/rng.h"

namespace opmr {

std::vector<std::string> SampleRangeBoundaries(Platform& platform,
                                               const std::string& input,
                                               int num_reducers,
                                               std::size_t max_samples) {
  // Reservoir-sample record keys across all blocks (a full scan of block
  // data would defeat the point at scale; per-block early-out keeps the
  // sample cheap while covering the whole key range because blocks are
  // written in input order).
  std::vector<std::string> sample;
  sample.reserve(max_samples);
  Rng rng(0x5a17);
  std::size_t seen = 0;
  for (const auto& block : platform.dfs().ListBlocks(input)) {
    auto reader = platform.dfs().OpenBlock(block);
    Slice record;
    std::size_t from_this_block = 0;
    while (reader->Next(&record) && from_this_block < max_samples / 4) {
      ++seen;
      ++from_this_block;
      if (sample.size() < max_samples) {
        sample.emplace_back(record.view());
      } else {
        const std::size_t j = rng.Uniform(seen);
        if (j < max_samples) sample[j] = record.ToString();
      }
    }
  }
  std::sort(sample.begin(), sample.end());

  std::vector<std::string> boundaries;
  boundaries.reserve(num_reducers - 1);
  for (int r = 1; r < num_reducers; ++r) {
    if (sample.empty()) break;
    boundaries.push_back(sample[sample.size() * r / num_reducers]);
  }
  return boundaries;
}

std::function<std::uint32_t(Slice, int)> RangePartitioner(
    std::vector<std::string> boundaries) {
  return [boundaries = std::move(boundaries)](Slice key, int num_reducers) {
    // First boundary > key determines the range; keys beyond the last
    // boundary land in the final reducer.
    const auto it = std::upper_bound(
        boundaries.begin(), boundaries.end(), key,
        [](Slice k, const std::string& b) { return k.compare(b) < 0; });
    const auto range = static_cast<std::uint32_t>(it - boundaries.begin());
    return std::min(range, static_cast<std::uint32_t>(num_reducers - 1));
  };
}

JobSpec GlobalSortJob(Platform& platform, const std::string& input,
                      const std::string& output, int num_reducers) {
  JobSpec spec;
  spec.name = "global_sort";
  spec.input_file = input;
  spec.output_file = output;
  spec.num_reducers = num_reducers;
  spec.partitioner =
      RangePartitioner(SampleRangeBoundaries(platform, input, num_reducers));

  spec.map = [](Slice record, OutputCollector& out) {
    out.Emit(record, Slice());  // key = whole record, empty value
  };
  spec.reduce = [](Slice key, ValueIterator& values, OutputCollector& out) {
    // Identity: one output row per input record (duplicates preserved).
    Slice v;
    while (values.Next(&v)) out.Emit(key, v);
  };
  return spec;
}

}  // namespace opmr
