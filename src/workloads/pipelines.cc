#include "workloads/pipelines.h"

#include <cstdio>
#include <stdexcept>

#include "common/rng.h"

namespace opmr {

void DecodeOutputFrame(Slice record, Slice* key, Slice* value) {
  if (record.size() < 8) {
    throw std::runtime_error("DecodeOutputFrame: record too small");
  }
  const std::uint32_t klen = DecodeU32(record.data());
  const std::uint32_t vlen = DecodeU32(record.data() + 4);
  if (8ull + klen + vlen != record.size()) {
    throw std::runtime_error("DecodeOutputFrame: bad frame lengths");
  }
  *key = Slice(record.data() + 8, klen);
  *value = Slice(record.data() + 8 + klen, vlen);
}

std::vector<std::string> OutputParts(const std::string& output_prefix,
                                     int num_reducers) {
  std::vector<std::string> parts;
  parts.reserve(num_reducers);
  for (int r = 0; r < num_reducers; ++r) {
    parts.push_back(output_prefix + ".part" + std::to_string(r));
  }
  return parts;
}

JobSpec TopKFromCountsJob(const std::string& counts_prefix, int counts_parts,
                          const std::string& output, std::size_t k) {
  JobSpec spec;
  spec.name = "top_k";
  auto parts = OutputParts(counts_prefix, counts_parts);
  spec.input_file = parts.front();
  spec.extra_inputs.assign(parts.begin() + 1, parts.end());
  spec.output_file = output;
  spec.num_reducers = 1;  // global selection needs a single group
  spec.aggregator = std::make_shared<TopKAggregator>(k);

  spec.map = [](Slice record, OutputCollector& out) {
    Slice key, value;
    DecodeOutputFrame(record, &key, &value);
    // Candidate: score = count, payload = the counted key.  The combiner
    // prunes to k candidates per map task before anything is shuffled.
    out.Emit("topk", EncodeScored(DecodeValueU64(value), key));
  };
  return spec;
}

std::vector<ScoredEntry> RunTopKPipeline(Platform& platform,
                                         const JobSpec& counting_job,
                                         const JobOptions& options,
                                         std::size_t k) {
  platform.Run(counting_job, options);
  const auto topk_spec =
      TopKFromCountsJob(counting_job.output_file, counting_job.num_reducers,
                        counting_job.output_file + "_top", k);
  platform.Run(topk_spec, options);

  const auto rows =
      platform.ReadOutput(counting_job.output_file + "_top", 1);
  if (rows.empty()) return {};
  if (rows.size() != 1) {
    throw std::runtime_error("top-k pipeline: expected a single result row");
  }
  return DecodeTopKState(rows.front().second);
}

// --- Repartition join ---------------------------------------------------------

std::string CountryKey(std::uint32_t country) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "country%02u", country);
  return buf;
}

std::uint64_t GenerateUserProfiles(Dfs& dfs, const std::string& name,
                                   const UserProfileOptions& options) {
  Rng rng(options.seed);
  auto writer = dfs.Create(name);
  std::string record;
  for (std::uint64_t u = 0; u < options.num_users; ++u) {
    record = "P\t";
    record += UserKey(static_cast<std::uint32_t>(u));
    record += '\t';
    record += CountryKey(static_cast<std::uint32_t>(
        rng.Uniform(options.num_countries)));
    writer->Append(record);
  }
  return writer->Close();
}

JobSpec JoinClicksWithProfilesJob(const std::string& clicks,
                                  const std::string& profiles,
                                  const std::string& output,
                                  int num_reducers) {
  JobSpec spec;
  spec.name = "click_profile_join";
  spec.input_file = clicks;
  spec.extra_inputs = {profiles};
  spec.output_file = output;
  spec.num_reducers = num_reducers;

  spec.map = [](Slice record, OutputCollector& out) {
    // Tagged-union map: both datasets flow through the same function and
    // are told apart by their record shape (the standard repartition-join
    // trick).  Profiles re-key to the user with a 'P'-tagged value; clicks
    // emit a bare 'C' marker.
    if (record.size() >= 2 && record[0] == 'P' && record[1] == '\t') {
      std::size_t tab2 = 2;
      while (tab2 < record.size() && record[tab2] != '\t') ++tab2;
      const Slice user(record.data() + 2, tab2 - 2);
      std::string value = "P";
      value.append(record.data() + tab2 + 1, record.size() - tab2 - 1);
      out.Emit(user, value);
    } else {
      const ClickRecord click = ParseClick(record, ClickFormat::kText);
      out.Emit(UserKey(click.user), "C");
    }
  };

  spec.reduce = [](Slice user, ValueIterator& values, OutputCollector& out) {
    std::string country = "unknown";
    std::uint64_t clicks = 0;
    Slice v;
    while (values.Next(&v)) {
      if (!v.empty() && v[0] == 'P') {
        country.assign(v.data() + 1, v.size() - 1);
      } else {
        ++clicks;
      }
    }
    if (clicks == 0) return;  // profile without clicks: drop (inner join)
    char buf[24];
    const int n = std::snprintf(buf, sizeof(buf), "\t%llu",
                                static_cast<unsigned long long>(clicks));
    std::string value = country;
    value.append(buf, static_cast<std::size_t>(n));
    out.Emit(user, value);
  };
  return spec;
}

JobSpec CountryClickCountJob(const std::string& join_prefix, int join_parts,
                             const std::string& output, int num_reducers) {
  JobSpec spec;
  spec.name = "country_click_count";
  auto parts = OutputParts(join_prefix, join_parts);
  spec.input_file = parts.front();
  spec.extra_inputs.assign(parts.begin() + 1, parts.end());
  spec.output_file = output;
  spec.num_reducers = num_reducers;
  spec.aggregator = std::make_shared<SumAggregator>();

  spec.map = [](Slice record, OutputCollector& out) {
    Slice user, value;
    DecodeOutputFrame(record, &user, &value);
    // value = "<country>\t<clicks>"
    std::size_t tab = 0;
    while (tab < value.size() && value[tab] != '\t') ++tab;
    const std::uint64_t clicks =
        std::stoull(std::string(value.data() + tab + 1,
                                value.size() - tab - 1));
    out.Emit(Slice(value.data(), tab), EncodeValueU64(clicks));
  };
  return spec;
}

}  // namespace opmr
