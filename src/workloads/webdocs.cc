#include "workloads/webdocs.h"

#include <cstdio>

#include "common/rng.h"

namespace opmr {

std::string WordKey(std::uint32_t word_rank) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "w%06u", word_rank);
  return buf;
}

std::uint64_t GenerateWebDocs(Dfs& dfs, const std::string& name,
                              const WebDocsOptions& options) {
  ZipfSampler words(options.vocabulary, options.word_theta, options.seed);
  Rng rng(options.seed ^ 0x77);

  auto writer = dfs.Create(name);
  std::string line;
  for (std::uint64_t d = 0; d < options.num_docs; ++d) {
    line.clear();
    char buf[32];
    int n = std::snprintf(buf, sizeof(buf), "d%08llu",
                          static_cast<unsigned long long>(d));
    line.append(buf, static_cast<std::size_t>(n));
    line += '\t';
    // Uniform in [mean/2, 3*mean/2]: keeps block record counts varied.
    const std::uint64_t len =
        options.mean_doc_words / 2 + rng.Uniform(options.mean_doc_words + 1);
    for (std::uint64_t w = 0; w < len; ++w) {
      if (w > 0) line += ' ';
      n = std::snprintf(buf, sizeof(buf), "w%06u",
                        static_cast<std::uint32_t>(words.Sample()));
      line.append(buf, static_cast<std::size_t>(n));
    }
    writer->Append(line);
  }
  return writer->Close();
}

}  // namespace opmr
