// Multi-job pipelines — the classic MapReduce patterns the paper's §IV
// raises as open questions for incremental processing, built on the OPMR
// public API:
//
//   * global top-k : counting job → single-reducer TopKAggregator job.
//     Demonstrates that top-k admits a combine function with O(k) state,
//     answering the paper's "how to support the combine function for
//     complex analytical tasks such as top-k" question.
//   * repartition join : click stream ⋈ user profiles on user id, followed
//     by a per-country rollup — a two-dataset job via JobSpec::extra_inputs
//     plus a chained aggregation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/opmr.h"
#include "engine/aggregators.h"
#include "workloads/clickstream.h"

namespace opmr {

// Decodes one output frame ([klen][vlen][key][value]) of a previous job —
// the record format chained jobs consume.
void DecodeOutputFrame(Slice record, Slice* key, Slice* value);

// All reducer part files of a finished job, for chaining into extra_inputs.
std::vector<std::string> OutputParts(const std::string& output_prefix,
                                     int num_reducers);

// Job 2 of the top-k pipeline: reads the framed (key, count) output of a
// counting job and selects the k keys with the largest counts via a single
// reducer running TopKAggregator (combiners prune candidates map-side).
JobSpec TopKFromCountsJob(const std::string& counts_prefix, int counts_parts,
                          const std::string& output, std::size_t k);

// Runs `counting_job` under `options`, then the top-k selection, and
// returns the winners (score = count, payload = key), largest first.
std::vector<ScoredEntry> RunTopKPipeline(Platform& platform,
                                         const JobSpec& counting_job,
                                         const JobOptions& options,
                                         std::size_t k);

// --- Repartition join ---------------------------------------------------------

// Profile record format: "P\t<user key>\t<country>".
std::string CountryKey(std::uint32_t country);

struct UserProfileOptions {
  std::uint64_t num_users = 10'000;
  std::uint32_t num_countries = 30;
  std::uint64_t seed = 55;
};

// One profile record per user, country assigned pseudo-randomly.
std::uint64_t GenerateUserProfiles(Dfs& dfs, const std::string& name,
                                   const UserProfileOptions& options);

// Joins clicks with profiles on user id.  Output: (user, "country\tclicks").
// Users without a profile get country "unknown"; profiles without clicks
// are dropped (inner-join semantics on the click side).
JobSpec JoinClicksWithProfilesJob(const std::string& clicks,
                                  const std::string& profiles,
                                  const std::string& output,
                                  int num_reducers);

// Rolls the join output up to per-country click totals.
JobSpec CountryClickCountJob(const std::string& join_prefix, int join_parts,
                             const std::string& output, int num_reducers);

}  // namespace opmr
