#include "workloads/clickstream.h"

#include <cstdio>
#include <stdexcept>

namespace opmr {

std::string UserKey(std::uint32_t user) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "u%06u", user);
  return buf;
}

std::string UrlKey(std::uint32_t url) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "/page/%05u.html", url);
  return buf;
}

ClickRecord ParseClick(Slice record, ClickFormat format) {
  ClickRecord out;
  if (format == ClickFormat::kBinary) {
    if (record.size() != kBinaryClickBytes) {
      throw std::runtime_error("ParseClick: bad binary record size");
    }
    out.timestamp = DecodeU64(record.data());
    out.user = DecodeU32(record.data() + 8);
    out.url = DecodeU32(record.data() + 12);
    return out;
  }
  // Text: "<timestamp>\tu<user>\t/page/<url>.html"
  const char* p = record.data();
  const char* end = p + record.size();
  std::uint64_t ts = 0;
  while (p < end && *p != '\t') {
    if (*p < '0' || *p > '9') {
      throw std::runtime_error("ParseClick: bad timestamp");
    }
    ts = ts * 10 + static_cast<std::uint64_t>(*p - '0');
    ++p;
  }
  if (p >= end || *p != '\t') throw std::runtime_error("ParseClick: no user");
  ++p;  // tab
  if (p >= end || *p != 'u') throw std::runtime_error("ParseClick: no 'u'");
  ++p;
  std::uint32_t user = 0;
  while (p < end && *p != '\t') {
    if (*p < '0' || *p > '9') throw std::runtime_error("ParseClick: bad user");
    user = user * 10 + static_cast<std::uint32_t>(*p - '0');
    ++p;
  }
  if (p >= end || *p != '\t') throw std::runtime_error("ParseClick: no url");
  ++p;  // tab
  // "/page/NNNNN.html": the digits start at offset 6.
  std::uint32_t url = 0;
  const char* q = p + 6;
  while (q < end && *q >= '0' && *q <= '9') {
    url = url * 10 + static_cast<std::uint32_t>(*q - '0');
    ++q;
  }
  out.timestamp = ts;
  out.user = user;
  out.url = url;
  return out;
}

std::uint64_t GenerateClickStream(Dfs& dfs, const std::string& name,
                                  const ClickStreamOptions& options) {
  ZipfSampler users(options.num_users, options.user_theta, options.seed);
  ZipfSampler urls(options.num_urls, options.url_theta, options.seed ^ 0xabcd);
  Rng rng(options.seed ^ 0x5151);

  auto writer = dfs.Create(name);
  std::string line;
  std::string binary(kBinaryClickBytes, '\0');
  std::uint64_t timestamp = 894'000'000;  // a 1998 epoch, WorldCup flavour

  for (std::uint64_t i = 0; i < options.num_records; ++i) {
    // Clicks arrive in globally non-decreasing time with small jitter;
    // users interleave, which is exactly why sessionization must reorder
    // the log by user (the paper's motivating task).
    timestamp += rng.Uniform(3);
    std::uint32_t user;
    if (options.tail_fraction > 0 &&
        rng.NextDouble() < options.tail_fraction) {
      user = static_cast<std::uint32_t>(options.num_users +
                                        rng.Uniform(options.tail_universe));
    } else {
      user = static_cast<std::uint32_t>(users.Sample());
    }
    const auto url = static_cast<std::uint32_t>(urls.Sample());

    if (options.format == ClickFormat::kText) {
      line.clear();
      char buf[64];
      const int n = std::snprintf(buf, sizeof(buf), "%llu\tu%06u\t/page/%05u.html",
                                  static_cast<unsigned long long>(timestamp),
                                  user, url);
      line.assign(buf, static_cast<std::size_t>(n));
      writer->Append(line);
    } else {
      EncodeU64(binary.data(), timestamp);
      EncodeU32(binary.data() + 8, user);
      EncodeU32(binary.data() + 12, url);
      writer->Append(binary);
    }
  }
  return writer->Close();
}

}  // namespace opmr
