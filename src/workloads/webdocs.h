// Synthetic web-document generator — the GOV2 crawl stand-in.
//
// Documents are "<doc_id>\t<w1> <w2> ..." lines with a Zipf-distributed
// vocabulary; document length varies uniformly around the configured mean.
// Inverted-index construction over this corpus reproduces the paper's
// intermediate/input ratio (~70 %) because postings carry (doc, position)
// for every token while the index groups them compactly per word.
#pragma once

#include <cstdint>
#include <string>

#include "dfs/dfs.h"

namespace opmr {

struct WebDocsOptions {
  std::uint64_t num_docs = 2'000;
  std::uint64_t vocabulary = 20'000;
  std::uint64_t mean_doc_words = 120;
  double word_theta = 1.0;  // Zipf skew of word frequency
  std::uint64_t seed = 99;
};

std::string WordKey(std::uint32_t word_rank);

// Generates the corpus into DFS file `name`; returns total bytes.
std::uint64_t GenerateWebDocs(Dfs& dfs, const std::string& name,
                              const WebDocsOptions& options);

}  // namespace opmr
