#include "workloads/tweets.h"

#include <cstdio>

#include "common/rng.h"
#include "engine/aggregators.h"

namespace opmr {

std::string HashtagKey(std::uint32_t tag) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "#tag%05u", tag);
  return buf;
}

std::uint64_t GenerateTweetStream(Dfs& dfs, const std::string& name,
                                  const TweetStreamOptions& options) {
  ZipfSampler tags(options.num_hashtags, options.hashtag_theta, options.seed);
  Rng rng(options.seed ^ 0x1e57);

  static constexpr const char* kFiller[] = {
      "just",   "saw",  "the",   "match",  "today", "cannot", "believe",
      "what",   "a",    "great", "moment", "wow",   "this",   "is",
      "really", "nice", "check", "it",     "out",
  };
  constexpr std::size_t kFillerWords = sizeof(kFiller) / sizeof(kFiller[0]);

  auto writer = dfs.Create(name);
  std::string line;
  std::uint64_t timestamp = 1'300'000'000;  // 2011, Twitter's era
  for (std::uint64_t i = 0; i < options.num_tweets; ++i) {
    timestamp += rng.Uniform(2);
    line.clear();
    char buf[48];
    int n = std::snprintf(buf, sizeof(buf), "%llu\tu%06llu\t",
                          static_cast<unsigned long long>(timestamp),
                          static_cast<unsigned long long>(
                              rng.Uniform(options.num_users)));
    line.append(buf, static_cast<std::size_t>(n));

    // A few filler words...
    const std::uint64_t words = 2 + rng.Uniform(6);
    for (std::uint64_t w = 0; w < words; ++w) {
      line += kFiller[rng.Uniform(kFillerWords)];
      line += ' ';
    }
    // ...then 0-4 hashtags whose ranking drifts over the stream.
    const auto phase = static_cast<std::uint32_t>(i / options.drift_period);
    std::uint64_t num_tags = 0;
    const double dice = rng.NextDouble();
    // Mean ~1.5 tags: P(0)=.15, P(1)=.4, P(2)=.3, P(3)=.1, P(4)=.05
    if (dice < 0.15) num_tags = 0;
    else if (dice < 0.55) num_tags = 1;
    else if (dice < 0.85) num_tags = 2;
    else if (dice < 0.95) num_tags = 3;
    else num_tags = 4;
    for (std::uint64_t t = 0; t < num_tags; ++t) {
      const auto rank = static_cast<std::uint32_t>(tags.Sample());
      // Drift: rotate the identity of each popularity rank per phase.
      const auto tag = static_cast<std::uint32_t>(
          (rank + phase * 37) % options.num_hashtags);
      line += HashtagKey(tag);
      if (t + 1 < num_tags) line += ' ';
    }
    writer->Append(line);
  }
  return writer->Close();
}

JobSpec HashtagCountJob(const std::string& input, const std::string& output,
                        int num_reducers) {
  JobSpec spec;
  spec.name = "hashtag_count";
  spec.input_file = input;
  spec.output_file = output;
  spec.num_reducers = num_reducers;
  spec.aggregator = std::make_shared<SumAggregator>();

  spec.map = [](Slice record, OutputCollector& out) {
    static thread_local std::string one = EncodeValueU64(1);
    // Scan the tweet text (third tab field) for '#'-tokens.
    std::size_t i = 0;
    int tabs = 0;
    while (i < record.size() && tabs < 2) {
      if (record[i] == '\t') ++tabs;
      ++i;
    }
    while (i < record.size()) {
      if (record[i] == '#') {
        std::size_t j = i + 1;
        while (j < record.size() && record[j] != ' ' && record[j] != '\t') {
          ++j;
        }
        if (j > i + 1) out.Emit(Slice(record.data() + i, j - i), one);
        i = j;
      } else {
        ++i;
      }
    }
  };
  return spec;
}

}  // namespace opmr
