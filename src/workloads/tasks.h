// The paper's benchmark tasks as JobSpec builders (Table I):
//
//   * Sessionization        — click stream; holistic reduce; the largest
//                             intermediate data (≈ input size and beyond).
//   * Page-frequency count  — click stream; SUM aggregator; combiner shrinks
//                             intermediate data to ≪ 1 % of input.
//   * Per-user click count  — click stream; SUM aggregator.
//   * Inverted index        — web documents; holistic reduce; substantial
//                             intermediate data (no combiner applies).
//   * Word count            — web documents; SUM aggregator (the canonical
//                             problem page-frequency is a variant of).
#pragma once

#include <string>

#include "engine/job.h"
#include "workloads/clickstream.h"

namespace opmr {

// Gap that closes a session, in click-timestamp units (the paper's task
// definition leaves this to the application; 30 min is the web convention).
inline constexpr std::uint64_t kDefaultSessionGap = 1800;

JobSpec SessionizationJob(const std::string& input, const std::string& output,
                          int num_reducers,
                          ClickFormat format = ClickFormat::kText,
                          std::uint64_t session_gap = kDefaultSessionGap);

// Sessionization via secondary sort: the map key is <user><big-endian ts>,
// grouping_prefix keeps whole users together, and the framework's sort
// delivers each user's clicks already time-ordered — the reduce function
// streams with O(1) memory instead of buffering and re-sorting every
// user's click list (the classic Hadoop composite-key idiom).
JobSpec SessionizationSecondarySortJob(
    const std::string& input, const std::string& output, int num_reducers,
    std::uint64_t session_gap = kDefaultSessionGap);

JobSpec PageFrequencyJob(const std::string& input, const std::string& output,
                         int num_reducers,
                         ClickFormat format = ClickFormat::kText);

JobSpec PerUserCountJob(const std::string& input, const std::string& output,
                        int num_reducers,
                        ClickFormat format = ClickFormat::kText);

JobSpec InvertedIndexJob(const std::string& input, const std::string& output,
                         int num_reducers);

JobSpec WordCountJob(const std::string& input, const std::string& output,
                     int num_reducers);

// COUNT(DISTINCT user) GROUP BY url — approximate distinct visitors per
// page via the HyperLogLog aggregator (one-pass, fixed per-key state).
JobSpec DistinctVisitorsJob(const std::string& input,
                            const std::string& output, int num_reducers,
                            unsigned hll_precision = 11);

}  // namespace opmr
