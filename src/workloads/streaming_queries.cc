#include "workloads/streaming_queries.h"

#include <stdexcept>

#include "engine/aggregators.h"
#include "workloads/clickstream.h"

namespace opmr {

namespace {

// Second tab field of a text click record ("<ts>\tu000042\t/page/...").
Slice UserField(Slice record) {
  std::size_t first = 0;
  while (first < record.size() && record[first] != '\t') ++first;
  std::size_t second = first + 1;
  while (second < record.size() && record[second] != '\t') ++second;
  return {record.data() + first + 1, second - first - 1};
}

Slice UrlField(Slice record) {
  std::size_t tabs = 0;
  std::size_t i = 0;
  for (; i < record.size(); ++i) {
    if (record[i] == '\t' && ++tabs == 2) break;
  }
  return {record.data() + i + 1, record.size() - i - 1};
}

}  // namespace

StreamingQuery StreamingQueryByName(const std::string& workload,
                                    std::uint64_t session_gap) {
  StreamingQuery query;
  query.name = workload;
  if (workload == "sessionization") {
    query.aggregator = std::make_shared<SessionCountAggregator>(session_gap);
    query.map = [](Slice record, OutputCollector& out) {
      const ClickRecord click = ParseClick(record, ClickFormat::kText);
      out.Emit(UserField(record), EncodeValueU64(click.timestamp));
    };
  } else if (workload == "per_user_count") {
    query.aggregator = std::make_shared<SumAggregator>();
    query.map = [](Slice record, OutputCollector& out) {
      static thread_local std::string one = EncodeValueU64(1);
      out.Emit(UserField(record), one);
    };
  } else if (workload == "page_frequency") {
    query.aggregator = std::make_shared<SumAggregator>();
    query.map = [](Slice record, OutputCollector& out) {
      static thread_local std::string one = EncodeValueU64(1);
      out.Emit(UrlField(record), one);
    };
  } else {
    throw std::invalid_argument(
        "unknown streaming workload '" + workload +
        "' (expected sessionization, per_user_count or page_frequency)");
  }
  return query;
}

bool IsStreamingWorkload(const std::string& workload) {
  return workload == "sessionization" || workload == "per_user_count" ||
         workload == "page_frequency";
}

}  // namespace opmr
