// Synthetic click-stream generator — the WorldCup-98 stand-in.
//
// Produces click-log records (timestamp, user, url) with Zipf-distributed
// users and URLs and session-structured timestamps.  The two on-disk
// formats mirror the paper's §III-B.1 parsing experiment:
//   * kText   — tab-separated text lines; the map function must parse.
//   * kBinary — pre-parsed fixed-width fields (the SequenceFile analogue);
//               the map function reads fields at fixed offsets.
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "common/slice.h"
#include "dfs/dfs.h"

namespace opmr {

enum class ClickFormat { kText, kBinary };

struct ClickStreamOptions {
  std::uint64_t num_records = 100'000;
  std::uint64_t num_users = 10'000;
  std::uint64_t num_urls = 5'000;
  double user_theta = 0.9;  // Zipf skew of user activity
  double url_theta = 1.0;   // Zipf skew of page popularity

  // Long-tail mixture: with probability `tail_fraction` a click comes from
  // a one-off visitor drawn uniformly from `tail_universe` extra user ids
  // (appended after the Zipf head).  Real web traffic is exactly this
  // shape: a heavy head of repeat visitors plus a vast trickle of
  // singletons — the regime where the paper's hot-key technique shines.
  double tail_fraction = 0.0;
  std::uint64_t tail_universe = 0;

  std::uint64_t seed = 1234;
  ClickFormat format = ClickFormat::kText;
};

// Binary click record layout: [u64 timestamp][u32 user][u32 url].
inline constexpr std::size_t kBinaryClickBytes = 16;

struct ClickRecord {
  std::uint64_t timestamp = 0;
  std::uint32_t user = 0;
  std::uint32_t url = 0;
};

// Parses either format; used by the map functions and by tests.
ClickRecord ParseClick(Slice record, ClickFormat format);

// Formats a user id the way the generator does ("u000123"); key format for
// sessionization / per-user counting.
std::string UserKey(std::uint32_t user);
std::string UrlKey(std::uint32_t url);

// Generates `options.num_records` clicks into DFS file `name`.
// Returns total bytes written.
std::uint64_t GenerateClickStream(Dfs& dfs, const std::string& name,
                                  const ClickStreamOptions& options);

}  // namespace opmr
