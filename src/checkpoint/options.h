// Checkpoint policy knobs, separated from the manager so JobOptions and
// StreamingOptions can embed them without pulling in storage headers.
//
// Checkpointing buys back the fault tolerance that eager pipelining forfeits
// (paper Table III): a reduce worker periodically persists its incremental
// state plus a manifest of input watermarks, the shuffle retains consumed
// chunks until a checkpoint covers them, and a failed attempt restores the
// newest valid checkpoint and replays only the suffix.  Like Coded MapReduce
// (PAPERS.md), the mechanism deliberately spends extra local storage and I/O
// to avoid re-running the whole job.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace opmr {

struct CheckpointOptions {
  bool enabled = false;

  // Trigger thresholds; a checkpoint is due when ANY configured (non-zero)
  // threshold has been crossed since the previous one.
  std::uint64_t interval_records = 0;
  std::uint64_t interval_bytes = 0;
  double interval_seconds = 0.0;

  // Keep the last K committed checkpoints.  The shuffle acknowledgement
  // watermark trails the OLDEST retained checkpoint, so any of the K can be
  // restored (CRC fallback) without losing replayable input.
  int retain = 2;

  // OZ-compress the serialized image (trades CPU for checkpoint bytes, the
  // same trade-off as compress_spills).
  bool compress = false;

  // Directory for checkpoint files; empty uses a `checkpoints/` subtree of
  // the job workspace (cleaned up with it).
  std::string dir;

  // Map-side retention budget for consumed in-memory pushed chunks awaiting
  // acknowledgement; beyond it the shuffle spills retained payloads to disk.
  std::size_t retain_budget_bytes = 64u << 20;
};

}  // namespace opmr
