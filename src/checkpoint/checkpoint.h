// CheckpointManager: durable snapshots of a reduce worker's incremental
// state (per-key aggregator states + Space-Saving sketch) plus a manifest of
// input watermarks, written in the byte-slice run idiom through the
// instrumented storage writers.
//
// Commit protocol: serialize → (optional) OZ-compress → CRC32 → write to a
// `.tmp` sibling → fsync → rename into place.  A crash mid-write leaves at
// worst a dangling tmp file; a torn or bit-flipped image fails CRC on load
// and the manager falls back to the next-oldest retained checkpoint.
//
// File layout (little-endian):
//   [8]  magic "OPMRCKP1"
//   [u32] format version (1)
//   [u8]  flags (bit 0: payload is OZ-compressed)
//   [u64] checkpoint sequence number
//   [u32] CRC32 of the payload bytes as stored
//   [u64] payload byte count
//   payload (after decompression):
//     [u64] watermark (consumed shuffle ordinal / ingest record seq)
//     [u32] n_feeds     ([u32 feed_id][u64 records])*
//     [u32] n_spills    ([u32 path_len][path][u64 committed_bytes])*
//     [u32] n_sketch    ([u32 key_len][key][u64 count][u64 error])*
//     [u64] sketch stream length
//     [u64] n_entries   ([u32 key_len][u32 state_len][u8 early][key][state])*
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "checkpoint/options.h"
#include "common/crc32.h"
#include "metrics/counters.h"

namespace opmr {

// Filename prefix ("<sanitized job>_w") shared by every worker's images of
// one job; SweepFinishedJobs matches on it to garbage-collect a shared dir.
[[nodiscard]] std::string CheckpointJobPrefix(const std::string& job);

// Serve-plane snapshot images are checkpoints of the pseudo-job
// "<job>.serve" ('.' survives filename sanitization but never appears in a
// worker role suffix, so the namespaces cannot collide).  SweepFinishedJobs
// covers both, so job-completion GC also reclaims published snapshots.
inline constexpr const char* kServeJobSuffix = ".serve";

// One checkpoint's logical content, independent of on-disk framing.  The
// owner (batch reducer / streaming worker) fills it before Write and applies
// it after LoadLatest.
struct CheckpointImage {
  std::uint64_t seq = 0;        // assigned by Write / recovered by Load
  std::uint64_t watermark = 0;  // input covered: all ordinals/seqs <= this

  // Records consumed per feed (map task id / ingest queue id).
  std::vector<std::pair<std::uint32_t, std::uint64_t>> feeds;

  // Spill/cold run files that existed at checkpoint time and the byte count
  // committed to each; recovery truncates grown files back to the committed
  // length (appends after the checkpoint belong to the failed epoch).
  struct SpillFile {
    std::string path;
    std::uint64_t committed_bytes = 0;
  };
  std::vector<SpillFile> spill_files;

  // Space-Saving summary (hot-key modes; empty otherwise).
  struct SketchEntry {
    std::string key;
    std::uint64_t count = 0;
    std::uint64_t error = 0;
  };
  std::vector<SketchEntry> sketch;
  std::uint64_t sketch_stream_length = 0;

  // The state table.
  struct TableEntry {
    std::string key;
    std::string state;
    bool early_emitted = false;
  };
  std::vector<TableEntry> entries;
};

// The on-disk payload codec, exported for the serve plane: a publisher
// serializes one image for the wire exactly as CheckpointManager lays it
// out inside a file, and a replica parses the fetched bytes back.  Both
// are deterministic, so identical images yield identical byte strings.
[[nodiscard]] std::string SerializeCheckpointImage(const CheckpointImage& image);
// Throws std::runtime_error on truncated / trailing bytes.
[[nodiscard]] CheckpointImage ParseCheckpointImage(const std::string& body);

class CheckpointManager {
 public:
  // Files are named `<job>_w<worker>_<seq>.ckpt` under `dir` (created if
  // missing); `job` is sanitized for the filesystem.
  CheckpointManager(std::filesystem::path dir, const std::string& job,
                    int worker, CheckpointOptions options,
                    MetricRegistry* metrics);

  // Deletes every checkpoint (and tmp) file of this job/worker — called on
  // a fresh attempt 1 so stale images from a previous run are never loaded.
  void Reset();

  // Trigger accounting: the owner reports consumed input; Due() answers
  // whether any configured interval has been crossed since the last Write.
  void OnProgress(std::uint64_t records, std::uint64_t bytes);
  [[nodiscard]] bool Due() const;

  // Serializes and atomically commits `image` (seq is assigned), prunes
  // checkpoints beyond the retention window, and resets the trigger
  // accounting.  Returns bytes written.  Throws on I/O failure — callers
  // treat that as an attempt failure; the previous checkpoint still stands.
  std::uint64_t Write(CheckpointImage* image);

  // Loads the newest retained checkpoint that passes CRC + framing
  // validation, skipping (and counting) corrupt ones.  nullopt when none.
  std::optional<CheckpointImage> LoadLatest();

  // Watermark of the OLDEST checkpoint still on disk — the safe shuffle
  // acknowledgement point (any retained checkpoint can still be restored).
  // nullopt when no checkpoint has been written by this manager yet.
  [[nodiscard]] std::optional<std::uint64_t> OldestRetainedWatermark() const;

  [[nodiscard]] const CheckpointOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] const std::filesystem::path& dir() const noexcept {
    return dir_;
  }
  [[nodiscard]] std::uint64_t checkpoints_written() const noexcept {
    return written_;
  }

  // Platform-level GC for a shared checkpoint directory: removes every
  // image (and dangling tmp) of `finished_job`, across all of its workers,
  // without touching other jobs' files.  Called by the executor when a job
  // completes so a long-lived --checkpoint-dir does not accumulate images
  // from finished jobs.  Returns the number of files removed; a missing
  // directory is not an error (returns 0).
  static int SweepFinishedJobs(const std::filesystem::path& dir,
                               const std::string& finished_job);

 private:
  [[nodiscard]] std::filesystem::path PathFor(std::uint64_t seq) const;
  // Existing committed checkpoints of this job/worker, sorted by seq.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, std::filesystem::path>>
  ListOnDisk() const;

  std::filesystem::path dir_;
  std::string prefix_;  // "<sanitized job>_w<worker>_"
  CheckpointOptions options_;
  MetricRegistry* metrics_;

  std::uint64_t next_seq_ = 1;
  std::uint64_t written_ = 0;
  // Watermarks of the retained checkpoints, oldest first (parallel to the
  // on-disk retention window).
  std::vector<std::pair<std::uint64_t, std::uint64_t>> retained_;  // (seq, wm)

  // Trigger accounting since the last Write.
  std::uint64_t records_since_ = 0;
  std::uint64_t bytes_since_ = 0;
  double last_write_seconds_ = 0.0;  // monotonic clock snapshot
};

}  // namespace opmr
