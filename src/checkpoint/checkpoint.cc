#include "checkpoint/checkpoint.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <stdexcept>

#include "common/slice.h"
#include "storage/codec.h"
#include "storage/io.h"
#include "storage/io_stats.h"

namespace opmr {

namespace {

constexpr char kMagic[8] = {'O', 'P', 'M', 'R', 'C', 'K', 'P', '1'};
constexpr std::uint32_t kVersion = 1;
constexpr std::uint8_t kFlagCompressed = 0x01;

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string SanitizeForFilename(const std::string& name) {
  std::string out = name.empty() ? std::string("job") : name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '.';
    if (!ok) c = '-';
  }
  return out;
}

// Cursor-style parser over the decoded payload; every read is
// bounds-checked so a truncated or garbled (but CRC-colliding) payload
// surfaces as a recoverable parse error, never as UB.
class PayloadReader {
 public:
  explicit PayloadReader(const std::string& body) : body_(body) {}

  std::uint32_t U32() { return DecodeU32(Take(4)); }
  std::uint64_t U64() { return DecodeU64(Take(8)); }
  std::uint8_t U8() { return static_cast<std::uint8_t>(*Take(1)); }
  std::string Bytes(std::size_t n) { return std::string(Take(n), n); }
  [[nodiscard]] bool Exhausted() const { return pos_ == body_.size(); }

 private:
  const char* Take(std::size_t n) {
    if (pos_ + n > body_.size()) {
      throw std::runtime_error("checkpoint payload truncated");
    }
    const char* p = body_.data() + pos_;
    pos_ += n;
    return p;
  }

  const std::string& body_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string SerializeCheckpointImage(const CheckpointImage& image) {
  std::string body;
  AppendU64(body, image.watermark);
  AppendU32(body, static_cast<std::uint32_t>(image.feeds.size()));
  for (const auto& [feed, records] : image.feeds) {
    AppendU32(body, feed);
    AppendU64(body, records);
  }
  AppendU32(body, static_cast<std::uint32_t>(image.spill_files.size()));
  for (const auto& spill : image.spill_files) {
    AppendU32(body, static_cast<std::uint32_t>(spill.path.size()));
    body.append(spill.path);
    AppendU64(body, spill.committed_bytes);
  }
  AppendU32(body, static_cast<std::uint32_t>(image.sketch.size()));
  for (const auto& entry : image.sketch) {
    AppendU32(body, static_cast<std::uint32_t>(entry.key.size()));
    body.append(entry.key);
    AppendU64(body, entry.count);
    AppendU64(body, entry.error);
  }
  AppendU64(body, image.sketch_stream_length);
  AppendU64(body, static_cast<std::uint64_t>(image.entries.size()));
  for (const auto& entry : image.entries) {
    AppendU32(body, static_cast<std::uint32_t>(entry.key.size()));
    AppendU32(body, static_cast<std::uint32_t>(entry.state.size()));
    body.push_back(entry.early_emitted ? '\1' : '\0');
    body.append(entry.key);
    body.append(entry.state);
  }
  return body;
}

CheckpointImage ParseCheckpointImage(const std::string& body) {
  PayloadReader in(body);
  CheckpointImage image;
  image.watermark = in.U64();
  const std::uint32_t n_feeds = in.U32();
  image.feeds.reserve(n_feeds);
  for (std::uint32_t i = 0; i < n_feeds; ++i) {
    const std::uint32_t feed = in.U32();
    image.feeds.emplace_back(feed, in.U64());
  }
  const std::uint32_t n_spills = in.U32();
  image.spill_files.reserve(n_spills);
  for (std::uint32_t i = 0; i < n_spills; ++i) {
    CheckpointImage::SpillFile spill;
    spill.path = in.Bytes(in.U32());
    spill.committed_bytes = in.U64();
    image.spill_files.push_back(std::move(spill));
  }
  const std::uint32_t n_sketch = in.U32();
  image.sketch.reserve(n_sketch);
  for (std::uint32_t i = 0; i < n_sketch; ++i) {
    CheckpointImage::SketchEntry entry;
    entry.key = in.Bytes(in.U32());
    entry.count = in.U64();
    entry.error = in.U64();
    image.sketch.push_back(std::move(entry));
  }
  image.sketch_stream_length = in.U64();
  const std::uint64_t n_entries = in.U64();
  image.entries.reserve(n_entries);
  for (std::uint64_t i = 0; i < n_entries; ++i) {
    const std::uint32_t klen = in.U32();
    const std::uint32_t slen = in.U32();
    CheckpointImage::TableEntry entry;
    entry.early_emitted = in.U8() != 0;
    entry.key = in.Bytes(klen);
    entry.state = in.Bytes(slen);
    image.entries.push_back(std::move(entry));
  }
  if (!in.Exhausted()) {
    throw std::runtime_error("checkpoint payload has trailing bytes");
  }
  return image;
}

std::string CheckpointJobPrefix(const std::string& job) {
  return SanitizeForFilename(job) + "_w";
}

CheckpointManager::CheckpointManager(std::filesystem::path dir,
                                     const std::string& job, int worker,
                                     CheckpointOptions options,
                                     MetricRegistry* metrics)
    : dir_(std::move(dir)),
      prefix_(SanitizeForFilename(job) + "_w" + std::to_string(worker) + "_"),
      options_(options),
      metrics_(metrics),
      last_write_seconds_(MonotonicSeconds()) {
  if (options_.retain < 1) {
    throw std::invalid_argument("CheckpointOptions: retain must be >= 1");
  }
  std::filesystem::create_directories(dir_);
}

std::filesystem::path CheckpointManager::PathFor(std::uint64_t seq) const {
  return dir_ / (prefix_ + std::to_string(seq) + ".ckpt");
}

std::vector<std::pair<std::uint64_t, std::filesystem::path>>
CheckpointManager::ListOnDisk() const {
  std::vector<std::pair<std::uint64_t, std::filesystem::path>> found;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(prefix_, 0) != 0) continue;
    const std::string rest = name.substr(prefix_.size());
    const auto dot = rest.find(".ckpt");
    if (dot == std::string::npos || dot + 5 != rest.size()) continue;
    try {
      found.emplace_back(std::stoull(rest.substr(0, dot)), entry.path());
    } catch (const std::exception&) {
      // Not one of ours (non-numeric seq); ignore.
    }
  }
  std::sort(found.begin(), found.end());
  return found;
}

void CheckpointManager::Reset() {
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(prefix_, 0) == 0) {
      std::filesystem::remove(entry.path(), ec);
    }
  }
  next_seq_ = 1;
  retained_.clear();
  records_since_ = 0;
  bytes_since_ = 0;
  last_write_seconds_ = MonotonicSeconds();
}

void CheckpointManager::OnProgress(std::uint64_t records,
                                   std::uint64_t bytes) {
  records_since_ += records;
  bytes_since_ += bytes;
}

bool CheckpointManager::Due() const {
  if (!options_.enabled) return false;
  if (options_.interval_records > 0 &&
      records_since_ >= options_.interval_records) {
    return true;
  }
  if (options_.interval_bytes > 0 && bytes_since_ >= options_.interval_bytes) {
    return true;
  }
  if (options_.interval_seconds > 0.0 &&
      MonotonicSeconds() - last_write_seconds_ >= options_.interval_seconds) {
    return true;
  }
  return false;
}

std::uint64_t CheckpointManager::Write(CheckpointImage* image) {
  image->seq = next_seq_;
  std::string payload = SerializeCheckpointImage(*image);
  std::uint8_t flags = 0;
  if (options_.compress) {
    payload = OzCompress(payload);
    flags |= kFlagCompressed;
  }
  const std::uint32_t crc = Crc32(payload.data(), payload.size());

  const auto final_path = PathFor(image->seq);
  const auto tmp_path =
      std::filesystem::path(final_path.string() + ".tmp");
  {
    SequentialWriter writer(tmp_path,
                            IoChannel(metrics_, device::kCheckpointWrite));
    writer.Append(Slice(kMagic, sizeof(kMagic)));
    writer.AppendU32(kVersion);
    writer.Append(Slice(reinterpret_cast<const char*>(&flags), 1));
    writer.AppendU64(image->seq);
    writer.AppendU32(crc);
    writer.AppendU64(payload.size());
    writer.Append(payload);
    writer.Flush(/*sync=*/true);
    writer.Close();
  }
  // The rename is the commit point: loaders only ever see a fully-written,
  // synced image or none at all.
  std::filesystem::rename(tmp_path, final_path);

  ++next_seq_;
  ++written_;
  retained_.emplace_back(image->seq, image->watermark);
  while (static_cast<int>(retained_.size()) > options_.retain) {
    std::error_code ec;
    std::filesystem::remove(PathFor(retained_.front().first), ec);
    retained_.erase(retained_.begin());
  }

  records_since_ = 0;
  bytes_since_ = 0;
  last_write_seconds_ = MonotonicSeconds();
  if (metrics_ != nullptr) metrics_->Get("checkpoint.written")->Increment();
  const std::uint64_t bytes =
      sizeof(kMagic) + 4 + 1 + 8 + 4 + 8 + payload.size();
  return bytes;
}

std::optional<CheckpointImage> CheckpointManager::LoadLatest() {
  const double begin = MonotonicSeconds();
  auto on_disk = ListOnDisk();
  for (auto it = on_disk.rbegin(); it != on_disk.rend(); ++it) {
    try {
      SequentialReader reader(it->second,
                              IoChannel(metrics_, device::kCheckpointRead));
      char magic[sizeof(kMagic)];
      if (!reader.ReadExact(magic, sizeof(magic)) ||
          !std::equal(magic, magic + sizeof(kMagic), kMagic)) {
        throw std::runtime_error("bad checkpoint magic");
      }
      std::uint32_t version = 0;
      if (!reader.ReadU32(&version) || version != kVersion) {
        throw std::runtime_error("unsupported checkpoint version");
      }
      char flags_byte = 0;
      if (!reader.ReadExact(&flags_byte, 1)) {
        throw std::runtime_error("truncated checkpoint header");
      }
      std::uint64_t seq = 0;
      std::uint32_t crc = 0;
      std::uint64_t payload_size = 0;
      if (!reader.ReadU64(&seq) || !reader.ReadU32(&crc) ||
          !reader.ReadU64(&payload_size)) {
        throw std::runtime_error("truncated checkpoint header");
      }
      if (payload_size > reader.FileSize()) {
        throw std::runtime_error("checkpoint payload size exceeds file");
      }
      std::string payload(payload_size, '\0');
      if (payload_size > 0 && !reader.ReadExact(payload.data(), payload_size)) {
        throw std::runtime_error("truncated checkpoint payload");
      }
      if (Crc32(payload.data(), payload.size()) != crc) {
        throw std::runtime_error("checkpoint CRC mismatch");
      }
      if ((static_cast<std::uint8_t>(flags_byte) & kFlagCompressed) != 0) {
        payload = OzDecompress(payload);
      }
      CheckpointImage image = ParseCheckpointImage(payload);
      image.seq = seq;
      // Continue numbering past everything on disk so a post-recovery write
      // never collides with (or is shadowed by) an existing file.
      next_seq_ = std::max(next_seq_, on_disk.back().first + 1);
      if (metrics_ != nullptr) {
        metrics_->Get("checkpoint.loaded")->Increment();
        metrics_->Get("checkpoint.recover_us")
            ->Add(static_cast<std::int64_t>(
                (MonotonicSeconds() - begin) * 1e6));
      }
      return image;
    } catch (const std::exception&) {
      // Corrupt or torn image: count it and fall back to the next-oldest.
      if (metrics_ != nullptr) metrics_->Get("checkpoint.corrupt")->Increment();
    }
  }
  if (metrics_ != nullptr) {
    metrics_->Get("checkpoint.recover_us")
        ->Add(static_cast<std::int64_t>((MonotonicSeconds() - begin) * 1e6));
  }
  return std::nullopt;
}

std::optional<std::uint64_t> CheckpointManager::OldestRetainedWatermark()
    const {
  if (retained_.empty()) return std::nullopt;
  return retained_.front().second;
}

int CheckpointManager::SweepFinishedJobs(const std::filesystem::path& dir,
                                         const std::string& finished_job) {
  // Match "<job prefix><digits>_<digits>.ckpt" (optionally "+ .tmp" for a
  // commit interrupted mid-rename), never a mere job-name prefix collision:
  // job "a" must not sweep job "a-long"'s images because both sanitize to
  // names starting with "a".  Serve-plane snapshots live under the
  // "<job>.serve" pseudo-job and are reclaimed by the same sweep.
  const std::string prefixes[] = {
      CheckpointJobPrefix(finished_job),
      CheckpointJobPrefix(finished_job + kServeJobSuffix)};
  auto matches_prefix = [&](const std::string& name, const std::string& prefix) {
    if (name.rfind(prefix, 0) != 0) return false;
    std::string rest = name.substr(prefix.size());
    for (const char* suffix : {".ckpt.tmp", ".ckpt"}) {
      const std::string s(suffix);
      if (rest.size() > s.size() &&
          rest.compare(rest.size() - s.size(), s.size(), s) == 0) {
        rest.resize(rest.size() - s.size());
        const auto underscore = rest.find('_');
        if (underscore == std::string::npos || underscore == 0 ||
            underscore + 1 == rest.size()) {
          return false;
        }
        const auto digits = [](const std::string& t) {
          return !t.empty() && std::all_of(t.begin(), t.end(), [](char c) {
            return c >= '0' && c <= '9';
          });
        };
        return digits(rest.substr(0, underscore)) &&
               digits(rest.substr(underscore + 1));
      }
    }
    return false;
  };
  auto is_image_of_job = [&](const std::string& name) {
    for (const std::string& prefix : prefixes) {
      if (matches_prefix(name, prefix)) return true;
    }
    return false;
  };
  int removed = 0;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (is_image_of_job(entry.path().filename().string())) {
      std::error_code rm_ec;
      if (std::filesystem::remove(entry.path(), rm_ec)) ++removed;
    }
  }
  return removed;
}

}  // namespace opmr
