#include "frequent/space_saving.h"

#include <algorithm>
#include <stdexcept>

namespace opmr {

SpaceSaving::SpaceSaving(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ == 0) {
    throw std::invalid_argument("SpaceSaving: capacity must be positive");
  }
  entries_.reserve(capacity_);
  min_heap_.reserve(capacity_);
}

void SpaceSaving::SiftUp(std::size_t pos) {
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / 2;
    if (min_heap_[parent]->count <= min_heap_[pos]->count) break;
    std::swap(min_heap_[parent], min_heap_[pos]);
    min_heap_[parent]->heap_pos = parent;
    min_heap_[pos]->heap_pos = pos;
    pos = parent;
  }
}

void SpaceSaving::SiftDown(std::size_t pos) {
  const std::size_t n = min_heap_.size();
  while (true) {
    std::size_t smallest = pos;
    const std::size_t l = 2 * pos + 1;
    const std::size_t r = 2 * pos + 2;
    if (l < n && min_heap_[l]->count < min_heap_[smallest]->count) {
      smallest = l;
    }
    if (r < n && min_heap_[r]->count < min_heap_[smallest]->count) {
      smallest = r;
    }
    if (smallest == pos) break;
    std::swap(min_heap_[pos], min_heap_[smallest]);
    min_heap_[pos]->heap_pos = pos;
    min_heap_[smallest]->heap_pos = smallest;
    pos = smallest;
  }
}

void SpaceSaving::Offer(Slice key, std::uint64_t weight) {
  (void)OfferAndEvict(key, weight);
}

std::optional<std::string> SpaceSaving::OfferAndEvict(Slice key,
                                                      std::uint64_t weight) {
  n_ += weight;
  auto it = entries_.find(key.view());
  if (it != entries_.end()) {
    it->second.count += weight;
    SiftDown(it->second.heap_pos);
    return std::nullopt;
  }
  if (entries_.size() < capacity_) {
    std::string owned(key.view());
    Entry entry;
    entry.key = owned;
    entry.count = weight;
    entry.error = 0;
    entry.heap_pos = min_heap_.size();
    auto [slot, inserted] = entries_.emplace(std::move(owned), std::move(entry));
    min_heap_.push_back(&slot->second);
    SiftUp(min_heap_.size() - 1);
    return std::nullopt;
  }
  // Evict the minimum-count entry; the newcomer inherits its count as error.
  Entry* victim = min_heap_[0];
  std::string victim_key = victim->key;
  const std::uint64_t inherited = victim->count;
  entries_.erase(victim_key);

  std::string owned(key.view());
  Entry entry;
  entry.key = owned;
  entry.count = inherited + weight;
  entry.error = inherited;
  entry.heap_pos = 0;
  auto [slot, inserted] = entries_.emplace(std::move(owned), std::move(entry));
  min_heap_[0] = &slot->second;
  SiftDown(0);
  return victim_key;
}

void SpaceSaving::Restore(Slice key, std::uint64_t count, std::uint64_t error) {
  auto it = entries_.find(key.view());
  if (it != entries_.end()) {
    it->second.count = count;
    it->second.error = error;
    SiftUp(it->second.heap_pos);
    SiftDown(it->second.heap_pos);
    return;
  }
  if (entries_.size() >= capacity_) {
    throw std::logic_error("SpaceSaving::Restore: summary is full");
  }
  std::string owned(key.view());
  Entry entry;
  entry.key = owned;
  entry.count = count;
  entry.error = error;
  entry.heap_pos = min_heap_.size();
  auto [slot, inserted] = entries_.emplace(std::move(owned), std::move(entry));
  min_heap_.push_back(&slot->second);
  SiftUp(min_heap_.size() - 1);
}

std::uint64_t SpaceSaving::Estimate(Slice key) const {
  auto it = entries_.find(key.view());
  return it == entries_.end() ? 0 : it->second.count;
}

bool SpaceSaving::IsMonitored(Slice key) const {
  return entries_.count(key.view()) != 0;
}

std::uint64_t SpaceSaving::Error(Slice key) const {
  auto it = entries_.find(key.view());
  return it == entries_.end() ? 0 : it->second.error;
}

std::vector<HeavyHitter> SpaceSaving::Candidates() const {
  std::vector<HeavyHitter> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    out.push_back({key, entry.count, entry.error});
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.count_estimate > b.count_estimate;
  });
  return out;
}

}  // namespace opmr
