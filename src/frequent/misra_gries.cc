#include "frequent/misra_gries.h"

#include <algorithm>
#include <stdexcept>

namespace opmr {

MisraGries::MisraGries(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ == 0) {
    throw std::invalid_argument("MisraGries: capacity must be positive");
  }
  counts_.reserve(capacity_ + 1);
}

void MisraGries::Offer(Slice key, std::uint64_t weight) {
  n_ += weight;
  auto it = counts_.find(key.view());
  if (it != counts_.end()) {
    it->second += weight;
    return;
  }
  if (counts_.size() < capacity_) {
    counts_.emplace(std::string(key.view()), weight);
    return;
  }
  // Weighted Misra–Gries decrement step: subtract the largest amount that
  // zeroes either the newcomer's weight or some existing counter.
  std::uint64_t min_count = weight;
  for (const auto& [_, c] : counts_) min_count = std::min(min_count, c);
  for (auto it2 = counts_.begin(); it2 != counts_.end();) {
    it2->second -= min_count;
    if (it2->second == 0) {
      it2 = counts_.erase(it2);
    } else {
      ++it2;
    }
  }
  if (weight > min_count) {
    counts_.emplace(std::string(key.view()), weight - min_count);
  }
}

std::uint64_t MisraGries::Estimate(Slice key) const {
  auto it = counts_.find(key.view());
  return it == counts_.end() ? 0 : it->second;
}

bool MisraGries::IsMonitored(Slice key) const {
  return counts_.count(key.view()) != 0;
}

std::vector<HeavyHitter> MisraGries::Candidates() const {
  std::vector<HeavyHitter> out;
  out.reserve(counts_.size());
  for (const auto& [key, count] : counts_) {
    // MG estimates are lower bounds; error is bounded by N/(capacity+1).
    out.push_back({key, count, n_ / (capacity_ + 1)});
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.count_estimate > b.count_estimate;
  });
  return out;
}

}  // namespace opmr
