#include "frequent/lossy_counting.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace opmr {

LossyCounting::LossyCounting(double epsilon) : epsilon_(epsilon) {
  if (!(epsilon > 0.0) || epsilon >= 1.0) {
    throw std::invalid_argument("LossyCounting: epsilon must be in (0,1)");
  }
  width_ = static_cast<std::uint64_t>(std::ceil(1.0 / epsilon));
}

void LossyCounting::PruneBucket() {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.count + it->second.delta <= bucket_) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  ++bucket_;
}

void LossyCounting::Offer(Slice key, std::uint64_t weight) {
  // Weighted arrivals are folded one bucket at a time so pruning points are
  // identical to offering the key `weight` times.
  while (weight > 0) {
    const std::uint64_t room = bucket_ * width_ - n_;
    const std::uint64_t take = std::min<std::uint64_t>(weight, room);
    auto it = entries_.find(key.view());
    if (it != entries_.end()) {
      it->second.count += take;
    } else {
      entries_.emplace(std::string(key.view()), Entry{take, bucket_ - 1});
    }
    n_ += take;
    weight -= take;
    if (n_ == bucket_ * width_) PruneBucket();
  }
}

std::uint64_t LossyCounting::Estimate(Slice key) const {
  auto it = entries_.find(key.view());
  return it == entries_.end() ? 0 : it->second.count;
}

bool LossyCounting::IsMonitored(Slice key) const {
  return entries_.count(key.view()) != 0;
}

std::vector<HeavyHitter> LossyCounting::Candidates() const {
  std::vector<HeavyHitter> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    out.push_back({key, entry.count + entry.delta, entry.delta});
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.count_estimate > b.count_estimate;
  });
  return out;
}

}  // namespace opmr
