// Lossy Counting (Manku & Motwani 2002).
//
// Processes the stream in buckets of width ceil(1/epsilon); at each bucket
// boundary entries whose (count + delta) no longer exceed the bucket index
// are pruned.  Guarantee: estimate <= true count <= estimate + epsilon*N.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "frequent/sketch.h"

namespace opmr {

class LossyCounting final : public FrequentSketch {
 public:
  explicit LossyCounting(double epsilon);

  void Offer(Slice key, std::uint64_t weight) override;
  using FrequentSketch::Offer;

  [[nodiscard]] std::uint64_t Estimate(Slice key) const override;
  [[nodiscard]] bool IsMonitored(Slice key) const override;
  [[nodiscard]] std::vector<HeavyHitter> Candidates() const override;
  [[nodiscard]] std::size_t Size() const override { return entries_.size(); }
  // Lossy counting's size bound is (1/epsilon)*log(epsilon*N); report the
  // bucket width as the nominal capacity.
  [[nodiscard]] std::size_t Capacity() const override { return width_; }
  [[nodiscard]] std::uint64_t StreamLength() const override { return n_; }

  [[nodiscard]] double epsilon() const noexcept { return epsilon_; }

 private:
  struct Entry {
    std::uint64_t count = 0;
    std::uint64_t delta = 0;  // max undercount when the entry was inserted
  };

  void PruneBucket();

  double epsilon_;
  std::uint64_t width_;
  std::uint64_t n_ = 0;
  std::uint64_t bucket_ = 1;  // current bucket index (1-based, as in paper)
  std::unordered_map<std::string, Entry, TransparentStringHash,
                     std::equal_to<>>
      entries_;
};

}  // namespace opmr
