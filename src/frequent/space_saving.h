// Space-Saving (Metwally, Agrawal, El Abbadi 2005): the frequent-items
// summary used by the hot-key incremental reducer.
//
// Maintains exactly `capacity` monitored keys.  On an unmonitored arrival
// when full, the minimum-count entry is evicted and the newcomer inherits
// its count as the error bound.  Guarantees: for any key with true count
// f > N/capacity the key is monitored, and estimate - error <= f <= estimate.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "frequent/sketch.h"

namespace opmr {

class SpaceSaving final : public FrequentSketch {
 public:
  explicit SpaceSaving(std::size_t capacity);

  void Offer(Slice key, std::uint64_t weight) override;
  using FrequentSketch::Offer;

  [[nodiscard]] std::uint64_t Estimate(Slice key) const override;
  [[nodiscard]] bool IsMonitored(Slice key) const override;
  [[nodiscard]] std::vector<HeavyHitter> Candidates() const override;
  [[nodiscard]] std::size_t Size() const override { return entries_.size(); }
  [[nodiscard]] std::size_t Capacity() const override { return capacity_; }
  [[nodiscard]] std::uint64_t StreamLength() const override { return n_; }

  // Error bound for a monitored key (0 if never recycled); part of the
  // (estimate, error) certificate Space-Saving provides.
  [[nodiscard]] std::uint64_t Error(Slice key) const;

  // Like Offer, but reports which key (if any) was evicted to admit this
  // one.  The hot-key reducer uses the eviction as its signal to demote the
  // victim's in-memory state to the cold spill file.
  std::optional<std::string> OfferAndEvict(Slice key, std::uint64_t weight = 1);

  // Checkpoint restore: re-installs a monitored entry with its exact
  // (count, error) certificate, without counting toward the stream length.
  // Replaces the key's entry if present; throws when the summary is full
  // and the key is new.
  void Restore(Slice key, std::uint64_t count, std::uint64_t error);

  // Checkpoint restore: resets the observed stream weight.
  void SetStreamLength(std::uint64_t n) noexcept { n_ = n; }

 private:
  struct Entry {
    std::string key;
    std::uint64_t count = 0;
    std::uint64_t error = 0;
    std::size_t heap_pos = 0;  // position in min_heap_
  };

  void SiftUp(std::size_t pos);
  void SiftDown(std::size_t pos);

  std::size_t capacity_;
  std::uint64_t n_ = 0;
  // Monitored entries keyed by their bytes; the min-heap orders stable
  // Entry pointers by count (node-based map => addresses never move), so
  // heap maintenance swaps pointers, not strings.
  std::unordered_map<std::string, Entry, TransparentStringHash,
                     std::equal_to<>> entries_;
  std::vector<Entry*> min_heap_;
};

}  // namespace opmr
