// Misra–Gries (1982) frequent-items summary.
//
// Keeps at most `capacity` counters.  A new key arriving when the summary is
// full decrements every counter (evicting zeros) instead of evicting one
// victim.  Guarantee: estimate <= true count <= estimate + N/(capacity+1).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "frequent/sketch.h"

namespace opmr {

class MisraGries final : public FrequentSketch {
 public:
  explicit MisraGries(std::size_t capacity);

  void Offer(Slice key, std::uint64_t weight) override;
  using FrequentSketch::Offer;

  [[nodiscard]] std::uint64_t Estimate(Slice key) const override;
  [[nodiscard]] bool IsMonitored(Slice key) const override;
  [[nodiscard]] std::vector<HeavyHitter> Candidates() const override;
  [[nodiscard]] std::size_t Size() const override { return counts_.size(); }
  [[nodiscard]] std::size_t Capacity() const override { return capacity_; }
  [[nodiscard]] std::uint64_t StreamLength() const override { return n_; }

 private:
  std::size_t capacity_;
  std::uint64_t n_ = 0;
  std::unordered_map<std::string, std::uint64_t, TransparentStringHash,
                     std::equal_to<>>
      counts_;
};

}  // namespace opmr
