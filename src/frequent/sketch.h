// Online frequent-items ("heavy hitter") sketch interface.
//
// The paper's hot-key reducer (§V, reduce technique 3) "borrow[s] an
// existing online frequent algorithm to identify hot keys, and keep[s] hot
// keys in memory".  All three classic deterministic summaries are provided
// behind one interface so the hot-key reducer and the ablation benches can
// swap them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/slice.h"

namespace opmr {

struct HeavyHitter {
  std::string key;
  std::uint64_t count_estimate = 0;  // upper bound on the true count
  std::uint64_t error_bound = 0;     // count_estimate - error <= true count
};

class FrequentSketch {
 public:
  virtual ~FrequentSketch() = default;

  // Observes one occurrence (or `weight` occurrences) of `key`.
  virtual void Offer(Slice key, std::uint64_t weight) = 0;
  void Offer(Slice key) { Offer(key, 1); }

  // Estimated count for `key`; 0 if the key is not currently monitored.
  [[nodiscard]] virtual std::uint64_t Estimate(Slice key) const = 0;

  // True if `key` is currently one of the monitored (candidate-hot) keys.
  [[nodiscard]] virtual bool IsMonitored(Slice key) const = 0;

  // All monitored keys, most frequent first.
  [[nodiscard]] virtual std::vector<HeavyHitter> Candidates() const = 0;

  // Number of monitored keys / capacity of the summary.
  [[nodiscard]] virtual std::size_t Size() const = 0;
  [[nodiscard]] virtual std::size_t Capacity() const = 0;

  // Total stream weight observed.
  [[nodiscard]] virtual std::uint64_t StreamLength() const = 0;
};

}  // namespace opmr
