// TcpTransport: localhost socket transport, thread-per-connection.
//
// Two construction modes:
//
//   * Server / full: TcpTransport(metrics) + Bind().  Bind() creates the
//     listening socket (bind + listen) without spawning any thread, so a
//     CLI parent can Bind() BEFORE fork() — the child's connect() then
//     succeeds even if the parent has not started accepting yet (the
//     backlog holds it).  Listen() starts the accept/reader threads.
//     Connect() dials the transport's own endpoint (single-process mode).
//   * Client: TcpTransport(metrics, "127.0.0.1:port").  Connect() dials
//     the remote endpoint; Listen()/Bind() are invalid.
//
// The client connection consults the process-global NetFaultHook before
// each send: a dropped send tears the connection down BEFORE any byte of
// the frame reaches the wire, reconnects (resending the Hello preamble set
// via SetConnectPreamble), and retransmits — so injected connection drops
// exercise the retry path without ever duplicating delivered data.  Real
// send errors (peer reset) retry the same way, up to a bounded number of
// attempts.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "metrics/counters.h"
#include "net/transport.h"

namespace opmr::net {

class TcpServerConnection;
class TcpClientConnection;

class TcpTransport final : public Transport {
 public:
  struct Options {
    int connect_attempts = 20;       // dial retries (server may lag behind)
    double connect_backoff_ms = 25;  // linear backoff between dial attempts
    int send_attempts = 4;           // transmissions per frame before giving up
    // Server-mode addressing.  Defaults preserve the historical localhost
    // behavior; cluster mode binds "0.0.0.0" and advertises a reachable
    // address.  advertise_address feeds endpoint() (and the single-process
    // self-dial); empty means the bind address, or loopback when bound any.
    std::string bind_address = "127.0.0.1";
    int bind_port = 0;  // 0 = ephemeral
    std::string advertise_address;
    // SO_SNDBUF / SO_RCVBUF for every data socket (dialed and accepted);
    // 0 keeps the kernel default.  TCP_NODELAY is always set — the shuffle
    // writes whole frames and latency-batches above the socket, so Nagle
    // only adds delay.
    int sock_buf_bytes = 0;
  };

  explicit TcpTransport(MetricRegistry* metrics);
  TcpTransport(MetricRegistry* metrics, Options options);
  TcpTransport(MetricRegistry* metrics, std::string endpoint);
  TcpTransport(MetricRegistry* metrics, std::string endpoint, Options options);
  ~TcpTransport() override;

  // Server mode: bind 127.0.0.1 on an ephemeral port and start the listen
  // backlog.  Safe to call before fork(); idempotent.
  void Bind();

  void Listen(FrameHandler handler) override;
  std::shared_ptr<Connection> Connect(FrameHandler on_reply) override;
  [[nodiscard]] std::string endpoint() const override;
  void Shutdown() override;

  // Frame resent first on every client reconnect (the Hello re-introduction).
  void SetConnectPreamble(Frame preamble) override;

  // Frames resent after the preamble on every client reconnect (the
  // shuffle client's delivered-but-unacked window).
  void SetReconnectReplay(std::function<std::vector<Frame>()> replay) override;

 private:
  friend class TcpServerConnection;
  friend class TcpClientConnection;

  // Requires mu_.  The host part of endpoint(): advertise_address when
  // set, else the bind address (loopback when bound to the wildcard).
  [[nodiscard]] std::string AdvertisedHostLocked() const;

  MetricRegistry* metrics_;
  Options options_;

  Counter* frames_sent_ = nullptr;
  Counter* frames_received_ = nullptr;
  Counter* bytes_sent_ = nullptr;
  Counter* bytes_received_ = nullptr;
  Counter* retransmits_ = nullptr;
  Counter* reconnects_ = nullptr;
  Counter* stall_nanos_ = nullptr;
  Counter* send_syscalls_ = nullptr;
  Counter* recv_syscalls_ = nullptr;

  mutable std::mutex mu_;
  std::string remote_endpoint_;  // client mode; empty in server mode
  int listen_fd_ = -1;
  int port_ = 0;
  bool shutdown_ = false;
  FrameHandler handler_;
  std::thread accept_thread_;
  std::vector<std::shared_ptr<TcpServerConnection>> server_connections_;
  std::vector<std::shared_ptr<TcpClientConnection>> client_connections_;
  Frame preamble_;
  bool has_preamble_ = false;
  std::function<std::vector<Frame>()> reconnect_replay_;
};

}  // namespace opmr::net
