// Length-prefixed, CRC32-protected message framing for the shuffle
// transport.
//
// Wire layout of one frame (little-endian):
//
//   [u32 magic 'OPFR'] [u8 type] [u8 flags] [u16 reserved]
//   [u32 payload_len]  [u32 crc] [payload_len payload bytes]
//
// `crc` is CRC-32C (Castagnoli — hardware-accelerated where the CPU can,
// see common/crc32c.h) over type, flags, reserved, and the payload — every byte
// after the magic except the length and the checksum itself.  A corrupted
// length either shifts the CRC window (caught as kBadCrc), exceeds the
// payload cap (kOversized), or asks for bytes that never arrive (the
// stream stalls at kNeedMore); no single-bit corruption can yield a frame
// that decodes successfully.
//
// FrameDecoder is incremental: feed it arbitrary byte slices as they
// arrive from a socket and drain complete frames with Next().  Any error
// poisons the decoder — framing is stateful, so after one bad header the
// rest of the stream cannot be trusted and the connection must be dropped.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/slice.h"

namespace opmr::net {

enum class FrameType : std::uint8_t {
  kHello = 1,        // first frame on a connection: peer introduction
  kChunk = 2,        // pushed in-memory map-output chunk
  kSegmentRef = 3,   // file-segment descriptor (shared-filesystem peers)
  kSegmentData = 4,  // file-segment payload shipped inline (remote peers)
  kMapDone = 5,      // one map task completed (with its record stats)
  kCredit = 6,       // back-pressure credit grant, reducer consumed a chunk
  kGone = 7,         // a reducer terminally failed; stop pushing to it
  kAbort = 8,        // sender's job is failing; peer should unwind
  kBye = 9,          // orderly close, carries the sender's wire stats
  kRegister = 10,    // worker joins the coordinator's group registry
  kHeartbeat = 11,   // lease renewal for a registered worker
  kMembership = 12,  // coordinator's worker-group view (epoch + entries)
  kAck = 13,         // cumulative receipt ack for sequenced data frames
  kSnapshotAnnounce = 14,  // publisher: a new snapshot version is servable
  kSnapshotFetch = 15,     // replica <-> publisher: image request / bytes
  kQuery = 16,             // client -> frontend: point / top-k / scan
  kQueryResult = 17,       // frontend -> client: rows or rejection status
  kLogAppend = 18,     // leader -> standby: one replicated changelog record
  kLogAck = 19,        // standby -> leader: cumulative applied log index
  kSnapshotOffer = 20, // leader -> standby: full registry image (catch-up)
  kVote = 21,          // replica <-> replica: liveness ping for election
  kLeaderClaim = 22,   // new leader announcement / standby redirect
  kCodedChunk = 23,    // XOR-coded multicast shuffle payload (src/coded)
  kCodedAck = 24,      // cumulative ack + decode progress for coded frames
  kBlock = 25,         // data-plane block: many data frames, one codec byte
  kBlockAck = 26,      // receiver progress: blocks unpacked, frames yielded
};

[[nodiscard]] const char* FrameTypeName(FrameType type) noexcept;
[[nodiscard]] bool IsKnownFrameType(std::uint8_t type) noexcept;

struct Frame {
  FrameType type = FrameType::kHello;
  std::string payload;
};

inline constexpr std::uint32_t kFrameMagic = 0x5246504Fu;  // "OPFR"
inline constexpr std::size_t kFrameHeaderBytes = 16;
// Generous cap: chunks are ~hundreds of KiB, segments a few MiB.  Anything
// bigger is a corrupt length field, not a message.
inline constexpr std::uint32_t kMaxFramePayload = 1u << 30;

// Serializes `frame` onto the end of `out`.  Throws std::length_error when
// the payload exceeds kMaxFramePayload.
void AppendFrame(std::string* out, const Frame& frame);
[[nodiscard]] std::string EncodeFrame(const Frame& frame);

enum class DecodeStatus {
  kOk,        // a frame was produced
  kNeedMore,  // buffered bytes form no complete frame yet
  kBadMagic,  // stream is not frame-aligned / corrupt header
  kBadType,   // unknown frame type byte
  kOversized, // declared payload length exceeds kMaxFramePayload
  kBadCrc,    // checksum mismatch over type/flags/reserved/payload
};

[[nodiscard]] const char* DecodeStatusName(DecodeStatus status) noexcept;

// Zero-copy decode result: `payload` aliases the decoder's internal buffer.
// Valid only until the next Feed / Next / NextView / ReleaseView call on the
// decoder that produced it.
struct FrameView {
  FrameType type = FrameType::kHello;
  Slice payload;
};

class FrameDecoder {
 public:
  // Buffers `size` more stream bytes.  Cheap; no parsing happens here.
  // Asserts that no FrameView is outstanding: Feed may reallocate or
  // compact the buffer a view aliases.
  void Feed(const char* data, std::size_t size);

  // Attempts to decode the next frame from the buffered bytes.  kOk fills
  // `*out`; kNeedMore means wait for more input; any other status poisons
  // the decoder permanently (subsequent calls return the same error).
  [[nodiscard]] DecodeStatus Next(Frame* out);

  // Zero-copy variant for handlers that consume the payload synchronously:
  // kOk fills `*out` with a view into the decoder's buffer instead of
  // copying the payload out.  The view stays valid until the next call to
  // Feed / Next / NextView / ReleaseView — calling NextView again (or
  // Next) implicitly releases the previous view first.
  [[nodiscard]] DecodeStatus NextView(FrameView* out);

  // Explicitly ends the lifetime of the view returned by the last
  // NextView, re-allowing Feed.  Idempotent.
  void ReleaseView() noexcept { view_active_ = false; }

  [[nodiscard]] bool poisoned() const noexcept {
    return error_ != DecodeStatus::kOk;
  }
  [[nodiscard]] std::size_t buffered_bytes() const noexcept {
    return buffer_.size() - consumed_;
  }

 private:
  // Shared decode core: on kOk, `*type` and the payload window are set and
  // the frame's bytes are consumed.
  [[nodiscard]] DecodeStatus DecodeNext(FrameType* type, const char** payload,
                                        std::size_t* payload_len);

  std::string buffer_;
  std::size_t consumed_ = 0;  // decoded prefix, compacted lazily
  DecodeStatus error_ = DecodeStatus::kOk;  // kOk = healthy
  bool view_active_ = false;  // a NextView result aliases buffer_
};

}  // namespace opmr::net
