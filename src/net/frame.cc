#include "net/frame.h"

#include <cassert>
#include <stdexcept>

#include "common/crc32c.h"
#include "common/slice.h"

namespace opmr::net {

const char* FrameTypeName(FrameType type) noexcept {
  switch (type) {
    case FrameType::kHello: return "hello";
    case FrameType::kChunk: return "chunk";
    case FrameType::kSegmentRef: return "segment_ref";
    case FrameType::kSegmentData: return "segment_data";
    case FrameType::kMapDone: return "map_done";
    case FrameType::kCredit: return "credit";
    case FrameType::kGone: return "gone";
    case FrameType::kAbort: return "abort";
    case FrameType::kBye: return "bye";
    case FrameType::kRegister: return "register";
    case FrameType::kHeartbeat: return "heartbeat";
    case FrameType::kMembership: return "membership";
    case FrameType::kAck: return "ack";
    case FrameType::kSnapshotAnnounce: return "snapshot_announce";
    case FrameType::kSnapshotFetch: return "snapshot_fetch";
    case FrameType::kQuery: return "query";
    case FrameType::kQueryResult: return "query_result";
    case FrameType::kLogAppend: return "log_append";
    case FrameType::kLogAck: return "log_ack";
    case FrameType::kSnapshotOffer: return "snapshot_offer";
    case FrameType::kVote: return "vote";
    case FrameType::kLeaderClaim: return "leader_claim";
    case FrameType::kCodedChunk: return "coded_chunk";
    case FrameType::kCodedAck: return "coded_ack";
    case FrameType::kBlock: return "block";
    case FrameType::kBlockAck: return "block_ack";
  }
  return "unknown";
}

bool IsKnownFrameType(std::uint8_t type) noexcept {
  return type >= static_cast<std::uint8_t>(FrameType::kHello) &&
         type <= static_cast<std::uint8_t>(FrameType::kBlockAck);
}

void AppendFrame(std::string* out, const Frame& frame) {
  if (frame.payload.size() > kMaxFramePayload) {
    throw std::length_error("net frame payload exceeds cap: " +
                            std::to_string(frame.payload.size()));
  }
  const char covered[4] = {static_cast<char>(frame.type), /*flags=*/0,
                           /*reserved=*/0, 0};
  std::uint32_t crc = Crc32cUpdate(kCrc32cInit, covered, sizeof(covered));
  crc = Crc32cFinal(
      Crc32cUpdate(crc, frame.payload.data(), frame.payload.size()));
  AppendU32(*out, kFrameMagic);
  out->append(covered, sizeof(covered));
  AppendU32(*out, static_cast<std::uint32_t>(frame.payload.size()));
  AppendU32(*out, crc);
  out->append(frame.payload);
}

std::string EncodeFrame(const Frame& frame) {
  std::string out;
  out.reserve(kFrameHeaderBytes + frame.payload.size());
  AppendFrame(&out, frame);
  return out;
}

void FrameDecoder::Feed(const char* data, std::size_t size) {
  // Feed may compact or reallocate the buffer, which would silently turn an
  // outstanding NextView result into a dangling slice.  The lifetime
  // contract is assertion-guarded rather than worked around: views are for
  // handlers that finish with the payload before asking for more input.
  assert(!view_active_ && "Feed while a FrameView is outstanding");
  // Compact the decoded prefix before it dominates the buffer.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, size);
}

DecodeStatus FrameDecoder::DecodeNext(FrameType* type, const char** payload,
                                      std::size_t* payload_len) {
  if (error_ != DecodeStatus::kOk) return error_;
  const char* base = buffer_.data() + consumed_;
  const std::size_t avail = buffer_.size() - consumed_;
  if (avail < kFrameHeaderBytes) return DecodeStatus::kNeedMore;
  if (DecodeU32(base) != kFrameMagic) {
    return error_ = DecodeStatus::kBadMagic;
  }
  const std::uint8_t type_byte = static_cast<std::uint8_t>(base[4]);
  if (!IsKnownFrameType(type_byte)) {
    return error_ = DecodeStatus::kBadType;
  }
  const std::uint32_t len = DecodeU32(base + 8);
  if (len > kMaxFramePayload) {
    return error_ = DecodeStatus::kOversized;
  }
  if (avail < kFrameHeaderBytes + len) return DecodeStatus::kNeedMore;
  const std::uint32_t expected_crc = DecodeU32(base + 12);
  std::uint32_t crc = Crc32cUpdate(kCrc32cInit, base + 4, 4);
  crc = Crc32cFinal(Crc32cUpdate(crc, base + kFrameHeaderBytes, len));
  if (crc != expected_crc) {
    return error_ = DecodeStatus::kBadCrc;
  }
  *type = static_cast<FrameType>(type_byte);
  *payload = base + kFrameHeaderBytes;
  *payload_len = len;
  consumed_ += kFrameHeaderBytes + len;
  return DecodeStatus::kOk;
}

DecodeStatus FrameDecoder::Next(Frame* out) {
  view_active_ = false;  // any prior view ends here
  FrameType type;
  const char* payload = nullptr;
  std::size_t payload_len = 0;
  const DecodeStatus status = DecodeNext(&type, &payload, &payload_len);
  if (status != DecodeStatus::kOk) return status;
  out->type = type;
  out->payload.assign(payload, payload_len);
  return DecodeStatus::kOk;
}

DecodeStatus FrameDecoder::NextView(FrameView* out) {
  view_active_ = false;
  FrameType type;
  const char* payload = nullptr;
  std::size_t payload_len = 0;
  const DecodeStatus status = DecodeNext(&type, &payload, &payload_len);
  if (status != DecodeStatus::kOk) return status;
  out->type = type;
  out->payload = Slice(payload, payload_len);
  view_active_ = true;
  return DecodeStatus::kOk;
}

const char* DecodeStatusName(DecodeStatus status) noexcept {
  switch (status) {
    case DecodeStatus::kOk: return "ok";
    case DecodeStatus::kNeedMore: return "need_more";
    case DecodeStatus::kBadMagic: return "bad_magic";
    case DecodeStatus::kBadType: return "bad_type";
    case DecodeStatus::kOversized: return "oversized";
    case DecodeStatus::kBadCrc: return "bad_crc";
  }
  return "unknown";
}

}  // namespace opmr::net
