// LoopbackTransport: in-process frame delivery with no sockets.
//
// Send() hands the frame to the peer's handler synchronously in the
// caller's thread, serialized per direction — exactly the cost model the
// single-process engine always had, now expressed through the Transport
// seam so the same ShuffleClient/ShuffleServer pair runs unchanged over
// TCP.  The net fault hook is never consulted: there is no wire to fail.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "metrics/counters.h"
#include "net/transport.h"

namespace opmr::net {

class LoopbackConnection;

class LoopbackTransport final : public Transport {
 public:
  explicit LoopbackTransport(MetricRegistry* metrics);
  ~LoopbackTransport() override;

  void Listen(FrameHandler handler) override;
  std::shared_ptr<Connection> Connect(FrameHandler on_reply) override;
  [[nodiscard]] std::string endpoint() const override { return "loopback"; }
  void Shutdown() override;

 private:
  friend class LoopbackConnection;

  // Synchronous delivery counts both directions at once.
  void CountDelivered(const Frame& frame);

  Counter* frames_sent_ = nullptr;
  Counter* frames_received_ = nullptr;
  Counter* bytes_sent_ = nullptr;
  Counter* bytes_received_ = nullptr;

  std::mutex mu_;
  FrameHandler server_handler_;
  // Owns both endpoints of every pair (the server endpoint is only ever
  // referenced as a raw reply pointer); released on Shutdown.
  std::vector<std::shared_ptr<LoopbackConnection>> connections_;
};

}  // namespace opmr::net
