// Transport: how shuffle frames move between a map worker group and the
// reduce group.
//
// Two implementations (paper Fig. 5's "data movement" substrate):
//
//   * LoopbackTransport — in-process, synchronous delivery.  The default;
//     preserves the single-process engine behavior (and cost model) the
//     rest of the repo was measured with.
//   * TcpTransport — localhost sockets, thread-per-connection.  Used by
//     the CLI's --transport=tcp mode, which runs the map and reduce worker
//     groups as separate OS processes.
//
// A Transport is either listening (the reduce side calls Listen and
// receives frames from every accepted connection) or dialing (the map side
// calls Connect and gets a Connection to Send on; reply frames arrive on
// the connect-time handler).  Connections are bidirectional and ordered;
// delivery is at-most-once per send attempt, with the TCP client
// retransmitting over a fresh connection when a send is dropped (injected
// conn_drop faults tear the connection down *before* any byte of the frame
// reaches the wire, so a retransmit can never duplicate delivered data).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/frame.h"

namespace opmr::net {

class TransportError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Connection {
 public:
  virtual ~Connection() = default;

  // Sends one frame.  Thread-safe; may block on back-pressure from the OS.
  // Throws TransportError when the peer is unreachable after retries.
  virtual void Send(const Frame& frame) = 0;

  // Zero-copy file-region send: ships a frame whose payload is
  // `payload_prefix` followed by `length` bytes of `path` starting at
  // `offset`, without materializing the file bytes in the caller.  Returns
  // false when the transport has no kernel-assisted path (the caller falls
  // back to an in-memory frame); throws TransportError like Send on
  // unrecoverable failure.  Implemented by the event-loop transport via
  // sendfile(2).
  virtual bool SendFileFrame(FrameType type, const std::string& payload_prefix,
                             const std::string& path, std::uint64_t offset,
                             std::uint64_t length) {
    (void)type; (void)payload_prefix; (void)path; (void)offset; (void)length;
    return false;
  }

  // Half-closes the connection; buffered outbound bytes are flushed first.
  virtual void Close() = 0;
};

// Invoked once per received frame.  `from` is valid for the duration of
// the call and for as long as the connection stays open; handlers may
// Send on it (replies) from any thread.
using FrameHandler =
    std::function<void(Connection* from, Frame frame)>;

class Transport {
 public:
  virtual ~Transport() = default;

  // Server side: start delivering inbound frames to `handler`.
  virtual void Listen(FrameHandler handler) = 0;

  // Client side: open a connection; frames the peer sends back arrive on
  // `on_reply`.
  virtual std::shared_ptr<Connection> Connect(FrameHandler on_reply) = 0;

  // Printable peer address ("loopback" or "127.0.0.1:<port>").
  [[nodiscard]] virtual std::string endpoint() const = 0;

  // Stops accepting, closes every connection, joins I/O threads.
  virtual void Shutdown() = 0;

  // Frame automatically resent first whenever a client connection is
  // re-established after a drop (the Hello re-introduction).  Transports
  // without reconnection (loopback) ignore it.
  virtual void SetConnectPreamble(Frame preamble) { (void)preamble; }

  // Callback invoked right after the preamble on every client reconnect;
  // the frames it returns are resent in order before the frame that
  // triggered the reconnect.  This is the ack-window replay seam: the
  // shuffle client returns its delivered-but-unacked frames so a peer
  // crash loses nothing.  Transports without reconnection ignore it.
  virtual void SetReconnectReplay(
      std::function<std::vector<Frame>()> replay) { (void)replay; }
};

// --- Fault-injection seam ----------------------------------------------------

// Consulted by TcpTransport's client before each frame send.  `frame_seq`
// is the 1-based per-connection send ordinal, `attempt` the 1-based
// transmission attempt of that frame.  Returning true drops the send: the
// connection is torn down and the frame retransmitted on a fresh one.
// Implementations may sleep (injected network stalls).  The loopback
// transport never consults the hook — there is no wire to fail.
class NetFaultHook {
 public:
  virtual ~NetFaultHook() = default;
  virtual bool OnFrameSend(std::uint64_t frame_seq, int attempt) = 0;

  // Consulted by CoordClient before each heartbeat send.  `ordinal` is the
  // 1-based heartbeat number within the worker's current registration
  // `generation`.  Returning true suppresses the heartbeat (the lease is
  // silently not renewed), which is how heartbeat_loss faults starve the
  // failure detector.
  virtual bool OnHeartbeatSend(const std::string& worker,
                               std::uint64_t ordinal, int generation) {
    (void)worker; (void)ordinal; (void)generation;
    return false;
  }

  // Consulted by CoordClient before each Register send (`attempt` is
  // 1-based).  Returning true drops the registration — a simulated
  // network partition between worker and coordinator.
  virtual bool OnRegisterSend(const std::string& worker, int attempt) {
    (void)worker; (void)attempt;
    return false;
  }

  // Consulted by the shuffle server before APPLYING a received sequenced
  // frame (`receive_attempt` is the 1-based count of times this worker's
  // frame `seq` has been received).  Returning true discards the frame
  // after delivery and kills the connection — the peer_crash fault: the
  // bytes reached the reducer host but died unapplied, so only an
  // ack-window replay can recover them.
  virtual bool OnServerFrameApply(std::uint64_t seq, int receive_attempt) {
    (void)seq; (void)receive_attempt;
    return false;
  }
};

// Installs (or, with nullptr, removes) the process-global hook.  The
// caller keeps ownership and must uninstall before destroying the hook.
void SetNetFaultHook(NetFaultHook* hook);
[[nodiscard]] NetFaultHook* GetNetFaultHook() noexcept;

// --- Wire metric names -------------------------------------------------------
// Charged into the owning MetricRegistry by both transports; surfaced as
// the wire-metrics block of JobResult and the CSV reports.

inline constexpr const char* kNetBytesSent = "net.bytes_sent";
inline constexpr const char* kNetBytesReceived = "net.bytes_received";
inline constexpr const char* kNetFramesSent = "net.frames_sent";
inline constexpr const char* kNetFramesReceived = "net.frames_received";
inline constexpr const char* kNetRetransmits = "net.retransmits";
inline constexpr const char* kNetReconnects = "net.reconnects";
inline constexpr const char* kNetStallNanos = "net.stall_nanos";
// Kernel-crossing counts for the data path: every send(2)/writev(2)/
// sendfile(2) and every read(2) that moved frame bytes.  The ratio
// syscalls/frames is the per-frame overhead the data plane batches away.
inline constexpr const char* kNetSendSyscalls = "net.send_syscalls";
inline constexpr const char* kNetRecvSyscalls = "net.recv_syscalls";

}  // namespace opmr::net
