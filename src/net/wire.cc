#include "net/wire.h"

#include "common/slice.h"

namespace opmr::net {

namespace {

void ExpectType(const Frame& frame, FrameType want) {
  if (frame.type != want) {
    throw WireError(std::string("wire: expected ") + FrameTypeName(want) +
                    " frame, got " + FrameTypeName(frame.type));
  }
}

void AppendBytes(std::string* out, const std::string& bytes) {
  AppendU32(*out, static_cast<std::uint32_t>(bytes.size()));
  out->append(bytes);
}

}  // namespace

bool ConstantTimeEquals(const std::string& secret,
                        const std::string& guess) noexcept {
  // Fold every byte of the guess into one accumulator; no data-dependent
  // branch or early exit.  When lengths differ the result is forced
  // non-zero up front but the scan still covers all of `guess`, so timing
  // depends only on the guess length (which the frame size reveals anyway).
  unsigned char acc =
      secret.size() == guess.size() ? 0 : 1;
  for (std::size_t i = 0; i < guess.size(); ++i) {
    const unsigned char s = secret.empty()
                                ? 0
                                : static_cast<unsigned char>(
                                      secret[i < secret.size() ? i : 0]);
    acc = static_cast<unsigned char>(
        acc | (s ^ static_cast<unsigned char>(guess[i])));
  }
  return acc == 0;
}

const char* WireReader::Take(std::size_t n) {
  if (body_.size() - pos_ < n) {
    throw WireError("wire: truncated message payload");
  }
  const char* p = body_.data() + pos_;
  pos_ += n;
  return p;
}

std::uint8_t WireReader::U8() {
  return static_cast<std::uint8_t>(*Take(1));
}
std::uint32_t WireReader::U32() { return DecodeU32(Take(4)); }
std::uint64_t WireReader::U64() { return DecodeU64(Take(8)); }
std::int32_t WireReader::I32() {
  return static_cast<std::int32_t>(DecodeU32(Take(4)));
}

std::string WireReader::Bytes() {
  const std::uint32_t n = U32();
  return std::string(Take(n), n);
}

void WireReader::ExpectExhausted(const char* what) const {
  if (pos_ != body_.size()) {
    throw WireError(std::string("wire: trailing bytes after ") + what);
  }
}

// --- Hello -------------------------------------------------------------------

Frame HelloMsg::ToFrame() const {
  Frame frame{FrameType::kHello, {}};
  AppendU32(frame.payload, version);
  AppendBytes(&frame.payload, job);
  AppendU32(frame.payload, static_cast<std::uint32_t>(num_map_tasks));
  AppendU32(frame.payload, static_cast<std::uint32_t>(num_reducers));
  AppendBytes(&frame.payload, worker);
  AppendBytes(&frame.payload, auth);
  return frame;
}

HelloMsg HelloMsg::Parse(const Frame& frame) {
  ExpectType(frame, FrameType::kHello);
  WireReader in(frame.payload);
  HelloMsg msg;
  msg.version = in.U32();
  msg.job = in.Bytes();
  msg.num_map_tasks = in.I32();
  msg.num_reducers = in.I32();
  msg.worker = in.Bytes();
  msg.auth = in.Bytes();
  in.ExpectExhausted("hello");
  return msg;
}

// --- Chunk -------------------------------------------------------------------

Frame ChunkMsg::ToFrame() const {
  Frame frame{FrameType::kChunk, {}};
  frame.payload.reserve(29 + bytes.size());
  AppendU32(frame.payload, static_cast<std::uint32_t>(map_task));
  AppendU32(frame.payload, static_cast<std::uint32_t>(reducer));
  frame.payload.push_back(sorted ? 1 : 0);
  AppendU64(frame.payload, records);
  AppendU64(frame.payload, seq);
  AppendBytes(&frame.payload, bytes);
  return frame;
}

ChunkMsg ChunkMsg::Parse(const Frame& frame) {
  ExpectType(frame, FrameType::kChunk);
  WireReader in(frame.payload);
  ChunkMsg msg;
  msg.map_task = in.I32();
  msg.reducer = in.I32();
  msg.sorted = in.U8() != 0;
  msg.records = in.U64();
  msg.seq = in.U64();
  msg.bytes = in.Bytes();
  in.ExpectExhausted("chunk");
  return msg;
}

// --- SegmentRef --------------------------------------------------------------

Frame SegmentRefMsg::ToFrame() const {
  Frame frame{FrameType::kSegmentRef, {}};
  AppendU32(frame.payload, static_cast<std::uint32_t>(map_task));
  AppendU32(frame.payload, static_cast<std::uint32_t>(reducer));
  frame.payload.push_back(sorted ? 1 : 0);
  AppendU64(frame.payload, records);
  AppendU64(frame.payload, offset);
  AppendU64(frame.payload, length);
  AppendU64(frame.payload, seq);
  AppendBytes(&frame.payload, path);
  return frame;
}

SegmentRefMsg SegmentRefMsg::Parse(const Frame& frame) {
  ExpectType(frame, FrameType::kSegmentRef);
  WireReader in(frame.payload);
  SegmentRefMsg msg;
  msg.map_task = in.I32();
  msg.reducer = in.I32();
  msg.sorted = in.U8() != 0;
  msg.records = in.U64();
  msg.offset = in.U64();
  msg.length = in.U64();
  msg.seq = in.U64();
  msg.path = in.Bytes();
  in.ExpectExhausted("segment_ref");
  return msg;
}

// --- SegmentData -------------------------------------------------------------

Frame SegmentDataMsg::ToFrame() const {
  Frame frame{FrameType::kSegmentData, {}};
  frame.payload.reserve(29 + bytes.size());
  AppendU32(frame.payload, static_cast<std::uint32_t>(map_task));
  AppendU32(frame.payload, static_cast<std::uint32_t>(reducer));
  frame.payload.push_back(sorted ? 1 : 0);
  AppendU64(frame.payload, records);
  AppendU64(frame.payload, seq);
  AppendBytes(&frame.payload, bytes);
  return frame;
}

SegmentDataMsg SegmentDataMsg::Parse(const Frame& frame) {
  ExpectType(frame, FrameType::kSegmentData);
  WireReader in(frame.payload);
  SegmentDataMsg msg;
  msg.map_task = in.I32();
  msg.reducer = in.I32();
  msg.sorted = in.U8() != 0;
  msg.records = in.U64();
  msg.seq = in.U64();
  msg.bytes = in.Bytes();
  in.ExpectExhausted("segment_data");
  return msg;
}

// --- MapDone -----------------------------------------------------------------

Frame MapDoneMsg::ToFrame() const {
  Frame frame{FrameType::kMapDone, {}};
  AppendU32(frame.payload, static_cast<std::uint32_t>(map_task));
  AppendU64(frame.payload, input_records);
  AppendU64(frame.payload, output_records);
  AppendU64(frame.payload, seq);
  return frame;
}

MapDoneMsg MapDoneMsg::Parse(const Frame& frame) {
  ExpectType(frame, FrameType::kMapDone);
  WireReader in(frame.payload);
  MapDoneMsg msg;
  msg.map_task = in.I32();
  msg.input_records = in.U64();
  msg.output_records = in.U64();
  msg.seq = in.U64();
  in.ExpectExhausted("map_done");
  return msg;
}

// --- Credit ------------------------------------------------------------------

Frame CreditMsg::ToFrame() const {
  Frame frame{FrameType::kCredit, {}};
  AppendU32(frame.payload, static_cast<std::uint32_t>(reducer));
  AppendU32(frame.payload, credits);
  return frame;
}

CreditMsg CreditMsg::Parse(const Frame& frame) {
  ExpectType(frame, FrameType::kCredit);
  WireReader in(frame.payload);
  CreditMsg msg;
  msg.reducer = in.I32();
  msg.credits = in.U32();
  in.ExpectExhausted("credit");
  return msg;
}

// --- Gone --------------------------------------------------------------------

Frame GoneMsg::ToFrame() const {
  Frame frame{FrameType::kGone, {}};
  AppendU32(frame.payload, static_cast<std::uint32_t>(reducer));
  return frame;
}

GoneMsg GoneMsg::Parse(const Frame& frame) {
  ExpectType(frame, FrameType::kGone);
  WireReader in(frame.payload);
  GoneMsg msg;
  msg.reducer = in.I32();
  in.ExpectExhausted("gone");
  return msg;
}

// --- Abort -------------------------------------------------------------------

Frame AbortMsg::ToFrame() const {
  Frame frame{FrameType::kAbort, {}};
  AppendBytes(&frame.payload, reason);
  return frame;
}

AbortMsg AbortMsg::Parse(const Frame& frame) {
  ExpectType(frame, FrameType::kAbort);
  WireReader in(frame.payload);
  AbortMsg msg;
  msg.reason = in.Bytes();
  in.ExpectExhausted("abort");
  return msg;
}

// --- Bye ---------------------------------------------------------------------

Frame ByeMsg::ToFrame() const {
  Frame frame{FrameType::kBye, {}};
  AppendU64(frame.payload, frames_sent);
  AppendU64(frame.payload, bytes_sent);
  AppendU64(frame.payload, retransmits);
  AppendU64(frame.payload, reconnects);
  AppendU64(frame.payload, stall_nanos);
  AppendU64(frame.payload, ack_replays);
  AppendU64(frame.payload, ack_replayed_frames);
  AppendU64(frame.payload, blocks_sent);
  AppendU64(frame.payload, blocks_compressed);
  AppendU64(frame.payload, sendfile_frames);
  AppendU64(frame.payload, sendfile_bytes);
  return frame;
}

ByeMsg ByeMsg::Parse(const Frame& frame) {
  ExpectType(frame, FrameType::kBye);
  WireReader in(frame.payload);
  ByeMsg msg;
  msg.frames_sent = in.U64();
  msg.bytes_sent = in.U64();
  msg.retransmits = in.U64();
  msg.reconnects = in.U64();
  msg.stall_nanos = in.U64();
  msg.ack_replays = in.U64();
  msg.ack_replayed_frames = in.U64();
  msg.blocks_sent = in.U64();
  msg.blocks_compressed = in.U64();
  msg.sendfile_frames = in.U64();
  msg.sendfile_bytes = in.U64();
  in.ExpectExhausted("bye");
  return msg;
}

// --- Ack ---------------------------------------------------------------------

Frame AckMsg::ToFrame() const {
  Frame frame{FrameType::kAck, {}};
  AppendU64(frame.payload, upto);
  return frame;
}

AckMsg AckMsg::Parse(const Frame& frame) {
  ExpectType(frame, FrameType::kAck);
  WireReader in(frame.payload);
  AckMsg msg;
  msg.upto = in.U64();
  in.ExpectExhausted("ack");
  return msg;
}

// --- CodedChunk / CodedAck ---------------------------------------------------

Frame CodedChunkMsg::ToFrame() const {
  Frame frame{FrameType::kCodedChunk, {}};
  AppendU32(frame.payload, group);
  AppendU32(frame.payload, sender);
  AppendU64(frame.payload, seq);
  AppendU32(frame.payload, static_cast<std::uint32_t>(parts.size()));
  for (const CodedPart& part : parts) {
    AppendU32(frame.payload, part.node);
    AppendU32(frame.payload, part.part_len);
  }
  AppendBytes(&frame.payload, bytes);
  return frame;
}

CodedChunkMsg CodedChunkMsg::Parse(const Frame& frame) {
  ExpectType(frame, FrameType::kCodedChunk);
  WireReader in(frame.payload);
  CodedChunkMsg msg;
  msg.group = in.U32();
  msg.sender = in.U32();
  msg.seq = in.U64();
  const std::uint32_t part_count = in.U32();
  if (part_count == 0) {
    throw WireError("coded chunk: empty part list");
  }
  if (part_count > kMaxCodedParts) {
    throw WireError("coded chunk: part count " + std::to_string(part_count) +
                    " exceeds cap " + std::to_string(kMaxCodedParts));
  }
  msg.parts.reserve(part_count);
  for (std::uint32_t i = 0; i < part_count; ++i) {
    CodedPart part;
    part.node = in.U32();
    part.part_len = in.U32();
    if (i > 0 && part.node <= msg.parts.back().node) {
      throw WireError("coded chunk: receiver list not strictly increasing");
    }
    msg.parts.push_back(part);
  }
  msg.bytes = in.Bytes();
  in.ExpectExhausted("coded_chunk");
  std::uint32_t longest = 0;
  for (const CodedPart& part : msg.parts) {
    if (part.part_len > msg.bytes.size()) {
      throw WireError("coded chunk: part length " +
                      std::to_string(part.part_len) + " exceeds payload " +
                      std::to_string(msg.bytes.size()));
    }
    if (part.part_len > longest) longest = part.part_len;
  }
  if (longest != msg.bytes.size()) {
    throw WireError("coded chunk: payload length " +
                    std::to_string(msg.bytes.size()) +
                    " does not match longest part " + std::to_string(longest));
  }
  return msg;
}

Frame CodedAckMsg::ToFrame() const {
  Frame frame{FrameType::kCodedAck, {}};
  AppendU64(frame.payload, upto);
  AppendU64(frame.payload, decoded);
  return frame;
}

CodedAckMsg CodedAckMsg::Parse(const Frame& frame) {
  ExpectType(frame, FrameType::kCodedAck);
  WireReader in(frame.payload);
  CodedAckMsg msg;
  msg.upto = in.U64();
  msg.decoded = in.U64();
  in.ExpectExhausted("coded_ack");
  return msg;
}

// --- Block / BlockAck --------------------------------------------------------

Frame BlockMsg::ToFrame() const {
  Frame frame{FrameType::kBlock, {}};
  AppendU64(frame.payload, block_seq);
  frame.payload.push_back(static_cast<char>(codec));
  AppendU32(frame.payload, raw_crc);
  AppendU32(frame.payload, count);
  AppendBytes(&frame.payload, body);
  return frame;
}

BlockMsg BlockMsg::Parse(const Frame& frame) {
  ExpectType(frame, FrameType::kBlock);
  WireReader in(frame.payload);
  BlockMsg msg;
  msg.block_seq = in.U64();
  msg.codec = in.U8();
  if (msg.codec != kBlockCodecRaw && msg.codec != kBlockCodecOz) {
    throw WireError("block: unknown codec byte " + std::to_string(msg.codec));
  }
  msg.raw_crc = in.U32();
  msg.count = in.U32();
  if (msg.count == 0) {
    throw WireError("block: empty sub-frame list");
  }
  if (msg.count > kMaxBlockFrames) {
    throw WireError("block: sub-frame count " + std::to_string(msg.count) +
                    " exceeds cap " + std::to_string(kMaxBlockFrames));
  }
  msg.body = in.Bytes();
  in.ExpectExhausted("block");
  // Even the smallest sub-frame entry is 5 bytes of header; a body too
  // short for its advertised count is a lie the sub-frame walk would only
  // discover after a decompression attempt.
  if (msg.codec == kBlockCodecRaw && msg.body.size() < 5ull * msg.count) {
    throw WireError("block: body " + std::to_string(msg.body.size()) +
                    " bytes too short for " + std::to_string(msg.count) +
                    " sub-frames");
  }
  if (msg.body.empty()) {
    throw WireError("block: empty body");
  }
  return msg;
}

Frame BlockAckMsg::ToFrame() const {
  Frame frame{FrameType::kBlockAck, {}};
  AppendU64(frame.payload, upto_block);
  AppendU64(frame.payload, frames);
  return frame;
}

BlockAckMsg BlockAckMsg::Parse(const Frame& frame) {
  ExpectType(frame, FrameType::kBlockAck);
  WireReader in(frame.payload);
  BlockAckMsg msg;
  msg.upto_block = in.U64();
  msg.frames = in.U64();
  in.ExpectExhausted("block_ack");
  return msg;
}

// --- Register ----------------------------------------------------------------

Frame RegisterMsg::ToFrame() const {
  Frame frame{FrameType::kRegister, {}};
  AppendBytes(&frame.payload, worker);
  AppendBytes(&frame.payload, endpoint);
  frame.payload.push_back(static_cast<char>(role));
  AppendBytes(&frame.payload, auth);
  return frame;
}

RegisterMsg RegisterMsg::Parse(const Frame& frame) {
  ExpectType(frame, FrameType::kRegister);
  WireReader in(frame.payload);
  RegisterMsg msg;
  msg.worker = in.Bytes();
  msg.endpoint = in.Bytes();
  const std::uint8_t role = in.U8();
  if (role > static_cast<std::uint8_t>(WireRole::kFrontend)) {
    throw WireError("wire: unknown worker role " + std::to_string(role));
  }
  msg.role = static_cast<WireRole>(role);
  msg.auth = in.Bytes();
  in.ExpectExhausted("register");
  return msg;
}

// --- Heartbeat ---------------------------------------------------------------

Frame HeartbeatMsg::ToFrame() const {
  if (load.size() > kMaxLoadEntries) {
    throw WireError("wire: heartbeat load vector has " +
                    std::to_string(load.size()) + " entries (cap " +
                    std::to_string(kMaxLoadEntries) + ")");
  }
  Frame frame{FrameType::kHeartbeat, {}};
  AppendBytes(&frame.payload, worker);
  AppendU64(frame.payload, generation);
  AppendU64(frame.payload, seq);
  AppendU32(frame.payload, static_cast<std::uint32_t>(load.size()));
  for (std::uint32_t v : load) AppendU32(frame.payload, v);
  return frame;
}

HeartbeatMsg HeartbeatMsg::Parse(const Frame& frame) {
  ExpectType(frame, FrameType::kHeartbeat);
  WireReader in(frame.payload);
  HeartbeatMsg msg;
  msg.worker = in.Bytes();
  msg.generation = in.U64();
  msg.seq = in.U64();
  const std::uint32_t n = in.U32();
  if (n > kMaxLoadEntries) {
    throw WireError("wire: heartbeat load vector claims " + std::to_string(n) +
                    " entries (cap " + std::to_string(kMaxLoadEntries) + ")");
  }
  msg.load.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) msg.load.push_back(in.U32());
  in.ExpectExhausted("heartbeat");
  return msg;
}

// --- Membership --------------------------------------------------------------

Frame MembershipMsg::ToFrame() const {
  Frame frame{FrameType::kMembership, {}};
  AppendU64(frame.payload, epoch);
  AppendU32(frame.payload, static_cast<std::uint32_t>(entries.size()));
  for (const Entry& e : entries) {
    AppendBytes(&frame.payload, e.worker);
    AppendBytes(&frame.payload, e.endpoint);
    frame.payload.push_back(static_cast<char>(e.role));
    AppendU64(frame.payload, e.generation);
    frame.payload.push_back(e.alive ? 1 : 0);
  }
  AppendU64(frame.payload, leader_epoch);
  AppendU32(frame.payload, leader);
  return frame;
}

MembershipMsg MembershipMsg::Parse(const Frame& frame) {
  ExpectType(frame, FrameType::kMembership);
  WireReader in(frame.payload);
  MembershipMsg msg;
  msg.epoch = in.U64();
  // No reserve(n): a corrupt count would pre-allocate gigabytes; the
  // bounds-checked reads below cap real work at the payload size.
  const std::uint32_t n = in.U32();
  for (std::uint32_t i = 0; i < n; ++i) {
    Entry e;
    e.worker = in.Bytes();
    e.endpoint = in.Bytes();
    const std::uint8_t role = in.U8();
    if (role > static_cast<std::uint8_t>(WireRole::kFrontend)) {
      throw WireError("wire: unknown worker role " + std::to_string(role));
    }
    e.role = static_cast<WireRole>(role);
    e.generation = in.U64();
    e.alive = in.U8() != 0;
    msg.entries.push_back(std::move(e));
  }
  msg.leader_epoch = in.U64();
  msg.leader = in.U32();
  in.ExpectExhausted("membership");
  return msg;
}

// --- LogAppend ---------------------------------------------------------------

Frame LogAppendMsg::ToFrame() const {
  Frame frame{FrameType::kLogAppend, {}};
  frame.payload.reserve(25 + record.size() + auth.size());
  AppendU64(frame.payload, epoch);
  AppendU64(frame.payload, index);
  frame.payload.push_back(static_cast<char>(record_type));
  AppendBytes(&frame.payload, record);
  AppendBytes(&frame.payload, auth);
  return frame;
}

LogAppendMsg LogAppendMsg::Parse(const Frame& frame) {
  ExpectType(frame, FrameType::kLogAppend);
  WireReader in(frame.payload);
  LogAppendMsg msg;
  msg.epoch = in.U64();
  msg.index = in.U64();
  msg.record_type = in.U8();
  msg.record = in.Bytes();
  msg.auth = in.Bytes();
  in.ExpectExhausted("log_append");
  return msg;
}

// --- LogAck ------------------------------------------------------------------

Frame LogAckMsg::ToFrame() const {
  Frame frame{FrameType::kLogAck, {}};
  AppendU32(frame.payload, replica);
  AppendU64(frame.payload, epoch);
  AppendU64(frame.payload, index);
  AppendBytes(&frame.payload, auth);
  return frame;
}

LogAckMsg LogAckMsg::Parse(const Frame& frame) {
  ExpectType(frame, FrameType::kLogAck);
  WireReader in(frame.payload);
  LogAckMsg msg;
  msg.replica = in.U32();
  msg.epoch = in.U64();
  msg.index = in.U64();
  msg.auth = in.Bytes();
  in.ExpectExhausted("log_ack");
  return msg;
}

// --- SnapshotOffer -----------------------------------------------------------

Frame SnapshotOfferMsg::ToFrame() const {
  Frame frame{FrameType::kSnapshotOffer, {}};
  frame.payload.reserve(28 + bytes.size() + auth.size());
  AppendU64(frame.payload, epoch);
  AppendU64(frame.payload, index);
  AppendU32(frame.payload, crc);
  AppendBytes(&frame.payload, bytes);
  AppendBytes(&frame.payload, auth);
  return frame;
}

SnapshotOfferMsg SnapshotOfferMsg::Parse(const Frame& frame) {
  ExpectType(frame, FrameType::kSnapshotOffer);
  WireReader in(frame.payload);
  SnapshotOfferMsg msg;
  msg.epoch = in.U64();
  msg.index = in.U64();
  msg.crc = in.U32();
  msg.bytes = in.Bytes();
  msg.auth = in.Bytes();
  in.ExpectExhausted("snapshot_offer");
  return msg;
}

// --- Vote --------------------------------------------------------------------

Frame VoteMsg::ToFrame() const {
  Frame frame{FrameType::kVote, {}};
  AppendU32(frame.payload, replica);
  AppendU64(frame.payload, epoch);
  AppendU64(frame.payload, index);
  AppendBytes(&frame.payload, auth);
  return frame;
}

VoteMsg VoteMsg::Parse(const Frame& frame) {
  ExpectType(frame, FrameType::kVote);
  WireReader in(frame.payload);
  VoteMsg msg;
  msg.replica = in.U32();
  msg.epoch = in.U64();
  msg.index = in.U64();
  msg.auth = in.Bytes();
  in.ExpectExhausted("vote");
  return msg;
}

// --- LeaderClaim -------------------------------------------------------------

Frame LeaderClaimMsg::ToFrame() const {
  Frame frame{FrameType::kLeaderClaim, {}};
  AppendU32(frame.payload, replica);
  AppendU64(frame.payload, epoch);
  AppendBytes(&frame.payload, endpoint);
  AppendBytes(&frame.payload, auth);
  return frame;
}

LeaderClaimMsg LeaderClaimMsg::Parse(const Frame& frame) {
  ExpectType(frame, FrameType::kLeaderClaim);
  WireReader in(frame.payload);
  LeaderClaimMsg msg;
  msg.replica = in.U32();
  msg.epoch = in.U64();
  msg.endpoint = in.Bytes();
  msg.auth = in.Bytes();
  in.ExpectExhausted("leader_claim");
  return msg;
}

// --- SnapshotAnnounce --------------------------------------------------------

Frame SnapshotAnnounceMsg::ToFrame() const {
  Frame frame{FrameType::kSnapshotAnnounce, {}};
  AppendBytes(&frame.payload, job);
  AppendU64(frame.payload, version);
  AppendU64(frame.payload, watermark);
  AppendU64(frame.payload, bytes);
  AppendU32(frame.payload, crc);
  return frame;
}

SnapshotAnnounceMsg SnapshotAnnounceMsg::Parse(const Frame& frame) {
  ExpectType(frame, FrameType::kSnapshotAnnounce);
  WireReader in(frame.payload);
  SnapshotAnnounceMsg msg;
  msg.job = in.Bytes();
  msg.version = in.U64();
  msg.watermark = in.U64();
  msg.bytes = in.U64();
  msg.crc = in.U32();
  in.ExpectExhausted("snapshot_announce");
  return msg;
}

// --- SnapshotFetch -----------------------------------------------------------

Frame SnapshotFetchMsg::ToFrame() const {
  Frame frame{FrameType::kSnapshotFetch, {}};
  frame.payload.reserve(21 + job.size() + bytes.size());
  AppendBytes(&frame.payload, job);
  AppendU64(frame.payload, version);
  frame.payload.push_back(reply ? 1 : 0);
  AppendU32(frame.payload, crc);
  AppendBytes(&frame.payload, bytes);
  return frame;
}

SnapshotFetchMsg SnapshotFetchMsg::Parse(const Frame& frame) {
  ExpectType(frame, FrameType::kSnapshotFetch);
  WireReader in(frame.payload);
  SnapshotFetchMsg msg;
  msg.job = in.Bytes();
  msg.version = in.U64();
  msg.reply = in.U8() != 0;
  msg.crc = in.U32();
  msg.bytes = in.Bytes();
  in.ExpectExhausted("snapshot_fetch");
  return msg;
}

// --- Query -------------------------------------------------------------------

const char* QueryStatusName(QueryStatus status) noexcept {
  switch (status) {
    case QueryStatus::kOk: return "ok";
    case QueryStatus::kNotFound: return "not_found";
    case QueryStatus::kStale: return "stale";
    case QueryStatus::kThrottled: return "throttled";
    case QueryStatus::kBadRequest: return "bad_request";
  }
  return "unknown";
}

Frame QueryMsg::ToFrame() const {
  Frame frame{FrameType::kQuery, {}};
  AppendU64(frame.payload, id);
  AppendBytes(&frame.payload, tenant);
  frame.payload.push_back(static_cast<char>(op));
  AppendBytes(&frame.payload, key);
  AppendBytes(&frame.payload, end_key);
  AppendU32(frame.payload, limit);
  AppendU64(frame.payload, staleness_budget);
  return frame;
}

QueryMsg QueryMsg::Parse(const Frame& frame) {
  ExpectType(frame, FrameType::kQuery);
  WireReader in(frame.payload);
  QueryMsg msg;
  msg.id = in.U64();
  msg.tenant = in.Bytes();
  const std::uint8_t op = in.U8();
  if (op > static_cast<std::uint8_t>(QueryOp::kScan)) {
    throw WireError("wire: unknown query op " + std::to_string(op));
  }
  msg.op = static_cast<QueryOp>(op);
  msg.key = in.Bytes();
  msg.end_key = in.Bytes();
  msg.limit = in.U32();
  msg.staleness_budget = in.U64();
  in.ExpectExhausted("query");
  return msg;
}

// --- QueryResult -------------------------------------------------------------

Frame QueryResultMsg::ToFrame() const {
  Frame frame{FrameType::kQueryResult, {}};
  AppendU64(frame.payload, id);
  frame.payload.push_back(static_cast<char>(status));
  AppendU64(frame.payload, version);
  AppendU64(frame.payload, watermark);
  AppendU64(frame.payload, lag);
  AppendU32(frame.payload, static_cast<std::uint32_t>(rows.size()));
  for (const auto& [key, value] : rows) {
    AppendBytes(&frame.payload, key);
    AppendBytes(&frame.payload, value);
  }
  AppendBytes(&frame.payload, error);
  return frame;
}

QueryResultMsg QueryResultMsg::Parse(const Frame& frame) {
  ExpectType(frame, FrameType::kQueryResult);
  WireReader in(frame.payload);
  QueryResultMsg msg;
  msg.id = in.U64();
  const std::uint8_t status = in.U8();
  if (status > static_cast<std::uint8_t>(QueryStatus::kBadRequest)) {
    throw WireError("wire: unknown query status " + std::to_string(status));
  }
  msg.status = static_cast<QueryStatus>(status);
  msg.version = in.U64();
  msg.watermark = in.U64();
  msg.lag = in.U64();
  // No reserve(n): a corrupt count would pre-allocate gigabytes; the
  // bounds-checked reads below cap real work at the payload size.
  const std::uint32_t n = in.U32();
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string key = in.Bytes();
    std::string value = in.Bytes();
    msg.rows.emplace_back(std::move(key), std::move(value));
  }
  msg.error = in.Bytes();
  in.ExpectExhausted("query_result");
  return msg;
}

}  // namespace opmr::net
