// Typed shuffle-protocol messages carried in frame payloads.
//
// Encoding is the repo's little-endian run idiom (u32/u64 + length-prefixed
// byte strings).  Parsing goes through WireReader, a bounds-checked cursor:
// a payload that passed the frame CRC but is semantically truncated (or a
// CRC collision) surfaces as a structured WireError, never as UB.
//
// Protocol sketch (one mapper-group connection per job):
//
//   client (map side)                server (reduce side)
//   ----------------------------------------------------------
//   Hello{version, job, reducers} ->
//   Chunk / SegmentRef / SegmentData ->     ... applied to ShuffleService
//   MapDone{task, stats}           ->
//                                  <- Credit{reducer, n}   (back-pressure)
//                                  <- Gone{reducer}        (fail-fast)
//                                  <- Abort{reason}
//   Bye{wire stats} or Abort       ->
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "net/frame.h"

namespace opmr::net {

class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Bounds-checked cursor over a frame payload.
class WireReader {
 public:
  explicit WireReader(const std::string& payload) : body_(payload) {}

  [[nodiscard]] std::uint8_t U8();
  [[nodiscard]] std::uint32_t U32();
  [[nodiscard]] std::uint64_t U64();
  [[nodiscard]] std::int32_t I32();
  // Length-prefixed (u32) byte string.
  [[nodiscard]] std::string Bytes();

  // Throws WireError unless the cursor consumed the payload exactly.
  void ExpectExhausted(const char* what) const;

 private:
  const char* Take(std::size_t n);

  const std::string& body_;
  std::size_t pos_ = 0;
};

inline constexpr std::uint32_t kProtocolVersion = 1;

struct HelloMsg {
  std::uint32_t version = kProtocolVersion;
  std::string job;
  std::int32_t num_map_tasks = 0;
  std::int32_t num_reducers = 0;

  [[nodiscard]] Frame ToFrame() const;
  static HelloMsg Parse(const Frame& frame);
};

struct ChunkMsg {
  std::int32_t map_task = -1;
  std::int32_t reducer = -1;
  bool sorted = false;
  std::uint64_t records = 0;
  std::string bytes;

  [[nodiscard]] Frame ToFrame() const;
  static ChunkMsg Parse(const Frame& frame);
};

// Descriptor-only registration: valid when both peers see the same
// filesystem (loopback transport / same-host worker groups).
struct SegmentRefMsg {
  std::int32_t map_task = -1;
  std::int32_t reducer = -1;
  bool sorted = false;
  std::uint64_t records = 0;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  std::string path;

  [[nodiscard]] Frame ToFrame() const;
  static SegmentRefMsg Parse(const Frame& frame);
};

// Segment payload shipped inline: the receiver lands it in its own spill
// file and registers the local copy (remote peers, no shared filesystem).
struct SegmentDataMsg {
  std::int32_t map_task = -1;
  std::int32_t reducer = -1;
  bool sorted = false;
  std::uint64_t records = 0;
  std::string bytes;

  [[nodiscard]] Frame ToFrame() const;
  static SegmentDataMsg Parse(const Frame& frame);
};

struct MapDoneMsg {
  std::int32_t map_task = -1;
  std::uint64_t input_records = 0;
  std::uint64_t output_records = 0;

  [[nodiscard]] Frame ToFrame() const;
  static MapDoneMsg Parse(const Frame& frame);
};

struct CreditMsg {
  std::int32_t reducer = -1;
  std::uint32_t credits = 1;

  [[nodiscard]] Frame ToFrame() const;
  static CreditMsg Parse(const Frame& frame);
};

struct GoneMsg {
  std::int32_t reducer = -1;

  [[nodiscard]] Frame ToFrame() const;
  static GoneMsg Parse(const Frame& frame);
};

struct AbortMsg {
  std::string reason;

  [[nodiscard]] Frame ToFrame() const;
  static AbortMsg Parse(const Frame& frame);
};

// Orderly close.  Carries the sender's wire counters so a job report
// assembled on the receiving side can include client-only events
// (retransmits, reconnects, injected stall time).
struct ByeMsg {
  std::uint64_t frames_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t stall_nanos = 0;

  [[nodiscard]] Frame ToFrame() const;
  static ByeMsg Parse(const Frame& frame);
};

}  // namespace opmr::net
