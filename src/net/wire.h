// Typed shuffle-protocol messages carried in frame payloads.
//
// Encoding is the repo's little-endian run idiom (u32/u64 + length-prefixed
// byte strings).  Parsing goes through WireReader, a bounds-checked cursor:
// a payload that passed the frame CRC but is semantically truncated (or a
// CRC collision) surfaces as a structured WireError, never as UB.
//
// Protocol sketch (one mapper-group connection per job):
//
//   client (map side)                server (reduce side)
//   ----------------------------------------------------------
//   Hello{version, job, reducers} ->
//   Chunk / SegmentRef / SegmentData ->     ... applied to ShuffleService
//   MapDone{task, stats}           ->
//                                  <- Credit{reducer, n}   (back-pressure)
//                                  <- Gone{reducer}        (fail-fast)
//                                  <- Abort{reason}
//   Bye{wire stats} or Abort       ->
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/frame.h"

namespace opmr::net {

class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Bounds-checked cursor over a frame payload.
class WireReader {
 public:
  explicit WireReader(const std::string& payload) : body_(payload) {}

  [[nodiscard]] std::uint8_t U8();
  [[nodiscard]] std::uint32_t U32();
  [[nodiscard]] std::uint64_t U64();
  [[nodiscard]] std::int32_t I32();
  // Length-prefixed (u32) byte string.
  [[nodiscard]] std::string Bytes();

  // Throws WireError unless the cursor consumed the payload exactly.
  void ExpectExhausted(const char* what) const;

 private:
  const char* Take(std::size_t n);

  const std::string& body_;
  std::size_t pos_ = 0;
};

// v7 adds the data-plane block frames (Block / BlockAck, src/dataplane):
// many data frames coalesced into one wire frame with a per-block codec
// byte.  A v6 parser rejects the kBlock type byte outright, so the version
// bump is load-bearing.
// v6 appends a trailing load vector to Heartbeat (slots held, queue depth
// — the placement plane's load signal, src/placement).  A v5 parser
// rejects the longer payload, so the version bump is load-bearing.
// v5 adds the coded-shuffle frames (CodedChunk / CodedAck, src/coded)
// and switches the frame checksum from CRC-32 (IEEE) to hardware-friendly
// CRC-32C — a v4 peer's frames fail the CRC check, so the version bump is
// load-bearing.
// v4 added the coordinator-replication frames (LogAppend / LogAck /
// SnapshotOffer / Vote / LeaderClaim) and the Membership leader fields
// (leader replica id + leader epoch) used for stale-leader fencing.
// v3 added the serving-plane frames (SnapshotAnnounce / SnapshotFetch /
// Query / QueryResult) and the kFrontend worker role.
inline constexpr std::uint32_t kProtocolVersion = 7;

// Constant-time string equality for shared-secret checks (Register /
// Hello auth).  An early-exit comparison leaks, through response timing,
// how long a prefix of the guess matched; this one always walks every byte
// of `guess` and folds the differences into one accumulator.  The length
// comparison is not hidden — frame sizes reveal it anyway.
[[nodiscard]] bool ConstantTimeEquals(const std::string& secret,
                                      const std::string& guess) noexcept;

// Worker roles carried on the wire (Register / Membership).  Kept apart
// from the engine's WorkerRole so src/net stays dependency-free.
// kFrontend is a read-only snapshot replica: it registers with the
// coordinator for observability but holds no map/reduce job slots.
enum class WireRole : std::uint8_t {
  kMap = 0,
  kReduce = 1,
  kFrontend = 2,
};

struct HelloMsg {
  std::uint32_t version = kProtocolVersion;
  std::string job;
  std::int32_t num_map_tasks = 0;
  std::int32_t num_reducers = 0;
  // Cluster-mode identity: which registered worker this connection belongs
  // to (empty for the single-client local modes) and the shared secret the
  // serving side authenticates against (empty = no auth configured).
  std::string worker;
  std::string auth;

  [[nodiscard]] Frame ToFrame() const;
  static HelloMsg Parse(const Frame& frame);
};

// Every data frame (Chunk / SegmentRef / SegmentData / MapDone) carries a
// per-sender sequence number `seq`, 1-based and monotonic across
// reconnects.  The receiver applies frames idempotently (a seq at or below
// its cumulative applied watermark is skipped) and acknowledges with Ack
// frames, so a sender can replay its delivered-but-unacked window after a
// peer crash without ever duplicating applied data.  seq == 0 marks an
// unsequenced frame (applied unconditionally, never acked).
struct ChunkMsg {
  std::int32_t map_task = -1;
  std::int32_t reducer = -1;
  bool sorted = false;
  std::uint64_t records = 0;
  std::uint64_t seq = 0;
  std::string bytes;

  [[nodiscard]] Frame ToFrame() const;
  static ChunkMsg Parse(const Frame& frame);
};

// Descriptor-only registration: valid when both peers see the same
// filesystem (loopback transport / same-host worker groups).
struct SegmentRefMsg {
  std::int32_t map_task = -1;
  std::int32_t reducer = -1;
  bool sorted = false;
  std::uint64_t records = 0;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  std::uint64_t seq = 0;
  std::string path;

  [[nodiscard]] Frame ToFrame() const;
  static SegmentRefMsg Parse(const Frame& frame);
};

// Segment payload shipped inline: the receiver lands it in its own spill
// file and registers the local copy (remote peers, no shared filesystem).
struct SegmentDataMsg {
  std::int32_t map_task = -1;
  std::int32_t reducer = -1;
  bool sorted = false;
  std::uint64_t records = 0;
  std::uint64_t seq = 0;
  std::string bytes;

  [[nodiscard]] Frame ToFrame() const;
  static SegmentDataMsg Parse(const Frame& frame);
};

struct MapDoneMsg {
  std::int32_t map_task = -1;
  std::uint64_t input_records = 0;
  std::uint64_t output_records = 0;
  std::uint64_t seq = 0;

  [[nodiscard]] Frame ToFrame() const;
  static MapDoneMsg Parse(const Frame& frame);
};

struct CreditMsg {
  std::int32_t reducer = -1;
  std::uint32_t credits = 1;

  [[nodiscard]] Frame ToFrame() const;
  static CreditMsg Parse(const Frame& frame);
};

// Cumulative receipt acknowledgement: every sequenced data frame with
// seq <= `upto` has been applied by the receiver, so the sender may prune
// its replay window up to that point.
struct AckMsg {
  std::uint64_t upto = 0;

  [[nodiscard]] Frame ToFrame() const;
  static AckMsg Parse(const Frame& frame);
};

struct GoneMsg {
  std::int32_t reducer = -1;

  [[nodiscard]] Frame ToFrame() const;
  static GoneMsg Parse(const Frame& frame);
};

struct AbortMsg {
  std::string reason;

  [[nodiscard]] Frame ToFrame() const;
  static AbortMsg Parse(const Frame& frame);
};

// Orderly close.  Carries the sender's wire counters so a job report
// assembled on the receiving side can include client-only events
// (retransmits, reconnects, injected stall time).
struct ByeMsg {
  std::uint64_t frames_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t stall_nanos = 0;
  std::uint64_t ack_replays = 0;          // ack-window replay events
  std::uint64_t ack_replayed_frames = 0;  // frames resent by those replays
  // Data-plane counters (v7+): block batching and kernel-assisted sends
  // happen on the client's wire, so only the client can report them.
  std::uint64_t blocks_sent = 0;
  std::uint64_t blocks_compressed = 0;
  std::uint64_t sendfile_frames = 0;
  std::uint64_t sendfile_bytes = 0;

  [[nodiscard]] Frame ToFrame() const;
  static ByeMsg Parse(const Frame& frame);
};

// --- Coded-shuffle messages (src/coded) --------------------------------------
//
// Protocol sketch (v5): a map-side CodedEncoder ships each multicast
// group's XOR-combined intermediate parts as CodedChunk frames through the
// same per-sender sequence space as Chunk/MapDone, so the exactly-once
// machinery (cumulative acks, ack-window replay, dedup watermark) covers
// them unchanged.  The reduce-side CodedDecoder peels every frame for all
// r+1 receivers in the group using locally recomputed intermediates and
// answers with CodedAck.

// Upper bound on the per-frame part list: a part per receiver in one
// multicast group, so anything past a few dozen is a lying length field.
inline constexpr std::uint32_t kMaxCodedParts = 1024;

// One receiver's slice of a coded payload: reducer `node` recovers a part
// of `part_len` bytes from this frame (the payload is the XOR of all
// parts, each zero-padded to the longest).
struct CodedPart {
  std::uint32_t node = 0;      // receiving reducer / logical node id
  std::uint32_t part_len = 0;  // bytes of this receiver's part
};

// Sender → group: one XOR-coded multicast payload.  `group` indexes the
// deterministic CodedPlan both sides derived from the same placement;
// `sender` is the logical node whose parts are XOR-combined here.  Parse
// rejects lying fields: an empty or oversized part list, a part length
// past the payload, a payload longer than its longest part, or an
// unsorted receiver list.
struct CodedChunkMsg {
  std::uint32_t group = 0;
  std::uint32_t sender = 0;
  std::uint64_t seq = 0;
  std::vector<CodedPart> parts;
  std::string bytes;  // XOR of zero-padded parts; size == max part_len

  [[nodiscard]] Frame ToFrame() const;
  static CodedChunkMsg Parse(const Frame& frame);
};

// Reduce side → sender: cumulative ack for sequenced frames (same meaning
// as AckMsg::upto) plus the receiver's running decoded-unit count for
// observability.
struct CodedAckMsg {
  std::uint64_t upto = 0;
  std::uint64_t decoded = 0;

  [[nodiscard]] Frame ToFrame() const;
  static CodedAckMsg Parse(const Frame& frame);
};

// --- Data-plane block messages (src/dataplane) -------------------------------
//
// Protocol sketch (v7): the event-loop transport coalesces consecutive
// data frames (Chunk / SegmentRef / SegmentData / MapDone / CodedChunk)
// into one Block frame — one syscall, one CRC, one optional compression
// pass — and the receiving transport unpacks it back into the inner frames
// before the shuffle layer ever sees them, so the exactly-once seq/ack
// machinery is untouched.  The body is a concatenation of
// [u8 type][u32 len][payload] sub-frame entries, optionally compressed as
// one unit with the OZ codec; `raw_crc` is CRC-32C over the UNCOMPRESSED
// body, so corruption introduced by a buggy codec round-trip is caught
// too, not just wire damage (the outer frame CRC already covers that).
// Blocks never nest.  The receiver answers with BlockAck for
// observability; the inner frames keep their own acks.

// Per-block codec byte.
inline constexpr std::uint8_t kBlockCodecRaw = 0;
inline constexpr std::uint8_t kBlockCodecOz = 1;

// Upper bound on sub-frames per block: the sender flushes far earlier, so
// anything past this is a lying count field, not a bigger block.
inline constexpr std::uint32_t kMaxBlockFrames = 4096;

// Sender → receiver: one block of coalesced data frames.  Parse rejects
// structural lies (zero or oversized count, unknown codec byte, empty
// body); the sub-frame walk — lengths past the body, unknown inner types,
// nested blocks, a count that disagrees with the body — is validated by
// dataplane::UnpackBlock, which also owns the codec.
struct BlockMsg {
  std::uint64_t block_seq = 0;  // per-connection, 1-based
  std::uint8_t codec = kBlockCodecRaw;
  std::uint32_t raw_crc = 0;  // CRC-32C of the uncompressed body
  std::uint32_t count = 0;    // sub-frames in the body
  std::string body;           // [u8 type][u32 len][payload]... (maybe OZ'd)

  [[nodiscard]] Frame ToFrame() const;
  static BlockMsg Parse(const Frame& frame);
};

// Receiver → sender: cumulative unpack progress (blocks fully unpacked,
// inner frames yielded).  Observability only — never gates the window.
struct BlockAckMsg {
  std::uint64_t upto_block = 0;
  std::uint64_t frames = 0;

  [[nodiscard]] Frame ToFrame() const;
  static BlockAckMsg Parse(const Frame& frame);
};

// --- Coordination-plane messages (src/coord) ---------------------------------

// Worker → coordinator: join (or rejoin) the worker-group registry.  The
// coordinator authenticates `auth` against its shared secret, assigns a
// fresh generation, and answers — to everyone registered — with a
// Membership broadcast.
struct RegisterMsg {
  std::string worker;    // stable worker id (unique per process)
  std::string endpoint;  // advertised host:port the worker serves on
  WireRole role = WireRole::kMap;
  std::string auth;      // shared secret (empty = no auth configured)

  [[nodiscard]] Frame ToFrame() const;
  static RegisterMsg Parse(const Frame& frame);
};

// Upper bound on the Heartbeat load vector: the well-known indices stop
// at kLoadQueueDepth and a few spares cover future signals, so anything
// past this is a lying length field, not a bigger worker.
inline constexpr std::uint32_t kMaxLoadEntries = 16;

// Well-known Heartbeat load-vector indices (see src/placement).  The
// vector may be shorter (missing entries read as 0) but never longer than
// kMaxLoadEntries.
inline constexpr std::size_t kLoadMapSlotsHeld = 0;
inline constexpr std::size_t kLoadReduceSlotsHeld = 1;
inline constexpr std::size_t kLoadQueueDepth = 2;

// Worker → coordinator: lease renewal.  `generation` must match the
// registry's current generation for the worker (a stale generation means
// the worker was evicted and re-registered elsewhere); `seq` is the
// 1-based heartbeat ordinal within the generation.  `load` (v6) is the
// worker's self-reported load vector — see the kLoad* indices above —
// appended after `seq` so the byte offsets the frame fuzz suite probes for
// the v2 fields stay where v2 put them.
struct HeartbeatMsg {
  std::string worker;
  std::uint64_t generation = 0;
  std::uint64_t seq = 0;
  std::vector<std::uint32_t> load;

  [[nodiscard]] Frame ToFrame() const;
  static HeartbeatMsg Parse(const Frame& frame);
};

// Coordinator → workers: the registry view.  Broadcast on every change
// (register, re-register, lease expiry).  `epoch` increments with each
// change, so receivers can ignore stale views.
struct MembershipMsg {
  struct Entry {
    std::string worker;
    std::string endpoint;
    WireRole role = WireRole::kMap;
    std::uint64_t generation = 0;
    bool alive = true;
  };

  std::uint64_t epoch = 0;
  std::vector<Entry> entries;
  // Trailing leadership fields (v4): fencing for replicated coordinators.
  // `leader_epoch` bumps on every leadership transition; receivers drop
  // views carrying a lower one.  0 = unreplicated coordinator, never
  // fenced.  Appended after the entries so the entry-count byte offsets
  // the frame fuzz suite probes stay where v2 put them.
  std::uint64_t leader_epoch = 0;
  std::uint32_t leader = 0;  // sender's replica id (0 = unreplicated)

  [[nodiscard]] Frame ToFrame() const;
  static MembershipMsg Parse(const Frame& frame);
};

// --- Coordinator-replication messages (src/replica) --------------------------
//
// Protocol sketch (leader = lowest live replica id, epoch bumps on every
// leadership transition; every leader-originated frame carries the epoch
// and receivers drop anything older):
//
//   leader                              standby
//   ----------------------------------------------------------
//   Vote{id, epoch, index}          <-> Vote{id, epoch, index}   (liveness)
//   LeaderClaim{id, epoch, endpoint} ->                    (on transition)
//   SnapshotOffer{epoch, index, image} ->                  (catch-up)
//   LogAppend{epoch, index, record}  ->
//                                    <- LogAck{id, epoch, applied}
//
// Every replication frame also carries `auth`, the group's shared secret
// (empty when auth is off).  Epoch fencing alone would let any process
// that can reach a replica's port depose the leader with a high-epoch
// LeaderClaim or inject registry mutations; replicas verify `auth` in
// constant time and drop unauthenticated peer frames.

// Leader → standby: one serialized changelog record.  `index` is 1-based
// and contiguous; a standby applies it iff index == applied + 1 and acks
// its cumulative applied index either way (a gap triggers a SnapshotOffer).
struct LogAppendMsg {
  std::uint64_t epoch = 0;       // leader epoch (stale-leader fence)
  std::uint64_t index = 0;       // changelog position of this record
  std::uint8_t record_type = 0;  // replica::LogRecordType
  std::string record;            // LogRecord payload bytes
  std::string auth;              // group shared secret (empty = auth off)

  [[nodiscard]] Frame ToFrame() const;
  static LogAppendMsg Parse(const Frame& frame);
};

// Standby → leader: cumulative replication acknowledgement.
struct LogAckMsg {
  std::uint32_t replica = 0;  // acking replica id
  std::uint64_t epoch = 0;    // highest leader epoch the sender has seen
  std::uint64_t index = 0;    // every record <= index is applied
  std::string auth;           // group shared secret (empty = auth off)

  [[nodiscard]] Frame ToFrame() const;
  static LogAckMsg Parse(const Frame& frame);
};

// Leader → standby: full registry image (the checkpoint-plane codec) for
// catch-up when the standby's applied index is behind the leader's log.
struct SnapshotOfferMsg {
  std::uint64_t epoch = 0;  // leader epoch (stale-leader fence)
  std::uint64_t index = 0;  // applied log index the image covers
  std::uint32_t crc = 0;    // CRC32 of `bytes`
  std::string bytes;        // SerializeCheckpointImage of the registry
  std::string auth;         // group shared secret (empty = auth off)

  [[nodiscard]] Frame ToFrame() const;
  static SnapshotOfferMsg Parse(const Frame& frame);
};

// Replica ↔ replica: liveness ping driving the deterministic election
// (lowest live replica id wins).  Carries the sender's highest seen epoch
// and applied index for observability; no reply is expected.
struct VoteMsg {
  std::uint32_t replica = 0;
  std::uint64_t epoch = 0;
  std::uint64_t index = 0;
  std::string auth;  // group shared secret (empty = auth off)

  [[nodiscard]] Frame ToFrame() const;
  static VoteMsg Parse(const Frame& frame);
};

// New-leader announcement (replica → replica on every transition) and
// standby → worker redirect (answering a Register sent to a non-leader).
struct LeaderClaimMsg {
  std::uint32_t replica = 0;  // claiming replica id
  std::uint64_t epoch = 0;    // the new leadership term
  std::string endpoint;       // leader's serving endpoint (for redirects)
  // Group shared secret (empty = auth off).  Redirects to workers carry
  // it too — only already-authenticated registrants receive them.
  std::string auth;

  [[nodiscard]] Frame ToFrame() const;
  static LeaderClaimMsg Parse(const Frame& frame);
};

// --- Serving-plane messages (src/serve) --------------------------------------
//
// Protocol sketch (publisher = job side, frontend = replica side):
//
//   frontend                          publisher
//   ----------------------------------------------------------
//   Hello{job}                     ->          (subscribe; preamble on
//                                               reconnect re-subscribes)
//                                  <- SnapshotAnnounce{version, ...}
//   SnapshotFetch{version}         ->
//                                  <- SnapshotFetch{version, reply, bytes}
//
//   client                            frontend
//   ----------------------------------------------------------
//   Query{id, tenant, op, ...}     ->
//                                  <- QueryResult{id, status, rows, ...}

// Publisher → subscribed frontends: snapshot `version` of `job` is
// committed and fetchable.  `watermark` is the ingest sequence the image
// reflects; `bytes`/`crc` let a replica pre-validate the fetched image.
struct SnapshotAnnounceMsg {
  std::string job;
  std::uint64_t version = 0;
  std::uint64_t watermark = 0;
  std::uint64_t bytes = 0;
  std::uint32_t crc = 0;

  [[nodiscard]] Frame ToFrame() const;
  static SnapshotAnnounceMsg Parse(const Frame& frame);
};

// Request (reply == false, bytes empty) and response (reply == true) share
// the frame type.  An empty `bytes` in a reply means the version is gone
// (pruned past retention) — a real serialized image is never empty.
struct SnapshotFetchMsg {
  std::string job;
  std::uint64_t version = 0;
  bool reply = false;
  std::uint32_t crc = 0;
  std::string bytes;

  [[nodiscard]] Frame ToFrame() const;
  static SnapshotFetchMsg Parse(const Frame& frame);
};

enum class QueryOp : std::uint8_t {
  kPoint = 0,  // exact-key lookup
  kTopK = 1,   // highest aggregates first
  kScan = 2,   // key range [key, end_key), capped at `limit`
};

enum class QueryStatus : std::uint8_t {
  kOk = 0,
  kNotFound = 1,    // point query, key absent from the view
  kStale = 2,       // replica lag exceeds the effective staleness budget
  kThrottled = 3,   // tenant token bucket empty
  kBadRequest = 4,  // malformed op / missing key
};

[[nodiscard]] const char* QueryStatusName(QueryStatus status) noexcept;

// Client → frontend.  `staleness_budget` tightens (never loosens) the
// tenant's configured budget; ~0 keeps the tenant default.
struct QueryMsg {
  std::uint64_t id = 0;  // client-chosen correlation id, echoed back
  std::string tenant;
  QueryOp op = QueryOp::kPoint;
  std::string key;
  std::string end_key;
  std::uint32_t limit = 0;
  std::uint64_t staleness_budget = ~0ull;

  [[nodiscard]] Frame ToFrame() const;
  static QueryMsg Parse(const Frame& frame);
};

// Frontend → client.  `version`/`watermark` identify the view the answer
// came from; `lag` is announced watermark minus served watermark, so a
// client can see exactly how stale its answer is.
struct QueryResultMsg {
  std::uint64_t id = 0;
  QueryStatus status = QueryStatus::kOk;
  std::uint64_t version = 0;
  std::uint64_t watermark = 0;
  std::uint64_t lag = 0;
  std::vector<std::pair<std::string, std::string>> rows;
  std::string error;

  [[nodiscard]] Frame ToFrame() const;
  static QueryResultMsg Parse(const Frame& frame);
};

}  // namespace opmr::net
