#include "net/loopback.h"

#include <utility>

namespace opmr::net {

// One direction of a connected pair: Send() invokes `sink_` (the peer's
// inbound handler), passing `reply_via_` (the peer's endpoint object) so
// the handler can answer.  A mutex per direction keeps handler invocations
// ordered the way a byte stream would be.  The transport owns both
// endpoints of every pair; `reply_via_` stays valid until Shutdown().
class LoopbackConnection final : public Connection {
 public:
  explicit LoopbackConnection(LoopbackTransport* owner) : owner_(owner) {}

  void Wire(FrameHandler sink, Connection* reply_via) {
    sink_ = std::move(sink);
    reply_via_ = reply_via;
  }

  void Send(const Frame& frame) override {
    {
      std::scoped_lock lock(state_mu_);
      if (closed_) throw TransportError("loopback connection is closed");
    }
    owner_->CountDelivered(frame);
    std::scoped_lock deliver(deliver_mu_);
    sink_(reply_via_, Frame{frame.type, frame.payload});
  }

  void Close() override {
    std::scoped_lock lock(state_mu_);
    closed_ = true;
  }

 private:
  LoopbackTransport* owner_;
  FrameHandler sink_;
  Connection* reply_via_ = nullptr;
  std::mutex deliver_mu_;
  std::mutex state_mu_;
  bool closed_ = false;
};

LoopbackTransport::LoopbackTransport(MetricRegistry* metrics)
    : frames_sent_(metrics->Get(kNetFramesSent)),
      frames_received_(metrics->Get(kNetFramesReceived)),
      bytes_sent_(metrics->Get(kNetBytesSent)),
      bytes_received_(metrics->Get(kNetBytesReceived)) {}

LoopbackTransport::~LoopbackTransport() { Shutdown(); }

void LoopbackTransport::Listen(FrameHandler handler) {
  std::scoped_lock lock(mu_);
  server_handler_ = std::move(handler);
}

std::shared_ptr<Connection> LoopbackTransport::Connect(FrameHandler on_reply) {
  std::scoped_lock lock(mu_);
  if (!server_handler_) {
    throw TransportError("loopback: Connect before Listen");
  }
  auto client_end = std::make_shared<LoopbackConnection>(this);
  auto server_end = std::make_shared<LoopbackConnection>(this);
  // Client sends land in the server handler with the server-side endpoint
  // as the reply path; replies on it land in on_reply with the client-side
  // endpoint (unused by convention, but symmetric).
  client_end->Wire(server_handler_, server_end.get());
  server_end->Wire(std::move(on_reply), client_end.get());
  connections_.push_back(client_end);
  connections_.push_back(std::move(server_end));
  return client_end;
}

void LoopbackTransport::Shutdown() {
  std::scoped_lock lock(mu_);
  for (auto& conn : connections_) conn->Close();
  connections_.clear();
}

void LoopbackTransport::CountDelivered(const Frame& frame) {
  const auto bytes =
      static_cast<std::int64_t>(kFrameHeaderBytes + frame.payload.size());
  frames_sent_->Increment();
  frames_received_->Increment();
  bytes_sent_->Add(bytes);
  bytes_received_->Add(bytes);
}

}  // namespace opmr::net
