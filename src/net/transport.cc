#include "net/transport.h"

#include <atomic>

namespace opmr::net {

namespace {
std::atomic<NetFaultHook*> g_net_fault_hook{nullptr};
}  // namespace

void SetNetFaultHook(NetFaultHook* hook) {
  g_net_fault_hook.store(hook, std::memory_order_release);
}

NetFaultHook* GetNetFaultHook() noexcept {
  return g_net_fault_hook.load(std::memory_order_acquire);
}

}  // namespace opmr::net
