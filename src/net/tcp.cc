#include "net/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "net/frame.h"

namespace opmr::net {

namespace {

std::int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SleepMs(double ms) {
  if (ms <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void SetSockBuf(int fd, int bytes) {
  if (bytes <= 0) return;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &bytes, sizeof(bytes));
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &bytes, sizeof(bytes));
}

// Writes the whole buffer; returns false on any socket error.  Each
// successful send(2) is charged to `syscalls` (when non-null) — the
// per-frame kernel-crossing count the ablation bench reports.
bool WriteAll(int fd, const std::string& data, Counter* syscalls = nullptr) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (syscalls != nullptr) syscalls->Increment();
    off += static_cast<std::size_t>(n);
  }
  return true;
}

struct Endpoint {
  std::string host;
  int port = 0;
};

Endpoint ParseEndpoint(const std::string& text) {
  const auto colon = text.rfind(':');
  if (colon == std::string::npos || colon + 1 == text.size()) {
    throw TransportError("tcp: malformed endpoint '" + text + "'");
  }
  Endpoint ep;
  ep.host = text.substr(0, colon);
  ep.port = std::stoi(text.substr(colon + 1));
  return ep;
}

int DialOnce(const Endpoint& ep, int sock_buf_bytes) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(ep.port));
  if (::inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw TransportError("tcp: bad address '" + ep.host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  SetNoDelay(fd);
  SetSockBuf(fd, sock_buf_bytes);
  return fd;
}

}  // namespace

// --- Server-side connection --------------------------------------------------

class TcpServerConnection final : public Connection {
 public:
  TcpServerConnection(TcpTransport* owner, int fd) : owner_(owner), fd_(fd) {}

  void Start(FrameHandler handler) {
    reader_ = std::thread([this, handler = std::move(handler)] {
      {
        std::scoped_lock lock(write_mu_);
        reader_tid_ = std::this_thread::get_id();
      }
      FrameDecoder decoder;
      char buf[1 << 16];
      for (;;) {
        if (SocketClosed()) break;  // a handler closed us from this thread
        const ssize_t n = ::read(fd_, buf, sizeof(buf));
        if (n <= 0) {
          if (n < 0 && errno == EINTR) continue;
          break;  // EOF or error: peer is gone (or we are shutting down)
        }
        owner_->recv_syscalls_->Increment();
        owner_->bytes_received_->Add(n);
        decoder.Feed(buf, static_cast<std::size_t>(n));
        Frame frame;
        DecodeStatus status;
        while ((status = decoder.Next(&frame)) == DecodeStatus::kOk) {
          owner_->frames_received_->Increment();
          handler(this, std::move(frame));
          if (SocketClosed()) break;  // don't drain past our own close
        }
        if (SocketClosed()) break;
        if (status != DecodeStatus::kNeedMore) {
          // Corrupt stream: the framing invariant is gone, drop the
          // connection (the client will reconnect and retransmit).
          break;
        }
      }
      CloseFd();
    });
  }

  void Send(const Frame& frame) override {
    const std::string bytes = EncodeFrame(frame);
    std::scoped_lock lock(write_mu_);
    if (closed_ || !WriteAll(fd_, bytes, owner_->send_syscalls_)) {
      closed_ = true;
      throw TransportError("tcp: peer connection lost");
    }
    owner_->frames_sent_->Increment();
    owner_->bytes_sent_->Add(static_cast<std::int64_t>(bytes.size()));
  }

  // External close only shutdown()s the socket: that wakes the reader out
  // of its blocked read(), and the reader — the sole thread allowed to
  // close() the fd while it is alive — releases it on the way out.  A
  // close() here would race the reader's read() on the same descriptor.
  //
  // When the caller IS the reader (a frame handler killing its own
  // connection, e.g. an injected peer crash), no concurrent read() can
  // exist, so the fd dies right here.  That close turns the peer's very
  // next write into an RST instead of leaving a half-open socket whose
  // kernel keeps ACKing writes until the reader unwinds — a window in
  // which a busy sender can finish its whole stream "successfully",
  // never see a failure, and therefore never replay what was dropped.
  void Close() override {
    std::scoped_lock lock(write_mu_);
    if (std::this_thread::get_id() == reader_tid_) {
      if (!socket_closed_) {
        ::close(fd_);
        socket_closed_ = true;
      }
    } else if (!shutdown_done_ && !socket_closed_) {
      ::shutdown(fd_, SHUT_RDWR);
      shutdown_done_ = true;
    }
    closed_ = true;
  }

  void Join() {
    if (reader_.joinable()) reader_.join();
  }

  ~TcpServerConnection() override {
    Close();
    Join();
    CloseFd();  // reader already closed it unless Start() was never called
  }

 private:
  void CloseFd() {
    std::scoped_lock lock(write_mu_);
    if (!socket_closed_) {
      ::close(fd_);
      socket_closed_ = true;
    }
    closed_ = true;
  }

  [[nodiscard]] bool SocketClosed() {
    std::scoped_lock lock(write_mu_);
    return socket_closed_;
  }

  TcpTransport* owner_;
  int fd_;
  std::mutex write_mu_;
  bool closed_ = false;
  bool shutdown_done_ = false;
  bool socket_closed_ = false;
  std::thread::id reader_tid_;
  std::thread reader_;
};

// --- Client-side connection --------------------------------------------------

class TcpClientConnection final : public Connection {
 public:
  TcpClientConnection(TcpTransport* owner, Endpoint endpoint,
                      FrameHandler on_reply)
      : owner_(owner),
        endpoint_(std::move(endpoint)),
        on_reply_(std::move(on_reply)) {
    std::scoped_lock lock(send_mu_);
    DialLocked();
    StartReaderLocked();
  }

  void Send(const Frame& frame) override {
    const std::string bytes = EncodeFrame(frame);
    std::scoped_lock lock(send_mu_);
    if (closing_) throw TransportError("tcp: connection closed");
    const std::uint64_t seq = ++send_seq_;
    for (int attempt = 1;; ++attempt) {
      if (NetFaultHook* hook = GetNetFaultHook()) {
        const std::int64_t t0 = NowNanos();
        const bool drop = hook->OnFrameSend(seq, attempt);
        owner_->stall_nanos_->Add(NowNanos() - t0);
        if (drop) {
          // Injected connection drop: tear down BEFORE any byte of this
          // frame hits the wire, then retransmit on a fresh connection.
          owner_->retransmits_->Increment();
          ReconnectLocked();
          continue;
        }
      }
      if (WriteAll(fd_, bytes, owner_->send_syscalls_)) {
        owner_->frames_sent_->Increment();
        owner_->bytes_sent_->Add(static_cast<std::int64_t>(bytes.size()));
        return;
      }
      if (attempt >= owner_->options_.send_attempts) {
        throw TransportError("tcp: send failed after " +
                             std::to_string(attempt) + " attempts");
      }
      owner_->retransmits_->Increment();
      ReconnectLocked();
    }
  }

  void Close() override {
    std::unique_lock lock(send_mu_);
    if (closing_) return;
    closing_ = true;
    const int fd = fd_;
    fd_ = -1;
    std::thread reader = std::move(reader_);
    // Half-close: FIN our side but keep reading until the server closes
    // its end.  An abrupt close() with unread inbound bytes (credits are
    // always in flight) turns into an RST, and an RST discards frames the
    // server has received but not yet read — losing data we already count
    // as delivered.
    if (fd >= 0) ::shutdown(fd, SHUT_WR);
    lock.unlock();
    if (reader.joinable()) reader.join();
    if (fd >= 0) ::close(fd);
  }

  ~TcpClientConnection() override { Close(); }

 private:
  // All Locked methods require send_mu_.
  void DialLocked() {
    for (int attempt = 1;; ++attempt) {
      fd_ = DialOnce(endpoint_, owner_->options_.sock_buf_bytes);
      if (fd_ >= 0) return;
      if (attempt >= owner_->options_.connect_attempts) {
        throw TransportError("tcp: cannot connect to " + endpoint_.host + ":" +
                             std::to_string(endpoint_.port));
      }
      SleepMs(owner_->options_.connect_backoff_ms * attempt);
    }
  }

  void StartReaderLocked() {
    reader_ = std::thread([this, fd = fd_] {
      FrameDecoder decoder;
      char buf[1 << 16];
      for (;;) {
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n <= 0) {
          if (n < 0 && errno == EINTR) continue;
          return;  // EOF: server closed, or this generation was torn down
        }
        owner_->recv_syscalls_->Increment();
        owner_->bytes_received_->Add(n);
        decoder.Feed(buf, static_cast<std::size_t>(n));
        Frame frame;
        DecodeStatus status;
        while ((status = decoder.Next(&frame)) == DecodeStatus::kOk) {
          owner_->frames_received_->Increment();
          on_reply_(this, std::move(frame));
        }
        if (status != DecodeStatus::kNeedMore) return;
      }
    });
  }

  void ReconnectLocked() {
    const std::int64_t t0 = NowNanos();
    // Same graceful half-close as Close(): everything written before the
    // dropped frame is part of the delivered prefix the retransmit
    // protocol relies on, so it must not be torn out of the server's
    // receive buffer by an RST.
    ::shutdown(fd_, SHUT_WR);
    if (reader_.joinable()) reader_.join();
    ::close(fd_);
    DialLocked();
    StartReaderLocked();
    owner_->reconnects_->Increment();
    // Re-introduce ourselves: the server treats each connection as a fresh
    // stream, so the Hello preamble must lead it.
    Frame preamble;
    bool has_preamble = false;
    std::function<std::vector<Frame>()> replay;
    {
      std::scoped_lock lock(owner_->mu_);
      has_preamble = owner_->has_preamble_;
      preamble = owner_->preamble_;
      replay = owner_->reconnect_replay_;
    }
    if (has_preamble) {
      const std::string bytes = EncodeFrame(preamble);
      if (!WriteAll(fd_, bytes, owner_->send_syscalls_)) {
        throw TransportError("tcp: reconnect handshake failed");
      }
      owner_->frames_sent_->Increment();
      owner_->bytes_sent_->Add(static_cast<std::int64_t>(bytes.size()));
    }
    if (replay) {
      // Ack-window replay: everything delivered on the dead connection but
      // not yet acknowledged goes out again, ahead of the frame whose send
      // triggered this reconnect.  The receiver's applied-seq watermark
      // absorbs any copies that did survive.
      for (const Frame& frame : replay()) {
        const std::string bytes = EncodeFrame(frame);
        if (!WriteAll(fd_, bytes, owner_->send_syscalls_)) {
          throw TransportError("tcp: reconnect replay failed");
        }
        owner_->frames_sent_->Increment();
        owner_->bytes_sent_->Add(static_cast<std::int64_t>(bytes.size()));
      }
    }
    owner_->stall_nanos_->Add(NowNanos() - t0);
  }

  TcpTransport* owner_;
  Endpoint endpoint_;
  FrameHandler on_reply_;
  std::mutex send_mu_;
  int fd_ = -1;
  bool closing_ = false;
  std::uint64_t send_seq_ = 0;
  std::thread reader_;
};

// --- TcpTransport ------------------------------------------------------------

TcpTransport::TcpTransport(MetricRegistry* metrics)
    : TcpTransport(metrics, Options{}) {}

TcpTransport::TcpTransport(MetricRegistry* metrics, std::string endpoint)
    : TcpTransport(metrics, std::move(endpoint), Options{}) {}

TcpTransport::TcpTransport(MetricRegistry* metrics, Options options)
    : metrics_(metrics),
      options_(options),
      frames_sent_(metrics->Get(kNetFramesSent)),
      frames_received_(metrics->Get(kNetFramesReceived)),
      bytes_sent_(metrics->Get(kNetBytesSent)),
      bytes_received_(metrics->Get(kNetBytesReceived)),
      retransmits_(metrics->Get(kNetRetransmits)),
      reconnects_(metrics->Get(kNetReconnects)),
      stall_nanos_(metrics->Get(kNetStallNanos)),
      send_syscalls_(metrics->Get(kNetSendSyscalls)),
      recv_syscalls_(metrics->Get(kNetRecvSyscalls)) {}

TcpTransport::TcpTransport(MetricRegistry* metrics, std::string endpoint,
                           Options options)
    : TcpTransport(metrics, options) {
  remote_endpoint_ = std::move(endpoint);
}

TcpTransport::~TcpTransport() { Shutdown(); }

void TcpTransport::Bind() {
  std::scoped_lock lock(mu_);
  if (!remote_endpoint_.empty()) {
    throw TransportError("tcp: Bind on a client-mode transport");
  }
  if (listen_fd_ >= 0) return;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw TransportError("tcp: socket() failed");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  if (options_.bind_address == "0.0.0.0") {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
  } else if (::inet_pton(AF_INET, options_.bind_address.c_str(),
                         &addr.sin_addr) != 1) {
    ::close(fd);
    throw TransportError("tcp: bad bind address '" + options_.bind_address +
                         "'");
  }
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.bind_port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    throw TransportError("tcp: bind/listen failed on " +
                         options_.bind_address + ":" +
                         std::to_string(options_.bind_port));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    throw TransportError("tcp: getsockname failed");
  }
  listen_fd_ = fd;
  port_ = ntohs(addr.sin_port);
}

void TcpTransport::Listen(FrameHandler handler) {
  {
    std::scoped_lock lock(mu_);
    if (!remote_endpoint_.empty()) {
      throw TransportError("tcp: Listen on a client-mode transport");
    }
    if (accept_thread_.joinable()) {
      throw TransportError("tcp: Listen called twice");
    }
    handler_ = std::move(handler);
  }
  Bind();
  // The accept loop gets its own copy of the fd: Shutdown() nulls the member
  // under mu_, which this thread must never read unlocked.  Shutdown() still
  // owns closing it, after shutdown(2) has woken accept() and join returned.
  const int lfd = [this] {
    std::scoped_lock lock(mu_);
    return listen_fd_;
  }();
  accept_thread_ = std::thread([this, lfd] {
    for (;;) {
      const int fd = ::accept(lfd, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // listener shut down
      }
      SetNoDelay(fd);
      {
        std::scoped_lock lock(mu_);
        SetSockBuf(fd, options_.sock_buf_bytes);
      }
      auto conn = std::make_shared<TcpServerConnection>(this, fd);
      FrameHandler handler;
      {
        std::scoped_lock lock(mu_);
        if (shutdown_) {
          ::close(fd);
          return;
        }
        server_connections_.push_back(conn);
        handler = handler_;
      }
      conn->Start(handler);
    }
  });
}

std::shared_ptr<Connection> TcpTransport::Connect(FrameHandler on_reply) {
  Endpoint ep;
  {
    std::scoped_lock lock(mu_);
    if (!remote_endpoint_.empty()) {
      ep = ParseEndpoint(remote_endpoint_);
    } else if (listen_fd_ >= 0) {
      ep = Endpoint{AdvertisedHostLocked(), port_};  // self-dial
    } else {
      throw TransportError("tcp: Connect before Bind and without endpoint");
    }
  }
  auto conn =
      std::make_shared<TcpClientConnection>(this, ep, std::move(on_reply));
  std::scoped_lock lock(mu_);
  client_connections_.push_back(conn);
  return conn;
}

std::string TcpTransport::endpoint() const {
  std::scoped_lock lock(mu_);
  if (!remote_endpoint_.empty()) return remote_endpoint_;
  return AdvertisedHostLocked() + ":" + std::to_string(port_);
}

std::string TcpTransport::AdvertisedHostLocked() const {
  if (!options_.advertise_address.empty()) return options_.advertise_address;
  // A wildcard bind is not dialable; fall back to loopback, which matches
  // the historical single-host behavior.
  if (options_.bind_address == "0.0.0.0") return "127.0.0.1";
  return options_.bind_address;
}

void TcpTransport::SetConnectPreamble(Frame preamble) {
  std::scoped_lock lock(mu_);
  preamble_ = std::move(preamble);
  has_preamble_ = true;
}

void TcpTransport::SetReconnectReplay(
    std::function<std::vector<Frame>()> replay) {
  std::scoped_lock lock(mu_);
  reconnect_replay_ = std::move(replay);
}

void TcpTransport::Shutdown() {
  std::vector<std::shared_ptr<TcpServerConnection>> servers;
  std::vector<std::shared_ptr<TcpClientConnection>> clients;
  int listen_fd = -1;
  {
    std::scoped_lock lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
    servers.swap(server_connections_);
    clients.swap(client_connections_);
    listen_fd = listen_fd_;
    listen_fd_ = -1;
  }
  if (listen_fd >= 0) ::shutdown(listen_fd, SHUT_RDWR);  // wakes accept()
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd >= 0) ::close(listen_fd);
  for (auto& conn : clients) conn->Close();
  for (auto& conn : servers) {
    conn->Close();
    conn->Join();
  }
}

}  // namespace opmr::net
