// Coded shuffle plane: XOR-multicast intermediate delivery.
//
// CodedShuffleClient is the map-side encoder.  It stands in for the plain
// ShuffleClient as the ShuffleMapEndpoint behind PushSink: pushed chunks
// are buffered per (task, reducer) as framed units instead of being sent,
// and when the last task of a multicast group completes the group is
// flushed as r+1 kCodedChunk frames — one per member node, each the XOR
// of the zero-padded parts it owes its r fellow members.  A task's
// MapDone is forwarded only after every group shipping it has flushed, so
// within the shared per-sender sequence space the reduce side always
// decodes a task's coded frames before it learns the task finished.
//
// CodedDecoder is the reduce side.  Prepare() re-runs every map task once
// per holder (the r-fold map CPU the scheme spends), storing the framed
// units each logical node's co-located mapper would hold.  Each arriving
// coded frame is buffered until its group is complete, then peeled for
// all r+1 receivers: the receiver XORs out the parts it can rebuild from
// its own store, recovers its part of each sender's frame, reassembles
// its unit stream, and feeds every unit into the ordinary exactly-once
// ShuffleService pipeline via the push hook.  A killed node's store is
// simply absent — lookups fall back to any surviving holder's identical
// store, which is the fault plane's reconstruction-without-re-execution.
//
// All engine interaction goes through std::function hooks (sequenced
// send, MapDone forward, re-map, force-push), so this library depends
// only on the wire/frame layer, the DFS block descriptors, and metrics.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "coded/plan.h"
#include "engine/shuffle.h"
#include "metrics/counters.h"
#include "net/wire.h"

namespace opmr::coded {

// Job-report counter names (reduce side unless noted).
inline constexpr char kCodedFrames[] = "coded.frames";  // map side: sent
inline constexpr char kCodedPayloadBytes[] = "coded.payload_bytes";  // sent
inline constexpr char kCodedDecodedUnits[] = "coded.decoded_units";
inline constexpr char kCodedLocalUnits[] = "coded.local_units";
inline constexpr char kCodedRemapTasks[] = "coded.remap_tasks";
inline constexpr char kCodedReconstructedSegments[] =
    "coded.reconstructed_segments";

// One buffered map-output chunk destined for a single reducer, minus the
// (task, reducer) coordinates its container encodes.
struct CodedUnit {
  bool sorted = false;
  std::uint64_t records = 0;
  std::string bytes;
};

// partition (reducer) -> that reducer's units of one task, in push order.
using UnitsByPartition = std::vector<std::vector<CodedUnit>>;

// Unit-stream framing inside a receiver's per-group byte stream:
// [u32 task][u8 sorted][u64 records][u32 len][len bytes], repeated.
void AppendUnit(std::string* out, int task, const CodedUnit& unit);

// Parses a whole unit stream.  Returns false on any malformed framing
// (truncated header, bad flag byte, length past the end).
[[nodiscard]] bool ParseUnits(const std::string& stream,
                              std::vector<std::pair<int, CodedUnit>>* out);

// --- Map side ----------------------------------------------------------------

class CodedShuffleClient final : public ShuffleMapEndpoint {
 public:
  // Sends one frame through the owning ShuffleClient's exactly-once
  // sequence space (the callback receives the assigned seq).
  using SendFn =
      std::function<void(const std::function<net::Frame(std::uint64_t)>&)>;
  // Forwards a deferred MapDone (task, input_records, output_records).
  using MapDoneFn =
      std::function<void(int, std::uint64_t, std::uint64_t)>;

  CodedShuffleClient(const CodedPlan* plan, SendFn send, MapDoneFn map_done,
                     MetricRegistry* metrics);

  // The coded plane is push-only; cluster validation rejects pull shuffle
  // and segment diversion cannot happen because TryPush never refuses.
  void RegisterFile(const MapOutputFile& file) override;
  void RegisterSegment(int map_task, const std::filesystem::path& path,
                       int reducer, const Segment& segment,
                       bool sorted) override;

  // Always accepts: buffering is unbounded, which also makes PushSink's
  // chunk boundaries a pure function of the record stream — the property
  // the decoder's local re-map relies on for byte identity.
  PushResult TryPush(int reducer, ShuffleItem chunk) override;

  void MapTaskDone(int map_task, std::uint64_t input_records,
                   std::uint64_t output_records) override;

  // MapDones not yet forwarded.  0 after all tasks completed; anything
  // else at join time is a flush-bookkeeping bug the cluster turns into a
  // job failure instead of a hang.
  [[nodiscard]] std::size_t PendingMapDones() const;

 private:
  void FlushGroupLocked(int group);
  void ForwardMapDoneLocked(int task);

  const CodedPlan* plan_;
  SendFn send_;
  MapDoneFn map_done_;
  Counter* frames_;
  Counter* payload_bytes_;

  mutable std::mutex mu_;
  std::vector<UnitsByPartition> units_;  // per task
  std::vector<bool> task_done_;
  std::vector<bool> map_done_sent_;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> task_stats_;
  std::vector<int> task_pending_groups_;   // groups of the task not yet flushed
  std::vector<int> group_remaining_;       // member tasks not yet done
  std::vector<std::vector<int>> group_tasks_;  // cached CodedPlan::GroupTasks
  std::size_t pending_map_dones_;
};

// --- Reduce side -------------------------------------------------------------

class CodedDecoder {
 public:
  // Re-runs map task `task` over `block` and deposits the framed units it
  // would push, per partition.  Must be deterministic and byte-identical
  // to the map side's run (both go through PushSink against an
  // always-accepting endpoint).
  using RemapFn =
      std::function<void(int task, const BlockInfo& block,
                         UnitsByPartition* out)>;
  // Feeds one decoded unit of `task` into reducer `reducer`'s ordinary
  // shuffle queue (ShuffleService::ForcePush).
  using PushFn = std::function<void(int reducer, int task,
                                    const CodedUnit& unit)>;

  CodedDecoder(const CodedPlan* plan, RemapFn remap, PushFn push,
               MetricRegistry* metrics);

  // Populates every logical node's store: one re-map per (task, holder).
  // `blocks` must be the same unfiltered listing the plan was built from.
  void Prepare(const std::vector<BlockInfo>& blocks);

  // Fault-plane test hook: after `after_frames` coded frames have been
  // applied, drop node `node`'s entire store, as if the worker hosting
  // that co-located mapper died mid-job.
  void SetKill(int node, std::uint64_t after_frames);

  // Applies one deduplicated coded frame; decodes its group once all
  // r+1 member frames have arrived.  Returns the cumulative decoded-unit
  // count (carried back in CodedAck).  Throws net::WireError on frames
  // inconsistent with the plan or with the local re-map.
  std::uint64_t OnCodedFrame(const net::CodedChunkMsg& msg);

  // A map task completed: deliver its locally-held units to each of its
  // holder reducers (the units no coded frame ever ships).
  void OnMapDone(int task);

 private:
  // Store lookup preferring `node`'s own copy, falling back to any
  // surviving holder's identical store (counted as a reconstruction).
  const UnitsByPartition& LookupLocked(int node, int task);
  // Rebuilds receiver slot `slot`'s unit stream of group `group` from
  // `node`'s store.
  std::string StreamForLocked(int node, int group, std::size_t slot);
  void DecodeGroupLocked(int group);
  void MaybeKillLocked();

  const CodedPlan* plan_;
  RemapFn remap_;
  PushFn push_;
  Counter* decoded_units_;
  Counter* local_units_;
  Counter* remap_tasks_;
  Counter* reconstructed_;

  std::mutex mu_;
  // store_[node]: task -> the units node's co-located mapper holds.
  std::vector<std::unordered_map<int, UnitsByPartition>> store_;
  // group -> (sender node -> its frame), until the group completes.
  std::unordered_map<int, std::map<int, net::CodedChunkMsg>> pending_;
  std::uint64_t frames_applied_ = 0;
  std::uint64_t decoded_total_ = 0;
  int kill_node_ = -1;
  std::uint64_t kill_after_frames_ = 0;
  bool killed_ = false;
};

}  // namespace opmr::coded
