// CodedPlan: the deterministic, seed-stable assignment underlying the
// coded shuffle plane (Coded MapReduce, Li/Maddah-Ali/Avestimehr).
//
// The K reducers of a job double as K logical coded nodes, each hosting a
// "co-located mapper".  Every map task (one DFS block) is held by an
// r-subset of those nodes — derived from the block's DFS replica
// placement, completed deterministically from the plan seed — meaning the
// holder computes that task's intermediates locally.  For every holder
// set H and every non-holder k, the multicast group S = H ∪ {k} (size
// r+1) ships the units of the tasks held by S \ {k} to receiver k: each
// of the r senders in S \ {k} emits one XOR-coded frame serving all r of
// its fellow group members at once, which is where the r-fold byte
// reduction comes from.
//
// Both sides of the wire build the plan independently from the same
// (blocks, num_reducers, r, seed) inputs, so group indices can travel in
// frames as plain integers.  The block list must be the *unfiltered* DFS
// listing — fault-plane replica filtering happens after planning, or the
// two sides would disagree.
#pragma once

#include <cstdint>
#include <vector>

#include "dfs/dfs.h"

namespace opmr::coded {

struct CodedGroup {
  // The r+1 member nodes, sorted ascending.
  std::vector<int> nodes;
  // tasks_for[j]: the map tasks whose holder set is nodes \ {nodes[j]} —
  // i.e. the tasks whose units receiver nodes[j] is owed by this group —
  // in ascending task order.
  std::vector<std::vector<int>> tasks_for;
};

class CodedPlan {
 public:
  // `blocks[i]` is map task i (listing order); `num_reducers` = K logical
  // nodes; `r` = replication degree (holders per task).  Requires
  // 1 <= r < num_reducers.
  static CodedPlan Build(const std::vector<BlockInfo>& blocks,
                         int num_reducers, int r, std::uint64_t seed);

  [[nodiscard]] int r() const { return r_; }
  [[nodiscard]] int num_reducers() const { return num_reducers_; }
  [[nodiscard]] int num_tasks() const {
    return static_cast<int>(holders_.size());
  }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  // The r nodes holding task `task`, sorted ascending.
  [[nodiscard]] const std::vector<int>& holders(int task) const {
    return holders_.at(static_cast<std::size_t>(task));
  }

  [[nodiscard]] const std::vector<CodedGroup>& groups() const {
    return groups_;
  }

  // Indices of the groups that ship task `task` (one per non-holder node).
  [[nodiscard]] const std::vector<int>& groups_of_task(int task) const {
    return groups_of_task_.at(static_cast<std::size_t>(task));
  }

  // All tasks a group touches (union over tasks_for), ascending, deduped.
  [[nodiscard]] std::vector<int> GroupTasks(int group) const;

  // Splits a `total`-byte receiver stream into the r contiguous parts the
  // group's senders divide it into: part j gets total/r bytes plus one of
  // the remainder when j < total % r.
  [[nodiscard]] std::vector<std::uint64_t> PartLengths(
      std::uint64_t total) const;

 private:
  int r_ = 1;
  int num_reducers_ = 0;
  std::uint64_t seed_ = 0;
  std::vector<std::vector<int>> holders_;
  std::vector<CodedGroup> groups_;
  std::vector<std::vector<int>> groups_of_task_;
};

}  // namespace opmr::coded
