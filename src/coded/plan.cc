#include "coded/plan.h"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>
#include <string>

#include "common/rng.h"

namespace opmr::coded {

CodedPlan CodedPlan::Build(const std::vector<BlockInfo>& blocks,
                           int num_reducers, int r, std::uint64_t seed) {
  if (r < 1) {
    throw std::invalid_argument("coded plan: r must be >= 1, got " +
                                std::to_string(r));
  }
  if (num_reducers < r + 1) {
    throw std::invalid_argument(
        "coded plan: needs num_reducers >= r + 1 to form multicast groups "
        "(num_reducers=" +
        std::to_string(num_reducers) + ", r=" + std::to_string(r) + ")");
  }
  CodedPlan plan;
  plan.r_ = r;
  plan.num_reducers_ = num_reducers;
  plan.seed_ = seed;
  plan.holders_.reserve(blocks.size());

  // Holder sets: start from the block's DFS replica placement (mod K so
  // physical node ids map onto logical coded nodes), then complete to
  // exactly r distinct nodes with a per-block seeded draw.  Everything
  // here depends only on (blocks, K, r, seed), so both wire ends agree.
  for (std::size_t task = 0; task < blocks.size(); ++task) {
    const BlockInfo& block = blocks[task];
    std::set<int> chosen;
    for (const int node : block.replica_nodes) {
      if (static_cast<int>(chosen.size()) >= r) break;
      chosen.insert(((node % num_reducers) + num_reducers) % num_reducers);
    }
    Rng rng(seed ^ (0x9E3779B97F4A7C15ull *
                    (static_cast<std::uint64_t>(task) + 1)));
    while (static_cast<int>(chosen.size()) < r) {
      chosen.insert(static_cast<int>(rng.Uniform(
          static_cast<std::uint64_t>(num_reducers))));
    }
    plan.holders_.emplace_back(chosen.begin(), chosen.end());
  }

  // Groups: S = H ∪ {k} for every holder set H and non-holder k.  Task
  // iteration order is ascending, so each tasks_for list comes out sorted.
  std::map<std::vector<int>, int> group_index;
  plan.groups_of_task_.resize(blocks.size());
  for (int task = 0; task < static_cast<int>(blocks.size()); ++task) {
    const std::vector<int>& holders = plan.holders_[task];
    for (int k = 0; k < num_reducers; ++k) {
      if (std::binary_search(holders.begin(), holders.end(), k)) continue;
      std::vector<int> members = holders;
      members.insert(
          std::lower_bound(members.begin(), members.end(), k), k);
      auto [it, inserted] =
          group_index.try_emplace(members, static_cast<int>(plan.groups_.size()));
      if (inserted) {
        CodedGroup group;
        group.nodes = members;
        group.tasks_for.resize(members.size());
        plan.groups_.push_back(std::move(group));
      }
      const int g = it->second;
      const auto slot = std::lower_bound(plan.groups_[g].nodes.begin(),
                                         plan.groups_[g].nodes.end(), k) -
                        plan.groups_[g].nodes.begin();
      plan.groups_[g].tasks_for[static_cast<std::size_t>(slot)].push_back(
          task);
      plan.groups_of_task_[static_cast<std::size_t>(task)].push_back(g);
    }
  }
  return plan;
}

std::vector<int> CodedPlan::GroupTasks(int group) const {
  std::set<int> tasks;
  for (const std::vector<int>& list :
       groups_.at(static_cast<std::size_t>(group)).tasks_for) {
    tasks.insert(list.begin(), list.end());
  }
  return {tasks.begin(), tasks.end()};
}

std::vector<std::uint64_t> CodedPlan::PartLengths(std::uint64_t total) const {
  const auto parts = static_cast<std::uint64_t>(r_);
  const std::uint64_t base = total / parts;
  const std::uint64_t rem = total % parts;
  std::vector<std::uint64_t> lengths(static_cast<std::size_t>(parts), base);
  for (std::uint64_t j = 0; j < rem; ++j) {
    ++lengths[static_cast<std::size_t>(j)];
  }
  return lengths;
}

}  // namespace opmr::coded
