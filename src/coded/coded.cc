#include "coded/coded.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "common/slice.h"

namespace opmr::coded {

namespace {

// Sender slot `i`'s rank among the r senders serving receiver slot `j`
// (the group members minus the receiver, in node order).
std::size_t SenderRank(std::size_t i, std::size_t j) {
  return i < j ? i : i - 1;
}

}  // namespace

void AppendUnit(std::string* out, int task, const CodedUnit& unit) {
  AppendU32(*out, static_cast<std::uint32_t>(task));
  out->push_back(unit.sorted ? '\x01' : '\x00');
  AppendU64(*out, unit.records);
  AppendU32(*out, static_cast<std::uint32_t>(unit.bytes.size()));
  out->append(unit.bytes);
}

bool ParseUnits(const std::string& stream,
                std::vector<std::pair<int, CodedUnit>>* out) {
  std::size_t pos = 0;
  constexpr std::size_t kHeader = 4 + 1 + 8 + 4;
  while (pos < stream.size()) {
    if (stream.size() - pos < kHeader) return false;
    const auto task = static_cast<int>(DecodeU32(stream.data() + pos));
    const char sorted = stream[pos + 4];
    if (sorted != '\x00' && sorted != '\x01') return false;
    const std::uint64_t records = DecodeU64(stream.data() + pos + 5);
    const std::uint32_t len = DecodeU32(stream.data() + pos + 13);
    pos += kHeader;
    if (stream.size() - pos < len) return false;
    CodedUnit unit;
    unit.sorted = sorted == '\x01';
    unit.records = records;
    unit.bytes = stream.substr(pos, len);
    out->emplace_back(task, std::move(unit));
    pos += len;
  }
  return true;
}

// --- CodedShuffleClient ------------------------------------------------------

CodedShuffleClient::CodedShuffleClient(const CodedPlan* plan, SendFn send,
                                       MapDoneFn map_done,
                                       MetricRegistry* metrics)
    : plan_(plan),
      send_(std::move(send)),
      map_done_(std::move(map_done)),
      frames_(metrics->Get(kCodedFrames)),
      payload_bytes_(metrics->Get(kCodedPayloadBytes)) {
  const auto num_tasks = static_cast<std::size_t>(plan_->num_tasks());
  units_.resize(num_tasks);
  for (auto& by_partition : units_) {
    by_partition.resize(static_cast<std::size_t>(plan_->num_reducers()));
  }
  task_done_.assign(num_tasks, false);
  map_done_sent_.assign(num_tasks, false);
  task_stats_.assign(num_tasks, {0, 0});
  task_pending_groups_.resize(num_tasks);
  for (std::size_t t = 0; t < num_tasks; ++t) {
    task_pending_groups_[t] =
        static_cast<int>(plan_->groups_of_task(static_cast<int>(t)).size());
  }
  const auto num_groups = plan_->groups().size();
  group_remaining_.resize(num_groups);
  group_tasks_.resize(num_groups);
  for (std::size_t g = 0; g < num_groups; ++g) {
    group_tasks_[g] = plan_->GroupTasks(static_cast<int>(g));
    group_remaining_[g] = static_cast<int>(group_tasks_[g].size());
  }
  pending_map_dones_ = num_tasks;
}

void CodedShuffleClient::RegisterFile(const MapOutputFile& file) {
  (void)file;
  throw std::logic_error(
      "coded shuffle client: RegisterFile is a pull-shuffle path; cluster "
      "validation should have rejected this configuration");
}

void CodedShuffleClient::RegisterSegment(int map_task,
                                         const std::filesystem::path& path,
                                         int reducer, const Segment& segment,
                                         bool sorted) {
  (void)map_task;
  (void)path;
  (void)reducer;
  (void)segment;
  (void)sorted;
  throw std::logic_error(
      "coded shuffle client: segment diversion cannot happen — TryPush "
      "never refuses a chunk");
}

PushResult CodedShuffleClient::TryPush(int reducer, ShuffleItem chunk) {
  std::lock_guard<std::mutex> lock(mu_);
  if (chunk.map_task < 0 || chunk.map_task >= plan_->num_tasks()) {
    throw std::logic_error("coded shuffle client: chunk for unknown task " +
                           std::to_string(chunk.map_task));
  }
  CodedUnit unit;
  unit.sorted = chunk.sorted;
  unit.records = chunk.records;
  unit.bytes = std::move(chunk.bytes);
  units_[static_cast<std::size_t>(chunk.map_task)]
        [static_cast<std::size_t>(reducer)]
            .push_back(std::move(unit));
  return PushResult::kAccepted;
}

void CodedShuffleClient::MapTaskDone(int map_task,
                                     std::uint64_t input_records,
                                     std::uint64_t output_records) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto t = static_cast<std::size_t>(map_task);
  task_done_.at(t) = true;
  task_stats_[t] = {input_records, output_records};
  for (const int g : plan_->groups_of_task(map_task)) {
    if (--group_remaining_[static_cast<std::size_t>(g)] == 0) {
      FlushGroupLocked(g);
    }
  }
  // A task with no groups (cannot happen while K >= r+1, but cheap to
  // keep correct) forwards its MapDone immediately.
  if (task_pending_groups_[t] == 0 && !map_done_sent_[t]) {
    ForwardMapDoneLocked(map_task);
  }
}

void CodedShuffleClient::FlushGroupLocked(int group) {
  const CodedGroup& grp = plan_->groups()[static_cast<std::size_t>(group)];
  const std::size_t members = grp.nodes.size();

  // Each receiver slot's unit stream and its r-way part split.
  std::vector<std::string> streams(members);
  std::vector<std::vector<std::uint64_t>> splits(members);
  for (std::size_t j = 0; j < members; ++j) {
    const auto partition = static_cast<std::size_t>(grp.nodes[j]);
    for (const int task : grp.tasks_for[j]) {
      for (const CodedUnit& unit :
           units_[static_cast<std::size_t>(task)][partition]) {
        AppendUnit(&streams[j], task, unit);
      }
    }
    splits[j] = plan_->PartLengths(streams[j].size());
  }

  // One frame per member: the XOR of the zero-padded parts it owes the
  // other r members.  Empty payloads still ship — the decoder needs all
  // r+1 frames to know the group is complete.
  for (std::size_t i = 0; i < members; ++i) {
    net::CodedChunkMsg msg;
    msg.group = static_cast<std::uint32_t>(group);
    msg.sender = static_cast<std::uint32_t>(grp.nodes[i]);
    std::string payload;
    for (std::size_t j = 0; j < members; ++j) {
      if (j == i) continue;
      const std::size_t rank = SenderRank(i, j);
      std::uint64_t offset = 0;
      for (std::size_t p = 0; p < rank; ++p) offset += splits[j][p];
      const std::uint64_t len = splits[j][rank];
      net::CodedPart part;
      part.node = static_cast<std::uint32_t>(grp.nodes[j]);
      part.part_len = static_cast<std::uint32_t>(len);
      msg.parts.push_back(part);
      if (payload.size() < len) payload.resize(len, '\0');
      const char* src = streams[j].data() + offset;
      for (std::uint64_t b = 0; b < len; ++b) {
        payload[b] = static_cast<char>(payload[b] ^ src[b]);
      }
    }
    msg.bytes = std::move(payload);
    frames_->Increment();
    payload_bytes_->Add(static_cast<std::int64_t>(msg.bytes.size()));
    send_([msg](std::uint64_t seq) mutable {
      msg.seq = seq;
      return msg.ToFrame();
    });
  }

  // Flushing may complete member tasks' last group: forward their
  // deferred MapDones and release their buffered units.
  for (const int task : group_tasks_[static_cast<std::size_t>(group)]) {
    const auto t = static_cast<std::size_t>(task);
    if (--task_pending_groups_[t] == 0 && task_done_[t] &&
        !map_done_sent_[t]) {
      ForwardMapDoneLocked(task);
      UnitsByPartition().swap(units_[t]);
    }
  }
}

void CodedShuffleClient::ForwardMapDoneLocked(int task) {
  const auto t = static_cast<std::size_t>(task);
  map_done_sent_[t] = true;
  --pending_map_dones_;
  map_done_(task, task_stats_[t].first, task_stats_[t].second);
}

std::size_t CodedShuffleClient::PendingMapDones() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_map_dones_;
}

// --- CodedDecoder ------------------------------------------------------------

CodedDecoder::CodedDecoder(const CodedPlan* plan, RemapFn remap, PushFn push,
                           MetricRegistry* metrics)
    : plan_(plan),
      remap_(std::move(remap)),
      push_(std::move(push)),
      decoded_units_(metrics->Get(kCodedDecodedUnits)),
      local_units_(metrics->Get(kCodedLocalUnits)),
      remap_tasks_(metrics->Get(kCodedRemapTasks)),
      reconstructed_(metrics->Get(kCodedReconstructedSegments)) {
  store_.resize(static_cast<std::size_t>(plan_->num_reducers()));
}

void CodedDecoder::Prepare(const std::vector<BlockInfo>& blocks) {
  if (static_cast<int>(blocks.size()) != plan_->num_tasks()) {
    throw std::invalid_argument(
        "coded decoder: block list does not match the plan");
  }
  // The r-fold map CPU the scheme trades for shuffle bytes: every holder
  // re-maps its tasks locally.
  for (int task = 0; task < plan_->num_tasks(); ++task) {
    for (const int holder : plan_->holders(task)) {
      UnitsByPartition units(
          static_cast<std::size_t>(plan_->num_reducers()));
      remap_(task, blocks[static_cast<std::size_t>(task)], &units);
      std::lock_guard<std::mutex> lock(mu_);
      store_[static_cast<std::size_t>(holder)][task] = std::move(units);
      remap_tasks_->Increment();
    }
  }
}

void CodedDecoder::SetKill(int node, std::uint64_t after_frames) {
  std::lock_guard<std::mutex> lock(mu_);
  kill_node_ = node;
  kill_after_frames_ = after_frames;
}

void CodedDecoder::MaybeKillLocked() {
  if (killed_ || kill_node_ < 0 || frames_applied_ < kill_after_frames_) {
    return;
  }
  store_[static_cast<std::size_t>(kill_node_)].clear();
  killed_ = true;
}

const UnitsByPartition& CodedDecoder::LookupLocked(int node, int task) {
  auto& own = store_[static_cast<std::size_t>(node)];
  const auto it = own.find(task);
  if (it != own.end()) return it->second;
  // The node's co-located mapper is gone: any surviving holder carries a
  // byte-identical copy, so recovery never re-runs the map task.
  for (const int holder : plan_->holders(task)) {
    if (holder == node) continue;
    auto& peer = store_[static_cast<std::size_t>(holder)];
    const auto peer_it = peer.find(task);
    if (peer_it != peer.end()) {
      reconstructed_->Increment();
      return peer_it->second;
    }
  }
  throw net::WireError("coded decoder: task " + std::to_string(task) +
                       " intermediates lost on every replica");
}

std::string CodedDecoder::StreamForLocked(int node, int group,
                                          std::size_t slot) {
  const CodedGroup& grp = plan_->groups()[static_cast<std::size_t>(group)];
  const auto partition = static_cast<std::size_t>(grp.nodes[slot]);
  std::string stream;
  for (const int task : grp.tasks_for[slot]) {
    const UnitsByPartition& units = LookupLocked(node, task);
    for (const CodedUnit& unit : units[partition]) {
      AppendUnit(&stream, task, unit);
    }
  }
  return stream;
}

std::uint64_t CodedDecoder::OnCodedFrame(const net::CodedChunkMsg& msg) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto group = static_cast<int>(msg.group);
  if (group < 0 || msg.group >= plan_->groups().size()) {
    throw net::WireError("coded frame: group " + std::to_string(msg.group) +
                         " outside the plan");
  }
  const CodedGroup& grp = plan_->groups()[msg.group];
  const auto sender_slot =
      std::lower_bound(grp.nodes.begin(), grp.nodes.end(),
                       static_cast<int>(msg.sender)) -
      grp.nodes.begin();
  if (sender_slot == static_cast<std::ptrdiff_t>(grp.nodes.size()) ||
      grp.nodes[static_cast<std::size_t>(sender_slot)] !=
          static_cast<int>(msg.sender)) {
    throw net::WireError("coded frame: sender " + std::to_string(msg.sender) +
                         " is not a member of group " +
                         std::to_string(msg.group));
  }
  if (msg.parts.size() != grp.nodes.size() - 1) {
    throw net::WireError("coded frame: part list does not cover the group");
  }
  std::size_t expect = 0;
  for (const net::CodedPart& part : msg.parts) {
    if (expect == static_cast<std::size_t>(sender_slot)) ++expect;
    if (static_cast<int>(part.node) != grp.nodes[expect]) {
      throw net::WireError("coded frame: receiver list does not match group " +
                           std::to_string(msg.group));
    }
    ++expect;
  }
  pending_[group][static_cast<int>(msg.sender)] = msg;
  ++frames_applied_;
  MaybeKillLocked();
  if (pending_[group].size() == grp.nodes.size()) {
    DecodeGroupLocked(group);
    pending_.erase(group);
  }
  return decoded_total_;
}

void CodedDecoder::DecodeGroupLocked(int group) {
  const CodedGroup& grp = plan_->groups()[static_cast<std::size_t>(group)];
  const std::size_t members = grp.nodes.size();
  const auto& frames = pending_[group];

  for (std::size_t j = 0; j < members; ++j) {
    const int receiver = grp.nodes[j];

    // The streams receiver j can rebuild from its own co-located mapper
    // (every slot but its own), with their encoder part splits.
    std::vector<std::string> local(members);
    std::vector<std::vector<std::uint64_t>> splits(members);
    std::vector<std::vector<std::uint64_t>> offsets(members);
    for (std::size_t j2 = 0; j2 < members; ++j2) {
      if (j2 == j) continue;
      local[j2] = StreamForLocked(receiver, group, j2);
      splits[j2] = plan_->PartLengths(local[j2].size());
      offsets[j2].resize(splits[j2].size(), 0);
      for (std::size_t p = 1; p < splits[j2].size(); ++p) {
        offsets[j2][p] = offsets[j2][p - 1] + splits[j2][p - 1];
      }
    }

    // Cross-check the local re-map against the senders' advertised part
    // lengths: receiver j2's locally rebuilt stream must be exactly as
    // long as the parts the frames claim to carry for it, or the XOR
    // algebra is operating on diverged bytes.
    for (std::size_t j2 = 0; j2 < members; ++j2) {
      if (j2 == j) continue;
      std::uint64_t advertised = 0;
      for (std::size_t i = 0; i < members; ++i) {
        if (i == j2) continue;
        const net::CodedChunkMsg& frame = frames.at(grp.nodes[i]);
        // Receiver j2's entry in sender i's part list.
        advertised += frame.parts[SenderRank(j2, i)].part_len;
      }
      if (advertised != local[j2].size()) {
        throw net::WireError(
            "coded decoder: group " + std::to_string(group) + " receiver " +
            std::to_string(grp.nodes[j2]) + " stream is " +
            std::to_string(local[j2].size()) + " bytes locally but " +
            std::to_string(advertised) +
            " on the wire (map-side/reduce-side divergence)");
      }
    }

    std::string stream;
    for (std::size_t i = 0; i < members; ++i) {
      if (i == j) continue;
      const net::CodedChunkMsg& frame = frames.at(grp.nodes[i]);
      // This receiver's entry in sender i's part list.
      const std::size_t part_index = SenderRank(j, i);
      const std::uint64_t len = frame.parts[part_index].part_len;
      std::string part(frame.bytes.data(),
                       std::min<std::size_t>(len, frame.bytes.size()));
      part.resize(len, '\0');
      // Peel: XOR out every other receiver's locally rebuilt part.
      for (std::size_t j2 = 0; j2 < members; ++j2) {
        if (j2 == i || j2 == j) continue;
        const std::size_t rank2 = SenderRank(i, j2);
        const std::uint64_t off2 = offsets[j2][rank2];
        const std::uint64_t len2 = splits[j2][rank2];
        const std::uint64_t n = std::min(len, len2);
        const char* src = local[j2].data() + off2;
        for (std::uint64_t b = 0; b < n; ++b) {
          part[b] = static_cast<char>(part[b] ^ src[b]);
        }
      }
      stream.append(part);
    }

    // Sanity: the senders' advertised lengths for this receiver must
    // describe a parseable unit stream; anything else means the local
    // re-map and the encoder disagreed.
    std::vector<std::pair<int, CodedUnit>> units;
    if (!ParseUnits(stream, &units)) {
      throw net::WireError(
          "coded decoder: group " + std::to_string(group) + " receiver " +
          std::to_string(receiver) +
          " peeled an unparseable stream (map-side/reduce-side divergence)");
    }
    for (auto& [task, unit] : units) {
      push_(receiver, task, unit);
      ++decoded_total_;
      decoded_units_->Increment();
    }
  }
}

void CodedDecoder::OnMapDone(int task) {
  std::lock_guard<std::mutex> lock(mu_);
  if (task < 0 || task >= plan_->num_tasks()) return;
  for (const int holder : plan_->holders(task)) {
    const UnitsByPartition& units = LookupLocked(holder, task);
    for (const CodedUnit& unit :
         units[static_cast<std::size_t>(holder)]) {
      push_(holder, task, unit);
      local_units_->Increment();
    }
  }
}

}  // namespace opmr::coded
