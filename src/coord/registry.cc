#include "coord/registry.h"

#include <algorithm>

namespace opmr::coord {

std::uint64_t WorkerRegistry::Register(const std::string& id,
                                       const std::string& endpoint,
                                       net::WireRole role, double now_s) {
  std::scoped_lock lock(mu_);
  ++epoch_;
  for (WorkerInfo& w : workers_) {
    if (w.id != id) continue;
    w.endpoint = endpoint;
    w.role = role;
    ++w.generation;
    w.last_heartbeat_s = now_s;
    w.alive = true;
    // Pre-eviction load is stale; the next v6 heartbeat re-reports it.
    // suspect_count survives re-registration — it is the flappiness
    // history the placement ranker scores health by.
    w.load.clear();
    return w.generation;
  }
  WorkerInfo w;
  w.id = id;
  w.endpoint = endpoint;
  w.role = role;
  w.generation = 1;
  w.last_heartbeat_s = now_s;
  w.alive = true;
  workers_.push_back(std::move(w));
  return 1;
}

bool WorkerRegistry::Heartbeat(const std::string& id, std::uint64_t generation,
                               double now_s) {
  std::scoped_lock lock(mu_);
  for (WorkerInfo& w : workers_) {
    if (w.id != id) continue;
    if (!w.alive || w.generation != generation) return false;
    w.last_heartbeat_s = std::max(w.last_heartbeat_s, now_s);
    return true;
  }
  return false;
}

bool WorkerRegistry::Heartbeat(const std::string& id, std::uint64_t generation,
                               double now_s,
                               const std::vector<std::uint32_t>& load) {
  std::scoped_lock lock(mu_);
  for (WorkerInfo& w : workers_) {
    if (w.id != id) continue;
    if (!w.alive || w.generation != generation) return false;
    w.last_heartbeat_s = std::max(w.last_heartbeat_s, now_s);
    w.load = load;
    return true;
  }
  return false;
}

std::vector<std::string> WorkerRegistry::ExpireLeases(double now_s,
                                                      double lease_s) {
  std::scoped_lock lock(mu_);
  std::vector<std::string> expired;
  for (WorkerInfo& w : workers_) {
    if (w.alive && now_s - w.last_heartbeat_s > lease_s) {
      w.alive = false;
      ++w.suspect_count;
      expired.push_back(w.id);
    }
  }
  if (!expired.empty()) ++epoch_;
  return expired;
}

void WorkerRegistry::Restore(std::vector<WorkerInfo> workers,
                             std::uint64_t epoch) {
  std::scoped_lock lock(mu_);
  workers_ = std::move(workers);
  epoch_ = epoch;
}

std::vector<WorkerInfo> WorkerRegistry::Dump() const {
  std::scoped_lock lock(mu_);
  return workers_;
}

net::MembershipMsg WorkerRegistry::Snapshot() const {
  std::scoped_lock lock(mu_);
  net::MembershipMsg msg;
  msg.epoch = epoch_;
  msg.entries.reserve(workers_.size());
  for (const WorkerInfo& w : workers_) {
    net::MembershipMsg::Entry e;
    e.worker = w.id;
    e.endpoint = w.endpoint;
    e.role = w.role;
    e.generation = w.generation;
    e.alive = w.alive;
    msg.entries.push_back(std::move(e));
  }
  return msg;
}

std::uint64_t WorkerRegistry::epoch() const {
  std::scoped_lock lock(mu_);
  return epoch_;
}

std::size_t WorkerRegistry::LiveCount(net::WireRole role) const {
  std::scoped_lock lock(mu_);
  std::size_t n = 0;
  for (const WorkerInfo& w : workers_) {
    if (w.alive && w.role == role) ++n;
  }
  return n;
}

std::vector<WorkerInfo> WorkerRegistry::LiveWorkers(net::WireRole role) const {
  std::scoped_lock lock(mu_);
  std::vector<WorkerInfo> out;
  for (const WorkerInfo& w : workers_) {
    if (w.alive && w.role == role) out.push_back(w);
  }
  std::sort(out.begin(), out.end(),
            [](const WorkerInfo& a, const WorkerInfo& b) { return a.id < b.id; });
  return out;
}

bool WorkerRegistry::Lookup(const std::string& id, WorkerInfo* out) const {
  std::scoped_lock lock(mu_);
  for (const WorkerInfo& w : workers_) {
    if (w.id == id) {
      if (out != nullptr) *out = w;
      return true;
    }
  }
  return false;
}

}  // namespace opmr::coord
