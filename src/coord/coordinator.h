// Coordinator: the cluster's membership endpoint.
//
// Serves Register / Heartbeat frames over a bound server Transport,
// maintains the WorkerRegistry, and broadcasts a Membership view to every
// registered worker whenever the view changes (register, re-register,
// lease expiry).  A shared secret authenticates Register frames: a
// mismatch is answered with Abort and the worker never enters the
// registry.
//
// Failure detection is two-stage, mirroring the fault subsystem's
// transient/terminal split:
//
//   lease expiry      -> the worker is SUSPECT.  Membership broadcasts it
//                        as dead, but nothing is torn down yet; a worker
//                        that was merely partitioned (or had heartbeats
//                        suppressed by a fault plan) re-registers and the
//                        on_worker_returned signal fires.
//   rejoin grace gone -> the worker is LOST.  on_worker_lost fires once —
//                        the terminal signal ClusterExecutor uses to abort
//                        a shuffle fast instead of waiting for the
//                        idle-timeout fallback.
//
// The registry itself is deterministic (see registry.h); the sweeper
// thread only supplies wall-clock "now" values.  Tests that need exact
// control call SweepNow() with their own timestamps.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "coord/registry.h"
#include "metrics/counters.h"
#include "net/transport.h"

namespace opmr::coord {

class Coordinator {
 public:
  struct Options {
    std::string secret;            // empty = authentication disabled
    double lease_s = 2.0;          // heartbeat lease before a worker is suspect
    double rejoin_grace_s = 2.0;   // suspect -> lost after this much silence
    double sweep_interval_ms = 50; // failure-detector poll cadence
    // Fired from the sweeper thread (worker id is the argument).
    std::function<void(const std::string&)> on_worker_lost;
    std::function<void(const std::string&)> on_worker_returned;
  };

  // `transport` must already be bound (server mode); the coordinator
  // Listen()s on it and starts the sweeper.  Does not take ownership.
  Coordinator(net::Transport* transport, MetricRegistry* metrics,
              Options options);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  // Stops the sweeper.  The transport is the caller's to shut down.
  void Stop();

  // Runs one failure-detector pass at `now_s` (defaults to the steady
  // clock).  Returns the number of workers newly marked suspect.
  std::size_t SweepNow();
  std::size_t SweepNow(double now_s);

  [[nodiscard]] WorkerRegistry& registry() { return registry_; }

  // Blocks until at least `n` live workers of `role` are registered.
  // Returns false on timeout.
  bool WaitForWorkers(net::WireRole role, std::size_t n, double timeout_s);

  // Replaces the failure-detector callbacks after construction (pass {}
  // to clear).  Thread-safe against a concurrent sweep; ClusterExecutor
  // installs its shuffle-abort hook for the duration of one Run() this
  // way.
  void SetOnWorkerLost(std::function<void(const std::string&)> cb);
  void SetOnWorkerReturned(std::function<void(const std::string&)> cb);

 private:
  void HandleFrame(net::Connection* from, net::Frame frame);
  void BroadcastMembership();
  void SweeperLoop();

  net::Transport* transport_;
  Options options_;
  WorkerRegistry registry_;

  Counter* registers_ = nullptr;
  Counter* heartbeats_ = nullptr;
  Counter* stale_heartbeats_ = nullptr;
  Counter* expirations_ = nullptr;
  Counter* auth_failures_ = nullptr;
  Counter* workers_lost_ = nullptr;
  Counter* workers_returned_ = nullptr;

  // Callbacks live outside Options so they can be swapped mid-flight;
  // invocations copy under cb_mu_ and fire outside every lock.
  std::mutex cb_mu_;
  std::function<void(const std::string&)> on_worker_lost_;
  std::function<void(const std::string&)> on_worker_returned_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::map<std::string, net::Connection*> member_conns_;
  // Suspect workers awaiting rejoin: id -> (generation at expiry, deadline).
  struct Suspect {
    std::uint64_t generation = 0;
    double deadline_s = 0.0;
  };
  std::map<std::string, Suspect> suspects_;
  std::thread sweeper_;
};

}  // namespace opmr::coord
