// WorkerRegistry: the coordinator's authoritative worker-group view.
//
// Pure membership bookkeeping — no sockets, no threads, no clocks.  Every
// mutation takes the caller's notion of "now" in seconds, so the failure
// detector built on top (ExpireLeases) is a deterministic function of the
// heartbeat history: replaying the same (event, timestamp) sequence yields
// the same evictions in the same order.  That determinism is what makes
// the seeded heartbeat-loss chaos tests reproducible.
//
// Lifecycle of one worker id:
//
//   Register   -> generation 1, alive              (epoch bump, broadcast)
//   Heartbeat  -> lease renewed iff generation matches the registry's
//   ExpireLeases(now) with now - last_heartbeat > lease
//              -> alive = false                    (epoch bump, broadcast)
//   Register again -> generation 2, alive          (the rejoin path)
//
// A heartbeat carrying a stale generation is rejected: the worker was
// evicted and must re-register before its lease can be renewed again.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "net/wire.h"

namespace opmr::coord {

struct WorkerInfo {
  std::string id;
  std::string endpoint;  // advertised host:port
  net::WireRole role = net::WireRole::kMap;
  std::uint64_t generation = 0;
  double last_heartbeat_s = 0.0;
  bool alive = false;
  // Soft placement state (src/placement), refreshed by every heartbeat and
  // NOT replicated by the HA control plane: a new leader re-learns it from
  // the next heartbeat round, so shipping it in snapshots/changelogs would
  // only replicate staleness.
  std::vector<std::uint32_t> load;     // net::kLoad* indices; missing = 0
  std::uint64_t suspect_count = 0;     // lease expiries survived (flappiness)

  // Convenience over `load` (missing entries read as 0).
  [[nodiscard]] std::uint32_t LoadAt(std::size_t index) const noexcept {
    return index < load.size() ? load[index] : 0;
  }
};

class WorkerRegistry {
 public:
  // Adds (or re-adds) a worker; returns its new generation (1-based,
  // bumped on every re-register).  Bumps the epoch.
  std::uint64_t Register(const std::string& id, const std::string& endpoint,
                         net::WireRole role, double now_s);

  // Renews the lease iff `generation` matches the current registration and
  // the worker is alive.  Returns false for unknown / evicted / stale.
  // The three-argument form leaves the stored load vector untouched; the
  // four-argument form (a v6 heartbeat) replaces it.
  bool Heartbeat(const std::string& id, std::uint64_t generation,
                 double now_s);
  bool Heartbeat(const std::string& id, std::uint64_t generation, double now_s,
                 const std::vector<std::uint32_t>& load);

  // The deterministic failure detector: marks every live worker whose last
  // heartbeat is older than `lease_s` as dead (bumping its suspect_count)
  // and returns their ids in registration order.  Bumps the epoch iff
  // anything changed.
  std::vector<std::string> ExpireLeases(double now_s, double lease_s);

  // Membership view for broadcasting (entries in registration order).
  [[nodiscard]] net::MembershipMsg Snapshot() const;

  // Replaces the whole registry with `workers` (registration order) at
  // `epoch` — the snapshot-install path of the replicated coordinator.
  // Never called on a registry that is also taking live mutations.
  void Restore(std::vector<WorkerInfo> workers, std::uint64_t epoch);

  // Full state dump in registration order (the snapshot-capture path;
  // Snapshot() is the wire view, this is the replication image).
  [[nodiscard]] std::vector<WorkerInfo> Dump() const;

  [[nodiscard]] std::uint64_t epoch() const;
  [[nodiscard]] std::size_t LiveCount(net::WireRole role) const;
  // Live workers of `role` in the canonical placement order.
  //
  // ORDERING CONTRACT: the result is sorted ascending by worker id —
  // NOT registration order (that is Snapshot()/Dump()).  The sort is what
  // lets every participant derive the same worker -> logical-node mapping
  // independently from a Membership view, so placement plans (CodedPlan
  // holder sets, the placement plane's node bridge) agree across
  // processes without any extra coordination.  Callers must not re-sort;
  // the coord_test suite pins this order.
  [[nodiscard]] std::vector<WorkerInfo> LiveWorkers(net::WireRole role) const;
  [[nodiscard]] bool Lookup(const std::string& id, WorkerInfo* out) const;

 private:
  mutable std::mutex mu_;
  std::vector<WorkerInfo> workers_;  // registration order, ids unique
  std::uint64_t epoch_ = 0;
};

}  // namespace opmr::coord
