#include "coord/member.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace opmr::coord {

namespace {

// Dial options for an HA endpoint list: the replacement leader is already
// serving by the time the client rotates, so a dead endpoint should fail
// fast instead of burning the election window on backoff, and a failed
// send must surface immediately (send_attempts = 1) rather than spin the
// in-place reconnect loop — endpoint rotation IS the retry policy here.
net::TcpTransport::Options FailoverDialOptions() {
  net::TcpTransport::Options opts;
  opts.connect_attempts = 8;
  opts.connect_backoff_ms = 25;
  opts.send_attempts = 1;
  return opts;
}

}  // namespace

CoordClient::CoordClient(MetricRegistry* metrics, Options options)
    : options_(std::move(options)),
      metrics_(metrics),
      heartbeats_sent_(metrics->Get("coord.client.heartbeats_sent")),
      heartbeats_suppressed_(
          metrics->Get("coord.client.heartbeats_suppressed")),
      registers_sent_(metrics->Get("coord.client.registers_sent")),
      registers_suppressed_(metrics->Get("coord.client.registers_suppressed")),
      evictions_(metrics->Get("coord.client.evictions")),
      failovers_(metrics->Get("coord.client.failovers")),
      fenced_views_(metrics->Get("coord.client.fenced_views")),
      endpoints_(options_.endpoints.empty()
                     ? std::vector<std::string>{options_.coordinator}
                     : options_.endpoints) {
  if (options_.coordinator.empty()) {
    options_.coordinator = endpoints_.front();
  }
  current_endpoint_ = endpoints_.front();
  // Single-endpoint clients keep the default transport policy (patient
  // dials, in-place reconnects); an HA list fails fast and rotates.
  transport_ = endpoints_.size() > 1
                   ? std::make_unique<net::TcpTransport>(
                         metrics_, endpoints_.front(), FailoverDialOptions())
                   : std::make_unique<net::TcpTransport>(metrics_,
                                                         endpoints_.front());
}

CoordClient::~CoordClient() { Stop(); }

void CoordClient::Join(double timeout_s) {
  try {
    conn_ =
        transport_->Connect([this](net::Connection* from, net::Frame frame) {
          HandleReply(from, std::move(frame));
        });
  } catch (const net::TransportError&) {
    if (endpoints_.size() == 1) throw;
    conn_.reset();  // first endpoint down; the join loop rotates
  }
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_s));
  int attempt = 0;
  int unreachable = 0;
  std::unique_lock lock(mu_);
  while (generation_ == 0 && !failed_) {
    if (std::chrono::steady_clock::now() >= deadline ||
        attempt >= options_.register_attempts) {
      throw CoordError("coord: worker '" + options_.worker_id +
                       "' failed to join " + current_endpoint_ + " within " +
                       std::to_string(timeout_s) + "s");
    }
    ++attempt;
    bool rotate = false;
    std::string target;
    if (pending_switch_) {
      // A standby answered our Register with a redirect to the leader.
      pending_switch_ = false;
      target = switch_target_;
      switch_target_.clear();
      rotate = true;
    }
    const bool disconnected = conn_ == nullptr;
    lock.unlock();
    if (rotate || disconnected) RotateTransport(target);
    const SendResult r = SendRegisterOnce(attempt);
    lock.lock();
    if (r == SendResult::kUnreachable) {
      if (endpoints_.size() > 1 &&
          ++unreachable >= options_.failover_threshold) {
        unreachable = 0;
        avoid_endpoint_ = current_endpoint_;
        lock.unlock();
        RotateTransport(std::string());
        lock.lock();
      }
    } else {
      unreachable = 0;
    }
    cv_.wait_until(
        lock,
        std::min(deadline,
                 std::chrono::steady_clock::now() +
                     std::chrono::duration_cast<
                         std::chrono::steady_clock::duration>(
                         std::chrono::duration<double, std::milli>(
                             options_.register_retry_ms))),
        [this] { return generation_ != 0 || failed_ || pending_switch_; });
  }
  if (failed_) {
    throw CoordError("coord: join rejected: " + error_);
  }
  heartbeat_thread_ = std::thread([this] { HeartbeatLoop(); });
}

void CoordClient::Stop() {
  {
    std::scoped_lock lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (heartbeat_thread_.joinable()) heartbeat_thread_.join();
  if (conn_) conn_->Close();
  transport_->Shutdown();
}

void CoordClient::SetOnEvicted(std::function<void()> cb) {
  std::scoped_lock lock(mu_);
  on_evicted_ = std::move(cb);
}

CoordClient::SendResult CoordClient::SendRegisterOnce(int attempt) {
  if (net::NetFaultHook* hook = net::GetNetFaultHook()) {
    if (hook->OnRegisterSend(options_.worker_id, attempt)) {
      registers_suppressed_->Increment();
      return SendResult::kSuppressed;
    }
  }
  if (!conn_) return SendResult::kUnreachable;
  net::RegisterMsg msg;
  msg.worker = options_.worker_id;
  msg.endpoint = options_.endpoint;
  msg.role = options_.role;
  msg.auth = options_.secret;
  try {
    conn_->Send(msg.ToFrame());
  } catch (const net::TransportError&) {
    return SendResult::kUnreachable;  // caller's loop retries / rotates
  }
  registers_sent_->Increment();
  return SendResult::kSent;
}

bool CoordClient::RotateTransport(const std::string& target) {
  if (conn_) {
    conn_->Close();
    conn_.reset();
  }
  transport_->Shutdown();
  std::string next = target;
  if (next.empty()) {
    active_ = (active_ + 1) % endpoints_.size();
    next = endpoints_[active_];
  } else {
    // Redirect destinations that appear in the configured list anchor the
    // rotation there; unknown ones are dialed without moving the cursor.
    for (std::size_t i = 0; i < endpoints_.size(); ++i) {
      if (endpoints_[i] == next) {
        active_ = i;
        break;
      }
    }
  }
  transport_ =
      std::make_unique<net::TcpTransport>(metrics_, next, FailoverDialOptions());
  {
    std::scoped_lock lock(mu_);
    current_endpoint_ = next;
  }
  try {
    conn_ =
        transport_->Connect([this](net::Connection* from, net::Frame frame) {
          HandleReply(from, std::move(frame));
        });
  } catch (const net::TransportError&) {
    conn_.reset();
    return false;
  }
  return true;
}

void CoordClient::HandleReply(net::Connection* from, net::Frame frame) {
  (void)from;
  try {
    switch (frame.type) {
      case net::FrameType::kMembership: {
        net::MembershipMsg msg = net::MembershipMsg::Parse(frame);
        std::scoped_lock lock(mu_);
        if (msg.leader_epoch < leader_epoch_seen_) {
          // A deposed leader's view: epoch fencing drops it outright.
          fenced_views_->Increment();
          return;
        }
        const bool new_term = msg.leader_epoch > leader_epoch_seen_;
        leader_epoch_seen_ = msg.leader_epoch;
        // Within one leadership term the registry epoch orders views; a
        // new term supersedes unconditionally (the new leader replays the
        // log from its own clock).
        if (!new_term && msg.epoch < view_.epoch) return;
        view_ = std::move(msg);
        for (const net::MembershipMsg::Entry& e : view_.entries) {
          if (e.worker != options_.worker_id) continue;
          if (e.alive && e.generation > generation_) {
            // Fresh registration confirmed (initial join, rejoin after
            // eviction, or failover re-register at a new leader).
            generation_ = e.generation;
            heartbeat_seq_ = 0;
            rejoin_attempt_ = 0;
            avoid_endpoint_.clear();
            if (rejoining_) {
              rejoining_ = false;
              hb_failures_ = 0;
              ++failover_count_;
              failovers_->Increment();
            }
            if (evicted_) {
              evicted_ = false;
              notify_evicted_ = true;
              ++eviction_count_;
            }
          } else if (!e.alive && generation_ != 0 &&
                     e.generation == generation_) {
            // Our lease expired: the registry holds our generation but
            // marks us dead.  Re-register from the heartbeat thread.
            evicted_ = true;
          }
        }
        cv_.notify_all();
        return;
      }
      case net::FrameType::kLeaderClaim: {
        // A standby answered our Register by naming the current leader.
        const net::LeaderClaimMsg msg = net::LeaderClaimMsg::Parse(frame);
        std::scoped_lock lock(mu_);
        if (msg.epoch < leader_epoch_seen_) return;  // stale redirect
        leader_epoch_seen_ = std::max(leader_epoch_seen_, msg.epoch);
        // A redirect back to the endpoint we just abandoned for send
        // failures means the standby has not yet noticed the leader's
        // death: stay put and keep registering here instead of burning a
        // dial backoff on a dead port.
        if (!msg.endpoint.empty() && msg.endpoint != current_endpoint_ &&
            msg.endpoint != avoid_endpoint_) {
          pending_switch_ = true;
          switch_target_ = msg.endpoint;
          cv_.notify_all();
        }
        return;
      }
      case net::FrameType::kAbort: {
        const net::AbortMsg msg = net::AbortMsg::Parse(frame);
        std::scoped_lock lock(mu_);
        failed_ = true;
        error_ = msg.reason;
        cv_.notify_all();
        return;
      }
      default:
        return;
    }
  } catch (const net::WireError&) {
    // Corrupt-but-CRC-clean payload: ignore; the next broadcast supersedes.
  }
}

void CoordClient::HeartbeatLoop() {
  std::unique_lock lock(mu_);
  while (!stopping_) {
    cv_.wait_for(lock, std::chrono::duration<double, std::milli>(
                           options_.heartbeat_interval_ms));
    if (stopping_) return;
    if (failed_) continue;
    if (pending_switch_) {
      pending_switch_ = false;
      const std::string target = switch_target_;
      switch_target_.clear();
      lock.unlock();
      const bool ok = RotateTransport(target);
      lock.lock();
      if (ok) {
        // Re-register at the new leader under the same worker id; the
        // replicated registry bumps our generation without an eviction.
        rejoining_ = true;
        rejoin_attempt_ = 0;
      } else {
        pending_switch_ = true;  // dial failed; rotate again next tick
      }
      continue;
    }
    if (notify_evicted_) {
      notify_evicted_ = false;
      std::function<void()> cb = on_evicted_;
      lock.unlock();
      if (cb) cb();
      lock.lock();
      continue;
    }
    if (evicted_ || rejoining_) {
      const int attempt = ++rejoin_attempt_;
      lock.unlock();
      SendRegisterOnce(attempt);
      lock.lock();
      continue;
    }
    if (generation_ == 0) continue;
    const std::uint64_t ordinal = ++heartbeat_seq_;
    const std::uint64_t generation = generation_;
    lock.unlock();
    bool suppressed = false;
    bool send_failed = false;
    if (net::NetFaultHook* hook = net::GetNetFaultHook()) {
      suppressed = hook->OnHeartbeatSend(options_.worker_id, ordinal,
                                         static_cast<int>(generation));
    }
    if (suppressed) {
      heartbeats_suppressed_->Increment();
    } else if (!conn_) {
      send_failed = true;
    } else {
      net::HeartbeatMsg msg;
      msg.worker = options_.worker_id;
      msg.generation = generation;
      msg.seq = ordinal;
      if (options_.load_probe) {
        msg.load = options_.load_probe();
        if (msg.load.size() > net::kMaxLoadEntries) {
          msg.load.resize(net::kMaxLoadEntries);
        }
      }
      try {
        conn_->Send(msg.ToFrame());
        heartbeats_sent_->Increment();
      } catch (const net::TransportError&) {
        // Coordinator unreachable: the lease will lapse and the rejoin
        // path takes over once connectivity returns; with an HA endpoint
        // list, consecutive failures trigger a failover rotation instead.
        send_failed = true;
      }
    }
    lock.lock();
    if (send_failed) {
      if (endpoints_.size() > 1 &&
          ++hb_failures_ >= options_.failover_threshold) {
        hb_failures_ = 0;
        pending_switch_ = true;  // rotate at the next tick
        switch_target_.clear();
        avoid_endpoint_ = current_endpoint_;
      }
    } else if (!suppressed) {
      hb_failures_ = 0;
    }
  }
}

net::MembershipMsg CoordClient::View() const {
  std::scoped_lock lock(mu_);
  return view_;
}

std::uint64_t CoordClient::generation() const {
  std::scoped_lock lock(mu_);
  return generation_;
}

std::uint64_t CoordClient::evictions() const {
  std::scoped_lock lock(mu_);
  return eviction_count_;
}

std::uint64_t CoordClient::failovers() const {
  std::scoped_lock lock(mu_);
  return failover_count_;
}

std::uint64_t CoordClient::leader_epoch() const {
  std::scoped_lock lock(mu_);
  return leader_epoch_seen_;
}

std::string CoordClient::current_endpoint() const {
  std::scoped_lock lock(mu_);
  return current_endpoint_;
}

bool CoordClient::failed() const {
  std::scoped_lock lock(mu_);
  return failed_;
}

std::string CoordClient::error() const {
  std::scoped_lock lock(mu_);
  return error_;
}

bool CoordClient::WaitForRole(net::WireRole role, std::size_t n,
                              double timeout_s,
                              std::vector<net::MembershipMsg::Entry>* out) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  std::unique_lock lock(mu_);
  for (;;) {
    std::vector<net::MembershipMsg::Entry> live;
    for (const net::MembershipMsg::Entry& e : view_.entries) {
      if (e.alive && e.role == role) live.push_back(e);
    }
    if (live.size() >= n) {
      if (out != nullptr) {
        std::sort(live.begin(), live.end(),
                  [](const auto& a, const auto& b) { return a.worker < b.worker; });
        *out = std::move(live);
      }
      return true;
    }
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      return false;
    }
  }
}

}  // namespace opmr::coord
