#include "coord/member.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace opmr::coord {

CoordClient::CoordClient(MetricRegistry* metrics, Options options)
    : options_(std::move(options)),
      metrics_(metrics),
      heartbeats_sent_(metrics->Get("coord.client.heartbeats_sent")),
      heartbeats_suppressed_(
          metrics->Get("coord.client.heartbeats_suppressed")),
      registers_sent_(metrics->Get("coord.client.registers_sent")),
      registers_suppressed_(metrics->Get("coord.client.registers_suppressed")),
      evictions_(metrics->Get("coord.client.evictions")),
      transport_(std::make_unique<net::TcpTransport>(metrics,
                                                     options_.coordinator)) {}

CoordClient::~CoordClient() { Stop(); }

void CoordClient::Join(double timeout_s) {
  conn_ = transport_->Connect([this](net::Connection* from, net::Frame frame) {
    HandleReply(from, std::move(frame));
  });
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_s));
  int attempt = 0;
  std::unique_lock lock(mu_);
  while (generation_ == 0 && !failed_) {
    if (std::chrono::steady_clock::now() >= deadline ||
        attempt >= options_.register_attempts) {
      throw CoordError("coord: worker '" + options_.worker_id +
                       "' failed to join " + options_.coordinator + " within " +
                       std::to_string(timeout_s) + "s");
    }
    ++attempt;
    lock.unlock();
    SendRegisterOnce(attempt);
    lock.lock();
    cv_.wait_until(
        lock,
        std::min(deadline,
                 std::chrono::steady_clock::now() +
                     std::chrono::duration_cast<
                         std::chrono::steady_clock::duration>(
                         std::chrono::duration<double, std::milli>(
                             options_.register_retry_ms))),
        [this] { return generation_ != 0 || failed_; });
  }
  if (failed_) {
    throw CoordError("coord: join rejected: " + error_);
  }
  heartbeat_thread_ = std::thread([this] { HeartbeatLoop(); });
}

void CoordClient::Stop() {
  {
    std::scoped_lock lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (heartbeat_thread_.joinable()) heartbeat_thread_.join();
  if (conn_) conn_->Close();
  transport_->Shutdown();
}

void CoordClient::SetOnEvicted(std::function<void()> cb) {
  std::scoped_lock lock(mu_);
  on_evicted_ = std::move(cb);
}

bool CoordClient::SendRegisterOnce(int attempt) {
  if (net::NetFaultHook* hook = net::GetNetFaultHook()) {
    if (hook->OnRegisterSend(options_.worker_id, attempt)) {
      registers_suppressed_->Increment();
      return false;
    }
  }
  net::RegisterMsg msg;
  msg.worker = options_.worker_id;
  msg.endpoint = options_.endpoint;
  msg.role = options_.role;
  msg.auth = options_.secret;
  try {
    conn_->Send(msg.ToFrame());
  } catch (const net::TransportError&) {
    return false;  // coordinator unreachable; the caller's loop retries
  }
  registers_sent_->Increment();
  return true;
}

void CoordClient::HandleReply(net::Connection* from, net::Frame frame) {
  (void)from;
  try {
    switch (frame.type) {
      case net::FrameType::kMembership: {
        net::MembershipMsg msg = net::MembershipMsg::Parse(frame);
        std::scoped_lock lock(mu_);
        if (msg.epoch < view_.epoch) return;  // stale view
        view_ = std::move(msg);
        for (const net::MembershipMsg::Entry& e : view_.entries) {
          if (e.worker != options_.worker_id) continue;
          if (e.alive && e.generation > generation_) {
            // Fresh registration confirmed (initial join or a rejoin).
            generation_ = e.generation;
            heartbeat_seq_ = 0;
            rejoin_attempt_ = 0;
            if (evicted_) {
              evicted_ = false;
              notify_evicted_ = true;
              ++eviction_count_;
            }
          } else if (!e.alive && generation_ != 0 &&
                     e.generation == generation_) {
            // Our lease expired: the registry holds our generation but
            // marks us dead.  Re-register from the heartbeat thread.
            evicted_ = true;
          }
        }
        cv_.notify_all();
        return;
      }
      case net::FrameType::kAbort: {
        const net::AbortMsg msg = net::AbortMsg::Parse(frame);
        std::scoped_lock lock(mu_);
        failed_ = true;
        error_ = msg.reason;
        cv_.notify_all();
        return;
      }
      default:
        return;
    }
  } catch (const net::WireError&) {
    // Corrupt-but-CRC-clean payload: ignore; the next broadcast supersedes.
  }
}

void CoordClient::HeartbeatLoop() {
  std::unique_lock lock(mu_);
  while (!stopping_) {
    cv_.wait_for(lock, std::chrono::duration<double, std::milli>(
                           options_.heartbeat_interval_ms));
    if (stopping_) return;
    if (failed_) continue;
    if (notify_evicted_) {
      notify_evicted_ = false;
      std::function<void()> cb = on_evicted_;
      lock.unlock();
      if (cb) cb();
      lock.lock();
      continue;
    }
    if (evicted_) {
      const int attempt = ++rejoin_attempt_;
      lock.unlock();
      SendRegisterOnce(attempt);
      lock.lock();
      continue;
    }
    if (generation_ == 0) continue;
    const std::uint64_t ordinal = ++heartbeat_seq_;
    const std::uint64_t generation = generation_;
    lock.unlock();
    bool suppressed = false;
    if (net::NetFaultHook* hook = net::GetNetFaultHook()) {
      suppressed = hook->OnHeartbeatSend(options_.worker_id, ordinal,
                                         static_cast<int>(generation));
    }
    if (suppressed) {
      heartbeats_suppressed_->Increment();
    } else {
      net::HeartbeatMsg msg;
      msg.worker = options_.worker_id;
      msg.generation = generation;
      msg.seq = ordinal;
      try {
        conn_->Send(msg.ToFrame());
        heartbeats_sent_->Increment();
      } catch (const net::TransportError&) {
        // Coordinator unreachable: the lease will lapse and the rejoin
        // path takes over once connectivity returns.
      }
    }
    lock.lock();
  }
}

net::MembershipMsg CoordClient::View() const {
  std::scoped_lock lock(mu_);
  return view_;
}

std::uint64_t CoordClient::generation() const {
  std::scoped_lock lock(mu_);
  return generation_;
}

std::uint64_t CoordClient::evictions() const {
  std::scoped_lock lock(mu_);
  return eviction_count_;
}

bool CoordClient::failed() const {
  std::scoped_lock lock(mu_);
  return failed_;
}

std::string CoordClient::error() const {
  std::scoped_lock lock(mu_);
  return error_;
}

bool CoordClient::WaitForRole(net::WireRole role, std::size_t n,
                              double timeout_s,
                              std::vector<net::MembershipMsg::Entry>* out) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  std::unique_lock lock(mu_);
  for (;;) {
    std::vector<net::MembershipMsg::Entry> live;
    for (const net::MembershipMsg::Entry& e : view_.entries) {
      if (e.alive && e.role == role) live.push_back(e);
    }
    if (live.size() >= n) {
      if (out != nullptr) {
        std::sort(live.begin(), live.end(),
                  [](const auto& a, const auto& b) { return a.worker < b.worker; });
        *out = std::move(live);
      }
      return true;
    }
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      return false;
    }
  }
}

}  // namespace opmr::coord
