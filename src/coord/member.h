// CoordClient: a worker's membership agent.
//
// Owns the client connection to the coordinator, performs the
// authenticated Register handshake, renews the lease from a background
// heartbeat thread, and maintains the latest Membership view for the rest
// of the process to consult (shuffle endpoint discovery, placement ranks).
//
// Both outbound paths run through the process-global NetFaultHook:
// OnRegisterSend can swallow a registration (registry_partition faults)
// and OnHeartbeatSend can starve the lease (heartbeat_loss faults).  When
// the coordinator evicts this worker — observed either in a Membership
// broadcast or in the view echoed back after a stale heartbeat — the
// client re-registers under a fresh generation and then fires the
// on_evicted callback exactly once per eviction.  That callback is where
// ClusterExecutor hangs ShuffleClient::ReplayUnacked(), turning a
// membership flap into an ack-window replay instead of a failed job.
//
// HA mode: `endpoints` lists every replica of a replicated coordinator.
// On leader loss (consecutive heartbeat send failures) or a kLeaderClaim
// redirect from a standby, the client rotates to the next endpoint,
// reconnects, and re-registers under the same worker id.  The replicated
// registry still holds its record, so the new leader bumps the generation
// (continuity, never a reset to 1), no eviction fires, and in-flight
// shuffle ack windows replay exactly as on any reconnect.  Membership
// views carry the sender's leadership epoch; views from a deposed leader
// (lower epoch) are dropped — the fencing half of the election protocol.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "metrics/counters.h"
#include "net/tcp.h"
#include "net/transport.h"
#include "net/wire.h"

namespace opmr::coord {

class CoordError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class CoordClient {
 public:
  struct Options {
    std::string coordinator;  // host:port of the coordinator endpoint
    // HA endpoint list (every replica, any order).  Empty falls back to
    // {coordinator}; the client starts on the first entry and rotates on
    // failure or redirect.
    std::vector<std::string> endpoints;
    std::string worker_id;    // stable unique id for this worker process
    std::string endpoint;     // advertised host:port this worker serves on
    net::WireRole role = net::WireRole::kMap;
    std::string secret;       // shared secret for Register auth
    double heartbeat_interval_ms = 200;
    double register_retry_ms = 100;  // backoff between Register attempts
    int register_attempts = 100;     // bound on initial-join attempts
    // Consecutive heartbeat send failures before rotating endpoints (only
    // meaningful with > 1 endpoint).
    int failover_threshold = 2;
    // Load probe (v6): polled on every heartbeat tick, outside any
    // CoordClient lock, to fill HeartbeatMsg::load (net::kLoad* indices,
    // at most net::kMaxLoadEntries).  Unset sends an empty vector — the
    // coordinator's placement view then reads this worker as unloaded.
    // Must be thread-safe: it runs on the heartbeat thread.
    std::function<std::vector<std::uint32_t>()> load_probe;
  };

  CoordClient(MetricRegistry* metrics, Options options);
  ~CoordClient();

  CoordClient(const CoordClient&) = delete;
  CoordClient& operator=(const CoordClient&) = delete;

  // Joins the group: connects, registers (retrying through the fault
  // gate), and blocks until the coordinator's Membership confirms this
  // worker alive.  Throws CoordError on auth rejection or timeout.
  // Starts the heartbeat thread on success.
  void Join(double timeout_s);

  // Stops heartbeats and closes the coordinator connection.
  void Stop();

  // Callback fired (from the heartbeat thread, outside any CoordClient
  // lock) after each successful post-eviction re-registration.
  void SetOnEvicted(std::function<void()> cb);

  [[nodiscard]] net::MembershipMsg View() const;
  [[nodiscard]] std::uint64_t generation() const;
  [[nodiscard]] std::uint64_t evictions() const;
  // Completed endpoint failovers (re-registration confirmed by the new
  // leader).  Evictions are counted separately — a failover keeps the
  // worker's registry record alive throughout.
  [[nodiscard]] std::uint64_t failovers() const;
  // Highest leadership epoch observed in any Membership view (0 when
  // talking to an unreplicated coordinator).
  [[nodiscard]] std::uint64_t leader_epoch() const;
  [[nodiscard]] std::string current_endpoint() const;
  [[nodiscard]] bool failed() const;
  [[nodiscard]] std::string error() const;

  // Blocks until the view holds >= n live workers of `role`; fills `out`
  // (sorted by worker id) when provided.  False on timeout.
  bool WaitForRole(net::WireRole role, std::size_t n, double timeout_s,
                   std::vector<net::MembershipMsg::Entry>* out = nullptr);

 private:
  enum class SendResult { kSent, kSuppressed, kUnreachable };

  void HandleReply(net::Connection* from, net::Frame frame);
  void HeartbeatLoop();
  // Sends one Register through the OnRegisterSend gate.
  SendResult SendRegisterOnce(int attempt);
  // Tears down the current transport and dials `target` (empty = the next
  // endpoint in the rotation).  Only called from the Join thread before
  // the heartbeat thread starts, or from the heartbeat thread after.
  // Returns false when the dial failed (conn_ left empty).
  bool RotateTransport(const std::string& target);

  Options options_;
  MetricRegistry* metrics_;
  Counter* heartbeats_sent_ = nullptr;
  Counter* heartbeats_suppressed_ = nullptr;
  Counter* registers_sent_ = nullptr;
  Counter* registers_suppressed_ = nullptr;
  Counter* evictions_ = nullptr;
  Counter* failovers_ = nullptr;
  Counter* fenced_views_ = nullptr;

  std::vector<std::string> endpoints_;
  std::size_t active_ = 0;  // index into endpoints_ (Join/heartbeat thread)
  std::unique_ptr<net::TcpTransport> transport_;
  std::shared_ptr<net::Connection> conn_;

  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  bool stopping_ = false;
  bool failed_ = false;
  std::string error_;
  net::MembershipMsg view_;
  std::string current_endpoint_;
  std::uint64_t generation_ = 0;   // 0 = not yet confirmed registered
  std::uint64_t heartbeat_seq_ = 0;  // ordinal within the current generation
  std::uint64_t leader_epoch_seen_ = 0;
  bool evicted_ = false;           // view says we are dead; must re-register
  int rejoin_attempt_ = 0;
  bool notify_evicted_ = false;    // rejoin confirmed; fire on_evicted
  std::uint64_t eviction_count_ = 0;
  // Failover machinery.
  bool pending_switch_ = false;    // rotate endpoints at the next tick
  std::string switch_target_;      // redirect destination ("" = rotate)
  // Endpoint we just abandoned for send failures.  A standby that has not
  // yet noticed the leader's death redirects us straight back to it;
  // dialing a dead endpoint costs the full connect backoff, so redirects
  // naming this endpoint are ignored until a registration is confirmed.
  std::string avoid_endpoint_;
  bool rejoining_ = false;         // re-register against the new leader
  int hb_failures_ = 0;            // consecutive heartbeat send failures
  std::uint64_t failover_count_ = 0;
  std::function<void()> on_evicted_;
  std::thread heartbeat_thread_;
};

}  // namespace opmr::coord
