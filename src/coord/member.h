// CoordClient: a worker's membership agent.
//
// Owns the client connection to the coordinator, performs the
// authenticated Register handshake, renews the lease from a background
// heartbeat thread, and maintains the latest Membership view for the rest
// of the process to consult (shuffle endpoint discovery, placement ranks).
//
// Both outbound paths run through the process-global NetFaultHook:
// OnRegisterSend can swallow a registration (registry_partition faults)
// and OnHeartbeatSend can starve the lease (heartbeat_loss faults).  When
// the coordinator evicts this worker — observed either in a Membership
// broadcast or in the view echoed back after a stale heartbeat — the
// client re-registers under a fresh generation and then fires the
// on_evicted callback exactly once per eviction.  That callback is where
// ClusterExecutor hangs ShuffleClient::ReplayUnacked(), turning a
// membership flap into an ack-window replay instead of a failed job.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "metrics/counters.h"
#include "net/tcp.h"
#include "net/transport.h"
#include "net/wire.h"

namespace opmr::coord {

class CoordError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class CoordClient {
 public:
  struct Options {
    std::string coordinator;  // host:port of the coordinator endpoint
    std::string worker_id;    // stable unique id for this worker process
    std::string endpoint;     // advertised host:port this worker serves on
    net::WireRole role = net::WireRole::kMap;
    std::string secret;       // shared secret for Register auth
    double heartbeat_interval_ms = 200;
    double register_retry_ms = 100;  // backoff between Register attempts
    int register_attempts = 100;     // bound on initial-join attempts
  };

  CoordClient(MetricRegistry* metrics, Options options);
  ~CoordClient();

  CoordClient(const CoordClient&) = delete;
  CoordClient& operator=(const CoordClient&) = delete;

  // Joins the group: connects, registers (retrying through the fault
  // gate), and blocks until the coordinator's Membership confirms this
  // worker alive.  Throws CoordError on auth rejection or timeout.
  // Starts the heartbeat thread on success.
  void Join(double timeout_s);

  // Stops heartbeats and closes the coordinator connection.
  void Stop();

  // Callback fired (from the heartbeat thread, outside any CoordClient
  // lock) after each successful post-eviction re-registration.
  void SetOnEvicted(std::function<void()> cb);

  [[nodiscard]] net::MembershipMsg View() const;
  [[nodiscard]] std::uint64_t generation() const;
  [[nodiscard]] std::uint64_t evictions() const;
  [[nodiscard]] bool failed() const;
  [[nodiscard]] std::string error() const;

  // Blocks until the view holds >= n live workers of `role`; fills `out`
  // (sorted by worker id) when provided.  False on timeout.
  bool WaitForRole(net::WireRole role, std::size_t n, double timeout_s,
                   std::vector<net::MembershipMsg::Entry>* out = nullptr);

 private:
  void HandleReply(net::Connection* from, net::Frame frame);
  void HeartbeatLoop();
  // Sends one Register through the OnRegisterSend gate.  Returns false
  // when the fault hook suppressed it.
  bool SendRegisterOnce(int attempt);

  Options options_;
  MetricRegistry* metrics_;
  Counter* heartbeats_sent_ = nullptr;
  Counter* heartbeats_suppressed_ = nullptr;
  Counter* registers_sent_ = nullptr;
  Counter* registers_suppressed_ = nullptr;
  Counter* evictions_ = nullptr;

  std::unique_ptr<net::TcpTransport> transport_;
  std::shared_ptr<net::Connection> conn_;

  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  bool stopping_ = false;
  bool failed_ = false;
  std::string error_;
  net::MembershipMsg view_;
  std::uint64_t generation_ = 0;   // 0 = not yet confirmed registered
  std::uint64_t heartbeat_seq_ = 0;  // ordinal within the current generation
  bool evicted_ = false;           // view says we are dead; must re-register
  int rejoin_attempt_ = 0;
  bool notify_evicted_ = false;    // rejoin confirmed; fire on_evicted
  std::uint64_t eviction_count_ = 0;
  std::function<void()> on_evicted_;
  std::thread heartbeat_thread_;
};

}  // namespace opmr::coord
