#include "coord/coordinator.h"

#include <chrono>
#include <utility>
#include <vector>

#include "net/wire.h"

namespace opmr::coord {

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Coordinator::Coordinator(net::Transport* transport, MetricRegistry* metrics,
                         Options options)
    : transport_(transport),
      options_(std::move(options)),
      registers_(metrics->Get("coord.registers")),
      heartbeats_(metrics->Get("coord.heartbeats")),
      stale_heartbeats_(metrics->Get("coord.stale_heartbeats")),
      expirations_(metrics->Get("coord.expirations")),
      auth_failures_(metrics->Get("coord.auth_failures")),
      workers_lost_(metrics->Get("coord.workers_lost")),
      workers_returned_(metrics->Get("coord.workers_returned")) {
  on_worker_lost_ = options_.on_worker_lost;
  on_worker_returned_ = options_.on_worker_returned;
  transport_->Listen([this](net::Connection* from, net::Frame frame) {
    HandleFrame(from, std::move(frame));
  });
  sweeper_ = std::thread([this] { SweeperLoop(); });
}

Coordinator::~Coordinator() { Stop(); }

void Coordinator::Stop() {
  {
    std::scoped_lock lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (sweeper_.joinable()) sweeper_.join();
}

void Coordinator::HandleFrame(net::Connection* from, net::Frame frame) {
  try {
    switch (frame.type) {
      case net::FrameType::kRegister: {
        const net::RegisterMsg msg = net::RegisterMsg::Parse(frame);
        if (!options_.secret.empty() &&
            !net::ConstantTimeEquals(options_.secret, msg.auth)) {
          auth_failures_->Increment();
          net::AbortMsg abort;
          abort.reason = "coordinator: authentication failed for worker '" +
                         msg.worker + "'";
          try {
            from->Send(abort.ToFrame());
          } catch (const net::TransportError&) {
          }
          return;
        }
        registry_.Register(msg.worker, msg.endpoint, msg.role, NowSeconds());
        registers_->Increment();
        bool returned = false;
        {
          std::scoped_lock lock(mu_);
          member_conns_[msg.worker] = from;
          returned = suspects_.erase(msg.worker) > 0;
        }
        cv_.notify_all();
        if (returned) {
          workers_returned_->Increment();
          std::function<void(const std::string&)> cb;
          {
            std::scoped_lock cb_lock(cb_mu_);
            cb = on_worker_returned_;
          }
          if (cb) cb(msg.worker);
        }
        BroadcastMembership();
        return;
      }
      case net::FrameType::kHeartbeat: {
        const net::HeartbeatMsg msg = net::HeartbeatMsg::Parse(frame);
        if (registry_.Heartbeat(msg.worker, msg.generation, NowSeconds(),
                                msg.load)) {
          heartbeats_->Increment();
        } else {
          // Stale generation or evicted worker: answer with the current
          // view so the sender learns its fate without waiting for the
          // next broadcast, then lets its rejoin logic take over.
          stale_heartbeats_->Increment();
          try {
            from->Send(registry_.Snapshot().ToFrame());
          } catch (const net::TransportError&) {
          }
        }
        return;
      }
      default:
        return;  // not a coordination frame; ignore
    }
  } catch (const net::WireError&) {
    // Semantically corrupt payload on a CRC-clean frame: drop it.  The
    // sender will retry (Register) or get expired (Heartbeat).
  }
}

void Coordinator::BroadcastMembership() {
  const net::Frame frame = registry_.Snapshot().ToFrame();
  std::vector<net::Connection*> conns;
  {
    std::scoped_lock lock(mu_);
    conns.reserve(member_conns_.size());
    for (const auto& [id, conn] : member_conns_) conns.push_back(conn);
  }
  for (net::Connection* conn : conns) {
    try {
      conn->Send(frame);
    } catch (const net::TransportError&) {
      // Dead connection: the lease sweeper is the authority on worker
      // death, not a broadcast failure.
    }
  }
}

std::size_t Coordinator::SweepNow() { return SweepNow(NowSeconds()); }

std::size_t Coordinator::SweepNow(double now_s) {
  const std::vector<std::string> expired =
      registry_.ExpireLeases(now_s, options_.lease_s);
  std::vector<std::string> lost;
  {
    std::scoped_lock lock(mu_);
    for (const std::string& id : expired) {
      WorkerInfo info;
      if (!registry_.Lookup(id, &info)) continue;
      suspects_[id] =
          Suspect{info.generation, now_s + options_.rejoin_grace_s};
    }
    for (auto it = suspects_.begin(); it != suspects_.end();) {
      WorkerInfo info;
      const bool known = registry_.Lookup(it->first, &info);
      if (known && info.alive) {
        // Rejoined between the register path and this sweep.
        it = suspects_.erase(it);
      } else if (now_s >= it->second.deadline_s) {
        lost.push_back(it->first);
        it = suspects_.erase(it);
      } else {
        ++it;
      }
    }
  }
  expirations_->Add(static_cast<std::int64_t>(expired.size()));
  if (!expired.empty()) BroadcastMembership();
  if (!lost.empty()) {
    std::function<void(const std::string&)> cb;
    {
      std::scoped_lock cb_lock(cb_mu_);
      cb = on_worker_lost_;
    }
    for (const std::string& id : lost) {
      workers_lost_->Increment();
      if (cb) cb(id);
    }
  }
  return expired.size();
}

void Coordinator::SetOnWorkerLost(std::function<void(const std::string&)> cb) {
  std::scoped_lock lock(cb_mu_);
  on_worker_lost_ = std::move(cb);
}

void Coordinator::SetOnWorkerReturned(
    std::function<void(const std::string&)> cb) {
  std::scoped_lock lock(cb_mu_);
  on_worker_returned_ = std::move(cb);
}

void Coordinator::SweeperLoop() {
  std::unique_lock lock(mu_);
  while (!stopping_) {
    cv_.wait_for(lock, std::chrono::duration<double, std::milli>(
                           options_.sweep_interval_ms));
    if (stopping_) return;
    lock.unlock();
    SweepNow();
    lock.lock();
  }
}

bool Coordinator::WaitForWorkers(net::WireRole role, std::size_t n,
                                 double timeout_s) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  std::unique_lock lock(mu_);
  for (;;) {
    if (registry_.LiveCount(role) >= n) return true;
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      return registry_.LiveCount(role) >= n;
    }
  }
}

}  // namespace opmr::coord
