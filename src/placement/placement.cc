#include "placement/placement.h"

#include <algorithm>
#include <stdexcept>

namespace opmr::placement {
namespace {

// SplitMix64 finalizer over (seed, block, node): the deterministic
// tie-break that keeps equal-ranked candidates from always resolving to
// the lowest node id (which would pile ties onto node 0) while staying a
// pure function of the seed.
std::uint64_t Mix64(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  std::uint64_t z = a + 0x9e3779b97f4a7c15ULL * (b + 1) +
                    0xbf58476d1ce4e5b9ULL * (c + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

const char* PlacementModeName(PlacementMode mode) noexcept {
  switch (mode) {
    case PlacementMode::kEngine:
      return "engine";
    case PlacementMode::kRegistrationOrder:
      return "registration";
    case PlacementMode::kLocalityRanked:
      return "locality";
  }
  return "unknown";
}

PlacementMode ParsePlacementMode(const std::string& name) {
  if (name == "engine") return PlacementMode::kEngine;
  if (name == "registration") return PlacementMode::kRegistrationOrder;
  if (name == "locality") return PlacementMode::kLocalityRanked;
  throw std::invalid_argument("unknown placement mode '" + name +
                              "' (expected engine | registration | locality)");
}

PlacementPlane::PlacementPlane(Options options)
    : options_(options),
      planned_backlog_(static_cast<std::size_t>(options.num_nodes), 0),
      slots_held_(static_cast<std::size_t>(options.num_nodes), 0) {
  if (options_.num_nodes <= 0) {
    throw std::invalid_argument("PlacementPlane: num_nodes must be positive");
  }
  if (options_.mode == PlacementMode::kEngine) {
    throw std::invalid_argument(
        "PlacementPlane: mode kEngine means no plane — do not construct one");
  }
}

std::vector<PlacementPlane::NodeView> PlacementPlane::ViewsLocked() const {
  std::vector<NodeView> views(static_cast<std::size_t>(options_.num_nodes));
  if (options_.registry == nullptr) return views;
  std::vector<coord::WorkerInfo> workers = options_.registry->Dump();
  workers.erase(std::remove_if(workers.begin(), workers.end(),
                               [](const coord::WorkerInfo& w) {
                                 return w.role != net::WireRole::kMap;
                               }),
                workers.end());
  if (workers.empty()) return views;  // no coordinator-backed map group
  std::sort(workers.begin(), workers.end(),
            [](const coord::WorkerInfo& a, const coord::WorkerInfo& b) {
              return a.id < b.id;
            });
  const std::size_t n =
      std::min(workers.size(), static_cast<std::size_t>(options_.num_nodes));
  for (std::size_t i = 0; i < n; ++i) {
    const coord::WorkerInfo& w = workers[i];
    views[i].alive = w.alive;
    views[i].reported_load = w.LoadAt(net::kLoadMapSlotsHeld) +
                             w.LoadAt(net::kLoadReduceSlotsHeld) +
                             w.LoadAt(net::kLoadQueueDepth);
    views[i].suspect = w.suspect_count;
  }
  return views;
}

PlacementPlane::PlanEntry PlacementPlane::RankLocked(
    const std::vector<NodeView>& views, std::uint64_t block_id,
    const std::vector<int>& holders, std::size_t ordinal) {
  (void)ordinal;
  PlanEntry entry;
  entry.holders = holders;
  const auto in_range = [&](int n) {
    return n >= 0 && n < options_.num_nodes;
  };
  const auto is_holder = [&](int n) {
    return std::find(holders.begin(), holders.end(), n) != holders.end();
  };

  if (options_.mode == PlacementMode::kRegistrationOrder) {
    // The baseline: hand operations to nodes in registration order,
    // wrapping — blind to where the block lives, who is drowning, and who
    // is flapping.  Dead nodes are still skipped (even naive dispatch does
    // not target a worker the detector evicted).
    for (int step = 0; step < options_.num_nodes; ++step) {
      const int n =
          static_cast<int>((round_robin_ + static_cast<std::size_t>(step)) %
                           static_cast<std::size_t>(options_.num_nodes));
      if (!views[static_cast<std::size_t>(n)].alive) continue;
      round_robin_ =
          (static_cast<std::size_t>(n) + 1) %
          static_cast<std::size_t>(options_.num_nodes);
      entry.node = n;
      entry.local = is_holder(n);
      return entry;
    }
    entry.node = 0;  // nobody alive: plan lands anywhere, execution decides
    entry.local = is_holder(0);
    return entry;
  }

  // kLocalityRanked.  Score every candidate by (load, suspect, seeded
  // hash, node id) and take the minimum — holders first, every live node
  // when no holder survives.
  const auto rank_of = [&](int n) {
    const NodeView& v = views[static_cast<std::size_t>(n)];
    const std::uint64_t load =
        static_cast<std::uint64_t>(
            std::max<std::int64_t>(planned_backlog_[static_cast<std::size_t>(n)],
                                   0)) +
        static_cast<std::uint64_t>(
            std::max<std::int64_t>(slots_held_[static_cast<std::size_t>(n)],
                                   0)) +
        v.reported_load;
    return std::make_tuple(load, v.suspect,
                           Mix64(options_.seed, block_id,
                                 static_cast<std::uint64_t>(n)),
                           n);
  };
  int best = -1;
  for (int n : holders) {
    if (!in_range(n) || !views[static_cast<std::size_t>(n)].alive) continue;
    if (best < 0 || rank_of(n) < rank_of(best)) best = n;
  }
  if (best >= 0) {
    entry.node = best;
    entry.local = true;
    return entry;
  }
  for (int n = 0; n < options_.num_nodes; ++n) {
    if (!views[static_cast<std::size_t>(n)].alive) continue;
    if (best < 0 || rank_of(n) < rank_of(best)) best = n;
  }
  entry.node = best >= 0 ? best : 0;
  entry.local = is_holder(entry.node);
  return entry;
}

void PlacementPlane::PlanJob(int job, const std::vector<BlockInfo>& blocks) {
  std::scoped_lock lock(mu_);
  if (plans_.count(job) != 0) {
    throw std::logic_error("PlacementPlane: job " + std::to_string(job) +
                           " already planned");
  }
  const std::vector<NodeView> views = ViewsLocked();
  JobPlan plan;
  plan.planned_epoch =
      options_.registry != nullptr ? options_.registry->epoch() : 0;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    const BlockInfo& block = blocks[i];
    PlanEntry entry = RankLocked(views, block.block_id, block.replica_nodes, i);
    ++planned_backlog_[static_cast<std::size_t>(entry.node)];
    Assignment a;
    a.seq = next_seq_++;
    a.job = job;
    a.block_id = block.block_id;
    a.node = entry.node;
    a.local = entry.local;
    log_.push_back(a);
    ++stats_.planned;
    if (entry.local) ++stats_.planned_local;
    plan.pending.emplace(block.block_id, std::move(entry));
  }
  plans_.emplace(job, std::move(plan));
}

void PlacementPlane::JobDone(int job) {
  std::scoped_lock lock(mu_);
  auto it = plans_.find(job);
  if (it == plans_.end()) return;
  for (const auto& [block_id, entry] : it->second.pending) {
    --planned_backlog_[static_cast<std::size_t>(entry.node)];
  }
  plans_.erase(it);
}

void PlacementPlane::RefreshLocked(int job, JobPlan& plan) {
  if (options_.registry == nullptr) return;
  const std::uint64_t epoch = options_.registry->epoch();
  if (epoch == plan.planned_epoch) return;
  plan.planned_epoch = epoch;
  const std::vector<NodeView> views = ViewsLocked();
  std::size_t ordinal = 0;
  for (auto& [block_id, entry] : plan.pending) {
    ++ordinal;
    if (entry.node >= 0 && entry.node < options_.num_nodes &&
        views[static_cast<std::size_t>(entry.node)].alive) {
      continue;
    }
    // The assigned node died: hand the operation to the next-ranked live
    // holder (or least-loaded live node) and log the re-placement.
    --planned_backlog_[static_cast<std::size_t>(entry.node)];
    PlanEntry fresh = RankLocked(views, block_id, entry.holders, ordinal);
    ++planned_backlog_[static_cast<std::size_t>(fresh.node)];
    Assignment a;
    a.seq = next_seq_++;
    a.job = job;
    a.block_id = block_id;
    a.node = fresh.node;
    a.local = fresh.local;
    a.replacement = true;
    log_.push_back(a);
    ++stats_.replacements;
    entry.node = fresh.node;
    entry.local = fresh.local;
  }
}

void PlacementPlane::ConsumeLocked(JobPlan& plan, std::uint64_t block_id) {
  auto it = plan.pending.find(block_id);
  if (it == plan.pending.end()) return;
  --planned_backlog_[static_cast<std::size_t>(it->second.node)];
  plan.pending.erase(it);
}

int PlacementPlane::PickPending(int job, int node,
                                const std::vector<const BlockInfo*>& pending) {
  std::scoped_lock lock(mu_);
  auto it = plans_.find(job);
  if (it == plans_.end() || pending.empty()) return -1;
  JobPlan& plan = it->second;
  RefreshLocked(job, plan);

  // First: the earliest pending block planned onto this node.
  for (std::size_t i = 0; i < pending.size(); ++i) {
    auto entry = plan.pending.find(pending[i]->block_id);
    if (entry != plan.pending.end() && entry->second.node == node) {
      ConsumeLocked(plan, pending[i]->block_id);
      return static_cast<int>(i);
    }
  }

  // This node's plan ran dry: stay work-conserving.
  if (options_.mode == PlacementMode::kRegistrationOrder) {
    ++stats_.steals;
    ConsumeLocked(plan, pending[0]->block_id);
    return 0;
  }
  // Steal the block whose assigned node is most backlogged — it is the
  // block least likely to be picked up locally any time soon.  Seeded
  // hash then block id break ties deterministically.
  int best = -1;
  std::int64_t best_backlog = -1;
  std::uint64_t best_hash = 0;
  for (std::size_t i = 0; i < pending.size(); ++i) {
    auto entry = plan.pending.find(pending[i]->block_id);
    if (entry == plan.pending.end()) continue;
    const std::int64_t backlog =
        planned_backlog_[static_cast<std::size_t>(entry->second.node)];
    const std::uint64_t hash =
        Mix64(options_.seed, pending[i]->block_id,
              static_cast<std::uint64_t>(entry->second.node));
    if (best < 0 || backlog > best_backlog ||
        (backlog == best_backlog && hash < best_hash)) {
      best = static_cast<int>(i);
      best_backlog = backlog;
      best_hash = hash;
    }
  }
  if (best < 0) return -1;
  ++stats_.steals;
  ConsumeLocked(plan, pending[static_cast<std::size_t>(best)]->block_id);
  return best;
}

void PlacementPlane::OnSlotAcquired(int node) {
  std::scoped_lock lock(mu_);
  if (node >= 0 && node < options_.num_nodes) {
    ++slots_held_[static_cast<std::size_t>(node)];
  }
}

void PlacementPlane::OnSlotReleased(int node) {
  std::scoped_lock lock(mu_);
  if (node >= 0 && node < options_.num_nodes) {
    --slots_held_[static_cast<std::size_t>(node)];
  }
}

std::vector<std::uint32_t> PlacementPlane::LoadVector(int node) const {
  std::scoped_lock lock(mu_);
  std::vector<std::uint32_t> load(net::kLoadQueueDepth + 1, 0);
  if (node < 0 || node >= options_.num_nodes) return load;
  const auto clamp = [](std::int64_t v) {
    return static_cast<std::uint32_t>(std::max<std::int64_t>(v, 0));
  };
  load[net::kLoadMapSlotsHeld] =
      clamp(slots_held_[static_cast<std::size_t>(node)]);
  load[net::kLoadQueueDepth] =
      clamp(planned_backlog_[static_cast<std::size_t>(node)]);
  return load;
}

std::vector<Assignment> PlacementPlane::Log() const {
  std::scoped_lock lock(mu_);
  return log_;
}

PlacementPlane::Stats PlacementPlane::stats() const {
  std::scoped_lock lock(mu_);
  return stats_;
}

}  // namespace opmr::placement
