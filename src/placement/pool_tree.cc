#include "placement/pool_tree.h"

#include <algorithm>
#include <stdexcept>

namespace opmr::placement {

PoolConfig ParsePoolConfig(const std::string& text) {
  PoolConfig config;
  std::string head = text;
  std::string rest;
  if (auto colon = text.find(':'); colon != std::string::npos) {
    head = text.substr(0, colon);
    rest = text.substr(colon + 1);
  }
  if (auto slash = head.rfind('/'); slash != std::string::npos) {
    config.parent = head.substr(0, slash);
    config.name = head.substr(slash + 1);
  } else {
    config.name = head;
  }
  if (config.name.empty()) {
    throw std::invalid_argument("pool spec '" + text + "': empty pool name");
  }
  if (!rest.empty()) {
    std::string weight = rest;
    std::string quota;
    if (auto colon = rest.find(':'); colon != std::string::npos) {
      weight = rest.substr(0, colon);
      quota = rest.substr(colon + 1);
    }
    try {
      config.weight = std::stod(weight);
      if (!quota.empty()) config.max_running_jobs = std::stoi(quota);
    } catch (const std::exception&) {
      throw std::invalid_argument("pool spec '" + text +
                                  "': expected name:weight[:max_jobs]");
    }
  }
  if (config.weight <= 0.0) {
    throw std::invalid_argument("pool spec '" + text +
                                "': weight must be positive");
  }
  if (config.max_running_jobs < 0) {
    throw std::invalid_argument("pool spec '" + text +
                                "': max_jobs must be >= 0");
  }
  return config;
}

PoolTree::PoolTree(const std::vector<PoolConfig>& pools) {
  Node root;
  root.name = "";
  nodes_.push_back(root);
  by_name_[""] = 0;
  for (const PoolConfig& config : pools) {
    if (config.name.empty()) {
      throw std::invalid_argument("PoolTree: pool name must be non-empty");
    }
    if (by_name_.count(config.name) != 0) {
      throw std::invalid_argument("PoolTree: duplicate pool '" + config.name +
                                  "'");
    }
    if (config.weight <= 0.0) {
      throw std::invalid_argument("PoolTree: pool '" + config.name +
                                  "' has non-positive weight");
    }
    const auto parent_it = by_name_.find(config.parent);
    if (parent_it == by_name_.end()) {
      throw std::invalid_argument("PoolTree: pool '" + config.name +
                                  "' names unknown parent '" + config.parent +
                                  "' (declare parents first)");
    }
    Node node;
    node.name = config.name;
    node.parent = parent_it->second;
    node.weight = config.weight;
    node.max_running_jobs = config.max_running_jobs;
    const int index = static_cast<int>(nodes_.size());
    nodes_.push_back(std::move(node));
    by_name_[config.name] = index;
    auto& siblings = nodes_[parent_it->second].children;
    siblings.push_back(index);
    std::sort(siblings.begin(), siblings.end(), [this](int a, int b) {
      return nodes_[a].name < nodes_[b].name;
    });
  }
}

int PoolTree::IndexOf(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? -1 : it->second;
}

bool PoolTree::HasPool(const std::string& name) const {
  std::scoped_lock lock(mu_);
  return by_name_.count(name) != 0;
}

void PoolTree::JoinJob(int job, const std::string& pool) {
  std::scoped_lock lock(mu_);
  const int index = IndexOf(pool);
  if (index < 0) {
    throw std::invalid_argument("PoolTree: job joins unknown pool '" + pool +
                                "'");
  }
  job_pool_[job] = index;
}

void PoolTree::LeaveJob(int job) {
  std::scoped_lock lock(mu_);
  job_pool_.erase(job);
}

int PoolTree::NodeOfJobLocked(int job) const {
  auto it = job_pool_.find(job);
  return it == job_pool_.end() ? 0 : it->second;
}

void PoolTree::OnGrant(int job) {
  std::scoped_lock lock(mu_);
  for (int n = NodeOfJobLocked(job); n >= 0; n = nodes_[n].parent) {
    ++nodes_[n].usage;
    ++nodes_[n].total_grants;
  }
}

void PoolTree::OnRelease(int job) {
  std::scoped_lock lock(mu_);
  for (int n = NodeOfJobLocked(job); n >= 0; n = nodes_[n].parent) {
    --nodes_[n].usage;
  }
}

bool PoolTree::AtJobQuota(const std::string& pool) const {
  std::scoped_lock lock(mu_);
  // The quota of every ancestor applies: a subtree cap bounds its whole
  // organization, so running-job counts roll up the chain here.
  int running_below = 0;
  for (int n = IndexOf(pool); n >= 0; n = nodes_[n].parent) {
    running_below += nodes_[n].running_jobs;
    if (nodes_[n].max_running_jobs > 0 &&
        running_below >= nodes_[n].max_running_jobs) {
      return true;
    }
  }
  return false;
}

void PoolTree::OnJobStart(const std::string& pool) {
  std::scoped_lock lock(mu_);
  const int index = IndexOf(pool);
  if (index >= 0) ++nodes_[index].running_jobs;
}

void PoolTree::OnJobFinish(const std::string& pool) {
  std::scoped_lock lock(mu_);
  const int index = IndexOf(pool);
  if (index >= 0) --nodes_[index].running_jobs;
}

int PoolTree::Pick(const std::vector<Waiter>& waiters) const {
  std::scoped_lock lock(mu_);
  if (waiters.empty()) return -1;

  // Waiter counts per node: direct (jobs attached to the node itself) and
  // subtree (direct + descendants), so the descent can tell which children
  // are eligible.
  std::vector<int> direct(nodes_.size(), 0);
  std::vector<int> subtree(nodes_.size(), 0);
  for (const Waiter& w : waiters) {
    const int leaf = NodeOfJobLocked(w.job);
    ++direct[leaf];
    for (int n = leaf; n >= 0; n = nodes_[n].parent) ++subtree[n];
  }

  // Descend from the root.  At each node, candidates are the children with
  // waiting subtrees plus (when the node has directly-attached waiters) the
  // node's own direct pool, modeled as an implicit weight-1 child whose
  // usage is whatever the children do not account for.  Minimize
  // usage/weight via the cross-multiplied integer-exact comparison; ties go
  // to the lexicographically smallest name, and the implicit direct pool's
  // empty name sorts first.
  int node = 0;
  while (true) {
    std::int64_t child_usage = 0;
    for (int c : nodes_[node].children) child_usage += nodes_[c].usage;

    int best_child = -1;   // -2 encodes "direct pool of `node`"
    double best_usage = 0.0;
    double best_weight = 1.0;
    std::string best_name;
    const auto consider = [&](int child, std::int64_t usage, double weight,
                              const std::string& name) {
      if (best_child == -1 ||
          static_cast<double>(usage) * best_weight <
              best_usage * weight ||
          (static_cast<double>(usage) * best_weight ==
               best_usage * weight &&
           name < best_name)) {
        best_child = child;
        best_usage = static_cast<double>(usage);
        best_weight = weight;
        best_name = name;
      }
    };
    if (direct[node] > 0) {
      consider(-2, nodes_[node].usage - child_usage, 1.0, "");
    }
    for (int c : nodes_[node].children) {
      if (subtree[c] == 0) continue;
      consider(c, nodes_[c].usage, nodes_[c].weight, nodes_[c].name);
    }
    if (best_child == -1) return -1;  // no eligible waiter anywhere
    if (best_child == -2) break;      // this node's direct pool wins
    node = best_child;
    if (nodes_[node].children.empty()) break;  // leaf: direct waiters only
  }

  // Within the winning pool: earliest admission ordinal, job id as the
  // final deterministic tie-break.
  int best_job = -1;
  std::int64_t best_seq = 0;
  for (const Waiter& w : waiters) {
    if (NodeOfJobLocked(w.job) != node) continue;
    if (best_job == -1 || w.seq < best_seq ||
        (w.seq == best_seq && w.job < best_job)) {
      best_job = w.job;
      best_seq = w.seq;
    }
  }
  return best_job;
}

std::vector<PoolTree::PoolStats> PoolTree::Stats() const {
  std::scoped_lock lock(mu_);
  std::vector<PoolStats> out;
  out.reserve(nodes_.size());
  for (const Node& node : nodes_) {
    PoolStats s;
    s.name = node.name.empty() ? "(root)" : node.name;
    s.weight = node.weight;
    s.running_jobs = node.running_jobs;
    s.slots_held = node.usage;
    s.total_grants = node.total_grants;
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace opmr::placement
