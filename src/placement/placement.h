// PlacementPlane: operation-level global scheduling with locality ranking.
//
// One plane serves every job a JobScheduler admits.  At admission the
// plane *plans* the job: each map operation (one DFS block) is assigned to
// the best logical node, ranking candidates by
//
//   locality  — the node holds a DFS replica of the block,
//   load      — planned backlog on the node plus the slots-held / queue-
//               depth vector its worker last reported in a v6 heartbeat,
//   health    — the worker's suspect_count from the two-stage failure
//               detector (flappier workers rank later; dead ones are
//               skipped entirely),
//
// with a seeded-hash tie-break so the whole plan is a deterministic
// function of (seed, registry view, block list): same seed, same inputs,
// same assignment log.  Because one plane spans all admitted jobs, the
// planned-backlog term is what balances load *globally* — the OS4M
// operation-level scheduling the ROADMAP names, as opposed to the old
// job-at-a-time gate.
//
// Execution stays work-conserving: the executor's freed slot on node n
// asks PickPending() for its next block.  Planned-for-n blocks come first;
// when n's plan runs dry it steals the pending block whose assigned node
// is most backlogged.  Steals are execution-time events and are NOT
// logged — the log records planning decisions and failure-driven
// re-placements only, which is what keeps it seed-reproducible under
// nondeterministic thread timing.
//
// Worker <-> node bridge: map-role registry entries sorted ascending by
// worker id (dead ones included, so the bridge is stable across
// evictions); entry i backs logical node i.  Nodes with no backing worker
// are treated as healthy and unloaded, so the plane degrades gracefully
// when no coordinator is wired in.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "coord/registry.h"
#include "dfs/dfs.h"

namespace opmr::placement {

enum class PlacementMode {
  kEngine,             // no plane: the executor's built-in local-first order
  kRegistrationOrder,  // naive baseline: ops round-robin over nodes, blind
                       // to locality, load, and health
  kLocalityRanked,     // locality -> load -> health ranking
};

[[nodiscard]] const char* PlacementModeName(PlacementMode mode) noexcept;
// Accepts "engine", "registration", "locality"; throws
// std::invalid_argument otherwise.
[[nodiscard]] PlacementMode ParsePlacementMode(const std::string& name);

// One planned (or re-planned) operation placement, in log order.
struct Assignment {
  std::uint64_t seq = 0;      // global placement ordinal
  int job = -1;               // scheduler job handle
  std::uint64_t block_id = 0; // the operation's DFS block
  int node = -1;              // assigned logical node
  bool local = false;         // node holds a replica of the block
  bool replacement = false;   // re-placed after the assigned node died
};

class PlacementPlane {
 public:
  struct Options {
    PlacementMode mode = PlacementMode::kLocalityRanked;
    std::uint64_t seed = 42;
    int num_nodes = 4;
    // Optional health + heartbeat-load feed (not owned, must outlive the
    // plane).  nullptr reads every node as alive and unloaded.
    coord::WorkerRegistry* registry = nullptr;
  };

  struct Stats {
    std::int64_t planned = 0;        // operations planned
    std::int64_t planned_local = 0;  // planned onto a replica holder
    std::int64_t replacements = 0;   // re-placed after a node death
    std::int64_t steals = 0;         // execution-time work stealing picks
  };

  explicit PlacementPlane(Options options);

  // Plans every block of an admitted job (call once, before the job's
  // executor starts pulling).  Re-planning an already-planned job throws.
  void PlanJob(int job, const std::vector<BlockInfo>& blocks);

  // Drops the job's plan and refunds its remaining planned backlog.
  void JobDone(int job);

  // The engine seam (SchedHooks::place_map_block): node `node`, running
  // `job`, asks which of `pending` (the executor's untaken blocks, listing
  // order) to take.  Returns an index into `pending`, or -1 when the job
  // has no plan (the executor falls back to its built-in order).  Checks
  // the registry epoch first and re-places pending operations whose
  // assigned node has died onto the next-ranked live holder.
  [[nodiscard]] int PickPending(int job, int node,
                                const std::vector<const BlockInfo*>& pending);

  // Slot-lease feed (SchedHooks): live slots held per node, the plane's
  // own load signal when no registry heartbeats are available.
  void OnSlotAcquired(int node);
  void OnSlotReleased(int node);

  // Worker-side heartbeat probe: the load vector a CoordClient should
  // report for `node` (net::kLoad* layout).
  [[nodiscard]] std::vector<std::uint32_t> LoadVector(int node) const;

  [[nodiscard]] std::vector<Assignment> Log() const;
  [[nodiscard]] Stats stats() const;
  [[nodiscard]] const Options& options() const noexcept { return options_; }

 private:
  struct NodeView {
    bool alive = true;
    std::uint64_t reported_load = 0;  // heartbeat slots held + queue depth
    std::uint64_t suspect = 0;        // lease expiries survived
  };
  struct PlanEntry {
    int node = -1;
    bool local = false;
    std::vector<int> holders;
  };
  struct JobPlan {
    // block_id -> live entry; erased as the executor consumes blocks.
    std::map<std::uint64_t, PlanEntry> pending;
    std::uint64_t planned_epoch = 0;  // registry epoch the plan last saw
  };

  // mu_ held.  Registry-derived per-node health/load (see the bridge note
  // above); all-default without a registry.
  [[nodiscard]] std::vector<NodeView> ViewsLocked() const;
  // mu_ held.  Best node for a block per `mode`: ranked holder, or the
  // least-loaded live node when every holder is down.
  [[nodiscard]] PlanEntry RankLocked(const std::vector<NodeView>& views,
                                     std::uint64_t block_id,
                                     const std::vector<int>& holders,
                                     std::size_t ordinal);
  // mu_ held.  Re-places `plan`'s pending ops off dead nodes.
  void RefreshLocked(int job, JobPlan& plan);
  void ConsumeLocked(JobPlan& plan, std::uint64_t block_id);

  const Options options_;
  mutable std::mutex mu_;
  std::map<int, JobPlan> plans_;
  std::vector<std::int64_t> planned_backlog_;  // per node, ops not yet taken
  std::vector<std::int64_t> slots_held_;       // per node, live slot leases
  std::vector<Assignment> log_;
  std::uint64_t next_seq_ = 0;
  std::size_t round_robin_ = 0;  // kRegistrationOrder cursor
  Stats stats_;
};

}  // namespace opmr::placement
