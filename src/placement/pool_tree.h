// PoolTree: hierarchical fair-share pools over one slot economy.
//
// Tenants (or workload classes) are arranged in a tree of named pools,
// each with a weight relative to its siblings and an optional cap on
// concurrently running jobs.  Jobs join a pool at dispatch; every slot
// grant charges usage up the pool's ancestor chain.  When a slot frees,
// the contended pick descends from the root: at each level the child
// subtree with eligible waiters that minimizes usage/weight wins, ties
// broken by pool name (lexicographically smallest), and within the chosen
// pool the earliest-admitted waiter wins.  Every input to the pick is an
// exact integer count, so the decision is a deterministic function of the
// grant history — the property the seeded placement tests pin.
//
// The YTsaurus scheduler_pool_server is the blueprint: weights shape
// steady-state shares (two always-backlogged tenants with weights 3:1
// converge to a 3:1 slot split), quotas bound tenant concurrency, and the
// hierarchy lets an organization subdivide its share without affecting
// siblings.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace opmr::placement {

struct PoolConfig {
  std::string name;          // unique, non-empty ("" names the root)
  std::string parent;        // "" = child of the root
  double weight = 1.0;       // share relative to siblings (> 0)
  int max_running_jobs = 0;  // admission quota; 0 = unlimited
};

// Parses "name:weight[:max_jobs]" with an optional "parent/" prefix on the
// name (the CLI's --pool flag and the spool's pool= key share it).  Throws
// std::invalid_argument naming the offending field.
[[nodiscard]] PoolConfig ParsePoolConfig(const std::string& text);

class PoolTree {
 public:
  // A waiter in a contended pick: the job id and its admission ordinal
  // (the within-pool FIFO key).
  struct Waiter {
    int job = -1;
    std::int64_t seq = 0;
  };

  struct PoolStats {
    std::string name;
    double weight = 1.0;
    int running_jobs = 0;
    std::int64_t slots_held = 0;    // live usage (subtree total)
    std::int64_t total_grants = 0;  // cumulative slot grants (subtree total)
  };

  // Builds the tree.  Unknown parents, duplicate names, empty names, and
  // non-positive weights throw std::invalid_argument.  Parents must be
  // declared before children.
  explicit PoolTree(const std::vector<PoolConfig>& pools);

  // Job membership.  Joining an unknown pool name throws; jobs that never
  // join charge the root directly (the "" pool).
  void JoinJob(int job, const std::string& pool);
  void LeaveJob(int job);

  // Slot accounting: a grant charges one slot of usage from the job's pool
  // up to the root; a release refunds it.
  void OnGrant(int job);
  void OnRelease(int job);

  // Admission-quota accounting (the scheduler's dispatch gate).
  [[nodiscard]] bool AtJobQuota(const std::string& pool) const;
  void OnJobStart(const std::string& pool);
  void OnJobFinish(const std::string& pool);

  // The fair-share pick described above.  Returns the winning job id, or
  // -1 when `waiters` is empty.  Waiters whose jobs never joined charge
  // the root.
  [[nodiscard]] int Pick(const std::vector<Waiter>& waiters) const;

  // Per-pool usage in declaration order (root first) — the bench's
  // fair-share evidence.
  [[nodiscard]] std::vector<PoolStats> Stats() const;

  [[nodiscard]] bool HasPool(const std::string& name) const;

 private:
  struct Node {
    std::string name;
    int parent = -1;
    std::vector<int> children;  // sorted by child name (tie-break order)
    double weight = 1.0;
    int max_running_jobs = 0;
    int running_jobs = 0;          // this pool only
    std::int64_t usage = 0;        // subtree slots held
    std::int64_t total_grants = 0; // subtree cumulative grants
  };

  [[nodiscard]] int IndexOf(const std::string& name) const;  // -1 = unknown
  [[nodiscard]] int NodeOfJobLocked(int job) const;

  mutable std::mutex mu_;
  std::vector<Node> nodes_;             // [0] is the root
  std::map<std::string, int> by_name_;  // name -> node index
  std::map<int, int> job_pool_;         // job id -> node index
};

}  // namespace opmr::placement
