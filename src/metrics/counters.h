// Named metric counters, the in-process equivalent of the iostat/ps scrape
// the paper's profiling harness logged.  Counters are sharded per name and
// atomically incremented, so hot paths (per-record byte accounting) never
// contend on a map lookup: call sites hold a Counter* obtained once.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace opmr {

class Counter {
 public:
  void Add(std::int64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() noexcept { Add(1); }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

// Registry of counters by name.  Get() is amortized O(log n) and returns a
// stable pointer; reading a snapshot is O(n).
class MetricRegistry {
 public:
  Counter* Get(const std::string& name) {
    std::scoped_lock lock(mu_);
    auto& slot = counters_[name];
    if (!slot) slot = std::make_unique<Counter>();
    return slot.get();
  }

  [[nodiscard]] std::map<std::string, std::int64_t> Snapshot() const {
    std::scoped_lock lock(mu_);
    std::map<std::string, std::int64_t> out;
    for (const auto& [name, counter] : counters_) out[name] = counter->value();
    return out;
  }

  [[nodiscard]] std::int64_t Value(const std::string& name) const {
    std::scoped_lock lock(mu_);
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second->value();
  }

  void ResetAll() {
    std::scoped_lock lock(mu_);
    for (auto& [name, counter] : counters_) counter->Reset();
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
};

}  // namespace opmr
