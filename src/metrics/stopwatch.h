// Wall-clock and per-thread CPU-time stopwatches.
//
// Table II of the paper splits map-phase CPU seconds between the user map
// function and the framework's sort.  We reproduce that measurement with
// CLOCK_THREAD_CPUTIME_ID so the split reflects cycles actually consumed by
// the calling thread, not wall time inflated by scheduling.
#pragma once

#include <ctime>
#include <chrono>
#include <cstdint>

namespace opmr {

// Monotonic wall clock, nanosecond resolution.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  [[nodiscard]] double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  [[nodiscard]] std::int64_t Nanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// CPU time consumed by the calling thread since construction/restart.
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() : start_(Now()) {}

  void Restart() { start_ = Now(); }

  [[nodiscard]] double Seconds() const {
    return static_cast<double>(Now() - start_) * 1e-9;
  }
  [[nodiscard]] std::int64_t Nanos() const { return Now() - start_; }

  static std::int64_t Now() noexcept {
    timespec ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
  }

 private:
  std::int64_t start_;
};

}  // namespace opmr
