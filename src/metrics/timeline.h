// Task-timeline recorder: the data behind Fig. 2(a) and Fig. 3.
//
// Every task (map / shuffle / merge / reduce) records a begin and end
// timestamp tagged with an operation kind.  From those intervals we derive
// the "number of concurrently running tasks per operation over time" series
// the paper plots, and render it as an ASCII chart in the bench binaries.
#pragma once

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace opmr {

enum class TaskKind : int { kMap = 0, kShuffle = 1, kMerge = 2, kReduce = 3 };

inline const char* TaskKindName(TaskKind k) {
  switch (k) {
    case TaskKind::kMap: return "map";
    case TaskKind::kShuffle: return "shuffle";
    case TaskKind::kMerge: return "merge";
    case TaskKind::kReduce: return "reduce";
  }
  return "?";
}

struct TaskInterval {
  TaskKind kind;
  double begin_s;
  double end_s;
};

class TimelineRecorder {
 public:
  void Record(TaskKind kind, double begin_s, double end_s) {
    std::scoped_lock lock(mu_);
    intervals_.push_back({kind, begin_s, end_s});
  }

  [[nodiscard]] std::vector<TaskInterval> Snapshot() const {
    std::scoped_lock lock(mu_);
    return intervals_;
  }

  [[nodiscard]] double EndTime() const {
    std::scoped_lock lock(mu_);
    double end = 0.0;
    for (const auto& iv : intervals_) end = std::max(end, iv.end_s);
    return end;
  }

  // Number of intervals of `kind` active at time t.
  [[nodiscard]] int ActiveAt(TaskKind kind, double t) const {
    std::scoped_lock lock(mu_);
    int n = 0;
    for (const auto& iv : intervals_) {
      if (iv.kind == kind && iv.begin_s <= t && t < iv.end_s) ++n;
    }
    return n;
  }

  // Series of active-task counts sampled at `num_samples` uniform points —
  // one row per operation kind, exactly the four curves of Fig. 2(a).
  [[nodiscard]] std::vector<std::vector<int>> SampleActive(
      int num_samples) const {
    const double end = EndTime();
    std::vector<std::vector<int>> series(4, std::vector<int>(num_samples, 0));
    const auto snapshot = Snapshot();
    for (int s = 0; s < num_samples; ++s) {
      const double t = end * (s + 0.5) / num_samples;
      for (const auto& iv : snapshot) {
        if (iv.begin_s <= t && t < iv.end_s) {
          ++series[static_cast<int>(iv.kind)][s];
        }
      }
    }
    return series;
  }

  void Reset() {
    std::scoped_lock lock(mu_);
    intervals_.clear();
  }

 private:
  mutable std::mutex mu_;
  std::vector<TaskInterval> intervals_;
};

}  // namespace opmr
