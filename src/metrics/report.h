// CSV writers for bench outputs: every bench binary mirrors its paper table
// on stdout and persists the raw series/rows under bench_out/ so plots can
// be regenerated offline.
#pragma once

#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "metrics/timeseries.h"

namespace opmr {

class CsvWriter {
 public:
  explicit CsvWriter(const std::filesystem::path& path) {
    std::filesystem::create_directories(path.parent_path());
    out_.open(path);
    if (!out_) {
      throw std::runtime_error("cannot open csv output: " + path.string());
    }
  }

  void WriteRow(const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) out_ << ',';
      // Quote cells containing commas; bench output stays simple otherwise.
      if (cells[i].find(',') != std::string::npos) {
        out_ << '"' << cells[i] << '"';
      } else {
        out_ << cells[i];
      }
    }
    out_ << '\n';
  }

 private:
  std::ofstream out_;
};

inline void WriteSeriesCsv(const std::filesystem::path& path,
                           const TimeSeries& series) {
  CsvWriter csv(path);
  csv.WriteRow({"time_s", series.name()});
  for (const auto& s : series.Snapshot()) {
    csv.WriteRow({std::to_string(s.time_s), std::to_string(s.value)});
  }
}

// Recovery-activity columns shared by the chaos bench and the CLI report,
// so every consumer prints the same counters under the same names.
inline std::vector<std::string> RecoveryCsvHeader() {
  return {"map_task_retries", "reduce_task_retries", "speculative_launched",
          "speculative_wins", "faults_injected"};
}

inline std::vector<std::string> RecoveryCsvCells(int map_retries,
                                                 int reduce_retries,
                                                 int spec_launched,
                                                 int spec_wins,
                                                 std::int64_t faults) {
  return {std::to_string(map_retries), std::to_string(reduce_retries),
          std::to_string(spec_launched), std::to_string(spec_wins),
          std::to_string(faults)};
}

// Checkpoint-activity columns, same contract as the recovery columns above.
inline std::vector<std::string> CheckpointCsvHeader() {
  return {"checkpoints_written", "checkpoints_loaded", "checkpoint_bytes",
          "replay_records", "recover_seconds"};
}

inline std::vector<std::string> CheckpointCsvCells(std::int64_t written,
                                                   std::int64_t loaded,
                                                   std::int64_t bytes,
                                                   std::int64_t replayed,
                                                   double recover_seconds) {
  return {std::to_string(written), std::to_string(loaded),
          std::to_string(bytes), std::to_string(replayed),
          std::to_string(recover_seconds)};
}

// Speculative-reduce columns (checkpoint-seeded backup reduce attempts
// under the push shuffle), same contract again.
inline std::vector<std::string> SpecReduceCsvHeader() {
  return {"spec_reduce_launched", "spec_reduce_seeded_from_ckpt",
          "spec_reduce_wins"};
}

inline std::vector<std::string> SpecReduceCsvCells(int launched, int seeded,
                                                   int wins) {
  return {std::to_string(launched), std::to_string(seeded),
          std::to_string(wins)};
}

// Wire-activity columns (src/net transports), same contract again.  All
// zero when the shuffle never left the process (the direct default path).
inline std::vector<std::string> WireCsvHeader() {
  return {"net_bytes_sent",  "net_bytes_received", "net_frames_sent",
          "net_frames_received", "net_retransmits", "net_reconnects",
          "net_stall_seconds", "shuffle_ack_replays"};
}

inline std::vector<std::string> WireCsvCells(
    std::int64_t bytes_sent, std::int64_t bytes_received,
    std::int64_t frames_sent, std::int64_t frames_received,
    std::int64_t retransmits, std::int64_t reconnects, double stall_seconds,
    std::int64_t ack_replays) {
  return {std::to_string(bytes_sent),   std::to_string(bytes_received),
          std::to_string(frames_sent),  std::to_string(frames_received),
          std::to_string(retransmits),  std::to_string(reconnects),
          std::to_string(stall_seconds), std::to_string(ack_replays)};
}

// Placement columns (src/placement plane + scheduler deferral reasons),
// same contract again.  The three *_deferrals reasons sum to
// placement_deferrals; the op counters are zero with placement=engine.
inline std::vector<std::string> PlacementCsvHeader() {
  return {"placement_deferrals", "no_map_worker_deferrals",
          "no_reduce_worker_deferrals", "quota_deferrals", "ops_planned",
          "ops_planned_local", "ops_replaced", "ops_stolen"};
}

inline std::vector<std::string> PlacementCsvCells(
    std::int64_t deferrals, std::int64_t no_map, std::int64_t no_reduce,
    std::int64_t quota, std::int64_t planned, std::int64_t planned_local,
    std::int64_t replaced, std::int64_t stolen) {
  return {std::to_string(deferrals),     std::to_string(no_map),
          std::to_string(no_reduce),     std::to_string(quota),
          std::to_string(planned),       std::to_string(planned_local),
          std::to_string(replaced),      std::to_string(stolen)};
}

}  // namespace opmr
