// Per-phase CPU accounting (paper Fig. 5 "CPU profiler").
//
// Each task thread attributes its CPU nanoseconds to a named phase —
// "map_function", "map_sort", "merge", "reduce_function", "hash_group", … —
// by bracketing work in a PhaseScope.  The aggregate per-phase totals are
// what Table II and the Section-V CPU-saving comparison report.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "metrics/stopwatch.h"

namespace opmr {

class PhaseProfiler {
 public:
  void AddCpuNanos(const std::string& phase, std::int64_t nanos) {
    std::scoped_lock lock(mu_);
    cpu_nanos_[phase] += nanos;
  }

  [[nodiscard]] double CpuSeconds(const std::string& phase) const {
    std::scoped_lock lock(mu_);
    auto it = cpu_nanos_.find(phase);
    return it == cpu_nanos_.end() ? 0.0 : static_cast<double>(it->second) * 1e-9;
  }

  [[nodiscard]] double TotalCpuSeconds() const {
    std::scoped_lock lock(mu_);
    std::int64_t total = 0;
    for (const auto& [_, n] : cpu_nanos_) total += n;
    return static_cast<double>(total) * 1e-9;
  }

  [[nodiscard]] std::map<std::string, double> Snapshot() const {
    std::scoped_lock lock(mu_);
    std::map<std::string, double> out;
    for (const auto& [phase, nanos] : cpu_nanos_) {
      out[phase] = static_cast<double>(nanos) * 1e-9;
    }
    return out;
  }

  void Reset() {
    std::scoped_lock lock(mu_);
    cpu_nanos_.clear();
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::int64_t> cpu_nanos_;
};

// RAII bracket: charges the enclosed thread-CPU time to `phase` on exit.
// Nested scopes self-subtract via manual Stop() at the call sites where
// phases interleave (map function vs. framework sort).
class PhaseScope {
 public:
  PhaseScope(PhaseProfiler* profiler, std::string phase)
      : profiler_(profiler), phase_(std::move(phase)) {}

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

  ~PhaseScope() { Stop(); }

  void Stop() {
    if (profiler_ != nullptr) {
      profiler_->AddCpuNanos(phase_, timer_.Nanos());
      profiler_ = nullptr;
    }
  }

 private:
  PhaseProfiler* profiler_;
  std::string phase_;
  ThreadCpuTimer timer_;
};

}  // namespace opmr
