// Sampled time series: CPU utilization, CPU iowait, cumulative bytes read —
// the traces behind Fig. 2(b–f) and Fig. 4.
//
// The cluster simulator appends one sample per simulated interval; the real
// engine's sampler thread appends wall-clock samples.  AsciiPlot renders a
// series the way the paper's matplotlib graphs read: time on x, value on y.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace opmr {

struct Sample {
  double time_s;
  double value;
};

class TimeSeries {
 public:
  explicit TimeSeries(std::string name) : name_(std::move(name)) {}

  void Append(double time_s, double value) {
    std::scoped_lock lock(mu_);
    samples_.push_back({time_s, value});
  }

  [[nodiscard]] std::vector<Sample> Snapshot() const {
    std::scoped_lock lock(mu_);
    return samples_;
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  [[nodiscard]] std::size_t size() const {
    std::scoped_lock lock(mu_);
    return samples_.size();
  }

  // Mean of values with time in [t0, t1).
  [[nodiscard]] double MeanIn(double t0, double t1) const {
    std::scoped_lock lock(mu_);
    double sum = 0.0;
    int n = 0;
    for (const auto& s : samples_) {
      if (s.time_s >= t0 && s.time_s < t1) {
        sum += s.value;
        ++n;
      }
    }
    return n == 0 ? 0.0 : sum / n;
  }

  [[nodiscard]] double MaxValue() const {
    std::scoped_lock lock(mu_);
    double m = 0.0;
    for (const auto& s : samples_) m = std::max(m, s.value);
    return m;
  }

 private:
  std::string name_;
  mutable std::mutex mu_;
  std::vector<Sample> samples_;
};

// Renders a series as a fixed-size ASCII chart.  Values are averaged into
// `width` buckets over the series' time range and drawn against `height`
// rows; '#' marks the bucket's level.
inline std::string AsciiPlot(const TimeSeries& series, int width = 78,
                             int height = 12, double y_max = -1.0) {
  const auto samples = series.Snapshot();
  std::string out = series.name() + "\n";
  if (samples.empty()) return out + "(no samples)\n";

  const double t_end = samples.back().time_s;
  double v_max = y_max;
  if (v_max <= 0) {
    for (const auto& s : samples) v_max = std::max(v_max, s.value);
    if (v_max <= 0) v_max = 1.0;
  }

  std::vector<double> bucket(width, 0.0);
  std::vector<int> count(width, 0);
  for (const auto& s : samples) {
    int b = t_end > 0 ? static_cast<int>(s.time_s / t_end * (width - 1)) : 0;
    b = std::clamp(b, 0, width - 1);
    bucket[b] += s.value;
    ++count[b];
  }
  for (int b = 0; b < width; ++b) {
    if (count[b] > 0) bucket[b] /= count[b];
  }

  for (int row = height; row >= 1; --row) {
    const double threshold = v_max * row / height;
    std::string line;
    for (int b = 0; b < width; ++b) {
      line += bucket[b] >= threshold - 1e-12 ? '#' : ' ';
    }
    // right-trim for readability
    while (!line.empty() && line.back() == ' ') line.pop_back();
    out += line + "\n";
  }
  out += std::string(width, '-') + "\n";
  char buf[96];
  std::snprintf(buf, sizeof(buf), "0 .. %.0f s   (y max = %.2f)\n", t_end,
                v_max);
  out += buf;
  return out;
}

}  // namespace opmr
