#include "storage/codec.h"

#include <cstring>
#include <stdexcept>
#include <vector>

#include "common/hash.h"

namespace opmr {

namespace {

constexpr std::size_t kHashBits = 15;
constexpr std::size_t kHashSize = 1u << kHashBits;

inline std::uint32_t HashQuad(const char* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

inline void EmitLiterals(std::string& out, const char* p, std::size_t n) {
  while (n > 0) {
    const std::size_t run = n < 128 ? n : 128;
    out.push_back(static_cast<char>(run - 1));
    out.append(p, run);
    p += run;
    n -= run;
  }
}

}  // namespace

std::string OzCompress(Slice input) {
  std::string out;
  out.reserve(input.size() / 2 + 16);
  AppendU32(out, static_cast<std::uint32_t>(input.size()));

  const char* base = input.data();
  const std::size_t n = input.size();
  if (n < kOzMinMatch + 1) {
    if (n > 0) EmitLiterals(out, base, n);
    return out;
  }

  std::vector<std::uint32_t> table(kHashSize, 0xffffffffu);
  std::size_t pos = 0;
  std::size_t literal_start = 0;
  // Stop matching where a 4-byte load would run off the end.
  const std::size_t match_limit = n - kOzMinMatch;

  while (pos <= match_limit) {
    const std::uint32_t h = HashQuad(base + pos);
    const std::uint32_t candidate = table[h];
    table[h] = static_cast<std::uint32_t>(pos);

    if (candidate != 0xffffffffu && pos - candidate <= kOzWindow &&
        std::memcmp(base + candidate, base + pos, kOzMinMatch) == 0) {
      // Extend the match.
      std::size_t len = kOzMinMatch;
      const std::size_t max_len =
          std::min(kOzMaxMatch, n - pos);
      while (len < max_len && base[candidate + len] == base[pos + len]) {
        ++len;
      }
      // Flush pending literals, then the match token.
      EmitLiterals(out, base + literal_start, pos - literal_start);
      out.push_back(static_cast<char>(
          0x80 | static_cast<unsigned char>(len - kOzMinMatch)));
      const auto distance = static_cast<std::uint16_t>(pos - candidate);
      out.push_back(static_cast<char>(distance & 0xff));
      out.push_back(static_cast<char>(distance >> 8));
      pos += len;
      literal_start = pos;
    } else {
      ++pos;
    }
  }
  EmitLiterals(out, base + literal_start, n - literal_start);
  return out;
}

std::string OzDecompress(Slice compressed) {
  if (compressed.size() < 4) {
    throw std::runtime_error("OzDecompress: missing header");
  }
  const std::uint32_t raw_size = DecodeU32(compressed.data());
  std::string out;
  out.reserve(raw_size);

  const char* p = compressed.data() + 4;
  const char* end = compressed.data() + compressed.size();
  while (p < end) {
    const auto c = static_cast<unsigned char>(*p++);
    if (c < 0x80) {
      const std::size_t run = c + 1u;
      if (p + run > end) {
        throw std::runtime_error("OzDecompress: truncated literal run");
      }
      out.append(p, run);
      p += run;
    } else {
      if (p + 2 > end) {
        throw std::runtime_error("OzDecompress: truncated match token");
      }
      const std::size_t len = (c & 0x7f) + kOzMinMatch;
      const std::size_t distance =
          static_cast<unsigned char>(p[0]) |
          (static_cast<std::size_t>(static_cast<unsigned char>(p[1])) << 8);
      p += 2;
      if (distance == 0 || distance > out.size()) {
        throw std::runtime_error("OzDecompress: bad match distance");
      }
      // Byte-wise copy: overlapping matches (distance < len) are the RLE
      // case and must replicate already-written output.
      std::size_t from = out.size() - distance;
      for (std::size_t i = 0; i < len; ++i) {
        out.push_back(out[from + i]);
      }
    }
  }
  if (out.size() != raw_size) {
    throw std::runtime_error("OzDecompress: size mismatch");
  }
  return out;
}

}  // namespace opmr
