// On-disk record framing shared by map-output segments, reduce spills and
// merge runs:  [u32 key_len][u32 value_len][key bytes][value bytes]*
//
// A "run" is a sequence of framed records; the sort-merge path additionally
// guarantees non-decreasing key order inside a run, which RunReader exposes
// but does not enforce (the merger validates it in debug builds).
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "common/slice.h"
#include "storage/io.h"
#include "storage/record_stream.h"

namespace opmr {

// Sink interface over (key, value) record writers, so reducers can swap a
// plain RunWriter for a compressed one transparently.
class RecordSink {
 public:
  virtual ~RecordSink() = default;
  virtual void Append(Slice key, Slice value) = 0;
  // Pushes buffered frames to the file so bytes_written() names a durable
  // prefix — what a checkpoint manifest records as the run's committed
  // length.  The sink stays open for further appends.
  virtual void Flush() {}
  virtual void Close() = 0;
  [[nodiscard]] virtual std::uint64_t bytes_written() const = 0;
  [[nodiscard]] virtual std::uint64_t num_records() const = 0;
};

class RunWriter final : public RecordSink {
 public:
  RunWriter(const std::filesystem::path& path, IoChannel channel,
            std::size_t buffer_bytes = 1 << 16)
      : writer_(path, channel, buffer_bytes) {}

  void Append(Slice key, Slice value) override {
    writer_.AppendU32(static_cast<std::uint32_t>(key.size()));
    writer_.AppendU32(static_cast<std::uint32_t>(value.size()));
    writer_.Append(key);
    writer_.Append(value);
    ++num_records_;
  }

  void Flush(bool sync) { writer_.Flush(sync); }
  void Flush() override { writer_.Flush(false); }
  void Close() override { writer_.Close(); }

  [[nodiscard]] std::uint64_t bytes_written() const override {
    return writer_.bytes_written();
  }
  [[nodiscard]] std::uint64_t num_records() const override {
    return num_records_;
  }
  [[nodiscard]] const std::filesystem::path& path() const noexcept {
    return writer_.path();
  }

 private:
  SequentialWriter writer_;
  std::uint64_t num_records_ = 0;
};

class RunReader final : public RecordStream {
 public:
  RunReader(const std::filesystem::path& path, IoChannel channel,
            std::size_t buffer_bytes = 1 << 16)
      : reader_(path, channel, buffer_bytes) {}

  // Reads a byte range [offset, offset+length) of the file as the run
  // (used for partition segments inside a map-output file).  length of 0
  // means "until EOF".
  void Restrict(std::uint64_t offset, std::uint64_t length) {
    reader_.Seek(offset);
    remaining_ = length == 0 ? reader_.FileSize() - offset : length;
    restricted_ = true;
  }

  // Advances to the next record.  Returns false at end of run.
  bool Next() override {
    if (restricted_ && remaining_ == 0) return false;
    std::uint32_t klen = 0;
    if (!reader_.ReadU32(&klen)) return false;
    std::uint32_t vlen = 0;
    if (!reader_.ReadU32(&vlen)) {
      throw std::runtime_error("RunReader: truncated record header");
    }
    buffer_.resize(klen + vlen);
    if (klen + vlen > 0 && !reader_.ReadExact(buffer_.data(), klen + vlen)) {
      throw std::runtime_error("RunReader: truncated record payload");
    }
    key_ = Slice(buffer_.data(), klen);
    value_ = Slice(buffer_.data() + klen, vlen);
    if (restricted_) {
      const std::uint64_t record_bytes = 8ull + klen + vlen;
      if (record_bytes > remaining_) {
        throw std::runtime_error("RunReader: record crosses segment boundary");
      }
      remaining_ -= record_bytes;
    }
    return true;
  }

  // Valid until the following Next() call.
  [[nodiscard]] Slice key() const override { return key_; }
  [[nodiscard]] Slice value() const override { return value_; }

 private:
  SequentialReader reader_;
  std::vector<char> buffer_;
  Slice key_;
  Slice value_;
  bool restricted_ = false;
  std::uint64_t remaining_ = 0;
};

}  // namespace opmr
