// OZ — a small, dependency-free LZ77-family block codec for intermediate
// data.  Spill runs are cold sequential data whose cost the paper measures
// in hundreds of gigabytes; trading a little CPU to shrink them is the
// classic Hadoop mitigation (mapred.compress.map.output), reproduced here
// so the compression ablation can quantify the trade-off.
//
// Format:  [u32 raw_size] tokens…
//   token control byte c:
//     c < 0x80 : literal run of (c + 1) bytes follows (1..128 bytes)
//     c >= 0x80: match of length ((c & 0x7f) + kMinMatch) at 16-bit
//                little-endian distance d (1..65535) back from the cursor
//
// Greedy hash-table matcher, 64 KiB window — Snappy-class speed, modest
// ratios; both are fine for the spill-I/O ablation.
#pragma once

#include <string>

#include "common/slice.h"

namespace opmr {

inline constexpr std::size_t kOzMinMatch = 4;
inline constexpr std::size_t kOzMaxMatch = 0x7f + kOzMinMatch;  // 131
inline constexpr std::size_t kOzWindow = 65535;

// Compresses `input` (any bytes, any size).
std::string OzCompress(Slice input);

// Decompresses a buffer produced by OzCompress.  Throws std::runtime_error
// on any framing violation (truncation, bad distance, size mismatch).
std::string OzDecompress(Slice compressed);

}  // namespace opmr
