// Block-compressed run files: the framed-record run format wrapped in OZ
// compressed blocks.  Records never span blocks, so the reader inflates
// one block at a time and streams frames out of it.
//
// File layout:  ([u32 compressed_size][compressed block])*
// where each inflated block is a sequence of standard record frames.
//
// The IoChannel sees only the *compressed* bytes — exactly what a bench
// measuring spill I/O volume should observe.
#pragma once

#include <filesystem>
#include <string>

#include "storage/codec.h"
#include "storage/io.h"
#include "storage/record_stream.h"
#include "storage/run_format.h"

namespace opmr {

class CompressedRunWriter final : public RecordSink {
 public:
  static constexpr std::size_t kBlockBytes = 64u << 10;

  CompressedRunWriter(const std::filesystem::path& path, IoChannel channel)
      : writer_(path, channel) {}

  void Append(Slice key, Slice value) override {
    AppendU32(block_, static_cast<std::uint32_t>(key.size()));
    AppendU32(block_, static_cast<std::uint32_t>(value.size()));
    block_.append(key.data(), key.size());
    block_.append(value.data(), value.size());
    ++num_records_;
    if (block_.size() >= kBlockBytes) FlushBlock();
  }

  // Writes the current (possibly short) block out; the file stays a valid
  // block sequence, the reader just sees one undersized block.
  void Flush() override {
    FlushBlock();
    writer_.Flush(false);
  }

  void Close() override {
    FlushBlock();
    writer_.Close();
  }

  [[nodiscard]] std::uint64_t bytes_written() const override {
    return writer_.bytes_written();
  }
  [[nodiscard]] std::uint64_t num_records() const override {
    return num_records_;
  }
  [[nodiscard]] const std::filesystem::path& path() const noexcept {
    return writer_.path();
  }

 private:
  void FlushBlock() {
    if (block_.empty()) return;
    const std::string compressed = OzCompress(block_);
    writer_.AppendU32(static_cast<std::uint32_t>(compressed.size()));
    writer_.Append(compressed);
    block_.clear();
  }

  SequentialWriter writer_;
  std::string block_;
  std::uint64_t num_records_ = 0;
};

class CompressedRunReader final : public RecordStream {
 public:
  CompressedRunReader(const std::filesystem::path& path, IoChannel channel)
      : reader_(path, channel) {}

  bool Next() override {
    while (pos_ >= block_.size()) {
      if (!LoadBlock()) return false;
    }
    if (pos_ + 8 > block_.size()) {
      throw std::runtime_error("CompressedRunReader: truncated frame header");
    }
    const std::uint32_t klen = DecodeU32(block_.data() + pos_);
    const std::uint32_t vlen = DecodeU32(block_.data() + pos_ + 4);
    pos_ += 8;
    if (pos_ + klen + vlen > block_.size()) {
      throw std::runtime_error("CompressedRunReader: frame crosses block");
    }
    key_ = Slice(block_.data() + pos_, klen);
    value_ = Slice(block_.data() + pos_ + klen, vlen);
    pos_ += klen + vlen;
    return true;
  }

  [[nodiscard]] Slice key() const override { return key_; }
  [[nodiscard]] Slice value() const override { return value_; }

 private:
  bool LoadBlock() {
    std::uint32_t compressed_size = 0;
    if (!reader_.ReadU32(&compressed_size)) return false;
    compressed_.resize(compressed_size);
    if (compressed_size > 0 &&
        !reader_.ReadExact(compressed_.data(), compressed_size)) {
      throw std::runtime_error("CompressedRunReader: truncated block");
    }
    block_ = OzDecompress(Slice(compressed_.data(), compressed_.size()));
    pos_ = 0;
    return true;
  }

  SequentialReader reader_;
  std::vector<char> compressed_;
  std::string block_;
  std::size_t pos_ = 0;
  Slice key_;
  Slice value_;
};

}  // namespace opmr
