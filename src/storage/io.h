// Buffered, instrumented sequential file I/O.
//
// Every byte the engine moves to or from disk flows through these two
// classes, which charge the owning IoChannel — that is how the repository
// reproduces Table I's intermediate-data rows and Fig. 2(d)'s bytes-read
// curve without scraping iostat.
#pragma once

#include <cstdio>
#include <filesystem>
#include <string>

#include "common/slice.h"
#include "storage/io_stats.h"

namespace opmr {

// Chaos-plane seam: a process-global hook consulted before every physical
// write and read that flows through SequentialWriter/SequentialReader.  The
// fault-injection subsystem (src/fault) installs an implementation for the
// duration of a chaos run; production runs pay one relaxed atomic load per
// buffered I/O operation (not per record).  A hook may throw to simulate a
// device error — the failure then surfaces exactly where a real EIO would.
class IoFaultHook {
 public:
  virtual ~IoFaultHook() = default;

  // `offset` is the logical byte offset of the operation within the file
  // (bytes written/read so far); `bytes` the size of this physical op.
  virtual void BeforeWrite(const std::filesystem::path& path,
                           std::uint64_t offset, std::size_t bytes) = 0;
  virtual void BeforeRead(const std::filesystem::path& path,
                          std::uint64_t offset, std::size_t bytes) = 0;
};

// Installs (or, with nullptr, removes) the global hook.  The caller keeps
// ownership and must uninstall before destroying the hook.
void SetIoFaultHook(IoFaultHook* hook);
[[nodiscard]] IoFaultHook* GetIoFaultHook() noexcept;

class SequentialWriter {
 public:
  SequentialWriter(const std::filesystem::path& path, IoChannel channel,
                   std::size_t buffer_bytes = 1 << 16);
  ~SequentialWriter();

  SequentialWriter(const SequentialWriter&) = delete;
  SequentialWriter& operator=(const SequentialWriter&) = delete;
  SequentialWriter(SequentialWriter&& other) noexcept;
  SequentialWriter& operator=(SequentialWriter&&) = delete;

  void Append(Slice data);
  void AppendU32(std::uint32_t v);
  void AppendU64(std::uint64_t v);

  // Flushes buffered bytes to the OS.  The Hadoop baseline calls this with
  // `sync=true` after a map task's output (the paper's "synchronous I/O ...
  // required for fault tolerance"); the hash runtimes use plain flushes.
  void Flush(bool sync = false);

  // Flushes and closes; further writes are invalid.  Idempotent.
  void Close();

  // Discards buffered bytes and closes without flushing.  For abandoning a
  // failed attempt's output: the partial file is dead weight for FileManager
  // cleanup, and writing the remaining buffer would re-enter the I/O fault
  // hook for an attempt that has already failed.
  void Abandon() noexcept;

  [[nodiscard]] std::uint64_t bytes_written() const noexcept {
    return bytes_written_;
  }
  [[nodiscard]] const std::filesystem::path& path() const noexcept {
    return path_;
  }

 private:
  std::filesystem::path path_;
  IoChannel channel_;
  std::FILE* file_ = nullptr;
  std::string buffer_;
  std::size_t buffer_cap_;
  std::uint64_t bytes_written_ = 0;
};

class SequentialReader {
 public:
  SequentialReader(const std::filesystem::path& path, IoChannel channel,
                   std::size_t buffer_bytes = 1 << 16);
  ~SequentialReader();

  SequentialReader(const SequentialReader&) = delete;
  SequentialReader& operator=(const SequentialReader&) = delete;
  SequentialReader(SequentialReader&& other) noexcept;
  SequentialReader& operator=(SequentialReader&&) = delete;

  // Reads exactly n bytes into dst; returns false on clean EOF at a record
  // boundary (0 bytes read), throws on short read mid-record.
  bool ReadExact(char* dst, std::size_t n);

  bool ReadU32(std::uint32_t* v);
  bool ReadU64(std::uint64_t* v);

  // Positions the reader at `offset` from the file start.
  void Seek(std::uint64_t offset);

  [[nodiscard]] std::uint64_t bytes_read() const noexcept {
    return bytes_read_;
  }
  [[nodiscard]] std::uint64_t FileSize() const;

 private:
  std::filesystem::path path_;
  IoChannel channel_;
  std::FILE* file_ = nullptr;
  std::uint64_t bytes_read_ = 0;
};

}  // namespace opmr
