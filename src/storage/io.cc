#include "storage/io.h"

#include <atomic>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <unistd.h>

namespace opmr {

namespace {
[[noreturn]] void ThrowErrno(const std::string& what,
                             const std::filesystem::path& path) {
  throw std::runtime_error(what + " " + path.string() + ": " +
                           std::strerror(errno));
}

std::atomic<IoFaultHook*> g_io_fault_hook{nullptr};
}  // namespace

void SetIoFaultHook(IoFaultHook* hook) {
  g_io_fault_hook.store(hook, std::memory_order_release);
}

IoFaultHook* GetIoFaultHook() noexcept {
  return g_io_fault_hook.load(std::memory_order_acquire);
}

SequentialWriter::SequentialWriter(const std::filesystem::path& path,
                                   IoChannel channel, std::size_t buffer_bytes)
    : path_(path), channel_(channel), buffer_cap_(buffer_bytes) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) ThrowErrno("SequentialWriter: cannot open", path);
  buffer_.reserve(buffer_cap_);
}

SequentialWriter::SequentialWriter(SequentialWriter&& other) noexcept
    : path_(std::move(other.path_)),
      channel_(other.channel_),
      file_(other.file_),
      buffer_(std::move(other.buffer_)),
      buffer_cap_(other.buffer_cap_),
      bytes_written_(other.bytes_written_) {
  other.file_ = nullptr;
}

SequentialWriter::~SequentialWriter() {
  try {
    Close();
  } catch (...) {
    // Destructor must not throw; the file is left partially written, which
    // is acceptable for spill files cleaned up by FileManager.
  }
}

void SequentialWriter::Append(Slice data) {
  buffer_.append(data.data(), data.size());
  bytes_written_ += data.size();
  if (buffer_.size() >= buffer_cap_) Flush();
}

void SequentialWriter::AppendU32(std::uint32_t v) {
  opmr::AppendU32(buffer_, v);
  bytes_written_ += sizeof(v);
  if (buffer_.size() >= buffer_cap_) Flush();
}

void SequentialWriter::AppendU64(std::uint64_t v) {
  opmr::AppendU64(buffer_, v);
  bytes_written_ += sizeof(v);
  if (buffer_.size() >= buffer_cap_) Flush();
}

void SequentialWriter::Flush(bool sync) {
  if (file_ == nullptr) throw std::logic_error("Flush on closed writer");
  if (!buffer_.empty()) {
    if (auto* hook = GetIoFaultHook()) {
      hook->BeforeWrite(path_, bytes_written_ - buffer_.size(), buffer_.size());
    }
    const std::size_t n = std::fwrite(buffer_.data(), 1, buffer_.size(), file_);
    if (n != buffer_.size()) ThrowErrno("SequentialWriter: short write", path_);
    channel_.Add(static_cast<std::int64_t>(buffer_.size()));
    buffer_.clear();
  }
  if (std::fflush(file_) != 0) ThrowErrno("SequentialWriter: fflush", path_);
  if (sync) {
    // fdatasync, the persistence point Hadoop requires of completed maps.
    if (::fdatasync(::fileno(file_)) != 0) {
      ThrowErrno("SequentialWriter: fdatasync", path_);
    }
  }
}

void SequentialWriter::Abandon() noexcept {
  buffer_.clear();
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

void SequentialWriter::Close() {
  if (file_ == nullptr) return;
  Flush();
  if (std::fclose(file_) != 0) {
    file_ = nullptr;
    ThrowErrno("SequentialWriter: fclose", path_);
  }
  file_ = nullptr;
}

SequentialReader::SequentialReader(const std::filesystem::path& path,
                                   IoChannel channel, std::size_t buffer_bytes)
    : path_(path), channel_(channel) {
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) ThrowErrno("SequentialReader: cannot open", path);
  // stdio's own buffer provides the read-ahead; size it as requested.
  std::setvbuf(file_, nullptr, _IOFBF, buffer_bytes);
}

SequentialReader::SequentialReader(SequentialReader&& other) noexcept
    : path_(std::move(other.path_)),
      channel_(other.channel_),
      file_(other.file_),
      bytes_read_(other.bytes_read_) {
  other.file_ = nullptr;
}

SequentialReader::~SequentialReader() {
  if (file_ != nullptr) std::fclose(file_);
}

bool SequentialReader::ReadExact(char* dst, std::size_t n) {
  if (auto* hook = GetIoFaultHook()) hook->BeforeRead(path_, bytes_read_, n);
  const std::size_t got = std::fread(dst, 1, n, file_);
  if (got == 0 && std::feof(file_)) return false;
  if (got != n) {
    throw std::runtime_error("SequentialReader: truncated read from " +
                             path_.string());
  }
  bytes_read_ += n;
  channel_.Add(static_cast<std::int64_t>(n));
  return true;
}

bool SequentialReader::ReadU32(std::uint32_t* v) {
  char buf[sizeof(std::uint32_t)];
  if (!ReadExact(buf, sizeof(buf))) return false;
  *v = DecodeU32(buf);
  return true;
}

bool SequentialReader::ReadU64(std::uint64_t* v) {
  char buf[sizeof(std::uint64_t)];
  if (!ReadExact(buf, sizeof(buf))) return false;
  *v = DecodeU64(buf);
  return true;
}

void SequentialReader::Seek(std::uint64_t offset) {
  // fseeko/off_t, not fseek/long: on 32-bit long platforms (and Windows)
  // fseek narrows the offset and a > 2 GiB spill run would seek to the
  // wrong position.
  if (::fseeko(file_, static_cast<off_t>(offset), SEEK_SET) != 0) {
    ThrowErrno("SequentialReader: fseeko", path_);
  }
}

std::uint64_t SequentialReader::FileSize() const {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path_, ec);
  if (ec) throw std::runtime_error("file_size: " + ec.message());
  return size;
}

}  // namespace opmr
