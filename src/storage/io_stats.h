// Per-device byte accounting.
//
// The paper distinguishes traffic classes on each node's disk: HDFS input
// reads, map-output writes, reduce-spill writes, and multi-pass-merge
// reads/writes (Table I's "Map output data" / "Reduce spill data" rows and
// the Fig. 2(d) bytes-read trace).  Every instrumented reader/writer charges
// a named device channel in a shared registry so benches can report exactly
// those rows.
#pragma once

#include <string>

#include "metrics/counters.h"

namespace opmr {

// Well-known device channel names used across the engine.
namespace device {
inline constexpr const char* kDfsRead = "dfs.bytes_read";
inline constexpr const char* kDfsWrite = "dfs.bytes_written";
inline constexpr const char* kMapOutputWrite = "map_output.bytes_written";
inline constexpr const char* kShuffleRead = "shuffle.bytes_read";
inline constexpr const char* kSpillWrite = "reduce_spill.bytes_written";
inline constexpr const char* kSpillRead = "reduce_spill.bytes_read";
// Shuffle pipelining statistics (push mode).
inline constexpr const char* kPushedChunks = "shuffle.pushed_chunks";
inline constexpr const char* kDivertedChunks = "shuffle.diverted_chunks";
// Wall nanoseconds map tasks spend persisting their output (microbench M2).
inline constexpr const char* kMapOutputWriteNanos = "map_output.write_nanos";
// Checkpoint subsystem traffic (reduce-state snapshots + recovery reads).
inline constexpr const char* kCheckpointWrite = "checkpoint.bytes_written";
inline constexpr const char* kCheckpointRead = "checkpoint.bytes_read";
// Pushed chunks spilled to disk while awaiting checkpoint acknowledgement.
inline constexpr const char* kRetainWrite = "shuffle_retain.bytes_written";
// Inline segment payloads (SegmentData frames) landed by the remote shuffle
// server into its local spill files (tcp transport, no shared filesystem).
inline constexpr const char* kNetSegmentWrite = "net_segment.bytes_written";
}  // namespace device

// Handle pair for one I/O channel: resolves counters once, then hot paths
// only touch atomics.
class IoChannel {
 public:
  IoChannel() = default;
  IoChannel(MetricRegistry* registry, const std::string& bytes_counter)
      : bytes_(registry != nullptr ? registry->Get(bytes_counter) : nullptr),
        ops_(registry != nullptr ? registry->Get(bytes_counter + ".ops")
                                 : nullptr) {}

  void Add(std::int64_t bytes) noexcept {
    if (bytes_ != nullptr) {
      bytes_->Add(bytes);
      ops_->Increment();
    }
  }

 private:
  Counter* bytes_ = nullptr;
  Counter* ops_ = nullptr;
};

}  // namespace opmr
