#include "storage/merger.h"

#include <utility>

namespace opmr {

KWayMerger::KWayMerger(std::vector<std::unique_ptr<RecordStream>> inputs)
    : inputs_(std::move(inputs)) {
  heap_.reserve(inputs_.size());
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    if (inputs_[i]->Next()) heap_.push_back(i);
  }
  // Build the min-heap bottom-up.
  for (std::size_t i = heap_.size(); i-- > 0;) SiftDown(i);
}

bool KWayMerger::Less(std::size_t a, std::size_t b) {
  ++comparisons_;
  const int c = inputs_[heap_[a]]->key().compare(inputs_[heap_[b]]->key());
  if (c != 0) return c < 0;
  return heap_[a] < heap_[b];  // stable tie-break by input index
}

void KWayMerger::SiftDown(std::size_t i) {
  const std::size_t n = heap_.size();
  while (true) {
    std::size_t smallest = i;
    const std::size_t l = 2 * i + 1;
    const std::size_t r = 2 * i + 2;
    if (l < n && Less(l, smallest)) smallest = l;
    if (r < n && Less(r, smallest)) smallest = r;
    if (smallest == i) break;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

bool KWayMerger::Next() {
  if (!primed_) {
    primed_ = true;
  } else if (!heap_.empty()) {
    // Advance the reader we last yielded from (heap root).
    if (inputs_[heap_[0]]->Next()) {
      SiftDown(0);
    } else {
      heap_[0] = heap_.back();
      heap_.pop_back();
      if (!heap_.empty()) SiftDown(0);
    }
  }
  if (heap_.empty()) return false;
  key_ = inputs_[heap_[0]]->key();
  value_ = inputs_[heap_[0]]->value();
  return true;
}

std::uint64_t MergeRunsToFile(const std::vector<std::filesystem::path>& inputs,
                              const std::filesystem::path& output,
                              IoChannel read_channel,
                              IoChannel write_channel) {
  std::vector<std::unique_ptr<RecordStream>> readers;
  readers.reserve(inputs.size());
  for (const auto& path : inputs) {
    readers.push_back(std::make_unique<RunReader>(path, read_channel));
  }
  KWayMerger merger(std::move(readers));
  RunWriter writer(output, write_channel);
  while (merger.Next()) {
    writer.Append(merger.key(), merger.value());
  }
  writer.Close();
  return writer.num_records();
}

}  // namespace opmr
