// RecordStream: the uniform pull interface over sequences of (key, value)
// records — on-disk runs, in-memory shuffle segments, merged streams.
#pragma once

#include <string>

#include "common/slice.h"

namespace opmr {

class RecordStream {
 public:
  virtual ~RecordStream() = default;

  // Advances to the next record; false at end.  key()/value() are valid
  // until the next call.
  virtual bool Next() = 0;
  [[nodiscard]] virtual Slice key() const = 0;
  [[nodiscard]] virtual Slice value() const = 0;
};

// A RecordStream over framed records held in one contiguous memory buffer
// (a pushed shuffle chunk or an in-memory segment).  Does not own the bytes.
class MemoryRunStream final : public RecordStream {
 public:
  explicit MemoryRunStream(Slice bytes) : bytes_(bytes) {}

  bool Next() override {
    if (pos_ >= bytes_.size()) return false;
    if (pos_ + 8 > bytes_.size()) {
      throw std::runtime_error("MemoryRunStream: truncated header");
    }
    const std::uint32_t klen = DecodeU32(bytes_.data() + pos_);
    const std::uint32_t vlen = DecodeU32(bytes_.data() + pos_ + 4);
    pos_ += 8;
    if (pos_ + klen + vlen > bytes_.size()) {
      throw std::runtime_error("MemoryRunStream: truncated payload");
    }
    key_ = Slice(bytes_.data() + pos_, klen);
    value_ = Slice(bytes_.data() + pos_ + klen, vlen);
    pos_ += klen + vlen;
    return true;
  }

  [[nodiscard]] Slice key() const override { return key_; }
  [[nodiscard]] Slice value() const override { return value_; }

 private:
  Slice bytes_;
  std::size_t pos_ = 0;
  Slice key_;
  Slice value_;
};

}  // namespace opmr
