#include "storage/file_manager.h"

#include <random>
#include <stdexcept>
#include <system_error>

namespace opmr {

namespace fs = std::filesystem;

FileManager::FileManager(fs::path root) : root_(std::move(root)) {
  std::error_code ec;
  fs::create_directories(root_, ec);
  if (ec) {
    throw std::runtime_error("FileManager: cannot create workspace " +
                             root_.string() + ": " + ec.message());
  }
}

FileManager::~FileManager() {
  std::error_code ec;
  fs::remove_all(root_, ec);  // best effort; never throw from a destructor
}

fs::path FileManager::NewFile(const std::string& tag) {
  const std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  return root_ / (tag + "." + std::to_string(id));
}

fs::path FileManager::NewDir(const std::string& tag) {
  fs::path dir = NewFile(tag);
  fs::create_directories(dir);
  return dir;
}

std::uintmax_t FileManager::DiskUsageBytes() const {
  std::uintmax_t total = 0;
  std::error_code ec;
  for (auto it = fs::recursive_directory_iterator(root_, ec);
       !ec && it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (it->is_regular_file(ec)) {
      total += it->file_size(ec);
    }
  }
  return total;
}

FileManager FileManager::CreateTemp(const std::string& prefix) {
  std::random_device rd;
  const auto suffix = std::to_string(rd()) + std::to_string(rd());
  return FileManager(fs::temp_directory_path() / (prefix + "-" + suffix));
}

}  // namespace opmr
