// K-way merge over sorted runs — the primitive under Hadoop's in-memory
// merge, background multi-pass merge, and final merge (paper §II-A).
#pragma once

#include <filesystem>
#include <memory>
#include <vector>

#include "common/slice.h"
#include "storage/record_stream.h"
#include "storage/run_format.h"

namespace opmr {

// Streaming k-way merge: repeatedly yields the globally smallest current
// record across all input runs (ties broken by input index, making the
// merge stable with respect to run order, as Hadoop's is).
class KWayMerger final : public RecordStream {
 public:
  explicit KWayMerger(std::vector<std::unique_ptr<RecordStream>> inputs);

  // Advances to the next record in global key order; false when all inputs
  // are exhausted.
  bool Next() override;

  [[nodiscard]] Slice key() const override { return key_; }
  [[nodiscard]] Slice value() const override { return value_; }

  // Number of key comparisons performed so far (merge CPU proxy used by the
  // simulator calibration bench).
  [[nodiscard]] std::uint64_t comparisons() const noexcept {
    return comparisons_;
  }

 private:
  void SiftDown(std::size_t i);
  [[nodiscard]] bool Less(std::size_t a, std::size_t b);

  std::vector<std::unique_ptr<RecordStream>> inputs_;
  std::vector<std::size_t> heap_;  // indices into inputs_, min-heap by key
  Slice key_;
  Slice value_;
  std::uint64_t comparisons_ = 0;
  bool primed_ = false;
};

// Merges `inputs` (paths of sorted runs) into a single sorted run at
// `output`, reading through `read_channel` and writing through
// `write_channel`.  Returns the number of records written.
std::uint64_t MergeRunsToFile(const std::vector<std::filesystem::path>& inputs,
                              const std::filesystem::path& output,
                              IoChannel read_channel, IoChannel write_channel);

}  // namespace opmr
