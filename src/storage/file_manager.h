// File-management library (paper Fig. 5): owns the on-disk workspace of a
// job run — spill files, sorted runs, map-output segments — with unique
// naming and whole-tree RAII cleanup.
#pragma once

#include <atomic>
#include <filesystem>
#include <string>

namespace opmr {

class FileManager {
 public:
  // Creates (or reuses) `root` as the workspace directory.
  explicit FileManager(std::filesystem::path root);

  FileManager(const FileManager&) = delete;
  FileManager& operator=(const FileManager&) = delete;

  // Removes the whole workspace tree.
  ~FileManager();

  // A fresh unique path under the workspace; `tag` names the purpose
  // ("map_out", "reduce_spill", "merge_run", …) for debuggability.
  [[nodiscard]] std::filesystem::path NewFile(const std::string& tag);

  // A fresh unique subdirectory (created) under the workspace.
  [[nodiscard]] std::filesystem::path NewDir(const std::string& tag);

  [[nodiscard]] const std::filesystem::path& root() const noexcept {
    return root_;
  }

  // Total bytes currently on disk under the workspace (test/bench helper).
  [[nodiscard]] std::uintmax_t DiskUsageBytes() const;

  // Creates a FileManager rooted in a unique directory under the system
  // temp dir.
  static FileManager CreateTemp(const std::string& prefix);

 private:
  std::filesystem::path root_;
  std::atomic<std::uint64_t> next_id_{0};
};

}  // namespace opmr
