#include "serve/query_client.h"

#include <stdexcept>
#include <utility>

namespace opmr::serve {

QueryClient::QueryClient(net::Transport* transport, std::string tenant)
    : tenant_(std::move(tenant)) {
  conn_ = transport->Connect([this](net::Connection*, net::Frame frame) {
    if (frame.type != net::FrameType::kQueryResult) return;
    net::QueryResultMsg result;
    try {
      result = net::QueryResultMsg::Parse(frame);
    } catch (const net::WireError&) {
      return;  // corrupt reply; the waiter times out
    }
    {
      std::scoped_lock lock(mu_);
      ready_[result.id] = std::move(result);
    }
    cv_.notify_all();
  });
}

net::QueryResultMsg QueryClient::Query(net::QueryMsg query,
                                       std::chrono::milliseconds timeout) {
  std::uint64_t id = 0;
  {
    std::scoped_lock lock(mu_);
    id = next_id_++;
  }
  query.id = id;
  query.tenant = tenant_;
  conn_->Send(query.ToFrame());

  std::unique_lock lock(mu_);
  if (!cv_.wait_for(lock, timeout, [&] { return ready_.contains(id); })) {
    throw std::runtime_error("QueryClient: timed out waiting for reply " +
                             std::to_string(id));
  }
  net::QueryResultMsg result = std::move(ready_[id]);
  ready_.erase(id);
  return result;
}

net::QueryResultMsg QueryClient::Point(const std::string& key,
                                       std::uint64_t staleness_budget) {
  net::QueryMsg query;
  query.op = net::QueryOp::kPoint;
  query.key = key;
  query.staleness_budget = staleness_budget;
  return Query(std::move(query));
}

net::QueryResultMsg QueryClient::TopK(std::uint32_t n) {
  net::QueryMsg query;
  query.op = net::QueryOp::kTopK;
  query.limit = n;
  return Query(std::move(query));
}

net::QueryResultMsg QueryClient::Scan(const std::string& begin,
                                      const std::string& end,
                                      std::uint32_t limit) {
  net::QueryMsg query;
  query.op = net::QueryOp::kScan;
  query.key = begin;
  query.end_key = end;
  query.limit = limit;
  return Query(std::move(query));
}

}  // namespace opmr::serve
