#include "serve/publisher.h"

#include <algorithm>
#include <utility>

#include "common/crc32.h"

namespace opmr::serve {

namespace {

CheckpointOptions ManagerOptions(const PublisherOptions& options) {
  CheckpointOptions ckpt;
  ckpt.enabled = true;
  ckpt.retain = std::max(options.retain, 1);
  ckpt.compress = options.compress;
  return ckpt;
}

}  // namespace

SnapshotPublisher::SnapshotPublisher(net::Transport* transport,
                                     MetricRegistry* metrics,
                                     PublisherOptions options)
    : transport_(transport),
      metrics_(metrics),
      options_(std::move(options)),
      manager_(options_.dir, options_.job + kServeJobSuffix, /*worker=*/0,
               ManagerOptions(options_), metrics) {
  manager_.Reset();
  transport_->Listen(
      [this](net::Connection* from, net::Frame frame) {
        HandleFrame(from, std::move(frame));
      });
}

std::uint64_t SnapshotPublisher::Publish(CheckpointImage image) {
  // Durable commit first (CRC'd tmp+rename, retention prune), then the
  // wire image.  The checkpoint seq IS the snapshot version: strictly
  // monotonic, assigned under the single-publisher contract.
  manager_.Write(&image);
  const std::uint64_t version = image.seq;
  auto bytes =
      std::make_shared<const std::string>(SerializeCheckpointImage(image));
  net::SnapshotAnnounceMsg announce;
  announce.job = options_.job;
  announce.version = version;
  announce.watermark = image.watermark;
  announce.bytes = bytes->size();
  announce.crc = Crc32(bytes->data(), bytes->size());

  std::vector<net::Connection*> targets;
  {
    std::scoped_lock lock(mu_);
    retained_[version] = {image.watermark, announce.crc, std::move(bytes)};
    while (static_cast<int>(retained_.size()) >
           std::max(options_.retain, 1)) {
      retained_.erase(retained_.begin());
    }
    latest_version_ = version;
    ++published_;
    targets = subscribers_;
  }

  const net::Frame frame = announce.ToFrame();
  for (net::Connection* conn : targets) {
    try {
      conn->Send(frame);
    } catch (const net::TransportError&) {
      // A dead subscriber misses this announce; its reconnect preamble
      // (Hello) re-subscribes and the greeting announce catches it up.
      std::scoped_lock lock(mu_);
      subscribers_.erase(
          std::remove(subscribers_.begin(), subscribers_.end(), conn),
          subscribers_.end());
    }
  }
  metrics_->Get("serve.published")->Increment();
  return version;
}

std::uint64_t SnapshotPublisher::published() const {
  std::scoped_lock lock(mu_);
  return published_;
}

std::uint64_t SnapshotPublisher::latest_version() const {
  std::scoped_lock lock(mu_);
  return latest_version_;
}

std::size_t SnapshotPublisher::subscribers() const {
  std::scoped_lock lock(mu_);
  return subscribers_.size();
}

void SnapshotPublisher::HandleFrame(net::Connection* from, net::Frame frame) {
  switch (frame.type) {
    case net::FrameType::kHello:
      HandleHello(from, frame);
      return;
    case net::FrameType::kSnapshotFetch:
      HandleFetch(from, frame);
      return;
    default:
      // Tolerated (e.g. Bye on shutdown paths); the serving protocol only
      // reacts to subscriptions and fetches.
      return;
  }
}

void SnapshotPublisher::HandleHello(net::Connection* from,
                                    const net::Frame& frame) {
  const net::HelloMsg hello = net::HelloMsg::Parse(frame);
  if (!options_.secret.empty() &&
      !net::ConstantTimeEquals(options_.secret, hello.auth)) {
    metrics_->Get("serve.auth_rejects")->Increment();
    net::AbortMsg abort;
    abort.reason = "serve: authentication failed";
    try {
      from->Send(abort.ToFrame());
    } catch (const net::TransportError&) {
    }
    return;
  }
  net::SnapshotAnnounceMsg greeting;
  bool have_snapshot = false;
  {
    std::scoped_lock lock(mu_);
    if (std::find(subscribers_.begin(), subscribers_.end(), from) ==
        subscribers_.end()) {
      subscribers_.push_back(from);
    }
    // Greet with the newest version so a late subscriber (or one whose
    // connection dropped and re-preambled) catches up immediately.
    if (latest_version_ != 0) {
      const Retained& latest = retained_.rbegin()->second;
      greeting.job = options_.job;
      greeting.version = latest_version_;
      greeting.watermark = latest.watermark;
      greeting.bytes = latest.bytes->size();
      greeting.crc = latest.crc;
      have_snapshot = true;
    }
  }
  metrics_->Get("serve.subscribes")->Increment();
  if (have_snapshot) {
    try {
      from->Send(greeting.ToFrame());
    } catch (const net::TransportError&) {
    }
  }
}

void SnapshotPublisher::HandleFetch(net::Connection* from,
                                    const net::Frame& frame) {
  const net::SnapshotFetchMsg request = net::SnapshotFetchMsg::Parse(frame);
  net::SnapshotFetchMsg reply;
  reply.job = options_.job;
  reply.version = request.version;
  reply.reply = true;
  std::shared_ptr<const std::string> bytes;
  {
    std::scoped_lock lock(mu_);
    if (const auto it = retained_.find(request.version);
        it != retained_.end()) {
      reply.crc = it->second.crc;
      bytes = it->second.bytes;
    }
  }
  if (bytes != nullptr) {
    reply.bytes = *bytes;  // empty bytes in a reply = version pruned
    metrics_->Get("serve.fetches")->Increment();
  } else {
    metrics_->Get("serve.fetch_misses")->Increment();
  }
  try {
    from->Send(reply.ToFrame());
  } catch (const net::TransportError&) {
  }
}

}  // namespace opmr::serve
