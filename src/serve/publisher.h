// SnapshotPublisher — the job side of the serving plane.
//
// A streaming/incremental job hands the publisher a consistent
// CheckpointImage on every watermark advance (StreamingOptions::
// publish_snapshot).  The publisher:
//
//   1. commits the image durably through the checkpoint subsystem's CRC'd
//      atomic tmp+rename format, under the pseudo-job "<job>.serve" so
//      job-completion GC (SweepFinishedJobs) reclaims the files;
//   2. assigns the image a monotonic epoch version (the checkpoint seq);
//   3. keeps the last `retain` serialized images in memory for fetches;
//   4. announces {job, version, watermark, bytes, crc} to every subscribed
//      frontend over the framed transport.
//
// Frontends subscribe by sending a Hello{job} on a fresh connection (the
// same frame doubles as the TcpTransport reconnect preamble, so a dropped
// subscription re-arms itself) and pull images with SnapshotFetch.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "checkpoint/checkpoint.h"
#include "metrics/counters.h"
#include "net/transport.h"
#include "net/wire.h"

namespace opmr::serve {

struct PublisherOptions {
  std::string job;
  std::filesystem::path dir;  // snapshot image directory
  int retain = 4;             // versions kept on disk and fetchable
  std::string secret;         // shared secret; empty = no auth
  bool compress = false;      // OZ-compress the on-disk images
};

class SnapshotPublisher {
 public:
  // `transport` must already be bound (server mode); the publisher
  // Listen()s on it for subscriptions and fetches.  Does not take
  // ownership.  Pre-existing serve images of this job are Reset() away —
  // a new stream never serves a previous run's state.
  SnapshotPublisher(net::Transport* transport, MetricRegistry* metrics,
                    PublisherOptions options);

  SnapshotPublisher(const SnapshotPublisher&) = delete;
  SnapshotPublisher& operator=(const SnapshotPublisher&) = delete;

  // Commits `image` and announces it.  Returns the assigned version.
  // Call from the job's publish hook; serialized, single-caller.
  std::uint64_t Publish(CheckpointImage image);

  [[nodiscard]] std::uint64_t published() const;
  [[nodiscard]] std::uint64_t latest_version() const;
  [[nodiscard]] std::size_t subscribers() const;

 private:
  void HandleFrame(net::Connection* from, net::Frame frame);
  void HandleHello(net::Connection* from, const net::Frame& frame);
  void HandleFetch(net::Connection* from, const net::Frame& frame);

  struct Retained {
    std::uint64_t watermark = 0;
    std::uint32_t crc = 0;
    std::shared_ptr<const std::string> bytes;
  };

  net::Transport* transport_;
  MetricRegistry* metrics_;
  PublisherOptions options_;
  CheckpointManager manager_;

  mutable std::mutex mu_;
  std::map<std::uint64_t, Retained> retained_;  // version -> image
  std::vector<net::Connection*> subscribers_;
  std::uint64_t latest_version_ = 0;
  std::uint64_t published_ = 0;
};

}  // namespace opmr::serve
