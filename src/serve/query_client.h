// QueryClient — a tenant's handle on one frontend.  Sends Query frames,
// correlates QueryResult replies by id, and offers typed point / top-k /
// scan convenience calls.  Thread-safe; concurrent queries multiplex over
// the single connection.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "net/transport.h"
#include "net/wire.h"

namespace opmr::serve {

class QueryClient {
 public:
  // `transport` dials the frontend; not owned.
  QueryClient(net::Transport* transport, std::string tenant);

  QueryClient(const QueryClient&) = delete;
  QueryClient& operator=(const QueryClient&) = delete;

  // Sends `query` (id/tenant are filled in) and waits for its reply.
  // Throws std::runtime_error on timeout.
  net::QueryResultMsg Query(
      net::QueryMsg query,
      std::chrono::milliseconds timeout = std::chrono::seconds(10));

  net::QueryResultMsg Point(const std::string& key,
                            std::uint64_t staleness_budget = ~0ull);
  net::QueryResultMsg TopK(std::uint32_t n);
  net::QueryResultMsg Scan(const std::string& begin, const std::string& end,
                           std::uint32_t limit);

 private:
  std::string tenant_;
  std::shared_ptr<net::Connection> conn_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, net::QueryResultMsg> ready_;
};

}  // namespace opmr::serve
