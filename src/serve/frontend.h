// SnapshotFrontend — a read-only replica of a live job's published state.
//
// The frontend dials the job's SnapshotPublisher, subscribes with a
// Hello{job} (re-armed as the reconnect preamble, so a dropped link
// re-subscribes itself), and on every SnapshotAnnounce pulls the image
// bytes, CRC-verifies them, parses the CheckpointImage and atomically
// swaps in an immutable in-memory View.  Point / top-k / scan queries are
// answered from that view under two per-tenant guarantees:
//
//   * bounded staleness — the replica knows the newest announced
//     watermark; when (announced - served) exceeds the effective budget
//     (min of the tenant's and the query's), the query is REJECTED with
//     kStale rather than silently answered from old data;
//   * token-bucket rate limits — per-tenant rate/burst, so one hot tenant
//     cannot starve another replica reader.
//
// Views are deterministic functions of the image bytes, so two frontends
// that applied the same version serve byte-identical answers — the
// replica-consistency property serve_test pins down.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "engine/aggregators.h"
#include "metrics/counters.h"
#include "net/transport.h"
#include "net/wire.h"

namespace opmr::serve {

// Per-tenant serving policy.  rate_per_s == 0 disables rate limiting;
// burst == 0 defaults to max(rate_per_s, 1).
struct TenantPolicy {
  double rate_per_s = 0.0;
  double burst = 0.0;
  std::uint64_t staleness_budget = ~0ull;  // max lag, in ingest records
};

struct FrontendOptions {
  std::string job;
  // Finalizes the raw aggregator states an image carries into servable
  // values (the same aggregator the publishing job folds with).
  std::shared_ptr<Aggregator> aggregator;
  std::map<std::string, TenantPolicy> tenants;
  TenantPolicy default_policy;  // tenants not in the map
  std::uint32_t scan_limit = 1000;  // hard cap on rows per scan/top-k
  std::string worker;               // identity in the subscribe Hello
  std::string secret;               // publisher's shared secret
  // Monotonic seconds for the token buckets; test-injectable.  Defaults
  // to the steady clock.
  std::function<double()> clock;
};

class SnapshotFrontend {
 public:
  // `server` must already be bound (query side); `publisher_link` dials
  // the publisher.  Neither is owned.  Subscribes immediately.
  SnapshotFrontend(net::Transport* server, net::Transport* publisher_link,
                   MetricRegistry* metrics, FrontendOptions options);
  ~SnapshotFrontend();

  SnapshotFrontend(const SnapshotFrontend&) = delete;
  SnapshotFrontend& operator=(const SnapshotFrontend&) = delete;

  // Executes one query against the current view (the wire handler and
  // in-process tests share this path).
  [[nodiscard]] net::QueryResultMsg Execute(const net::QueryMsg& query);

  // Blocks until a view with version >= `version` is serving (true) or
  // the timeout expires (false).
  bool WaitForVersion(std::uint64_t version, std::chrono::milliseconds timeout);

  // Test hook: while paused, announces still advance announced_watermark
  // but no fetch is issued — the lever for staleness-boundary tests.
  void PauseFetch(bool paused);

  // The full finalized view, key-sorted (replica-equality checks).
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> ScanAll()
      const;

  [[nodiscard]] std::uint64_t serving_version() const;
  [[nodiscard]] std::uint64_t serving_watermark() const;
  [[nodiscard]] std::uint64_t announced_watermark() const;

 private:
  struct View {
    std::uint64_t version = 0;
    std::uint64_t watermark = 0;
    // Finalized rows, key-sorted (point/scan) and value-ranked (top-k,
    // u64-decoded descending, key ascending on ties — TopAnswers' order).
    std::vector<std::pair<std::string, std::string>> rows;
    std::vector<std::pair<std::string, std::string>> by_score;
  };

  struct TokenBucket {
    double tokens = 0.0;
    double last_refill_s = 0.0;
    bool primed = false;
  };

  void OnPublisherFrame(net::Connection* from, net::Frame frame);
  void ApplyImage(std::uint64_t version, const std::string& bytes,
                  std::uint32_t crc);
  // Runs on fetcher_: issues SnapshotFetch requests for announced-but-
  // unapplied versions.  Fetches never happen inline in a frame handler —
  // the loopback transport delivers synchronously, and a fetch reply sent
  // while the announce is still being delivered would re-enter the same
  // connection.
  void FetchLoop();
  [[nodiscard]] std::shared_ptr<const View> CurrentView() const;
  [[nodiscard]] TenantPolicy PolicyFor(const std::string& tenant) const;
  bool TryAcquire(const std::string& tenant, const TenantPolicy& policy);

  net::Transport* server_;
  net::Transport* publisher_link_;
  MetricRegistry* metrics_;
  FrontendOptions options_;
  std::shared_ptr<net::Connection> publisher_conn_;

  mutable std::mutex mu_;
  std::condition_variable applied_cv_;
  std::condition_variable fetch_cv_;
  std::shared_ptr<const View> view_;  // immutable once published
  std::uint64_t announced_version_ = 0;
  std::uint64_t announced_watermark_ = 0;
  std::uint64_t fetch_sent_ = 0;  // newest version a fetch went out for
  bool paused_ = false;
  bool stopping_ = false;
  std::map<std::string, TokenBucket> buckets_;

  std::thread fetcher_;  // last member: started at the end of the ctor
};

}  // namespace opmr::serve
