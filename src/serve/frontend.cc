#include "serve/frontend.h"

#include <algorithm>
#include <stdexcept>

#include "checkpoint/checkpoint.h"
#include "common/crc32.h"

namespace opmr::serve {

namespace {

double SteadySeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint64_t ScoreOf(const std::string& value) {
  return value.size() == 8 ? DecodeU64(value.data()) : 0;
}

}  // namespace

SnapshotFrontend::SnapshotFrontend(net::Transport* server,
                                   net::Transport* publisher_link,
                                   MetricRegistry* metrics,
                                   FrontendOptions options)
    : server_(server),
      publisher_link_(publisher_link),
      metrics_(metrics),
      options_(std::move(options)) {
  if (options_.aggregator == nullptr) {
    throw std::invalid_argument("SnapshotFrontend: aggregator required");
  }
  if (!options_.clock) options_.clock = SteadySeconds;

  net::HelloMsg hello;
  hello.job = options_.job;
  hello.worker = options_.worker;
  hello.auth = options_.secret;
  // The preamble re-subscribes after any reconnect; the explicit Send
  // below is the first subscription.
  publisher_link_->SetConnectPreamble(hello.ToFrame());
  publisher_conn_ = publisher_link_->Connect(
      [this](net::Connection* from, net::Frame frame) {
        OnPublisherFrame(from, std::move(frame));
      });
  publisher_conn_->Send(hello.ToFrame());

  server_->Listen([this](net::Connection* from, net::Frame frame) {
    if (frame.type != net::FrameType::kQuery) return;
    net::QueryResultMsg result;
    try {
      result = Execute(net::QueryMsg::Parse(frame));
    } catch (const net::WireError& err) {
      result.status = net::QueryStatus::kBadRequest;
      result.error = err.what();
    }
    try {
      from->Send(result.ToFrame());
    } catch (const net::TransportError&) {
      // Client gone; its retry will re-ask.
    }
  });

  fetcher_ = std::thread([this] { FetchLoop(); });
}

SnapshotFrontend::~SnapshotFrontend() {
  {
    std::scoped_lock lock(mu_);
    stopping_ = true;
  }
  fetch_cv_.notify_all();
  if (fetcher_.joinable()) fetcher_.join();
}

void SnapshotFrontend::OnPublisherFrame(net::Connection* /*from*/,
                                        net::Frame frame) {
  switch (frame.type) {
    case net::FrameType::kSnapshotAnnounce: {
      const auto announce = net::SnapshotAnnounceMsg::Parse(frame);
      if (announce.job != options_.job) return;
      {
        std::scoped_lock lock(mu_);
        if (announce.version > announced_version_) {
          announced_version_ = announce.version;
          announced_watermark_ = announce.watermark;
        }
        // A re-announce of a version we already fetched (the greeting
        // after a reconnect) means the earlier fetch or its reply may have
        // died with the link: re-arm so the fetcher asks again.
        const std::uint64_t applied = view_ == nullptr ? 0 : view_->version;
        if (announce.version <= fetch_sent_ && announce.version > applied) {
          fetch_sent_ = applied;
        }
      }
      // The fetch itself happens on fetcher_, never inline here: the
      // handler may be running inside a synchronous delivery and a fetch
      // would re-enter the connection.
      fetch_cv_.notify_all();
      return;
    }
    case net::FrameType::kSnapshotFetch: {
      const auto reply = net::SnapshotFetchMsg::Parse(frame);
      if (!reply.reply || reply.job != options_.job) return;
      if (reply.bytes.empty()) {
        // Version pruned past retention; a newer announce (or the
        // subscribe greeting after a reconnect) supersedes this fetch.
        metrics_->Get("serve.fetch_missing")->Increment();
        return;
      }
      ApplyImage(reply.version, reply.bytes, reply.crc);
      return;
    }
    case net::FrameType::kAbort:
      metrics_->Get("serve.publisher_aborts")->Increment();
      return;
    default:
      return;
  }
}

void SnapshotFrontend::FetchLoop() {
  std::unique_lock lock(mu_);
  while (true) {
    fetch_cv_.wait(lock, [&] {
      const std::uint64_t applied = view_ == nullptr ? 0 : view_->version;
      return stopping_ ||
             (!paused_ &&
              announced_version_ > std::max(applied, fetch_sent_));
    });
    if (stopping_) return;
    const std::uint64_t version = announced_version_;
    fetch_sent_ = version;
    lock.unlock();
    net::SnapshotFetchMsg request;
    request.job = options_.job;
    request.version = version;
    try {
      publisher_conn_->Send(request.ToFrame());
    } catch (const net::TransportError&) {
      // Link down; the reconnect preamble re-subscribes and the greeting
      // announce re-arms the fetch.
    }
    lock.lock();
  }
}

void SnapshotFrontend::ApplyImage(std::uint64_t version,
                                  const std::string& bytes,
                                  std::uint32_t crc) {
  if (Crc32(bytes.data(), bytes.size()) != crc) {
    metrics_->Get("serve.fetch_corrupt")->Increment();
    return;
  }
  CheckpointImage image;
  try {
    image = ParseCheckpointImage(bytes);
  } catch (const std::exception&) {
    metrics_->Get("serve.fetch_corrupt")->Increment();
    return;
  }

  auto view = std::make_shared<View>();
  view->version = version;
  view->watermark = image.watermark;
  // Keys are worker-partitioned, but merge defensively so a duplicate key
  // can never make two replicas disagree on which copy wins.
  std::map<std::string, std::string> states;
  for (auto& entry : image.entries) {
    auto [it, inserted] =
        states.try_emplace(std::move(entry.key), std::move(entry.state));
    if (!inserted) {
      options_.aggregator->Merge(&it->second, entry.state);
    }
  }
  view->rows.reserve(states.size());
  std::string finalized;
  for (const auto& [key, state] : states) {
    options_.aggregator->Finalize(state, &finalized);
    view->rows.emplace_back(key, finalized);  // std::map: key-sorted
  }
  view->by_score = view->rows;
  std::sort(view->by_score.begin(), view->by_score.end(),
            [](const auto& a, const auto& b) {
              const std::uint64_t av = ScoreOf(a.second);
              const std::uint64_t bv = ScoreOf(b.second);
              if (av != bv) return av > bv;
              return a.first < b.first;
            });

  {
    std::scoped_lock lock(mu_);
    // Fetch replies can arrive out of order; the view only moves forward.
    if (view_ != nullptr && view_->version >= version) return;
    view_ = std::move(view);
  }
  applied_cv_.notify_all();
  metrics_->Get("serve.applied")->Increment();
}

std::shared_ptr<const SnapshotFrontend::View> SnapshotFrontend::CurrentView()
    const {
  std::scoped_lock lock(mu_);
  return view_;
}

TenantPolicy SnapshotFrontend::PolicyFor(const std::string& tenant) const {
  if (const auto it = options_.tenants.find(tenant);
      it != options_.tenants.end()) {
    return it->second;
  }
  return options_.default_policy;
}

bool SnapshotFrontend::TryAcquire(const std::string& tenant,
                                  const TenantPolicy& policy) {
  if (policy.rate_per_s <= 0.0) return true;
  const double burst =
      policy.burst > 0.0 ? policy.burst : std::max(policy.rate_per_s, 1.0);
  const double now = options_.clock();
  std::scoped_lock lock(mu_);
  TokenBucket& bucket = buckets_[tenant];
  if (!bucket.primed) {
    bucket.tokens = burst;
    bucket.last_refill_s = now;
    bucket.primed = true;
  } else if (now > bucket.last_refill_s) {
    bucket.tokens = std::min(
        burst, bucket.tokens + (now - bucket.last_refill_s) * policy.rate_per_s);
    bucket.last_refill_s = now;
  }
  if (bucket.tokens < 1.0) return false;
  bucket.tokens -= 1.0;
  return true;
}

net::QueryResultMsg SnapshotFrontend::Execute(const net::QueryMsg& query) {
  metrics_->Get("serve.queries")->Increment();
  net::QueryResultMsg result;
  result.id = query.id;

  const TenantPolicy policy = PolicyFor(query.tenant);
  if (!TryAcquire(query.tenant, policy)) {
    metrics_->Get("serve.throttled")->Increment();
    result.status = net::QueryStatus::kThrottled;
    result.error = "tenant '" + query.tenant + "' rate limit exceeded";
    return result;
  }

  const auto view = CurrentView();
  std::uint64_t announced = 0;
  {
    std::scoped_lock lock(mu_);
    announced = announced_watermark_;
  }
  if (view == nullptr) {
    result.status = net::QueryStatus::kStale;
    result.lag = announced;
    result.error = "no snapshot applied yet";
    metrics_->Get("serve.stale_rejects")->Increment();
    return result;
  }
  result.version = view->version;
  result.watermark = view->watermark;
  result.lag = announced > view->watermark ? announced - view->watermark : 0;

  // The query may tighten, never loosen, the tenant's budget.
  const std::uint64_t budget =
      std::min(policy.staleness_budget, query.staleness_budget);
  if (result.lag > budget) {
    result.status = net::QueryStatus::kStale;
    result.error = "replica lag " + std::to_string(result.lag) +
                   " exceeds staleness budget " + std::to_string(budget);
    metrics_->Get("serve.stale_rejects")->Increment();
    return result;
  }

  const std::uint32_t cap =
      std::min(query.limit == 0 ? options_.scan_limit : query.limit,
               options_.scan_limit);
  switch (query.op) {
    case net::QueryOp::kPoint: {
      if (query.key.empty()) {
        result.status = net::QueryStatus::kBadRequest;
        result.error = "point query requires a key";
        return result;
      }
      const auto it = std::lower_bound(
          view->rows.begin(), view->rows.end(), query.key,
          [](const auto& row, const std::string& want) {
            return row.first < want;
          });
      if (it == view->rows.end() || it->first != query.key) {
        result.status = net::QueryStatus::kNotFound;
        return result;
      }
      result.rows.push_back(*it);
      return result;
    }
    case net::QueryOp::kTopK: {
      const std::size_t n =
          std::min<std::size_t>(cap, view->by_score.size());
      result.rows.assign(view->by_score.begin(),
                         view->by_score.begin() + static_cast<long>(n));
      return result;
    }
    case net::QueryOp::kScan: {
      auto it = std::lower_bound(
          view->rows.begin(), view->rows.end(), query.key,
          [](const auto& row, const std::string& want) {
            return row.first < want;
          });
      for (; it != view->rows.end() && result.rows.size() < cap; ++it) {
        if (!query.end_key.empty() && it->first >= query.end_key) break;
        result.rows.push_back(*it);
      }
      return result;
    }
  }
  result.status = net::QueryStatus::kBadRequest;
  result.error = "unknown query op";
  return result;
}

bool SnapshotFrontend::WaitForVersion(std::uint64_t version,
                                      std::chrono::milliseconds timeout) {
  std::unique_lock lock(mu_);
  return applied_cv_.wait_for(lock, timeout, [&] {
    return view_ != nullptr && view_->version >= version;
  });
}

void SnapshotFrontend::PauseFetch(bool paused) {
  {
    std::scoped_lock lock(mu_);
    paused_ = paused;
    if (!paused) {
      // Re-arm: anything announced while paused (or fetched without a
      // usable reply) is fetched again.
      fetch_sent_ = view_ == nullptr ? 0 : view_->version;
    }
  }
  fetch_cv_.notify_all();
}

std::vector<std::pair<std::string, std::string>> SnapshotFrontend::ScanAll()
    const {
  const auto view = CurrentView();
  return view == nullptr
             ? std::vector<std::pair<std::string, std::string>>{}
             : view->rows;
}

std::uint64_t SnapshotFrontend::serving_version() const {
  const auto view = CurrentView();
  return view == nullptr ? 0 : view->version;
}

std::uint64_t SnapshotFrontend::serving_watermark() const {
  const auto view = CurrentView();
  return view == nullptr ? 0 : view->watermark;
}

std::uint64_t SnapshotFrontend::announced_watermark() const {
  std::scoped_lock lock(mu_);
  return announced_watermark_;
}

}  // namespace opmr::serve
