// Streaming execution — the platform the paper's conclusion promises:
// "near real-time stream processing that obviates the need for data
// loading and returns pipelined answers as data arrives".
//
// A StreamingJob is a long-lived MapReduce query with no pre-loaded input:
// records are Ingest()ed as they arrive, the map function runs inline on
// the ingesting thread, and the emitted pairs are routed to R parallel
// reducer workers that maintain incremental per-key aggregator states
// (plain or hot-key, with disk spilling under memory pressure — the same
// §V techniques as the batch runtime).  At any moment the live states can
// be queried:
//
//   StreamingJob job(query, options, /*reducers=*/4);
//   job.Ingest(record);               // any thread, any time
//   auto count = job.Query("u00042"); // live answer, current as of now
//   auto top = job.TopAnswers(10);    // live top-k by aggregate
//   auto all = job.Finish();          // drain, resolve spills, exact result
//
// Early emission works as in batch: an early_emit policy fires answers into
// the emission callback the moment their condition is met.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "checkpoint/checkpoint.h"
#include "checkpoint/options.h"
#include "engine/aggregators.h"
#include "engine/job.h"
#include "engine/state_table.h"
#include "frequent/space_saving.h"
#include "metrics/counters.h"
#include "storage/file_manager.h"

namespace opmr {

struct StreamingOptions {
  // Per-worker byte budget for resident states; exceeding it spills
  // (plain mode) or demotes cold keys (hot-key mode).
  std::size_t worker_budget_bytes = 16u << 20;

  // Enable the Space-Saving hot-key optimization with this capacity per
  // worker (0 = plain incremental states).
  std::size_t hot_key_capacity = 0;

  // Bounded ingest queue per worker (records); Ingest blocks when full —
  // the streaming analogue of HOP's back-pressure.
  std::size_t queue_capacity = 8192;

  // Fired from worker threads the moment `early_emit` approves a key.
  std::function<bool(Slice key, Slice state)> early_emit;
  std::function<void(Slice key, Slice value)> on_early_answer;

  bool compress_spills = false;

  // Periodic per-worker checkpoints of (state table, sketch, spill
  // manifest, ingest watermark); see CrashWorker()/Recover().  Intervals
  // count the records a worker has fully folded.  Incompatible with
  // early_emit (replayed records would duplicate early answers).
  CheckpointOptions checkpoint;

  // Serve-plane publication: every `snapshot_interval_records` ingested
  // records, the ingesting thread settles the workers and hands a
  // consistent job-wide CheckpointImage (watermark = records ingested) to
  // `publish_snapshot`.  Both must be set together.  Like recovery, this
  // assumes the single-ingest-thread contract — the settle happens on the
  // one thread that could otherwise be enqueueing.
  std::uint64_t snapshot_interval_records = 0;
  std::function<void(CheckpointImage)> publish_snapshot;
};

// A streaming query: map + aggregator (streaming needs the algebraic form;
// holistic reduces cannot produce answers before end-of-stream).
struct StreamingQuery {
  std::string name;
  MapFn map;
  std::shared_ptr<Aggregator> aggregator;
};

class StreamingJob {
 public:
  StreamingJob(StreamingQuery query, StreamingOptions options,
               int num_workers);
  ~StreamingJob();

  StreamingJob(const StreamingJob&) = delete;
  StreamingJob& operator=(const StreamingJob&) = delete;

  // Applies the map function to one arriving record and routes its output.
  // Blocks under back-pressure.  Throws after Finish().  The recovery
  // contract requires a single ingesting thread feeding records in a
  // deterministic, replayable order (a source offset — the Kafka model):
  // each record gets the next sequence number, and Recover() names the
  // sequence to re-ingest from.
  void Ingest(Slice record);

  // Live point lookup: the key's current aggregate, if its state is
  // resident right now (approximate in hot-key mode if parts were demoted).
  // After Finish(), answers come from the exact final results instead.
  [[nodiscard]] std::optional<std::string> Query(Slice key) const;

  // Live top-n answers by aggregate value (u64-decoded), largest first.
  // A snapshot of the resident states — the "pipelined answers" surface.
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> TopAnswers(
      std::size_t n) const;

  // Total records ingested and key/value pairs routed so far.
  [[nodiscard]] std::uint64_t records_ingested() const;
  [[nodiscard]] std::uint64_t pairs_routed() const;
  [[nodiscard]] std::uint64_t early_answers() const;

  // Ends the stream: drains queues, resolves spilled partial states and
  // returns the exact final (key, value) results, sorted by key.
  // Idempotent — repeated calls return the same results.
  std::vector<std::pair<std::string, std::string>> Finish();

  // Settles every worker, then collects the resident states (plus sketch
  // summaries) of all workers into one image whose watermark is the ingest
  // sequence covered.  The serve plane's snapshot source; also usable
  // directly for a one-off consistent view.  Throws after Finish().
  [[nodiscard]] CheckpointImage CollectSnapshot();

  // --- fault injection & recovery (requires checkpoint.enabled) -------------

  // Simulates the loss of one worker: its queue, state table, sketch and
  // spill manifest are discarded, as a process crash would.  Checkpoints
  // and spill files on disk survive.
  void CrashWorker(int worker);

  // Restores every crashed worker from its latest valid checkpoint and
  // returns the ingest sequence to resume from: the caller re-Ingest()s its
  // source records AFTER that sequence (records_ingested() is rolled back
  // to it).  Healthy workers deduplicate the replay — a record they already
  // folded is skipped — so the final results match a crash-free run
  // exactly.
  std::uint64_t Recover();

  // Job-scoped counter value ("checkpoint.written", "stream.demotions",
  // "recovery.replay_records", ...); 0 for unknown names.
  [[nodiscard]] std::int64_t CounterValue(const std::string& name) const;

 private:
  class Worker;

  StreamingQuery query_;
  StreamingOptions options_;
  FileManager files_;
  MetricRegistry metrics_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<std::uint64_t> records_{0};
  // After Recover(): sequences at or below this are replays of already-
  // ingested source records (counted into "recovery.replay_records").
  std::atomic<std::uint64_t> replay_until_{0};
  std::atomic<bool> finished_{false};
  std::vector<std::pair<std::string, std::string>> final_results_;
};

}  // namespace opmr
