#include "stream/streaming_job.h"

#include <algorithm>
#include <stdexcept>

#include "engine/map_task.h"  // PartitionOf
#include "engine/reduce_common.h"
#include "engine/reduce_hash.h"

namespace opmr {

// --- Worker --------------------------------------------------------------------

// One reducer worker: a bounded queue of framed (key, value) pairs feeding
// an incremental state table on a dedicated thread.
class StreamingJob::Worker {
 public:
  Worker(const StreamingQuery* query, const StreamingOptions* options,
         FileManager* files, MetricRegistry* metrics, int id)
      : query_(query),
        options_(options),
        files_(files),
        metrics_(metrics),
        id_(id),
        table_(query->aggregator.get()),
        sketch_(options->hot_key_capacity > 0
                    ? std::make_unique<SpaceSaving>(options->hot_key_capacity)
                    : nullptr),
        thread_([this](std::stop_token st) { Run(st); }) {}

  ~Worker() { Stop(); }

  void Enqueue(std::string framed_pair) {
    std::unique_lock lock(queue_mu_);
    queue_cv_.wait(lock, [&] {
      return queue_.size() < options_->queue_capacity || closing_;
    });
    if (closing_) {
      throw std::logic_error("StreamingJob: ingest after Finish()");
    }
    queue_.push_back(std::move(framed_pair));
    lock.unlock();
    queue_cv_.notify_all();
  }

  std::optional<std::string> Query(Slice key) const {
    std::scoped_lock lock(state_mu_);
    const StateTable::Entry* entry = table_.Find(key);
    if (entry == nullptr) return std::nullopt;
    std::string finalized;
    query_->aggregator->Finalize(entry->state, &finalized);
    return finalized;
  }

  void CollectTop(std::vector<std::pair<std::string, std::string>>* out) const {
    std::scoped_lock lock(state_mu_);
    std::string finalized;
    table_.ForEach([&](Slice key, const StateTable::Entry& entry) {
      query_->aggregator->Finalize(entry.state, &finalized);
      out->emplace_back(key.ToString(), finalized);
    });
  }

  [[nodiscard]] std::uint64_t pairs() const {
    return pairs_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t early_answers() const {
    return early_.load(std::memory_order_relaxed);
  }

  // Drains the queue, stops the thread, resolves spills, and appends the
  // exact final answers.
  void Finish(std::vector<std::pair<std::string, std::string>>* out) {
    Stop();

    std::scoped_lock lock(state_mu_);
    if (cold_ != nullptr) {
      cold_->Close();
      cold_.reset();
    }
    const Aggregator& agg = *query_->aggregator;
    if (spill_runs_.empty()) {
      std::string finalized;
      table_.ForEach([&](Slice key, const StateTable::Entry& entry) {
        agg.Finalize(entry.state, &finalized);
        out->emplace_back(key.ToString(), finalized);
      });
      return;
    }
    // Flush the live table as one more run and externally re-aggregate.
    if (table_.size() > 0) SpillTableLocked();
    RuntimeEnv env;
    env.files = files_;
    env.metrics = metrics_;
    ExternalHashAggregate(
        spill_runs_, /*level=*/0, options_->worker_budget_bytes, env,
        [&](Slice key, const std::vector<Slice>& states) {
          std::string state(states.front().data(), states.front().size());
          for (std::size_t i = 1; i < states.size(); ++i) {
            agg.Merge(&state, states[i]);
          }
          std::string finalized;
          agg.Finalize(state, &finalized);
          out->emplace_back(key.ToString(), finalized);
        },
        options_->compress_spills);
    for (const auto& path : spill_runs_) std::filesystem::remove(path);
    spill_runs_.clear();
  }

 private:
  void Stop() {
    {
      std::scoped_lock lock(queue_mu_);
      if (closing_) {
        // Already stopping; just wait for the thread below.
      }
      closing_ = true;
    }
    queue_cv_.notify_all();
    if (thread_.joinable()) thread_.join();
  }

  void Run(const std::stop_token& /*st*/) {
    std::vector<std::string> batch;
    while (true) {
      batch.clear();
      {
        std::unique_lock lock(queue_mu_);
        queue_cv_.wait(lock, [&] { return !queue_.empty() || closing_; });
        while (!queue_.empty()) {
          batch.push_back(std::move(queue_.front()));
          queue_.pop_front();
        }
        if (batch.empty() && closing_) return;
      }
      queue_cv_.notify_all();  // ingest may proceed

      std::scoped_lock lock(state_mu_);
      for (const auto& framed : batch) {
        const std::uint32_t klen = DecodeU32(framed.data());
        const Slice key(framed.data() + 8, klen);
        const Slice value(framed.data() + 8 + klen, framed.size() - 8 - klen);
        Fold(key, value);
      }
      if (table_.MemoryBytes() > options_->worker_budget_bytes) {
        if (sketch_ == nullptr) {
          SpillTableLocked();
        } else {
          EnforceBudgetLocked();
        }
      }
    }
  }

  void Fold(Slice key, Slice value) {
    if (sketch_ != nullptr) {
      if (auto victim = sketch_->OfferAndEvict(key); victim.has_value()) {
        if (table_.MemoryBytes() >
            options_->worker_budget_bytes -
                options_->worker_budget_bytes / 4) {
          DemoteLocked(*victim);
        }
      }
    }
    StateTable::Entry& entry = table_.Fold(key, value, /*is_state=*/false);
    pairs_.fetch_add(1, std::memory_order_relaxed);
    if (options_->early_emit && !entry.early_emitted &&
        options_->early_emit(key, entry.state)) {
      entry.early_emitted = true;
      early_.fetch_add(1, std::memory_order_relaxed);
      if (options_->on_early_answer) {
        std::string finalized;
        query_->aggregator->Finalize(entry.state, &finalized);
        options_->on_early_answer(key, finalized);
      }
    }
  }

  void SpillTableLocked() {
    const auto path = files_->NewFile("stream_spill");
    auto writer = NewSpillSink(options_->compress_spills, path,
                               IoChannel(metrics_, device::kSpillWrite));
    table_.ForEach([&](Slice key, const StateTable::Entry& entry) {
      writer->Append(key, entry.state);
    });
    writer->Close();
    table_.Clear();
    spill_runs_.push_back(path);
  }

  void DemoteLocked(Slice key) {
    std::string state;
    if (!table_.Extract(key, &state)) return;
    if (cold_ == nullptr) {
      cold_path_ = files_->NewFile("stream_cold");
      cold_ = NewSpillSink(options_->compress_spills, cold_path_,
                           IoChannel(metrics_, device::kSpillWrite));
      spill_runs_.push_back(cold_path_);
    }
    cold_->Append(key, state);
  }

  void EnforceBudgetLocked() {
    std::vector<std::pair<std::uint64_t, std::string>> by_estimate;
    by_estimate.reserve(table_.size());
    table_.ForEach([&](Slice key, const StateTable::Entry&) {
      by_estimate.emplace_back(sketch_->Estimate(key),
                               std::string(key.view()));
    });
    std::sort(by_estimate.begin(), by_estimate.end());
    for (const auto& [estimate, key] : by_estimate) {
      if (table_.MemoryBytes() <= options_->worker_budget_bytes) break;
      DemoteLocked(key);
    }
  }

  const StreamingQuery* query_;
  const StreamingOptions* options_;
  FileManager* files_;
  MetricRegistry* metrics_;
  int id_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::string> queue_;
  bool closing_ = false;

  mutable std::mutex state_mu_;
  StateTable table_;
  std::unique_ptr<SpaceSaving> sketch_;
  std::unique_ptr<RecordSink> cold_;
  std::filesystem::path cold_path_;
  std::vector<std::filesystem::path> spill_runs_;

  std::atomic<std::uint64_t> pairs_{0};
  std::atomic<std::uint64_t> early_{0};

  std::jthread thread_;  // last member: joins before the rest destructs
};

// --- StreamingJob ----------------------------------------------------------------

StreamingJob::StreamingJob(StreamingQuery query, StreamingOptions options,
                           int num_workers)
    : query_(std::move(query)),
      options_(std::move(options)),
      files_(FileManager::CreateTemp("opmr-stream")) {
  if (!query_.map) {
    throw std::invalid_argument("StreamingQuery: map function required");
  }
  if (query_.aggregator == nullptr) {
    throw std::invalid_argument(
        "StreamingQuery: streaming requires an Aggregator (holistic reduce "
        "functions cannot answer before end-of-stream)");
  }
  if (num_workers <= 0) {
    throw std::invalid_argument("StreamingJob: need at least one worker");
  }
  workers_.reserve(num_workers);
  for (int w = 0; w < num_workers; ++w) {
    workers_.push_back(std::make_unique<Worker>(&query_, &options_, &files_,
                                                &metrics_, w));
  }
}

StreamingJob::~StreamingJob() {
  try {
    if (!finished_.load()) Finish();
  } catch (...) {
    // Destructor must not throw; spills are cleaned by FileManager anyway.
  }
}

void StreamingJob::Ingest(Slice record) {
  if (finished_.load(std::memory_order_relaxed)) {
    throw std::logic_error("StreamingJob: ingest after Finish()");
  }
  // Local class: routes map output to the owning worker as framed pairs
  // (local classes of member functions share the class's access rights).
  class RoutingCollector final : public OutputCollector {
   public:
    explicit RoutingCollector(StreamingJob* job) : job_(job) {}
    void Emit(Slice key, Slice value) override {
      std::string framed;
      framed.reserve(8 + key.size() + value.size());
      AppendU32(framed, static_cast<std::uint32_t>(key.size()));
      AppendU32(framed, static_cast<std::uint32_t>(value.size()));
      framed.append(key.data(), key.size());
      framed.append(value.data(), value.size());
      const auto w =
          PartitionOf(key, static_cast<int>(job_->workers_.size()));
      job_->workers_[w]->Enqueue(std::move(framed));
    }

   private:
    StreamingJob* job_;
  } collector(this);
  query_.map(record, collector);
  records_.fetch_add(1, std::memory_order_relaxed);
}

std::optional<std::string> StreamingJob::Query(Slice key) const {
  const auto w = PartitionOf(key, static_cast<int>(workers_.size()));
  return workers_[w]->Query(key);
}

std::vector<std::pair<std::string, std::string>> StreamingJob::TopAnswers(
    std::size_t n) const {
  std::vector<std::pair<std::string, std::string>> all;
  for (const auto& worker : workers_) worker->CollectTop(&all);
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    const std::uint64_t av =
        a.second.size() == 8 ? DecodeU64(a.second.data()) : 0;
    const std::uint64_t bv =
        b.second.size() == 8 ? DecodeU64(b.second.data()) : 0;
    if (av != bv) return av > bv;
    return a.first < b.first;
  });
  if (all.size() > n) all.resize(n);
  return all;
}

std::uint64_t StreamingJob::records_ingested() const {
  return records_.load(std::memory_order_relaxed);
}

std::uint64_t StreamingJob::pairs_routed() const {
  std::uint64_t total = 0;
  for (const auto& worker : workers_) total += worker->pairs();
  return total;
}

std::uint64_t StreamingJob::early_answers() const {
  std::uint64_t total = 0;
  for (const auto& worker : workers_) total += worker->early_answers();
  return total;
}

std::vector<std::pair<std::string, std::string>> StreamingJob::Finish() {
  if (finished_.exchange(true)) return final_results_;
  for (auto& worker : workers_) worker->Finish(&final_results_);
  return final_results_;
}

}  // namespace opmr
